#include "metrics/proc_stat.h"

#include <sys/resource.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace hynet {
namespace {

// Reads a whole (small) proc file into `buf`; returns bytes read or -1.
ssize_t ReadProcFile(const char* path, char* buf, size_t cap) {
  FILE* f = std::fopen(path, "r");
  if (!f) return -1;
  const size_t n = std::fread(buf, 1, cap - 1, f);
  std::fclose(f);
  buf[n] = '\0';
  return static_cast<ssize_t>(n);
}

}  // namespace

CtxSwitchCounts ReadCtxSwitches(int tid) {
  char path[64];
  std::snprintf(path, sizeof(path), "/proc/self/task/%d/status", tid);
  char buf[4096];
  if (ReadProcFile(path, buf, sizeof(buf)) <= 0) return {};

  CtxSwitchCounts counts;
  if (const char* p = std::strstr(buf, "voluntary_ctxt_switches:")) {
    counts.voluntary = ::strtoull(p + 24, nullptr, 10);
  }
  if (const char* p = std::strstr(buf, "nonvoluntary_ctxt_switches:")) {
    counts.involuntary = ::strtoull(p + 27, nullptr, 10);
  }
  return counts;
}

CtxSwitchCounts SumCtxSwitches(std::span<const int> tids) {
  CtxSwitchCounts total;
  for (int tid : tids) total += ReadCtxSwitches(tid);
  return total;
}

ThreadCpuTimes ReadThreadCpu(int tid) {
  char path[64];
  std::snprintf(path, sizeof(path), "/proc/self/task/%d/stat", tid);
  char buf[1024];
  if (ReadProcFile(path, buf, sizeof(buf)) <= 0) return {};

  // Field 2 (comm) may contain spaces; skip past the closing paren.
  const char* p = std::strrchr(buf, ')');
  if (!p) return {};
  p++;  // now at " S ppid pgrp ..." — utime is field 14, stime field 15.
  unsigned long long utime = 0, stime = 0;
  // Skip fields 3..13 (state ppid pgrp session tty tpgid flags minflt
  // cminflt majflt cmajflt); after the space that ends field N the cursor
  // sits at the start of field N+1.
  int field = 2;
  while (*p && field < 14) {
    if (*p == ' ') field++;
    if (field == 14) break;
    p++;
  }
  if (std::sscanf(p, "%llu %llu", &utime, &stime) != 2) return {};

  const double ticks = static_cast<double>(::sysconf(_SC_CLK_TCK));
  return {static_cast<double>(utime) / ticks,
          static_cast<double>(stime) / ticks};
}

ThreadCpuTimes SumThreadCpu(std::span<const int> tids) {
  ThreadCpuTimes total;
  for (int tid : tids) total += ReadThreadCpu(tid);
  return total;
}

ThreadCpuTimes ReadProcessCpu() {
  rusage usage{};
  if (::getrusage(RUSAGE_SELF, &usage) != 0) return {};
  auto to_sec = [](const timeval& tv) {
    return static_cast<double>(tv.tv_sec) +
           static_cast<double>(tv.tv_usec) / 1e6;
  };
  return {to_sec(usage.ru_utime), to_sec(usage.ru_stime)};
}

}  // namespace hynet
