// MetricsRegistry: the single way any part of hynet exports a number.
//
// Named counters, gauges, and log-linear histograms. Counters and
// histograms are sharded per thread (a thread hashes to one of a fixed set
// of cache-line-padded shards and touches only relaxed atomics), so hot
// paths pay one uncontended fetch_add per event; shards are summed only at
// scrape time. Scrapes additionally run registered collector callbacks —
// the compatibility bridge that lets a server contribute its legacy
// `ServerCounters` snapshot without double bookkeeping.
//
// Rendering: PrometheusText() emits the Prometheus text exposition format
// (histograms as summaries with quantile labels); StatsJson() emits a
// machine-readable JSON document for tools/hynet_top.py.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/histogram.h"

namespace hynet {

namespace metrics_internal {

// Stable small id for the calling thread, assigned on first use. Metrics
// map it onto their shard arrays; two threads may share a shard (the shard
// is still an atomic), but a single thread never migrates.
inline uint32_t ThisThreadId() {
  static std::atomic<uint32_t> next{0};
  thread_local const uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

struct alignas(64) PaddedAtomicU64 {
  std::atomic<uint64_t> v{0};
};

}  // namespace metrics_internal

// Monotonic counter. Add() is wait-free: one relaxed fetch_add on the
// calling thread's shard.
class Counter {
 public:
  static constexpr size_t kShards = 16;

  void Add(uint64_t n = 1) {
    shards_[metrics_internal::ThisThreadId() % kShards].v.fetch_add(
        n, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const auto& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  std::array<metrics_internal::PaddedAtomicU64, kShards> shards_{};
};

// Instantaneous value (queue depth, live connections, 0/1 flags).
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

// Point-in-time aggregation of a HistogramMetric: merged bucket counts plus
// count/sum/max. Shares bucket geometry with common/Histogram.
struct HistogramData {
  std::vector<uint64_t> buckets;  // Histogram::kBucketCount entries
  uint64_t count = 0;
  int64_t sum = 0;
  int64_t max = 0;

  double Mean() const {
    return count ? static_cast<double>(sum) / static_cast<double>(count) : 0.0;
  }
  // Upper bound of the bucket containing quantile q in [0, 1].
  int64_t Percentile(double q) const;

  // Field-wise merge of another histogram with the same bucket geometry:
  // buckets and count/sum add, max takes the larger. The shard-aggregation
  // path merges per-shard scrapes into one view with this.
  void Merge(const HistogramData& other);
};

// Log-linear histogram with per-thread shards of relaxed-atomic buckets.
// Record() is three relaxed fetch_adds plus a rarely-contended CAS for the
// max — cheap enough to stay on the benchmark hot path unconditionally.
class HistogramMetric {
 public:
  static constexpr size_t kShards = 8;

  void Record(int64_t value) {
    Shard& s = shards_[metrics_internal::ThisThreadId() % kShards];
    s.buckets[static_cast<size_t>(Histogram::BucketIndex(value))].fetch_add(
        1, std::memory_order_relaxed);
    s.count.fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(value, std::memory_order_relaxed);
    int64_t seen = s.max.load(std::memory_order_relaxed);
    while (value > seen &&
           !s.max.compare_exchange_weak(seen, value,
                                        std::memory_order_relaxed)) {
    }
  }

  HistogramData Snapshot() const;

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<uint64_t>, Histogram::kBucketCount> buckets{};
    std::atomic<uint64_t> count{0};
    std::atomic<int64_t> sum{0};
    std::atomic<int64_t> max{0};
  };

  std::array<Shard, kShards> shards_{};
};

// One scrape's worth of collector contributions. Counter contributions
// with the same name (native or from other collectors) are summed; gauge
// contributions overwrite; histogram contributions merge field-wise into
// the native histogram of the same name (the shard-aggregation path).
class MetricsBatch {
 public:
  void AddCounter(std::string name, uint64_t value) {
    counters_.emplace_back(std::move(name), value);
  }
  void SetGauge(std::string name, int64_t value) {
    gauges_.emplace_back(std::move(name), value);
  }
  void MergeHistogram(std::string name, HistogramData data) {
    histograms_.emplace_back(std::move(name), std::move(data));
  }

 private:
  friend class MetricsRegistry;
  std::vector<std::pair<std::string, uint64_t>> counters_;
  std::vector<std::pair<std::string, int64_t>> gauges_;
  std::vector<std::pair<std::string, HistogramData>> histograms_;
};

// Consistent view of every metric at one scrape, sorted by name.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramData>> histograms;

  // 0 / nullptr when the name is absent.
  uint64_t CounterValue(std::string_view name) const;
  const HistogramData* FindHistogram(std::string_view name) const;
};

class MetricsRegistry {
 public:
  using Collector = std::function<void(MetricsBatch&)>;

  // Get-or-create by name. Returned references stay valid for the life of
  // the registry; hot paths should resolve once and cache the pointer.
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  HistogramMetric& GetHistogram(const std::string& name);

  // Registers a scrape-time contributor; returns an id for RemoveCollector.
  // The callback must stay callable until removed (or the registry dies)
  // and must only read data that is safe from any thread.
  size_t AddCollector(Collector collector);
  void RemoveCollector(size_t id);

  MetricsSnapshot Scrape() const;

  // Prometheus text exposition format of a full scrape.
  std::string PrometheusText() const;
  // {"counters":{...},"gauges":{...},"histograms":{name:{count,mean,...}}}
  std::string StatsJson() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<HistogramMetric>> histograms_;
  std::vector<std::pair<size_t, Collector>> collectors_;
  size_t next_collector_id_ = 0;
};

}  // namespace hynet
