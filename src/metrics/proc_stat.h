// Per-thread OS counters read from /proc (Collectl substitute).
//
// Context switches come from /proc/self/task/<tid>/status
// (voluntary_ctxt_switches / nonvoluntary_ctxt_switches); CPU time from
// /proc/self/task/<tid>/stat (utime/stime). Both can be read for any thread
// of this process, which lets the bench harness account server threads
// separately from client threads sharing the process.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace hynet {

struct CtxSwitchCounts {
  uint64_t voluntary = 0;
  uint64_t involuntary = 0;

  uint64_t Total() const { return voluntary + involuntary; }

  CtxSwitchCounts operator-(const CtxSwitchCounts& rhs) const {
    return {voluntary - rhs.voluntary, involuntary - rhs.involuntary};
  }
  CtxSwitchCounts& operator+=(const CtxSwitchCounts& rhs) {
    voluntary += rhs.voluntary;
    involuntary += rhs.involuntary;
    return *this;
  }
};

// Reads the context-switch counters for one thread of this process.
// Returns zeros if the thread has exited.
CtxSwitchCounts ReadCtxSwitches(int tid);

// Sums the counters over a set of threads.
CtxSwitchCounts SumCtxSwitches(std::span<const int> tids);

struct ThreadCpuTimes {
  double user_sec = 0;
  double sys_sec = 0;

  double Total() const { return user_sec + sys_sec; }

  ThreadCpuTimes operator-(const ThreadCpuTimes& rhs) const {
    return {user_sec - rhs.user_sec, sys_sec - rhs.sys_sec};
  }
  ThreadCpuTimes& operator+=(const ThreadCpuTimes& rhs) {
    user_sec += rhs.user_sec;
    sys_sec += rhs.sys_sec;
    return *this;
  }
};

// Reads utime/stime for one thread of this process.
// Granularity warning: per-thread utime/stime advance in scheduler ticks
// (usually 10 ms); summing over many short-lived or lightly-loaded threads
// underestimates. Prefer ReadProcessCpu for whole-process shares.
ThreadCpuTimes ReadThreadCpu(int tid);

ThreadCpuTimes SumThreadCpu(std::span<const int> tids);

// Whole-process user/system time via getrusage(RUSAGE_SELF) —
// microsecond-granular, includes every thread of the process.
ThreadCpuTimes ReadProcessCpu();

}  // namespace hynet
