// Interval sampling of a thread set's CPU and context-switch activity.
//
// Usage:
//   ServerActivitySampler sampler(server.ThreadIds());
//   sampler.Start();
//   ... run measurement window ...
//   auto delta = sampler.Stop();   // deltas over the window
#pragma once

#include <span>
#include <vector>

#include "common/clock.h"
#include "metrics/proc_stat.h"

namespace hynet {

struct ActivityDelta {
  double elapsed_sec = 0;
  CtxSwitchCounts ctx_switches;
  ThreadCpuTimes cpu;

  // Fraction of one core spent in user / system mode over the window.
  double UserShare() const {
    const double t = cpu.Total();
    return t > 0 ? cpu.user_sec / t : 0;
  }
  double SystemShare() const {
    const double t = cpu.Total();
    return t > 0 ? cpu.sys_sec / t : 0;
  }
  double CpuUtilization() const {
    return elapsed_sec > 0 ? cpu.Total() / elapsed_sec : 0;
  }
  double CtxSwitchesPerSec() const {
    return elapsed_sec > 0
               ? static_cast<double>(ctx_switches.Total()) / elapsed_sec
               : 0;
  }
};

class ServerActivitySampler {
 public:
  explicit ServerActivitySampler(std::vector<int> tids)
      : tids_(std::move(tids)) {}

  void Start() {
    start_time_ = Now();
    start_ctx_ = SumCtxSwitches(tids_);
    start_cpu_ = SumThreadCpu(tids_);
  }

  ActivityDelta Stop() const {
    ActivityDelta d;
    d.elapsed_sec = ToSeconds(Now() - start_time_);
    d.ctx_switches = SumCtxSwitches(tids_) - start_ctx_;
    d.cpu = SumThreadCpu(tids_) - start_cpu_;
    return d;
  }

 private:
  std::vector<int> tids_;
  TimePoint start_time_{};
  CtxSwitchCounts start_ctx_;
  ThreadCpuTimes start_cpu_;
};

}  // namespace hynet
