// Per-phase request-anatomy profiling.
//
// Each server accounts the nanoseconds a request spends in its four
// processing phases — parse, handler, serialize, write — so benches can
// show *where* each architecture loses its time (e.g. SingleT-Async's
// write phase exploding under latency while its handler phase is
// unchanged). Enabled via ServerConfig::profile_phases; the overhead is
// two clock_gettime calls per phase, zero when disabled.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

#include "common/clock.h"

namespace hynet {

enum class Phase : int {
  kParse = 0,
  kHandler = 1,
  kSerialize = 2,
  kWrite = 3,
};
inline constexpr int kPhaseCount = 4;

const char* PhaseName(Phase phase);

class PhaseProfiler {
 public:
  void Enable(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  void Record(Phase phase, int64_t ns) {
    const auto i = static_cast<size_t>(phase);
    total_ns_[i].fetch_add(static_cast<uint64_t>(ns),
                           std::memory_order_relaxed);
    count_[i].fetch_add(1, std::memory_order_relaxed);
  }

  struct Snapshot {
    std::array<uint64_t, kPhaseCount> total_ns{};
    std::array<uint64_t, kPhaseCount> count{};

    double MeanNs(Phase phase) const {
      const auto i = static_cast<size_t>(phase);
      return count[i] ? static_cast<double>(total_ns[i]) /
                            static_cast<double>(count[i])
                      : 0.0;
    }
    Snapshot operator-(const Snapshot& rhs) const {
      Snapshot d;
      for (int i = 0; i < kPhaseCount; ++i) {
        d.total_ns[static_cast<size_t>(i)] =
            total_ns[static_cast<size_t>(i)] -
            rhs.total_ns[static_cast<size_t>(i)];
        d.count[static_cast<size_t>(i)] =
            count[static_cast<size_t>(i)] - rhs.count[static_cast<size_t>(i)];
      }
      return d;
    }
  };

  Snapshot Snap() const {
    Snapshot s;
    for (int i = 0; i < kPhaseCount; ++i) {
      s.total_ns[static_cast<size_t>(i)] =
          total_ns_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
      s.count[static_cast<size_t>(i)] =
          count_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
    }
    return s;
  }

 private:
  std::atomic<bool> enabled_{false};
  std::array<std::atomic<uint64_t>, kPhaseCount> total_ns_{};
  std::array<std::atomic<uint64_t>, kPhaseCount> count_{};
};

// RAII phase timer: no-op when the profiler is disabled.
class ScopedPhase {
 public:
  ScopedPhase(PhaseProfiler& profiler, Phase phase)
      : profiler_(profiler), phase_(phase),
        enabled_(profiler.enabled()),
        start_ns_(enabled_ ? NowNanos() : 0) {}
  ~ScopedPhase() {
    if (enabled_) profiler_.Record(phase_, NowNanos() - start_ns_);
  }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  PhaseProfiler& profiler_;
  Phase phase_;
  bool enabled_;
  int64_t start_ns_;
};

}  // namespace hynet
