#include "metrics/registry.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace hynet {

namespace {

// Metric names become Prometheus label-free metric lines verbatim; keep
// them in [a-zA-Z0-9_:] when creating metrics.
void AppendU64(std::string& out, uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

void AppendI64(std::string& out, int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out += buf;
}

void AppendDouble(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out += buf;
}

}  // namespace

void HistogramData::Merge(const HistogramData& other) {
  if (buckets.size() < other.buckets.size()) {
    buckets.resize(other.buckets.size(), 0);
  }
  for (size_t i = 0; i < other.buckets.size(); ++i) {
    buckets[i] += other.buckets[i];
  }
  count += other.count;
  sum += other.sum;
  max = std::max(max, other.max);
}

int64_t HistogramData::Percentile(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const uint64_t target =
      static_cast<uint64_t>(q * static_cast<double>(count - 1)) + 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen >= target) {
      return std::min(Histogram::BucketUpperBound(static_cast<int>(i)), max);
    }
  }
  return max;
}

HistogramData HistogramMetric::Snapshot() const {
  HistogramData d;
  d.buckets.assign(Histogram::kBucketCount, 0);
  for (const Shard& s : shards_) {
    for (int i = 0; i < Histogram::kBucketCount; ++i) {
      d.buckets[static_cast<size_t>(i)] +=
          s.buckets[static_cast<size_t>(i)].load(std::memory_order_relaxed);
    }
    d.count += s.count.load(std::memory_order_relaxed);
    d.sum += s.sum.load(std::memory_order_relaxed);
    d.max = std::max(d.max, s.max.load(std::memory_order_relaxed));
  }
  return d;
}

uint64_t MetricsSnapshot::CounterValue(std::string_view name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

const HistogramData* MetricsSnapshot::FindHistogram(
    std::string_view name) const {
  for (const auto& [n, d] : histograms) {
    if (n == name) return &d;
  }
  return nullptr;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

HistogramMetric& MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<HistogramMetric>();
  return *slot;
}

size_t MetricsRegistry::AddCollector(Collector collector) {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t id = next_collector_id_++;
  collectors_.emplace_back(id, std::move(collector));
  return id;
}

void MetricsRegistry::RemoveCollector(size_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = collectors_.begin(); it != collectors_.end(); ++it) {
    if (it->first == id) {
      collectors_.erase(it);
      return;
    }
  }
}

MetricsSnapshot MetricsRegistry::Scrape() const {
  // Collectors run outside mu_ so one may call back into GetCounter etc.;
  // name-keyed maps merge their output with native metrics afterwards.
  std::vector<std::pair<size_t, Collector>> collectors;
  {
    std::lock_guard<std::mutex> lock(mu_);
    collectors = collectors_;
  }
  MetricsBatch batch;
  for (const auto& entry : collectors) entry.second(batch);

  MetricsSnapshot snap;
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramData> histograms;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, c] : counters_) counters[name] = c->Value();
    for (const auto& [name, g] : gauges_) gauges[name] = g->Value();
    for (const auto& [name, h] : histograms_) {
      histograms[name] = h->Snapshot();
    }
  }
  for (const auto& [name, v] : batch.counters_) counters[name] += v;
  for (const auto& [name, v] : batch.gauges_) gauges[name] = v;
  for (const auto& [name, d] : batch.histograms_) histograms[name].Merge(d);
  snap.counters.assign(counters.begin(), counters.end());
  snap.gauges.assign(gauges.begin(), gauges.end());
  snap.histograms.assign(histograms.begin(), histograms.end());
  return snap;
}

std::string MetricsRegistry::PrometheusText() const {
  const MetricsSnapshot snap = Scrape();
  std::string out;
  out.reserve(4096);
  for (const auto& [name, v] : snap.counters) {
    out += "# TYPE " + name + " counter\n";
    out += name + " ";
    AppendU64(out, v);
    out += '\n';
  }
  for (const auto& [name, v] : snap.gauges) {
    out += "# TYPE " + name + " gauge\n";
    out += name + " ";
    AppendI64(out, v);
    out += '\n';
  }
  for (const auto& [name, d] : snap.histograms) {
    out += "# TYPE " + name + " summary\n";
    for (const double q : {0.5, 0.95, 0.99}) {
      char label[64];
      std::snprintf(label, sizeof(label), "%s{quantile=\"%g\"} ",
                    name.c_str(), q);
      out += label;
      AppendI64(out, d.Percentile(q));
      out += '\n';
    }
    out += name + "_sum ";
    AppendI64(out, d.sum);
    out += '\n';
    out += name + "_count ";
    AppendU64(out, d.count);
    out += '\n';
  }
  return out;
}

std::string MetricsRegistry::StatsJson() const {
  const MetricsSnapshot snap = Scrape();
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : snap.counters) {
    if (!first) out += ',';
    first = false;
    out += '"' + name + "\":";
    AppendU64(out, v);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : snap.gauges) {
    if (!first) out += ',';
    first = false;
    out += '"' + name + "\":";
    AppendI64(out, v);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, d] : snap.histograms) {
    if (!first) out += ',';
    first = false;
    out += '"' + name + "\":{\"count\":";
    AppendU64(out, d.count);
    out += ",\"mean\":";
    AppendDouble(out, d.Mean());
    out += ",\"p50\":";
    AppendI64(out, d.Percentile(0.5));
    out += ",\"p95\":";
    AppendI64(out, d.Percentile(0.95));
    out += ",\"p99\":";
    AppendI64(out, d.Percentile(0.99));
    out += ",\"max\":";
    AppendI64(out, d.max);
    out += '}';
  }
  out += "}}";
  return out;
}

}  // namespace hynet
