// Aligned-table + CSV reporting for the benchmark harness.
//
// Every bench binary prints the rows/series of the paper table or figure it
// reproduces; TablePrinter keeps that output consistent and also emits a
// machine-readable CSV block so results can be plotted.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace hynet {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> columns);

  void AddRow(std::vector<std::string> cells);

  // Convenience: formats doubles with the given precision.
  static std::string Num(double v, int precision = 1);
  static std::string Int(int64_t v);

  // Prints an aligned table to stdout.
  void Print() const;

  // Prints "csv,<col1>,<col2>..." then one csv line per row (prefixed so the
  // aligned table and CSV can share stdout and still be grepped apart).
  void PrintCsv(const std::string& tag) const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

// Prints a section header: "== Figure 7: ... ==".
void PrintHeader(const std::string& title);

// Prints a two-column name/value table of counters (e.g. the lifecycle
// rows from LifecycleCounterRows). With skip_zero, all-zero rows are
// suppressed so quiet servers don't print a wall of zeros.
void PrintCounterTable(
    const std::string& title,
    const std::vector<std::pair<std::string, uint64_t>>& rows,
    bool skip_zero = true);

}  // namespace hynet
