#include "metrics/report.h"

#include <cstdio>

namespace hynet {

TablePrinter::TablePrinter(std::vector<std::string> columns)
    : columns_(std::move(columns)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(columns_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::Int(int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  return buf;
}

void TablePrinter::Print() const {
  std::vector<size_t> widths(columns_.size());
  for (size_t i = 0; i < columns_.size(); ++i) widths[i] = columns_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (row[i].size() > widths[i]) widths[i] = row[i].size();
    }
  }

  auto print_row = [&](const std::vector<std::string>& cells) {
    std::printf("  ");
    for (size_t i = 0; i < cells.size(); ++i) {
      std::printf("%-*s  ", static_cast<int>(widths[i]), cells[i].c_str());
    }
    std::printf("\n");
  };

  print_row(columns_);
  std::string rule;
  for (size_t i = 0; i < columns_.size(); ++i) {
    rule.append(widths[i], '-');
    rule.append("  ");
  }
  std::printf("  %s\n", rule.c_str());
  for (const auto& row : rows_) print_row(row);
  std::fflush(stdout);
}

void TablePrinter::PrintCsv(const std::string& tag) const {
  auto print_csv_row = [&](const std::vector<std::string>& cells) {
    std::printf("csv,%s", tag.c_str());
    for (const auto& c : cells) std::printf(",%s", c.c_str());
    std::printf("\n");
  };
  print_csv_row(columns_);
  for (const auto& row : rows_) print_csv_row(row);
  std::fflush(stdout);
}

void PrintHeader(const std::string& title) {
  std::printf("\n== %s ==\n", title.c_str());
  std::fflush(stdout);
}

void PrintCounterTable(
    const std::string& title,
    const std::vector<std::pair<std::string, uint64_t>>& rows,
    bool skip_zero) {
  TablePrinter table({title, "count"});
  bool any = false;
  for (const auto& [name, value] : rows) {
    if (skip_zero && value == 0) continue;
    table.AddRow({name, TablePrinter::Int(static_cast<int64_t>(value))});
    any = true;
  }
  if (!any) {
    std::printf("  %s: (all zero)\n", title.c_str());
    std::fflush(stdout);
    return;
  }
  table.Print();
}

}  // namespace hynet
