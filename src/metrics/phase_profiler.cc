#include "metrics/phase_profiler.h"

namespace hynet {

const char* PhaseName(Phase phase) {
  switch (phase) {
    case Phase::kParse:     return "parse";
    case Phase::kHandler:   return "handler";
    case Phase::kSerialize: return "serialize";
    case Phase::kWrite:     return "write";
  }
  return "unknown";
}

}  // namespace hynet
