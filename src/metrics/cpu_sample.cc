#include "metrics/cpu_sample.h"

// Header-only today; anchors the translation unit.
namespace hynet {}  // namespace hynet
