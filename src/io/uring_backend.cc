#include "io/uring_backend.h"

#include <sys/mman.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <system_error>

#include "common/env.h"
#include "common/logging.h"
#include "net/socket.h"

namespace hynet {
namespace {

int SysUringSetup(unsigned entries, io_uring_params* p) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, p));
}

int SysUringEnter(int fd, unsigned to_submit, unsigned min_complete,
                  unsigned flags, const void* arg, size_t argsz) {
  return static_cast<int>(::syscall(__NR_io_uring_enter, fd, to_submit,
                                    min_complete, flags, arg, argsz));
}

[[noreturn]] void ThrowErrno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

// The ring head/tail words are shared with the kernel; plain loads/stores
// would let the compiler reorder them across the SQE/CQE payload accesses.
uint32_t LoadAcquire(const uint32_t* p) {
  return __atomic_load_n(p, __ATOMIC_ACQUIRE);
}
void StoreRelease(uint32_t* p, uint32_t v) {
  __atomic_store_n(p, v, __ATOMIC_RELEASE);
}

// A read slot's ByteBuffer is only pool-backed in non-buffer-ring mode; a
// default-constructed (empty, zero-capacity) one must not pollute the pool.
bool HasStorage(const ByteBuffer& b) {
  return b.ReadableBytes() > 0 || b.WritableBytes() > 0;
}

}  // namespace

UringBackend::UringBackend() {
  const UringCaps& caps = ProbeUringCaps();
  sqpoll_ = EnvBool("HYNET_URING_SQPOLL", false);
  const bool want_zc = EnvBool("HYNET_URING_ZC", true);
  zc_enabled_ = want_zc && caps.sendmsg_zc;
  if (want_zc && !caps.sendmsg_zc) {
    feature_fallbacks_.fetch_add(1, std::memory_order_relaxed);
  }
  const bool want_bufring = EnvBool("HYNET_URING_BUFRING", true);
  bufring_enabled_ = want_bufring && caps.buf_ring;
  if (want_bufring && !caps.buf_ring) {
    feature_fallbacks_.fetch_add(1, std::memory_order_relaxed);
  }
  regfiles_enabled_ = EnvBool("HYNET_URING_REGFILES", false);

  // Provided-buffer ring depth: the kernel requires a power of two. More
  // entries cover more simultaneously-readable connections per iteration
  // before the ENOBUFS owned-buffer fallback kicks in.
  const int64_t want_entries =
      EnvInt("HYNET_URING_BUFRING_ENTRIES", kBufRingEntries);
  buf_ring_entries_ = 1;
  while (buf_ring_entries_ <
         std::min<uint64_t>(std::max<int64_t>(want_entries, 1), 32768)) {
    buf_ring_entries_ <<= 1;
  }
  // Registered-file table: size to the fd budget so every connection can
  // hold a fixed slot, bounded to keep the sparse table allocation sane.
  rlimit nofile{};
  uint64_t fd_budget = kRegisteredFileSlots;
  if (::getrlimit(RLIMIT_NOFILE, &nofile) == 0 &&
      nofile.rlim_cur != RLIM_INFINITY) {
    fd_budget = std::max<uint64_t>(fd_budget, nofile.rlim_cur);
  }
  reg_file_slots_ = static_cast<unsigned>(std::clamp<uint64_t>(
      static_cast<uint64_t>(
          EnvInt("HYNET_URING_REGFILE_SLOTS", static_cast<int64_t>(fd_budget))),
      kRegisteredFileSlots, kMaxRegisteredFileSlots));

  io_uring_params params{};
  // CQ sized well past SQ depth: completions accumulate all iteration
  // (every in-flight op may complete between two Wait calls) while SQ only
  // has to hold one iteration's submissions.
  params.flags = IORING_SETUP_CQSIZE;
  params.cq_entries = kCqEntries;
  if (sqpoll_) {
    params.flags |= IORING_SETUP_SQPOLL;
    params.sq_thread_idle = 50;  // ms the kernel thread spins before napping
  }
  int fd = SysUringSetup(kSqEntries, &params);
  if (fd < 0 && sqpoll_) {
    // SQPOLL needs privileges on pre-5.11 kernels; run without it rather
    // than fail the whole engine.
    feature_fallbacks_.fetch_add(1, std::memory_order_relaxed);
    sqpoll_ = false;
    params = io_uring_params{};
    params.flags = IORING_SETUP_CQSIZE;
    params.cq_entries = kCqEntries;
    fd = SysUringSetup(kSqEntries, &params);
  }
  if (fd < 0) ThrowErrno("io_uring_setup");
  ring_fd_ = ScopedFd(fd);
  // EXT_ARG carries the timer timeout into the blocking enter; NODROP
  // queues CQ overflow in the kernel instead of losing completions. Both
  // are required for correctness, not speed.
  if (!(params.features & IORING_FEAT_EXT_ARG) ||
      !(params.features & IORING_FEAT_NODROP)) {
    errno = ENOSYS;
    ThrowErrno("io_uring features");
  }
  sq_entries_ = params.sq_entries;
  cq_entries_ = params.cq_entries;

  sq_ring_bytes_ = params.sq_off.array + params.sq_entries * sizeof(uint32_t);
  cq_ring_bytes_ =
      params.cq_off.cqes + params.cq_entries * sizeof(io_uring_cqe);
  if (params.features & IORING_FEAT_SINGLE_MMAP) {
    sq_ring_bytes_ = cq_ring_bytes_ = std::max(sq_ring_bytes_, cq_ring_bytes_);
  }
  void* sq = ::mmap(nullptr, sq_ring_bytes_, PROT_READ | PROT_WRITE,
                    MAP_SHARED | MAP_POPULATE, fd, IORING_OFF_SQ_RING);
  if (sq == MAP_FAILED) ThrowErrno("mmap(sq ring)");
  sq_ring_ptr_ = sq;
  if (params.features & IORING_FEAT_SINGLE_MMAP) {
    cq_ring_ptr_ = sq_ring_ptr_;
  } else {
    void* cq = ::mmap(nullptr, cq_ring_bytes_, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_POPULATE, fd, IORING_OFF_CQ_RING);
    if (cq == MAP_FAILED) {
      const int err = errno;
      ::munmap(sq_ring_ptr_, sq_ring_bytes_);
      sq_ring_ptr_ = nullptr;
      errno = err;
      ThrowErrno("mmap(cq ring)");
    }
    cq_ring_ptr_ = cq;
  }
  sqes_bytes_ = params.sq_entries * sizeof(io_uring_sqe);
  void* sqes = ::mmap(nullptr, sqes_bytes_, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_POPULATE, fd, IORING_OFF_SQES);
  if (sqes == MAP_FAILED) {
    const int err = errno;
    if (cq_ring_ptr_ != sq_ring_ptr_) ::munmap(cq_ring_ptr_, cq_ring_bytes_);
    ::munmap(sq_ring_ptr_, sq_ring_bytes_);
    sq_ring_ptr_ = cq_ring_ptr_ = nullptr;
    errno = err;
    ThrowErrno("mmap(sqes)");
  }
  sqes_ = static_cast<io_uring_sqe*>(sqes);

  auto* sq_base = static_cast<char*>(sq_ring_ptr_);
  sq_head_ = reinterpret_cast<uint32_t*>(sq_base + params.sq_off.head);
  sq_tail_ = reinterpret_cast<uint32_t*>(sq_base + params.sq_off.tail);
  sq_mask_ = *reinterpret_cast<uint32_t*>(sq_base + params.sq_off.ring_mask);
  sq_array_ = reinterpret_cast<uint32_t*>(sq_base + params.sq_off.array);
  sq_flags_ = reinterpret_cast<uint32_t*>(sq_base + params.sq_off.flags);
  auto* cq_base = static_cast<char*>(cq_ring_ptr_);
  cq_head_ = reinterpret_cast<uint32_t*>(cq_base + params.cq_off.head);
  cq_tail_ = reinterpret_cast<uint32_t*>(cq_base + params.cq_off.tail);
  cq_mask_ = *reinterpret_cast<uint32_t*>(cq_base + params.cq_off.ring_mask);
  cqes_ = reinterpret_cast<io_uring_cqe*>(cq_base + params.cq_off.cqes);

  sq_local_tail_ = sq_submitted_ = *sq_tail_;

  if (bufring_enabled_ && !SetupBufRing()) {
    feature_fallbacks_.fetch_add(1, std::memory_order_relaxed);
    bufring_enabled_ = false;
  }
  if (regfiles_enabled_ && !SetupRegisteredFiles()) {
    feature_fallbacks_.fetch_add(1, std::memory_order_relaxed);
    regfiles_enabled_ = false;
  }
}

UringBackend::~UringBackend() {
  // Close the ring first: teardown cancels and waits out in-flight ops
  // (zero-copy notifications included), after which the slot-owned buffers
  // and the registered slab below are no longer kernel-visible.
  ring_fd_.Reset();
  if (buf_ring_) ::munmap(buf_ring_, buf_ring_bytes_);
  if (buf_slab_) ::munmap(buf_slab_, buf_slab_bytes_);
  if (sqes_) ::munmap(sqes_, sqes_bytes_);
  if (cq_ring_ptr_ && cq_ring_ptr_ != sq_ring_ptr_) {
    ::munmap(cq_ring_ptr_, cq_ring_bytes_);
  }
  if (sq_ring_ptr_) ::munmap(sq_ring_ptr_, sq_ring_bytes_);
  if (buffer_source_) {
    for (auto& slot : slots_) {
      if (slot.kind == OpKind::kRead && HasStorage(slot.buffer)) {
        buffer_source_->ReleaseBuffer(std::move(slot.buffer));
      }
    }
  }
}

bool UringBackend::SetupBufRing() {
  buf_ring_bytes_ = buf_ring_entries_ * sizeof(io_uring_buf);
  void* ring = ::mmap(nullptr, buf_ring_bytes_, PROT_READ | PROT_WRITE,
                      MAP_ANONYMOUS | MAP_PRIVATE, -1, 0);
  if (ring == MAP_FAILED) return false;
  buf_slab_bytes_ = static_cast<size_t>(buf_ring_entries_) * kReadChunk;
  void* slab = ::mmap(nullptr, buf_slab_bytes_, PROT_READ | PROT_WRITE,
                      MAP_ANONYMOUS | MAP_PRIVATE, -1, 0);
  if (slab == MAP_FAILED) {
    ::munmap(ring, buf_ring_bytes_);
    return false;
  }
  io_uring_buf_reg reg{};
  reg.ring_addr = reinterpret_cast<uint64_t>(ring);
  reg.ring_entries = buf_ring_entries_;
  reg.bgid = kBufGroupId;
  if (::syscall(__NR_io_uring_register, ring_fd_.get(),
                IORING_REGISTER_PBUF_RING, &reg, 1) != 0) {
    ::munmap(slab, buf_slab_bytes_);
    ::munmap(ring, buf_ring_bytes_);
    return false;
  }
  buf_ring_ = static_cast<io_uring_buf_ring*>(ring);
  buf_slab_ = static_cast<char*>(slab);
  // Hand every buffer to the kernel up front; they come back one CQE at a
  // time and recycle at the Wait after their dispatch pass.
  for (unsigned bid = 0; bid < buf_ring_entries_; ++bid) {
    RecycleBid(static_cast<uint16_t>(bid));
  }
  PublishBufRing();
  return true;
}

void UringBackend::RecycleBid(uint16_t bid) {
  // Not buf_ring_->bufs[]: the C++ expansion of __DECLARE_FLEX_ARRAY pads
  // the flexible member to offset 8 (its dummy struct{} has size 1), while
  // the kernel reads entries from offset 0. Index the ring base directly.
  auto* entries = reinterpret_cast<io_uring_buf*>(buf_ring_);
  io_uring_buf& e = entries[buf_ring_tail_ & (buf_ring_entries_ - 1)];
  e.addr = reinterpret_cast<uint64_t>(buf_slab_ +
                                      static_cast<size_t>(bid) * kReadChunk);
  e.len = kReadChunk;
  e.bid = bid;
  ++buf_ring_tail_;
}

void UringBackend::PublishBufRing() {
  __atomic_store_n(&buf_ring_->tail, buf_ring_tail_, __ATOMIC_RELEASE);
}

bool UringBackend::SetupRegisteredFiles() {
  // A sparse table: slots are claimed lazily (first SQE on the fd) and
  // filled with the synchronous FILES_UPDATE registration.
  std::vector<int> table(reg_file_slots_, -1);
  if (::syscall(__NR_io_uring_register, ring_fd_.get(), IORING_REGISTER_FILES,
                table.data(), reg_file_slots_) != 0) {
    return false;
  }
  free_file_slots_.reserve(reg_file_slots_);
  for (unsigned i = reg_file_slots_; i > 0; --i) {
    free_file_slots_.push_back(i - 1);
  }
  return true;
}

void UringBackend::ApplyFixedFile(io_uring_sqe* sqe, int fd) {
  if (!regfiles_enabled_) return;
  unsigned index;
  const auto it = fixed_files_.find(fd);
  if (it != fixed_files_.end()) {
    index = it->second;
  } else {
    if (free_file_slots_.empty()) return;  // table full: use the plain fd
    index = free_file_slots_.back();
    int value = fd;
    io_uring_files_update update{};
    update.offset = index;
    update.fds = reinterpret_cast<uint64_t>(&value);
    // Synchronous registration, not a FILES_UPDATE SQE: SQEs later in this
    // same batch already reference the slot, and SQE execution order would
    // race the update.
    if (::syscall(__NR_io_uring_register, ring_fd_.get(),
                  IORING_REGISTER_FILES_UPDATE, &update, 1) != 1) {
      return;
    }
    free_file_slots_.pop_back();
    fixed_files_[fd] = index;
  }
  sqe->fd = static_cast<int>(index);
  sqe->flags |= IOSQE_FIXED_FILE;
}

void UringBackend::ReleaseFixedFile(int fd) {
  if (!regfiles_enabled_) return;
  const auto it = fixed_files_.find(fd);
  if (it == fixed_files_.end()) return;
  int value = -1;
  io_uring_files_update update{};
  update.offset = it->second;
  update.fds = reinterpret_cast<uint64_t>(&value);
  // Clearing the slot drops the table's file reference so close() actually
  // releases the socket (otherwise a recycled fd number could alias a
  // still-registered file).
  ::syscall(__NR_io_uring_register, ring_fd_.get(),
            IORING_REGISTER_FILES_UPDATE, &update, 1);
  free_file_slots_.push_back(it->second);
  fixed_files_.erase(it);
}

uint64_t UringBackend::AllocSlot(OpKind kind, int fd) {
  uint64_t index;
  if (!free_slots_.empty()) {
    index = free_slots_.back();
    free_slots_.pop_back();
  } else {
    index = slots_.size();
    slots_.emplace_back();
  }
  OpSlot& slot = slots_[index];
  slot.kind = kind;
  slot.fd = fd;
  slot.alive = true;
  slot.inflight = false;
  slot.surfaced = false;
  slot.zc = false;
  slot.awaiting_notif = false;
  slot.resubmit_plain = false;
  slot.owned_read = false;
  slot.iov_count = 0;
  fd_ops_[fd].push_back(index);
  return index;
}

void UringBackend::FreeSlot(uint64_t index) {
  OpSlot& slot = slots_[index];
  auto it = fd_ops_.find(slot.fd);
  if (it != fd_ops_.end()) {
    auto& ops = it->second;
    ops.erase(std::remove(ops.begin(), ops.end(), index), ops.end());
    if (ops.empty()) fd_ops_.erase(it);
  }
  if (slot.kind == OpKind::kRead && buffer_source_ && HasStorage(slot.buffer)) {
    buffer_source_->ReleaseBuffer(std::move(slot.buffer));
  }
  slot = OpSlot();
  free_slots_.push_back(index);
}

io_uring_sqe* UringBackend::GetSqe() {
  // Order matters across the whole submission stream (a cancel must not
  // overtake its target), so once SQEs spill to the overflow queue all
  // later ones follow until Wait drains it back into the ring.
  if (overflow_sqes_.empty()) {
    if (sq_local_tail_ - LoadAcquire(sq_head_) >= sq_entries_) FlushSqes();
    if (sq_local_tail_ - LoadAcquire(sq_head_) < sq_entries_) {
      io_uring_sqe* sqe = &sqes_[sq_local_tail_ & sq_mask_];
      std::memset(sqe, 0, sizeof(*sqe));
      sq_array_[sq_local_tail_ & sq_mask_] = sq_local_tail_ & sq_mask_;
      ++sq_local_tail_;
      return sqe;
    }
  }
  overflow_sqes_.emplace_back();
  std::memset(&overflow_sqes_.back(), 0, sizeof(io_uring_sqe));
  return &overflow_sqes_.back();
}

void UringBackend::DrainOverflowSqes() {
  while (!overflow_sqes_.empty()) {
    if (sq_local_tail_ - LoadAcquire(sq_head_) >= sq_entries_) {
      FlushSqes();
      if (sq_local_tail_ - LoadAcquire(sq_head_) >= sq_entries_) return;
    }
    sqes_[sq_local_tail_ & sq_mask_] = overflow_sqes_.front();
    sq_array_[sq_local_tail_ & sq_mask_] = sq_local_tail_ & sq_mask_;
    ++sq_local_tail_;
    overflow_sqes_.pop_front();
  }
}

int UringBackend::Enter(unsigned to_submit, unsigned min_complete,
                        unsigned flags, void* arg, size_t argsz) {
  const int ret = RetrySyscallCounted(
      [&] {
        return SysUringEnter(ring_fd_.get(), to_submit, min_complete, flags,
                             arg, argsz);
      },
      eintr_retries_);
  enter_calls_.fetch_add(1, std::memory_order_relaxed);
  if (ret > 0 && to_submit > 0) {
    sqes_submitted_.fetch_add(static_cast<uint64_t>(ret),
                              std::memory_order_relaxed);
  }
  return ret;
}

void UringBackend::FlushSqes() {
  const unsigned pending = sq_local_tail_ - sq_submitted_;
  if (pending == 0) return;
  StoreRelease(sq_tail_, sq_local_tail_);
  if (sqpoll_) {
    // The kernel thread consumes the ring directly: publishing the tail is
    // the submission; cross the kernel only to wake a napping thread.
    sqes_submitted_.fetch_add(pending, std::memory_order_relaxed);
    sq_submitted_ = sq_local_tail_;
    if (LoadAcquire(sq_flags_) & IORING_SQ_NEED_WAKEUP) {
      Enter(0, 0, IORING_ENTER_SQ_WAKEUP, nullptr, 0);
    }
    return;
  }
  const int ret = Enter(pending, 0, 0, nullptr, 0);
  if (ret > 0) sq_submitted_ += static_cast<unsigned>(ret);
  // EBUSY here (mid-dispatch, events_ is live) is left alone: the SQEs
  // stay pending and the next Wait retries with reaping available.
}

uint32_t UringBackend::CqReady() const {
  return LoadAcquire(cq_tail_) - *cq_head_;
}

std::span<const IoEvent> UringBackend::Wait(int64_t timeout_ns) {
  ReleaseSurfacedReads();
  events_.clear();
  DrainOverflowSqes();
  StoreRelease(sq_tail_, sq_local_tail_);
  unsigned pending = sq_local_tail_ - sq_submitted_;
  bool need_wake = false;
  if (sqpoll_ && pending > 0) {
    sqes_submitted_.fetch_add(pending, std::memory_order_relaxed);
    sq_submitted_ = sq_local_tail_;
    need_wake = (LoadAcquire(sq_flags_) & IORING_SQ_NEED_WAKEUP) != 0;
    pending = 0;
  }

  unsigned flags = IORING_ENTER_GETEVENTS;
  unsigned min_complete = 1;
  io_uring_getevents_arg arg{};
  __kernel_timespec ts{};
  void* argp = nullptr;
  size_t argsz = 0;
  if (CqReady() > 0 || timeout_ns == 0) {
    min_complete = 0;
  } else if (timeout_ns > 0) {
    ts.tv_sec = timeout_ns / 1'000'000'000;
    ts.tv_nsec = timeout_ns % 1'000'000'000;
    arg.ts = reinterpret_cast<uint64_t>(&ts);
    argp = &arg;
    argsz = sizeof(arg);
    flags |= IORING_ENTER_EXT_ARG;
  }
  if (need_wake) flags |= IORING_ENTER_SQ_WAKEUP;
  // The one kernel crossing of the iteration: submit the whole batch and
  // (when nothing is ready yet) block for the first completion. Skipped
  // entirely when completions are already waiting and nothing is queued.
  if (pending > 0 || min_complete > 0 || need_wake) {
    int ret = Enter(pending, min_complete, flags, argp, argsz);
    if (ret > 0) {
      sq_submitted_ += static_cast<unsigned>(ret);
      pending -= static_cast<unsigned>(std::min<int>(
          ret, static_cast<int>(pending)));
    }
    // EBUSY: the NODROP completion backlog wants reaping before new SQEs
    // are accepted. Reap into this iteration's batch and retry (bounded;
    // leftovers simply ride the next Wait).
    int attempts = 0;
    while (ret < 0 && errno == EBUSY && pending > 0 && ++attempts <= 64) {
      ebusy_retries_.fetch_add(1, std::memory_order_relaxed);
      ReapCqes();
      ret = Enter(pending, 0, IORING_ENTER_GETEVENTS, nullptr, 0);
      if (ret > 0) {
        sq_submitted_ += static_cast<unsigned>(ret);
        pending -= static_cast<unsigned>(std::min<int>(
            ret, static_cast<int>(pending)));
      }
    }
  }
  ReapCqes();
  return {events_.data(), events_.size()};
}

void UringBackend::ReapCqes() {
  uint32_t head = *cq_head_;
  const uint32_t tail = LoadAcquire(cq_tail_);
  while (head != tail) {
    HandleCqe(cqes_[head & cq_mask_]);
    ++head;
  }
  StoreRelease(cq_head_, head);
}

void UringBackend::HandleCqe(const io_uring_cqe& cqe) {
  cqes_reaped_.fetch_add(1, std::memory_order_relaxed);
  if (cqe.user_data == kIgnoredUserData) return;  // a cancel op's own CQE
  const uint64_t index = cqe.user_data;
  OpSlot& slot = slots_[index];
  switch (slot.kind) {
    case OpKind::kPoll: {
      slot.inflight = false;
      if (!slot.alive) {
        FreeSlot(index);
        return;
      }
      if (cqe.res < 0) {
        if (cqe.res == -ECANCELED) {
          PrepPoll(index);  // raced a foreign cancel; the watcher is live
          return;
        }
        IoEvent ev;
        ev.fd = slot.fd;
        ev.events = EPOLLERR | EPOLLHUP;
        events_.push_back(ev);
        return;  // not re-armed; RemoveFd reclaims the slot
      }
      IoEvent ev;
      ev.fd = slot.fd;
      ev.events = static_cast<uint32_t>(cqe.res);
      events_.push_back(ev);
      // Single-shot poll re-armed per delivery: POLL_ADD re-checks the fd
      // at submission, preserving level-triggered semantics.
      PrepPoll(index);
      return;
    }
    case OpKind::kAccept: {
      const bool more = (cqe.flags & IORING_CQE_F_MORE) != 0;
      if (!more) slot.inflight = false;
      if (!slot.alive) {
        if (cqe.res >= 0) ::close(cqe.res);
        if (!more) FreeSlot(index);
        return;
      }
      if (cqe.res >= 0) {
        IoEvent ev;
        ev.fd = slot.fd;
        ev.op = IoOpType::kAccept;
        ev.result = cqe.res;
        events_.push_back(ev);
      } else if (cqe.res == -EINVAL) {
        HYNET_LOG(WARN) << "multishot accept rejected with EINVAL; "
                           "accept chain not re-armed";
        return;
      }
      // Transient accept errors (ECONNABORTED, EMFILE, ...) are dropped;
      // a terminated multishot chain is simply re-armed.
      if (!more) PrepAccept(index);
      return;
    }
    case OpKind::kRead: {
      const bool buf_selected = (cqe.flags & IORING_CQE_F_BUFFER) != 0;
      const auto bid =
          static_cast<uint16_t>(cqe.flags >> IORING_CQE_BUFFER_SHIFT);
      if (cqe.res == -ENOBUFS && slot.alive) {
        // The buffer ring is empty this instant: every bid is surfaced or
        // in flight. Fall back to an engine-owned buffer for this read —
        // re-prepping against the ring would thrash when the ring is
        // simply undersized for the number of simultaneously-readable
        // connections (HYNET_URING_BUFRING_ENTRIES raises it).
        bufring_exhausted_.fetch_add(1, std::memory_order_relaxed);
        slot.owned_read = true;
        if (!HasStorage(slot.buffer)) {
          slot.buffer =
              buffer_source_ ? buffer_source_->AcquireBuffer() : ByteBuffer();
          slot.buffer.EnsureWritable(kReadChunk);
        }
        PrepRead(index);
        return;
      }
      slot.inflight = false;
      if (!slot.alive) {
        if (buf_selected) surfaced_bids_.push_back(bid);
        FreeSlot(index);
        return;
      }
      IoEvent ev;
      ev.fd = slot.fd;
      ev.op = IoOpType::kRead;
      ev.result = cqe.res;
      if (buf_selected) {
        ev.data = buf_slab_ + static_cast<size_t>(bid) * kReadChunk;
        ev.len = cqe.res > 0 ? static_cast<size_t>(cqe.res) : 0;
        // The bid is on loan to the dispatch pass; recycled next Wait.
        surfaced_bids_.push_back(bid);
        FreeSlot(index);  // the slab, not the slot, backs the bytes
      } else {
        if (cqe.res > 0) slot.buffer.Produced(static_cast<size_t>(cqe.res));
        ev.buffer = &slot.buffer;
        ev.data = slot.buffer.ReadPtr();
        ev.len = slot.buffer.ReadableBytes();
        slot.surfaced = true;
        surfaced_reads_.push_back(index);
      }
      events_.push_back(ev);
      return;
    }
    case OpKind::kWrite: {
      if (cqe.flags & IORING_CQE_F_NOTIF) {
        // The zero-copy notification: the kernel is done reading the
        // payload pages. Only now may the slot's refcounts drop — the NIC
        // can still be DMAing from them after the result CQE.
        if (static_cast<uint32_t>(cqe.res) & IORING_NOTIF_USAGE_ZC_COPIED) {
          zc_copied_.fetch_add(1, std::memory_order_relaxed);
        }
        slot.awaiting_notif = false;
        if (slot.resubmit_plain && slot.alive) {
          slot.resubmit_plain = false;
          PrepWrite(index);
          return;
        }
        slot.inflight = false;
        FreeSlot(index);
        return;
      }
      const bool more = (cqe.flags & IORING_CQE_F_MORE) != 0;
      if (slot.zc && cqe.res < 0 &&
          (cqe.res == -EINVAL || cqe.res == -EOPNOTSUPP)) {
        // This kernel/socket combination rejects SENDMSG_ZC even though
        // the probe advertised it: sticky-downgrade the engine and re-send
        // the same slot as a plain SENDMSG — the caller never sees it.
        if (zc_enabled_) {
          zc_enabled_ = false;
          HYNET_LOG(WARN) << "SENDMSG_ZC rejected at runtime (" << -cqe.res
                          << "); downgrading to plain sends";
        }
        zc_downgrades_.fetch_add(1, std::memory_order_relaxed);
        slot.zc = false;
        if (more) {
          // A notification is still owed; resubmit when it lands.
          slot.awaiting_notif = true;
          slot.resubmit_plain = slot.alive;
          return;
        }
        if (slot.alive) {
          PrepWrite(index);
        } else {
          slot.inflight = false;
          FreeSlot(index);
        }
        return;
      }
      if (more) {
        // Result CQE of a zero-copy send: surface it now so the caller's
        // write queue advances; the slot (payload refcounts included)
        // stays pinned until the notification CQE above.
        slot.awaiting_notif = true;
        if (slot.alive) {
          IoEvent ev;
          ev.fd = slot.fd;
          ev.op = IoOpType::kWrite;
          ev.result = cqe.res;
          ev.token = slot.token;
          events_.push_back(ev);
        }
        return;
      }
      slot.inflight = false;
      if (slot.alive) {
        IoEvent ev;
        ev.fd = slot.fd;
        ev.op = IoOpType::kWrite;
        ev.result = cqe.res;
        ev.token = slot.token;
        events_.push_back(ev);
      }
      FreeSlot(index);
      return;
    }
    case OpKind::kFree:
      return;
  }
}

void UringBackend::ReleaseSurfacedReads() {
  for (const uint64_t index : surfaced_reads_) {
    slots_[index].surfaced = false;
    FreeSlot(index);
  }
  surfaced_reads_.clear();
  if (!surfaced_bids_.empty()) {
    for (const uint16_t bid : surfaced_bids_) RecycleBid(bid);
    surfaced_bids_.clear();
    PublishBufRing();
  }
}

void UringBackend::AddFd(int fd, uint32_t events) {
  const uint64_t index = AllocSlot(OpKind::kPoll, fd);
  slots_[index].poll_events = events;
  poll_slots_[fd] = index;
  PrepPoll(index);
}

void UringBackend::ModifyFd(int fd, uint32_t events) {
  RemoveFd(fd);
  AddFd(fd, events);
}

void UringBackend::RemoveFd(int fd) {
  auto it = poll_slots_.find(fd);
  if (it == poll_slots_.end()) return;
  const uint64_t index = it->second;
  poll_slots_.erase(it);
  OpSlot& slot = slots_[index];
  slot.alive = false;
  if (slot.inflight) {
    PrepCancel(index);
  } else {
    FreeSlot(index);
  }
}

void UringBackend::PrepPoll(uint64_t index) {
  OpSlot& slot = slots_[index];
  io_uring_sqe* sqe = GetSqe();
  sqe->opcode = IORING_OP_POLL_ADD;
  sqe->fd = slot.fd;
  // EPOLL* and POLL* share encodings for every bit the watchers use
  // (IN/OUT/PRI/ERR/HUP/RDHUP); the mask drops EPOLLET/ONESHOT-class bits.
  sqe->poll32_events = slot.poll_events & 0xffffu;
  sqe->user_data = index;
  slot.inflight = true;
}

void UringBackend::PrepAccept(uint64_t index) {
  OpSlot& slot = slots_[index];
  io_uring_sqe* sqe = GetSqe();
  sqe->opcode = IORING_OP_ACCEPT;
  sqe->fd = slot.fd;
  sqe->ioprio = IORING_ACCEPT_MULTISHOT;
  sqe->accept_flags = SOCK_CLOEXEC;
  sqe->user_data = index;
  slot.inflight = true;
}

void UringBackend::PrepRead(uint64_t index) {
  OpSlot& slot = slots_[index];
  io_uring_sqe* sqe = GetSqe();
  sqe->opcode = IORING_OP_RECV;
  sqe->fd = slot.fd;
  if (bufring_enabled_ && !slot.owned_read) {
    // Kernel-selected buffer from the registered ring: no buffer is
    // committed to this fd until bytes actually arrive.
    sqe->flags |= IOSQE_BUFFER_SELECT;
    sqe->buf_group = kBufGroupId;
    sqe->len = kReadChunk;
  } else {
    sqe->addr = reinterpret_cast<uint64_t>(slot.buffer.WritePtr());
    sqe->len = static_cast<uint32_t>(slot.buffer.WritableBytes());
  }
  ApplyFixedFile(sqe, slot.fd);
  sqe->user_data = index;
  slot.inflight = true;
}

void UringBackend::PrepWrite(uint64_t index) {
  OpSlot& slot = slots_[index];
  slot.msg = {};
  slot.msg.msg_iov = slot.iov;
  slot.msg.msg_iovlen = slot.iov_count;
  io_uring_sqe* sqe = GetSqe();
  sqe->opcode = slot.zc ? IORING_OP_SENDMSG_ZC : IORING_OP_SENDMSG;
  sqe->fd = slot.fd;
  sqe->addr = reinterpret_cast<uint64_t>(&slot.msg);
  sqe->len = 1;
  sqe->msg_flags = MSG_NOSIGNAL;
  // REPORT_USAGE: the notification's res carries ZC_COPIED when the kernel
  // had to copy after all (unpinnable pages), feeding the zc_copied stat.
  if (slot.zc) sqe->ioprio = IORING_SEND_ZC_REPORT_USAGE;
  ApplyFixedFile(sqe, slot.fd);
  sqe->user_data = index;
  slot.inflight = true;
}

void UringBackend::PrepCancel(uint64_t target_index) {
  io_uring_sqe* sqe = GetSqe();
  sqe->opcode = IORING_OP_ASYNC_CANCEL;
  sqe->fd = -1;
  sqe->addr = target_index;  // matches the target op's user_data
  sqe->user_data = kIgnoredUserData;
}

bool UringBackend::QueueAccept(int listen_fd) {
  const uint64_t index = AllocSlot(OpKind::kAccept, listen_fd);
  PrepAccept(index);
  return true;
}

bool UringBackend::QueueRead(int fd) {
  const uint64_t index = AllocSlot(OpKind::kRead, fd);
  if (!bufring_enabled_) {
    OpSlot& slot = slots_[index];
    slot.buffer =
        buffer_source_ ? buffer_source_->AcquireBuffer() : ByteBuffer();
    slot.buffer.EnsureWritable(kReadChunk);
  }
  PrepRead(index);
  return true;
}

int UringBackend::QueueWritePayloads(int fd, std::vector<Payload> payloads,
                                     size_t offset, uint64_t token) {
  if (payloads.empty() || payloads.size() > kMaxWritePayloads) return -1;
  const uint64_t index = AllocSlot(OpKind::kWrite, fd);
  OpSlot& slot = slots_[index];
  slot.payloads = std::move(payloads);
  slot.token = token;
  size_t n = 0;
  size_t skip = offset;  // bytes of the first payload already written
  for (const Payload& p : slot.payloads) {
    if (n >= kMaxIov) break;
    n += p.FillIov(skip, &slot.iov[n], kMaxIov - n);
    skip = 0;
  }
  if (n == 0) {
    FreeSlot(index);
    return -1;
  }
  slot.iov_count = n;
  size_t total = 0;
  for (size_t i = 0; i < n; ++i) total += slot.iov[i].iov_len;
  slot.zc = zc_enabled_ && total >= kZcThresholdBytes;
  if (slot.zc) {
    zc_sends_.fetch_add(1, std::memory_order_relaxed);
    zc_bytes_.fetch_add(total, std::memory_order_relaxed);
  }
  PrepWrite(index);
  return static_cast<int>(n);
}

void UringBackend::CancelFd(int fd) {
  auto it = fd_ops_.find(fd);
  if (it == fd_ops_.end()) {
    ReleaseFixedFile(fd);
    return;
  }
  const std::vector<uint64_t> ops = it->second;  // FreeSlot edits the map
  for (const uint64_t index : ops) {
    OpSlot& slot = slots_[index];
    if (!slot.alive) continue;
    slot.alive = false;
    if (slot.inflight) {
      // A zero-copy slot past its result CQE can't be cancelled — the
      // notification always arrives and frees it; marking it dead is all
      // that's needed (and keeps the payload refs pinned till then).
      if (!slot.awaiting_notif) PrepCancel(index);
    } else if (!slot.surfaced) {
      FreeSlot(index);
    }
    // surfaced read buffers are reclaimed at the next Wait
  }
  poll_slots_.erase(fd);
  ReleaseFixedFile(fd);
}

IoBackendStats UringBackend::Stats() const {
  IoBackendStats s;
  s.submit_batches = enter_calls_.load(std::memory_order_relaxed);
  s.sqes_submitted = sqes_submitted_.load(std::memory_order_relaxed);
  s.cqes_reaped = cqes_reaped_.load(std::memory_order_relaxed);
  s.eintr_retries = eintr_retries_.load(std::memory_order_relaxed);
  s.ebusy_retries = ebusy_retries_.load(std::memory_order_relaxed);
  s.feature_fallbacks = feature_fallbacks_.load(std::memory_order_relaxed);
  s.zc_downgrades = zc_downgrades_.load(std::memory_order_relaxed);
  s.zc_sends = zc_sends_.load(std::memory_order_relaxed);
  s.zc_bytes = zc_bytes_.load(std::memory_order_relaxed);
  s.zc_copied = zc_copied_.load(std::memory_order_relaxed);
  s.bufring_exhausted = bufring_exhausted_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace hynet
