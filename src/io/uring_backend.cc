#include "io/uring_backend.h"

#include <sys/mman.h>
#include <sys/socket.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <system_error>

#include "common/logging.h"
#include "net/socket.h"

namespace hynet {
namespace {

int SysUringSetup(unsigned entries, io_uring_params* p) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, p));
}

int SysUringEnter(int fd, unsigned to_submit, unsigned min_complete,
                  unsigned flags, const void* arg, size_t argsz) {
  return static_cast<int>(::syscall(__NR_io_uring_enter, fd, to_submit,
                                    min_complete, flags, arg, argsz));
}

[[noreturn]] void ThrowErrno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

// The ring head/tail words are shared with the kernel; plain loads/stores
// would let the compiler reorder them across the SQE/CQE payload accesses.
uint32_t LoadAcquire(const uint32_t* p) {
  return __atomic_load_n(p, __ATOMIC_ACQUIRE);
}
void StoreRelease(uint32_t* p, uint32_t v) {
  __atomic_store_n(p, v, __ATOMIC_RELEASE);
}

}  // namespace

UringBackend::UringBackend() {
  io_uring_params params{};
  // CQ sized well past SQ depth: completions accumulate all iteration
  // (every in-flight op may complete between two Wait calls) while SQ only
  // has to hold one iteration's submissions.
  params.flags = IORING_SETUP_CQSIZE;
  params.cq_entries = kCqEntries;
  const int fd = SysUringSetup(kSqEntries, &params);
  if (fd < 0) ThrowErrno("io_uring_setup");
  ring_fd_ = ScopedFd(fd);
  // EXT_ARG carries the timer timeout into the blocking enter; NODROP
  // queues CQ overflow in the kernel instead of losing completions. Both
  // are required for correctness, not speed.
  if (!(params.features & IORING_FEAT_EXT_ARG) ||
      !(params.features & IORING_FEAT_NODROP)) {
    errno = ENOSYS;
    ThrowErrno("io_uring features");
  }
  sq_entries_ = params.sq_entries;
  cq_entries_ = params.cq_entries;

  sq_ring_bytes_ = params.sq_off.array + params.sq_entries * sizeof(uint32_t);
  cq_ring_bytes_ =
      params.cq_off.cqes + params.cq_entries * sizeof(io_uring_cqe);
  if (params.features & IORING_FEAT_SINGLE_MMAP) {
    sq_ring_bytes_ = cq_ring_bytes_ = std::max(sq_ring_bytes_, cq_ring_bytes_);
  }
  void* sq = ::mmap(nullptr, sq_ring_bytes_, PROT_READ | PROT_WRITE,
                    MAP_SHARED | MAP_POPULATE, fd, IORING_OFF_SQ_RING);
  if (sq == MAP_FAILED) ThrowErrno("mmap(sq ring)");
  sq_ring_ptr_ = sq;
  if (params.features & IORING_FEAT_SINGLE_MMAP) {
    cq_ring_ptr_ = sq_ring_ptr_;
  } else {
    void* cq = ::mmap(nullptr, cq_ring_bytes_, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_POPULATE, fd, IORING_OFF_CQ_RING);
    if (cq == MAP_FAILED) {
      const int err = errno;
      ::munmap(sq_ring_ptr_, sq_ring_bytes_);
      sq_ring_ptr_ = nullptr;
      errno = err;
      ThrowErrno("mmap(cq ring)");
    }
    cq_ring_ptr_ = cq;
  }
  sqes_bytes_ = params.sq_entries * sizeof(io_uring_sqe);
  void* sqes = ::mmap(nullptr, sqes_bytes_, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_POPULATE, fd, IORING_OFF_SQES);
  if (sqes == MAP_FAILED) {
    const int err = errno;
    if (cq_ring_ptr_ != sq_ring_ptr_) ::munmap(cq_ring_ptr_, cq_ring_bytes_);
    ::munmap(sq_ring_ptr_, sq_ring_bytes_);
    sq_ring_ptr_ = cq_ring_ptr_ = nullptr;
    errno = err;
    ThrowErrno("mmap(sqes)");
  }
  sqes_ = static_cast<io_uring_sqe*>(sqes);

  auto* sq_base = static_cast<char*>(sq_ring_ptr_);
  sq_head_ = reinterpret_cast<uint32_t*>(sq_base + params.sq_off.head);
  sq_tail_ = reinterpret_cast<uint32_t*>(sq_base + params.sq_off.tail);
  sq_mask_ = *reinterpret_cast<uint32_t*>(sq_base + params.sq_off.ring_mask);
  sq_array_ = reinterpret_cast<uint32_t*>(sq_base + params.sq_off.array);
  auto* cq_base = static_cast<char*>(cq_ring_ptr_);
  cq_head_ = reinterpret_cast<uint32_t*>(cq_base + params.cq_off.head);
  cq_tail_ = reinterpret_cast<uint32_t*>(cq_base + params.cq_off.tail);
  cq_mask_ = *reinterpret_cast<uint32_t*>(cq_base + params.cq_off.ring_mask);
  cqes_ = reinterpret_cast<io_uring_cqe*>(cq_base + params.cq_off.cqes);

  sq_local_tail_ = sq_submitted_ = *sq_tail_;
}

UringBackend::~UringBackend() {
  // Close the ring first: teardown cancels and waits out in-flight ops,
  // after which the slot-owned buffers below are no longer kernel-visible.
  ring_fd_.Reset();
  if (sqes_) ::munmap(sqes_, sqes_bytes_);
  if (cq_ring_ptr_ && cq_ring_ptr_ != sq_ring_ptr_) {
    ::munmap(cq_ring_ptr_, cq_ring_bytes_);
  }
  if (sq_ring_ptr_) ::munmap(sq_ring_ptr_, sq_ring_bytes_);
  if (buffer_source_) {
    for (auto& slot : slots_) {
      if (slot.kind == OpKind::kRead) {
        buffer_source_->ReleaseBuffer(std::move(slot.buffer));
      }
    }
  }
}

uint64_t UringBackend::AllocSlot(OpKind kind, int fd) {
  uint64_t index;
  if (!free_slots_.empty()) {
    index = free_slots_.back();
    free_slots_.pop_back();
  } else {
    index = slots_.size();
    slots_.emplace_back();
  }
  OpSlot& slot = slots_[index];
  slot.kind = kind;
  slot.fd = fd;
  slot.alive = true;
  slot.inflight = false;
  slot.surfaced = false;
  fd_ops_[fd].push_back(index);
  return index;
}

void UringBackend::FreeSlot(uint64_t index) {
  OpSlot& slot = slots_[index];
  auto it = fd_ops_.find(slot.fd);
  if (it != fd_ops_.end()) {
    auto& ops = it->second;
    ops.erase(std::remove(ops.begin(), ops.end(), index), ops.end());
    if (ops.empty()) fd_ops_.erase(it);
  }
  if (slot.kind == OpKind::kRead && buffer_source_) {
    buffer_source_->ReleaseBuffer(std::move(slot.buffer));
  }
  slot = OpSlot();
  free_slots_.push_back(index);
}

io_uring_sqe* UringBackend::GetSqe() {
  // Order matters across the whole submission stream (a cancel must not
  // overtake its target), so once SQEs spill to the overflow queue all
  // later ones follow until Wait drains it back into the ring.
  if (overflow_sqes_.empty()) {
    if (sq_local_tail_ - LoadAcquire(sq_head_) >= sq_entries_) FlushSqes();
    if (sq_local_tail_ - LoadAcquire(sq_head_) < sq_entries_) {
      io_uring_sqe* sqe = &sqes_[sq_local_tail_ & sq_mask_];
      std::memset(sqe, 0, sizeof(*sqe));
      sq_array_[sq_local_tail_ & sq_mask_] = sq_local_tail_ & sq_mask_;
      ++sq_local_tail_;
      return sqe;
    }
  }
  overflow_sqes_.emplace_back();
  std::memset(&overflow_sqes_.back(), 0, sizeof(io_uring_sqe));
  return &overflow_sqes_.back();
}

void UringBackend::DrainOverflowSqes() {
  while (!overflow_sqes_.empty()) {
    if (sq_local_tail_ - LoadAcquire(sq_head_) >= sq_entries_) {
      FlushSqes();
      if (sq_local_tail_ - LoadAcquire(sq_head_) >= sq_entries_) return;
    }
    sqes_[sq_local_tail_ & sq_mask_] = overflow_sqes_.front();
    sq_array_[sq_local_tail_ & sq_mask_] = sq_local_tail_ & sq_mask_;
    ++sq_local_tail_;
    overflow_sqes_.pop_front();
  }
}

int UringBackend::Enter(unsigned to_submit, unsigned min_complete,
                        unsigned flags, void* arg, size_t argsz) {
  const int ret = RetrySyscall([&] {
    return SysUringEnter(ring_fd_.get(), to_submit, min_complete, flags, arg,
                         argsz);
  });
  enter_calls_.fetch_add(1, std::memory_order_relaxed);
  if (ret > 0 && to_submit > 0) {
    sqes_submitted_.fetch_add(static_cast<uint64_t>(ret),
                              std::memory_order_relaxed);
  }
  return ret;
}

void UringBackend::FlushSqes() {
  const unsigned pending = sq_local_tail_ - sq_submitted_;
  if (pending == 0) return;
  StoreRelease(sq_tail_, sq_local_tail_);
  const int ret = Enter(pending, 0, 0, nullptr, 0);
  if (ret > 0) sq_submitted_ += static_cast<unsigned>(ret);
}

uint32_t UringBackend::CqReady() const {
  return LoadAcquire(cq_tail_) - *cq_head_;
}

std::span<const IoEvent> UringBackend::Wait(int64_t timeout_ns) {
  ReleaseSurfacedReads();
  events_.clear();
  DrainOverflowSqes();
  StoreRelease(sq_tail_, sq_local_tail_);
  const unsigned pending = sq_local_tail_ - sq_submitted_;

  unsigned flags = IORING_ENTER_GETEVENTS;
  unsigned min_complete = 1;
  io_uring_getevents_arg arg{};
  __kernel_timespec ts{};
  void* argp = nullptr;
  size_t argsz = 0;
  if (CqReady() > 0 || timeout_ns == 0) {
    min_complete = 0;
  } else if (timeout_ns > 0) {
    ts.tv_sec = timeout_ns / 1'000'000'000;
    ts.tv_nsec = timeout_ns % 1'000'000'000;
    arg.ts = reinterpret_cast<uint64_t>(&ts);
    argp = &arg;
    argsz = sizeof(arg);
    flags |= IORING_ENTER_EXT_ARG;
  }
  // The one kernel crossing of the iteration: submit the whole batch and
  // (when nothing is ready yet) block for the first completion. Skipped
  // entirely when completions are already waiting and nothing is queued.
  if (pending > 0 || min_complete > 0) {
    const int ret = Enter(pending, min_complete, flags, argp, argsz);
    if (ret > 0) sq_submitted_ += static_cast<unsigned>(ret);
  }
  ReapCqes();
  return {events_.data(), events_.size()};
}

void UringBackend::ReapCqes() {
  uint32_t head = *cq_head_;
  const uint32_t tail = LoadAcquire(cq_tail_);
  while (head != tail) {
    HandleCqe(cqes_[head & cq_mask_]);
    ++head;
  }
  StoreRelease(cq_head_, head);
}

void UringBackend::HandleCqe(const io_uring_cqe& cqe) {
  cqes_reaped_.fetch_add(1, std::memory_order_relaxed);
  if (cqe.user_data == kIgnoredUserData) return;  // a cancel op's own CQE
  const uint64_t index = cqe.user_data;
  OpSlot& slot = slots_[index];
  switch (slot.kind) {
    case OpKind::kPoll: {
      slot.inflight = false;
      if (!slot.alive) {
        FreeSlot(index);
        return;
      }
      if (cqe.res < 0) {
        if (cqe.res == -ECANCELED) {
          PrepPoll(index);  // raced a foreign cancel; the watcher is live
          return;
        }
        IoEvent ev;
        ev.fd = slot.fd;
        ev.events = EPOLLERR | EPOLLHUP;
        events_.push_back(ev);
        return;  // not re-armed; RemoveFd reclaims the slot
      }
      IoEvent ev;
      ev.fd = slot.fd;
      ev.events = static_cast<uint32_t>(cqe.res);
      events_.push_back(ev);
      // Single-shot poll re-armed per delivery: POLL_ADD re-checks the fd
      // at submission, preserving level-triggered semantics.
      PrepPoll(index);
      return;
    }
    case OpKind::kAccept: {
      const bool more = (cqe.flags & IORING_CQE_F_MORE) != 0;
      if (!more) slot.inflight = false;
      if (!slot.alive) {
        if (cqe.res >= 0) ::close(cqe.res);
        if (!more) FreeSlot(index);
        return;
      }
      if (cqe.res >= 0) {
        IoEvent ev;
        ev.fd = slot.fd;
        ev.op = IoOpType::kAccept;
        ev.result = cqe.res;
        events_.push_back(ev);
      } else if (cqe.res == -EINVAL) {
        HYNET_LOG(WARN) << "multishot accept rejected with EINVAL; "
                           "accept chain not re-armed";
        return;
      }
      // Transient accept errors (ECONNABORTED, EMFILE, ...) are dropped;
      // a terminated multishot chain is simply re-armed.
      if (!more) PrepAccept(index);
      return;
    }
    case OpKind::kRead: {
      slot.inflight = false;
      if (!slot.alive) {
        FreeSlot(index);
        return;
      }
      if (cqe.res > 0) slot.buffer.Produced(static_cast<size_t>(cqe.res));
      IoEvent ev;
      ev.fd = slot.fd;
      ev.op = IoOpType::kRead;
      ev.result = cqe.res;
      ev.buffer = &slot.buffer;
      events_.push_back(ev);
      // The buffer is lent to the dispatch pass; reclaimed next Wait.
      slot.surfaced = true;
      surfaced_reads_.push_back(index);
      return;
    }
    case OpKind::kWrite: {
      slot.inflight = false;
      if (slot.alive) {
        IoEvent ev;
        ev.fd = slot.fd;
        ev.op = IoOpType::kWrite;
        ev.result = cqe.res;
        ev.token = slot.token;
        events_.push_back(ev);
      }
      FreeSlot(index);
      return;
    }
    case OpKind::kFree:
      return;
  }
}

void UringBackend::ReleaseSurfacedReads() {
  for (const uint64_t index : surfaced_reads_) {
    slots_[index].surfaced = false;
    FreeSlot(index);
  }
  surfaced_reads_.clear();
}

void UringBackend::AddFd(int fd, uint32_t events) {
  const uint64_t index = AllocSlot(OpKind::kPoll, fd);
  slots_[index].poll_events = events;
  poll_slots_[fd] = index;
  PrepPoll(index);
}

void UringBackend::ModifyFd(int fd, uint32_t events) {
  RemoveFd(fd);
  AddFd(fd, events);
}

void UringBackend::RemoveFd(int fd) {
  auto it = poll_slots_.find(fd);
  if (it == poll_slots_.end()) return;
  const uint64_t index = it->second;
  poll_slots_.erase(it);
  OpSlot& slot = slots_[index];
  slot.alive = false;
  if (slot.inflight) {
    PrepCancel(index);
  } else {
    FreeSlot(index);
  }
}

void UringBackend::PrepPoll(uint64_t index) {
  OpSlot& slot = slots_[index];
  io_uring_sqe* sqe = GetSqe();
  sqe->opcode = IORING_OP_POLL_ADD;
  sqe->fd = slot.fd;
  // EPOLL* and POLL* share encodings for every bit the watchers use
  // (IN/OUT/PRI/ERR/HUP/RDHUP); the mask drops EPOLLET/ONESHOT-class bits.
  sqe->poll32_events = slot.poll_events & 0xffffu;
  sqe->user_data = index;
  slot.inflight = true;
}

void UringBackend::PrepAccept(uint64_t index) {
  OpSlot& slot = slots_[index];
  io_uring_sqe* sqe = GetSqe();
  sqe->opcode = IORING_OP_ACCEPT;
  sqe->fd = slot.fd;
  sqe->ioprio = IORING_ACCEPT_MULTISHOT;
  sqe->accept_flags = SOCK_CLOEXEC;
  sqe->user_data = index;
  slot.inflight = true;
}

void UringBackend::PrepCancel(uint64_t target_index) {
  io_uring_sqe* sqe = GetSqe();
  sqe->opcode = IORING_OP_ASYNC_CANCEL;
  sqe->fd = -1;
  sqe->addr = target_index;  // matches the target op's user_data
  sqe->user_data = kIgnoredUserData;
}

bool UringBackend::QueueAccept(int listen_fd) {
  const uint64_t index = AllocSlot(OpKind::kAccept, listen_fd);
  PrepAccept(index);
  return true;
}

bool UringBackend::QueueRead(int fd) {
  const uint64_t index = AllocSlot(OpKind::kRead, fd);
  OpSlot& slot = slots_[index];
  slot.buffer = buffer_source_ ? buffer_source_->AcquireBuffer() : ByteBuffer();
  slot.buffer.EnsureWritable(kReadChunk);
  io_uring_sqe* sqe = GetSqe();
  sqe->opcode = IORING_OP_RECV;
  sqe->fd = fd;
  sqe->addr = reinterpret_cast<uint64_t>(slot.buffer.WritePtr());
  sqe->len = static_cast<uint32_t>(slot.buffer.WritableBytes());
  sqe->user_data = index;
  slot.inflight = true;
  return true;
}

int UringBackend::QueueWritePayloads(int fd, std::vector<Payload> payloads,
                                     size_t offset, uint64_t token) {
  if (payloads.empty() || payloads.size() > kMaxWritePayloads) return -1;
  const uint64_t index = AllocSlot(OpKind::kWrite, fd);
  OpSlot& slot = slots_[index];
  slot.payloads = std::move(payloads);
  slot.token = token;
  size_t n = 0;
  size_t skip = offset;  // bytes of the first payload already written
  for (const Payload& p : slot.payloads) {
    if (n >= kMaxIov) break;
    n += p.FillIov(skip, &slot.iov[n], kMaxIov - n);
    skip = 0;
  }
  if (n == 0) {
    FreeSlot(index);
    return -1;
  }
  slot.msg = {};
  slot.msg.msg_iov = slot.iov;
  slot.msg.msg_iovlen = n;
  io_uring_sqe* sqe = GetSqe();
  sqe->opcode = IORING_OP_SENDMSG;
  sqe->fd = fd;
  sqe->addr = reinterpret_cast<uint64_t>(&slot.msg);
  sqe->len = 1;
  sqe->msg_flags = MSG_NOSIGNAL;
  sqe->user_data = index;
  slot.inflight = true;
  return static_cast<int>(n);
}

void UringBackend::CancelFd(int fd) {
  auto it = fd_ops_.find(fd);
  if (it == fd_ops_.end()) return;
  const std::vector<uint64_t> ops = it->second;  // FreeSlot edits the map
  for (const uint64_t index : ops) {
    OpSlot& slot = slots_[index];
    if (!slot.alive) continue;
    slot.alive = false;
    if (slot.inflight) {
      PrepCancel(index);
    } else if (!slot.surfaced) {
      FreeSlot(index);
    }
    // surfaced read buffers are reclaimed at the next Wait
  }
  poll_slots_.erase(fd);
}

IoBackendStats UringBackend::Stats() const {
  IoBackendStats s;
  s.submit_batches = enter_calls_.load(std::memory_order_relaxed);
  s.sqes_submitted = sqes_submitted_.load(std::memory_order_relaxed);
  s.cqes_reaped = cqes_reaped_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace hynet
