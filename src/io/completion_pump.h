// The per-loop completion pump: the one place that turns io_uring CQEs
// into connection activity for every EventLoop-based architecture.
//
// Before this existed, only SingleThreadServer spoke the completion plane
// (QueueRead / QueueWritePayloads / SetCompletionHandler); the multi-loop,
// reactor-pool and staged servers drove io_uring through its readiness
// shim — POLL_ADD wakeups followed by plain read()/write() syscalls, i.e.
// epoll with extra steps. The pump extracts the CQE pump that was embedded
// in SingleThreadServer so each architecture keeps only its scheduling
// policy (who parses, who runs the handler, who flushes) and delegates the
// mechanics shared by all of them:
//
//   - engine-owned reads: one RECV SQE armed per connection (idempotent
//     through Connection::uring_read_armed), bytes appended to conn.in
//     before the architecture's on_readable hook runs;
//   - batched vectored writes: responses queue in Connection::uring_q and
//     ship as SENDMSG ops of up to kWriteBatch payloads, with short-write
//     resume, per-response writes/latency attribution and the write-stall
//     clock, exactly as the single-thread pump did;
//   - lifecycle glue: half-close flagging, stall-clock resets, and the
//     on_drained edge the architectures use for close-after-write /
//     half-close reclaim / backpressure resume / read re-arm decisions.
//
// Threading: a pump instance belongs to one EventLoop and must only be
// touched from that loop's thread (the same contract as the engine it
// drives). Architectures that prepare responses on workers marshal them to
// the loop thread (RunInLoop) and Enqueue/Flush there.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "metrics/registry.h"
#include "net/event_loop.h"
#include "runtime/buffer_pool.h"
#include "runtime/dispatch_stats.h"
#include "servers/connection.h"

namespace hynet {

// Adapts a per-loop BufferPool to the completion engine's read-buffer
// interface so recycled connection buffers feed the read SQEs (only used
// when the engine runs without a provided-buffer ring).
struct PoolBufferSource final : ReadBufferSource {
  explicit PoolBufferSource(BufferPool& p) : pool(p) {}
  ByteBuffer AcquireBuffer() override { return pool.Acquire(); }
  void ReleaseBuffer(ByteBuffer buffer) override {
    pool.Release(std::move(buffer));
  }
  BufferPool& pool;
};

class CompletionPump {
 public:
  // Payloads per SENDMSG op (each contributes up to Payload::kMaxSegments
  // iovecs); matches the engine's kMaxWritePayloads.
  static constexpr size_t kWriteBatch = 8;

  struct Hooks {
    // A read CQE landed for `fd`: bytes (if any) are already appended to
    // conn.in and lifecycle.last_activity is fresh; on EOF,
    // lifecycle.peer_half_closed is set before the call. The hook parses /
    // dispatches / closes per the architecture's policy. Return false when
    // the connection was closed (the pump must not touch it again this
    // event).
    std::function<bool(int fd)> on_readable;
    // A CQE reported a fatal error (read/write failure, cancelled op, EOF
    // handling is NOT routed here). The hook closes the connection.
    std::function<void(int fd)> on_error;
    // The write queue fully drained (uring_q empty, nothing in flight).
    // The hook decides: close after write, reclaim a half-closed peer,
    // resume a backpressured read, or re-arm the worker chain.
    std::function<void(int fd)> on_drained;
  };

  struct Options {
    // Re-arm the read SQE automatically after each on_readable that keeps
    // the connection open (single-thread / multi-loop style). The
    // dispatching architectures set false and re-arm explicitly when the
    // worker chain hands the connection back.
    bool auto_rearm = true;
  };

  CompletionPump(EventLoop& loop, WriteStats& write_stats,
                 HistogramMetric* writes_per_response,
                 HistogramMetric* request_latency_ns, Hooks hooks,
                 Options options);

  CompletionPump(const CompletionPump&) = delete;
  CompletionPump& operator=(const CompletionPump&) = delete;

  // Routes the fd's CQEs to this pump and arms the first read. The
  // Connection must stay at a stable address until Unwatch (all callers
  // heap-allocate them).
  void Watch(int fd, Connection* conn);

  // Stops routing CQEs (in-flight ops for the fd are cancelled by the
  // engine's CancelFd when the caller closes / unregisters).
  void Unwatch(int fd);

  // Arms one RECV SQE unless one is already outstanding. Safe to call on
  // every handoff; the uring_read_armed flag dedupes.
  void ArmRead(int fd, Connection& conn);

  // Appends a response to the connection's write queue. start_ns > 0
  // attributes request latency at completion (architectures that record
  // latency elsewhere pass 0). Does not submit — call Flush.
  void Enqueue(Connection& conn, Payload payload, int64_t start_ns);

  // Submits the next SENDMSG batch when nothing is in flight. Returns
  // false when submission failed and on_error closed the connection.
  bool Flush(int fd, Connection& conn);

  // True when the connection has no queued or in-flight completion-mode
  // writes. The completion-plane analogue of OutboundBuffer::Empty(), for
  // close-when-idle checks.
  static bool Idle(const Connection& conn) {
    return conn.uring_q.empty() && !conn.uring_write_inflight;
  }

 private:
  void OnCompletion(int fd, Connection* conn, const IoEvent& ev);
  void HandleRead(int fd, Connection& conn, const IoEvent& ev);
  void HandleWrite(int fd, Connection& conn, const IoEvent& ev);

  EventLoop& loop_;
  WriteStats& write_stats_;
  HistogramMetric* writes_per_response_;
  HistogramMetric* request_latency_ns_;
  Hooks hooks_;
  Options options_;
};

}  // namespace hynet
