// IoBackend: the pluggable I/O engine behind EventLoop.
//
// Two engines implement it: EpollBackend (the readiness engine the library
// has always used, byte-for-byte) and UringBackend (an io_uring completion
// engine built on raw io_uring_setup/io_uring_enter syscalls). EventLoop
// owns exactly one backend and keeps its fd-watcher/timer/wakeup semantics
// identical on both, so every architecture runs unchanged on either engine.
//
// Two event models flow through one Wait() call:
//   - readiness events (op == kReadiness) carry an EPOLL* mask and drive
//     the classic watcher path on both engines;
//   - completion events (kAccept/kRead/kWrite) carry the *result* of an
//     operation previously queued with QueueAccept/QueueRead/
//     QueueWritePayloads. Only engines where SupportsCompletions() is true
//     produce them (the uring engine); callers must feature-test.
#pragma once

#include <sys/epoll.h>

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "common/payload.h"

namespace hynet {

enum class IoBackendKind {
  kDefault,  // resolve via HYNET_IO_BACKEND, else epoll
  kEpoll,
  kUring,
};

const char* IoBackendName(IoBackendKind kind);

// "epoll" / "uring" → kind; anything else → nullopt.
std::optional<IoBackendKind> ParseIoBackendName(std::string_view name);

// Resolution precedence for a server config string: explicit non-empty
// config value > HYNET_IO_BACKEND env var > epoll. Unparseable values log
// a warning once and fall through to the next source.
IoBackendKind ResolveIoBackendKind(std::string_view configured);

// Cached capability probe: one io_uring_setup + opcode-registry check per
// process. False on old kernels (multishot accept needs the 5.19 opcode
// vintage) and on sandboxes whose seccomp policy answers EPERM/ENOSYS.
bool IoUringAvailable();

// Kernel capability surface for the optional uring features, probed once
// per process on a throwaway ring. All false when IoUringAvailable() is.
struct UringCaps {
  bool available = false;
  // IORING_OP_SENDMSG_ZC in the opcode registry (6.1+): zero-copy sends.
  bool sendmsg_zc = false;
  // IORING_REGISTER_PBUF_RING accepted (5.19+): provided buffer rings.
  bool buf_ring = false;
};
const UringCaps& ProbeUringCaps();

// Engine counters, exported by the servers through the ServerCounters
// X-macro plane. All zero on the epoll engine.
struct IoBackendStats {
  // Every io_uring_enter(2) call — the completion engine's whole kernel
  // crossing budget, whether the call submitted SQEs, reaped CQEs, or both.
  uint64_t submit_batches = 0;
  uint64_t sqes_submitted = 0;
  uint64_t cqes_reaped = 0;
  // 1 when uring was requested but probing fell back to epoll.
  uint64_t fallbacks = 0;
  // io_uring_enter retries, by cause: EINTR (signal), EBUSY (the NODROP
  // completion backlog must be reaped before new SQEs are accepted).
  uint64_t eintr_retries = 0;
  uint64_t ebusy_retries = 0;
  // Probe-time feature fallbacks: a requested ring feature (SEND_ZC,
  // provided buffers, SQPOLL) this kernel lacks, downgraded at setup.
  // Distinct from `fallbacks` (whole-engine) and `zc_downgrades` (runtime).
  uint64_t feature_fallbacks = 0;
  // Runtime downgrades: SENDMSG_ZC rejected mid-flight by the kernel or
  // socket; the op was transparently re-sent as a plain SENDMSG.
  uint64_t zc_downgrades = 0;
  // Zero-copy sends: ops submitted, bytes they covered, and the subset
  // whose notification reported the kernel copied anyway (REPORT_USAGE).
  uint64_t zc_sends = 0;
  uint64_t zc_bytes = 0;
  uint64_t zc_copied = 0;
  // Reads that found the provided buffer ring empty (ENOBUFS): the engine
  // fell back to an engine-owned buffer for that arm so progress never
  // depends on ring recycling. Sustained growth means the ring is
  // undersized for the ready-connection burst (HYNET_URING_BUFRING_ENTRIES).
  uint64_t bufring_exhausted = 0;
};

enum class IoOpType : uint8_t { kReadiness, kAccept, kRead, kWrite };

struct IoEvent {
  int fd = -1;
  IoOpType op = IoOpType::kReadiness;
  uint32_t events = 0;    // kReadiness: EPOLL* mask
  int32_t result = 0;     // kAccept: new fd; kRead/kWrite: bytes; <0: -errno
  uint64_t token = 0;     // kWrite: caller token from QueueWritePayloads
  // kRead: the filled buffer, owned by the backend and valid until the
  // next Wait() call (consumers copy or parse during dispatch). Null in
  // buffer-ring mode, where the bytes live in the registered slab.
  ByteBuffer* buffer = nullptr;
  // kRead: the received bytes, however they are backed — the registered
  // slab in buffer-ring mode, `buffer`'s readable span otherwise. Valid
  // until the next Wait(); consumers should read through this pair.
  const char* data = nullptr;
  size_t len = 0;
};

// Supplies read buffers for completion-mode reads. The server layer adapts
// its per-loop BufferPool to this interface (EventLoop::
// SetReadBufferSource) so recycled connection buffers feed the read SQEs;
// without a source the uring engine allocates fresh buffers.
class ReadBufferSource {
 public:
  virtual ~ReadBufferSource() = default;
  virtual ByteBuffer AcquireBuffer() = 0;
  virtual void ReleaseBuffer(ByteBuffer buffer) = 0;
};

class IoBackend {
 public:
  virtual ~IoBackend() = default;

  virtual IoBackendKind kind() const = 0;

  // Readiness watchers (both engines). Level-triggered EPOLL semantics:
  // a condition that stays true keeps producing events.
  virtual void AddFd(int fd, uint32_t events) = 0;
  virtual void ModifyFd(int fd, uint32_t events) = 0;
  virtual void RemoveFd(int fd) = 0;

  // Blocks up to timeout_ns (-1 = forever, 0 = poll). Returns the batch of
  // readiness + completion events; the span is valid until the next call.
  virtual std::span<const IoEvent> Wait(int64_t timeout_ns) = 0;

  virtual IoBackendStats Stats() const = 0;

  // ---- Completion operations (uring engine only) ----
  virtual bool SupportsCompletions() const { return false; }
  virtual void SetReadBufferSource(ReadBufferSource* /*source*/) {}
  // Arms a multishot accept on a listening fd: one kAccept event per
  // accepted socket (CLOEXEC), re-armed by the engine until CancelFd.
  virtual bool QueueAccept(int /*listen_fd*/) { return false; }
  // One-shot read into an engine-owned buffer (at most one outstanding
  // read per fd by caller contract).
  virtual bool QueueRead(int /*fd*/) { return false; }
  // One-shot vectored write of `payloads` starting `offset` bytes into the
  // first payload (Payload::FillIov builds the iovecs). The engine keeps
  // the payload copies alive until the CQE is reaped, so the caller may
  // close the connection with the op still in flight. Returns the iovec
  // segment count queued, or -1 if unsupported.
  virtual int QueueWritePayloads(int /*fd*/, std::vector<Payload> /*payloads*/,
                                 size_t /*offset*/, uint64_t /*token*/) {
    return -1;
  }
  // Drops every in-flight completion op on `fd` (queued cancels; stale
  // CQEs are suppressed, never surfaced).
  virtual void CancelFd(int /*fd*/) {}
};

// Constructs the engine for `kind` (resolving kDefault). A uring request
// on a kernel/sandbox that cannot run it logs a warning and returns the
// epoll engine instead, setting *fell_back.
std::unique_ptr<IoBackend> CreateIoBackend(IoBackendKind kind,
                                           bool* fell_back = nullptr);

}  // namespace hynet
