// The readiness engine: a direct wrap of Epoller behind IoBackend. Same
// syscalls in the same order as the pre-subsystem EventLoop (epoll_ctl per
// watcher change, one epoll_pwait2 per Wait), so the default path is
// byte-for-byte the measured baseline.
#pragma once

#include <vector>

#include "io/io_backend.h"
#include "net/epoll.h"

namespace hynet {

class EpollBackend final : public IoBackend {
 public:
  IoBackendKind kind() const override { return IoBackendKind::kEpoll; }

  void AddFd(int fd, uint32_t events) override { epoller_.Add(fd, events); }
  void ModifyFd(int fd, uint32_t events) override {
    epoller_.Modify(fd, events);
  }
  void RemoveFd(int fd) override { epoller_.Remove(fd); }

  std::span<const IoEvent> Wait(int64_t timeout_ns) override;

  IoBackendStats Stats() const override { return {}; }

 private:
  Epoller epoller_;
  std::vector<IoEvent> events_;
};

}  // namespace hynet
