#include "io/io_backend.h"

#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cstring>
#include <mutex>
#include <string>
#include <system_error>

#include "common/env.h"
#include "common/logging.h"
#include "io/epoll_backend.h"
#include "io/uring_backend.h"

namespace hynet {
namespace {

// Multishot accept (5.19) has no feature flag; probe the opcode registry
// and use IORING_OP_SOCKET — added in the same release — as its proxy.
// The optional-feature probes (SENDMSG_ZC, provided buffer rings) ride the
// same throwaway ring so the whole capability surface costs one setup.
UringCaps ProbeUringCapsOnce() {
  UringCaps caps;
  io_uring_params params{};
  const int fd = static_cast<int>(::syscall(__NR_io_uring_setup, 4, &params));
  if (fd < 0) return caps;  // ENOSYS, seccomp EPERM, ENOMEM, ...
  bool ok = (params.features & IORING_FEAT_EXT_ARG) &&
            (params.features & IORING_FEAT_NODROP);
  if (ok) {
    constexpr unsigned kProbeOps = 256;
    std::vector<char> storage(
        sizeof(io_uring_probe) + kProbeOps * sizeof(io_uring_probe_op), 0);
    auto* probe = reinterpret_cast<io_uring_probe*>(storage.data());
    if (::syscall(__NR_io_uring_register, fd, IORING_REGISTER_PROBE, probe,
                  kProbeOps) == 0) {
      ok = probe->last_op >= IORING_OP_SOCKET;
      const auto supported = [probe](unsigned op) {
        return op <= probe->last_op &&
               (probe->ops[op].flags & IO_URING_OP_SUPPORTED) != 0;
      };
      caps.sendmsg_zc = supported(IORING_OP_SENDMSG_ZC);
    } else {
      ok = false;
    }
  }
  if (ok) {
    // Trial-register a minimal provided-buffer ring: the registration
    // opcode (not just the RECV buffer-select path) is what old kernels
    // and seccomp policies reject.
    void* ring = ::mmap(nullptr, 4096, PROT_READ | PROT_WRITE,
                        MAP_ANONYMOUS | MAP_PRIVATE, -1, 0);
    if (ring != MAP_FAILED) {
      io_uring_buf_reg reg{};
      reg.ring_addr = reinterpret_cast<uint64_t>(ring);
      reg.ring_entries = 16;
      reg.bgid = 0;
      if (::syscall(__NR_io_uring_register, fd, IORING_REGISTER_PBUF_RING,
                    &reg, 1) == 0) {
        caps.buf_ring = true;
        io_uring_buf_reg unreg{};
        unreg.bgid = 0;
        ::syscall(__NR_io_uring_register, fd, IORING_UNREGISTER_PBUF_RING,
                  &unreg, 1);
      }
      ::munmap(ring, 4096);
    }
  }
  caps.available = ok;
  ::close(fd);
  return caps;
}

}  // namespace

const UringCaps& ProbeUringCaps() {
  static const UringCaps caps = ProbeUringCapsOnce();
  return caps;
}

const char* IoBackendName(IoBackendKind kind) {
  switch (kind) {
    case IoBackendKind::kDefault:
      return "default";
    case IoBackendKind::kEpoll:
      return "epoll";
    case IoBackendKind::kUring:
      return "uring";
  }
  return "unknown";
}

std::optional<IoBackendKind> ParseIoBackendName(std::string_view name) {
  if (name == "epoll") return IoBackendKind::kEpoll;
  if (name == "uring" || name == "io_uring") return IoBackendKind::kUring;
  return std::nullopt;
}

IoBackendKind ResolveIoBackendKind(std::string_view configured) {
  if (!configured.empty()) {
    if (auto kind = ParseIoBackendName(configured)) return *kind;
    HYNET_LOG(WARN) << "unknown io_backend \"" << std::string(configured)
                    << "\"; falling through to HYNET_IO_BACKEND/default";
  }
  const std::string env = EnvString("HYNET_IO_BACKEND", "");
  if (!env.empty()) {
    if (auto kind = ParseIoBackendName(env)) return *kind;
    static std::once_flag warned;
    std::call_once(warned, [&] {
      HYNET_LOG(WARN) << "unknown HYNET_IO_BACKEND \"" << env
                      << "\"; using epoll";
    });
  }
  return IoBackendKind::kEpoll;
}

bool IoUringAvailable() { return ProbeUringCaps().available; }

std::unique_ptr<IoBackend> CreateIoBackend(IoBackendKind kind,
                                           bool* fell_back) {
  if (fell_back) *fell_back = false;
  IoBackendKind resolved = kind;
  if (resolved == IoBackendKind::kDefault) resolved = ResolveIoBackendKind("");
  if (resolved == IoBackendKind::kUring) {
    if (IoUringAvailable()) {
      try {
        return std::make_unique<UringBackend>();
      } catch (const std::system_error& e) {
        HYNET_LOG(WARN) << "io_uring engine setup failed (" << e.what()
                        << "); falling back to epoll";
      }
    } else {
      static std::once_flag warned;
      std::call_once(warned, [] {
        HYNET_LOG(WARN) << "io_uring unavailable on this kernel/sandbox; "
                           "falling back to epoll";
      });
    }
    if (fell_back) *fell_back = true;
  }
  return std::make_unique<EpollBackend>();
}

}  // namespace hynet
