// The io_uring completion engine, built directly on io_uring_setup /
// io_uring_enter and the mmap'd SQ/CQ rings — no liburing dependency.
//
// Design:
//   - SQEs accumulate in the mmap'd submission ring all iteration long
//     (watcher re-arms, reads, writes, cancels) and ship in ONE
//     io_uring_enter per EventLoop iteration, which doubles as the
//     blocking getevents wait (IORING_ENTER_EXT_ARG carries the timer
//     timeout). That single syscall replaces epoll_wait + every read()
//     and write() of the iteration.
//   - Readiness watchers are single-shot IORING_OP_POLL_ADD ops re-armed
//     by the engine after each delivery. POLL_ADD re-checks the fd's
//     state at submission, so a condition that stays true re-fires every
//     iteration — the level-triggered contract the watcher path was
//     written against (multishot poll is edge-ish and would break the
//     spin-cap resume flows).
//   - Accepts are multishot (IORING_ACCEPT_MULTISHOT): one SQE yields a
//     CQE per accepted socket until cancelled.
//   - Reads recv into kernel-selected buffers from a registered
//     provided-buffer ring when the kernel supports it (the engine owns
//     one slab per ring; bids recycle at the next Wait), else into
//     engine-owned ByteBuffers acquired from the attached
//     ReadBufferSource (the server's per-loop BufferPool).
//   - Writes are IORING_OP_SENDMSG over iovecs built by Payload::FillIov;
//     batches of at least kZcThresholdBytes upgrade to
//     IORING_OP_SENDMSG_ZC when the kernel supports it. The op slot keeps
//     payload refcounts alive until the terminal CQE is reaped — for
//     zero-copy sends that is the *notification* CQE (F_NOTIF), which
//     lands only after the kernel is done reading the payload pages, so
//     connection teardown can never race a DMA in progress.
//   - Optional knobs (env-gated): HYNET_URING_ZC (default on),
//     HYNET_URING_BUFRING (default on), HYNET_URING_SQPOLL (default off;
//     kernel-thread submission, enter only on NEED_WAKEUP),
//     HYNET_URING_REGFILES (default off; registered-file table, sparse
//     slots updated synchronously per fd).
//
// Op slots live in a deque arena (stable addresses) with a free list;
// sqe->user_data is the slot index. A cancelled slot is marked dead and
// its eventual CQE is swallowed, which makes fd close/reuse safe: stale
// completions can never reach a new connection on a recycled fd.
#pragma once

#include <linux/io_uring.h>
#include <linux/time_types.h>
#include <sys/socket.h>
#include <sys/uio.h>

#include <atomic>
#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "common/fd.h"
#include "io/io_backend.h"

namespace hynet {

class UringBackend final : public IoBackend {
 public:
  static constexpr unsigned kSqEntries = 256;
  static constexpr unsigned kCqEntries = 4096;
  static constexpr size_t kReadChunk = 16 * 1024;
  // Payloads per write op; each contributes at most Payload::kMaxSegments.
  static constexpr size_t kMaxWritePayloads = 8;
  // Provided-buffer ring geometry (power of two; default, overridable via
  // HYNET_URING_BUFRING_ENTRIES) and its buffer group id.
  static constexpr unsigned kBufRingEntries = 256;
  static constexpr uint16_t kBufGroupId = 7;
  // Write batches at least this large go zero-copy (the ≥100KB responses
  // the write-spin study cares about; smaller sends lose more to page
  // pinning than the copy costs).
  static constexpr size_t kZcThresholdBytes = 100 * 1024;
  // Registered-file table size floor (sparse; slots assigned on first
  // use). The actual table is sized from RLIMIT_NOFILE, overridable via
  // HYNET_URING_REGFILE_SLOTS, so high-connection deployments don't fall
  // off the fixed-file fast path at slot 4096.
  static constexpr unsigned kRegisteredFileSlots = 4096;
  static constexpr unsigned kMaxRegisteredFileSlots = 65536;

  // Throws std::system_error when the kernel/sandbox cannot run the
  // engine (callers normally gate on IoUringAvailable()).
  UringBackend();
  ~UringBackend() override;
  UringBackend(const UringBackend&) = delete;
  UringBackend& operator=(const UringBackend&) = delete;

  IoBackendKind kind() const override { return IoBackendKind::kUring; }

  void AddFd(int fd, uint32_t events) override;
  void ModifyFd(int fd, uint32_t events) override;
  void RemoveFd(int fd) override;

  std::span<const IoEvent> Wait(int64_t timeout_ns) override;

  IoBackendStats Stats() const override;

  bool SupportsCompletions() const override { return true; }
  void SetReadBufferSource(ReadBufferSource* source) override {
    buffer_source_ = source;
  }
  bool QueueAccept(int listen_fd) override;
  bool QueueRead(int fd) override;
  int QueueWritePayloads(int fd, std::vector<Payload> payloads, size_t offset,
                         uint64_t token) override;
  void CancelFd(int fd) override;

 private:
  enum class OpKind : uint8_t { kFree, kPoll, kAccept, kRead, kWrite };
  static constexpr size_t kMaxIov = kMaxWritePayloads * Payload::kMaxSegments;
  static constexpr uint64_t kIgnoredUserData = ~0ull;

  struct OpSlot {
    OpKind kind = OpKind::kFree;
    int fd = -1;
    bool alive = false;     // false = cancelled; CQEs are swallowed
    bool inflight = false;  // terminal CQE not yet reaped
    bool surfaced = false;  // read buffer handed out until next Wait
    bool zc = false;        // kWrite submitted as SENDMSG_ZC
    // kWrite/zc: the result CQE (F_MORE) was reaped; the notification CQE
    // (F_NOTIF) — the kernel's "done with the pages" signal — is still
    // owed, so the slot and its payload refcounts stay pinned.
    bool awaiting_notif = false;
    // kWrite/zc: the kernel rejected SENDMSG_ZC after submission; re-prep
    // the same slot as a plain SENDMSG once the notification (if any)
    // lands.
    bool resubmit_plain = false;
    // kRead: the provided-buffer ring was exhausted (ENOBUFS), so this op
    // fell back to an engine-owned buffer for one read.
    bool owned_read = false;
    uint32_t poll_events = 0;
    uint64_t token = 0;
    ByteBuffer buffer;               // kRead (non-buffer-ring mode)
    std::vector<Payload> payloads;   // kWrite (keeps bytes alive)
    struct iovec iov[kMaxIov];       // kWrite
    size_t iov_count = 0;            // kWrite
    struct msghdr msg = {};          // kWrite
  };

  uint64_t AllocSlot(OpKind kind, int fd);
  void FreeSlot(uint64_t index);
  io_uring_sqe* GetSqe();
  // Publishes queued SQEs with a non-blocking enter (used when the SQ
  // ring fills mid-iteration; the normal path submits inside Wait).
  void FlushSqes();
  int Enter(unsigned to_submit, unsigned min_complete, unsigned flags,
            void* arg, size_t argsz);
  // Moves overflow SQEs (queued while the SQ ring was full) into the ring.
  void DrainOverflowSqes();
  void PrepPoll(uint64_t index);
  void PrepAccept(uint64_t index);
  void PrepRead(uint64_t index);
  void PrepWrite(uint64_t index);
  void PrepCancel(uint64_t target_index);
  void ReapCqes();
  void HandleCqe(const io_uring_cqe& cqe);
  void ReleaseSurfacedReads();
  uint32_t CqReady() const;

  // Provided-buffer ring plumbing (no-ops when the feature is off).
  bool SetupBufRing();
  void RecycleBid(uint16_t bid);
  void PublishBufRing();

  // Registered-file plumbing (no-ops when the feature is off).
  bool SetupRegisteredFiles();
  // Rewrites sqe->fd to the fd's fixed-table index (registering it on
  // first use) and sets IOSQE_FIXED_FILE; leaves the sqe alone when the
  // table is full or the feature is off.
  void ApplyFixedFile(io_uring_sqe* sqe, int fd);
  void ReleaseFixedFile(int fd);

  ScopedFd ring_fd_;
  unsigned sq_entries_ = 0;
  unsigned cq_entries_ = 0;

  // mmap regions (sq ring; cq ring shares it under FEAT_SINGLE_MMAP).
  void* sq_ring_ptr_ = nullptr;
  size_t sq_ring_bytes_ = 0;
  void* cq_ring_ptr_ = nullptr;
  size_t cq_ring_bytes_ = 0;
  io_uring_sqe* sqes_ = nullptr;
  size_t sqes_bytes_ = 0;

  // Ring pointers into the shared mappings.
  uint32_t* sq_head_ = nullptr;
  uint32_t* sq_tail_ = nullptr;
  uint32_t sq_mask_ = 0;
  uint32_t* sq_array_ = nullptr;
  uint32_t* sq_flags_ = nullptr;
  uint32_t* cq_head_ = nullptr;
  uint32_t* cq_tail_ = nullptr;
  uint32_t cq_mask_ = 0;
  io_uring_cqe* cqes_ = nullptr;

  // Local SQ cursor: entries [sq_submitted_, sq_local_tail_) are prepped
  // but not yet handed to the kernel.
  uint32_t sq_local_tail_ = 0;
  uint32_t sq_submitted_ = 0;

  // SQEs prepped while the SQ ring was full; drained (in order) at the
  // next Wait. Ordering matters: a cancel must not overtake its target.
  std::deque<io_uring_sqe> overflow_sqes_;

  std::deque<OpSlot> slots_;  // arena; deque keeps addresses stable
  std::vector<uint64_t> free_slots_;
  // Live op indexes per fd, for targeted cancellation (≤ 3 per conn).
  std::unordered_map<int, std::vector<uint64_t>> fd_ops_;
  // The readiness-poll slot per watched fd.
  std::unordered_map<int, uint64_t> poll_slots_;
  std::vector<uint64_t> surfaced_reads_;

  // Feature switches, resolved in the ctor from caps + env knobs.
  bool sqpoll_ = false;
  bool zc_enabled_ = false;
  bool bufring_enabled_ = false;
  bool regfiles_enabled_ = false;

  // Provided-buffer ring: bid i is backed by slab entry i. Surfaced bids
  // are on loan to the dispatch pass; recycled at the next Wait.
  unsigned buf_ring_entries_ = kBufRingEntries;
  unsigned reg_file_slots_ = kRegisteredFileSlots;
  io_uring_buf_ring* buf_ring_ = nullptr;
  size_t buf_ring_bytes_ = 0;
  char* buf_slab_ = nullptr;
  size_t buf_slab_bytes_ = 0;
  uint16_t buf_ring_tail_ = 0;
  std::vector<uint16_t> surfaced_bids_;

  // Registered-file table: fd → fixed slot, plus the free-slot pool.
  std::unordered_map<int, unsigned> fixed_files_;
  std::vector<unsigned> free_file_slots_;

  ReadBufferSource* buffer_source_ = nullptr;
  std::vector<IoEvent> events_;

  std::atomic<uint64_t> enter_calls_{0};
  std::atomic<uint64_t> sqes_submitted_{0};
  std::atomic<uint64_t> cqes_reaped_{0};
  std::atomic<uint64_t> eintr_retries_{0};
  std::atomic<uint64_t> ebusy_retries_{0};
  std::atomic<uint64_t> feature_fallbacks_{0};
  std::atomic<uint64_t> zc_downgrades_{0};
  std::atomic<uint64_t> zc_sends_{0};
  std::atomic<uint64_t> zc_bytes_{0};
  std::atomic<uint64_t> zc_copied_{0};
  std::atomic<uint64_t> bufring_exhausted_{0};
};

}  // namespace hynet
