#include "io/completion_pump.h"

#include <utility>

namespace hynet {

CompletionPump::CompletionPump(EventLoop& loop, WriteStats& write_stats,
                               HistogramMetric* writes_per_response,
                               HistogramMetric* request_latency_ns,
                               Hooks hooks, Options options)
    : loop_(loop),
      write_stats_(write_stats),
      writes_per_response_(writes_per_response),
      request_latency_ns_(request_latency_ns),
      hooks_(std::move(hooks)),
      options_(options) {}

void CompletionPump::Watch(int fd, Connection* conn) {
  loop_.SetCompletionHandler(
      fd, [this, fd, conn](const IoEvent& ev) { OnCompletion(fd, conn, ev); });
  ArmRead(fd, *conn);
}

void CompletionPump::Unwatch(int fd) { loop_.ClearCompletionHandler(fd); }

void CompletionPump::ArmRead(int fd, Connection& conn) {
  if (conn.uring_read_armed) return;
  conn.uring_read_armed = true;
  loop_.QueueRead(fd);
}

void CompletionPump::Enqueue(Connection& conn, Payload payload,
                             int64_t start_ns) {
  conn.uring_q_bytes += payload.size();
  conn.uring_q.push_back({std::move(payload), 0, start_ns});
}

bool CompletionPump::Flush(int fd, Connection& conn) {
  if (conn.uring_write_inflight || conn.uring_q.empty()) return true;
  std::vector<Payload> batch;
  const size_t n = std::min<size_t>(conn.uring_q.size(), kWriteBatch);
  batch.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    batch.push_back(conn.uring_q[i].payload);  // shares the body bytes
    conn.uring_q[i].writes++;
  }
  const int segs =
      loop_.QueueWritePayloads(fd, std::move(batch), conn.uring_q_offset);
  if (segs < 0) {
    hooks_.on_error(fd);
    return false;
  }
  conn.uring_write_inflight = true;
  // A SENDMSG SQE is the vectored-write unit of this path; it rides the
  // iteration's submit batch instead of costing its own syscall.
  write_stats_.writev_calls.fetch_add(1, std::memory_order_relaxed);
  write_stats_.iov_segments.fetch_add(static_cast<uint64_t>(segs),
                                      std::memory_order_relaxed);
  if (!conn.lifecycle.write_stalled) {
    conn.lifecycle.write_stalled = true;
    conn.lifecycle.stall_start = Now();
  }
  return true;
}

void CompletionPump::OnCompletion(int fd, Connection* conn,
                                  const IoEvent& ev) {
  if (ev.op == IoOpType::kWrite) {
    HandleWrite(fd, *conn, ev);
  } else if (ev.op == IoOpType::kRead) {
    HandleRead(fd, *conn, ev);
  }
}

void CompletionPump::HandleRead(int fd, Connection& conn, const IoEvent& ev) {
  conn.uring_read_armed = false;
  if (ev.result < 0) {
    hooks_.on_error(fd);
    return;
  }
  if (ev.result == 0) {
    // EOF: the hook answers buffered requests and decides when to reclaim
    // (peer_half_closed + Idle), so no re-arm either way.
    conn.lifecycle.peer_half_closed = true;
    hooks_.on_readable(fd);
    return;
  }
  conn.in.Append(ev.data, ev.len);
  conn.lifecycle.last_activity = Now();
  if (!hooks_.on_readable(fd)) return;  // closed: conn is gone
  if (options_.auto_rearm && !conn.close_after_write &&
      !conn.lifecycle.peer_half_closed && !conn.lifecycle.reading_paused) {
    ArmRead(fd, conn);
  }
}

void CompletionPump::HandleWrite(int fd, Connection& conn, const IoEvent& ev) {
  conn.uring_write_inflight = false;
  if (ev.result < 0) {
    hooks_.on_error(fd);  // EPIPE / ECONNRESET / cancelled
    return;
  }
  if (ev.result == 0) {
    write_stats_.zero_writes.fetch_add(1, std::memory_order_relaxed);
  }
  conn.lifecycle.last_activity = Now();
  size_t advance = static_cast<size_t>(ev.result);
  conn.uring_q_bytes -= std::min(conn.uring_q_bytes, advance);
  while (advance > 0 && !conn.uring_q.empty()) {
    auto& node = conn.uring_q.front();
    const size_t left = node.payload.size() - conn.uring_q_offset;
    if (advance < left) {
      conn.uring_q_offset += advance;
      break;
    }
    advance -= left;
    conn.uring_q_offset = 0;
    write_stats_.responses.fetch_add(1, std::memory_order_relaxed);
    if (writes_per_response_) writes_per_response_->Record(node.writes);
    if (node.start_ns > 0 && request_latency_ns_) {
      request_latency_ns_->Record(NowNanos() - node.start_ns);
    }
    conn.uring_q.pop_front();
  }
  if (!conn.uring_q.empty()) {
    // Short write: resume from the new offset. Progress resets the stall
    // clock; a peer whose window never opens still trips the sweep.
    conn.lifecycle.stall_start = Now();
    Flush(fd, conn);
    return;
  }
  conn.lifecycle.write_stalled = false;
  hooks_.on_drained(fd);
}

}  // namespace hynet
