#include "io/epoll_backend.h"

namespace hynet {

std::span<const IoEvent> EpollBackend::Wait(int64_t timeout_ns) {
  const auto ready = epoller_.Wait(timeout_ns);
  events_.clear();
  events_.reserve(ready.size());
  for (const epoll_event& ev : ready) {
    IoEvent out;
    out.fd = ev.data.fd;
    out.events = ev.events;
    events_.push_back(out);
  }
  return {events_.data(), events_.size()};
}

}  // namespace hynet
