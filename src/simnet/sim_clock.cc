#include "simnet/sim_clock.h"

// Header-only today; anchors the translation unit.
namespace hynet::simnet {}  // namespace hynet::simnet
