// Deterministic model of an event-loop server writing responses to many
// connections — simulated counterpart of the Section IV/V write-path study.
//
// Two strategies, matching the real servers:
//   kSpinUntilDone — SingleT-Async's naive path: the loop stays on one
//     connection, polling write() until the whole response is out.
//   kCappedSpin    — NettyServer's path: at most `spin_cap` write() calls
//     per visit, then the loop moves to the next connection and comes back.
//
// The simulation reports the makespan, per-connection completion times and
// write-call counts, letting tests assert the *exact* arithmetic (e.g.
// spin makespan ≈ N · ceil(R/B) · RTT, capped makespan ≈ ceil(R/B) · RTT)
// that the real-socket benches can only show approximately.
#pragma once

#include <cstdint>
#include <vector>

#include "simnet/sim_tcp.h"

namespace hynet::simnet {

enum class WriteStrategy {
  kSpinUntilDone,
  kCappedSpin,
};

struct SimLoopConfig {
  int connections = 1;
  int64_t response_bytes = 100 * 1024;
  int64_t send_buffer_bytes = 16 * 1024;
  int64_t rtt_us = 1000;
  WriteStrategy strategy = WriteStrategy::kSpinUntilDone;
  int spin_cap = 16;              // kCappedSpin only
  // Time a failed (zero-byte) poll costs the spinning loop; models the
  // syscall + scheduling cost of each futile write().
  int64_t poll_cost_us = 1;
};

struct SimLoopResult {
  int64_t makespan_us = 0;  // all responses fully ACKed at the receiver
  uint64_t total_write_calls = 0;
  uint64_t total_zero_writes = 0;
  std::vector<int64_t> completion_us;  // per connection, delivery time
};

// Runs the single-threaded loop model to completion.
SimLoopResult SimulateEventLoopWrites(const SimLoopConfig& config);

}  // namespace hynet::simnet
