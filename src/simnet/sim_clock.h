// Virtual time and a discrete-event scheduler for the simulated transport.
//
// Deterministic by construction: events at equal timestamps fire in
// insertion order. Lets the test suite verify the ACK-clocked write-spin
// arithmetic of Figure 5 exactly (number of writes, completion times)
// without real sockets or sleeps.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace hynet::simnet {

class SimClock {
 public:
  int64_t now_us() const { return now_us_; }
  void AdvanceTo(int64_t t_us) {
    if (t_us > now_us_) now_us_ = t_us;
  }

 private:
  int64_t now_us_ = 0;
};

class SimScheduler {
 public:
  using Event = std::function<void()>;

  explicit SimScheduler(SimClock& clock) : clock_(clock) {}

  void At(int64_t t_us, Event event) {
    queue_.push(Entry{t_us, seq_++, std::move(event)});
  }
  void After(int64_t delay_us, Event event) {
    At(clock_.now_us() + delay_us, std::move(event));
  }

  bool Empty() const { return queue_.empty(); }
  int64_t NextEventTime() const {
    return queue_.empty() ? -1 : queue_.top().when;
  }

  // Fires the earliest event, advancing the clock to its timestamp.
  // Returns false if no events remain.
  bool RunNext() {
    if (queue_.empty()) return false;
    // priority_queue::top is const; the entry must be copied out before pop.
    Entry entry = queue_.top();
    queue_.pop();
    clock_.AdvanceTo(entry.when);
    entry.event();
    return true;
  }

  // Runs events until the queue is empty or the next event is after t_us.
  void RunUntil(int64_t t_us) {
    while (!queue_.empty() && queue_.top().when <= t_us) RunNext();
    clock_.AdvanceTo(t_us);
  }

  void RunAll() {
    while (RunNext()) {
    }
  }

 private:
  struct Entry {
    int64_t when;
    uint64_t seq;
    Event event;
    bool operator>(const Entry& rhs) const {
      return when > rhs.when || (when == rhs.when && seq > rhs.seq);
    }
  };

  SimClock& clock_;
  uint64_t seq_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue_;
};

}  // namespace hynet::simnet
