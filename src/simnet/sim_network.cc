#include "simnet/sim_network.h"

#include <algorithm>
#include <memory>

namespace hynet::simnet {
namespace {

struct SimConn {
  std::unique_ptr<SimTcpSender> sender;
  int64_t remaining = 0;
  int64_t completion_us = -1;
};

}  // namespace

SimLoopResult SimulateEventLoopWrites(const SimLoopConfig& config) {
  SimClock clock;
  SimScheduler sched(clock);

  std::vector<SimConn> conns(static_cast<size_t>(config.connections));
  for (auto& c : conns) {
    c.sender = std::make_unique<SimTcpSender>(
        clock, sched,
        SimTcpConfig{config.send_buffer_bytes, config.rtt_us});
    c.remaining = config.response_bytes;
  }

  auto write_once = [&](SimConn& c) {
    const int64_t n = c.sender->Write(c.remaining);
    c.remaining -= n;
    return n;
  };

  // Advances virtual time across the next ACK so a blocked sender can make
  // progress; models the spinning thread burning poll_cost_us per futile
  // write until the kernel frees buffer space.
  auto spin_until_writable = [&](SimConn& c) {
    while (c.sender->FreeSpace() <= 0) {
      const int64_t ack = c.sender->NextAckTimeUs();
      if (ack < 0) break;  // nothing in flight: free space is permanent
      // Each futile poll costs poll_cost_us of (virtual) CPU.
      clock.AdvanceTo(
          std::min(ack, clock.now_us() + std::max<int64_t>(
                                             1, config.poll_cost_us)));
      const int64_t ignored = c.sender->Write(c.remaining);
      (void)ignored;  // counted as a zero write inside the sender
      sched.RunUntil(clock.now_us());
    }
  };

  if (config.strategy == WriteStrategy::kSpinUntilDone) {
    // The loop handles connections strictly one after another.
    for (auto& c : conns) {
      while (c.remaining > 0) {
        if (write_once(c) == 0) spin_until_writable(c);
        sched.RunUntil(clock.now_us());
      }
      // The response completes when the receiver has all bytes.
      while (c.sender->DeliveredBytes() < config.response_bytes) {
        sched.RunNext();
      }
      c.completion_us = c.sender->LastDeliveryTimeUs();
    }
  } else {
    // Round-robin with a per-visit spin cap (Netty).
    size_t done = 0;
    while (done < conns.size()) {
      bool progressed = false;
      for (auto& c : conns) {
        if (c.remaining == 0) continue;
        int spins = 0;
        while (c.remaining > 0 && spins < config.spin_cap) {
          clock.AdvanceTo(clock.now_us() + config.poll_cost_us);
          const int64_t n = write_once(c);
          spins++;
          if (n == 0) break;  // kernel buffer full: move on (EPOLLOUT)
          progressed = true;
        }
        if (c.remaining == 0) {
          done++;
          // Completion time resolved after draining delivery events.
        }
        sched.RunUntil(clock.now_us());
      }
      if (!progressed) {
        // Every connection is ACK-blocked: sleep until the next event
        // (the event loop parking in epoll_wait).
        if (!sched.RunNext()) break;
      }
    }
    // Drain in-flight deliveries.
    sched.RunAll();
    for (auto& c : conns) c.completion_us = c.sender->LastDeliveryTimeUs();
  }

  sched.RunAll();

  SimLoopResult result;
  for (auto& c : conns) {
    result.completion_us.push_back(c.completion_us);
    result.makespan_us = std::max(result.makespan_us, c.completion_us);
    result.total_write_calls += c.sender->write_calls();
    result.total_zero_writes += c.sender->zero_writes();
  }
  return result;
}

}  // namespace hynet::simnet
