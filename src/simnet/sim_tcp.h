// Simulated TCP send path: a fixed-capacity send buffer drained by the
// ACK clock (Figure 5 of the paper, as a deterministic model).
//
// Semantics mirrored from the kernel:
//   * Write(len) is non-blocking: it copies min(free_space, len) bytes into
//     the send buffer and returns the amount copied — 0 when the buffer is
//     full (the condition that makes asynchronous servers write-spin).
//   * Data occupies the buffer until its ACK returns one RTT later; the
//     receiver sees the bytes after one one-way latency.
#pragma once

#include <cstdint>
#include <deque>

#include "simnet/sim_clock.h"

namespace hynet::simnet {

struct SimTcpConfig {
  int64_t send_buffer_bytes = 16 * 1024;  // SO_SNDBUF
  int64_t rtt_us = 0;                     // ACK round-trip time
};

class SimTcpSender {
 public:
  SimTcpSender(SimClock& clock, SimScheduler& sched, SimTcpConfig config)
      : clock_(clock), sched_(sched), config_(config) {}

  // Non-blocking write of `len` bytes. Returns bytes accepted (0 = full).
  int64_t Write(int64_t len);

  int64_t FreeSpace() const {
    return config_.send_buffer_bytes - unacked_bytes_;
  }
  int64_t UnackedBytes() const { return unacked_bytes_; }
  // Bytes the receiver application has observed so far.
  int64_t DeliveredBytes() const { return delivered_bytes_; }
  // Simulated time at which the receiver got the last byte written so far.
  int64_t LastDeliveryTimeUs() const { return last_delivery_us_; }

  // Earliest simulated time at which FreeSpace() will grow (or -1 if it
  // cannot — nothing is in flight). A spinning writer uses this to know
  // how long its zero-byte writes would keep failing.
  int64_t NextAckTimeUs() const {
    return pending_ack_times_.empty() ? -1 : pending_ack_times_.front();
  }

  const SimTcpConfig& config() const { return config_; }

  uint64_t write_calls() const { return write_calls_; }
  uint64_t zero_writes() const { return zero_writes_; }

 private:
  SimClock& clock_;
  SimScheduler& sched_;
  SimTcpConfig config_;

  int64_t unacked_bytes_ = 0;
  int64_t delivered_bytes_ = 0;
  int64_t last_delivery_us_ = 0;
  std::deque<int64_t> pending_ack_times_;  // FIFO: ACKs arrive in write order

  uint64_t write_calls_ = 0;
  uint64_t zero_writes_ = 0;
};

}  // namespace hynet::simnet
