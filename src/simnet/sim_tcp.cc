#include "simnet/sim_tcp.h"

#include <algorithm>

namespace hynet::simnet {

int64_t SimTcpSender::Write(int64_t len) {
  write_calls_++;
  const int64_t take = std::min(len, FreeSpace());
  if (take <= 0) {
    zero_writes_++;
    return 0;
  }

  unacked_bytes_ += take;
  const int64_t now = clock_.now_us();
  const int64_t one_way = config_.rtt_us / 2;
  const int64_t ack_at = now + config_.rtt_us;

  // Receiver sees the bytes after one one-way latency...
  sched_.At(now + one_way, [this, take, deliver_at = now + one_way] {
    delivered_bytes_ += take;
    last_delivery_us_ = std::max(last_delivery_us_, deliver_at);
  });
  // ...and the ACK frees the buffer a full RTT after the write.
  pending_ack_times_.push_back(ack_at);
  sched_.At(ack_at, [this, take] {
    unacked_bytes_ -= take;
    pending_ack_times_.pop_front();
  });
  return take;
}

}  // namespace hynet::simnet
