#include "net/inet_addr.h"

#include <arpa/inet.h>

#include <cstdio>
#include <cstring>
#include <stdexcept>

namespace hynet {

InetAddr InetAddr::Loopback(uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return InetAddr(addr);
}

InetAddr InetAddr::Any(uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  return InetAddr(addr);
}

InetAddr InetAddr::FromIp(const std::string& ip, uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, ip.c_str(), &addr.sin_addr) != 1) {
    throw std::invalid_argument("bad IPv4 address: " + ip);
  }
  return InetAddr(addr);
}

uint16_t InetAddr::Port() const { return ntohs(addr_.sin_port); }

std::string InetAddr::ToString() const {
  char ip[INET_ADDRSTRLEN] = "?";
  ::inet_ntop(AF_INET, &addr_.sin_addr, ip, sizeof(ip));
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s:%u", ip, Port());
  return buf;
}

}  // namespace hynet
