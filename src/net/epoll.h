// RAII wrapper over epoll(7).
#pragma once

#include <sys/epoll.h>

#include <span>

#include "common/fd.h"

namespace hynet {

class Epoller {
 public:
  Epoller();

  void Add(int fd, uint32_t events);
  void Modify(int fd, uint32_t events);
  void Remove(int fd);

  // Waits up to timeout_ns nanoseconds (-1 = forever). Sub-millisecond
  // timeouts use epoll_pwait2; precision matters for the latency proxy's
  // ACK-clock ticks and for high-rate open-loop arrival scheduling.
  std::span<epoll_event> Wait(int64_t timeout_ns);

  int fd() const { return epfd_.get(); }

  static constexpr int kMaxEvents = 512;

 private:
  ScopedFd epfd_;
  epoll_event events_[kMaxEvents];
};

}  // namespace hynet
