#include "net/epoll.h"

#include <unistd.h>

#include <cerrno>
#include <system_error>

#include "net/socket.h"

namespace hynet {
namespace {

[[noreturn]] void ThrowErrno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

}  // namespace

Epoller::Epoller() : epfd_(::epoll_create1(EPOLL_CLOEXEC)) {
  if (!epfd_.valid()) ThrowErrno("epoll_create1");
}

void Epoller::Add(int fd, uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epfd_.get(), EPOLL_CTL_ADD, fd, &ev) < 0) {
    ThrowErrno("epoll_ctl(ADD)");
  }
}

void Epoller::Modify(int fd, uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epfd_.get(), EPOLL_CTL_MOD, fd, &ev) < 0) {
    ThrowErrno("epoll_ctl(MOD)");
  }
}

void Epoller::Remove(int fd) {
  // Ignore ENOENT/EBADF: the fd may already be closed by the owner.
  ::epoll_ctl(epfd_.get(), EPOLL_CTL_DEL, fd, nullptr);
}

std::span<epoll_event> Epoller::Wait(int64_t timeout_ns) {
  const int n = RetrySyscall([&] {
    if (timeout_ns < 0) {
      return ::epoll_wait(epfd_.get(), events_, kMaxEvents, -1);
    }
    timespec ts{};
    ts.tv_sec = timeout_ns / 1'000'000'000;
    ts.tv_nsec = timeout_ns % 1'000'000'000;
    return ::epoll_pwait2(epfd_.get(), events_, kMaxEvents, &ts, nullptr);
  });
  if (n < 0) ThrowErrno("epoll_wait");
  return {events_, static_cast<size_t>(n)};
}

}  // namespace hynet
