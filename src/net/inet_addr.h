// IPv4 socket address value type.
#pragma once

#include <netinet/in.h>

#include <cstdint>
#include <string>

namespace hynet {

class InetAddr {
 public:
  InetAddr() { addr_ = {}; }
  explicit InetAddr(const sockaddr_in& addr) : addr_(addr) {}

  // 127.0.0.1:port — the testbed runs every tier over loopback.
  static InetAddr Loopback(uint16_t port);
  // 0.0.0.0:port
  static InetAddr Any(uint16_t port);
  // Parses "a.b.c.d"; throws std::invalid_argument on bad input.
  static InetAddr FromIp(const std::string& ip, uint16_t port);

  const sockaddr* SockAddr() const {
    return reinterpret_cast<const sockaddr*>(&addr_);
  }
  sockaddr* MutableSockAddr() { return reinterpret_cast<sockaddr*>(&addr_); }
  socklen_t Length() const { return sizeof(addr_); }

  uint16_t Port() const;
  std::string ToString() const;

 private:
  sockaddr_in addr_;
};

}  // namespace hynet
