#include "net/socket.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <system_error>

namespace hynet {
namespace {

[[noreturn]] void ThrowErrno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

}  // namespace

IoResult ReadFd(int fd, void* buf, size_t len) {
  const ssize_t n = RetrySyscall([&] { return ::read(fd, buf, len); });
  return {n, n < 0 ? errno : 0};
}

IoResult WriteFd(int fd, const void* buf, size_t len) {
  // MSG_NOSIGNAL: a peer-closed socket must surface as EPIPE, not kill
  // the process with SIGPIPE (clients hang up mid-response all the time).
  const ssize_t n =
      RetrySyscall([&] { return ::send(fd, buf, len, MSG_NOSIGNAL); });
  return {n, n < 0 ? errno : 0};
}

IoResult WritevFd(int fd, const struct iovec* iov, int iovcnt) {
  msghdr msg{};
  msg.msg_iov = const_cast<struct iovec*>(iov);
  msg.msg_iovlen = static_cast<size_t>(iovcnt);
  // sendmsg rather than writev for MSG_NOSIGNAL, same as WriteFd.
  const ssize_t n = RetrySyscall([&] { return ::sendmsg(fd, &msg, MSG_NOSIGNAL); });
  return {n, n < 0 ? errno : 0};
}

Socket Socket::CreateTcp(bool nonblocking) {
  int flags = SOCK_STREAM | SOCK_CLOEXEC;
  if (nonblocking) flags |= SOCK_NONBLOCK;
  const int fd = ::socket(AF_INET, flags, IPPROTO_TCP);
  if (fd < 0) ThrowErrno("socket");
  return Socket(ScopedFd(fd));
}

void Socket::Bind(const InetAddr& addr) {
  if (::bind(fd_.get(), addr.SockAddr(), addr.Length()) < 0) {
    ThrowErrno("bind");
  }
}

void Socket::Listen(int backlog) {
  if (::listen(fd_.get(), backlog) < 0) ThrowErrno("listen");
}

std::optional<Socket> Socket::Accept(InetAddr* peer) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  const int fd = ::accept4(fd_.get(), reinterpret_cast<sockaddr*>(&addr),
                           &len, SOCK_CLOEXEC);
  if (fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR ||
        errno == ECONNABORTED) {
      return std::nullopt;
    }
    ThrowErrno("accept4");
  }
  if (peer) *peer = InetAddr(addr);
  return Socket(ScopedFd(fd));
}

void Socket::Connect(const InetAddr& addr) {
  if (RetrySyscall([&] {
        return ::connect(fd_.get(), addr.SockAddr(), addr.Length());
      }) < 0) {
    ThrowErrno("connect");
  }
}

void Socket::SetNonBlocking(bool on) { SetFdNonBlocking(fd_.get(), on); }
void Socket::SetNoDelay(bool on) { SetFdNoDelay(fd_.get(), on); }

void Socket::SetReuseAddr(bool on) {
  const int v = on ? 1 : 0;
  if (::setsockopt(fd_.get(), SOL_SOCKET, SO_REUSEADDR, &v, sizeof(v)) < 0) {
    ThrowErrno("setsockopt(SO_REUSEADDR)");
  }
}

void Socket::SetReusePort(bool on) {
  const int v = on ? 1 : 0;
  if (::setsockopt(fd_.get(), SOL_SOCKET, SO_REUSEPORT, &v, sizeof(v)) < 0) {
    ThrowErrno("setsockopt(SO_REUSEPORT)");
  }
}

void Socket::SetSendBufferSize(int bytes) {
  SetFdSendBufferSize(fd_.get(), bytes);
}

int Socket::GetSendBufferSize() const { return GetFdSendBufferSize(fd_.get()); }

void Socket::SetRecvBufferSize(int bytes) {
  if (::setsockopt(fd_.get(), SOL_SOCKET, SO_RCVBUF, &bytes, sizeof(bytes)) <
      0) {
    ThrowErrno("setsockopt(SO_RCVBUF)");
  }
}

InetAddr Socket::LocalAddr() const {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_.get(), reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    ThrowErrno("getsockname");
  }
  return InetAddr(addr);
}

InetAddr Socket::PeerAddr() const {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getpeername(fd_.get(), reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    ThrowErrno("getpeername");
  }
  return InetAddr(addr);
}

void SetFdNonBlocking(int fd, bool on) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) ThrowErrno("fcntl(F_GETFL)");
  const int next = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd, F_SETFL, next) < 0) ThrowErrno("fcntl(F_SETFL)");
}

void SetFdNoDelay(int fd, bool on) {
  const int v = on ? 1 : 0;
  if (::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &v, sizeof(v)) < 0) {
    ThrowErrno("setsockopt(TCP_NODELAY)");
  }
}

void SetFdSendBufferSize(int fd, int bytes) {
  if (::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &bytes, sizeof(bytes)) < 0) {
    ThrowErrno("setsockopt(SO_SNDBUF)");
  }
}

void SetFdRecvBufferSize(int fd, int bytes) {
  if (::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &bytes, sizeof(bytes)) < 0) {
    ThrowErrno("setsockopt(SO_RCVBUF)");
  }
}

namespace {

void SetFdIoTimeout(int fd, int optname, const char* what, int ms) {
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = (ms % 1000) * 1000;
  if (::setsockopt(fd, SOL_SOCKET, optname, &tv, sizeof(tv)) < 0) {
    ThrowErrno(what);
  }
}

}  // namespace

void SetFdRecvTimeout(int fd, int ms) {
  SetFdIoTimeout(fd, SO_RCVTIMEO, "setsockopt(SO_RCVTIMEO)", ms);
}

void SetFdSendTimeout(int fd, int ms) {
  SetFdIoTimeout(fd, SO_SNDTIMEO, "setsockopt(SO_SNDTIMEO)", ms);
}

void SetFdLingerAbort(int fd) {
  linger lg{};
  lg.l_onoff = 1;
  lg.l_linger = 0;
  if (::setsockopt(fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg)) < 0) {
    ThrowErrno("setsockopt(SO_LINGER)");
  }
}

int GetFdSendBufferSize(int fd) {
  int v = 0;
  socklen_t len = sizeof(v);
  if (::getsockopt(fd, SOL_SOCKET, SO_SNDBUF, &v, &len) < 0) {
    ThrowErrno("getsockopt(SO_SNDBUF)");
  }
  return v;
}

}  // namespace hynet
