// Thin RAII + error-code layer over BSD sockets.
//
// Hot-path I/O reports errors through IoResult (no exceptions on EAGAIN —
// the write-spin study *is* about EAGAIN); setup-path failures throw
// std::system_error per Core Guidelines E.14.
#pragma once

#include <sys/socket.h>

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <optional>

#include "common/fd.h"
#include "net/inet_addr.h"

namespace hynet {

// Runs a syscall-shaped callable (returns a signed count, sets errno on
// failure) until it stops failing with EINTR. The one retry loop shared by
// the read/write/connect wrappers and both I/O engines' wait calls —
// individual call sites must not hand-roll EINTR handling.
template <typename Syscall>
auto RetrySyscall(Syscall&& call) -> decltype(call()) {
  while (true) {
    const auto r = call();
    if (r >= 0 || errno != EINTR) return r;
  }
}

// Counted variant for engines that export retry telemetry: bumps `retries`
// once per EINTR before re-issuing the call (the uring engine feeds
// io_uring_enter through this so /stats.json can attribute signal churn).
template <typename Syscall>
auto RetrySyscallCounted(Syscall&& call, std::atomic<uint64_t>& retries)
    -> decltype(call()) {
  while (true) {
    const auto r = call();
    if (r >= 0 || errno != EINTR) return r;
    retries.fetch_add(1, std::memory_order_relaxed);
  }
}

// Result of a single read()/write() attempt.
struct IoResult {
  ssize_t n = 0;   // bytes transferred; 0 on EOF for reads
  int err = 0;     // errno when n < 0

  bool Ok() const { return n >= 0; }
  bool WouldBlock() const {
    return n < 0 && (err == EAGAIN || err == EWOULDBLOCK);
  }
  // Peer closed (read side) — only meaningful for reads.
  bool Eof() const { return n == 0; }
  bool Fatal() const { return n < 0 && !WouldBlock(); }
};

// EINTR-retrying wrappers.
IoResult ReadFd(int fd, void* buf, size_t len);
IoResult WriteFd(int fd, const void* buf, size_t len);
// Vectored write (sendmsg with MSG_NOSIGNAL): one syscall moves all
// `iovcnt` segments into the kernel, so a flush over queued messages costs
// one write per batch instead of one per message. `iovcnt` must not exceed
// IOV_MAX (callers cap their batches; see OutboundBuffer).
IoResult WritevFd(int fd, const struct iovec* iov, int iovcnt);

class Socket {
 public:
  Socket() = default;
  explicit Socket(ScopedFd fd) : fd_(std::move(fd)) {}

  // Creates a TCP socket; throws std::system_error on failure.
  static Socket CreateTcp(bool nonblocking);

  int fd() const { return fd_.get(); }
  bool valid() const { return fd_.valid(); }
  ScopedFd TakeFd() { return std::move(fd_); }

  void Bind(const InetAddr& addr);
  void Listen(int backlog = 512);
  // Returns nullopt on EAGAIN (nonblocking listener with empty queue).
  std::optional<Socket> Accept(InetAddr* peer = nullptr);
  // Blocking connect; throws on failure.
  void Connect(const InetAddr& addr);

  void SetNonBlocking(bool on);
  void SetNoDelay(bool on);
  void SetReuseAddr(bool on);
  // SO_REUSEPORT: lets N sockets bind the same port with kernel-level
  // load balancing of incoming connections (the N-copy deployment).
  void SetReusePort(bool on);
  // Sets SO_SNDBUF. Note: the kernel doubles the value and setting it
  // disables send-buffer autotuning — exactly the knob Figure 6 studies.
  void SetSendBufferSize(int bytes);
  int GetSendBufferSize() const;
  void SetRecvBufferSize(int bytes);

  InetAddr LocalAddr() const;
  InetAddr PeerAddr() const;

 private:
  ScopedFd fd_;
};

// Applies non-blocking mode to a raw fd (used for accepted fds).
void SetFdNonBlocking(int fd, bool on);
void SetFdNoDelay(int fd, bool on);
void SetFdSendBufferSize(int fd, int bytes);
int GetFdSendBufferSize(int fd);
void SetFdRecvBufferSize(int fd, int bytes);
// SO_RCVTIMEO / SO_SNDTIMEO on a blocking fd: a blocked read()/write()
// returns EAGAIN after `ms`. The thread-per-connection server uses these
// as its idle/header/write-stall deadlines. 0 disables the timeout.
void SetFdRecvTimeout(int fd, int ms);
void SetFdSendTimeout(int fd, int ms);
// SO_LINGER {on, 0}: close() sends RST and discards untransmitted data.
// Used by the chaos client and the fault-injecting proxy to abort
// connections mid-response.
void SetFdLingerAbort(int fd);

}  // namespace hynet
