// Hashed timer wheel for coarse deadlines (idle/header/write-stall sweeps).
//
// The EventLoop's priority_queue gives precise ordering but O(log n) insert
// and — worse — cancellation that leaves a dead entry in the heap until it
// pops. Connection deadlines are the opposite workload: armed and cancelled
// constantly, fired almost never, and nobody cares about sub-tick precision.
// A hashed wheel gives O(1) insert and O(1) cancel *with reclamation*: the
// entry and its index slot are freed the moment the deadline is disarmed.
//
// Deadlines are bucketed into ticks of `tick` duration across `slots`
// buckets; an entry due more than one revolution out simply stays in its
// slot until the cursor has wrapped around to it enough times. Timers never
// fire early, and never in the same servicing pass they were scheduled in
// (min one tick of delay) — a zero-delay self-rescheduling deadline cannot
// starve the caller's loop.
//
// Thread-safe; callers run popped tasks outside the wheel's lock, so a task
// may cancel other wheel entries (same-batch suppression works: a cancelled
// entry is gone before the next PopDue can see it).
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/clock.h"

namespace hynet {

// Wheel geometry, carried from ServerConfig into each EventLoop. The
// defaults are the library's historical 10ms x 512; servers expecting
// large connection tables derive a wider wheel (see WheelSpecFor).
struct TimerWheelSpec {
  Duration tick = std::chrono::milliseconds(10);
  size_t slots = 512;
};

class TimerWheel {
 public:
  using TimerId = uint64_t;
  using Task = std::function<void()>;

  // tick: bucket granularity (also the scheduling error bound and the
  // minimum effective delay). slots: buckets per revolution; deadlines
  // beyond slots*tick are handled correctly, just touched once per wrap.
  explicit TimerWheel(Duration tick = std::chrono::milliseconds(10),
                      size_t slots = 512);
  TimerWheel(const TimerWheel&) = delete;
  TimerWheel& operator=(const TimerWheel&) = delete;

  // Registers `task` to fire no earlier than `when` (rounded up to tick
  // granularity, min one tick from now). Ids are caller-assigned so one id
  // space can span wheel and heap timers.
  void Schedule(TimerId id, TimePoint when, Task task);

  // Removes the entry and reclaims its slot immediately. Returns false if
  // the id is unknown (already fired or never a wheel timer).
  bool Cancel(TimerId id);

  // Pops one due entry, earliest-slot first; nullopt when nothing is due at
  // `now`. Run the returned task without holding any wheel/loop locks.
  std::optional<Task> PopDue(TimePoint now);

  // Nanoseconds until the earliest deadline (0 if already due), or -1 when
  // empty. O(live entries) — fine for the sweep-timer cardinality this
  // wheel serves.
  int64_t NanosUntilNextNs(TimePoint now) const;

  size_t Size() const;

 private:
  struct Entry {
    TimerId id;
    int64_t tick;  // absolute tick index since origin_
    Task task;
  };
  using Slot = std::list<Entry>;

  int64_t FloorTick(TimePoint t) const;

  const Duration tick_;
  const TimePoint origin_;

  mutable std::mutex mu_;
  std::vector<Slot> slots_;
  // id -> owning slot; combined with std::list's stable iterators this
  // makes Cancel O(1) including memory reclamation.
  std::unordered_map<TimerId, std::pair<size_t, Slot::iterator>> index_;
  // Next tick whose slot has not been fully serviced yet. Entries are never
  // scheduled below the cursor, so PopDue only ever scans forward.
  int64_t cursor_ = 0;
};

}  // namespace hynet
