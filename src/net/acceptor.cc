#include "net/acceptor.h"

#include "common/logging.h"

namespace hynet {

Acceptor::Acceptor(EventLoop& loop, const InetAddr& listen_addr,
                   NewConnectionCallback cb, bool reuse_port)
    : loop_(loop),
      listen_socket_(Socket::CreateTcp(/*nonblocking=*/true)),
      callback_(std::move(cb)) {
  listen_socket_.SetReuseAddr(true);
  if (reuse_port) listen_socket_.SetReusePort(true);
  listen_socket_.Bind(listen_addr);
}

Acceptor::~Acceptor() {
  if (listening_ && !paused_) {
    if (completion_mode_) {
      loop_.ClearCompletionHandler(listen_socket_.fd());
    } else {
      loop_.UnregisterFd(listen_socket_.fd());
    }
  }
}

void Acceptor::Pause() {
  if (!listening_ || paused_) return;
  if (completion_mode_) {
    loop_.ClearCompletionHandler(listen_socket_.fd());
  } else {
    loop_.UnregisterFd(listen_socket_.fd());
  }
  paused_ = true;
}

void Acceptor::Resume() {
  if (!listening_ || !paused_) return;
  if (completion_mode_) {
    ArmCompletionAccept();
  } else {
    loop_.RegisterFd(listen_socket_.fd(), EPOLLIN,
                     [this](uint32_t) { HandleReadable(); });
  }
  paused_ = false;
}

void Acceptor::Listen() {
  listen_socket_.Listen();
  if (loop_.CompletionModeAvailable()) {
    completion_mode_ = true;
    ArmCompletionAccept();
  } else {
    loop_.RegisterFd(listen_socket_.fd(), EPOLLIN,
                     [this](uint32_t) { HandleReadable(); });
  }
  listening_ = true;
}

void Acceptor::ArmCompletionAccept() {
  loop_.SetCompletionHandler(
      listen_socket_.fd(),
      [this](const IoEvent& ev) { HandleAcceptCompletion(ev); });
  loop_.QueueAccept(listen_socket_.fd());
}

void Acceptor::HandleAcceptCompletion(const IoEvent& ev) {
  if (ev.result < 0) return;  // transient error; the engine re-arms
  // Multishot accept delivers no peer address per completion; no consumer
  // of the callback reads it, so an empty InetAddr stands in.
  callback_(Socket(ScopedFd(ev.result)), InetAddr());
}

void Acceptor::HandleReadable() {
  // Drain the accept queue: with level-triggered epoll one accept per wakeup
  // would also work, but draining reduces wakeups under accept bursts.
  while (true) {
    InetAddr peer;
    auto sock = listen_socket_.Accept(&peer);
    if (!sock) break;
    callback_(std::move(*sock), peer);
  }
}

}  // namespace hynet
