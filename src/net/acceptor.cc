#include "net/acceptor.h"

#include "common/logging.h"

namespace hynet {

Acceptor::Acceptor(EventLoop& loop, const InetAddr& listen_addr,
                   NewConnectionCallback cb, bool reuse_port)
    : loop_(loop),
      listen_socket_(Socket::CreateTcp(/*nonblocking=*/true)),
      callback_(std::move(cb)) {
  listen_socket_.SetReuseAddr(true);
  if (reuse_port) listen_socket_.SetReusePort(true);
  listen_socket_.Bind(listen_addr);
}

Acceptor::~Acceptor() {
  if (listening_ && !paused_) loop_.UnregisterFd(listen_socket_.fd());
}

void Acceptor::Pause() {
  if (!listening_ || paused_) return;
  loop_.UnregisterFd(listen_socket_.fd());
  paused_ = true;
}

void Acceptor::Resume() {
  if (!listening_ || !paused_) return;
  loop_.RegisterFd(listen_socket_.fd(), EPOLLIN,
                   [this](uint32_t) { HandleReadable(); });
  paused_ = false;
}

void Acceptor::Listen() {
  listen_socket_.Listen();
  loop_.RegisterFd(listen_socket_.fd(), EPOLLIN,
                   [this](uint32_t) { HandleReadable(); });
  listening_ = true;
}

void Acceptor::HandleReadable() {
  // Drain the accept queue: with level-triggered epoll one accept per wakeup
  // would also work, but draining reduces wakeups under accept bursts.
  while (true) {
    InetAddr peer;
    auto sock = listen_socket_.Accept(&peer);
    if (!sock) break;
    callback_(std::move(*sock), peer);
  }
}

}  // namespace hynet
