#include "net/event_loop.h"

#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <system_error>

#include "common/deadline.h"
#include "common/logging.h"
#include "common/thread_util.h"

namespace hynet {

EventLoop::EventLoop(IoBackendKind backend, TimerWheelSpec wheel)
    : backend_(CreateIoBackend(backend, &backend_fell_back_)),
      wakeup_fd_(::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK)),
      wheel_(wheel.tick, wheel.slots) {
  if (!wakeup_fd_.valid()) {
    throw std::system_error(errno, std::generic_category(), "eventfd");
  }
  backend_->AddFd(wakeup_fd_.get(), EPOLLIN);
}

EventLoop::~EventLoop() = default;

bool EventLoop::IsInLoopThread() const {
  return loop_tid_.load(std::memory_order_relaxed) == CurrentTid();
}

void EventLoop::Run() {
  loop_tid_.store(CurrentTid(), std::memory_order_relaxed);
  running_.store(true, std::memory_order_release);

  // Busy-aware arrival accounting for the tick stamp below: start of the
  // previous tick's processing window. See the comment at the stamp site.
  TimePoint prev_processing_start = Now();
  while (!stop_requested_.load(std::memory_order_acquire)) {
    // Coalescing handshake: declare "about to block" BEFORE computing the
    // wait timeout. The timeout computation re-checks pending tasks and
    // timers under their mutexes, so any producer that enqueued work and
    // then saw awake_ == true (and therefore elided its eventfd write) is
    // guaranteed to have its work observed here — the mutex hand-off
    // orders its enqueue before our check. Producers that instead see
    // awake_ == false write the eventfd and wake us the classic way.
    awake_.store(false, std::memory_order_seq_cst);
    const int64_t timeout_ns = ComputeWaitTimeoutNs();
    const TimePoint wait_enter = Now();
    auto ready = backend_->Wait(timeout_ns);
    awake_.store(true, std::memory_order_seq_cst);
    wakeups_.fetch_add(1, std::memory_order_relaxed);
    // Stamp when this tick's batch *arrived*: requests handled inline on
    // the loop thread measure dispatch sojourn from here. Two cases:
    //   - The wait actually blocked. epoll_wait returns as soon as the
    //     first fd turns ready, so nothing in the batch was ready before
    //     entering the wait — the batch arrived ~now.
    //   - The wait returned immediately (loop saturated). The batch was
    //     already ready on entry, i.e. it arrived at some point during the
    //     previous tick's processing. Stamping `now` would hide that whole
    //     kernel-side wait from the shedder and the deadline check, so
    //     charge conservatively from the previous tick's start. The
    //     overcharge is bounded by one tick length and only occurs when
    //     the loop is busy — exactly when conservatism is wanted.
    const TimePoint now = Now();
    const bool wait_blocked =
        now - wait_enter >= std::chrono::microseconds(100);
    MarkLoopTickStart(wait_blocked ? now : prev_processing_start);
    prev_processing_start = now;

    for (const IoEvent& ev : ready) {
      if (ev.op == IoOpType::kReadiness) {
        if (ev.fd == wakeup_fd_.get()) {
          DrainWakeupFd();
          continue;
        }
        auto it = entries_.find(ev.fd);
        if (it == entries_.end()) continue;  // unregistered mid-batch
        // Keep the entry alive across the callback: the callback itself may
        // unregister this fd (or others in the same ready batch).
        std::shared_ptr<FdEntry> entry = it->second;
        if (entry->alive && entry->callback) entry->callback(ev.events);
        continue;
      }
      // Completion events (uring engine only).
      auto it = completion_handlers_.find(ev.fd);
      if (it == completion_handlers_.end()) {
        // An accepted socket whose handler vanished mid-batch must not leak.
        if (ev.op == IoOpType::kAccept && ev.result >= 0) ::close(ev.result);
        continue;
      }
      std::shared_ptr<CompletionEntry> entry = it->second;
      if (entry->alive && entry->callback) entry->callback(ev);
    }

    FireDueTimers();
    RunPendingTasks();
    if (post_iteration_hook_) post_iteration_hook_();
  }
  running_.store(false, std::memory_order_release);
  loop_tid_.store(0, std::memory_order_relaxed);
}

void EventLoop::Stop() {
  stop_requested_.store(true, std::memory_order_release);
  // Deliberately bypasses coalescing: shutdown must not depend on the
  // awake_/pending_wakeup_ protocol.
  WakeUp();
}

void EventLoop::RegisterFd(int fd, uint32_t events, FdCallback cb) {
  auto entry = std::make_shared<FdEntry>();
  entry->callback = std::move(cb);
  entry->events = events;
  entries_[fd] = std::move(entry);
  backend_->AddFd(fd, events);
}

void EventLoop::ModifyFd(int fd, uint32_t events) {
  auto it = entries_.find(fd);
  if (it == entries_.end()) return;
  if (it->second->events == events) return;
  it->second->events = events;
  backend_->ModifyFd(fd, events);
}

void EventLoop::UnregisterFd(int fd) {
  auto it = entries_.find(fd);
  if (it == entries_.end()) return;
  it->second->alive = false;
  entries_.erase(it);
  backend_->RemoveFd(fd);
}

void EventLoop::SetCompletionHandler(int fd, CompletionCallback cb) {
  auto entry = std::make_shared<CompletionEntry>();
  entry->callback = std::move(cb);
  completion_handlers_[fd] = std::move(entry);
}

void EventLoop::ClearCompletionHandler(int fd) {
  auto it = completion_handlers_.find(fd);
  if (it == completion_handlers_.end()) return;
  it->second->alive = false;
  completion_handlers_.erase(it);
  backend_->CancelFd(fd);
}

IoBackendStats EventLoop::BackendStats() const {
  IoBackendStats s = backend_->Stats();
  if (backend_fell_back_) s.fallbacks = 1;
  return s;
}

void EventLoop::RunInLoop(Task task) {
  if (IsInLoopThread() && running_.load(std::memory_order_acquire)) {
    task();
  } else {
    QueueTask(std::move(task));
  }
}

void EventLoop::QueueTask(Task task) {
  {
    std::lock_guard<std::mutex> lock(task_mu_);
    pending_tasks_.push_back(std::move(task));
  }
  MaybeWakeUp();
}

EventLoop::TimerId EventLoop::RunAfter(Duration delay, Task task) {
  return RunAt(Now() + delay, std::move(task));
}

EventLoop::TimerId EventLoop::RunAfterCoarse(Duration delay, Task task) {
  const TimerId id = next_timer_id_.fetch_add(1, std::memory_order_relaxed);
  wheel_.Schedule(id, Now() + delay, std::move(task));
  MaybeWakeUp();  // the new deadline may be earlier than the current wait
  return id;
}

EventLoop::TimerId EventLoop::RunAt(TimePoint when, Task task) {
  const TimerId id = next_timer_id_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(timer_mu_);
    timers_.push(Timer{when, id});
    timer_tasks_[id] = TimerTask{when, std::move(task)};
  }
  MaybeWakeUp();  // the new deadline may be earlier than the current wait
  return id;
}

void EventLoop::CancelTimer(TimerId id) {
  if (wheel_.Cancel(id)) return;
  std::lock_guard<std::mutex> lock(timer_mu_);
  timer_tasks_.erase(id);  // heap entry becomes a no-op when it pops
  CompactTimerHeapLocked();
}

// Rebuilds the heap from live entries once cancelled carcasses dominate.
// Amortized O(1) per cancel: a rebuild of n live entries only happens after
// at least n+64 cancellations have accumulated since the last one.
void EventLoop::CompactTimerHeapLocked() {
  constexpr size_t kSlack = 64;
  if (timers_.size() <= 2 * timer_tasks_.size() + kSlack) return;
  std::vector<Timer> live;
  live.reserve(timer_tasks_.size());
  for (const auto& [id, tt] : timer_tasks_) live.push_back(Timer{tt.when, id});
  timers_ = std::priority_queue<Timer, std::vector<Timer>,
                                std::greater<Timer>>(std::greater<Timer>(),
                                                     std::move(live));
}

void EventLoop::WakeUp() {
  wakeup_writes_issued_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t one = 1;
  (void)!::write(wakeup_fd_.get(), &one, sizeof(one));
}

// The coalescing fast path. Elide the eventfd write when (a) the loop is
// awake — it re-checks all work sources before blocking again (see Run), or
// (b) another producer's write is still undrained — that write will wake
// the loop, which drains the fd before processing work. Otherwise claim the
// pending flag and write. The flag is cleared in DrainWakeupFd after the
// read, so a concurrent elision can at worst cause one spurious wakeup,
// never a lost one.
void EventLoop::MaybeWakeUp() {
  if (awake_.load(std::memory_order_seq_cst)) {
    wakeup_writes_elided_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (pending_wakeup_.exchange(true, std::memory_order_seq_cst)) {
    wakeup_writes_elided_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  WakeUp();
}

void EventLoop::DrainWakeupFd() {
  uint64_t value = 0;
  (void)!::read(wakeup_fd_.get(), &value, sizeof(value));
  pending_wakeup_.store(false, std::memory_order_seq_cst);
}

void EventLoop::RunPendingTasks() {
  std::vector<Task> tasks;
  {
    std::lock_guard<std::mutex> lock(task_mu_);
    tasks.swap(pending_tasks_);
  }
  for (auto& task : tasks) task();
}

// Full pre-block work check; must run after awake_ has been cleared (the
// mutex acquisitions below are what make producer-side elision safe).
int64_t EventLoop::ComputeWaitTimeoutNs() {
  if (stop_requested_.load(std::memory_order_acquire)) return 0;
  {
    std::lock_guard<std::mutex> lock(task_mu_);
    if (!pending_tasks_.empty()) return 0;
  }
  int64_t heap_ns = NextTimerTimeoutNs();
  const int64_t wheel_ns = wheel_.NanosUntilNextNs(Now());
  if (wheel_ns >= 0) {
    heap_ns = heap_ns < 0 ? wheel_ns : std::min(heap_ns, wheel_ns);
  }
  return heap_ns;
}

int64_t EventLoop::NextTimerTimeoutNs() {
  std::lock_guard<std::mutex> lock(timer_mu_);
  // Skip cancelled heads.
  while (!timers_.empty() && !timer_tasks_.contains(timers_.top().id)) {
    timers_.pop();
  }
  if (timers_.empty()) return -1;
  const auto delta = timers_.top().when - Now();
  if (delta <= Duration::zero()) return 0;
  const auto ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(delta).count();
  return std::min<int64_t>(ns, 60'000'000'000);
}

void EventLoop::FireDueTimers() {
  // Pop and run one timer at a time, re-checking timer_tasks_ under the
  // lock before each run: a timer callback that calls CancelTimer must be
  // able to suppress another timer due in the same batch (the eviction
  // sweeps rely on this). `now` is snapshotted once so a callback that
  // re-arms itself with zero delay fires on the next loop iteration
  // instead of spinning here forever.
  const TimePoint now = Now();
  while (true) {
    Task task;
    {
      std::lock_guard<std::mutex> lock(timer_mu_);
      while (!timers_.empty() && !timer_tasks_.contains(timers_.top().id)) {
        timers_.pop();  // cancelled
      }
      if (timers_.empty() || timers_.top().when > now) break;
      const TimerId id = timers_.top().id;
      timers_.pop();
      auto it = timer_tasks_.find(id);
      task = std::move(it->second.task);
      timer_tasks_.erase(it);
    }
    task();
  }
  // Coarse wheel timers fire after precise ones. Same one-at-a-time
  // contract: Cancel from inside a task suppresses a same-batch entry, and
  // the wheel never returns an entry scheduled during this pass.
  while (auto task = wheel_.PopDue(now)) {
    (*task)();
  }
}

size_t EventLoop::PreciseTimerCount() const {
  std::lock_guard<std::mutex> lock(timer_mu_);
  return timer_tasks_.size();
}

size_t EventLoop::TimerHeapSizeForTest() const {
  std::lock_guard<std::mutex> lock(timer_mu_);
  return timers_.size();
}

}  // namespace hynet
