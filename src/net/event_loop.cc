#include "net/event_loop.h"

#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <system_error>

#include "common/logging.h"
#include "common/thread_util.h"

namespace hynet {

EventLoop::EventLoop()
    : wakeup_fd_(::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK)) {
  if (!wakeup_fd_.valid()) {
    throw std::system_error(errno, std::generic_category(), "eventfd");
  }
  epoller_.Add(wakeup_fd_.get(), EPOLLIN);
}

EventLoop::~EventLoop() = default;

bool EventLoop::IsInLoopThread() const {
  return loop_tid_.load(std::memory_order_relaxed) == CurrentTid();
}

void EventLoop::Run() {
  loop_tid_.store(CurrentTid(), std::memory_order_relaxed);
  running_.store(true, std::memory_order_release);

  while (!stop_requested_.load(std::memory_order_acquire)) {
    const int64_t timeout_ns = NextTimerTimeoutNs();
    auto ready = epoller_.Wait(timeout_ns);
    wakeups_++;

    for (const epoll_event& ev : ready) {
      const int fd = ev.data.fd;
      if (fd == wakeup_fd_.get()) {
        DrainWakeupFd();
        continue;
      }
      auto it = entries_.find(fd);
      if (it == entries_.end()) continue;  // unregistered mid-batch
      // Keep the entry alive across the callback: the callback itself may
      // unregister this fd (or others in the same ready batch).
      std::shared_ptr<FdEntry> entry = it->second;
      if (entry->alive && entry->callback) entry->callback(ev.events);
    }

    FireDueTimers();
    RunPendingTasks();
  }
  running_.store(false, std::memory_order_release);
  loop_tid_.store(0, std::memory_order_relaxed);
}

void EventLoop::Stop() {
  stop_requested_.store(true, std::memory_order_release);
  WakeUp();
}

void EventLoop::RegisterFd(int fd, uint32_t events, FdCallback cb) {
  auto entry = std::make_shared<FdEntry>();
  entry->callback = std::move(cb);
  entry->events = events;
  entries_[fd] = std::move(entry);
  epoller_.Add(fd, events);
}

void EventLoop::ModifyFd(int fd, uint32_t events) {
  auto it = entries_.find(fd);
  if (it == entries_.end()) return;
  if (it->second->events == events) return;
  it->second->events = events;
  epoller_.Modify(fd, events);
}

void EventLoop::UnregisterFd(int fd) {
  auto it = entries_.find(fd);
  if (it == entries_.end()) return;
  it->second->alive = false;
  entries_.erase(it);
  epoller_.Remove(fd);
}

void EventLoop::RunInLoop(Task task) {
  if (IsInLoopThread() && running_.load(std::memory_order_acquire)) {
    task();
  } else {
    QueueTask(std::move(task));
  }
}

void EventLoop::QueueTask(Task task) {
  {
    std::lock_guard<std::mutex> lock(task_mu_);
    pending_tasks_.push_back(std::move(task));
  }
  WakeUp();
}

EventLoop::TimerId EventLoop::RunAfter(Duration delay, Task task) {
  return RunAt(Now() + delay, std::move(task));
}

EventLoop::TimerId EventLoop::RunAt(TimePoint when, Task task) {
  const TimerId id = next_timer_id_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(timer_mu_);
    timers_.push(Timer{when, id});
    timer_tasks_[id] = std::move(task);
  }
  WakeUp();  // the new deadline may be earlier than the current epoll timeout
  return id;
}

void EventLoop::CancelTimer(TimerId id) {
  std::lock_guard<std::mutex> lock(timer_mu_);
  timer_tasks_.erase(id);  // heap entry becomes a no-op when it pops
}

void EventLoop::WakeUp() {
  const uint64_t one = 1;
  (void)!::write(wakeup_fd_.get(), &one, sizeof(one));
}

void EventLoop::DrainWakeupFd() {
  uint64_t value = 0;
  (void)!::read(wakeup_fd_.get(), &value, sizeof(value));
}

void EventLoop::RunPendingTasks() {
  std::vector<Task> tasks;
  {
    std::lock_guard<std::mutex> lock(task_mu_);
    tasks.swap(pending_tasks_);
  }
  for (auto& task : tasks) task();
}

int64_t EventLoop::NextTimerTimeoutNs() {
  std::lock_guard<std::mutex> lock(timer_mu_);
  // Skip cancelled heads.
  while (!timers_.empty() && !timer_tasks_.contains(timers_.top().id)) {
    timers_.pop();
  }
  if (timers_.empty()) return -1;
  const auto delta = timers_.top().when - Now();
  if (delta <= Duration::zero()) return 0;
  const auto ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(delta).count();
  return std::min<int64_t>(ns, 60'000'000'000);
}

void EventLoop::FireDueTimers() {
  // Pop and run one timer at a time, re-checking timer_tasks_ under the
  // lock before each run: a timer callback that calls CancelTimer must be
  // able to suppress another timer due in the same batch (the eviction
  // sweeps rely on this). `now` is snapshotted once so a callback that
  // re-arms itself with zero delay fires on the next loop iteration
  // instead of spinning here forever.
  const TimePoint now = Now();
  while (true) {
    Task task;
    {
      std::lock_guard<std::mutex> lock(timer_mu_);
      while (!timers_.empty() && !timer_tasks_.contains(timers_.top().id)) {
        timers_.pop();  // cancelled
      }
      if (timers_.empty() || timers_.top().when > now) return;
      const TimerId id = timers_.top().id;
      timers_.pop();
      auto it = timer_tasks_.find(id);
      task = std::move(it->second);
      timer_tasks_.erase(it);
    }
    task();
  }
}

}  // namespace hynet
