#include "net/timer_wheel.h"

#include <algorithm>

namespace hynet {

TimerWheel::TimerWheel(Duration tick, size_t slots)
    : tick_(tick <= Duration::zero() ? Duration(std::chrono::milliseconds(1))
                                     : tick),
      origin_(Now()),
      slots_(std::max<size_t>(slots, 2)) {}

int64_t TimerWheel::FloorTick(TimePoint t) const {
  if (t <= origin_) return 0;
  return (t - origin_) / tick_;
}

void TimerWheel::Schedule(TimerId id, TimePoint when, Task task) {
  // Round the deadline up so a timer never fires early, and push it at
  // least one tick past "now": an entry is never due in the tick it was
  // scheduled in, which keeps a zero-delay self-rescheduler from spinning
  // the servicing loop.
  const int64_t due = FloorTick(when + tick_ - Duration(1));
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t tick = std::max({due, FloorTick(Now()) + 1, cursor_});
  Slot& slot = slots_[static_cast<size_t>(tick) % slots_.size()];
  slot.push_back(Entry{id, tick, std::move(task)});
  index_[id] = {static_cast<size_t>(tick) % slots_.size(),
                std::prev(slot.end())};
}

bool TimerWheel::Cancel(TimerId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(id);
  if (it == index_.end()) return false;
  slots_[it->second.first].erase(it->second.second);
  index_.erase(it);
  return true;
}

std::optional<TimerWheel::Task> TimerWheel::PopDue(TimePoint now) {
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t cur = FloorTick(now);
  if (index_.empty()) {
    // Fast-forward past the idle gap so the next pass is O(1).
    cursor_ = std::max(cursor_, cur + 1);
    return std::nullopt;
  }
  while (cursor_ <= cur) {
    Slot& slot = slots_[static_cast<size_t>(cursor_) % slots_.size()];
    for (auto it = slot.begin(); it != slot.end(); ++it) {
      if (it->tick > cur) continue;  // a later revolution of this slot
      Task task = std::move(it->task);
      index_.erase(it->id);
      slot.erase(it);
      return task;
    }
    // No due entries left in this slot for this revolution.
    ++cursor_;
  }
  return std::nullopt;
}

int64_t TimerWheel::NanosUntilNextNs(TimePoint now) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (index_.empty()) return -1;
  const int64_t cur = FloorTick(now);
  int64_t best = INT64_MAX;
  for (const Slot& slot : slots_) {
    for (const Entry& e : slot) {
      if (e.tick <= cur) return 0;
      best = std::min(best, e.tick);
    }
  }
  const TimePoint due = origin_ + best * tick_;
  if (due <= now) return 0;
  return std::chrono::duration_cast<std::chrono::nanoseconds>(due - now)
      .count();
}

size_t TimerWheel::Size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return index_.size();
}

}  // namespace hynet
