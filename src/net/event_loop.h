// EventLoop: one thread running epoll dispatch + cross-thread task queue +
// monotonic timers. The building block for every asynchronous architecture
// in this library (reactor threads, single-threaded servers, Netty-style
// worker loops, the latency proxy, and the load generator).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/fd.h"
#include "net/epoll.h"

namespace hynet {

class EventLoop {
 public:
  using FdCallback = std::function<void(uint32_t events)>;
  using Task = std::function<void()>;
  using TimerId = uint64_t;

  EventLoop();
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // Runs until Stop(); must be called from exactly one thread.
  void Run();
  // Safe from any thread.
  void Stop();

  // Fd watchers. Register/Modify/Unregister must run on the loop thread
  // (use RunInLoop from other threads).
  void RegisterFd(int fd, uint32_t events, FdCallback cb);
  void ModifyFd(int fd, uint32_t events);
  void UnregisterFd(int fd);
  bool IsRegistered(int fd) const { return entries_.contains(fd); }

  // Runs `task` on the loop thread: immediately if already there,
  // otherwise enqueues and wakes the loop.
  void RunInLoop(Task task);
  // Always enqueues (even from the loop thread).
  void QueueTask(Task task);

  // Timers (loop thread or any thread; thread-safe).
  TimerId RunAfter(Duration delay, Task task);
  TimerId RunAt(TimePoint when, Task task);
  void CancelTimer(TimerId id);

  bool IsInLoopThread() const;

  // Statistics: number of epoll_wait returns and dispatched events.
  uint64_t WakeupCount() const { return wakeups_; }

 private:
  struct FdEntry {
    FdCallback callback;
    uint32_t events = 0;
    bool alive = true;
  };

  struct Timer {
    TimePoint when;
    TimerId id;
    bool operator>(const Timer& rhs) const {
      return when > rhs.when || (when == rhs.when && id > rhs.id);
    }
  };

  void WakeUp();
  void DrainWakeupFd();
  void RunPendingTasks();
  int64_t NextTimerTimeoutNs();
  void FireDueTimers();

  Epoller epoller_;
  ScopedFd wakeup_fd_;
  // stop_requested_ is separate from running_ so a Stop() issued before
  // Run() ever starts is not lost (the loop checks it on entry).
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> running_{false};
  std::atomic<int> loop_tid_{0};

  std::unordered_map<int, std::shared_ptr<FdEntry>> entries_;

  mutable std::mutex task_mu_;
  std::vector<Task> pending_tasks_;

  mutable std::mutex timer_mu_;
  std::priority_queue<Timer, std::vector<Timer>, std::greater<Timer>> timers_;
  std::unordered_map<TimerId, Task> timer_tasks_;
  std::atomic<TimerId> next_timer_id_{1};

  uint64_t wakeups_ = 0;
};

}  // namespace hynet
