// EventLoop: one thread running I/O dispatch + cross-thread task queue +
// monotonic timers. The building block for every asynchronous architecture
// in this library (reactor threads, single-threaded servers, Netty-style
// worker loops, the latency proxy, and the load generator).
//
// I/O runs through a pluggable IoBackend (src/io/): the epoll readiness
// engine by default, or the io_uring completion engine when selected via
// ServerConfig::io_backend / HYNET_IO_BACKEND. The watcher, timer, wakeup,
// and post-iteration-hook semantics are identical on both engines; the
// completion plane (SetCompletionHandler + Queue*) is additionally
// available when CompletionModeAvailable().
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/fd.h"
#include "io/io_backend.h"
#include "net/timer_wheel.h"

namespace hynet {

class EventLoop {
 public:
  using FdCallback = std::function<void(uint32_t events)>;
  using CompletionCallback = std::function<void(const IoEvent& ev)>;
  using Task = std::function<void()>;
  using TimerId = uint64_t;

  explicit EventLoop(IoBackendKind backend = IoBackendKind::kDefault,
                     TimerWheelSpec wheel = {});
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // Runs until Stop(); must be called from exactly one thread.
  void Run();
  // Safe from any thread.
  void Stop();

  // Fd watchers. Register/Modify/Unregister must run on the loop thread
  // (use RunInLoop from other threads).
  void RegisterFd(int fd, uint32_t events, FdCallback cb);
  void ModifyFd(int fd, uint32_t events);
  void UnregisterFd(int fd);
  bool IsRegistered(int fd) const { return entries_.contains(fd); }

  // Runs `task` on the loop thread: immediately if already there,
  // otherwise enqueues and wakes the loop.
  void RunInLoop(Task task);
  // Always enqueues (even from the loop thread).
  void QueueTask(Task task);

  // Timers (loop thread or any thread; thread-safe). RunAfter/RunAt go on
  // the precise heap; RunAfterCoarse goes on the hashed timer wheel —
  // O(1) arm/disarm with tick (10ms) granularity, the right home for
  // arm-often/fire-rarely connection deadlines. One TimerId space covers
  // both, so CancelTimer works on either.
  TimerId RunAfter(Duration delay, Task task);
  TimerId RunAfterCoarse(Duration delay, Task task);
  TimerId RunAt(TimePoint when, Task task);
  void CancelTimer(TimerId id);

  bool IsInLoopThread() const;

  // Runs on the loop thread at the end of every loop iteration (after fd
  // dispatch, timers, and pending tasks). Used to flush per-iteration
  // accumulations — e.g. handing one epoll batch of ready events to a
  // worker pool in a single wake. Set before Run() starts.
  void SetPostIterationHook(Task hook) { post_iteration_hook_ = std::move(hook); }

  // Statistics: number of epoll_wait returns and dispatched events.
  uint64_t WakeupCount() const {
    return wakeups_.load(std::memory_order_relaxed);
  }
  // Wakeup-coalescing effectiveness: eventfd writes actually issued vs
  // elided because the loop was already awake (or a write was in flight).
  uint64_t WakeupWritesIssued() const {
    return wakeup_writes_issued_.load(std::memory_order_relaxed);
  }
  uint64_t WakeupWritesElided() const {
    return wakeup_writes_elided_.load(std::memory_order_relaxed);
  }

  // Introspection for tests.
  size_t PreciseTimerCount() const;
  size_t CoarseTimerCount() const { return wheel_.Size(); }
  size_t TimerHeapSizeForTest() const;

  // ---- I/O engine ----
  IoBackendKind BackendKind() const { return backend_->kind(); }
  const char* BackendName() const { return IoBackendName(backend_->kind()); }
  // Engine counters; `fallbacks` is 1 when uring was requested for this
  // loop but creation fell back to epoll.
  IoBackendStats BackendStats() const;

  // Completion plane (loop thread only; engine contracts in io_backend.h).
  // Only meaningful when the backend reports SupportsCompletions().
  bool CompletionModeAvailable() const {
    return backend_->SupportsCompletions();
  }
  void SetReadBufferSource(ReadBufferSource* source) {
    backend_->SetReadBufferSource(source);
  }
  // Routes kAccept/kRead/kWrite events for `fd` to `cb`. Clearing cancels
  // every in-flight op on the fd; late completions are never delivered.
  void SetCompletionHandler(int fd, CompletionCallback cb);
  void ClearCompletionHandler(int fd);
  bool QueueAccept(int listen_fd) { return backend_->QueueAccept(listen_fd); }
  bool QueueRead(int fd) { return backend_->QueueRead(fd); }
  int QueueWritePayloads(int fd, std::vector<Payload> payloads, size_t offset,
                         uint64_t token = 0) {
    return backend_->QueueWritePayloads(fd, std::move(payloads), offset,
                                        token);
  }

 private:
  struct FdEntry {
    FdCallback callback;
    uint32_t events = 0;
    bool alive = true;
  };

  struct Timer {
    TimePoint when;
    TimerId id;
    bool operator>(const Timer& rhs) const {
      return when > rhs.when || (when == rhs.when && id > rhs.id);
    }
  };

  struct TimerTask {
    TimePoint when;
    Task task;
  };

  void WakeUp();
  void MaybeWakeUp();
  void DrainWakeupFd();
  void RunPendingTasks();
  int64_t ComputeWaitTimeoutNs();
  int64_t NextTimerTimeoutNs();
  void FireDueTimers();
  void CompactTimerHeapLocked();

  std::unique_ptr<IoBackend> backend_;
  bool backend_fell_back_ = false;
  ScopedFd wakeup_fd_;
  // stop_requested_ is separate from running_ so a Stop() issued before
  // Run() ever starts is not lost (the loop checks it on entry).
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> running_{false};
  std::atomic<int> loop_tid_{0};

  std::unordered_map<int, std::shared_ptr<FdEntry>> entries_;

  struct CompletionEntry {
    CompletionCallback callback;
    bool alive = true;
  };
  std::unordered_map<int, std::shared_ptr<CompletionEntry>>
      completion_handlers_;

  mutable std::mutex task_mu_;
  std::vector<Task> pending_tasks_;

  mutable std::mutex timer_mu_;
  std::priority_queue<Timer, std::vector<Timer>, std::greater<Timer>> timers_;
  // Stores the deadline alongside the task so the heap can be rebuilt from
  // live entries when cancellations leave it mostly dead (see
  // CompactTimerHeapLocked).
  std::unordered_map<TimerId, TimerTask> timer_tasks_;
  std::atomic<TimerId> next_timer_id_{1};

  TimerWheel wheel_;

  Task post_iteration_hook_;

  // Wakeup coalescing (see MaybeWakeUp for the protocol). awake_ is true
  // from the moment epoll_wait returns until the loop is about to block
  // again; pending_wakeup_ is true while an eventfd write is undrained.
  std::atomic<bool> awake_{false};
  std::atomic<bool> pending_wakeup_{false};
  std::atomic<uint64_t> wakeup_writes_issued_{0};
  std::atomic<uint64_t> wakeup_writes_elided_{0};

  std::atomic<uint64_t> wakeups_{0};
};

}  // namespace hynet
