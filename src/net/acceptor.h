// Event-loop driven TCP acceptor: owns the listening socket and invokes a
// callback for every accepted connection.
#pragma once

#include <functional>

#include "net/event_loop.h"
#include "net/socket.h"

namespace hynet {

class Acceptor {
 public:
  using NewConnectionCallback =
      std::function<void(Socket socket, const InetAddr& peer)>;

  // Binds immediately (so the chosen port is known before the loop runs);
  // port 0 picks an ephemeral port.
  Acceptor(EventLoop& loop, const InetAddr& listen_addr,
           NewConnectionCallback cb, bool reuse_port = false);
  ~Acceptor();

  // Starts accepting; must be invoked on the loop thread (or before Run()).
  void Listen();

  // Admission control: stop/restart pulling from the accept queue without
  // closing the listening socket (pending connections stay in the kernel
  // backlog and the port stays bound). Loop thread only. Idempotent.
  void Pause();
  void Resume();
  bool paused() const { return listening_ && paused_; }

  uint16_t Port() const { return listen_socket_.LocalAddr().Port(); }

 private:
  void HandleReadable();
  void ArmCompletionAccept();
  void HandleAcceptCompletion(const IoEvent& ev);

  EventLoop& loop_;
  Socket listen_socket_;
  NewConnectionCallback callback_;
  bool listening_ = false;
  bool paused_ = false;
  // On a completion engine the acceptor runs a multishot accept op instead
  // of an EPOLLIN watcher + accept4 drain loop.
  bool completion_mode_ = false;
};

}  // namespace hynet
