// Pipelined multiplexed RPC load generator.
//
// The HTTP closed loop (client/load_gen.h) keeps exactly one request
// outstanding per connection, because HTTP/1.1 responses come back in
// request order. The RPC framing lifts that restriction, and this
// generator exercises it: each connection keeps `pipeline_depth` requests
// in flight, issuing a new one the moment *any* response completes —
// responses are matched by request_id, so the server may (and under mixed
// per-method routing does) complete them out of arrival order.
//
// The built-in workload is the KV mix: Lookup / Read / Write over a
// Zipf-popular key space preloaded with KvStore::Preload's naming.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "app/kv_service.h"
#include "common/histogram.h"
#include "net/inet_addr.h"

namespace hynet {

// One entry of the method mix, picked per request by weight.
struct RpcMethodMix {
  uint16_t method_id = kKvMethodLookup;
  double weight = 1.0;
};

struct RpcLoadConfig {
  InetAddr server;
  int connections = 1;
  // Outstanding requests per connection (1 = the HTTP-equivalent closed
  // loop; 16/64 = the multiplexed pipelining the bench sweeps).
  int pipeline_depth = 1;
  double warmup_sec = 0.2;
  double measure_sec = 1.0;
  std::vector<RpcMethodMix> mix{{kKvMethodLookup, 1.0}};

  // KV workload shape. Keys are KvStore::PreloadKey(i, key_prefix) with i
  // Zipf-distributed over [0, key_space) — the server should have
  // Preload()ed the same range.
  uint64_t key_space = 1000;
  std::string key_prefix = "key-";
  double zipf_theta = 0.99;  // 0 = uniform popularity
  size_t write_value_bytes = 512;

  uint64_t seed = 1;
  // SO_RCVBUF for client sockets; bounding it keeps large Read responses
  // write-spinning on loopback (same rationale as the HTTP load gen).
  int rcv_buf_bytes = 16 * 1024;
};

struct RpcMethodResult {
  uint64_t completed = 0;
  uint64_t not_found = 0;
  Histogram latency;
};

struct RpcLoadResult {
  uint64_t completed = 0;   // responses received inside the measure window
  uint64_t errors = 0;      // transport failures + unexpected statuses
  double elapsed_sec = 0;
  Histogram latency;        // all methods merged
  // Responses that overtook an earlier in-flight request on their
  // connection, as seen by the client (the server counts its own view in
  // rpc_out_of_order_responses).
  uint64_t out_of_order = 0;
  std::map<uint16_t, RpcMethodResult> per_method;

  double Throughput() const {
    return elapsed_sec > 0 ? static_cast<double>(completed) / elapsed_sec : 0;
  }
};

// Runs the pipelined loop (warmup + measure) with one thread per
// connection; returns merged results. Throws std::system_error if the
// server cannot be reached.
RpcLoadResult RunRpcLoad(const RpcLoadConfig& config);

}  // namespace hynet
