// Client-side retry policy with a retry *budget*.
//
// Naive retries turn transient overload into metastable collapse: every
// shed response spawns another request, so offered load rises exactly when
// capacity falls. This policy bounds the amplification in three ways:
//   - exponential backoff with full jitter (retries spread out instead of
//     synchronizing into waves),
//   - idempotent-only (a lost non-idempotent request must surface as an
//     error, not a duplicate side effect),
//   - a token-bucket budget: each success earns `budget_ratio` tokens and
//     each retry spends one, capping total retries at
//     initial_tokens + budget_ratio × successes regardless of how hard the
//     downstream fails.
// A server-provided Retry-After hint is honored as a floor on the backoff.
//
// Shared by the load generator, the bench harness, and the rubbos
// db_client (thread-safe: one mutex, taken per failed attempt).
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string_view>

#include "common/clock.h"
#include "common/rng.h"
#include "proto/rpc_codec.h"
#include "runtime/dispatch_stats.h"

namespace hynet {

struct RetryPolicyConfig {
  int max_attempts = 3;          // total tries per request, incl. the first
  double base_backoff_ms = 5.0;  // backoff before retry #1 (then doubles)
  double max_backoff_ms = 200.0;
  double budget_ratio = 0.1;     // tokens earned per success
  double initial_tokens = 10.0;  // tokens available before any success
  double max_tokens = 100.0;     // bucket cap
};

// Statuses worth retrying: transient overload rejections. 504 is excluded
// deliberately — the request's deadline is already gone, so a retry is
// pure added load with no caller left to benefit.
bool RetryableStatus(int status);

// RPC-plane analogue: kShed is the 503 of the binary framing. kExpired is
// excluded for the same reason as 504, and kError is excluded because a
// handler failure is not evidence of transient overload. Whether a retry
// is *allowed* at all is the per-method idempotency decision the mesh
// channel makes (Lookup/Read-style methods yes, Write-style no) — the
// HTTP-verb heuristic does not exist on this plane.
bool RetryableRpcStatus(RpcStatus status);

class RetryPolicy {
 public:
  RetryPolicy(RetryPolicyConfig config, uint64_t seed);

  // Decision for a failed attempt. `attempt` = tries already made (>= 1);
  // `retry_after_sec` = the response's Retry-After hint (0 = none).
  // Returns the backoff delay when a retry is allowed, nullopt when the
  // request must fail through (non-idempotent, attempts exhausted, or
  // budget empty).
  std::optional<Duration> NextRetryDelay(int attempt, bool idempotent,
                                         int retry_after_sec);

  // Deposits budget. Call once per successful request (not per attempt).
  void OnSuccess();

  uint64_t RetriesIssued() const;
  uint64_t BudgetExhausted() const;
  // Successful requests observed (OnSuccess calls): the token-bucket
  // invariant retries <= initial_tokens + budget_ratio * successes is
  // checkable against this.
  uint64_t Successes() const;

  // Mirrors retries_issued / retry_budget_exhausted into a server's
  // lifecycle counters so a tier's retry activity rides the same X-macro
  // export as its admission paths. Must outlive this policy.
  void BindLifecycle(LifecycleStats* lifecycle);

 private:
  const RetryPolicyConfig config_;
  mutable std::mutex mu_;
  Rng rng_;
  double tokens_;
  uint64_t retries_issued_ = 0;
  uint64_t budget_exhausted_ = 0;
  uint64_t successes_ = 0;
  LifecycleStats* lifecycle_ = nullptr;
};

}  // namespace hynet
