// One-stop harness for running a benchmark point: boots a server of the
// requested architecture, optionally interposes the latency proxy, drives
// the closed-loop load, and scopes /proc metrics to the server's threads
// over exactly the measurement window.
#pragma once

#include <optional>

#include "client/load_gen.h"
#include "core/hybrid_server.h"
#include "metrics/cpu_sample.h"
#include "servers/server.h"

namespace hynet {

// The standard benchmark handler understands targets of the form
//   /bench?size=<bytes>&us=<cpu-microseconds>
// and responds with <bytes> of in-memory payload after burning the given
// CPU time (the paper's "simple computation before responding").
Handler MakeBenchHandler();
std::string BenchTarget(size_t response_bytes, double cpu_us);

// CPU demand model used across the figure benches: positively correlated
// with response size, as in the paper's micro-benchmarks.
double DefaultCpuUs(size_t response_bytes);

struct BenchPoint {
  ServerConfig server;
  std::vector<WeightedTarget> targets;
  int concurrency = 1;
  double warmup_sec = 0.3;
  double measure_sec = 1.0;
  // One-way network latency between client and server; > 0 interposes the
  // userspace latency proxy (tc substitute).
  double latency_ms = 0.0;
  int client_rcv_buf = 16 * 1024;
  uint64_t seed = 1;
  // > 0: open-loop Poisson arrivals at this rate instead of closed loop.
  double open_loop_rate = 0.0;
  // Client resilience plane, forwarded to LoadConfig (the server side is
  // configured through `server` directly).
  int request_deadline_ms = 0;
  bool client_retries = false;
  RetryPolicyConfig retry;
};

struct BenchPointResult {
  LoadResult load;
  ActivityDelta activity;   // server threads, measure window only
  ServerCounters counters;  // server counter deltas, measure window only
  // Whole-process user/system CPU over the window (getrusage): includes
  // the client loop, but is microsecond-granular where per-thread ticks
  // are not. Used for the Table III CPU-share comparison.
  ThreadCpuTimes process_cpu;

  double ProcessUserShare() const {
    const double t = process_cpu.Total();
    return t > 0 ? process_cpu.user_sec / t : 0;
  }
  double ProcessSystemShare() const {
    const double t = process_cpu.Total();
    return t > 0 ? process_cpu.sys_sec / t : 0;
  }

  double Throughput() const { return load.Throughput(); }
  double MeanLatencyMs() const { return load.latency.Mean() / 1e6; }
  double CtxSwitchesPerRequest() const {
    return load.completed
               ? static_cast<double>(activity.ctx_switches.Total()) /
                     static_cast<double>(load.completed)
               : 0.0;
  }
  double WritesPerResponse() const {
    return counters.responses_sent
               ? static_cast<double>(counters.write_calls) /
                     static_cast<double>(counters.responses_sent)
               : 0.0;
  }
  double LogicalSwitchesPerRequest() const {
    return counters.requests_handled
               ? static_cast<double>(counters.logical_switches) /
                     static_cast<double>(counters.requests_handled)
               : 0.0;
  }
};

// Runs one point end to end. Creates/destroys the server (and proxy).
BenchPointResult RunBenchPoint(const BenchPoint& point);

// Environment knobs shared by the bench binaries:
//   HYNET_BENCH_SECONDS — measure window per point (default `fallback`)
//   HYNET_BENCH_QUICK   — trim sweeps for smoke runs
double BenchSeconds(double fallback);
bool BenchQuickMode();

}  // namespace hynet
