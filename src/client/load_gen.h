// Closed-loop load generator (JMeter substitute).
//
// N persistent connections; each keeps exactly one request outstanding and
// issues the next one the moment its response completes — the same
// closed-loop, zero-think-time semantics the paper uses to "precisely
// control the concurrency of the workload". Event-driven (one epoll loop),
// so 1..1000+ emulated users do not add client-side thread noise on the
// shared host.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/histogram.h"
#include "net/inet_addr.h"

namespace hynet {

struct WeightedTarget {
  std::string target;  // request target, e.g. "/bench?size=102400"
  double weight = 1.0;
};

struct LoadConfig {
  InetAddr server;
  int connections = 1;
  double warmup_sec = 0.3;
  double measure_sec = 1.0;
  std::vector<WeightedTarget> targets{{"/", 1.0}};
  uint64_t seed = 1;
  // Open-loop mode: when > 0, requests arrive as a Poisson process at this
  // aggregate rate (req/s) spread across the connections, independent of
  // response completions. Latency is measured from the *intended* arrival
  // time, so queueing delay behind a slow server is visible (closed loops
  // hide it — coordinated omission). 0 = closed loop.
  double open_loop_rate = 0.0;
  // SO_RCVBUF for client sockets. Mirrors the testbed clients' default
  // buffers; bounding it keeps the response path's in-flight window at
  // testbed scale so the write-spin phenomenon is observable on loopback.
  int rcv_buf_bytes = 16 * 1024;
  // Callbacks fired on the generator thread at the phase boundaries
  // (used by the harness to snapshot server-side counters).
  std::function<void()> on_measure_start;
  std::function<void()> on_measure_end;
};

struct LoadResult {
  uint64_t completed = 0;  // responses completed inside the measure window
  uint64_t errors = 0;     // connection resets / parse failures
  double elapsed_sec = 0;  // actual measure window length
  Histogram latency;       // per-request latency inside the window
  // Open-loop only: arrivals that found their connection still busy and
  // had to queue client-side (a saturation signal).
  uint64_t queued_arrivals = 0;

  double Throughput() const {
    return elapsed_sec > 0 ? static_cast<double>(completed) / elapsed_sec : 0;
  }
};

// Runs the closed loop to completion (warmup + measure) on the calling
// thread. Throws std::system_error if the server cannot be reached.
LoadResult RunLoad(const LoadConfig& config);

}  // namespace hynet
