// Closed-loop load generator (JMeter substitute).
//
// N persistent connections; each keeps exactly one request outstanding and
// issues the next one the moment its response completes — the same
// closed-loop, zero-think-time semantics the paper uses to "precisely
// control the concurrency of the workload". Event-driven (one epoll loop),
// so 1..1000+ emulated users do not add client-side thread noise on the
// shared host.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "client/retry.h"
#include "common/histogram.h"
#include "net/inet_addr.h"

namespace hynet {

struct WeightedTarget {
  std::string target;  // request target, e.g. "/bench?size=102400"
  double weight = 1.0;
};

struct LoadConfig {
  InetAddr server;
  int connections = 1;
  double warmup_sec = 0.3;
  double measure_sec = 1.0;
  std::vector<WeightedTarget> targets{{"/", 1.0}};
  uint64_t seed = 1;
  // Open-loop mode: when > 0, requests arrive as a Poisson process at this
  // aggregate rate (req/s) spread across the connections, independent of
  // response completions. Latency is measured from the *intended* arrival
  // time, so queueing delay behind a slow server is visible (closed loops
  // hide it — coordinated omission). 0 = closed loop.
  double open_loop_rate = 0.0;
  // SO_RCVBUF for client sockets. Mirrors the testbed clients' default
  // buffers; bounding it keeps the response path's in-flight window at
  // testbed scale so the write-spin phenomenon is observable on loopback.
  int rcv_buf_bytes = 16 * 1024;
  // Callbacks fired on the generator thread at the phase boundaries
  // (used by the harness to snapshot server-side counters).
  std::function<void()> on_measure_start;
  std::function<void()> on_measure_end;

  // ---- Resilience plane ----
  // When > 0, every request carries an X-Hynet-Deadline-Ms budget of this
  // many milliseconds, measured from the *intended* arrival — open-loop
  // client-side queueing spends budget before the request even hits the
  // wire, exactly like a real caller's end-to-end timeout.
  int request_deadline_ms = 0;
  // Retry shed (503) responses under the policy's backoff and budget. The
  // retried request keeps its original send_time, so latency and deadline
  // accounting span all attempts.
  bool retries_enabled = false;
  RetryPolicyConfig retry;
  // Allowance (ms) on the late_ok classification for return-path wire
  // transit: a response the *server* completed inside the deadline still
  // needs a wire RTT share to reach the client's parser. The deadline the
  // server enforces is unchanged — this only affects how the client files
  // an on-time-at-the-server response. Raise it to the proxy RTT when the
  // latency proxy sits in between.
  int late_slack_ms = 1;
};

struct LoadResult {
  uint64_t completed = 0;  // requests that reached a final outcome in-window
  uint64_t errors = 0;     // connection resets / parse failures
  double elapsed_sec = 0;  // actual measure window length
  Histogram latency;       // per-request latency inside the window
  // Open-loop only: arrivals that found their connection still busy and
  // had to queue client-side (a saturation signal).
  uint64_t queued_arrivals = 0;

  // Final-outcome classification (a 503 that gets retried is not final;
  // only the attempt chain's last response counts once).
  uint64_t ok = 0;            // 2xx/3xx
  uint64_t good = 0;          // ok AND inside the request's deadline
  uint64_t late_ok = 0;       // ok but past the deadline (must stay 0 when
                              // the server enforces deadlines)
  double worst_late_ms = 0;   // biggest deadline overshoot among late_ok
  uint64_t shed_503 = 0;      // failed through as shed
  uint64_t deadline_504 = 0;  // failed through as deadline-expired
                              // (server 504s + client-local expiries: a
                              // request whose budget is gone before it is
                              // even written is failed without a send)
  // Client retry-layer totals (from the RetryPolicy, whole run —
  // including warmup, so the budget bound must be checked against
  // retry_successes, not the in-window `ok`).
  uint64_t retries_issued = 0;
  uint64_t retry_budget_exhausted = 0;
  uint64_t retry_successes = 0;

  double Throughput() const {
    return elapsed_sec > 0 ? static_cast<double>(completed) / elapsed_sec : 0;
  }
  // Useful work per second: the overload experiments compare this, not raw
  // throughput (a server answering nothing but 503s has high throughput
  // and zero goodput).
  double Goodput() const {
    return elapsed_sec > 0 ? static_cast<double>(good) / elapsed_sec : 0;
  }
};

// Runs the closed loop to completion (warmup + measure) on the calling
// thread. Throws std::system_error if the server cannot be reached.
LoadResult RunLoad(const LoadConfig& config);

// ---- Chaos client: fault-injecting load ----
//
// Each connection misbehaves in one specific way; the harness asserts the
// server evicts it (or survives it) while well-behaved closed-loop clients
// keep being served.
enum class ChaosMode {
  kSlowloris,       // drip one header byte per interval, never finish
  kStalledReader,   // request a huge response into a tiny SO_RCVBUF,
                    // then never read it (write-stall food)
  kMidResponseRst,  // request, read a little, abort with RST (SO_LINGER 0)
  kIdle,            // connect and go silent (keep-alive squatter)
};

struct ChaosConfig {
  InetAddr server;
  ChaosMode mode = ChaosMode::kSlowloris;
  int connections = 16;
  int drip_interval_ms = 20;     // slowloris byte cadence
  int rcv_buf_bytes = 2 * 1024;  // stalled-reader receive window
  // Request sent by the stalled-reader / mid-response-RST modes; the
  // default asks for a response far larger than any kernel buffer.
  std::string target = "/bench?size=1048576";
  size_t rst_after_bytes = 256;  // mid-response RST trigger
};

struct ChaosSnapshot {
  uint64_t connected = 0;   // sockets that completed connect()
  uint64_t evicted = 0;     // connections the server closed or reset
  uint64_t rst_sent = 0;    // kMidResponseRst aborts performed
  uint64_t bytes_sent = 0;
  uint64_t bytes_read = 0;
};

// ---- Connection-scale swarm: the mostly-idle open-loop client ----
//
// Ramps up to `connections` persistent keep-alive sockets at `ramp_rate`
// connects/sec from one epoll-based thread (threads or poll() arrays fall
// over long before 100k sockets), then keeps the swarm mostly idle:
// requests arrive open-loop at `request_rate` aggregate req/s, each aimed
// at a connection drawn Zipf(`zipf_theta`) over the swarm — a few sockets
// stay warm while the long tail goes cold, the traffic shape the
// idle-cold reclamation path (ServerConfig::cold_idle_ms) exists for.
struct ConnScaleConfig {
  InetAddr server;
  int connections = 10000;  // swarm size to ramp to
  int ramp_rate = 5000;     // connect() attempts per second
  // Aggregate request rate across the whole swarm (req/s); 0 = pure idle.
  double request_rate = 0.0;
  double zipf_theta = 0.99;  // activity skew across connections
  std::string target = "/bench?size=64&us=0";
  int rcv_buf_bytes = 0;  // 0 = kernel default
  uint64_t seed = 1;
  // When set (family != AF_UNSPEC), client sockets bind() to this address
  // (port 0) before connecting. A single loopback (saddr, daddr, dport)
  // tuple caps out at the ~28k ephemeral-port range; swarms past that run
  // several clients, each sourcing from its own 127.0.0.x alias.
  InetAddr source{};
};

struct ConnScaleSnapshot {
  uint64_t attempted = 0;        // connect() calls issued
  uint64_t established = 0;      // handshakes completed
  uint64_t connect_errors = 0;   // refused / reset during handshake
  uint64_t closed_by_peer = 0;   // established conns the server closed
  uint64_t live = 0;             // currently-open sockets
  uint64_t requests_sent = 0;
  uint64_t responses_ok = 0;
  uint64_t response_errors = 0;  // parse failures / mid-response resets
  uint64_t skipped_busy = 0;     // arrivals aimed at a still-busy conn
  Histogram latency;             // request → response-complete
};

// One background thread owns the swarm. Start() returns immediately (the
// ramp proceeds in the background; poll Snapshot().established to watch
// it); Stop() (or the destructor) closes everything.
class ConnScaleClient {
 public:
  explicit ConnScaleClient(ConnScaleConfig config);
  ~ConnScaleClient();
  ConnScaleClient(const ConnScaleClient&) = delete;
  ConnScaleClient& operator=(const ConnScaleClient&) = delete;

  void Start();
  void Stop();
  ConnScaleSnapshot Snapshot() const;

 private:
  struct SwarmConn;
  void Main();

  ConnScaleConfig config_;
  std::thread thread_;
  std::atomic<bool> running_{false};

  std::atomic<uint64_t> attempted_{0};
  std::atomic<uint64_t> established_{0};
  std::atomic<uint64_t> connect_errors_{0};
  std::atomic<uint64_t> closed_by_peer_{0};
  std::atomic<uint64_t> live_{0};
  std::atomic<uint64_t> requests_sent_{0};
  std::atomic<uint64_t> responses_ok_{0};
  std::atomic<uint64_t> response_errors_{0};
  std::atomic<uint64_t> skipped_busy_{0};
  mutable std::mutex latency_mu_;
  Histogram latency_;
};

// Drives `connections` misbehaving sockets from one background
// poll()-based thread. Start() returns once every socket attempted
// connect; Stop() (or the destructor) closes everything.
class ChaosClient {
 public:
  explicit ChaosClient(ChaosConfig config);
  ~ChaosClient();
  ChaosClient(const ChaosClient&) = delete;
  ChaosClient& operator=(const ChaosClient&) = delete;

  void Start();
  void Stop();
  ChaosSnapshot Snapshot() const;

 private:
  struct ChaosConn;
  void Main();
  void MarkEvicted(ChaosConn& conn);

  ChaosConfig config_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::vector<std::unique_ptr<ChaosConn>> conns_;  // chaos thread after Start

  std::atomic<uint64_t> connected_{0};
  std::atomic<uint64_t> evicted_{0};
  std::atomic<uint64_t> rst_sent_{0};
  std::atomic<uint64_t> bytes_sent_{0};
  std::atomic<uint64_t> bytes_read_{0};
};

}  // namespace hynet
