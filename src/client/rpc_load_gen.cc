#include "client/rpc_load_gen.h"

#include <algorithm>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/rng.h"
#include "net/socket.h"
#include "proto/rpc_codec.h"

namespace hynet {

namespace {

struct PendingRequest {
  int64_t send_ns = 0;
  uint16_t method_id = 0;
  bool in_window = false;
};

// Per-connection worker: blocking socket, `depth` requests kept in flight.
class RpcConnWorker {
 public:
  RpcConnWorker(const RpcLoadConfig& config, uint64_t index)
      : config_(config),
        rng_(config.seed * 0x9E3779B97F4A7C15ull + index + 1),
        zipf_(std::max<uint64_t>(1, config.key_space),
              std::max(0.0, config.zipf_theta)) {
    double total = 0;
    for (const RpcMethodMix& m : config_.mix) total += m.weight;
    weight_total_ = total > 0 ? total : 1.0;
    write_value_.assign(config_.write_value_bytes, 'w');
  }

  RpcLoadResult Run() {
    RpcLoadResult result;
    Socket sock = Socket::CreateTcp(/*nonblocking=*/false);
    sock.SetNoDelay(true);
    if (config_.rcv_buf_bytes > 0) {
      sock.SetRecvBufferSize(config_.rcv_buf_bytes);
    }
    sock.Connect(config_.server);
    const int fd = sock.fd();

    const int64_t start_ns = NowNanos();
    const int64_t measure_start_ns =
        start_ns + static_cast<int64_t>(config_.warmup_sec * 1e9);
    const int64_t measure_end_ns =
        measure_start_ns + static_cast<int64_t>(config_.measure_sec * 1e9);

    const int depth = std::max(1, config_.pipeline_depth);
    ByteBuffer in;
    RpcFrameParser parser;
    char buf[64 * 1024];

    // Prime the pipeline, then: one completion in, one request out.
    for (int i = 0; i < depth; ++i) {
      if (!SendOne(fd, measure_start_ns, measure_end_ns, result)) {
        return result;
      }
    }
    bool stop_issuing = false;
    while (!pending_.empty()) {
      const ParseStatus ps = parser.Parse(in);
      if (ps == ParseStatus::kError) {
        result.errors++;
        break;
      }
      if (ps == ParseStatus::kNeedMore) {
        const IoResult r = ReadFd(fd, buf, sizeof(buf));
        if (r.Fatal() || r.Eof()) {
          result.errors += pending_.size();
          break;
        }
        in.Append(buf, static_cast<size_t>(r.n));
        continue;
      }

      const RpcFrame& frame = parser.frame();
      const int64_t now_ns = NowNanos();
      OnResponse(frame, now_ns, result);
      if (now_ns >= measure_end_ns) stop_issuing = true;
      if (!stop_issuing) {
        if (!SendOne(fd, measure_start_ns, measure_end_ns, result)) break;
      }
    }
    result.elapsed_sec =
        static_cast<double>(measure_end_ns - measure_start_ns) / 1e9;
    return result;
  }

 private:
  uint16_t PickMethod() {
    double x = rng_.NextDouble() * weight_total_;
    for (const RpcMethodMix& m : config_.mix) {
      x -= m.weight;
      if (x <= 0) return m.method_id;
    }
    return config_.mix.empty() ? kKvMethodLookup
                               : config_.mix.back().method_id;
  }

  bool SendOne(int fd, int64_t measure_start_ns, int64_t measure_end_ns,
               RpcLoadResult& result) {
    const uint16_t method_id = PickMethod();
    const std::string key =
        KvStore::PreloadKey(zipf_.Next(rng_), config_.key_prefix);
    std::string payload;
    if (method_id == kKvMethodWrite) {
      payload = EncodeKvWritePayload(key, write_value_);
    } else {
      payload = key;
    }
    const uint64_t id = next_id_++;
    const std::string wire = EncodeRpcRequest(id, method_id, payload);

    const int64_t now_ns = NowNanos();
    PendingRequest req;
    req.send_ns = now_ns;
    req.method_id = method_id;
    req.in_window = now_ns >= measure_start_ns && now_ns < measure_end_ns;
    pending_.emplace(id, req);
    send_order_.push_back(id);

    size_t off = 0;
    while (off < wire.size()) {
      const IoResult r = WriteFd(fd, wire.data() + off, wire.size() - off);
      if (r.Fatal()) {
        result.errors++;
        return false;
      }
      if (r.n > 0) off += static_cast<size_t>(r.n);
    }
    return true;
  }

  void OnResponse(const RpcFrame& frame, int64_t now_ns,
                  RpcLoadResult& result) {
    const uint64_t id = frame.header.request_id;
    const auto it = pending_.find(id);
    if (it == pending_.end()) {
      result.errors++;
      return;
    }
    // Client-side reordering check against send order.
    if (!send_order_.empty() && send_order_.front() == id) {
      send_order_.pop_front();
    } else {
      const auto pos =
          std::find(send_order_.begin(), send_order_.end(), id);
      if (pos != send_order_.end()) {
        send_order_.erase(pos);
        if (it->second.in_window) result.out_of_order++;
      }
    }

    const RpcStatus status = static_cast<RpcStatus>(frame.header.status);
    if (it->second.in_window) {
      if (status == RpcStatus::kOk || status == RpcStatus::kNotFound) {
        RpcMethodResult& per = result.per_method[it->second.method_id];
        const int64_t latency = now_ns - it->second.send_ns;
        result.completed++;
        result.latency.Record(latency);
        per.completed++;
        per.latency.Record(latency);
        if (status == RpcStatus::kNotFound) per.not_found++;
      } else {
        result.errors++;
      }
    }
    pending_.erase(it);
  }

  const RpcLoadConfig& config_;
  Rng rng_;
  ZipfGenerator zipf_;
  double weight_total_ = 1.0;
  std::string write_value_;
  uint64_t next_id_ = 1;
  std::unordered_map<uint64_t, PendingRequest> pending_;
  std::deque<uint64_t> send_order_;
};

}  // namespace

RpcLoadResult RunRpcLoad(const RpcLoadConfig& config) {
  const int conns = std::max(1, config.connections);
  std::vector<RpcLoadResult> partials(static_cast<size_t>(conns));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(conns));
  for (int i = 0; i < conns; ++i) {
    threads.emplace_back([&config, &partials, i] {
      RpcConnWorker worker(config, static_cast<uint64_t>(i));
      partials[static_cast<size_t>(i)] = worker.Run();
    });
  }
  for (std::thread& t : threads) t.join();

  RpcLoadResult merged;
  for (const RpcLoadResult& p : partials) {
    merged.completed += p.completed;
    merged.errors += p.errors;
    merged.out_of_order += p.out_of_order;
    merged.latency.Merge(p.latency);
    merged.elapsed_sec = std::max(merged.elapsed_sec, p.elapsed_sec);
    for (const auto& [method_id, per] : p.per_method) {
      RpcMethodResult& into = merged.per_method[method_id];
      into.completed += per.completed;
      into.not_found += per.not_found;
      into.latency.Merge(per.latency);
    }
  }
  return merged;
}

}  // namespace hynet
