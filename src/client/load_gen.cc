#include "client/load_gen.h"

#include <deque>
#include <memory>
#include <unordered_map>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/logging.h"
#include "common/rng.h"
#include "net/event_loop.h"
#include "net/socket.h"
#include "proto/http_codec.h"
#include "proto/http_parser.h"

namespace hynet {
namespace {

struct ClientConn {
  ScopedFd fd;
  ByteBuffer in;
  HttpResponseParser parser;
  std::string out;       // request bytes still to write
  size_t out_off = 0;
  TimePoint send_time{};
  bool writable_armed = false;
  bool dead = false;  // error path ran; don't touch this conn again
  // Open-loop state: intended arrival times waiting for this connection.
  std::deque<TimePoint> backlog;
  bool busy = false;  // a request is outstanding
};

class ClosedLoopDriver {
 public:
  explicit ClosedLoopDriver(const LoadConfig& config)
      : config_(config), rng_(config.seed) {
    double total = 0;
    for (const auto& t : config_.targets) total += t.weight;
    for (const auto& t : config_.targets) {
      cumulative_.push_back(
          (cumulative_.empty() ? 0.0 : cumulative_.back()) +
          t.weight / total);
      request_bytes_.push_back(BuildGetRequest(t.target));
    }
  }

  LoadResult Run() {
    for (int i = 0; i < config_.connections; ++i) OpenConnection();
    if (config_.open_loop_rate > 0) ScheduleNextArrival();

    loop_.RunAfter(std::chrono::duration_cast<Duration>(
                       std::chrono::duration<double>(config_.warmup_sec)),
                   [this] { BeginMeasure(); });
    loop_.Run();

    result_.elapsed_sec = ToSeconds(measure_end_ - measure_start_);
    return std::move(result_);
  }

 private:
  void BeginMeasure() {
    measuring_ = true;
    measure_start_ = Now();
    if (config_.on_measure_start) config_.on_measure_start();
    loop_.RunAfter(std::chrono::duration_cast<Duration>(
                       std::chrono::duration<double>(config_.measure_sec)),
                   [this] { EndMeasure(); });
  }

  void EndMeasure() {
    measuring_ = false;
    measure_end_ = Now();
    if (config_.on_measure_end) config_.on_measure_end();
    loop_.Stop();
  }

  void OpenConnection() {
    Socket sock = Socket::CreateTcp(/*nonblocking=*/false);
    if (config_.rcv_buf_bytes > 0) {
      sock.SetRecvBufferSize(config_.rcv_buf_bytes);
    }
    sock.Connect(config_.server);
    sock.SetNonBlocking(true);
    sock.SetNoDelay(true);

    auto conn = std::make_shared<ClientConn>();
    conn->fd = sock.TakeFd();
    const int fd = conn->fd.get();
    conns_[fd] = conn;
    conn_ring_.push_back(conn);
    loop_.RegisterFd(fd, EPOLLIN, [this, conn](uint32_t events) {
      OnEvent(conn, events);
    });
    // Closed loop starts immediately; open loop waits for arrivals.
    if (config_.open_loop_rate <= 0) SendNext(*conn);
  }

  // Open loop: Poisson arrivals round-robined over the connections.
  void ScheduleNextArrival() {
    const double gap_sec =
        rng_.NextExponential(1.0 / config_.open_loop_rate);
    loop_.RunAfter(std::chrono::duration_cast<Duration>(
                       std::chrono::duration<double>(gap_sec)),
                   [this] {
                     DispatchArrival(Now());
                     ScheduleNextArrival();
                   });
  }

  void DispatchArrival(TimePoint intended) {
    if (conn_ring_.empty()) return;
    std::shared_ptr<ClientConn> fallback;
    for (size_t tries = 0; tries < conn_ring_.size(); ++tries) {
      auto conn = conn_ring_[ring_cursor_++ % conn_ring_.size()].lock();
      if (!conn || conn->dead) continue;
      if (!conn->busy) {
        SendAt(*conn, intended);
        return;
      }
      if (!fallback) fallback = std::move(conn);
    }
    if (fallback) {
      // Every connection is occupied: queue behind one (open-loop backlog
      // — the saturation signal).
      fallback->backlog.push_back(intended);
      if (measuring_) result_.queued_arrivals++;
    }
  }

  void SendAt(ClientConn& conn, TimePoint intended_arrival) {
    conn.out = request_bytes_[PickTarget()];
    conn.out_off = 0;
    conn.send_time = intended_arrival;  // latency includes queueing delay
    conn.busy = true;
    WritePending(conn);
  }

  void SendNext(ClientConn& conn) {
    conn.out = request_bytes_[PickTarget()];
    conn.out_off = 0;
    conn.send_time = Now();
    conn.busy = true;
    WritePending(conn);
  }

  size_t PickTarget() {
    if (cumulative_.size() == 1) return 0;
    const double u = rng_.NextDouble();
    for (size_t i = 0; i < cumulative_.size(); ++i) {
      if (u < cumulative_[i]) return i;
    }
    return cumulative_.size() - 1;
  }

  void WritePending(ClientConn& conn) {
    const int fd = conn.fd.get();
    while (conn.out_off < conn.out.size()) {
      const IoResult r = WriteFd(fd, conn.out.data() + conn.out_off,
                                 conn.out.size() - conn.out_off);
      if (r.WouldBlock()) {
        if (!conn.writable_armed) {
          conn.writable_armed = true;
          loop_.ModifyFd(fd, EPOLLIN | EPOLLOUT);
        }
        return;
      }
      if (r.Fatal()) {
        HandleError(conn);
        return;
      }
      conn.out_off += static_cast<size_t>(r.n);
    }
    if (conn.writable_armed) {
      conn.writable_armed = false;
      loop_.ModifyFd(fd, EPOLLIN);
    }
  }

  void OnEvent(const std::shared_ptr<ClientConn>& conn, uint32_t events) {
    if (events & (EPOLLHUP | EPOLLERR)) {
      HandleError(*conn);
      return;
    }
    if (events & EPOLLOUT) WritePending(*conn);
    if (conn->dead || !(events & EPOLLIN)) return;

    char buf[16 * 1024];
    while (true) {
      const IoResult r = ReadFd(conn->fd.get(), buf, sizeof(buf));
      if (r.WouldBlock()) break;
      if (r.Eof() || r.Fatal()) {
        HandleError(*conn);
        return;
      }
      conn->in.Append(buf, static_cast<size_t>(r.n));
      if (static_cast<size_t>(r.n) < sizeof(buf)) break;
    }

    while (true) {
      const ParseStatus st = conn->parser.Parse(conn->in);
      if (st == ParseStatus::kNeedMore) return;
      if (st == ParseStatus::kError) {
        HandleError(*conn);
        return;
      }
      if (measuring_) {
        result_.completed++;
        result_.latency.Record(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                Now() - conn->send_time)
                .count());
      }
      conn->busy = false;
      if (config_.open_loop_rate > 0) {
        if (!conn->backlog.empty()) {
          const TimePoint intended = conn->backlog.front();
          conn->backlog.pop_front();
          SendAt(*conn, intended);
        }
      } else {
        SendNext(*conn);
      }
      if (conn->dead) return;
    }
  }

  void HandleError(ClientConn& conn) {
    if (conn.dead) return;
    conn.dead = true;
    result_.errors++;
    const int fd = conn.fd.get();
    loop_.UnregisterFd(fd);
    conns_.erase(fd);
    // Keep the offered concurrency constant: replace the connection.
    if (result_.errors < 1000) {
      try {
        OpenConnection();
      } catch (const std::exception& e) {
        HYNET_LOG(ERROR) << "reconnect failed: " << e.what();
        loop_.Stop();
      }
    } else {
      HYNET_LOG(ERROR) << "too many client errors; aborting load";
      loop_.Stop();
    }
  }

  const LoadConfig& config_;
  Rng rng_;
  EventLoop loop_;
  std::vector<double> cumulative_;
  std::vector<std::string> request_bytes_;
  std::unordered_map<int, std::shared_ptr<ClientConn>> conns_;
  std::vector<std::weak_ptr<ClientConn>> conn_ring_;  // open-loop RR order
  size_t ring_cursor_ = 0;
  LoadResult result_;
  bool measuring_ = false;
  TimePoint measure_start_{};
  TimePoint measure_end_{};
};

}  // namespace

LoadResult RunLoad(const LoadConfig& config) {
  ClosedLoopDriver driver(config);
  return driver.Run();
}

}  // namespace hynet
