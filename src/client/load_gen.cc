#include "client/load_gen.h"

#include <poll.h>

#include <deque>
#include <memory>
#include <unordered_map>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/deadline.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/thread_util.h"
#include "net/event_loop.h"
#include "net/socket.h"
#include "proto/http_codec.h"
#include "proto/http_parser.h"

#ifndef POLLRDHUP
#define POLLRDHUP 0x2000
#endif

namespace hynet {
namespace {

struct ClientConn {
  ScopedFd fd;
  ByteBuffer in;
  HttpResponseParser parser;
  std::string out;       // request bytes still to write
  size_t out_off = 0;
  TimePoint send_time{};
  bool writable_armed = false;
  bool dead = false;  // error path ran; don't touch this conn again
  // Open-loop state: intended arrival times waiting for this connection.
  std::deque<TimePoint> backlog;
  bool busy = false;  // a request is outstanding
  // Retry state for the outstanding request.
  size_t target_index = 0;
  int attempt = 1;  // tries made so far (1 = the initial send)
};

class ClosedLoopDriver {
 public:
  explicit ClosedLoopDriver(const LoadConfig& config)
      : config_(config), rng_(config.seed) {
    double total = 0;
    for (const auto& t : config_.targets) total += t.weight;
    for (const auto& t : config_.targets) {
      cumulative_.push_back(
          (cumulative_.empty() ? 0.0 : cumulative_.back()) +
          t.weight / total);
      request_bytes_.push_back(BuildGetRequest(t.target));
    }
    if (config_.retries_enabled) {
      retry_ = std::make_unique<RetryPolicy>(config_.retry,
                                             config_.seed ^ 0x9e3779b9ULL);
    }
  }

  LoadResult Run() {
    for (int i = 0; i < config_.connections; ++i) OpenConnection();
    if (config_.open_loop_rate > 0) {
      next_arrival_ = Now();
      ScheduleNextArrival();
    }

    loop_.RunAfter(std::chrono::duration_cast<Duration>(
                       std::chrono::duration<double>(config_.warmup_sec)),
                   [this] { BeginMeasure(); });
    loop_.Run();

    result_.elapsed_sec = ToSeconds(measure_end_ - measure_start_);
    if (retry_) {
      result_.retries_issued = retry_->RetriesIssued();
      result_.retry_budget_exhausted = retry_->BudgetExhausted();
      result_.retry_successes = retry_->Successes();
    }
    return std::move(result_);
  }

 private:
  void BeginMeasure() {
    measuring_ = true;
    measure_start_ = Now();
    if (config_.on_measure_start) config_.on_measure_start();
    loop_.RunAfter(std::chrono::duration_cast<Duration>(
                       std::chrono::duration<double>(config_.measure_sec)),
                   [this] { EndMeasure(); });
  }

  void EndMeasure() {
    measuring_ = false;
    measure_end_ = Now();
    if (config_.on_measure_end) config_.on_measure_end();
    loop_.Stop();
  }

  void OpenConnection() {
    Socket sock = Socket::CreateTcp(/*nonblocking=*/false);
    if (config_.rcv_buf_bytes > 0) {
      sock.SetRecvBufferSize(config_.rcv_buf_bytes);
    }
    sock.Connect(config_.server);
    sock.SetNonBlocking(true);
    sock.SetNoDelay(true);

    auto conn = std::make_shared<ClientConn>();
    conn->fd = sock.TakeFd();
    const int fd = conn->fd.get();
    conns_[fd] = conn;
    conn_ring_.push_back(conn);
    loop_.RegisterFd(fd, EPOLLIN, [this, conn](uint32_t events) {
      OnEvent(conn, events);
    });
    // Closed loop starts immediately; open loop waits for arrivals.
    if (config_.open_loop_rate <= 0) SendNext(*conn);
  }

  // Open loop: Poisson arrivals round-robined over the connections. The
  // arrival process runs on an *absolute* schedule: each intended arrival
  // is the previous one plus an exponential gap, independent of when the
  // timer actually fires. When the client loop lags (or a timer fires
  // late), the overdue arrivals are dispatched immediately with their
  // original intended times — the offered rate never silently sags to
  // whatever the pipeline can absorb, which is precisely the failure mode
  // open-loop load exists to expose.
  void ScheduleNextArrival() {
    while (true) {
      next_arrival_ += std::chrono::duration_cast<Duration>(
          std::chrono::duration<double>(
              rng_.NextExponential(1.0 / config_.open_loop_rate)));
      const TimePoint now = Now();
      if (next_arrival_ > now) break;
      DispatchArrival(next_arrival_);  // overdue: catch up inline
    }
    loop_.RunAfter(next_arrival_ - Now(), [this] {
      DispatchArrival(next_arrival_);
      ScheduleNextArrival();
    });
  }

  void DispatchArrival(TimePoint intended) {
    if (conn_ring_.empty()) return;
    std::shared_ptr<ClientConn> fallback;
    for (size_t tries = 0; tries < conn_ring_.size(); ++tries) {
      auto conn = conn_ring_[ring_cursor_++ % conn_ring_.size()].lock();
      if (!conn || conn->dead) continue;
      if (!conn->busy) {
        SendAt(*conn, intended);
        return;
      }
      if (!fallback) fallback = std::move(conn);
    }
    if (fallback) {
      // Every connection is occupied: queue behind one (open-loop backlog
      // — the saturation signal).
      fallback->backlog.push_back(intended);
      if (measuring_) result_.queued_arrivals++;
    }
  }

  // Request bytes for target `idx` sent now, against a logical request
  // that started at `send_time`: with deadlines on, the header carries the
  // budget *remaining* — client-side queueing and retry backoff already
  // spent part of it, exactly like a caller's end-to-end timeout.
  std::string RequestBytes(size_t idx, TimePoint send_time) {
    if (config_.request_deadline_ms <= 0) return request_bytes_[idx];
    int64_t budget =
        config_.request_deadline_ms -
        std::chrono::duration_cast<std::chrono::milliseconds>(Now() -
                                                              send_time)
            .count();
    if (budget < 0) budget = 0;
    return BuildGetRequest(
        config_.targets[idx].target,
        {{std::string(kDeadlineHeader), std::to_string(budget)}});
  }

  // True when the logical request that started at `send_time` has no
  // budget left as of `now`.
  bool DeadlineDead(TimePoint send_time, TimePoint now) const {
    return config_.request_deadline_ms > 0 &&
           now >= send_time +
                      std::chrono::milliseconds(config_.request_deadline_ms);
  }

  // Returns false when the request's deadline was already gone before a
  // byte hit the wire: the caller's timeout has fired, so the request is
  // failed locally (filed as deadline_504) instead of burning a round
  // trip the server would only 504 anyway. The connection stays free.
  bool SendAt(ClientConn& conn, TimePoint intended_arrival) {
    const TimePoint now = Now();
    if (DeadlineDead(intended_arrival, now)) {
      if (measuring_) {
        result_.completed++;
        result_.latency.Record(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                now - intended_arrival)
                .count());
        result_.deadline_504++;
      }
      return false;
    }
    conn.target_index = PickTarget();
    conn.attempt = 1;
    conn.send_time = intended_arrival;  // latency includes queueing delay
    conn.out = RequestBytes(conn.target_index, conn.send_time);
    conn.out_off = 0;
    conn.busy = true;
    WritePending(conn);
    return true;
  }

  void SendNext(ClientConn& conn) {
    conn.target_index = PickTarget();
    conn.attempt = 1;
    conn.send_time = Now();
    conn.out = RequestBytes(conn.target_index, conn.send_time);
    conn.out_off = 0;
    conn.busy = true;
    WritePending(conn);
  }

  // Re-sends the outstanding request after a retry backoff. send_time is
  // deliberately untouched: the logical request's latency and deadline
  // span every attempt.
  void Resend(const std::shared_ptr<ClientConn>& conn) {
    if (conn->dead) return;
    conn->out = RequestBytes(conn->target_index, conn->send_time);
    conn->out_off = 0;
    WritePending(*conn);
  }

  size_t PickTarget() {
    if (cumulative_.size() == 1) return 0;
    const double u = rng_.NextDouble();
    for (size_t i = 0; i < cumulative_.size(); ++i) {
      if (u < cumulative_[i]) return i;
    }
    return cumulative_.size() - 1;
  }

  void WritePending(ClientConn& conn) {
    const int fd = conn.fd.get();
    while (conn.out_off < conn.out.size()) {
      const IoResult r = WriteFd(fd, conn.out.data() + conn.out_off,
                                 conn.out.size() - conn.out_off);
      if (r.WouldBlock()) {
        if (!conn.writable_armed) {
          conn.writable_armed = true;
          loop_.ModifyFd(fd, EPOLLIN | EPOLLOUT);
        }
        return;
      }
      if (r.Fatal()) {
        HandleError(conn);
        return;
      }
      conn.out_off += static_cast<size_t>(r.n);
    }
    if (conn.writable_armed) {
      conn.writable_armed = false;
      loop_.ModifyFd(fd, EPOLLIN);
    }
  }

  void OnEvent(const std::shared_ptr<ClientConn>& conn, uint32_t events) {
    if (events & (EPOLLHUP | EPOLLERR)) {
      HandleError(*conn);
      return;
    }
    if (events & EPOLLOUT) WritePending(*conn);
    if (conn->dead || !(events & EPOLLIN)) return;

    char buf[16 * 1024];
    while (true) {
      const IoResult r = ReadFd(conn->fd.get(), buf, sizeof(buf));
      if (r.WouldBlock()) break;
      if (r.Eof() || r.Fatal()) {
        HandleError(*conn);
        return;
      }
      conn->in.Append(buf, static_cast<size_t>(r.n));
      if (static_cast<size_t>(r.n) < sizeof(buf)) break;
    }

    while (true) {
      const ParseStatus st = conn->parser.Parse(conn->in);
      if (st == ParseStatus::kNeedMore) return;
      if (st == ParseStatus::kError) {
        HandleError(*conn);
        return;
      }
      const int status = conn->parser.response().status;

      if (retry_ && RetryableStatus(status) &&
          TryScheduleRetry(conn, conn->parser.response())) {
        // busy stays true; the backoff timer re-sends this request. With
        // one request outstanding per connection there is nothing further
        // to parse.
        continue;
      }

      // Final outcome of the logical request.
      const TimePoint now = Now();
      if (measuring_) {
        result_.completed++;
        result_.latency.Record(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                now - conn->send_time)
                .count());
        if (status < 400) {
          result_.ok++;
          // late_slack_ms covers return-path wire transit: a response the
          // server finished inside the deadline may parse just after it.
          const bool late =
              config_.request_deadline_ms > 0 &&
              now > conn->send_time +
                        std::chrono::milliseconds(
                            config_.request_deadline_ms +
                            config_.late_slack_ms);
          if (late) {
            result_.late_ok++;
            const double over_ms =
                ToSeconds(now - conn->send_time) * 1e3 -
                static_cast<double>(config_.request_deadline_ms);
            if (over_ms > result_.worst_late_ms) {
              result_.worst_late_ms = over_ms;
            }
          } else {
            result_.good++;
          }
        } else if (status == 503) {
          result_.shed_503++;
        } else if (status == 504) {
          result_.deadline_504++;
        }
      }
      if (retry_ && status < 400) retry_->OnSuccess();

      conn->busy = false;
      conn->attempt = 1;
      if (config_.open_loop_rate > 0) {
        // Drain locally-expired backlog entries until one actually sends.
        while (!conn->backlog.empty()) {
          const TimePoint intended = conn->backlog.front();
          conn->backlog.pop_front();
          if (SendAt(*conn, intended)) break;
        }
      } else {
        SendNext(*conn);
      }
      if (conn->dead) return;
    }
  }

  // Decides whether the shed response gets another attempt; true = a
  // backoff timer was armed and the logical request stays outstanding.
  bool TryScheduleRetry(const std::shared_ptr<ClientConn>& conn,
                        const HttpResponse& resp) {
    // A retry that cannot finish inside the deadline is pure added load.
    if (config_.request_deadline_ms > 0 &&
        Now() >= conn->send_time +
                     std::chrono::milliseconds(config_.request_deadline_ms)) {
      return false;
    }
    int retry_after_sec = 0;
    const std::string_view hint = resp.Header("Retry-After");
    if (!hint.empty()) {
      int sec = 0;
      bool numeric = true;
      for (const char c : hint) {
        if (c < '0' || c > '9') {
          numeric = false;
          break;
        }
        sec = sec * 10 + (c - '0');
      }
      if (numeric) retry_after_sec = sec;
    }
    const auto delay = retry_->NextRetryDelay(conn->attempt,
                                              /*idempotent=*/true,
                                              retry_after_sec);
    if (!delay) return false;
    if (config_.request_deadline_ms > 0 &&
        Now() + *delay >=
            conn->send_time +
                std::chrono::milliseconds(config_.request_deadline_ms)) {
      // The backoff lands past the deadline; fail through instead.
      return false;
    }
    conn->attempt++;
    loop_.RunAfter(*delay, [this, conn] { Resend(conn); });
    return true;
  }

  void HandleError(ClientConn& conn) {
    if (conn.dead) return;
    conn.dead = true;
    result_.errors++;
    const int fd = conn.fd.get();
    loop_.UnregisterFd(fd);
    conns_.erase(fd);
    // Keep the offered concurrency constant: replace the connection.
    if (result_.errors < 1000) {
      try {
        OpenConnection();
      } catch (const std::exception& e) {
        HYNET_LOG(ERROR) << "reconnect failed: " << e.what();
        loop_.Stop();
      }
    } else {
      HYNET_LOG(ERROR) << "too many client errors; aborting load";
      loop_.Stop();
    }
  }

  const LoadConfig& config_;
  Rng rng_;
  std::unique_ptr<RetryPolicy> retry_;
  EventLoop loop_;
  std::vector<double> cumulative_;
  std::vector<std::string> request_bytes_;
  std::unordered_map<int, std::shared_ptr<ClientConn>> conns_;
  std::vector<std::weak_ptr<ClientConn>> conn_ring_;  // open-loop RR order
  size_t ring_cursor_ = 0;
  TimePoint next_arrival_{};  // open loop: absolute arrival schedule
  LoadResult result_;
  bool measuring_ = false;
  TimePoint measure_start_{};
  TimePoint measure_end_{};
};

}  // namespace

LoadResult RunLoad(const LoadConfig& config) {
  ClosedLoopDriver driver(config);
  return driver.Run();
}

// ---- ChaosClient ----

struct ChaosClient::ChaosConn {
  ScopedFd fd;
  std::string script;  // bytes this connection will (slowly) send
  size_t sent = 0;
  size_t read_total = 0;
  bool evicted = false;
  bool done = false;  // finished its misbehavior (e.g. RST delivered)
};

ChaosClient::ChaosClient(ChaosConfig config) : config_(std::move(config)) {}

ChaosClient::~ChaosClient() { Stop(); }

void ChaosClient::Start() {
  if (running_.exchange(true)) return;
  for (int i = 0; i < config_.connections; ++i) {
    auto conn = std::make_unique<ChaosConn>();
    try {
      Socket sock = Socket::CreateTcp(/*nonblocking=*/false);
      // The stalled reader's tiny receive window must be set before
      // connect so the advertised window is small from the first ACK.
      if (config_.mode == ChaosMode::kStalledReader &&
          config_.rcv_buf_bytes > 0) {
        sock.SetRecvBufferSize(config_.rcv_buf_bytes);
      }
      sock.Connect(config_.server);
      sock.SetNonBlocking(true);
      conn->fd = sock.TakeFd();
      connected_.fetch_add(1, std::memory_order_relaxed);
    } catch (const std::exception&) {
      // Connect refused/reset — admission control at work; nothing to do.
      conn->done = true;
    }
    switch (config_.mode) {
      case ChaosMode::kSlowloris:
        // A request head that could complete but never will: the final
        // blank line is withheld forever.
        conn->script = "GET /chaos HTTP/1.1\r\nHost: chaos\r\nX-Drip: " +
                       std::string(512, 'a') + "\r\n\r\n";
        break;
      case ChaosMode::kStalledReader:
      case ChaosMode::kMidResponseRst:
        conn->script = BuildGetRequest(config_.target);
        break;
      case ChaosMode::kIdle:
        break;
    }
    conns_.push_back(std::move(conn));
  }
  thread_ = std::thread([this] { Main(); });
}

void ChaosClient::Stop() {
  if (!running_.exchange(false)) return;
  if (thread_.joinable()) thread_.join();
  conns_.clear();
}

ChaosSnapshot ChaosClient::Snapshot() const {
  ChaosSnapshot s;
  s.connected = connected_.load(std::memory_order_relaxed);
  s.evicted = evicted_.load(std::memory_order_relaxed);
  s.rst_sent = rst_sent_.load(std::memory_order_relaxed);
  s.bytes_sent = bytes_sent_.load(std::memory_order_relaxed);
  s.bytes_read = bytes_read_.load(std::memory_order_relaxed);
  return s;
}

void ChaosClient::MarkEvicted(ChaosConn& conn) {
  if (conn.evicted || conn.done) return;
  conn.evicted = true;
  evicted_.fetch_add(1, std::memory_order_relaxed);
  conn.fd = ScopedFd();
}

void ChaosClient::Main() {
  SetCurrentThreadName("chaos-client");
  const ChaosMode mode = config_.mode;

  // The reader-side modes send their (small) request up front.
  if (mode == ChaosMode::kStalledReader || mode == ChaosMode::kMidResponseRst) {
    for (auto& conn : conns_) {
      if (!conn->fd.valid() || conn->done) continue;
      while (conn->sent < conn->script.size()) {
        const IoResult r =
            WriteFd(conn->fd.get(), conn->script.data() + conn->sent,
                    conn->script.size() - conn->sent);
        if (r.WouldBlock()) break;
        if (r.Fatal()) {
          MarkEvicted(*conn);
          break;
        }
        conn->sent += static_cast<size_t>(r.n);
        bytes_sent_.fetch_add(static_cast<uint64_t>(r.n),
                              std::memory_order_relaxed);
      }
    }
  }

  const Duration drip_gap =
      std::chrono::milliseconds(std::max(1, config_.drip_interval_ms));
  TimePoint next_drip = Now();
  std::vector<pollfd> pfds;
  std::vector<ChaosConn*> order;

  while (running_.load(std::memory_order_acquire)) {
    pfds.clear();
    order.clear();
    for (auto& conn : conns_) {
      if (!conn->fd.valid() || conn->done || conn->evicted) continue;
      short events = POLLRDHUP;
      // The stalled reader never reads — its whole point is a full
      // receive buffer — but eviction still surfaces as HUP/ERR/RDHUP.
      if (mode != ChaosMode::kStalledReader) events |= POLLIN;
      pfds.push_back(pollfd{conn->fd.get(), events, 0});
      order.push_back(conn.get());
    }
    if (pfds.empty()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      continue;
    }
    const int timeout_ms =
        mode == ChaosMode::kSlowloris ? std::max(1, config_.drip_interval_ms)
                                      : 10;
    ::poll(pfds.data(), pfds.size(), timeout_ms);

    for (size_t i = 0; i < pfds.size(); ++i) {
      ChaosConn& conn = *order[i];
      const short re = pfds[i].revents;
      if (re & (POLLERR | POLLHUP | POLLRDHUP)) {
        MarkEvicted(conn);
        continue;
      }
      if (!(re & POLLIN)) continue;
      char buf[4096];
      while (conn.fd.valid()) {
        const IoResult r = ReadFd(conn.fd.get(), buf, sizeof(buf));
        if (r.WouldBlock()) break;
        if (r.Eof() || r.Fatal()) {
          MarkEvicted(conn);
          break;
        }
        conn.read_total += static_cast<size_t>(r.n);
        bytes_read_.fetch_add(static_cast<uint64_t>(r.n),
                              std::memory_order_relaxed);
        if (mode == ChaosMode::kMidResponseRst &&
            conn.read_total >= config_.rst_after_bytes) {
          // Abort mid-response: linger{1,0} turns the close into an RST
          // the server's write path will hit on its next send.
          SetFdLingerAbort(conn.fd.get());
          conn.fd = ScopedFd();
          conn.done = true;
          rst_sent_.fetch_add(1, std::memory_order_relaxed);
          break;
        }
        if (static_cast<size_t>(r.n) < sizeof(buf)) break;
      }
    }

    // Slowloris drip: one header byte per cadence per connection, never
    // the final blank line.
    if (mode == ChaosMode::kSlowloris && Now() >= next_drip) {
      next_drip = Now() + drip_gap;
      for (auto& conn : conns_) {
        if (!conn->fd.valid() || conn->done || conn->evicted) continue;
        const size_t cap = conn->script.size() - 4;  // withhold "\r\n\r\n"
        if (conn->sent >= cap) continue;
        const IoResult r =
            WriteFd(conn->fd.get(), conn->script.data() + conn->sent, 1);
        if (r.Fatal()) {
          MarkEvicted(*conn);
          continue;
        }
        if (!r.WouldBlock()) {
          conn->sent++;
          bytes_sent_.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  }
}

}  // namespace hynet
