#include "client/load_gen.h"

#include <poll.h>
#include <strings.h>
#include <sys/epoll.h>
#include <sys/socket.h>

#include <cerrno>
#include <cstring>

#include <deque>
#include <memory>
#include <unordered_map>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/deadline.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/thread_util.h"
#include "net/event_loop.h"
#include "net/socket.h"
#include "proto/http_codec.h"
#include "proto/http_parser.h"

#ifndef POLLRDHUP
#define POLLRDHUP 0x2000
#endif

namespace hynet {
namespace {

struct ClientConn {
  ScopedFd fd;
  ByteBuffer in;
  HttpResponseParser parser;
  std::string out;       // request bytes still to write
  size_t out_off = 0;
  TimePoint send_time{};
  bool writable_armed = false;
  bool dead = false;  // error path ran; don't touch this conn again
  // Open-loop state: intended arrival times waiting for this connection.
  std::deque<TimePoint> backlog;
  bool busy = false;  // a request is outstanding
  // Retry state for the outstanding request.
  size_t target_index = 0;
  int attempt = 1;  // tries made so far (1 = the initial send)
};

class ClosedLoopDriver {
 public:
  explicit ClosedLoopDriver(const LoadConfig& config)
      : config_(config), rng_(config.seed) {
    double total = 0;
    for (const auto& t : config_.targets) total += t.weight;
    for (const auto& t : config_.targets) {
      cumulative_.push_back(
          (cumulative_.empty() ? 0.0 : cumulative_.back()) +
          t.weight / total);
      request_bytes_.push_back(BuildGetRequest(t.target));
    }
    if (config_.retries_enabled) {
      retry_ = std::make_unique<RetryPolicy>(config_.retry,
                                             config_.seed ^ 0x9e3779b9ULL);
    }
  }

  LoadResult Run() {
    for (int i = 0; i < config_.connections; ++i) OpenConnection();
    if (config_.open_loop_rate > 0) {
      next_arrival_ = Now();
      ScheduleNextArrival();
    }

    loop_.RunAfter(std::chrono::duration_cast<Duration>(
                       std::chrono::duration<double>(config_.warmup_sec)),
                   [this] { BeginMeasure(); });
    loop_.Run();

    result_.elapsed_sec = ToSeconds(measure_end_ - measure_start_);
    if (retry_) {
      result_.retries_issued = retry_->RetriesIssued();
      result_.retry_budget_exhausted = retry_->BudgetExhausted();
      result_.retry_successes = retry_->Successes();
    }
    return std::move(result_);
  }

 private:
  void BeginMeasure() {
    measuring_ = true;
    measure_start_ = Now();
    if (config_.on_measure_start) config_.on_measure_start();
    loop_.RunAfter(std::chrono::duration_cast<Duration>(
                       std::chrono::duration<double>(config_.measure_sec)),
                   [this] { EndMeasure(); });
  }

  void EndMeasure() {
    measuring_ = false;
    measure_end_ = Now();
    if (config_.on_measure_end) config_.on_measure_end();
    loop_.Stop();
  }

  void OpenConnection() {
    Socket sock = Socket::CreateTcp(/*nonblocking=*/false);
    if (config_.rcv_buf_bytes > 0) {
      sock.SetRecvBufferSize(config_.rcv_buf_bytes);
    }
    sock.Connect(config_.server);
    sock.SetNonBlocking(true);
    sock.SetNoDelay(true);

    auto conn = std::make_shared<ClientConn>();
    conn->fd = sock.TakeFd();
    const int fd = conn->fd.get();
    conns_[fd] = conn;
    conn_ring_.push_back(conn);
    loop_.RegisterFd(fd, EPOLLIN, [this, conn](uint32_t events) {
      OnEvent(conn, events);
    });
    // Closed loop starts immediately; open loop waits for arrivals.
    if (config_.open_loop_rate <= 0) SendNext(*conn);
  }

  // Open loop: Poisson arrivals round-robined over the connections. The
  // arrival process runs on an *absolute* schedule: each intended arrival
  // is the previous one plus an exponential gap, independent of when the
  // timer actually fires. When the client loop lags (or a timer fires
  // late), the overdue arrivals are dispatched immediately with their
  // original intended times — the offered rate never silently sags to
  // whatever the pipeline can absorb, which is precisely the failure mode
  // open-loop load exists to expose.
  void ScheduleNextArrival() {
    while (true) {
      next_arrival_ += std::chrono::duration_cast<Duration>(
          std::chrono::duration<double>(
              rng_.NextExponential(1.0 / config_.open_loop_rate)));
      const TimePoint now = Now();
      if (next_arrival_ > now) break;
      DispatchArrival(next_arrival_);  // overdue: catch up inline
    }
    loop_.RunAfter(next_arrival_ - Now(), [this] {
      DispatchArrival(next_arrival_);
      ScheduleNextArrival();
    });
  }

  void DispatchArrival(TimePoint intended) {
    if (conn_ring_.empty()) return;
    std::shared_ptr<ClientConn> fallback;
    for (size_t tries = 0; tries < conn_ring_.size(); ++tries) {
      auto conn = conn_ring_[ring_cursor_++ % conn_ring_.size()].lock();
      if (!conn || conn->dead) continue;
      if (!conn->busy) {
        SendAt(*conn, intended);
        return;
      }
      if (!fallback) fallback = std::move(conn);
    }
    if (fallback) {
      // Every connection is occupied: queue behind one (open-loop backlog
      // — the saturation signal).
      fallback->backlog.push_back(intended);
      if (measuring_) result_.queued_arrivals++;
    }
  }

  // Request bytes for target `idx` sent now, against a logical request
  // that started at `send_time`: with deadlines on, the header carries the
  // budget *remaining* — client-side queueing and retry backoff already
  // spent part of it, exactly like a caller's end-to-end timeout.
  std::string RequestBytes(size_t idx, TimePoint send_time) {
    if (config_.request_deadline_ms <= 0) return request_bytes_[idx];
    int64_t budget =
        config_.request_deadline_ms -
        std::chrono::duration_cast<std::chrono::milliseconds>(Now() -
                                                              send_time)
            .count();
    if (budget < 0) budget = 0;
    return BuildGetRequest(
        config_.targets[idx].target,
        {{std::string(kDeadlineHeader), std::to_string(budget)}});
  }

  // True when the logical request that started at `send_time` has no
  // budget left as of `now`.
  bool DeadlineDead(TimePoint send_time, TimePoint now) const {
    return config_.request_deadline_ms > 0 &&
           now >= send_time +
                      std::chrono::milliseconds(config_.request_deadline_ms);
  }

  // Returns false when the request's deadline was already gone before a
  // byte hit the wire: the caller's timeout has fired, so the request is
  // failed locally (filed as deadline_504) instead of burning a round
  // trip the server would only 504 anyway. The connection stays free.
  bool SendAt(ClientConn& conn, TimePoint intended_arrival) {
    const TimePoint now = Now();
    if (DeadlineDead(intended_arrival, now)) {
      if (measuring_) {
        result_.completed++;
        result_.latency.Record(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                now - intended_arrival)
                .count());
        result_.deadline_504++;
      }
      return false;
    }
    conn.target_index = PickTarget();
    conn.attempt = 1;
    conn.send_time = intended_arrival;  // latency includes queueing delay
    conn.out = RequestBytes(conn.target_index, conn.send_time);
    conn.out_off = 0;
    conn.busy = true;
    WritePending(conn);
    return true;
  }

  void SendNext(ClientConn& conn) {
    conn.target_index = PickTarget();
    conn.attempt = 1;
    conn.send_time = Now();
    conn.out = RequestBytes(conn.target_index, conn.send_time);
    conn.out_off = 0;
    conn.busy = true;
    WritePending(conn);
  }

  // Re-sends the outstanding request after a retry backoff. send_time is
  // deliberately untouched: the logical request's latency and deadline
  // span every attempt.
  void Resend(const std::shared_ptr<ClientConn>& conn) {
    if (conn->dead) return;
    conn->out = RequestBytes(conn->target_index, conn->send_time);
    conn->out_off = 0;
    WritePending(*conn);
  }

  size_t PickTarget() {
    if (cumulative_.size() == 1) return 0;
    const double u = rng_.NextDouble();
    for (size_t i = 0; i < cumulative_.size(); ++i) {
      if (u < cumulative_[i]) return i;
    }
    return cumulative_.size() - 1;
  }

  void WritePending(ClientConn& conn) {
    const int fd = conn.fd.get();
    while (conn.out_off < conn.out.size()) {
      const IoResult r = WriteFd(fd, conn.out.data() + conn.out_off,
                                 conn.out.size() - conn.out_off);
      if (r.WouldBlock()) {
        if (!conn.writable_armed) {
          conn.writable_armed = true;
          loop_.ModifyFd(fd, EPOLLIN | EPOLLOUT);
        }
        return;
      }
      if (r.Fatal()) {
        HandleError(conn);
        return;
      }
      conn.out_off += static_cast<size_t>(r.n);
    }
    if (conn.writable_armed) {
      conn.writable_armed = false;
      loop_.ModifyFd(fd, EPOLLIN);
    }
  }

  void OnEvent(const std::shared_ptr<ClientConn>& conn, uint32_t events) {
    if (events & (EPOLLHUP | EPOLLERR)) {
      HandleError(*conn);
      return;
    }
    if (events & EPOLLOUT) WritePending(*conn);
    if (conn->dead || !(events & EPOLLIN)) return;

    char buf[16 * 1024];
    while (true) {
      const IoResult r = ReadFd(conn->fd.get(), buf, sizeof(buf));
      if (r.WouldBlock()) break;
      if (r.Eof() || r.Fatal()) {
        HandleError(*conn);
        return;
      }
      conn->in.Append(buf, static_cast<size_t>(r.n));
      if (static_cast<size_t>(r.n) < sizeof(buf)) break;
    }

    while (true) {
      const ParseStatus st = conn->parser.Parse(conn->in);
      if (st == ParseStatus::kNeedMore) return;
      if (st == ParseStatus::kError) {
        HandleError(*conn);
        return;
      }
      const int status = conn->parser.response().status;

      if (retry_ && RetryableStatus(status) &&
          TryScheduleRetry(conn, conn->parser.response())) {
        // busy stays true; the backoff timer re-sends this request. With
        // one request outstanding per connection there is nothing further
        // to parse.
        continue;
      }

      // Final outcome of the logical request.
      const TimePoint now = Now();
      if (measuring_) {
        result_.completed++;
        result_.latency.Record(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                now - conn->send_time)
                .count());
        if (status < 400) {
          result_.ok++;
          // late_slack_ms covers return-path wire transit: a response the
          // server finished inside the deadline may parse just after it.
          const bool late =
              config_.request_deadline_ms > 0 &&
              now > conn->send_time +
                        std::chrono::milliseconds(
                            config_.request_deadline_ms +
                            config_.late_slack_ms);
          if (late) {
            result_.late_ok++;
            const double over_ms =
                ToSeconds(now - conn->send_time) * 1e3 -
                static_cast<double>(config_.request_deadline_ms);
            if (over_ms > result_.worst_late_ms) {
              result_.worst_late_ms = over_ms;
            }
          } else {
            result_.good++;
          }
        } else if (status == 503) {
          result_.shed_503++;
        } else if (status == 504) {
          result_.deadline_504++;
        }
      }
      if (retry_ && status < 400) retry_->OnSuccess();

      conn->busy = false;
      conn->attempt = 1;
      if (config_.open_loop_rate > 0) {
        // Drain locally-expired backlog entries until one actually sends.
        while (!conn->backlog.empty()) {
          const TimePoint intended = conn->backlog.front();
          conn->backlog.pop_front();
          if (SendAt(*conn, intended)) break;
        }
      } else {
        SendNext(*conn);
      }
      if (conn->dead) return;
    }
  }

  // Decides whether the shed response gets another attempt; true = a
  // backoff timer was armed and the logical request stays outstanding.
  bool TryScheduleRetry(const std::shared_ptr<ClientConn>& conn,
                        const HttpResponse& resp) {
    // A retry that cannot finish inside the deadline is pure added load.
    if (config_.request_deadline_ms > 0 &&
        Now() >= conn->send_time +
                     std::chrono::milliseconds(config_.request_deadline_ms)) {
      return false;
    }
    int retry_after_sec = 0;
    const std::string_view hint = resp.Header("Retry-After");
    if (!hint.empty()) {
      int sec = 0;
      bool numeric = true;
      for (const char c : hint) {
        if (c < '0' || c > '9') {
          numeric = false;
          break;
        }
        sec = sec * 10 + (c - '0');
      }
      if (numeric) retry_after_sec = sec;
    }
    const auto delay = retry_->NextRetryDelay(conn->attempt,
                                              /*idempotent=*/true,
                                              retry_after_sec);
    if (!delay) return false;
    if (config_.request_deadline_ms > 0 &&
        Now() + *delay >=
            conn->send_time +
                std::chrono::milliseconds(config_.request_deadline_ms)) {
      // The backoff lands past the deadline; fail through instead.
      return false;
    }
    conn->attempt++;
    loop_.RunAfter(*delay, [this, conn] { Resend(conn); });
    return true;
  }

  void HandleError(ClientConn& conn) {
    if (conn.dead) return;
    conn.dead = true;
    result_.errors++;
    const int fd = conn.fd.get();
    loop_.UnregisterFd(fd);
    conns_.erase(fd);
    // Keep the offered concurrency constant: replace the connection.
    if (result_.errors < 1000) {
      try {
        OpenConnection();
      } catch (const std::exception& e) {
        HYNET_LOG(ERROR) << "reconnect failed: " << e.what();
        loop_.Stop();
      }
    } else {
      HYNET_LOG(ERROR) << "too many client errors; aborting load";
      loop_.Stop();
    }
  }

  const LoadConfig& config_;
  Rng rng_;
  std::unique_ptr<RetryPolicy> retry_;
  EventLoop loop_;
  std::vector<double> cumulative_;
  std::vector<std::string> request_bytes_;
  std::unordered_map<int, std::shared_ptr<ClientConn>> conns_;
  std::vector<std::weak_ptr<ClientConn>> conn_ring_;  // open-loop RR order
  size_t ring_cursor_ = 0;
  TimePoint next_arrival_{};  // open loop: absolute arrival schedule
  LoadResult result_;
  bool measuring_ = false;
  TimePoint measure_start_{};
  TimePoint measure_end_{};
};

}  // namespace

LoadResult RunLoad(const LoadConfig& config) {
  ClosedLoopDriver driver(config);
  return driver.Run();
}

// ---- ChaosClient ----

struct ChaosClient::ChaosConn {
  ScopedFd fd;
  std::string script;  // bytes this connection will (slowly) send
  size_t sent = 0;
  size_t read_total = 0;
  bool evicted = false;
  bool done = false;  // finished its misbehavior (e.g. RST delivered)
};

ChaosClient::ChaosClient(ChaosConfig config) : config_(std::move(config)) {}

ChaosClient::~ChaosClient() { Stop(); }

void ChaosClient::Start() {
  if (running_.exchange(true)) return;
  for (int i = 0; i < config_.connections; ++i) {
    auto conn = std::make_unique<ChaosConn>();
    try {
      Socket sock = Socket::CreateTcp(/*nonblocking=*/false);
      // The stalled reader's tiny receive window must be set before
      // connect so the advertised window is small from the first ACK.
      if (config_.mode == ChaosMode::kStalledReader &&
          config_.rcv_buf_bytes > 0) {
        sock.SetRecvBufferSize(config_.rcv_buf_bytes);
      }
      sock.Connect(config_.server);
      sock.SetNonBlocking(true);
      conn->fd = sock.TakeFd();
      connected_.fetch_add(1, std::memory_order_relaxed);
    } catch (const std::exception&) {
      // Connect refused/reset — admission control at work; nothing to do.
      conn->done = true;
    }
    switch (config_.mode) {
      case ChaosMode::kSlowloris:
        // A request head that could complete but never will: the final
        // blank line is withheld forever.
        conn->script = "GET /chaos HTTP/1.1\r\nHost: chaos\r\nX-Drip: " +
                       std::string(512, 'a') + "\r\n\r\n";
        break;
      case ChaosMode::kStalledReader:
      case ChaosMode::kMidResponseRst:
        conn->script = BuildGetRequest(config_.target);
        break;
      case ChaosMode::kIdle:
        break;
    }
    conns_.push_back(std::move(conn));
  }
  thread_ = std::thread([this] { Main(); });
}

void ChaosClient::Stop() {
  if (!running_.exchange(false)) return;
  if (thread_.joinable()) thread_.join();
  conns_.clear();
}

ChaosSnapshot ChaosClient::Snapshot() const {
  ChaosSnapshot s;
  s.connected = connected_.load(std::memory_order_relaxed);
  s.evicted = evicted_.load(std::memory_order_relaxed);
  s.rst_sent = rst_sent_.load(std::memory_order_relaxed);
  s.bytes_sent = bytes_sent_.load(std::memory_order_relaxed);
  s.bytes_read = bytes_read_.load(std::memory_order_relaxed);
  return s;
}

void ChaosClient::MarkEvicted(ChaosConn& conn) {
  if (conn.evicted || conn.done) return;
  conn.evicted = true;
  evicted_.fetch_add(1, std::memory_order_relaxed);
  conn.fd = ScopedFd();
}

void ChaosClient::Main() {
  SetCurrentThreadName("chaos-client");
  const ChaosMode mode = config_.mode;

  // The reader-side modes send their (small) request up front.
  if (mode == ChaosMode::kStalledReader || mode == ChaosMode::kMidResponseRst) {
    for (auto& conn : conns_) {
      if (!conn->fd.valid() || conn->done) continue;
      while (conn->sent < conn->script.size()) {
        const IoResult r =
            WriteFd(conn->fd.get(), conn->script.data() + conn->sent,
                    conn->script.size() - conn->sent);
        if (r.WouldBlock()) break;
        if (r.Fatal()) {
          MarkEvicted(*conn);
          break;
        }
        conn->sent += static_cast<size_t>(r.n);
        bytes_sent_.fetch_add(static_cast<uint64_t>(r.n),
                              std::memory_order_relaxed);
      }
    }
  }

  const Duration drip_gap =
      std::chrono::milliseconds(std::max(1, config_.drip_interval_ms));
  TimePoint next_drip = Now();
  std::vector<pollfd> pfds;
  std::vector<ChaosConn*> order;

  while (running_.load(std::memory_order_acquire)) {
    pfds.clear();
    order.clear();
    for (auto& conn : conns_) {
      if (!conn->fd.valid() || conn->done || conn->evicted) continue;
      short events = POLLRDHUP;
      // The stalled reader never reads — its whole point is a full
      // receive buffer — but eviction still surfaces as HUP/ERR/RDHUP.
      if (mode != ChaosMode::kStalledReader) events |= POLLIN;
      pfds.push_back(pollfd{conn->fd.get(), events, 0});
      order.push_back(conn.get());
    }
    if (pfds.empty()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      continue;
    }
    const int timeout_ms =
        mode == ChaosMode::kSlowloris ? std::max(1, config_.drip_interval_ms)
                                      : 10;
    ::poll(pfds.data(), pfds.size(), timeout_ms);

    for (size_t i = 0; i < pfds.size(); ++i) {
      ChaosConn& conn = *order[i];
      const short re = pfds[i].revents;
      if (re & (POLLERR | POLLHUP | POLLRDHUP)) {
        MarkEvicted(conn);
        continue;
      }
      if (!(re & POLLIN)) continue;
      char buf[4096];
      while (conn.fd.valid()) {
        const IoResult r = ReadFd(conn.fd.get(), buf, sizeof(buf));
        if (r.WouldBlock()) break;
        if (r.Eof() || r.Fatal()) {
          MarkEvicted(conn);
          break;
        }
        conn.read_total += static_cast<size_t>(r.n);
        bytes_read_.fetch_add(static_cast<uint64_t>(r.n),
                              std::memory_order_relaxed);
        if (mode == ChaosMode::kMidResponseRst &&
            conn.read_total >= config_.rst_after_bytes) {
          // Abort mid-response: linger{1,0} turns the close into an RST
          // the server's write path will hit on its next send.
          SetFdLingerAbort(conn.fd.get());
          conn.fd = ScopedFd();
          conn.done = true;
          rst_sent_.fetch_add(1, std::memory_order_relaxed);
          break;
        }
        if (static_cast<size_t>(r.n) < sizeof(buf)) break;
      }
    }

    // Slowloris drip: one header byte per cadence per connection, never
    // the final blank line.
    if (mode == ChaosMode::kSlowloris && Now() >= next_drip) {
      next_drip = Now() + drip_gap;
      for (auto& conn : conns_) {
        if (!conn->fd.valid() || conn->done || conn->evicted) continue;
        const size_t cap = conn->script.size() - 4;  // withhold "\r\n\r\n"
        if (conn->sent >= cap) continue;
        const IoResult r =
            WriteFd(conn->fd.get(), conn->script.data() + conn->sent, 1);
        if (r.Fatal()) {
          MarkEvicted(*conn);
          continue;
        }
        if (!r.WouldBlock()) {
          conn->sent++;
          bytes_sent_.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  }
}

// ---- ConnScaleClient ----

// Per-connection state is deliberately tiny: the whole point of the swarm
// is to hold ~100k sockets, so an idle connection must cost this struct
// plus its kernel socket and nothing else. The only heap allocation
// (`head`, the response-header scratch) exists while a request is
// outstanding and is freed the moment the response completes — mirroring
// the server-side idle-cold reclamation this client exercises.
struct ConnScaleClient::SwarmConn {
  enum class State : uint8_t {
    kConnecting,  // nonblocking connect() in flight (EPOLLOUT pending)
    kIdle,        // established, no request outstanding
    kBusy,        // request written (or partially written), awaiting reply
    kDead,        // closed; slot is never reused
  };
  ScopedFd fd;
  State state = State::kConnecting;
  size_t out_off = 0;        // request bytes already written (kBusy)
  std::string head;          // response bytes until the blank line (kBusy)
  size_t body_left = 0;      // body bytes still to drain (kBusy, head done)
  bool header_done = false;
  bool ok_status = false;    // status line said 2xx
  TimePoint send_time{};
};

ConnScaleClient::ConnScaleClient(ConnScaleConfig config)
    : config_(std::move(config)) {}

ConnScaleClient::~ConnScaleClient() { Stop(); }

void ConnScaleClient::Start() {
  if (running_.exchange(true)) return;
  thread_ = std::thread([this] { Main(); });
}

void ConnScaleClient::Stop() {
  running_.store(false);
  if (thread_.joinable()) thread_.join();
}

ConnScaleSnapshot ConnScaleClient::Snapshot() const {
  ConnScaleSnapshot snap;
  snap.attempted = attempted_.load(std::memory_order_relaxed);
  snap.established = established_.load(std::memory_order_relaxed);
  snap.connect_errors = connect_errors_.load(std::memory_order_relaxed);
  snap.closed_by_peer = closed_by_peer_.load(std::memory_order_relaxed);
  snap.live = live_.load(std::memory_order_relaxed);
  snap.requests_sent = requests_sent_.load(std::memory_order_relaxed);
  snap.responses_ok = responses_ok_.load(std::memory_order_relaxed);
  snap.response_errors = response_errors_.load(std::memory_order_relaxed);
  snap.skipped_busy = skipped_busy_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(latency_mu_);
    snap.latency = latency_;
  }
  return snap;
}

namespace {

// Scans an HTTP response head for Content-Length (case-insensitive).
// Returns -1 when absent — the swarm then treats the response as
// malformed rather than guessing at connection-close framing, because a
// keep-alive swarm cannot afford close-delimited responses.
ssize_t ScanContentLength(const std::string& head) {
  static constexpr char kName[] = "content-length:";
  static constexpr size_t kNameLen = sizeof(kName) - 1;
  for (size_t pos = 0; pos + kNameLen < head.size(); ++pos) {
    if (head[pos] != '\n') continue;
    if (::strncasecmp(head.data() + pos + 1, kName, kNameLen) != 0) continue;
    size_t v = pos + 1 + kNameLen;
    while (v < head.size() && head[v] == ' ') ++v;
    ssize_t len = 0;
    bool any = false;
    while (v < head.size() && head[v] >= '0' && head[v] <= '9') {
      len = len * 10 + (head[v] - '0');
      ++v;
      any = true;
    }
    if (any) return len;
  }
  return -1;
}

}  // namespace

void ConnScaleClient::Main() {
  SetCurrentThreadName("connscale");
  const ScopedFd ep(::epoll_create1(EPOLL_CLOEXEC));
  if (!ep.valid()) {
    HYNET_LOG(ERROR) << "connscale: epoll_create1 failed: "
                     << std::strerror(errno);
    running_.store(false);
    return;
  }
  const std::string request = "GET " + config_.target +
                              " HTTP/1.1\r\nHost: bench\r\n"
                              "Connection: keep-alive\r\n\r\n";
  const size_t total = static_cast<size_t>(std::max(config_.connections, 0));
  std::vector<std::unique_ptr<SwarmConn>> conns;
  conns.reserve(total);
  Rng rng(config_.seed);
  ZipfGenerator zipf(std::max<uint64_t>(total, 1),
                     std::max(config_.zipf_theta, 0.0));

  const TimePoint start = Now();
  const double ramp_rate = std::max(config_.ramp_rate, 1);
  // Open-loop arrivals: Poisson at request_rate across the whole swarm.
  TimePoint next_arrival = TimePoint::max();
  if (config_.request_rate > 0) {
    next_arrival =
        start + std::chrono::duration_cast<Duration>(std::chrono::duration<
                    double>(rng.NextExponential(1.0 / config_.request_rate)));
  }

  const auto arm = [&](size_t index, uint32_t events, bool add) {
    epoll_event ev{};
    ev.events = events;
    ev.data.u64 = index;
    ::epoll_ctl(ep.get(), add ? EPOLL_CTL_ADD : EPOLL_CTL_MOD,
                conns[index]->fd.get(), &ev);
  };
  const auto close_conn = [&](SwarmConn& conn) {
    if (!conn.fd.valid()) return;
    ::epoll_ctl(ep.get(), EPOLL_CTL_DEL, conn.fd.get(), nullptr);
    conn.fd.Reset();
    conn.head = std::string();
    if (conn.state != SwarmConn::State::kConnecting) {
      live_.fetch_sub(1, std::memory_order_relaxed);
    }
    conn.state = SwarmConn::State::kDead;
  };
  const auto finish_response = [&](SwarmConn& conn) {
    if (conn.ok_status) {
      responses_ok_.fetch_add(1, std::memory_order_relaxed);
      const int64_t ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                             Now() - conn.send_time)
                             .count();
      std::lock_guard<std::mutex> lock(latency_mu_);
      latency_.Record(ns);
    } else {
      response_errors_.fetch_add(1, std::memory_order_relaxed);
    }
    conn.state = SwarmConn::State::kIdle;
    conn.head = std::string();  // free the scratch, not just clear() it
    conn.header_done = false;
  };

  std::vector<epoll_event> events(512);
  while (running_.load(std::memory_order_relaxed)) {
    const TimePoint now = Now();

    // Ramp: connects are due at ramp_rate per second since start.
    const double elapsed = ToSeconds(now - start);
    const size_t due = std::min<size_t>(
        total, static_cast<size_t>(elapsed * ramp_rate) + 1);
    while (conns.size() < due) {
      const size_t index = conns.size();
      conns.push_back(std::make_unique<SwarmConn>());
      SwarmConn& conn = *conns.back();
      attempted_.fetch_add(1, std::memory_order_relaxed);
      conn.fd.Reset(::socket(AF_INET,
                             SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0));
      if (!conn.fd.valid()) {
        connect_errors_.fetch_add(1, std::memory_order_relaxed);
        conn.state = SwarmConn::State::kDead;
        continue;
      }
      if (config_.rcv_buf_bytes > 0) {
        SetFdRecvBufferSize(conn.fd.get(), config_.rcv_buf_bytes);
      }
      if (config_.source.SockAddr()->sa_family != AF_UNSPEC &&
          ::bind(conn.fd.get(), config_.source.SockAddr(),
                 config_.source.Length()) != 0) {
        connect_errors_.fetch_add(1, std::memory_order_relaxed);
        conn.fd.Reset();
        conn.state = SwarmConn::State::kDead;
        continue;
      }
      const int rc = ::connect(conn.fd.get(), config_.server.SockAddr(),
                               config_.server.Length());
      if (rc == 0) {
        conn.state = SwarmConn::State::kIdle;
        established_.fetch_add(1, std::memory_order_relaxed);
        live_.fetch_add(1, std::memory_order_relaxed);
        arm(index, EPOLLIN | EPOLLRDHUP, /*add=*/true);
      } else if (errno == EINPROGRESS) {
        arm(index, EPOLLOUT, /*add=*/true);
      } else {
        connect_errors_.fetch_add(1, std::memory_order_relaxed);
        conn.fd.Reset();
        conn.state = SwarmConn::State::kDead;
      }
    }

    // Open-loop arrivals: every arrival targets a Zipf-picked slot; a slot
    // that is still connecting/busy/dead drops the arrival (counted) so
    // the hot head of the distribution stays hot and the tail stays cold.
    while (next_arrival <= now) {
      next_arrival +=
          std::chrono::duration_cast<Duration>(std::chrono::duration<double>(
              rng.NextExponential(1.0 / config_.request_rate)));
      const size_t index = static_cast<size_t>(zipf.Next(rng));
      if (index >= conns.size() ||
          conns[index]->state != SwarmConn::State::kIdle) {
        skipped_busy_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      SwarmConn& conn = *conns[index];
      conn.state = SwarmConn::State::kBusy;
      conn.out_off = 0;
      conn.header_done = false;
      conn.ok_status = false;
      conn.send_time = now;
      requests_sent_.fetch_add(1, std::memory_order_relaxed);
      const IoResult w = WriteFd(conn.fd.get(), request.data(),
                                 request.size());
      if (w.Fatal()) {
        response_errors_.fetch_add(1, std::memory_order_relaxed);
        close_conn(conn);
        continue;
      }
      conn.out_off = w.Ok() ? static_cast<size_t>(w.n) : 0;
      arm(index,
          conn.out_off < request.size() ? (EPOLLIN | EPOLLOUT | EPOLLRDHUP)
                                        : (EPOLLIN | EPOLLRDHUP),
          /*add=*/false);
    }

    // Sleep until the next scheduled action, bounded so Stop() is seen.
    TimePoint wake = now + std::chrono::milliseconds(50);
    if (conns.size() < total) {
      wake = std::min(wake, now + std::chrono::microseconds(static_cast<
                                int64_t>(1e6 / ramp_rate) + 1));
    }
    wake = std::min(wake, next_arrival);
    const int timeout_ms = static_cast<int>(std::max<int64_t>(
        0, std::chrono::duration_cast<std::chrono::milliseconds>(wake - now)
               .count()));
    const int n =
        ::epoll_wait(ep.get(), events.data(),
                     static_cast<int>(events.size()), timeout_ms);
    for (int i = 0; i < n; ++i) {
      const size_t index = static_cast<size_t>(events[i].data.u64);
      SwarmConn& conn = *conns[index];
      if (!conn.fd.valid()) continue;

      if (conn.state == SwarmConn::State::kConnecting) {
        int err = 0;
        socklen_t len = sizeof(err);
        ::getsockopt(conn.fd.get(), SOL_SOCKET, SO_ERROR, &err, &len);
        if (err != 0 || (events[i].events & (EPOLLERR | EPOLLHUP)) != 0) {
          connect_errors_.fetch_add(1, std::memory_order_relaxed);
          close_conn(conn);
        } else {
          conn.state = SwarmConn::State::kIdle;
          established_.fetch_add(1, std::memory_order_relaxed);
          live_.fetch_add(1, std::memory_order_relaxed);
          arm(index, EPOLLIN | EPOLLRDHUP, /*add=*/false);
        }
        continue;
      }

      // Finish a partial request write.
      if ((events[i].events & EPOLLOUT) != 0 &&
          conn.state == SwarmConn::State::kBusy &&
          conn.out_off < request.size()) {
        const IoResult w =
            WriteFd(conn.fd.get(), request.data() + conn.out_off,
                    request.size() - conn.out_off);
        if (w.Fatal()) {
          response_errors_.fetch_add(1, std::memory_order_relaxed);
          close_conn(conn);
          continue;
        }
        if (w.Ok()) conn.out_off += static_cast<size_t>(w.n);
        if (conn.out_off >= request.size()) {
          arm(index, EPOLLIN | EPOLLRDHUP, /*add=*/false);
        }
      }

      if ((events[i].events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR)) ==
          0) {
        continue;
      }
      char buf[4096];
      for (;;) {
        const IoResult r = ReadFd(conn.fd.get(), buf, sizeof(buf));
        if (r.WouldBlock()) break;
        if (r.Eof() || r.Fatal()) {
          if (conn.state == SwarmConn::State::kBusy) {
            response_errors_.fetch_add(1, std::memory_order_relaxed);
          } else {
            closed_by_peer_.fetch_add(1, std::memory_order_relaxed);
          }
          close_conn(conn);
          break;
        }
        if (conn.state != SwarmConn::State::kBusy) {
          continue;  // unsolicited bytes on an idle conn: drain and ignore
        }
        size_t off = 0;
        const size_t got = static_cast<size_t>(r.n);
        if (!conn.header_done) {
          conn.head.append(buf, got);
          const size_t end = conn.head.find("\r\n\r\n");
          if (end == std::string::npos) {
            if (conn.head.size() > 64 * 1024) {  // runaway head: bail
              response_errors_.fetch_add(1, std::memory_order_relaxed);
              close_conn(conn);
              break;
            }
            continue;
          }
          conn.header_done = true;
          conn.ok_status = conn.head.compare(0, 9, "HTTP/1.1 ") == 0 &&
                           conn.head[9] == '2';
          const ssize_t body = ScanContentLength(conn.head);
          if (body < 0) {
            conn.ok_status = false;
            conn.body_left = 0;
          } else {
            const size_t already = conn.head.size() - (end + 4);
            conn.body_left = static_cast<size_t>(body) >= already
                                 ? static_cast<size_t>(body) - already
                                 : 0;
          }
          off = got;  // everything read went through `head`
        }
        const size_t body_bytes = std::min(got - off, conn.body_left);
        conn.body_left -= body_bytes;
        if (conn.body_left == 0) {
          finish_response(conn);
        }
        if (static_cast<size_t>(r.n) < sizeof(buf)) break;
      }
    }
  }

  // Final teardown aborts with RST (SO_LINGER 0): a 50k-socket swarm
  // closing politely would park 50k tuples in TIME_WAIT and starve the
  // next bench point of ephemeral ports for a minute.
  for (auto& conn : conns) {
    if (conn->fd.valid()) SetFdLingerAbort(conn->fd.get());
    close_conn(*conn);
  }
}

}  // namespace hynet
