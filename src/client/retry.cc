#include "client/retry.h"

#include <algorithm>

namespace hynet {

bool RetryableStatus(int status) { return status == 503; }

bool RetryableRpcStatus(RpcStatus status) {
  return status == RpcStatus::kShed;
}

RetryPolicy::RetryPolicy(RetryPolicyConfig config, uint64_t seed)
    : config_(config),
      rng_(seed),
      tokens_(std::min(config.initial_tokens, config.max_tokens)) {}

std::optional<Duration> RetryPolicy::NextRetryDelay(int attempt,
                                                    bool idempotent,
                                                    int retry_after_sec) {
  if (!idempotent) return std::nullopt;
  if (attempt >= config_.max_attempts) return std::nullopt;

  std::lock_guard<std::mutex> lock(mu_);
  if (tokens_ < 1.0) {
    budget_exhausted_++;
    if (lifecycle_) {
      lifecycle_->retry_budget_exhausted.fetch_add(1,
                                                   std::memory_order_relaxed);
    }
    return std::nullopt;
  }
  tokens_ -= 1.0;
  retries_issued_++;
  if (lifecycle_) {
    lifecycle_->retries_issued.fetch_add(1, std::memory_order_relaxed);
  }

  // Full jitter: uniform in (0, base * 2^(attempt-1)], capped. The server
  // hint is a floor — retrying before Retry-After is a guaranteed shed.
  double ceiling_ms = config_.base_backoff_ms;
  for (int i = 1; i < attempt; ++i) ceiling_ms *= 2.0;
  ceiling_ms = std::min(ceiling_ms, config_.max_backoff_ms);
  double delay_ms = ceiling_ms * rng_.NextDouble();
  delay_ms = std::max(delay_ms, static_cast<double>(retry_after_sec) * 1000.0);
  return std::chrono::duration_cast<Duration>(
      std::chrono::duration<double, std::milli>(delay_ms));
}

void RetryPolicy::OnSuccess() {
  std::lock_guard<std::mutex> lock(mu_);
  tokens_ = std::min(tokens_ + config_.budget_ratio, config_.max_tokens);
  successes_++;
}

uint64_t RetryPolicy::Successes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return successes_;
}

uint64_t RetryPolicy::RetriesIssued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return retries_issued_;
}

uint64_t RetryPolicy::BudgetExhausted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return budget_exhausted_;
}

void RetryPolicy::BindLifecycle(LifecycleStats* lifecycle) {
  std::lock_guard<std::mutex> lock(mu_);
  lifecycle_ = lifecycle;
}

}  // namespace hynet
