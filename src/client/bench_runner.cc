#include "client/bench_runner.h"

#include <cmath>
#include <cstdio>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "common/env.h"
#include "common/thread_util.h"
#include "proxy/latency_proxy.h"

namespace hynet {

Handler MakeBenchHandler() {
  // Bodies are a function of the requested size only, so responses of the
  // same size share one allocation: the handler materializes each distinct
  // size once and hands the outbound path a refcounted shared body.
  auto bodies = std::make_shared<
      std::unordered_map<size_t, std::shared_ptr<const std::string>>>();
  auto mu = std::make_shared<std::mutex>();
  return [bodies, mu](const HttpRequest& req, HttpResponse& resp) {
    const auto size =
        static_cast<size_t>(req.QueryParamInt("size", 128));
    const double us =
        static_cast<double>(req.QueryParamInt("us", 0));
    if (us > 0) BurnCpuMicros(us);
    {
      std::lock_guard<std::mutex> lock(*mu);
      auto& body = (*bodies)[size];
      if (!body) {
        body = std::make_shared<const std::string>(std::string(size, 'x'));
      }
      resp.shared_body = body;
    }
    // HTTP/2-style server push: /bench?...&push=N&push_kb=M attaches N
    // companion resources of M KB each (Section IV's unpredictable
    // response-size scenario).
    const auto push = static_cast<size_t>(req.QueryParamInt("push", 0));
    const auto push_kb = static_cast<size_t>(req.QueryParamInt("push_kb", 16));
    for (size_t i = 0; i < push; ++i) {
      resp.pushed.emplace_back(push_kb * 1024, 'p');
    }
    resp.SetHeader("Content-Type", "application/octet-stream");
  };
}

std::string BenchTarget(size_t response_bytes, double cpu_us) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "/bench?size=%zu&us=%lld", response_bytes,
                static_cast<long long>(cpu_us));
  return buf;
}

double DefaultCpuUs(size_t response_bytes) {
  // ~20 us baseline parse/compute plus ~1 us per KB of produced content:
  // keeps CPU demand positively correlated with response size, as in the
  // paper's micro-benchmark servlets.
  return 20.0 + static_cast<double>(response_bytes) / 1024.0;
}

BenchPointResult RunBenchPoint(const BenchPoint& point) {
  CalibrateCpuBurn();  // before the measured window, not during

  auto server = CreateServer(point.server, MakeBenchHandler());
  server->Start();

  std::optional<LatencyProxy> proxy;
  uint16_t connect_port = server->Port();
  if (point.latency_ms > 0) {
    LatencyProxyConfig pc;
    pc.upstream = InetAddr::Loopback(server->Port());
    pc.one_way_delay = std::chrono::microseconds(
        static_cast<int64_t>(point.latency_ms * 1000));
    proxy.emplace(pc);
    proxy->Start();
    connect_port = proxy->Port();
  }

  BenchPointResult result;
  std::optional<ServerActivitySampler> sampler;
  ServerCounters begin_counters;

  LoadConfig lc;
  lc.server = InetAddr::Loopback(connect_port);
  lc.connections = point.concurrency;
  lc.warmup_sec = point.warmup_sec;
  lc.measure_sec = point.measure_sec;
  lc.targets = point.targets;
  lc.seed = point.seed;
  lc.rcv_buf_bytes = point.client_rcv_buf;
  lc.open_loop_rate = point.open_loop_rate;
  lc.request_deadline_ms = point.request_deadline_ms;
  lc.retries_enabled = point.client_retries;
  lc.retry = point.retry;
  // The proxy's round trip is wire time, not the server serving late.
  lc.late_slack_ms =
      1 + static_cast<int>(std::ceil(2.0 * point.latency_ms));
  ThreadCpuTimes begin_process_cpu;
  lc.on_measure_start = [&] {
    // Thread set is sampled at window start: by now thread-per-connection
    // has spawned its connection threads.
    sampler.emplace(server->ThreadIds());
    sampler->Start();
    // Counter windows come from the registry scrape rather than a direct
    // Snapshot() call: the bench doubles as a continuous check that the
    // observability plane exports exactly the values Snapshot() holds.
    begin_counters = CountersFromRegistry(server->metrics().Scrape());
    begin_process_cpu = ReadProcessCpu();
  };
  lc.on_measure_end = [&] {
    result.activity = sampler->Stop();
    result.counters =
        CountersFromRegistry(server->metrics().Scrape()) - begin_counters;
    result.process_cpu = ReadProcessCpu() - begin_process_cpu;
  };

  result.load = RunLoad(lc);

  if (proxy) proxy->Stop();
  server->Stop();
  return result;
}

double BenchSeconds(double fallback) {
  return EnvDouble("HYNET_BENCH_SECONDS", fallback);
}

bool BenchQuickMode() { return EnvBool("HYNET_BENCH_QUICK", false); }

}  // namespace hynet
