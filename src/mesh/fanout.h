// FanoutCall: one upstream request fanned out into N parallel downstream
// calls, with fan-in aggregation under an explicit partial-failure policy.
//
// The sync chain serializes sub-requests (N × downstream latency, and the
// slowest one sets the floor); the fan-out issues all N at once so the
// front-end pays max(sub-latencies) instead of sum — the tail-amplification
// trade the bench measures. What makes fan-out a subsystem rather than a
// loop is the failure half: when 1 of N legs sheds or expires, the group
// must decide *once* what the upstream sees.
//
//   kAll        every leg must succeed; the first failure fails the group
//               immediately (remaining completions are absorbed silently).
//   kQuorum     `quorum` successes satisfy the group (default N/2+1); it
//               fails as soon as too many legs have failed to ever reach
//               quorum. Fires early in both directions.
//   kBestEffort waits for all N, succeeds if at least one leg did, and
//               reports the gaps as a degraded response.
//
// The issuer is a plain callable, not an RpcChannel, so tests can drive
// synthetic completion orders and the app tier can wrap per-leg breaker
// accounting around the real channel call.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "mesh/rpc_channel.h"
#include "runtime/dispatch_stats.h"

namespace hynet {

enum class FanoutPolicy {
  kAll = 0,
  kQuorum = 1,
  kBestEffort = 2,
};

const char* FanoutPolicyName(FanoutPolicy policy);
// Parses "all" / "quorum" / "best-effort" (also "best_effort"); defaults to
// kAll on unknown input.
FanoutPolicy ParseFanoutPolicy(std::string_view name);

struct FanoutOptions {
  FanoutPolicy policy = FanoutPolicy::kAll;
  // Successes required under kQuorum; 0 = majority (N/2 + 1).
  size_t quorum = 0;
  // Counts mesh_fanout_calls / mesh_partial_failures / degraded_responses.
  LifecycleStats* lifecycle = nullptr;
};

struct FanoutResult {
  // Per-leg results, index-aligned with the issue order. Legs that had not
  // completed when the group fired early hold default-constructed entries
  // (status kError, transport_error false, done=false in `completed`).
  std::vector<RpcCallResult> results;
  std::vector<bool> completed;
  size_t ok = 0;
  size_t failed = 0;
  // The policy's verdict for the group.
  bool satisfied = false;
  // Satisfied with gaps (best-effort with ≥1 failed leg): the upstream
  // response is served but marked degraded.
  bool degraded = false;
};

// Issues leg `index`; must eventually invoke `done` exactly once (from any
// thread). Success/failure of a leg is RpcCallResult::ok().
using FanoutIssuer = std::function<void(size_t index, RpcCallback done)>;

using FanoutDone = std::function<void(FanoutResult)>;

// Issues all N legs and invokes `done` exactly once when the policy's
// verdict is known (possibly before every leg completes). `done` runs on
// whichever thread delivered the deciding completion. Thread-safe; the
// group state lives until the last leg's callback has run.
void FanoutCall(size_t n, FanoutIssuer issuer, FanoutOptions options,
                FanoutDone done);

// Blocking wrapper for thread-based callers (web tier): issues and waits.
FanoutResult FanoutCallSync(size_t n, FanoutIssuer issuer,
                            FanoutOptions options);

}  // namespace hynet
