#include "mesh/response_cache.h"

#include <algorithm>
#include <utility>

#include "common/clock.h"

namespace hynet {

ResponseCache::ResponseCache(ResponseCacheConfig config) : config_(config) {
  const size_t n = std::max<size_t>(1, config_.shards);
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) shards_.push_back(std::make_unique<Shard>());
}

std::string ResponseCache::FullKey(uint16_t method_id, std::string_view key) {
  std::string full;
  full.reserve(2 + key.size());
  full.push_back(static_cast<char>(method_id & 0xff));
  full.push_back(static_cast<char>(method_id >> 8));
  full.append(key);
  return full;
}

ResponseCache::Shard& ResponseCache::ShardFor(const std::string& full_key) {
  const size_t h = std::hash<std::string>{}(full_key);
  return *shards_[h % shards_.size()];
}

ResponseCache::Outcome ResponseCache::Lookup(uint16_t method_id,
                                             std::string_view key,
                                             CachedResponse* hit,
                                             FillFn on_fill) {
  const std::string full = FullKey(method_id, key);
  Shard& shard = ShardFor(full);
  const int64_t now_ns = NowNanos();

  std::unique_lock<std::mutex> lock(shard.mu);
  auto it = shard.index.find(full);
  if (it != shard.index.end()) {
    Entry& entry = *it->second;
    if (entry.expires_at_ns != 0 && now_ns >= entry.expires_at_ns) {
      // TTL gone: treat as a miss and drop the entry so the refill path
      // below owns the key.
      shard.bytes -= entry.bytes;
      shard.lru.erase(it->second);
      shard.index.erase(it);
    } else {
      // Hit: bump to LRU front and hand out another refcount on the body.
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      *hit = entry.value;
      lock.unlock();
      hits_.fetch_add(1, std::memory_order_relaxed);
      if (lifecycle_) {
        lifecycle_->cache_hits.fetch_add(1, std::memory_order_relaxed);
      }
      return Outcome::kHit;
    }
  }

  misses_.fetch_add(1, std::memory_order_relaxed);
  if (lifecycle_) {
    lifecycle_->cache_misses.fetch_add(1, std::memory_order_relaxed);
  }
  auto pending = shard.pending.find(full);
  if (pending != shard.pending.end()) {
    // A lead is already rendering this key: park and wait for its Fill.
    pending->second.push_back(std::move(on_fill));
    lock.unlock();
    singleflight_waits_.fetch_add(1, std::memory_order_relaxed);
    if (lifecycle_) {
      lifecycle_->cache_singleflight_waits.fetch_add(1,
                                                     std::memory_order_relaxed);
    }
    return Outcome::kMissJoined;
  }
  shard.pending.emplace(full, std::vector<FillFn>{});
  return Outcome::kMissLead;
}

void ResponseCache::Fill(uint16_t method_id, std::string_view key,
                         CachedResponse value, bool store) {
  const std::string full = FullKey(method_id, key);
  Shard& shard = ShardFor(full);
  std::vector<FillFn> waiters;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto pending = shard.pending.find(full);
    if (pending != shard.pending.end()) {
      waiters = std::move(pending->second);
      shard.pending.erase(pending);
    }
    if (store && value.body) {
      // Replace any stale entry for the key, then insert at LRU front.
      auto it = shard.index.find(full);
      if (it != shard.index.end()) {
        shard.bytes -= it->second->bytes;
        shard.lru.erase(it->second);
        shard.index.erase(it);
      }
      Entry entry;
      entry.key = full;
      entry.value = value;
      entry.bytes = value.body->size();
      entry.expires_at_ns =
          config_.ttl_ms > 0
              ? NowNanos() + static_cast<int64_t>(config_.ttl_ms) * 1'000'000
              : 0;
      shard.bytes += entry.bytes;
      shard.lru.push_front(std::move(entry));
      shard.index[full] = shard.lru.begin();
      while (shard.bytes > config_.max_bytes_per_shard &&
             shard.lru.size() > 1) {
        Entry& victim = shard.lru.back();
        shard.bytes -= victim.bytes;
        shard.index.erase(victim.key);
        shard.lru.pop_back();
        evictions_.fetch_add(1, std::memory_order_relaxed);
        if (lifecycle_) {
          lifecycle_->cache_evictions.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  }
  // Waiters run outside the shard lock: each gets its own refcount on the
  // one shared body.
  for (auto& w : waiters) {
    if (w) w(value);
  }
}

void ResponseCache::BindLifecycle(LifecycleStats* lifecycle) {
  lifecycle_ = lifecycle;
}

size_t ResponseCache::EntryCount() const {
  size_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    n += shard->lru.size();
  }
  return n;
}

size_t ResponseCache::TotalBytes() const {
  size_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    n += shard->bytes;
  }
  return n;
}

}  // namespace hynet
