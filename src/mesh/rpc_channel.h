// RpcChannel: the client half of the async service mesh.
//
// A channel is one persistent multiplexed connection to a downstream RPC
// server, owned by an EventLoop. Any thread may issue Call(); the channel
// marshals the call onto its loop, pipelines it onto the wire with a
// client-chosen request_id, and matches the completion back by id — any
// number of requests in flight, responses consumed in whatever order the
// downstream completes them. This is the inter-tier replacement for the
// blocking borrow-a-connection pool (rubbos DbConnectionPool): one
// connection carries hundreds of concurrent requests instead of one, so a
// slow query never holds a pool slot hostage.
//
// Per-hop resilience is built in rather than bolted on:
//   - deadline decrement: the caller's remaining budget (explicit or the
//     thread's CurrentRequestDeadline) is clamped into the frame header's
//     deadline field, minus a per-hop return margin. Expired calls fail
//     locally (kExpired) without touching the wire, and an armed per-call
//     timer completes calls whose response never arrives in budget.
//   - retry budget: transport failures and kShed responses retry under a
//     shared token-bucket RetryPolicy — per-*method* idempotency decides
//     eligibility (the mesh has no HTTP verb to guess from).
//   - circuit breaker: an optional shared breaker gates calls before they
//     queue; open-breaker calls fail fast with kShed.
//   - in-flight caps: at most `max_inflight` requests on the wire; excess
//     queues locally up to `max_queued`, past which calls shed locally.
//   - reconnect: a dead connection (RST, FIN, refused) fails or retries
//     its in-flight calls and re-dials with exponential backoff; queued
//     calls survive the outage and drain after the re-dial.
//
// MeshClient bundles N loops × M channels into one load-balanced client
// with shared retry/breaker state — the thing a tier actually holds.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "client/retry.h"
#include "common/bytes.h"
#include "common/deadline.h"
#include "common/fd.h"
#include "metrics/registry.h"
#include "net/event_loop.h"
#include "net/inet_addr.h"
#include "proto/rpc_codec.h"
#include "runtime/circuit_breaker.h"
#include "runtime/dispatch_stats.h"

namespace hynet {

struct RpcChannelConfig {
  InetAddr server;
  // Requests allowed on the wire at once; excess queues in the channel.
  size_t max_inflight = 256;
  // Queued (not yet sent) calls allowed before new calls shed locally.
  size_t max_queued = 4096;
  // Encode the remaining deadline budget into every frame and fail calls
  // locally once it is gone.
  bool deadline_propagation = false;
  // Budget reserved for the response leg: a hop forwards
  // remaining - margin and refuses to send once that hits zero.
  int deadline_margin_ms = 0;
  // Reconnect backoff after a failed dial (doubles up to the max).
  double reconnect_base_ms = 5.0;
  double reconnect_max_ms = 500.0;
  // Frame payload cap applied to responses (0 = unlimited).
  size_t max_response_bytes = 64 * 1024 * 1024;
};

struct RpcCallOptions {
  // Explicit budget for this call. When invalid and the channel has
  // deadline_propagation on, the issuing thread's CurrentRequestDeadline
  // is captured instead (the natural nested-hop decrement).
  Deadline deadline;
  // Per-method idempotency: only idempotent calls are retried. This is
  // the method table's decision, not a transport guess.
  bool idempotent = false;
};

struct RpcCallResult {
  RpcStatus status = RpcStatus::kError;
  // True when the call failed without a server response: connection died,
  // dial failed, local queue shed (status kShed), or local deadline expiry
  // would be transport-side — expiry reports kExpired with this false,
  // since the budget verdict is authoritative either way.
  bool transport_error = false;
  std::string payload;

  bool ok() const {
    return !transport_error &&
           (status == RpcStatus::kOk || status == RpcStatus::kNotFound);
  }
};

using RpcCallback = std::function<void(RpcCallResult)>;

class RpcChannel {
 public:
  // The loop is borrowed, not owned; every channel member is touched only
  // from its thread. Shutdown() must run (on the loop) before the loop
  // stops — MeshClient sequences this.
  RpcChannel(EventLoop* loop, RpcChannelConfig config);
  ~RpcChannel();
  RpcChannel(const RpcChannel&) = delete;
  RpcChannel& operator=(const RpcChannel&) = delete;

  // Safe from any thread. `done` runs on the channel's loop thread;
  // blocking callers wrap with FanoutCallSync / MeshClient::CallSync.
  void Call(uint16_t method_id, std::string payload,
            const RpcCallOptions& options, RpcCallback done);

  // Shared resilience state (bound once at wiring time, before traffic).
  void SetRetryPolicy(std::shared_ptr<RetryPolicy> retry);
  void SetBreaker(std::shared_ptr<CircuitBreaker> breaker);
  void BindLifecycle(LifecycleStats* lifecycle);
  // Mirrors wire in-flight into a gauge via deltas, so N channels bound to
  // one gauge sum — the dashboard's fan-out in-flight column.
  void BindInflightGauge(Gauge* gauge);

  uint64_t Reconnects() const {
    return reconnects_.load(std::memory_order_relaxed);
  }

  // Fails every queued and in-flight call with a transport error and
  // closes the connection. Loop thread only.
  void ShutdownInLoop();

  // Test hook: aborts the current connection (RST via SO_LINGER {1,0}),
  // exactly what a crashed downstream does to us. Safe from any thread.
  void InjectDisconnectForTest();

 private:
  enum class CallState { kQueued, kSent, kBackoff };

  struct PendingCall {
    uint64_t id = 0;
    uint16_t method_id = 0;
    std::string payload;
    RpcCallOptions options;
    RpcCallback done;
    CallState state = CallState::kQueued;
    int attempts = 1;
    bool breaker_admitted = false;  // Allow() returned true; must resolve
    EventLoop::TimerId expiry_timer = 0;
  };

  // All private methods run on the loop thread.
  void StartCall(std::unique_ptr<PendingCall> call);
  void Pump();
  void EnsureConnected();
  void HandleDisconnect(bool count_reconnect);
  void OnEvent(uint32_t events);
  void OnReadable();
  void HandleResponse(RpcFrame frame);
  void FlushOut();
  // True when the call was rescheduled for a retry (not completed).
  bool MaybeRetry(PendingCall& call);
  void Complete(uint64_t id, RpcCallResult result);
  void CompleteCall(std::unique_ptr<PendingCall> call, RpcCallResult result);
  void ArmExpiry(PendingCall& call);
  void WireRemoved();

  EventLoop* loop_;
  RpcChannelConfig config_;
  std::shared_ptr<RetryPolicy> retry_;
  std::shared_ptr<CircuitBreaker> breaker_;
  LifecycleStats* lifecycle_ = nullptr;
  Gauge* inflight_gauge_ = nullptr;

  ScopedFd fd_;
  bool connected_ = false;
  bool ever_connected_ = false;
  bool reconnect_scheduled_ = false;
  bool shutdown_ = false;
  double backoff_ms_ = 0;  // 0 = next dial is immediate
  ByteBuffer in_;
  RpcFrameParser parser_;
  std::string out_;
  size_t out_off_ = 0;
  bool want_writable_ = false;

  uint64_t next_id_ = 1;
  std::unordered_map<uint64_t, std::unique_ptr<PendingCall>> calls_;
  std::deque<uint64_t> queue_;   // kQueued calls, send order
  size_t wire_inflight_ = 0;     // kSent calls

  std::atomic<uint64_t> reconnects_{0};
};

// ---- MeshClient: the per-downstream handle a tier holds ----

struct MeshClientConfig {
  InetAddr server;
  int loops = 1;
  int channels_per_loop = 1;
  RpcChannelConfig channel;  // `server` is overwritten from this config

  // Shared across every channel: one token bucket per downstream, so mesh
  // retries cannot multiply with channel count.
  bool enable_retries = false;
  RetryPolicyConfig retry;
  // Shared breaker guarding the downstream as a whole.
  bool enable_breaker = false;
  CircuitBreakerConfig breaker;
  uint64_t seed = 17;
};

class MeshClient {
 public:
  explicit MeshClient(MeshClientConfig config);
  ~MeshClient();

  void Start();
  void Stop();

  // Round-robin across channels; safe from any thread.
  void Call(uint16_t method_id, std::string payload,
            const RpcCallOptions& options, RpcCallback done);
  // Blocking convenience for thread-based callers (web tier, tests). Must
  // not be called from a mesh loop thread.
  RpcCallResult CallSync(uint16_t method_id, std::string payload,
                         const RpcCallOptions& options);

  void BindLifecycle(LifecycleStats* lifecycle);
  void BindInflightGauge(Gauge* gauge);

  uint64_t Reconnects() const;
  RetryPolicy* retry_policy() { return retry_.get(); }
  CircuitBreaker* breaker() { return breaker_.get(); }
  size_t ChannelCount() const { return channels_.size(); }
  RpcChannel& ChannelForTest(size_t i) { return *channels_[i]; }

 private:
  MeshClientConfig config_;
  std::shared_ptr<RetryPolicy> retry_;
  std::shared_ptr<CircuitBreaker> breaker_;
  LifecycleStats* lifecycle_ = nullptr;  // bound pre-Start, applied in Start
  Gauge* inflight_gauge_ = nullptr;
  std::vector<std::unique_ptr<EventLoop>> loops_;
  std::vector<std::thread> threads_;
  std::vector<std::unique_ptr<RpcChannel>> channels_;
  std::atomic<uint64_t> next_channel_{0};
  bool started_ = false;
};

}  // namespace hynet
