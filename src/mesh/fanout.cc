#include "mesh/fanout.h"

#include <algorithm>
#include <atomic>
#include <utility>

namespace hynet {

const char* FanoutPolicyName(FanoutPolicy policy) {
  switch (policy) {
    case FanoutPolicy::kAll:
      return "all";
    case FanoutPolicy::kQuorum:
      return "quorum";
    case FanoutPolicy::kBestEffort:
      return "best-effort";
  }
  return "all";
}

FanoutPolicy ParseFanoutPolicy(std::string_view name) {
  if (name == "quorum") return FanoutPolicy::kQuorum;
  if (name == "best-effort" || name == "best_effort") {
    return FanoutPolicy::kBestEffort;
  }
  return FanoutPolicy::kAll;
}

namespace {

struct FanoutState {
  std::mutex mu;
  FanoutOptions options;
  FanoutDone done;
  FanoutResult result;
  size_t n = 0;
  size_t quorum = 0;
  size_t arrived = 0;
  bool fired = false;
};

// Policy verdict once `state.result` reflects the latest completion.
// Returns true when the group outcome is decided; sets satisfied/degraded.
// Caller holds the mutex.
bool GroupDecided(FanoutState& state) {
  FanoutResult& r = state.result;
  switch (state.options.policy) {
    case FanoutPolicy::kAll:
      if (r.failed > 0) {
        r.satisfied = false;
        return true;
      }
      if (r.ok == state.n) {
        r.satisfied = true;
        return true;
      }
      return false;
    case FanoutPolicy::kQuorum:
      if (r.ok >= state.quorum) {
        r.satisfied = true;
        r.degraded = r.failed > 0 || state.arrived < state.n;
        return true;
      }
      if (r.failed > state.n - state.quorum) {
        r.satisfied = false;
        return true;
      }
      return false;
    case FanoutPolicy::kBestEffort:
      if (state.arrived < state.n) return false;
      r.satisfied = r.ok > 0;
      r.degraded = r.satisfied && r.failed > 0;
      return true;
  }
  return false;
}

void OnLegDone(const std::shared_ptr<FanoutState>& state, size_t index,
               RpcCallResult leg) {
  FanoutDone fire;
  FanoutResult snapshot;
  {
    std::lock_guard<std::mutex> lock(state->mu);
    if (state->result.completed[index]) return;  // issuer misbehaved
    state->result.completed[index] = true;
    ++state->arrived;
    if (leg.ok()) {
      ++state->result.ok;
    } else {
      ++state->result.failed;
    }
    state->result.results[index] = std::move(leg);
    if (state->fired) return;  // verdict already delivered; just absorb
    if (!GroupDecided(*state)) return;
    state->fired = true;
    if (state->options.lifecycle && state->result.failed > 0) {
      state->options.lifecycle->mesh_partial_failures.fetch_add(
          1, std::memory_order_relaxed);
      if (state->result.degraded) {
        state->options.lifecycle->degraded_responses.fetch_add(
            1, std::memory_order_relaxed);
      }
    }
    fire = std::move(state->done);
    state->done = nullptr;
    snapshot = state->result;  // copy: stragglers keep mutating the original
  }
  if (fire) fire(std::move(snapshot));
}

}  // namespace

void FanoutCall(size_t n, FanoutIssuer issuer, FanoutOptions options,
                FanoutDone done) {
  auto state = std::make_shared<FanoutState>();
  state->options = options;
  state->done = std::move(done);
  state->n = n;
  state->quorum = options.quorum > 0 ? std::min(options.quorum, n) : n / 2 + 1;
  state->result.results.resize(n);
  state->result.completed.assign(n, false);
  if (options.lifecycle) {
    options.lifecycle->mesh_fanout_calls.fetch_add(1,
                                                   std::memory_order_relaxed);
  }
  if (n == 0) {
    // Degenerate group: vacuously satisfied for all/best-effort semantics.
    FanoutResult r = state->result;
    r.satisfied = options.policy != FanoutPolicy::kQuorum;
    auto fire = std::move(state->done);
    if (fire) fire(std::move(r));
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    issuer(i, [state, i](RpcCallResult leg) {
      OnLegDone(state, i, std::move(leg));
    });
  }
}

FanoutResult FanoutCallSync(size_t n, FanoutIssuer issuer,
                            FanoutOptions options) {
  struct Sync {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    FanoutResult result;
  };
  auto sync = std::make_shared<Sync>();
  FanoutCall(n, std::move(issuer), options, [sync](FanoutResult r) {
    std::lock_guard<std::mutex> lock(sync->mu);
    sync->result = std::move(r);
    sync->done = true;
    sync->cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(sync->mu);
  sync->cv.wait(lock, [&] { return sync->done; });
  return std::move(sync->result);
}

}  // namespace hynet
