#include "mesh/rpc_channel.h"

#include <sys/epoll.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <utility>

#include "net/socket.h"

namespace hynet {

namespace {

// Breaker/retry success classification: did the downstream prove it is
// healthy? kNotFound/kBadRequest/kBadMethod are caller-side outcomes the
// server produced promptly — they deposit retry budget and close breaker
// windows just like kOk. kShed/kError/kExpired and transport failures are
// evidence against the downstream.
bool DownstreamHealthy(const RpcCallResult& r) {
  if (r.transport_error) return false;
  switch (r.status) {
    case RpcStatus::kOk:
    case RpcStatus::kNotFound:
    case RpcStatus::kBadMethod:
    case RpcStatus::kBadRequest:
      return true;
    default:
      return false;
  }
}

}  // namespace

RpcChannel::RpcChannel(EventLoop* loop, RpcChannelConfig config)
    : loop_(loop), config_(config) {
  parser_.SetLimits(config_.max_response_bytes);
}

RpcChannel::~RpcChannel() = default;

void RpcChannel::SetRetryPolicy(std::shared_ptr<RetryPolicy> retry) {
  retry_ = std::move(retry);
}

void RpcChannel::SetBreaker(std::shared_ptr<CircuitBreaker> breaker) {
  breaker_ = std::move(breaker);
}

void RpcChannel::BindLifecycle(LifecycleStats* lifecycle) {
  lifecycle_ = lifecycle;
}

void RpcChannel::BindInflightGauge(Gauge* gauge) { inflight_gauge_ = gauge; }

void RpcChannel::Call(uint16_t method_id, std::string payload,
                      const RpcCallOptions& options, RpcCallback done) {
  auto call = std::make_unique<PendingCall>();
  call->method_id = method_id;
  call->payload = std::move(payload);
  call->options = options;
  call->done = std::move(done);
  // The thread-local deadline lives on the *issuing* thread; capture it
  // here, before the hop onto the loop thread.
  if (!call->options.deadline.valid() && config_.deadline_propagation) {
    call->options.deadline = CurrentRequestDeadline();
  }
  // unique_ptr can't ride a std::function; release/re-own across the hop.
  PendingCall* raw = call.release();
  loop_->RunInLoop(
      [this, raw] { StartCall(std::unique_ptr<PendingCall>(raw)); });
}

void RpcChannel::StartCall(std::unique_ptr<PendingCall> call) {
  if (shutdown_) {
    CompleteCall(std::move(call),
                 RpcCallResult{RpcStatus::kError, /*transport_error=*/true, {}});
    return;
  }
  if (breaker_ && !breaker_->Allow()) {
    CompleteCall(std::move(call),
                 RpcCallResult{RpcStatus::kShed, /*transport_error=*/true, {}});
    return;
  }
  call->breaker_admitted = breaker_ != nullptr;
  if (config_.deadline_propagation && call->options.deadline.valid() &&
      call->options.deadline.RemainingMillis() <= config_.deadline_margin_ms) {
    if (lifecycle_) {
      lifecycle_->deadline_expired.fetch_add(1, std::memory_order_relaxed);
    }
    CompleteCall(std::move(call),
                 RpcCallResult{RpcStatus::kExpired, /*transport_error=*/false,
                               {}});
    return;
  }
  if (queue_.size() >= config_.max_queued) {
    CompleteCall(std::move(call),
                 RpcCallResult{RpcStatus::kShed, /*transport_error=*/true, {}});
    return;
  }
  call->id = next_id_++;
  call->state = CallState::kQueued;
  ArmExpiry(*call);
  queue_.push_back(call->id);
  calls_.emplace(call->id, std::move(call));
  Pump();
}

void RpcChannel::ArmExpiry(PendingCall& call) {
  if (!config_.deadline_propagation || !call.options.deadline.valid()) return;
  // +margin: give the wire deadline (remaining - margin) a chance to come
  // back as a server-side kExpired before the local timer declares it.
  const int64_t remaining = call.options.deadline.RemainingMillis();
  const uint64_t id = call.id;
  call.expiry_timer = loop_->RunAfterCoarse(
      std::chrono::milliseconds(remaining + config_.deadline_margin_ms + 1),
      [this, id] {
        auto it = calls_.find(id);
        if (it == calls_.end()) return;
        auto call = std::move(it->second);
        calls_.erase(it);
        call->expiry_timer = 0;
        if (call->state == CallState::kSent) {
          WireRemoved();
        }
        if (lifecycle_) {
          lifecycle_->deadline_expired.fetch_add(1, std::memory_order_relaxed);
        }
        CompleteCall(std::move(call),
                     RpcCallResult{RpcStatus::kExpired,
                                   /*transport_error=*/false, {}});
      });
}

void RpcChannel::Pump() {
  if (shutdown_) return;
  EnsureConnected();
  if (!connected_) return;
  bool queued_bytes = false;
  while (!queue_.empty() && wire_inflight_ < config_.max_inflight) {
    const uint64_t id = queue_.front();
    queue_.pop_front();
    auto it = calls_.find(id);
    // Expired/retried entries leave stale ids in the queue; skip them.
    if (it == calls_.end() || it->second->state != CallState::kQueued) continue;
    PendingCall& call = *it->second;
    uint16_t wire_deadline = 0;
    if (config_.deadline_propagation && call.options.deadline.valid()) {
      const int64_t rem =
          call.options.deadline.RemainingMillis() - config_.deadline_margin_ms;
      if (rem <= 0) {
        auto owned = std::move(it->second);
        calls_.erase(it);
        if (lifecycle_) {
          lifecycle_->deadline_expired.fetch_add(1, std::memory_order_relaxed);
        }
        CompleteCall(std::move(owned),
                     RpcCallResult{RpcStatus::kExpired,
                                   /*transport_error=*/false, {}});
        continue;
      }
      wire_deadline = ClampDeadlineMillis(rem);
    }
    out_ += EncodeRpcRequest(call.id, call.method_id, call.payload,
                             /*flags=*/0, wire_deadline);
    call.state = CallState::kSent;
    ++wire_inflight_;
    if (inflight_gauge_) inflight_gauge_->Add(1);
    queued_bytes = true;
  }
  if (queued_bytes || out_off_ < out_.size()) FlushOut();
}

void RpcChannel::EnsureConnected() {
  if (connected_ || reconnect_scheduled_ || shutdown_) return;
  Socket s;
  try {
    s = Socket::CreateTcp(/*nonblocking=*/false);
    s.Connect(config_.server);
  } catch (const std::exception&) {
    // Dial failed (downstream dead/refusing). Fail or retry everything
    // queued — leaving calls parked across an outage of unknown length
    // would hang deadline-less callers — and back off before re-dialing.
    std::vector<uint64_t> queued(queue_.begin(), queue_.end());
    queue_.clear();
    for (uint64_t id : queued) {
      auto it = calls_.find(id);
      if (it == calls_.end() || it->second->state != CallState::kQueued) {
        continue;
      }
      if (MaybeRetry(*it->second)) continue;
      auto owned = std::move(it->second);
      calls_.erase(it);
      CompleteCall(std::move(owned),
                   RpcCallResult{RpcStatus::kError, /*transport_error=*/true,
                                 {}});
    }
    backoff_ms_ = backoff_ms_ <= 0
                      ? config_.reconnect_base_ms
                      : std::min(backoff_ms_ * 2.0, config_.reconnect_max_ms);
    reconnect_scheduled_ = true;
    loop_->RunAfter(std::chrono::duration_cast<Duration>(
                        std::chrono::duration<double, std::milli>(backoff_ms_)),
                    [this] {
                      reconnect_scheduled_ = false;
                      Pump();
                    });
    return;
  }
  s.SetNonBlocking(true);
  s.SetNoDelay(true);
  fd_ = s.TakeFd();
  connected_ = true;
  if (ever_connected_) {
    reconnects_.fetch_add(1, std::memory_order_relaxed);
    if (lifecycle_) {
      lifecycle_->mesh_channel_reconnects.fetch_add(1,
                                                    std::memory_order_relaxed);
    }
  }
  ever_connected_ = true;
  backoff_ms_ = 0;
  in_.Consume(in_.ReadableBytes());
  parser_.Reset();
  out_.clear();
  out_off_ = 0;
  want_writable_ = false;
  loop_->RegisterFd(fd_.get(), EPOLLIN,
                    [this](uint32_t events) { OnEvent(events); });
}

void RpcChannel::HandleDisconnect(bool /*count_reconnect*/) {
  if (!connected_) return;
  loop_->UnregisterFd(fd_.get());
  fd_.Reset();
  connected_ = false;
  want_writable_ = false;
  out_.clear();
  out_off_ = 0;
  in_.Consume(in_.ReadableBytes());
  parser_.Reset();

  // Every kSent call lost its response with the connection: retry the
  // eligible ones, fail the rest with a transport error.
  std::vector<uint64_t> sent;
  sent.reserve(wire_inflight_);
  for (auto& [id, call] : calls_) {
    if (call->state == CallState::kSent) sent.push_back(id);
  }
  if (inflight_gauge_ && wire_inflight_ > 0) {
    inflight_gauge_->Add(-static_cast<int64_t>(wire_inflight_));
  }
  wire_inflight_ = 0;
  for (uint64_t id : sent) {
    auto it = calls_.find(id);
    if (it == calls_.end()) continue;
    if (MaybeRetry(*it->second)) continue;
    auto owned = std::move(it->second);
    calls_.erase(it);
    CompleteCall(std::move(owned),
                 RpcCallResult{RpcStatus::kError, /*transport_error=*/true,
                               {}});
  }
  // Queued calls survive; the next Pump re-dials.
  if (!shutdown_ && (!queue_.empty() || !calls_.empty())) {
    loop_->QueueTask([this] { Pump(); });
  }
}

void RpcChannel::OnEvent(uint32_t events) {
  if (events & (EPOLLERR | EPOLLHUP)) {
    HandleDisconnect(true);
    return;
  }
  if (events & EPOLLIN) {
    OnReadable();
    if (!connected_) return;
  }
  if ((events & EPOLLOUT) && connected_) {
    FlushOut();
  }
}

void RpcChannel::OnReadable() {
  char buf[16 * 1024];
  while (true) {
    const IoResult r = ReadFd(fd_.get(), buf, sizeof(buf));
    if (r.WouldBlock()) break;
    if (r.Eof() || r.Fatal()) {
      HandleDisconnect(true);
      return;
    }
    in_.Append(buf, static_cast<size_t>(r.n));
    if (static_cast<size_t>(r.n) < sizeof(buf)) break;
  }
  while (true) {
    const ParseStatus st = parser_.Parse(in_);
    if (st == ParseStatus::kNeedMore) break;
    if (st == ParseStatus::kError) {
      HandleDisconnect(true);
      return;
    }
    HandleResponse(std::move(parser_.frame()));
    if (!connected_) return;
  }
}

void RpcChannel::HandleResponse(RpcFrame frame) {
  auto it = calls_.find(frame.header.request_id);
  // Unknown id: the call already completed locally (expiry, shutdown) and
  // this is the late response — drop it.
  if (it == calls_.end() || it->second->state != CallState::kSent) return;
  WireRemoved();

  const auto status = static_cast<RpcStatus>(frame.header.status);
  if (RetryableRpcStatus(status) && MaybeRetry(*it->second)) {
    Pump();
    return;
  }
  auto owned = std::move(it->second);
  calls_.erase(it);
  CompleteCall(std::move(owned),
               RpcCallResult{status, /*transport_error=*/false,
                             std::move(frame.payload)});
  Pump();
}

void RpcChannel::WireRemoved() {
  if (wire_inflight_ > 0) {
    --wire_inflight_;
    if (inflight_gauge_) inflight_gauge_->Add(-1);
  }
}

void RpcChannel::FlushOut() {
  while (out_off_ < out_.size()) {
    const IoResult r =
        WriteFd(fd_.get(), out_.data() + out_off_, out_.size() - out_off_);
    if (r.WouldBlock()) {
      if (!want_writable_) {
        want_writable_ = true;
        loop_->ModifyFd(fd_.get(), EPOLLIN | EPOLLOUT);
      }
      // Keep the unsent suffix; drop the flushed prefix when it dominates.
      if (out_off_ > 64 * 1024 && out_off_ > out_.size() / 2) {
        out_.erase(0, out_off_);
        out_off_ = 0;
      }
      return;
    }
    if (r.Fatal()) {
      HandleDisconnect(true);
      return;
    }
    out_off_ += static_cast<size_t>(r.n);
  }
  out_.clear();
  out_off_ = 0;
  if (want_writable_) {
    want_writable_ = false;
    loop_->ModifyFd(fd_.get(), EPOLLIN);
  }
}

bool RpcChannel::MaybeRetry(PendingCall& call) {
  if (shutdown_ || !retry_) return false;
  const auto delay =
      retry_->NextRetryDelay(call.attempts, call.options.idempotent,
                             /*retry_after_sec=*/0);
  if (!delay) return false;
  if (config_.deadline_propagation && call.options.deadline.valid()) {
    const auto delay_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(*delay).count();
    if (call.options.deadline.RemainingMillis() <=
        delay_ms + config_.deadline_margin_ms) {
      // No budget left for the retry to land in — fail through. The spent
      // token is the cost of deciding late.
      return false;
    }
  }
  ++call.attempts;
  call.state = CallState::kBackoff;
  const uint64_t id = call.id;
  loop_->RunAfter(*delay, [this, id] {
    auto it = calls_.find(id);
    if (it == calls_.end() || it->second->state != CallState::kBackoff) return;
    it->second->state = CallState::kQueued;
    queue_.push_back(id);
    Pump();
  });
  return true;
}

void RpcChannel::CompleteCall(std::unique_ptr<PendingCall> call,
                              RpcCallResult result) {
  if (call->expiry_timer != 0) {
    loop_->CancelTimer(call->expiry_timer);
    call->expiry_timer = 0;
  }
  if (call->breaker_admitted && breaker_) {
    if (DownstreamHealthy(result)) {
      breaker_->OnSuccess();
    } else {
      breaker_->OnFailure();
    }
  }
  if (retry_ && DownstreamHealthy(result)) retry_->OnSuccess();
  if (call->done) call->done(std::move(result));
}

void RpcChannel::ShutdownInLoop() {
  if (shutdown_) return;
  shutdown_ = true;
  if (connected_) {
    loop_->UnregisterFd(fd_.get());
    fd_.Reset();
    connected_ = false;
  }
  queue_.clear();
  if (inflight_gauge_ && wire_inflight_ > 0) {
    inflight_gauge_->Add(-static_cast<int64_t>(wire_inflight_));
  }
  wire_inflight_ = 0;
  auto calls = std::move(calls_);
  calls_.clear();
  for (auto& [id, call] : calls) {
    CompleteCall(std::move(call),
                 RpcCallResult{RpcStatus::kError, /*transport_error=*/true,
                               {}});
  }
}

void RpcChannel::InjectDisconnectForTest() {
  loop_->RunInLoop([this] {
    if (!connected_) return;
    SetFdLingerAbort(fd_.get());
    HandleDisconnect(true);
  });
}

// ---- MeshClient ----

MeshClient::MeshClient(MeshClientConfig config) : config_(config) {
  if (config_.enable_retries) {
    retry_ = std::make_shared<RetryPolicy>(config_.retry, config_.seed);
  }
  if (config_.enable_breaker) {
    breaker_ = std::make_shared<CircuitBreaker>(config_.breaker);
  }
}

MeshClient::~MeshClient() { Stop(); }

void MeshClient::Start() {
  if (started_) return;
  started_ = true;
  const int loops = std::max(1, config_.loops);
  const int per_loop = std::max(1, config_.channels_per_loop);
  RpcChannelConfig chan = config_.channel;
  chan.server = config_.server;
  for (int i = 0; i < loops; ++i) {
    loops_.push_back(std::make_unique<EventLoop>());
    for (int c = 0; c < per_loop; ++c) {
      auto channel = std::make_unique<RpcChannel>(loops_.back().get(), chan);
      if (retry_) channel->SetRetryPolicy(retry_);
      if (breaker_) channel->SetBreaker(breaker_);
      if (lifecycle_) channel->BindLifecycle(lifecycle_);
      if (inflight_gauge_) channel->BindInflightGauge(inflight_gauge_);
      channels_.push_back(std::move(channel));
    }
  }
  for (auto& loop : loops_) {
    threads_.emplace_back([l = loop.get()] { l->Run(); });
  }
}

void MeshClient::Stop() {
  if (!started_) return;
  started_ = false;
  for (size_t i = 0; i < loops_.size(); ++i) {
    EventLoop* loop = loops_[i].get();
    // One task shuts the loop's channels down and stops it, so no call can
    // sneak in between the two. Channels were appended loop-major in
    // Start(), so loop i owns indices [i*per_loop, (i+1)*per_loop).
    std::vector<RpcChannel*> mine;
    const int per_loop = std::max(1, config_.channels_per_loop);
    for (int c = 0; c < per_loop; ++c) {
      const size_t idx = i * static_cast<size_t>(per_loop) + c;
      if (idx < channels_.size()) mine.push_back(channels_[idx].get());
    }
    loop->RunInLoop([loop, mine] {
      for (RpcChannel* ch : mine) ch->ShutdownInLoop();
      loop->Stop();
    });
  }
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
  channels_.clear();
  loops_.clear();
}

void MeshClient::Call(uint16_t method_id, std::string payload,
                      const RpcCallOptions& options, RpcCallback done) {
  const uint64_t n = next_channel_.fetch_add(1, std::memory_order_relaxed);
  channels_[n % channels_.size()]->Call(method_id, std::move(payload), options,
                                        std::move(done));
}

RpcCallResult MeshClient::CallSync(uint16_t method_id, std::string payload,
                                   const RpcCallOptions& options) {
  struct SyncState {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    RpcCallResult result;
  };
  auto state = std::make_shared<SyncState>();
  Call(method_id, std::move(payload), options, [state](RpcCallResult r) {
    std::lock_guard<std::mutex> lock(state->mu);
    state->result = std::move(r);
    state->done = true;
    state->cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&] { return state->done; });
  return std::move(state->result);
}

void MeshClient::BindLifecycle(LifecycleStats* lifecycle) {
  // Channels are created in Start(); remember the binding so it also
  // covers the pre-Start wiring order (WebTier binds in its constructor).
  lifecycle_ = lifecycle;
  if (retry_) retry_->BindLifecycle(lifecycle);
  for (auto& ch : channels_) ch->BindLifecycle(lifecycle);
}

void MeshClient::BindInflightGauge(Gauge* gauge) {
  inflight_gauge_ = gauge;
  for (auto& ch : channels_) ch->BindInflightGauge(gauge);
}

uint64_t MeshClient::Reconnects() const {
  uint64_t total = 0;
  for (const auto& ch : channels_) total += ch->Reconnects();
  return total;
}

}  // namespace hynet
