// ResponseCache: sharded app-tier cache of rendered RPC responses, keyed
// by (method_id, key), holding refcounted shared bodies.
//
// The value is a shared_ptr<const string> — the same object the service
// layer's ResponseWriter::Finish and SerializeRpcResponsePayload reference
// in place. A hit therefore serves N concurrent connections from ONE
// allocation: the cache adds a refcount, the response path adds a
// refcount, and no byte of the body is copied anywhere between the fill
// and the socket (the zero-copy property the tests prove by watching
// use_count).
//
// Three mechanisms keep it honest under load:
//   - TTL: entries expire `ttl_ms` after fill; an expired hit is a miss
//     (and the entry is dropped) — the coherence story is bounded
//     staleness, not invalidation (see DESIGN §14).
//   - per-shard LRU byte budget: each shard evicts least-recently-used
//     entries once its body bytes exceed the budget, so hot keys survive
//     and the cache's footprint is bounded shards × budget.
//   - singleflight: concurrent misses on one key coalesce — the first
//     caller becomes the *lead* (goes to render), the rest park a
//     callback that the lead's Fill flushes with the shared body. A
//     thundering herd on a cold hot key does the downstream work once.
//
// Sharding is by key hash; each shard has its own mutex, so the cache
// scales with the app tier's loop count instead of serializing it.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "proto/rpc_codec.h"
#include "runtime/dispatch_stats.h"

namespace hynet {

struct ResponseCacheConfig {
  size_t shards = 8;
  size_t max_bytes_per_shard = 4 * 1024 * 1024;
  // Entry lifetime; <= 0 disables expiry (entries live until evicted).
  int ttl_ms = 1000;
};

struct CachedResponse {
  RpcStatus status = RpcStatus::kOk;
  std::shared_ptr<const std::string> body;
};

class ResponseCache {
 public:
  enum class Outcome {
    kHit,         // *hit is filled; serve it
    kMissLead,    // caller renders and MUST call Fill (store or not)
    kMissJoined,  // on_fill was parked; the lead's Fill will run it
  };

  // Runs when the lead fills the key this caller joined. Invoked outside
  // the shard lock, on the lead's filling thread.
  using FillFn = std::function<void(CachedResponse)>;

  explicit ResponseCache(ResponseCacheConfig config);

  // Looks up (method_id, key). kHit: `*hit` is set. kMissJoined: `on_fill`
  // was captured. kMissLead: caller owns the render and must Fill() the
  // same (method_id, key) exactly once — even on failure (store=false) —
  // or joined waiters hang.
  Outcome Lookup(uint16_t method_id, std::string_view key, CachedResponse* hit,
                 FillFn on_fill);

  // Completes a kMissLead: flushes joined waiters with `value` and, when
  // `store` is true and the body is non-null, inserts it (LRU front,
  // evicting from the back past the byte budget). store=false publishes a
  // failure to waiters without caching it.
  void Fill(uint16_t method_id, std::string_view key, CachedResponse value,
            bool store);

  void BindLifecycle(LifecycleStats* lifecycle);

  uint64_t Hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t Misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t Evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  uint64_t SingleflightWaits() const {
    return singleflight_waits_.load(std::memory_order_relaxed);
  }
  size_t EntryCount() const;
  size_t TotalBytes() const;

 private:
  struct Entry {
    std::string key;
    CachedResponse value;
    size_t bytes = 0;
    int64_t expires_at_ns = 0;  // 0 = never
  };

  struct Shard {
    mutable std::mutex mu;
    // LRU order: front = most recently used.
    std::list<Entry> lru;
    std::unordered_map<std::string, std::list<Entry>::iterator> index;
    std::unordered_map<std::string, std::vector<FillFn>> pending;
    size_t bytes = 0;
  };

  Shard& ShardFor(const std::string& full_key);
  static std::string FullKey(uint16_t method_id, std::string_view key);

  const ResponseCacheConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> singleflight_waits_{0};
  LifecycleStats* lifecycle_ = nullptr;
};

}  // namespace hynet
