// Blocking multi-producer multi-consumer queue used by worker pools.
//
// Intentionally mutex+condvar based: the paper's context-switch analysis
// depends on handoffs between threads actually descheduling the consumer,
// which is exactly what a condvar wait does. A lock-free queue with a
// spinning consumer would hide the effect being studied.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace hynet {

template <typename T>
class BlockingQueue {
 public:
  BlockingQueue() = default;
  BlockingQueue(const BlockingQueue&) = delete;
  BlockingQueue& operator=(const BlockingQueue&) = delete;

  void Push(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
  }

  // Blocks until an item is available or the queue is closed.
  // Returns nullopt only after Close() once drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  // Non-blocking variant.
  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  size_t Size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  bool Closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace hynet
