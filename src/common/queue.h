// Blocking multi-producer multi-consumer queue used by worker pools.
//
// Intentionally mutex+condvar based: the paper's context-switch analysis
// depends on handoffs between threads actually descheduling the consumer,
// which is exactly what a condvar wait does. A lock-free queue with a
// spinning consumer would hide the effect being studied.
//
// The batched variants (PushBatch / PopBatch) are the dispatch-path
// scalability lever: a producer publishes N items under one lock hold and
// one condvar wake, and a consumer drains up to `max` items per wake, so
// one pair of context switches is amortized over a whole batch. The
// unit-sized Push/Pop pair is left byte-for-byte as it was — that per-event
// handoff IS the effect the baseline sTomcat architectures reproduce.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "metrics/registry.h"

namespace hynet {

template <typename T>
class BlockingQueue {
 public:
  BlockingQueue() = default;
  BlockingQueue(const BlockingQueue&) = delete;
  BlockingQueue& operator=(const BlockingQueue&) = delete;

  void Push(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      items_.push_back(std::move(item));
      UpdateDepthGauge();
    }
    cv_.notify_one();
  }

  // Publishes every item with one lock hold and one consumer wake (the
  // whole point: one handoff for N items). A PopBatch consumer that leaves
  // items behind wakes the next consumer itself, so work conservation does
  // not depend on per-item notifies.
  void PushBatch(std::vector<T> items) {
    if (items.empty()) return;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (T& item : items) items_.push_back(std::move(item));
      UpdateDepthGauge();
    }
    cv_.notify_one();
  }

  // Blocks until an item is available or the queue is closed.
  // Returns nullopt only after Close() once drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    UpdateDepthGauge();
    return item;
  }

  // Blocks until at least one item is available (or the queue is closed),
  // then moves up to `max` items into `out` (cleared first). Returns false
  // only after Close() once fully drained — items pushed before Close are
  // always delivered. If items remain after the pop, one sibling consumer
  // is woken to keep the backlog draining in parallel.
  bool PopBatch(size_t max, std::vector<T>& out) {
    out.clear();
    if (max == 0) max = 1;
    bool more = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return !items_.empty() || closed_; });
      if (items_.empty()) return false;
      const size_t n = std::min(max, items_.size());
      out.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        out.push_back(std::move(items_.front()));
        items_.pop_front();
      }
      UpdateDepthGauge();
      more = !items_.empty();
    }
    if (more) cv_.notify_one();
    return true;
  }

  // Non-blocking variant.
  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    UpdateDepthGauge();
    return item;
  }

  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  size_t Size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  bool Closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  // Mirrors the queue depth into a registry gauge on every push/pop (one
  // relaxed store under the already-held lock). The gauge must outlive the
  // queue — registry-owned gauges do.
  void BindDepthGauge(Gauge* gauge) {
    std::lock_guard<std::mutex> lock(mu_);
    depth_gauge_ = gauge;
    UpdateDepthGauge();
  }

 private:
  // Callers hold mu_.
  void UpdateDepthGauge() {
    if (depth_gauge_) depth_gauge_->Set(static_cast<int64_t>(items_.size()));
  }

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
  Gauge* depth_gauge_ = nullptr;
};

}  // namespace hynet
