#include "common/rng.h"

#include <algorithm>
#include <cmath>

namespace hynet {
namespace {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  // Lemire's multiply-shift rejection method.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t threshold = -bound % bound;
    while (l < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextExponential(double mean) {
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

ZipfGenerator::ZipfGenerator(uint64_t n, double theta) : n_(n), theta_(theta) {
  h_x1_ = H(1.5) - 1.0;
  h_n_ = H(static_cast<double>(n_) + 0.5);
  s_ = 2.0 - HInverse(H(2.5) - std::pow(2.0, -theta_));
}

double ZipfGenerator::H(double x) const {
  if (theta_ == 1.0) return std::log(x);
  return (std::pow(x, 1.0 - theta_) - 1.0) / (1.0 - theta_);
}

double ZipfGenerator::HInverse(double x) const {
  if (theta_ == 1.0) return std::exp(x);
  return std::pow(1.0 + x * (1.0 - theta_), 1.0 / (1.0 - theta_));
}

uint64_t ZipfGenerator::Next(Rng& rng) {
  if (theta_ == 0.0) return rng.NextBounded(n_);
  while (true) {
    const double u = h_n_ + rng.NextDouble() * (h_x1_ - h_n_);
    const double x = HInverse(u);
    const uint64_t k =
        static_cast<uint64_t>(std::clamp(x + 0.5, 1.0,
                                         static_cast<double>(n_)));
    if (static_cast<double>(k) - x <= s_ ||
        u >= H(static_cast<double>(k) + 0.5) - std::pow(static_cast<double>(k),
                                                        -theta_)) {
      return k - 1;  // shift to zero-based
    }
  }
}

}  // namespace hynet
