// Thread helpers: naming, tid caching, calibrated CPU busy-work.
#pragma once

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

namespace hynet {

// Sets the name shown in /proc/<pid>/task/<tid>/comm (max 15 chars).
void SetCurrentThreadName(const std::string& name);

// Linux thread id (gettid), cached per thread.
int CurrentTid();

// Burns approximately `micros` microseconds of CPU in a checksum loop.
// Used to model per-request CPU demand; returns the checksum so the
// compiler cannot elide the work. Calibrated once per process.
uint64_t BurnCpuMicros(double micros);

// Calibrates BurnCpuMicros (idempotent; called lazily on first use).
void CalibrateCpuBurn();

// Number of CPUs this process may run on (affinity-mask aware; falls back
// to the online count, never returns < 1).
int OnlineCpuCount();

// Pins the calling thread to `cpu` modulo the machine size (so callers can
// hand out monotonically increasing ids without counting cores). Negative
// cpu is a no-op. Returns true if the affinity call succeeded.
bool PinThread(int cpu);

// Joins all threads on destruction (Core Guidelines CP.25 gsl::joining_thread
// stand-in for groups of threads).
class ThreadGroup {
 public:
  ThreadGroup() = default;
  ~ThreadGroup() { JoinAll(); }
  ThreadGroup(const ThreadGroup&) = delete;
  ThreadGroup& operator=(const ThreadGroup&) = delete;

  template <typename F>
  void Spawn(F&& f) {
    threads_.emplace_back(std::forward<F>(f));
  }

  void JoinAll() {
    for (auto& t : threads_) {
      if (t.joinable()) t.join();
    }
    threads_.clear();
  }

  size_t Size() const { return threads_.size(); }

 private:
  std::vector<std::thread> threads_;
};

}  // namespace hynet
