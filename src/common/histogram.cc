#include "common/histogram.h"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace hynet {

int Histogram::BucketIndex(int64_t value) {
  if (value < 0) value = 0;
  const uint64_t v = static_cast<uint64_t>(value);
  if (v < kSubBuckets) return static_cast<int>(v);
  // Position of the highest set bit decides the group; the next
  // kSubBucketBits bits pick the sub-bucket within the group.
  const int msb = 63 - std::countl_zero(v);
  const int group = msb - kSubBucketBits + 1;
  const int sub = static_cast<int>((v >> (msb - kSubBucketBits)) &
                                   (kSubBuckets - 1));
  int index = (group << kSubBucketBits) + sub + kSubBuckets;
  return std::min(index, kBucketCount - 1);
}

int64_t Histogram::BucketUpperBound(int index) {
  if (index < kSubBuckets) return index;
  const int adjusted = index - kSubBuckets;
  const int group = adjusted >> kSubBucketBits;
  const int sub = adjusted & (kSubBuckets - 1);
  const int msb = group + kSubBucketBits - 1;
  const int64_t base = int64_t{1} << msb;
  const int64_t step = int64_t{1} << (msb - kSubBucketBits);
  return base + (sub + 1) * step;
}

void Histogram::Record(int64_t value_ns) {
  buckets_[static_cast<size_t>(BucketIndex(value_ns))]++;
  if (count_ == 0 || value_ns < min_) min_ = value_ns;
  if (value_ns > max_) max_ = value_ns;
  sum_ += value_ns;
  count_++;
}

void Histogram::Merge(const Histogram& other) {
  for (size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  if (other.count_ > 0) {
    if (count_ == 0 || other.min_ < min_) min_ = other.min_;
    max_ = std::max(max_, other.max_);
  }
  sum_ += other.sum_;
  count_ += other.count_;
}

void Histogram::Reset() { *this = Histogram{}; }

int64_t Histogram::Percentile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const uint64_t target =
      static_cast<uint64_t>(q * static_cast<double>(count_) + 0.5);
  uint64_t seen = 0;
  for (int i = 0; i < kBucketCount; ++i) {
    seen += buckets_[static_cast<size_t>(i)];
    if (seen >= target) return std::min(BucketUpperBound(i), max_);
  }
  return max_;
}

std::string Histogram::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "p50=%s p95=%s p99=%s max=%s",
                FormatNanos(static_cast<double>(Percentile(0.50))).c_str(),
                FormatNanos(static_cast<double>(Percentile(0.95))).c_str(),
                FormatNanos(static_cast<double>(Percentile(0.99))).c_str(),
                FormatNanos(static_cast<double>(Max())).c_str());
  return buf;
}

std::string FormatNanos(double ns) {
  char buf[48];
  if (ns < 1e3) {
    std::snprintf(buf, sizeof(buf), "%.0fns", ns);
  } else if (ns < 1e6) {
    std::snprintf(buf, sizeof(buf), "%.1fus", ns / 1e3);
  } else if (ns < 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2fms", ns / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", ns / 1e9);
  }
  return buf;
}

}  // namespace hynet
