// Deterministic fast RNG (xoshiro256**) plus distributions used by the
// workload generators: uniform, Zipf (for the request-popularity mix the
// paper cites [22]), and exponential (think times).
#pragma once

#include <cstdint>
#include <vector>

namespace hynet {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  uint64_t Next();

  // Uniform in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

  // Uniform double in [0, 1).
  double NextDouble();

  // Exponentially distributed with the given mean.
  double NextExponential(double mean);

 private:
  uint64_t s_[4];
};

// Zipf-distributed integers over {0, ..., n-1} with exponent `theta`
// (theta = 0 is uniform; theta ~ 0.99 matches web-request popularity).
// Uses the rejection-inversion method of Hörmann; O(1) per sample.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta);

  uint64_t Next(Rng& rng);

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  double H(double x) const;
  double HInverse(double x) const;

  uint64_t n_;
  double theta_;
  double h_x1_;
  double h_n_;
  double s_;
};

}  // namespace hynet
