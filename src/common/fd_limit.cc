#include "common/fd_limit.h"

#include <sys/resource.h>

#include <algorithm>

namespace hynet {

FdLimit QueryFdLimit() {
  struct rlimit rl {};
  if (::getrlimit(RLIMIT_NOFILE, &rl) != 0) return {};
  return {static_cast<uint64_t>(rl.rlim_cur), static_cast<uint64_t>(rl.rlim_max)};
}

FdLimit RaiseFdLimit(uint64_t want) {
  FdLimit cur = QueryFdLimit();
  if (cur.hard == 0) return cur;

  if (want > cur.hard) {
    // Beyond the hard limit: allowed with CAP_SYS_RESOURCE, silently
    // capped by fs.nr_open otherwise (setrlimit just fails and we keep
    // the hard limit we have).
    struct rlimit rl {};
    rl.rlim_cur = want;
    rl.rlim_max = want;
    if (::setrlimit(RLIMIT_NOFILE, &rl) == 0) return QueryFdLimit();
  }

  const uint64_t target = want == 0 ? cur.hard : std::min(want, cur.hard);
  if (target > cur.soft) {
    struct rlimit rl {};
    rl.rlim_cur = target;
    rl.rlim_max = cur.hard;
    (void)::setrlimit(RLIMIT_NOFILE, &rl);
  }
  return QueryFdLimit();
}

std::string FormatFdLimit(const FdLimit& limit) {
  return "soft=" + std::to_string(limit.soft) +
         " hard=" + std::to_string(limit.hard);
}

}  // namespace hynet
