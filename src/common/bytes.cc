#include "common/bytes.h"

// ByteBuffer is header-only today; this translation unit anchors the target
// and provides a place for future out-of-line growth policies.
namespace hynet {
static_assert(ByteBuffer::kInitialCapacity >= 1024,
              "initial capacity must hold a typical request head");
}  // namespace hynet
