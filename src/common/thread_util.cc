#include "common/thread_util.h"

#include <pthread.h>
#include <sched.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <mutex>

namespace hynet {

void SetCurrentThreadName(const std::string& name) {
  ::pthread_setname_np(::pthread_self(), name.substr(0, 15).c_str());
}

int CurrentTid() {
  thread_local int tid = static_cast<int>(::syscall(SYS_gettid));
  return tid;
}

namespace {

// Iterations of the checksum loop per microsecond, set by calibration.
std::atomic<double> g_iters_per_us{0.0};
std::once_flag g_calibrate_once;

uint64_t ChecksumLoop(uint64_t iters) {
  // FNV-style mix; data dependency chain prevents vectorization from
  // collapsing the loop, keeping iteration time stable.
  uint64_t h = 0xcbf29ce484222325ull;
  for (uint64_t i = 0; i < iters; ++i) {
    h ^= i;
    h *= 0x100000001b3ull;
  }
  return h;
}

void DoCalibrate() {
  using Clock = std::chrono::steady_clock;
  // Warm up, then time a fixed batch a few times and keep the fastest
  // (least-preempted) run.
  ChecksumLoop(1 << 18);
  constexpr uint64_t kBatch = 1 << 21;
  double best_ns = 1e18;
  for (int round = 0; round < 5; ++round) {
    auto t0 = Clock::now();
    volatile uint64_t sink = ChecksumLoop(kBatch);
    (void)sink;
    auto t1 = Clock::now();
    double ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
    if (ns > 0 && ns < best_ns) best_ns = ns;
  }
  g_iters_per_us.store(static_cast<double>(kBatch) / (best_ns / 1000.0),
                       std::memory_order_relaxed);
}

}  // namespace

void CalibrateCpuBurn() { std::call_once(g_calibrate_once, DoCalibrate); }

uint64_t BurnCpuMicros(double micros) {
  if (micros <= 0) return 0;
  CalibrateCpuBurn();
  const double iters = micros * g_iters_per_us.load(std::memory_order_relaxed);
  return ChecksumLoop(static_cast<uint64_t>(iters));
}

int OnlineCpuCount() {
  cpu_set_t set;
  CPU_ZERO(&set);
  if (::sched_getaffinity(0, sizeof(set), &set) == 0) {
    int n = CPU_COUNT(&set);
    if (n > 0) return n;
  }
  long n = ::sysconf(_SC_NPROCESSORS_ONLN);
  return n > 0 ? static_cast<int>(n) : 1;
}

bool PinThread(int cpu) {
  if (cpu < 0) return false;
  // Pin onto the cpus the process is actually allowed to use (containers
  // often restrict the mask), wrapping so any monotonically assigned id
  // lands on a real core.
  cpu_set_t allowed;
  CPU_ZERO(&allowed);
  if (::sched_getaffinity(0, sizeof(allowed), &allowed) != 0 ||
      CPU_COUNT(&allowed) == 0) {
    return false;
  }
  int target = cpu % CPU_COUNT(&allowed);
  int seen = 0;
  int chosen = -1;
  for (int i = 0; i < CPU_SETSIZE; ++i) {
    if (!CPU_ISSET(i, &allowed)) continue;
    if (seen++ == target) {
      chosen = i;
      break;
    }
  }
  if (chosen < 0) return false;
  cpu_set_t one;
  CPU_ZERO(&one);
  CPU_SET(chosen, &one);
  return ::pthread_setaffinity_np(::pthread_self(), sizeof(one), &one) == 0;
}

}  // namespace hynet
