#include "common/thread_util.h"

#include <pthread.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <mutex>

namespace hynet {

void SetCurrentThreadName(const std::string& name) {
  ::pthread_setname_np(::pthread_self(), name.substr(0, 15).c_str());
}

int CurrentTid() {
  thread_local int tid = static_cast<int>(::syscall(SYS_gettid));
  return tid;
}

namespace {

// Iterations of the checksum loop per microsecond, set by calibration.
std::atomic<double> g_iters_per_us{0.0};
std::once_flag g_calibrate_once;

uint64_t ChecksumLoop(uint64_t iters) {
  // FNV-style mix; data dependency chain prevents vectorization from
  // collapsing the loop, keeping iteration time stable.
  uint64_t h = 0xcbf29ce484222325ull;
  for (uint64_t i = 0; i < iters; ++i) {
    h ^= i;
    h *= 0x100000001b3ull;
  }
  return h;
}

void DoCalibrate() {
  using Clock = std::chrono::steady_clock;
  // Warm up, then time a fixed batch a few times and keep the fastest
  // (least-preempted) run.
  ChecksumLoop(1 << 18);
  constexpr uint64_t kBatch = 1 << 21;
  double best_ns = 1e18;
  for (int round = 0; round < 5; ++round) {
    auto t0 = Clock::now();
    volatile uint64_t sink = ChecksumLoop(kBatch);
    (void)sink;
    auto t1 = Clock::now();
    double ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
    if (ns > 0 && ns < best_ns) best_ns = ns;
  }
  g_iters_per_us.store(static_cast<double>(kBatch) / (best_ns / 1000.0),
                       std::memory_order_relaxed);
}

}  // namespace

void CalibrateCpuBurn() { std::call_once(g_calibrate_once, DoCalibrate); }

uint64_t BurnCpuMicros(double micros) {
  if (micros <= 0) return 0;
  CalibrateCpuBurn();
  const double iters = micros * g_iters_per_us.load(std::memory_order_relaxed);
  return ChecksumLoop(static_cast<uint64_t>(iters));
}

}  // namespace hynet
