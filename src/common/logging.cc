#include "common/logging.h"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <mutex>

namespace hynet {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::once_flag g_env_once;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo:  return "INFO ";
    case LogLevel::kWarn:  return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff:   return "OFF  ";
  }
  return "?????";
}

void InitFromEnv() {
  if (const char* env = std::getenv("HYNET_LOG_LEVEL")) {
    g_level.store(ParseLogLevel(env), std::memory_order_relaxed);
  }
}

}  // namespace

LogLevel CurrentLogLevel() {
  std::call_once(g_env_once, InitFromEnv);
  return g_level.load(std::memory_order_relaxed);
}

void SetLogLevel(LogLevel level) {
  std::call_once(g_env_once, InitFromEnv);
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel ParseLogLevel(std::string_view name) {
  auto eq = [&](const char* s) {
    return name.size() == std::strlen(s) &&
           std::equal(name.begin(), name.end(), s,
                      [](char a, char b) { return std::toupper(a) == b; });
  };
  if (eq("TRACE")) return LogLevel::kTrace;
  if (eq("DEBUG")) return LogLevel::kDebug;
  if (eq("INFO")) return LogLevel::kInfo;
  if (eq("WARN")) return LogLevel::kWarn;
  if (eq("ERROR")) return LogLevel::kError;
  if (eq("OFF")) return LogLevel::kOff;
  return LogLevel::kWarn;
}

namespace detail {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = std::strrchr(file, '/');
  base = base ? base + 1 : file;
  stream_ << "[" << LevelName(level_) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  // One write() call keeps concurrent log lines from interleaving.
  const std::string s = stream_.str();
  (void)!::write(STDERR_FILENO, s.data(), s.size());
}

}  // namespace detail
}  // namespace hynet
