#include "common/deadline.h"

#include <cstdlib>

#include "proto/http_message.h"

namespace hynet {

namespace {

thread_local Deadline g_current_deadline;

// Nanoseconds-since-epoch stamps; 0 = unset. Two separate slots so an
// explicit dispatch stamp (set per task) wins over the coarser loop tick.
thread_local int64_t g_dispatch_start_ns = 0;
thread_local int64_t g_loop_tick_ns = 0;

int64_t ToNs(TimePoint t) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             t.time_since_epoch())
      .count();
}

TimePoint FromNs(int64_t ns) {
  return TimePoint(std::chrono::duration_cast<Duration>(
      std::chrono::nanoseconds(ns)));
}

}  // namespace

namespace {

// Local case-insensitive header lookup: hynet_common sits below
// hynet_proto, so this file cannot link HttpRequest::Header().
bool HeaderNameEquals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    const char ca = a[i] >= 'A' && a[i] <= 'Z' ? a[i] + ('a' - 'A') : a[i];
    const char cb = b[i] >= 'A' && b[i] <= 'Z' ? b[i] + ('a' - 'A') : b[i];
    if (ca != cb) return false;
  }
  return true;
}

}  // namespace

Deadline DeadlineFromRequest(const HttpRequest& req, TimePoint arrival) {
  for (const auto& [key, value] : req.headers) {
    if (!HeaderNameEquals(key, kDeadlineHeader)) continue;
    char* end = nullptr;
    const long long ms = std::strtoll(value.c_str(), &end, 10);
    if (end == value.c_str() || ms < 0) return {};  // malformed: no budget
    return Deadline::FromMillis(ms, arrival);
  }
  return {};
}

ScopedRequestDeadline::ScopedRequestDeadline(Deadline d)
    : prev_(g_current_deadline) {
  g_current_deadline = d;
}

ScopedRequestDeadline::~ScopedRequestDeadline() {
  g_current_deadline = prev_;
}

Deadline CurrentRequestDeadline() { return g_current_deadline; }

ScopedDispatchStart::ScopedDispatchStart(TimePoint enqueued_at)
    : prev_ns_(g_dispatch_start_ns) {
  g_dispatch_start_ns = ToNs(enqueued_at);
}

ScopedDispatchStart::~ScopedDispatchStart() {
  g_dispatch_start_ns = prev_ns_;
}

void MarkLoopTickStart(TimePoint t) { g_loop_tick_ns = ToNs(t); }

TimePoint EffectiveRequestStart(TimePoint now) {
  if (g_dispatch_start_ns != 0) return FromNs(g_dispatch_start_ns);
  if (g_loop_tick_ns != 0) {
    const TimePoint tick = FromNs(g_loop_tick_ns);
    return tick < now ? tick : now;
  }
  return now;
}

}  // namespace hynet
