// Monotonic time helpers used across the library.
#pragma once

#include <chrono>
#include <cstdint>

namespace hynet {

using MonoClock = std::chrono::steady_clock;
using TimePoint = MonoClock::time_point;
using Duration = MonoClock::duration;

inline TimePoint Now() { return MonoClock::now(); }

inline int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             Now().time_since_epoch())
      .count();
}

inline int64_t NowMicros() { return NowNanos() / 1000; }

inline double ToSeconds(Duration d) {
  return std::chrono::duration<double>(d).count();
}

}  // namespace hynet
