// RLIMIT_NOFILE probing and raising, for the connection-scale path.
//
// A server sized for 100k connections needs 100k+ descriptors, but the
// usual soft limit is 1024. Binaries that own their process (hynet_serve,
// the load generator, the benches) raise the soft limit to the hard limit
// at startup — and, when running with CAP_SYS_RESOURCE (root), push the
// hard limit toward /proc/sys/fs/nr_open too. The server factory then
// validates ServerConfig::max_connections against the effective limit so
// an under-provisioned deployment fails fast at startup instead of
// dying on EMFILE mid-ramp.
#pragma once

#include <cstdint>
#include <string>

namespace hynet {

struct FdLimit {
  uint64_t soft = 0;
  uint64_t hard = 0;
};

// Current RLIMIT_NOFILE. Never fails (returns zeros on getrlimit error).
FdLimit QueryFdLimit();

// Raises the soft limit to min(hard, want) — or all the way to the hard
// limit when want == 0. If want exceeds the hard limit, additionally
// attempts to raise the hard limit (works with CAP_SYS_RESOURCE, capped
// by the kernel's fs.nr_open). Best-effort: returns the limits actually
// in effect afterwards, never throws.
FdLimit RaiseFdLimit(uint64_t want = 0);

// "soft=N hard=M" for startup logging.
std::string FormatFdLimit(const FdLimit& limit);

// Descriptors a server deployment needs beyond its connection sockets:
// listeners, eventfds, timers, admin plane, epoll/uring fds, and slack
// for accept bursts racing the sweep.
inline constexpr uint64_t kFdSlack = 128;

}  // namespace hynet
