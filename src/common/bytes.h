// ByteBuffer: a growable byte buffer with separate read/write cursors,
// modeled after the buffers used by network frameworks (muduo, Netty).
//
// Layout:   [ consumed | readable (ReadableBytes) | writable ]
//            ^begin     ^read_index_               ^write_index_
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace hynet {

class ByteBuffer {
 public:
  static constexpr size_t kInitialCapacity = 4096;

  explicit ByteBuffer(size_t initial_capacity = kInitialCapacity)
      : storage_(initial_capacity) {}

  size_t ReadableBytes() const { return write_index_ - read_index_; }
  size_t WritableBytes() const { return storage_.size() - write_index_; }
  bool Empty() const { return ReadableBytes() == 0; }

  const char* ReadPtr() const { return storage_.data() + read_index_; }
  char* WritePtr() { return storage_.data() + write_index_; }

  std::string_view View() const {
    return std::string_view(ReadPtr(), ReadableBytes());
  }

  // Appends `len` bytes from `data`, growing if needed.
  void Append(const void* data, size_t len) {
    EnsureWritable(len);
    std::memcpy(WritePtr(), data, len);
    write_index_ += len;
  }
  void Append(std::string_view sv) { Append(sv.data(), sv.size()); }

  // Marks `len` bytes as written (after an external write into WritePtr()).
  void Produced(size_t len) { write_index_ += len; }

  // Consumes `len` readable bytes.
  void Consume(size_t len) {
    read_index_ += len;
    if (read_index_ == write_index_) {
      read_index_ = write_index_ = 0;
    }
  }
  void ConsumeAll() { read_index_ = write_index_ = 0; }

  // Ensures at least `len` contiguous writable bytes, compacting or growing.
  // Growth doubles (geometric) so N appends cost O(N) copies total rather
  // than the O(N^2) of exact-fit resizing.
  void EnsureWritable(size_t len) {
    if (WritableBytes() >= len) return;
    if (WritableBytes() + read_index_ >= len) {
      Compact();
      return;
    }
    storage_.resize(std::max(2 * storage_.size(), write_index_ + len));
  }

  // Moves readable bytes to the front, reclaiming consumed space.
  void Compact() {
    if (read_index_ == 0) return;
    size_t readable = ReadableBytes();
    std::memmove(storage_.data(), ReadPtr(), readable);
    read_index_ = 0;
    write_index_ = readable;
  }

  // Releases excess capacity back to the allocator, keeping the readable
  // bytes and at least kInitialCapacity. Called when a connection goes
  // idle (or returns to a BufferPool) so one burst of large requests does
  // not pin large buffers forever.
  void ShrinkToFit() {
    Compact();
    const size_t want = std::max(ReadableBytes(), kInitialCapacity);
    if (storage_.size() <= want) return;
    storage_.resize(want);
    storage_.shrink_to_fit();
  }

  std::string ToString() const { return std::string(View()); }

  size_t Capacity() const { return storage_.size(); }

 private:
  std::vector<char> storage_;
  size_t read_index_ = 0;
  size_t write_index_ = 0;
};

}  // namespace hynet
