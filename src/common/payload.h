// Payload: an immutable, reference-counted outbound message.
//
// The zero-copy unit of the outbound path. A response on the wire is at
// most three segments, each written in place with writev() instead of
// being concatenated into one heap buffer:
//
//   [ head | body | tail ]
//     head — the serialized status line + headers, owned by this Payload
//            (small, built fresh per response);
//     body — an immutable shared body (std::shared_ptr<const std::string>),
//            so N connections answering the same request type share one
//            allocation instead of copying ~100 KB per response;
//     tail — per-response dynamic bytes (moved in, never copied).
//
// A Payload is cheap to move and cheap to copy (the copy shares the body
// and duplicates only the small head/tail strings); once constructed its
// bytes never change, so any number of OutboundBuffer nodes may reference
// the same body concurrently from different event loops.
#pragma once

#include <sys/uio.h>

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <utility>

namespace hynet {

class Payload {
 public:
  // Each Payload contributes at most this many iovec segments.
  static constexpr size_t kMaxSegments = 3;

  Payload() = default;

  // Fully materialized wire bytes (error responses, already-encoded
  // messages handed down a pipeline).
  static Payload FromString(std::string bytes) {
    Payload p;
    p.head_ = std::move(bytes);
    return p;
  }

  Payload(std::string head, std::shared_ptr<const std::string> body,
          std::string tail = {})
      : head_(std::move(head)),
        body_(std::move(body)),
        tail_(std::move(tail)) {}

  size_t size() const {
    return head_.size() + (body_ ? body_->size() : 0) + tail_.size();
  }
  bool empty() const { return size() == 0; }

  std::string_view head() const { return head_; }
  std::string_view body() const {
    return body_ ? std::string_view(*body_) : std::string_view();
  }
  std::string_view tail() const { return tail_; }
  const std::shared_ptr<const std::string>& shared_body() const {
    return body_;
  }

  // Fills `iov` with the segments remaining past `offset` bytes into the
  // payload (an offset may land mid-segment; the first iovec then starts
  // inside that segment). Returns the number of entries written, at most
  // min(max_iov, kMaxSegments). An exhausted payload yields 0.
  size_t FillIov(size_t offset, struct iovec* iov, size_t max_iov) const;

  // Materializes the whole payload (tests, slow paths).
  std::string Flatten() const;

 private:
  std::string head_;
  std::shared_ptr<const std::string> body_;
  std::string tail_;
};

}  // namespace hynet
