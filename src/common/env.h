// Typed access to environment-variable configuration knobs.
#pragma once

#include <string>

namespace hynet {

// Returns the env var as the requested type, or `fallback` if unset/invalid.
std::string EnvString(const char* name, const std::string& fallback);
int64_t EnvInt(const char* name, int64_t fallback);
double EnvDouble(const char* name, double fallback);
bool EnvBool(const char* name, bool fallback);

}  // namespace hynet
