#include "common/env.h"

#include <cstdlib>
#include <cstring>

namespace hynet {

std::string EnvString(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return v ? std::string(v) : fallback;
}

int64_t EnvInt(const char* name, int64_t fallback) {
  const char* v = std::getenv(name);
  if (!v || !*v) return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(v, &end, 10);
  return (end && *end == '\0') ? parsed : fallback;
}

double EnvDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (!v || !*v) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  return (end && *end == '\0') ? parsed : fallback;
}

bool EnvBool(const char* name, bool fallback) {
  const char* v = std::getenv(name);
  if (!v || !*v) return fallback;
  return std::strcmp(v, "0") != 0 && ::strcasecmp(v, "false") != 0 &&
         ::strcasecmp(v, "off") != 0;
}

}  // namespace hynet
