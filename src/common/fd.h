// ScopedFd: RAII ownership of a POSIX file descriptor.
#pragma once

#include <unistd.h>

#include <utility>

namespace hynet {

// Owns a file descriptor and closes it on destruction. Move-only.
class ScopedFd {
 public:
  ScopedFd() = default;
  explicit ScopedFd(int fd) : fd_(fd) {}
  ~ScopedFd() { Reset(); }

  ScopedFd(const ScopedFd&) = delete;
  ScopedFd& operator=(const ScopedFd&) = delete;

  ScopedFd(ScopedFd&& other) noexcept : fd_(other.Release()) {}
  ScopedFd& operator=(ScopedFd&& other) noexcept {
    if (this != &other) {
      Reset(other.Release());
    }
    return *this;
  }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  explicit operator bool() const { return valid(); }

  // Relinquishes ownership without closing.
  int Release() { return std::exchange(fd_, -1); }

  // Closes the current fd (if any) and adopts `fd`.
  void Reset(int fd = -1) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = fd;
  }

 private:
  int fd_ = -1;
};

}  // namespace hynet
