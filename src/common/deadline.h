// Per-request deadlines and the request-timing thread-locals that carry
// them across the dispatch path.
//
// A request enters the system with a relative budget (the
// `X-Hynet-Deadline-Ms` header); the admission wrapper converts it into an
// absolute Deadline anchored at the request's arrival, every stage checks
// the remaining budget before doing work, and inter-tier clients forward
// the *decremented* budget downstream. The deadline travels with the
// handler thread via a scoped thread-local, so blocking downstream clients
// (rubbos db_client) can read it without threading it through every
// signature.
#pragma once

#include <cstdint>
#include <string>

#include "common/clock.h"

namespace hynet {

struct HttpRequest;

// The request header carrying the remaining budget, in milliseconds.
inline constexpr const char* kDeadlineHeader = "X-Hynet-Deadline-Ms";

class Deadline {
 public:
  Deadline() = default;

  // Absolute deadline `budget_ms` from `anchor` (defaults to now).
  static Deadline FromMillis(int64_t budget_ms) {
    return FromMillis(budget_ms, Now());
  }
  static Deadline FromMillis(int64_t budget_ms, TimePoint anchor) {
    Deadline d;
    d.valid_ = true;
    d.at_ = anchor + std::chrono::milliseconds(budget_ms);
    return d;
  }

  bool valid() const { return valid_; }
  TimePoint at() const { return at_; }

  bool Expired() const { return valid_ && Now() >= at_; }

  // Remaining budget in milliseconds, clamped at zero (what gets forwarded
  // downstream). 0 on an invalid deadline.
  int64_t RemainingMillis() const {
    if (!valid_) return 0;
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        at_ - Now());
    return left.count() > 0 ? left.count() : 0;
  }

 private:
  bool valid_ = false;
  TimePoint at_{};
};

// Parses the deadline header of `req` into an absolute Deadline anchored at
// `arrival`. Returns an invalid Deadline when the header is absent or
// malformed (= no budget, the request never expires).
Deadline DeadlineFromRequest(const HttpRequest& req, TimePoint arrival);

// ---- The current request's deadline (thread-local) ----
//
// The Server admission wrapper scopes the parsed deadline around the
// handler invocation; anything the handler calls on the same thread
// (rubbos db_client, nested helpers) reads it via CurrentRequestDeadline.
class ScopedRequestDeadline {
 public:
  explicit ScopedRequestDeadline(Deadline d);
  ~ScopedRequestDeadline();
  ScopedRequestDeadline(const ScopedRequestDeadline&) = delete;
  ScopedRequestDeadline& operator=(const ScopedRequestDeadline&) = delete;

 private:
  Deadline prev_;
};

// The deadline installed by the innermost ScopedRequestDeadline on this
// thread; invalid when none is active.
Deadline CurrentRequestDeadline();

// ---- Request arrival / queue-sojourn plumbing (thread-locals) ----
//
// Queue-delay shedding needs to know how long a request waited between the
// moment it was ready and the moment its handler ran. The wait happens at
// different places per architecture:
//   - reactor/staged pools: condvar queue wait — the dispatch point stamps
//     the enqueue time and the dequeuing worker installs it via
//     ScopedDispatchStart before running the stage;
//   - run-to-completion loops: dispatch lag inside one epoll batch —
//     EventLoop stamps the iteration start (MarkLoopTickStart) and every
//     handler invoked later in the same iteration observes the lag;
//   - thread-per-connection: a dedicated thread, no queue — sojourn is 0
//     (admission control there is max_connections, not queue delay).
// EffectiveRequestStart prefers the explicit dispatch stamp, then the loop
// tick, then "now" (zero sojourn).

// RAII install of an explicit enqueue timestamp on the executing thread.
class ScopedDispatchStart {
 public:
  explicit ScopedDispatchStart(TimePoint enqueued_at);
  ~ScopedDispatchStart();
  ScopedDispatchStart(const ScopedDispatchStart&) = delete;
  ScopedDispatchStart& operator=(const ScopedDispatchStart&) = delete;

 private:
  int64_t prev_ns_;
};

// Called by EventLoop::Run once per iteration, right after the wait
// returns. One steady-clock read per wakeup; events dispatched later in
// the same batch accumulate visible lag.
void MarkLoopTickStart(TimePoint t);

// When this thread is inside neither a dispatch stamp nor a loop tick,
// returns `now` (zero sojourn).
TimePoint EffectiveRequestStart(TimePoint now);

}  // namespace hynet
