// Log-bucketed latency histogram (HdrHistogram-style, fixed memory).
//
// Values are recorded in nanoseconds; buckets grow geometrically so that
// relative error stays below ~3%. Thread-compatible (callers synchronize);
// Merge() supports per-thread histograms aggregated at report time.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace hynet {

class Histogram {
 public:
  static constexpr int kSubBucketBits = 5;                 // 32 sub-buckets
  static constexpr int kSubBuckets = 1 << kSubBucketBits;
  static constexpr int kBucketGroups = 40;                 // covers ~2^45 ns
  static constexpr int kBucketCount = kBucketGroups * kSubBuckets;

  void Record(int64_t value_ns);
  void Merge(const Histogram& other);
  void Reset();

  uint64_t Count() const { return count_; }
  int64_t Min() const { return count_ ? min_ : 0; }
  int64_t Max() const { return max_; }
  double Mean() const {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_)
                  : 0.0;
  }

  // Returns the upper bound of the bucket containing quantile q in [0, 1].
  int64_t Percentile(double q) const;

  // "p50=1.2ms p95=3.4ms p99=5.6ms max=7.8ms" style summary.
  std::string Summary() const;

  // Bucket geometry, shared with metrics/registry.h's lock-free
  // HistogramMetric so both report identical quantiles.
  static int BucketIndex(int64_t value);
  static int64_t BucketUpperBound(int index);

 private:
  std::array<uint64_t, kBucketCount> buckets_{};
  uint64_t count_ = 0;
  int64_t sum_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
};

// Formats a nanosecond duration with an adaptive unit, e.g. "1.24ms".
std::string FormatNanos(double ns);

}  // namespace hynet
