#include "common/payload.h"

namespace hynet {

size_t Payload::FillIov(size_t offset, struct iovec* iov,
                        size_t max_iov) const {
  const std::string_view segments[kMaxSegments] = {head(), body(), tail()};
  size_t n = 0;
  for (const std::string_view seg : segments) {
    if (n >= max_iov) break;
    if (offset >= seg.size()) {
      offset -= seg.size();
      continue;
    }
    // const_cast: iovec's iov_base is non-const by POSIX signature; the
    // kernel only reads from it on the write side.
    iov[n].iov_base = const_cast<char*>(seg.data() + offset);
    iov[n].iov_len = seg.size() - offset;
    offset = 0;
    ++n;
  }
  return n;
}

std::string Payload::Flatten() const {
  std::string out;
  out.reserve(size());
  out.append(head_);
  if (body_) out.append(*body_);
  out.append(tail_);
  return out;
}

}  // namespace hynet
