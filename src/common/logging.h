// Minimal leveled logger. Thread-safe, writes to stderr.
//
// Usage:  HYNET_LOG(INFO) << "server listening on " << port;
// Level is controlled by SetLogLevel() or the HYNET_LOG_LEVEL env var
// (TRACE|DEBUG|INFO|WARN|ERROR|OFF).
#pragma once

#include <sstream>
#include <string_view>

namespace hynet {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

LogLevel CurrentLogLevel();
void SetLogLevel(LogLevel level);
LogLevel ParseLogLevel(std::string_view name);

namespace detail {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace hynet

#define HYNET_LOG_LEVEL_TRACE ::hynet::LogLevel::kTrace
#define HYNET_LOG_LEVEL_DEBUG ::hynet::LogLevel::kDebug
#define HYNET_LOG_LEVEL_INFO ::hynet::LogLevel::kInfo
#define HYNET_LOG_LEVEL_WARN ::hynet::LogLevel::kWarn
#define HYNET_LOG_LEVEL_ERROR ::hynet::LogLevel::kError

#define HYNET_LOG(severity)                                            \
  if (HYNET_LOG_LEVEL_##severity < ::hynet::CurrentLogLevel()) {       \
  } else                                                               \
    ::hynet::detail::LogMessage(HYNET_LOG_LEVEL_##severity, __FILE__,  \
                                __LINE__)                              \
        .stream()
