// Incremental HTTP parsers. Both parsers consume bytes from a ByteBuffer
// and tolerate arbitrary fragmentation (one byte at a time works), which is
// what the non-blocking read paths deliver.
#pragma once

#include <cstddef>

#include "common/bytes.h"
#include "proto/http_message.h"

namespace hynet {

enum class ParseStatus {
  kNeedMore,   // incomplete; feed more bytes
  kComplete,   // one full message parsed and consumed from the buffer
  kError,      // malformed input; connection should be closed
};

class HttpRequestParser {
 public:
  // Attempts to parse one request from `in`. On kComplete the request's
  // bytes have been consumed from `in` and request() is valid until the
  // next Parse()/Reset().
  ParseStatus Parse(ByteBuffer& in);

  const HttpRequest& request() const { return request_; }
  HttpRequest& request() { return request_; }

  void Reset();

 private:
  enum class State { kHead, kBody };

  ParseStatus ParseHead(ByteBuffer& in);

  HttpRequest request_;
  State state_ = State::kHead;
  size_t body_remaining_ = 0;
  size_t scanned_ = 0;  // bytes already scanned for the head terminator
};

class HttpResponseParser {
 public:
  ParseStatus Parse(ByteBuffer& in);

  const HttpResponse& response() const { return response_; }

  void Reset();

 private:
  enum class State { kHead, kBody };

  ParseStatus ParseHead(ByteBuffer& in);

  HttpResponse response_;
  State state_ = State::kHead;
  size_t body_remaining_ = 0;
  size_t scanned_ = 0;
};

}  // namespace hynet
