// Incremental HTTP parsers. Both parsers consume bytes from a ByteBuffer
// and tolerate arbitrary fragmentation (one byte at a time works), which is
// what the non-blocking read paths deliver.
#pragma once

#include <cstddef>

#include "common/bytes.h"
#include "proto/http_message.h"

namespace hynet {

enum class ParseStatus {
  kNeedMore,   // incomplete; feed more bytes
  kComplete,   // one full message parsed and consumed from the buffer
  kError,      // malformed input; connection should be closed
};

// Why a request parse failed, so the server can pick a status code
// (431 for an oversize head, 413 for an oversize body) before closing.
// Malformed input gets no response at all — only size-limit violations do.
enum class ParseError {
  kNone,
  kMalformed,
  kHeadTooLarge,
  kBodyTooLarge,
};

class HttpRequestParser {
 public:
  // Attempts to parse one request from `in`. On kComplete the request's
  // bytes have been consumed from `in` and request() is valid until the
  // next Parse()/Reset().
  ParseStatus Parse(ByteBuffer& in);

  const HttpRequest& request() const { return request_; }
  HttpRequest& request() { return request_; }

  // Request size bounds (0 = unlimited). A head larger than max_head_bytes
  // without a terminator, or a Content-Length above max_body_bytes, parses
  // to kError with the matching error().
  void SetLimits(size_t max_head_bytes, size_t max_body_bytes) {
    max_head_bytes_ = max_head_bytes;
    max_body_bytes_ = max_body_bytes;
  }

  // Valid after Parse() returned kError.
  ParseError error() const { return error_; }

  // True while a request is partially parsed (mid-head or mid-body); used
  // by graceful drain to tell idle connections from in-flight ones and by
  // the header-timeout sweep.
  bool InProgress() const { return state_ == State::kBody || scanned_ > 0; }

  // Heap bytes the scratch request retains between messages (string and
  // vector capacities survive Clear() for reuse); the ConnTable charges
  // this as codec state.
  size_t ScratchBytes() const { return request_.HeapBytes(); }
  // Drops that retained capacity (idle-cold reclamation). Only meaningful
  // between messages; a mid-parse call would discard partial state, so
  // callers must check !InProgress().
  void ShrinkScratch() {
    if (!InProgress()) request_.ShrinkToFit();
  }

  void Reset();

 private:
  enum class State { kHead, kBody };

  ParseStatus ParseHead(ByteBuffer& in);

  HttpRequest request_;
  State state_ = State::kHead;
  size_t body_remaining_ = 0;
  size_t scanned_ = 0;  // bytes already scanned for the head terminator
  size_t max_head_bytes_ = 64 * 1024;  // the seed's historical cap
  size_t max_body_bytes_ = 0;
  ParseError error_ = ParseError::kNone;
};

class HttpResponseParser {
 public:
  ParseStatus Parse(ByteBuffer& in);

  const HttpResponse& response() const { return response_; }

  void Reset();

 private:
  enum class State { kHead, kBody };

  ParseStatus ParseHead(ByteBuffer& in);

  HttpResponse response_;
  State state_ = State::kHead;
  size_t body_remaining_ = 0;
  size_t scanned_ = 0;
};

}  // namespace hynet
