#include "proto/http_codec.h"

#include <cstdio>

namespace hynet {
namespace {

void AppendInt(ByteBuffer& out, size_t v) {
  char buf[24];
  const int n = std::snprintf(buf, sizeof(buf), "%zu", v);
  out.Append(buf, static_cast<size_t>(n));
}

}  // namespace

void SerializeResponse(const HttpResponse& resp, ByteBuffer& out) {
  out.Append("HTTP/1.1 ");
  char status[16];
  const int n =
      std::snprintf(status, sizeof(status), "%d ", resp.status);
  out.Append(status, static_cast<size_t>(n));
  out.Append(resp.reason);
  out.Append("\r\n");
  for (const auto& [k, v] : resp.headers) {
    out.Append(k);
    out.Append(": ");
    out.Append(v);
    out.Append("\r\n");
  }
  if (!resp.pushed.empty()) {
    // HTTP/2-style push on the HTTP/1.1 wire: declare the parts so the
    // client can split the payload train.
    out.Append("X-Push-Parts: ");
    AppendInt(out, resp.pushed.size());
    out.Append("\r\n");
    out.Append("X-Push-Sizes: ");
    for (size_t i = 0; i < resp.pushed.size(); ++i) {
      if (i) out.Append(",");
      AppendInt(out, resp.pushed[i].size());
    }
    out.Append("\r\n");
  }
  out.Append("Content-Length: ");
  AppendInt(out, resp.PayloadBytes());
  out.Append("\r\n");
  out.Append(resp.keep_alive ? "Connection: keep-alive\r\n"
                             : "Connection: close\r\n");
  out.Append("\r\n");
  out.Append(resp.body);
  for (const auto& part : resp.pushed) out.Append(part);
}

void SerializeRequest(const HttpRequest& req, ByteBuffer& out) {
  out.Append(req.method.empty() ? "GET" : req.method);
  out.Append(" ");
  out.Append(req.target);
  out.Append(" HTTP/1.1\r\n");
  for (const auto& [k, v] : req.headers) {
    out.Append(k);
    out.Append(": ");
    out.Append(v);
    out.Append("\r\n");
  }
  if (!req.body.empty()) {
    out.Append("Content-Length: ");
    AppendInt(out, req.body.size());
    out.Append("\r\n");
  }
  if (!req.keep_alive) out.Append("Connection: close\r\n");
  out.Append("\r\n");
  out.Append(req.body);
}

std::string SimpleErrorResponse(int status) {
  const char* reason = "Error";
  switch (status) {
    case 408: reason = "Request Timeout"; break;
    case 413: reason = "Payload Too Large"; break;
    case 431: reason = "Request Header Fields Too Large"; break;
    case 503: reason = "Service Unavailable"; break;
    default: break;
  }
  HttpResponse resp;
  resp.status = status;
  resp.reason = reason;
  resp.keep_alive = false;
  resp.body = std::string(reason) + "\n";
  ByteBuffer out;
  SerializeResponse(resp, out);
  return std::string(out.View());
}

std::string BuildGetRequest(std::string_view target, bool keep_alive) {
  std::string out;
  out.reserve(64 + target.size());
  out.append("GET ");
  out.append(target);
  out.append(" HTTP/1.1\r\n");
  if (!keep_alive) out.append("Connection: close\r\n");
  out.append("\r\n");
  return out;
}

}  // namespace hynet
