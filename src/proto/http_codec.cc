#include "proto/http_codec.h"

#include <cstdio>

namespace hynet {
namespace {

void AppendInt(ByteBuffer& out, size_t v) {
  char buf[24];
  const int n = std::snprintf(buf, sizeof(buf), "%zu", v);
  out.Append(buf, static_cast<size_t>(n));
}

void AppendInt(std::string& out, size_t v) {
  char buf[24];
  const int n = std::snprintf(buf, sizeof(buf), "%zu", v);
  out.append(buf, static_cast<size_t>(n));
}

// Builds the status line + headers block (through the terminating CRLF).
std::string BuildHead(const HttpResponse& resp) {
  std::string head;
  head.reserve(128);
  head.append("HTTP/1.1 ");
  char status[16];
  const int n = std::snprintf(status, sizeof(status), "%d ", resp.status);
  head.append(status, static_cast<size_t>(n));
  head.append(resp.reason);
  head.append("\r\n");
  for (const auto& [k, v] : resp.headers) {
    head.append(k);
    head.append(": ");
    head.append(v);
    head.append("\r\n");
  }
  if (!resp.pushed.empty()) {
    // HTTP/2-style push on the HTTP/1.1 wire: declare the parts so the
    // client can split the payload train.
    head.append("X-Push-Parts: ");
    AppendInt(head, resp.pushed.size());
    head.append("\r\n");
    head.append("X-Push-Sizes: ");
    for (size_t i = 0; i < resp.pushed.size(); ++i) {
      if (i) head.append(",");
      AppendInt(head, resp.pushed[i].size());
    }
    head.append("\r\n");
  }
  head.append("Content-Length: ");
  AppendInt(head, resp.PayloadBytes());
  head.append("\r\n");
  head.append(resp.keep_alive ? "Connection: keep-alive\r\n"
                              : "Connection: close\r\n");
  head.append("\r\n");
  return head;
}

// Dynamic suffixes at or below this size are folded into the head string:
// a memcpy of a few hundred bytes beats an extra iovec per syscall.
constexpr size_t kInlineTailLimit = 256;

}  // namespace

void SerializeResponse(const HttpResponse& resp, ByteBuffer& out) {
  out.Append(BuildHead(resp));
  if (resp.shared_body) out.Append(*resp.shared_body);
  out.Append(resp.body);
  for (const auto& part : resp.pushed) out.Append(part);
}

Payload SerializeResponsePayload(HttpResponse& resp) {
  std::string head = BuildHead(resp);
  // Wire order is shared_body then body then pushed (matching
  // SerializeResponse); with a shared segment in the middle the dynamic
  // suffix rides as the tail, otherwise it can fold into the head.
  std::string tail = std::move(resp.body);
  resp.body.clear();
  for (std::string& part : resp.pushed) {
    if (tail.empty()) {
      tail = std::move(part);
    } else {
      tail.append(part);
    }
  }
  resp.pushed.clear();
  if (!resp.shared_body && tail.size() <= kInlineTailLimit) {
    head.append(tail);
    return Payload::FromString(std::move(head));
  }
  return Payload(std::move(head), std::move(resp.shared_body),
                 std::move(tail));
}

void SerializeRequest(const HttpRequest& req, ByteBuffer& out) {
  out.Append(req.method.empty() ? "GET" : req.method);
  out.Append(" ");
  out.Append(req.target);
  out.Append(" HTTP/1.1\r\n");
  for (const auto& [k, v] : req.headers) {
    out.Append(k);
    out.Append(": ");
    out.Append(v);
    out.Append("\r\n");
  }
  if (!req.body.empty()) {
    out.Append("Content-Length: ");
    AppendInt(out, req.body.size());
    out.Append("\r\n");
  }
  if (!req.keep_alive) out.Append("Connection: close\r\n");
  out.Append("\r\n");
  out.Append(req.body);
}

std::string SimpleErrorResponse(int status, int retry_after_sec) {
  const char* reason = "Error";
  switch (status) {
    case 408: reason = "Request Timeout"; break;
    case 413: reason = "Payload Too Large"; break;
    case 431: reason = "Request Header Fields Too Large"; break;
    case 503: reason = "Service Unavailable"; break;
    case 504: reason = "Gateway Timeout"; break;
    default: break;
  }
  HttpResponse resp;
  resp.status = status;
  resp.reason = reason;
  resp.keep_alive = false;
  if (retry_after_sec > 0) {
    resp.SetHeader("Retry-After", std::to_string(retry_after_sec));
  }
  resp.body = std::string(reason) + "\n";
  ByteBuffer out;
  SerializeResponse(resp, out);
  return std::string(out.View());
}

std::string BuildGetRequest(std::string_view target, bool keep_alive) {
  return BuildGetRequest(target, {}, keep_alive);
}

std::string BuildGetRequest(
    std::string_view target,
    const std::vector<std::pair<std::string, std::string>>& headers,
    bool keep_alive) {
  std::string out;
  out.reserve(64 + target.size());
  out.append("GET ");
  out.append(target);
  out.append(" HTTP/1.1\r\n");
  for (const auto& [k, v] : headers) {
    out.append(k);
    out.append(": ");
    out.append(v);
    out.append("\r\n");
  }
  if (!keep_alive) out.append("Connection: close\r\n");
  out.append("\r\n");
  return out;
}

}  // namespace hynet
