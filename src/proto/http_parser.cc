#include "proto/http_parser.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstring>

namespace hynet {
namespace {

// Finds "\r\n\r\n" in data starting no earlier than from (minus overlap).
// Returns the offset one past the terminator, or 0 if absent.
size_t FindHeadEnd(std::string_view data, size_t scanned) {
  const size_t start = scanned > 3 ? scanned - 3 : 0;
  const size_t pos = data.find("\r\n\r\n", start);
  return pos == std::string_view::npos ? 0 : pos + 4;
}

std::string_view Trim(std::string_view sv) {
  while (!sv.empty() && (sv.front() == ' ' || sv.front() == '\t')) {
    sv.remove_prefix(1);
  }
  while (!sv.empty() && (sv.back() == ' ' || sv.back() == '\t')) {
    sv.remove_suffix(1);
  }
  return sv;
}

// Splits head into lines and parses "Key: Value" headers into `headers`.
// Returns false on malformed header lines.
bool ParseHeaderLines(std::string_view head,
                      std::vector<std::pair<std::string, std::string>>* out) {
  size_t pos = 0;
  while (pos < head.size()) {
    size_t eol = head.find("\r\n", pos);
    if (eol == std::string_view::npos) eol = head.size();
    std::string_view line = head.substr(pos, eol - pos);
    pos = eol + 2;
    if (line.empty()) continue;
    const size_t colon = line.find(':');
    if (colon == std::string_view::npos) return false;
    out->emplace_back(std::string(Trim(line.substr(0, colon))),
                      std::string(Trim(line.substr(colon + 1))));
  }
  return true;
}

int64_t ParseContentLength(
    const std::vector<std::pair<std::string, std::string>>& headers) {
  for (const auto& [k, v] : headers) {
    if (EqualsIgnoreCase(k, "Content-Length")) {
      int64_t len = 0;
      const auto [ptr, ec] =
          std::from_chars(v.data(), v.data() + v.size(), len);
      if (ec != std::errc{} || ptr != v.data() + v.size() || len < 0) {
        return -1;
      }
      return len;
    }
  }
  return 0;
}

bool WantsKeepAlive(
    const std::vector<std::pair<std::string, std::string>>& headers,
    bool http11) {
  for (const auto& [k, v] : headers) {
    if (EqualsIgnoreCase(k, "Connection")) {
      if (EqualsIgnoreCase(v, "close")) return false;
      if (EqualsIgnoreCase(v, "keep-alive")) return true;
    }
  }
  return http11;  // HTTP/1.1 defaults to keep-alive
}

}  // namespace

void ParseRequestTarget(std::string_view target, HttpRequest* req) {
  const size_t qpos = target.find('?');
  req->path = std::string(target.substr(0, qpos));
  if (qpos == std::string_view::npos) return;
  std::string_view qs = target.substr(qpos + 1);
  while (!qs.empty()) {
    size_t amp = qs.find('&');
    std::string_view pair = qs.substr(0, amp);
    qs = amp == std::string_view::npos ? std::string_view{}
                                       : qs.substr(amp + 1);
    if (pair.empty()) continue;
    const size_t eq = pair.find('=');
    if (eq == std::string_view::npos) {
      req->query.emplace_back(std::string(pair), "");
    } else {
      req->query.emplace_back(std::string(pair.substr(0, eq)),
                              std::string(pair.substr(eq + 1)));
    }
  }
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  return a.size() == b.size() &&
         std::equal(a.begin(), a.end(), b.begin(), [](char x, char y) {
           return std::tolower(static_cast<unsigned char>(x)) ==
                  std::tolower(static_cast<unsigned char>(y));
         });
}

std::string_view HttpRequest::QueryParam(std::string_view key,
                                         std::string_view fallback) const {
  for (const auto& [k, v] : query) {
    if (k == key) return v;
  }
  return fallback;
}

int64_t HttpRequest::QueryParamInt(std::string_view key,
                                   int64_t fallback) const {
  const std::string_view v = QueryParam(key);
  if (v.empty()) return fallback;
  int64_t out = 0;
  const auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
  return (ec == std::errc{} && ptr == v.data() + v.size()) ? out : fallback;
}

std::string_view HttpRequest::Header(std::string_view key,
                                     std::string_view fallback) const {
  for (const auto& [k, v] : headers) {
    if (EqualsIgnoreCase(k, key)) return v;
  }
  return fallback;
}

void HttpRequest::Clear() {
  method.clear();
  target.clear();
  path.clear();
  query.clear();
  headers.clear();
  body.clear();
  keep_alive = true;
}

size_t HttpRequest::HeapBytes() const {
  size_t total = method.capacity() + target.capacity() + path.capacity() +
                 body.capacity();
  total += query.capacity() * sizeof(query[0]);
  for (const auto& [k, v] : query) total += k.capacity() + v.capacity();
  total += headers.capacity() * sizeof(headers[0]);
  for (const auto& [k, v] : headers) total += k.capacity() + v.capacity();
  // Small strings live inline in the string object; counting their
  // capacity anyway keeps this an upper bound, which is what a memory
  // budget wants.
  return total;
}

void HttpRequest::ShrinkToFit() {
  method = std::string();
  target = std::string();
  path = std::string();
  body = std::string();
  query = {};
  headers = {};
  keep_alive = true;
}

std::string_view HttpResponse::Header(std::string_view key,
                                      std::string_view fallback) const {
  for (const auto& [k, v] : headers) {
    if (EqualsIgnoreCase(k, key)) return v;
  }
  return fallback;
}

void HttpResponse::Clear() {
  status = 200;
  reason = "OK";
  headers.clear();
  shared_body.reset();
  body.clear();
  keep_alive = true;
  pushed.clear();
}

ParseStatus HttpRequestParser::Parse(ByteBuffer& in) {
  error_ = ParseError::kNone;
  if (state_ == State::kHead) {
    const ParseStatus st = ParseHead(in);
    if (st != ParseStatus::kComplete) return st;
    if (body_remaining_ == 0) return ParseStatus::kComplete;
    state_ = State::kBody;
  }
  // kBody: consume up to body_remaining_ bytes.
  const size_t take = std::min(body_remaining_, in.ReadableBytes());
  request_.body.append(in.ReadPtr(), take);
  in.Consume(take);
  body_remaining_ -= take;
  if (body_remaining_ > 0) return ParseStatus::kNeedMore;
  state_ = State::kHead;
  return ParseStatus::kComplete;
}

ParseStatus HttpRequestParser::ParseHead(ByteBuffer& in) {
  const std::string_view data = in.View();
  const size_t head_end = FindHeadEnd(data, scanned_);
  if (head_end == 0) {
    scanned_ = data.size();
    // A head beyond the cap without a terminator is an attack or a bug.
    if (max_head_bytes_ > 0 && data.size() > max_head_bytes_) {
      error_ = ParseError::kHeadTooLarge;
      return ParseStatus::kError;
    }
    return ParseStatus::kNeedMore;
  }
  if (max_head_bytes_ > 0 && head_end > max_head_bytes_ + 4) {
    error_ = ParseError::kHeadTooLarge;
    return ParseStatus::kError;
  }

  request_.Clear();
  std::string_view head = data.substr(0, head_end - 4);

  // Request line: METHOD SP TARGET SP VERSION
  size_t eol = head.find("\r\n");
  if (eol == std::string_view::npos) eol = head.size();
  std::string_view line = head.substr(0, eol);
  const size_t sp1 = line.find(' ');
  const size_t sp2 = line.rfind(' ');
  if (sp1 == std::string_view::npos || sp2 == sp1) {
    error_ = ParseError::kMalformed;
    return ParseStatus::kError;
  }
  request_.method = std::string(line.substr(0, sp1));
  request_.target = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
  const std::string_view version = line.substr(sp2 + 1);
  if (!version.starts_with("HTTP/1.")) {
    error_ = ParseError::kMalformed;
    return ParseStatus::kError;
  }
  ParseRequestTarget(request_.target, &request_);

  const std::string_view header_block =
      eol < head.size() ? head.substr(eol + 2) : std::string_view{};
  if (!ParseHeaderLines(header_block, &request_.headers)) {
    error_ = ParseError::kMalformed;
    return ParseStatus::kError;
  }

  const int64_t content_length = ParseContentLength(request_.headers);
  if (content_length < 0) {
    error_ = ParseError::kMalformed;
    return ParseStatus::kError;
  }
  if (max_body_bytes_ > 0 &&
      static_cast<uint64_t>(content_length) > max_body_bytes_) {
    error_ = ParseError::kBodyTooLarge;
    return ParseStatus::kError;
  }
  body_remaining_ = static_cast<size_t>(content_length);
  request_.keep_alive =
      WantsKeepAlive(request_.headers, version == "HTTP/1.1");

  in.Consume(head_end);
  scanned_ = 0;
  return ParseStatus::kComplete;
}

void HttpRequestParser::Reset() {
  request_.Clear();
  state_ = State::kHead;
  body_remaining_ = 0;
  scanned_ = 0;
  error_ = ParseError::kNone;
}

ParseStatus HttpResponseParser::Parse(ByteBuffer& in) {
  if (state_ == State::kHead) {
    const ParseStatus st = ParseHead(in);
    if (st != ParseStatus::kComplete) return st;
    if (body_remaining_ == 0) return ParseStatus::kComplete;
    state_ = State::kBody;
  }
  const size_t take = std::min(body_remaining_, in.ReadableBytes());
  response_.body.append(in.ReadPtr(), take);
  in.Consume(take);
  body_remaining_ -= take;
  if (body_remaining_ > 0) return ParseStatus::kNeedMore;
  state_ = State::kHead;
  return ParseStatus::kComplete;
}

ParseStatus HttpResponseParser::ParseHead(ByteBuffer& in) {
  const std::string_view data = in.View();
  const size_t head_end = FindHeadEnd(data, scanned_);
  if (head_end == 0) {
    scanned_ = data.size();
    return data.size() > 65536 ? ParseStatus::kError : ParseStatus::kNeedMore;
  }

  response_.Clear();
  std::string_view head = data.substr(0, head_end - 4);

  // Status line: VERSION SP CODE SP REASON
  size_t eol = head.find("\r\n");
  if (eol == std::string_view::npos) eol = head.size();
  std::string_view line = head.substr(0, eol);
  if (!line.starts_with("HTTP/1.")) return ParseStatus::kError;
  const size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos || sp1 + 4 > line.size()) {
    return ParseStatus::kError;
  }
  int status = 0;
  const auto* begin = line.data() + sp1 + 1;
  const auto [ptr, ec] = std::from_chars(begin, begin + 3, status);
  if (ec != std::errc{} || ptr != begin + 3) return ParseStatus::kError;
  response_.status = status;
  const size_t sp2 = line.find(' ', sp1 + 1);
  response_.reason = sp2 == std::string_view::npos
                         ? ""
                         : std::string(line.substr(sp2 + 1));

  const std::string_view header_block =
      eol < head.size() ? head.substr(eol + 2) : std::string_view{};
  if (!ParseHeaderLines(header_block, &response_.headers)) {
    return ParseStatus::kError;
  }

  const int64_t content_length = ParseContentLength(response_.headers);
  if (content_length < 0) return ParseStatus::kError;
  body_remaining_ = static_cast<size_t>(content_length);
  response_.keep_alive = WantsKeepAlive(response_.headers,
                                        line.starts_with("HTTP/1.1"));

  in.Consume(head_end);
  scanned_ = 0;
  return ParseStatus::kComplete;
}

void HttpResponseParser::Reset() {
  response_.Clear();
  state_ = State::kHead;
  body_remaining_ = 0;
  scanned_ = 0;
}

}  // namespace hynet
