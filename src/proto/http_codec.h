// Serialization of HTTP messages into wire bytes.
#pragma once

#include "common/bytes.h"
#include "common/payload.h"
#include "proto/http_message.h"

namespace hynet {

// Serializes a response (adds Content-Length and Connection headers).
void SerializeResponse(const HttpResponse& resp, ByteBuffer& out);

// Zero-copy serialization: produces a Payload whose head is the freshly
// built status line + headers, whose body segment shares resp.shared_body
// (no copy — N responses reference one allocation), and whose tail takes
// resp.body by move (plus pushed parts). Small dynamic suffixes are
// inlined into the head to keep the iovec count down. Consumes resp.body
// and resp.pushed; the response struct is left cleared of payload bytes.
Payload SerializeResponsePayload(HttpResponse& resp);

// Serializes a request (adds Content-Length when a body is present).
void SerializeRequest(const HttpRequest& req, ByteBuffer& out);

// Convenience for clients: builds "GET <target> HTTP/1.1" bytes.
std::string BuildGetRequest(std::string_view target, bool keep_alive = true);

// Same, with extra request headers (e.g. the forwarded
// X-Hynet-Deadline-Ms budget on inter-tier calls).
std::string BuildGetRequest(
    std::string_view target,
    const std::vector<std::pair<std::string, std::string>>& headers,
    bool keep_alive = true);

// Minimal standalone error response with `Connection: close`, for the
// overload/limit paths that answer before closing (431 oversize head,
// 413 oversize body, 503 shed at max_connections, 504 deadline expired,
// 408 timeout). retry_after_sec > 0 adds a Retry-After header so shed
// clients know when to come back.
std::string SimpleErrorResponse(int status, int retry_after_sec = 0);

}  // namespace hynet
