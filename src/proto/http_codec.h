// Serialization of HTTP messages into wire bytes.
#pragma once

#include "common/bytes.h"
#include "proto/http_message.h"

namespace hynet {

// Serializes a response (adds Content-Length and Connection headers).
void SerializeResponse(const HttpResponse& resp, ByteBuffer& out);

// Serializes a request (adds Content-Length when a body is present).
void SerializeRequest(const HttpRequest& req, ByteBuffer& out);

// Convenience for clients: builds "GET <target> HTTP/1.1" bytes.
std::string BuildGetRequest(std::string_view target, bool keep_alive = true);

}  // namespace hynet
