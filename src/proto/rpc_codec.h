// Binary RPC framing: length-prefixed frames multiplexed on one connection.
//
// The HTTP/1.1 subset serializes responses in request order, so a single
// connection can never express the paper's most interesting workload —
// pipelined requests whose responses complete out of order because they
// took different execution paths (inline vs worker pool). This codec is
// the protocol plane for that workload: every frame carries a request_id,
// any number of requests may be in flight on one connection, and responses
// are written in *completion* order, matched back by id on the client.
//
// Wire format (all integers little-endian), fixed 20-byte header:
//
//   offset  size  field
//        0     2  magic       0x4852 ("HR") — rejects stray HTTP/garbage
//        2     2  method_id   service method selector
//        4     4  payload_len bytes following the header
//        8     8  request_id  client-chosen; echoed verbatim on the response
//       16     1  flags       bit 0: close connection after this exchange
//                             bit 1: deadline_ms field is meaningful
//       17     1  status      0 on requests; RpcStatus on responses
//       18     2  deadline_ms remaining deadline budget in ms (saturated at
//                             65535) when flags bit 1 is set — the RPC
//                             plane's native X-Hynet-Deadline-Ms; 0 and
//                             ignored otherwise
//
// The deadline field carries the same semantics as the HTTP header
// X-Hynet-Deadline-Ms: a *relative* budget, re-anchored at each hop's
// arrival and decremented before the next hop, so mesh calls shed expired
// work natively instead of only over HTTP.
//
// The response payload rides the refcounted Payload zero-copy path: the
// 20-byte header is the Payload head, a shared KV value is the body
// segment (one allocation serving any number of connections), per-response
// dynamic bytes are the tail. Nothing is concatenated before writev.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/bytes.h"
#include "common/payload.h"
#include "proto/http_parser.h"  // ParseStatus

namespace hynet {

inline constexpr uint16_t kRpcMagic = 0x4852;  // "HR"
inline constexpr size_t kRpcHeaderSize = 20;

// Response status codes (the `status` header byte).
enum class RpcStatus : uint8_t {
  kOk = 0,
  kNotFound = 1,    // key absent (Lookup/Read miss)
  kBadMethod = 2,   // unknown method_id; the connection survives
  kBadRequest = 3,  // malformed request payload for a known method
  kError = 4,       // handler failed (or dropped its ResponseWriter)
  kShed = 5,        // server overloaded / draining
  kExpired = 6,     // deadline budget gone (the RPC plane's 504)
};

const char* RpcStatusName(RpcStatus s);

// Frame flags.
inline constexpr uint8_t kRpcFlagClose = 0x1;     // close after this exchange
inline constexpr uint8_t kRpcFlagDeadline = 0x2;  // deadline_ms is meaningful

struct RpcFrameHeader {
  uint32_t payload_len = 0;
  uint64_t request_id = 0;
  uint16_t method_id = 0;
  uint8_t flags = 0;
  uint8_t status = 0;
  // Remaining deadline budget in milliseconds; meaningful only when
  // flags & kRpcFlagDeadline (re-anchored at arrival by the receiver).
  uint16_t deadline_ms = 0;
};

// One decoded frame: header plus the (moved-out) payload bytes.
struct RpcFrame {
  RpcFrameHeader header;
  std::string payload;
};

// Why an RPC frame parse failed.
enum class RpcParseError {
  kNone,
  kBadMagic,         // not an RPC frame (e.g. HTTP bytes on the RPC port)
  kPayloadTooLarge,  // declared payload_len above the configured limit
};

// Incremental frame parser. Consumes bytes from a ByteBuffer and tolerates
// arbitrary fragmentation (a header split across reads, a payload arriving
// in many pieces, several frames in one read).
class RpcFrameParser {
 public:
  // Attempts to parse one frame from `in`. On kComplete the frame's bytes
  // have been consumed and frame() is valid until the next Parse().
  ParseStatus Parse(ByteBuffer& in);

  // The decoded frame; payload may be moved out by the caller.
  RpcFrame& frame() { return frame_; }
  const RpcFrame& frame() const { return frame_; }

  // Maximum accepted payload_len (0 = unlimited). A frame declaring more
  // parses to kError/kPayloadTooLarge before any payload byte is read, so
  // an attacker cannot make the server buffer the oversized body.
  void SetLimits(size_t max_payload_bytes) {
    max_payload_bytes_ = max_payload_bytes;
  }

  RpcParseError error() const { return error_; }

  // True while a frame is partially received (mid-header or mid-payload);
  // feeds the header-timeout sweep exactly like HttpRequestParser.
  bool InProgress() const {
    return state_ == State::kPayload || header_bytes_ > 0;
  }

  void Reset();

 private:
  enum class State { kHeader, kPayload };

  State state_ = State::kHeader;
  size_t header_bytes_ = 0;  // header bytes seen so far (< kRpcHeaderSize)
  RpcFrame frame_;
  size_t payload_remaining_ = 0;
  size_t max_payload_bytes_ = 0;
  RpcParseError error_ = RpcParseError::kNone;
};

// Serializes a header into its 20 wire bytes.
std::string EncodeRpcHeader(const RpcFrameHeader& header);

// Client-side request frame: header + payload concatenated. A nonzero
// `deadline_ms` sets kRpcFlagDeadline and rides the header's deadline
// field (callers clamp the remaining budget with ClampDeadlineMillis).
std::string EncodeRpcRequest(uint64_t request_id, uint16_t method_id,
                             std::string_view payload, uint8_t flags = 0,
                             uint16_t deadline_ms = 0);

// Saturates a remaining budget into the header's u16 field: negative
// budgets clamp to 0 (expired), budgets above 65535 ms to 65535.
uint16_t ClampDeadlineMillis(int64_t remaining_ms);

// Zero-copy response frame: the header is the Payload head, `shared_body`
// is referenced in place (N responses serving one KV value share that
// allocation), `tail` is moved. payload_len covers shared_body + tail.
Payload SerializeRpcResponsePayload(
    uint64_t request_id, uint16_t method_id, RpcStatus status,
    std::shared_ptr<const std::string> shared_body, std::string tail = {},
    uint8_t flags = 0);

}  // namespace hynet
