#include "proto/rpc_codec.h"

#include <cstring>

namespace hynet {

namespace {

void PutU16(char* p, uint16_t v) {
  p[0] = static_cast<char>(v & 0xff);
  p[1] = static_cast<char>((v >> 8) & 0xff);
}

void PutU32(char* p, uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<char>((v >> (8 * i)) & 0xff);
}

void PutU64(char* p, uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<char>((v >> (8 * i)) & 0xff);
}

uint16_t GetU16(const char* p) {
  return static_cast<uint16_t>(static_cast<uint8_t>(p[0]) |
                               (static_cast<uint8_t>(p[1]) << 8));
}

uint32_t GetU32(const char* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | static_cast<uint8_t>(p[i]);
  return v;
}

uint64_t GetU64(const char* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | static_cast<uint8_t>(p[i]);
  return v;
}

}  // namespace

const char* RpcStatusName(RpcStatus s) {
  switch (s) {
    case RpcStatus::kOk:         return "ok";
    case RpcStatus::kNotFound:   return "not-found";
    case RpcStatus::kBadMethod:  return "bad-method";
    case RpcStatus::kBadRequest: return "bad-request";
    case RpcStatus::kError:      return "error";
    case RpcStatus::kShed:       return "shed";
    case RpcStatus::kExpired:    return "expired";
  }
  return "unknown";
}

uint16_t ClampDeadlineMillis(int64_t remaining_ms) {
  if (remaining_ms <= 0) return 0;
  if (remaining_ms > 0xffff) return 0xffff;
  return static_cast<uint16_t>(remaining_ms);
}

ParseStatus RpcFrameParser::Parse(ByteBuffer& in) {
  if (state_ == State::kHeader) {
    header_bytes_ = in.ReadableBytes();
    if (in.ReadableBytes() < kRpcHeaderSize) {
      // Cheap early rejection: a wrong magic is detectable from the first
      // two bytes, before the rest of the header arrives.
      if (in.ReadableBytes() >= 2 && GetU16(in.ReadPtr()) != kRpcMagic) {
        error_ = RpcParseError::kBadMagic;
        return ParseStatus::kError;
      }
      return ParseStatus::kNeedMore;
    }
    const char* p = in.ReadPtr();
    if (GetU16(p) != kRpcMagic) {
      error_ = RpcParseError::kBadMagic;
      return ParseStatus::kError;
    }
    frame_.header.method_id = GetU16(p + 2);
    frame_.header.payload_len = GetU32(p + 4);
    frame_.header.request_id = GetU64(p + 8);
    frame_.header.flags = static_cast<uint8_t>(p[16]);
    frame_.header.status = static_cast<uint8_t>(p[17]);
    frame_.header.deadline_ms = (frame_.header.flags & kRpcFlagDeadline)
                                    ? GetU16(p + 18)
                                    : uint16_t{0};
    if (max_payload_bytes_ > 0 && frame_.header.payload_len > max_payload_bytes_) {
      error_ = RpcParseError::kPayloadTooLarge;
      return ParseStatus::kError;
    }
    in.Consume(kRpcHeaderSize);
    header_bytes_ = 0;
    frame_.payload.clear();
    payload_remaining_ = frame_.header.payload_len;
    state_ = State::kPayload;
  }

  // Payload: accumulate whatever is readable, up to the declared length.
  const size_t take = std::min(payload_remaining_, in.ReadableBytes());
  if (take > 0) {
    frame_.payload.append(in.ReadPtr(), take);
    in.Consume(take);
    payload_remaining_ -= take;
  }
  if (payload_remaining_ > 0) return ParseStatus::kNeedMore;
  state_ = State::kHeader;
  return ParseStatus::kComplete;
}

void RpcFrameParser::Reset() {
  state_ = State::kHeader;
  header_bytes_ = 0;
  payload_remaining_ = 0;
  frame_ = RpcFrame{};
  error_ = RpcParseError::kNone;
}

std::string EncodeRpcHeader(const RpcFrameHeader& header) {
  std::string out(kRpcHeaderSize, '\0');
  char* p = out.data();
  PutU16(p, kRpcMagic);
  PutU16(p + 2, header.method_id);
  PutU32(p + 4, header.payload_len);
  PutU64(p + 8, header.request_id);
  p[16] = static_cast<char>(header.flags);
  p[17] = static_cast<char>(header.status);
  PutU16(p + 18,
         (header.flags & kRpcFlagDeadline) ? header.deadline_ms : uint16_t{0});
  return out;
}

std::string EncodeRpcRequest(uint64_t request_id, uint16_t method_id,
                             std::string_view payload, uint8_t flags,
                             uint16_t deadline_ms) {
  RpcFrameHeader h;
  h.request_id = request_id;
  h.method_id = method_id;
  h.payload_len = static_cast<uint32_t>(payload.size());
  h.flags = flags;
  if (deadline_ms > 0) {
    h.flags |= kRpcFlagDeadline;
    h.deadline_ms = deadline_ms;
  }
  std::string out = EncodeRpcHeader(h);
  out.append(payload);
  return out;
}

Payload SerializeRpcResponsePayload(
    uint64_t request_id, uint16_t method_id, RpcStatus status,
    std::shared_ptr<const std::string> shared_body, std::string tail,
    uint8_t flags) {
  RpcFrameHeader h;
  h.request_id = request_id;
  h.method_id = method_id;
  h.status = static_cast<uint8_t>(status);
  h.flags = flags;
  h.payload_len = static_cast<uint32_t>(
      (shared_body ? shared_body->size() : 0) + tail.size());
  return Payload(EncodeRpcHeader(h), std::move(shared_body), std::move(tail));
}

}  // namespace hynet
