// HTTP/1.1-subset message types exchanged between the load generator and
// the servers (and between tiers of the mini 3-tier system).
//
// Supported: GET/POST, Content-Length framing, keep-alive (default on),
// query parameters. Not supported (out of scope for the study): chunked
// encoding, multi-line headers, HTTP/2.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hynet {

struct HttpRequest {
  std::string method;           // "GET", "POST"
  std::string target;           // raw request target, e.g. "/bench?size=100"
  std::string path;             // target up to '?'
  std::vector<std::pair<std::string, std::string>> query;   // decoded params
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  bool keep_alive = true;

  // Returns the first query parameter with this key, or `fallback`.
  std::string_view QueryParam(std::string_view key,
                              std::string_view fallback = "") const;
  int64_t QueryParamInt(std::string_view key, int64_t fallback) const;

  std::string_view Header(std::string_view key,
                          std::string_view fallback = "") const;

  void Clear();

  // Heap bytes retained by this request's strings and vectors (capacity,
  // not size — Clear() keeps capacity for reuse). The ConnTable charges
  // this as codec scratch.
  size_t HeapBytes() const;
  // Releases all retained capacity (idle-cold reclamation).
  void ShrinkToFit();
};

struct HttpResponse {
  int status = 200;
  std::string reason = "OK";
  std::vector<std::pair<std::string, std::string>> headers;
  // Immutable body segment shared across responses: handlers that answer
  // many requests with the same bytes (static catalogs, per-interaction
  // HTML scaffolds) set this once and every response references the same
  // allocation — the serializer never copies it. Written on the wire
  // BEFORE `body`, which carries the per-response dynamic suffix.
  std::shared_ptr<const std::string> shared_body;
  std::string body;
  bool keep_alive = true;
  // Server-push companion resources (HTTP/2-style push modeled on the
  // HTTP/1.1 wire: parts are concatenated after `body` and described by
  // X-Push-Parts / X-Push-Sizes headers; Content-Length covers the whole
  // train). Section IV of the paper singles this out as the reason
  // response sizes are unpredictable: "multiple responses for a single
  // client request".
  std::vector<std::string> pushed;

  // Total bytes that will be written for this response's payload.
  size_t PayloadBytes() const {
    size_t total = (shared_body ? shared_body->size() : 0) + body.size();
    for (const auto& p : pushed) total += p.size();
    return total;
  }

  void SetHeader(std::string key, std::string value) {
    headers.emplace_back(std::move(key), std::move(value));
  }
  std::string_view Header(std::string_view key,
                          std::string_view fallback = "") const;

  void Clear();
};

// Case-insensitive ASCII comparison (header names).
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

// Splits a request target ("/q/user?id=3&x=y") into req->path and
// req->query. Shared by the HTTP request parser and the RPC tiers, whose
// payloads reuse the target syntax without the HTTP envelope.
void ParseRequestTarget(std::string_view target, HttpRequest* req);

}  // namespace hynet
