// Per-downstream circuit breaker (closed / open / half-open) over a
// rolling failure-rate window.
//
// Closed: requests flow; successes and failures land in a small ring of
// time buckets. When the window holds at least `min_requests` samples and
// the failure share reaches `failure_ratio`, the breaker trips open.
// Open: Allow() fails fast (the caller serves its degraded fallback)
// until `open_ms` elapses. Half-open: a limited number of probe requests
// pass; one success re-closes the breaker and resets the window, one
// failure re-opens it for another `open_ms`.
//
// Callers pair every Allow() == true with exactly one OnSuccess() or
// OnFailure(). Thread-safe; one mutex per breaker (per-request cost in
// the rubbos tiers, far off any hot byte path).
#pragma once

#include <array>
#include <cstdint>
#include <mutex>

#include "common/clock.h"

namespace hynet {

struct CircuitBreakerConfig {
  int window_ms = 1000;        // rolling failure-rate window
  int min_requests = 10;       // samples required before tripping
  double failure_ratio = 0.5;  // failure share that trips the breaker
  int open_ms = 200;           // fast-fail period before probing
  int half_open_probes = 1;    // concurrent probes allowed half-open
};

class CircuitBreaker {
 public:
  enum class State { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

  explicit CircuitBreaker(CircuitBreakerConfig config);

  // False = fail fast (serve the degraded fallback). A true return must be
  // answered by OnSuccess or OnFailure.
  bool Allow();
  void OnSuccess();
  void OnFailure();

  State state() const;
  uint64_t Trips() const;

 private:
  static constexpr int kBuckets = 8;

  struct Bucket {
    int64_t epoch = -1;  // bucket time index; -1 = empty
    uint32_t ok = 0;
    uint32_t fail = 0;
  };

  // All private helpers run under mu_.
  Bucket& CurrentBucket(int64_t now_ns);
  void WindowTotals(int64_t now_ns, uint64_t& ok, uint64_t& fail);
  void TripLocked(int64_t now_ns);

  const CircuitBreakerConfig config_;
  const int64_t bucket_ns_;

  mutable std::mutex mu_;
  State state_ = State::kClosed;
  std::array<Bucket, kBuckets> buckets_{};
  int64_t opened_at_ns_ = 0;
  int probes_in_flight_ = 0;
  uint64_t trips_ = 0;
};

}  // namespace hynet
