// Logical context-switch accounting (Table II of the paper).
//
// The paper counts the user-space thread handoffs needed to process one
// request: reactor→worker on the read event, worker→reactor when the
// response is ready, reactor→worker on the write event, worker→reactor when
// the write completes (4 for sTomcat-Async, 2 for the -Fix variant, 0 for
// thread-per-connection and single-threaded designs). Servers increment
// these counters at the exact points where a different thread must be
// scheduled to make progress.
#pragma once

#include <atomic>
#include <cstdint>

namespace hynet {

struct DispatchStats {
  // Reactor handed an event to a worker-pool thread.
  std::atomic<uint64_t> dispatches_to_worker{0};
  // A worker finished its slice and control conceptually returned to the
  // reactor (the worker blocks on the queue again).
  std::atomic<uint64_t> returns_to_reactor{0};
  // A worker produced an event the reactor must observe (e.g. the write
  // event generated after preparing a response).
  std::atomic<uint64_t> reactor_notifications{0};

  uint64_t LogicalSwitches() const {
    return dispatches_to_worker.load(std::memory_order_relaxed) +
           returns_to_reactor.load(std::memory_order_relaxed) +
           reactor_notifications.load(std::memory_order_relaxed);
  }

  void Reset() {
    dispatches_to_worker.store(0, std::memory_order_relaxed);
    returns_to_reactor.store(0, std::memory_order_relaxed);
    reactor_notifications.store(0, std::memory_order_relaxed);
  }
};

// Connection-lifecycle and overload-protection counters. Incremented by
// the eviction sweeps, admission control, backpressure water marks, and
// graceful drain; exported through ServerCounters and metrics/report.cc.
struct LifecycleStats {
  std::atomic<uint64_t> idle_evictions{0};       // idle keep-alive timeout
  std::atomic<uint64_t> header_evictions{0};     // partial head (slowloris)
  std::atomic<uint64_t> write_stall_evictions{0};  // peer window never opened
  std::atomic<uint64_t> shed_connections{0};     // rejected at max_connections
  std::atomic<uint64_t> accept_pauses{0};        // acceptor paused at the cap
  std::atomic<uint64_t> backpressure_pauses{0};  // reads paused at high water
  std::atomic<uint64_t> backpressure_resumes{0};  // reads resumed at low water
  std::atomic<uint64_t> oversize_requests{0};    // answered 431/413
  std::atomic<uint64_t> half_close_reclaims{0};  // EPOLLRDHUP/EOF reclaim
  std::atomic<uint64_t> cold_reclaims{0};        // idle conns went cold (buffer
                                                 // released to the pool)
  std::atomic<uint64_t> cold_revivals{0};        // cold conns woken by bytes
  std::atomic<uint64_t> drained_connections{0};  // closed cleanly during drain
  std::atomic<uint64_t> forced_closes{0};        // stragglers at the deadline
  // ---- Resilience plane (ISSUE 6) ----
  std::atomic<uint64_t> sheds_queue_delay{0};    // 503s from the CoDel shedder
  std::atomic<uint64_t> deadline_expired{0};     // 504 fast-fails + late drops
  std::atomic<uint64_t> retries_issued{0};       // downstream retries sent
  std::atomic<uint64_t> retry_budget_exhausted{0};  // retries denied, no budget
  std::atomic<uint64_t> breaker_state{0};        // 0 closed / 1 open / 2 half
  std::atomic<uint64_t> degraded_responses{0};   // fallbacks served while open
  // ---- Mesh plane (ISSUE 10) ----
  std::atomic<uint64_t> cache_hits{0};           // response-cache hits
  std::atomic<uint64_t> cache_misses{0};         // lookups that went downstream
  std::atomic<uint64_t> cache_evictions{0};      // LRU byte-budget evictions
  std::atomic<uint64_t> cache_singleflight_waits{0};  // misses coalesced onto
                                                      // an in-flight fill
  std::atomic<uint64_t> mesh_fanout_calls{0};    // fan-out groups issued
  std::atomic<uint64_t> mesh_partial_failures{0};  // fan-ins with >=1 failed leg
  std::atomic<uint64_t> mesh_channel_reconnects{0};  // channel conns re-dialed

  uint64_t Evictions() const {
    return idle_evictions.load(std::memory_order_relaxed) +
           header_evictions.load(std::memory_order_relaxed) +
           write_stall_evictions.load(std::memory_order_relaxed);
  }
};

// Per-connection/server write-path counters (Table IV of the paper).
// write_calls counts every write syscall, vectored or not; writev_calls
// and iov_segments break out the vectored path so syscalls-per-response
// and segments-per-syscall are both observable (a writev over a batch of
// pipelined responses pushes write_calls/responses below 1).
struct WriteStats {
  std::atomic<uint64_t> write_calls{0};      // socket write syscalls (all)
  std::atomic<uint64_t> zero_writes{0};      // write() that copied 0 bytes
  std::atomic<uint64_t> spin_capped{0};      // flushes stopped by the cap
  std::atomic<uint64_t> responses{0};        // responses fully sent
  std::atomic<uint64_t> writev_calls{0};     // vectored (sendmsg) syscalls
  std::atomic<uint64_t> iov_segments{0};     // iovec segments across them
  // Socket read syscalls (read()/recv()) on the epoll readiness paths.
  // The uring completion path performs reads via SQEs and leaves this at
  // zero — the epoll-vs-uring syscalls/request comparison reads it.
  std::atomic<uint64_t> read_calls{0};

  double WritesPerResponse() const {
    const uint64_t r = responses.load(std::memory_order_relaxed);
    return r ? static_cast<double>(
                   write_calls.load(std::memory_order_relaxed)) /
                   static_cast<double>(r)
             : 0.0;
  }

  void Reset() {
    write_calls.store(0, std::memory_order_relaxed);
    zero_writes.store(0, std::memory_order_relaxed);
    spin_capped.store(0, std::memory_order_relaxed);
    responses.store(0, std::memory_order_relaxed);
    writev_calls.store(0, std::memory_order_relaxed);
    iov_segments.store(0, std::memory_order_relaxed);
    read_calls.store(0, std::memory_order_relaxed);
  }
};

}  // namespace hynet
