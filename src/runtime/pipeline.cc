#include "runtime/pipeline.h"

#include "common/logging.h"

namespace hynet {

void ChannelContext::FireData(ByteBuffer& in) {
  pipeline_.DataFrom(index_ + 1, in);
}

void ChannelContext::FireMessage(std::any msg) {
  pipeline_.MessageFrom(index_ + 1, std::move(msg));
}

void ChannelContext::Write(std::any msg) {
  pipeline_.WriteFrom(index_, std::move(msg));
}

void ChannelContext::Close() { pipeline_.RequestClose(); }

void ChannelPipeline::AddLast(std::shared_ptr<ChannelHandler> handler) {
  handlers_.push_back(std::move(handler));
}

void ChannelPipeline::FireActive() {
  for (size_t i = 0; i < handlers_.size(); ++i) {
    ChannelContext ctx(*this, i);
    handlers_[i]->OnActive(ctx);
  }
}

void ChannelPipeline::FireInactive() {
  for (size_t i = 0; i < handlers_.size(); ++i) {
    ChannelContext ctx(*this, i);
    handlers_[i]->OnInactive(ctx);
  }
}

void ChannelPipeline::FireData(ByteBuffer& in) { DataFrom(0, in); }

void ChannelPipeline::Write(std::any msg) {
  WriteFrom(handlers_.size(), std::move(msg));
}

void ChannelPipeline::DataFrom(size_t index, ByteBuffer& in) {
  if (index >= handlers_.size()) {
    // Tail: undecoded bytes are discarded (as in Netty's TailContext).
    in.ConsumeAll();
    return;
  }
  ChannelContext ctx(*this, index);
  handlers_[index]->OnData(ctx, in);
}

void ChannelPipeline::MessageFrom(size_t index, std::any msg) {
  if (index >= handlers_.size()) return;  // tail discards
  ChannelContext ctx(*this, index);
  handlers_[index]->OnMessage(ctx, std::move(msg));
}

void ChannelPipeline::WriteFrom(size_t index, std::any msg) {
  // Outbound traverses handlers before `index`, tail→head, then the sink.
  while (index > 0) {
    index--;
    ChannelContext ctx(*this, index);
    // A handler's OnWrite either transforms and re-issues the write (via
    // ctx.Write, recursing with its own index) or forwards as-is; the
    // default implementation forwards, so we only call the first handler
    // and let recursion do the rest.
    handlers_[index]->OnWrite(ctx, std::move(msg));
    return;
  }
  if (!sink_) {
    HYNET_LOG(ERROR) << "pipeline write reached head without a sink";
    return;
  }
  if (auto* payload = std::any_cast<Payload>(&msg)) {
    sink_(std::move(*payload));
  } else if (auto* bytes = std::any_cast<std::string>(&msg)) {
    // Pre-encoded flat bytes (error wires, legacy handlers) still work.
    sink_(Payload::FromString(std::move(*bytes)));
  } else {
    HYNET_LOG(ERROR) << "pipeline head received a non-encoded message";
  }
}

}  // namespace hynet
