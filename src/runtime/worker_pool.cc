#include "runtime/worker_pool.h"

#include "common/logging.h"

namespace hynet {

WorkerPool::WorkerPool(int num_threads, std::string name)
    : WorkerPool(num_threads, std::move(name), Options{}) {}

WorkerPool::WorkerPool(int num_threads, std::string name, Options options)
    : num_threads_(num_threads), name_(std::move(name)), options_(options) {
  if (options_.max_pop_batch == 0) options_.max_pop_batch = 1;
  tids_.reserve(static_cast<size_t>(num_threads_));
  for (int i = 0; i < num_threads_; ++i) {
    threads_.Spawn([this, i] { WorkerMain(i); });
  }
  // Wait until every worker has published its tid so ThreadIds() is
  // complete as soon as the constructor returns.
  std::unique_lock<std::mutex> lock(tid_mu_);
  tid_cv_.wait(lock, [&] {
    return tids_.size() == static_cast<size_t>(num_threads_);
  });
}

WorkerPool::~WorkerPool() { Shutdown(); }

void WorkerPool::Submit(Task task) { queue_.Push(std::move(task)); }

void WorkerPool::SubmitBatch(std::vector<Task> tasks) {
  queue_.PushBatch(std::move(tasks));
}

void WorkerPool::Shutdown() {
  queue_.Close();
  threads_.JoinAll();
}

std::vector<int> WorkerPool::ThreadIds() const {
  std::lock_guard<std::mutex> lock(tid_mu_);
  return tids_;
}

void WorkerPool::WorkerMain(int index) {
  SetCurrentThreadName(name_ + "-" + std::to_string(index));
  if (options_.pin_cpu_base >= 0) PinThread(options_.pin_cpu_base + index);
  {
    std::lock_guard<std::mutex> lock(tid_mu_);
    tids_.push_back(CurrentTid());
  }
  tid_cv_.notify_one();

  auto run = [&](Task& task) {
    try {
      task();
    } catch (const std::exception& e) {
      HYNET_LOG(ERROR) << "worker " << name_ << "-" << index
                       << " task threw: " << e.what();
    }
  };

  if (options_.max_pop_batch <= 1) {
    // Paper-faithful path: one condvar handoff per task.
    while (auto task = queue_.Pop()) {
      run(*task);
    }
    return;
  }
  std::vector<Task> batch;
  while (queue_.PopBatch(options_.max_pop_batch, batch)) {
    for (Task& task : batch) run(task);
  }
}

}  // namespace hynet
