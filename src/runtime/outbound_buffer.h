// Netty-style channel outbound buffer with a writeSpin cap and a
// vectored-write flush.
//
// Mirrors the two mechanisms of Netty's write path that the paper studies
// (Section V-A / Figure 8):
//   * messages are queued with bookkeeping (a node per message, pending
//     byte accounting, flush bookkeeping) — this is the "optimization
//     overhead" visible on small responses;
//   * Flush() issues at most `spin_cap` write syscalls per invocation and
//     also stops on a zero-byte write, so one large response cannot
//     monopolize the event loop — this is the write-spin mitigation.
//
// Unlike the per-message write() loop the paper measures, Flush()
// coalesces: each syscall is a writev (sendmsg) over an iovec batch that
// spans as many queued payload segments as fit under IOV_MAX, so a burst
// of pipelined responses drains in one syscall instead of one per
// message. Messages are Payloads — their shared bodies are referenced in
// place, never copied into the queue.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "common/payload.h"
#include "metrics/registry.h"
#include "runtime/dispatch_stats.h"

namespace hynet {

enum class FlushResult {
  kDone,        // everything pending was written
  kWouldBlock,  // kernel buffer full (zero/EAGAIN write); wait for EPOLLOUT
  kSpinCapped,  // spin cap reached; caller should yield and re-flush later
  kError,       // fatal socket error; close the connection
};

class OutboundBuffer {
 public:
  // Netty-v4 default.
  static constexpr int kDefaultSpinCap = 16;

  explicit OutboundBuffer(int spin_cap = kDefaultSpinCap)
      : spin_cap_(spin_cap) {}

  // Queues a payload for writing (Netty: ChannelOutboundBuffer.addMessage).
  // `offset` marks bytes already written by the caller — the hybrid
  // server's direct-write path hands over its partially-sent payload this
  // way instead of copying the unsent remainder.
  void Add(Payload payload, size_t offset = 0);
  // Fully materialized wire bytes (kept for error paths and tests).
  void Add(std::string message) {
    Add(Payload::FromString(std::move(message)));
  }

  // Attempts to write pending data to `fd`. Updates `stats` with every
  // syscall issued. `stats.responses` is incremented for every queued
  // message fully drained (message boundaries = response boundaries).
  // When `writes_hist` is given, each completed message records the number
  // of write syscalls that moved its bytes (across all Flush invocations)
  // — the per-response Table IV figure. A partial writev is attributed to
  // exactly the messages it covered: every message that received bytes
  // from a syscall counts that syscall once.
  FlushResult Flush(int fd, WriteStats& stats,
                    HistogramMetric* writes_hist = nullptr);

  bool Empty() const { return pending_.empty(); }
  size_t PendingBytes() const { return pending_bytes_; }
  size_t PendingMessages() const { return pending_.size(); }

  int spin_cap() const { return spin_cap_; }
  void set_spin_cap(int cap) { spin_cap_ = cap; }

 private:
  struct Node {
    Payload payload;
    size_t offset = 0;  // bytes already written
    int writes = 0;     // write syscalls that moved bytes of this message
  };

  int spin_cap_;
  std::deque<Node> pending_;
  size_t pending_bytes_ = 0;
};

}  // namespace hynet
