// Netty-style channel outbound buffer with a writeSpin cap.
//
// Mirrors the two mechanisms of Netty's write path that the paper studies
// (Section V-A / Figure 8):
//   * messages are queued with bookkeeping (a node per message, pending
//     byte accounting, flush bookkeeping) — this is the "optimization
//     overhead" visible on small responses;
//   * Flush() calls write() at most `spin_cap` times per invocation and
//     also stops on a zero-byte write, so one large response cannot
//     monopolize the event loop — this is the write-spin mitigation.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "metrics/registry.h"
#include "runtime/dispatch_stats.h"

namespace hynet {

enum class FlushResult {
  kDone,        // everything pending was written
  kWouldBlock,  // kernel buffer full (zero/EAGAIN write); wait for EPOLLOUT
  kSpinCapped,  // spin cap reached; caller should yield and re-flush later
  kError,       // fatal socket error; close the connection
};

class OutboundBuffer {
 public:
  // Netty-v4 default.
  static constexpr int kDefaultSpinCap = 16;

  explicit OutboundBuffer(int spin_cap = kDefaultSpinCap)
      : spin_cap_(spin_cap) {}

  // Queues a message for writing (Netty: ChannelOutboundBuffer.addMessage).
  void Add(std::string message);

  // Attempts to write pending data to `fd`. Updates `stats` with every
  // write() issued. `completed_responses` is incremented for every queued
  // message fully drained (message boundaries = response boundaries).
  // When `writes_hist` is given, each completed message records the number
  // of write() calls it needed (across all Flush invocations) — the
  // per-response Table IV figure.
  FlushResult Flush(int fd, WriteStats& stats,
                    HistogramMetric* writes_hist = nullptr);

  bool Empty() const { return pending_.empty(); }
  size_t PendingBytes() const { return pending_bytes_; }
  size_t PendingMessages() const { return pending_.size(); }

  int spin_cap() const { return spin_cap_; }
  void set_spin_cap(int cap) { spin_cap_ = cap; }

 private:
  struct Node {
    std::string data;
    size_t offset = 0;  // bytes already written
    int writes = 0;     // write() calls attempted for this message
  };

  int spin_cap_;
  std::deque<Node> pending_;
  size_t pending_bytes_ = 0;
};

}  // namespace hynet
