// BufferPool: recycles per-connection read ByteBuffers within one event
// loop (or one server), so the accept→close churn of short keep-alive
// connections stops hitting the allocator for a fresh 4 KB buffer each
// time. A returned buffer is shrunk back toward its initial capacity so
// one burst of large requests cannot pin megabytes in the free list.
//
// Thread-safe (a mutex guards the free list): the per-loop pools are only
// touched from their loop thread, but the thread-per-connection server
// shares one pool across worker threads.
#pragma once

#include <cstddef>
#include <mutex>
#include <vector>

#include "common/bytes.h"

namespace hynet {

class MetricsRegistry;
class Counter;
class Gauge;

class BufferPool {
 public:
  // Free-list cap: buffers released beyond this are dropped to the
  // allocator instead of pooled.
  static constexpr size_t kDefaultMaxPooled = 1024;

  explicit BufferPool(size_t max_pooled = kDefaultMaxPooled)
      : max_pooled_(max_pooled) {}

  // Resolves the pool's hit/miss/outstanding instruments in `registry`
  // (names: buffer_pool_hits / buffer_pool_misses /
  // buffer_pool_outstanding). Call after the owning server has settled on
  // its registry (in particular after AdoptMetricsRegistry, so N-copy
  // children account into the parent's instruments). Without a call the
  // pool still works, just unobserved.
  void BindMetrics(MetricsRegistry& registry);

  // Checks a buffer out of the pool (empty, ready for reading into).
  // Falls back to a fresh allocation when the free list is empty.
  ByteBuffer Acquire();

  // Returns a buffer to the pool. Leftover bytes are discarded and excess
  // capacity is released before the buffer re-enters the free list.
  void Release(ByteBuffer buffer);

  size_t FreeCount() const;

 private:
  const size_t max_pooled_;
  mutable std::mutex mu_;
  std::vector<ByteBuffer> free_;
  Counter* hits_ = nullptr;
  Counter* misses_ = nullptr;
  Gauge* outstanding_ = nullptr;
};

}  // namespace hynet
