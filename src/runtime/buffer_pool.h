// BufferPool: recycles per-connection read ByteBuffers within one event
// loop (or one server), so the accept→close churn of short keep-alive
// connections stops hitting the allocator for a fresh 4 KB buffer each
// time. A returned buffer is shrunk back toward its initial capacity so
// one burst of large requests cannot pin megabytes in the free list.
//
// The free list is bounded twice over: by entry count (max_pooled) and by
// a byte budget (max_pooled_bytes) — a connection-scale deployment whose
// idle-cold sweep returns tens of thousands of buffers must not turn the
// pool itself into the memory hog the sweep just fixed. Entries carry a
// release stamp, oldest first, so TrimIdle() can evict buffers the pool
// has not re-lent for a while (LRU). Trimming touches only the free list;
// buffers checked out to connections are untouchable by construction.
//
// Thread-safe (a mutex guards the free list): the per-loop pools are only
// touched from their loop thread, but the thread-per-connection server
// shares one pool across worker threads.
#pragma once

#include <cstddef>
#include <deque>
#include <mutex>

#include "common/bytes.h"
#include "common/clock.h"

namespace hynet {

class MetricsRegistry;
class Counter;
class Gauge;

class BufferPool {
 public:
  // Free-list caps: buffers released beyond either are dropped to the
  // allocator instead of pooled.
  static constexpr size_t kDefaultMaxPooled = 1024;
  static constexpr size_t kDefaultMaxPooledBytes = 16 * 1024 * 1024;

  explicit BufferPool(size_t max_pooled = kDefaultMaxPooled,
                      size_t max_pooled_bytes = kDefaultMaxPooledBytes)
      : max_pooled_(max_pooled), max_pooled_bytes_(max_pooled_bytes) {}

  // Resolves the pool's hit/miss/outstanding instruments in `registry`
  // (names: buffer_pool_hits / buffer_pool_misses /
  // buffer_pool_outstanding / buffer_pool_free_bytes /
  // buffer_pool_trimmed). Call after the owning server has settled on
  // its registry (in particular after AdoptMetricsRegistry, so N-copy
  // children account into the parent's instruments). Without a call the
  // pool still works, just unobserved.
  void BindMetrics(MetricsRegistry& registry);

  // Checks a buffer out of the pool (empty, ready for reading into).
  // Most-recently-released first, so a hot pool keeps cache-warm buffers
  // in rotation and the stale tail ages toward TrimIdle. Falls back to a
  // fresh allocation when the free list is empty.
  ByteBuffer Acquire();

  // Returns a buffer to the pool. Leftover bytes are discarded and excess
  // capacity is released before the buffer re-enters the free list.
  void Release(ByteBuffer buffer);

  // Drops free-list entries that have sat unlent for at least `max_age`
  // (oldest first). Outstanding buffers are unaffected — only the free
  // list is walked. Returns the number of buffers dropped.
  size_t TrimIdle(Duration max_age);

  size_t FreeCount() const;
  size_t FreeBytes() const;

 private:
  struct PooledBuffer {
    ByteBuffer buffer;
    TimePoint released;
  };

  const size_t max_pooled_;
  const size_t max_pooled_bytes_;
  mutable std::mutex mu_;
  // Front = oldest release (TrimIdle pops here), back = newest (Acquire
  // pops here).
  std::deque<PooledBuffer> free_;
  size_t free_bytes_ = 0;
  Counter* hits_ = nullptr;
  Counter* misses_ = nullptr;
  Counter* trimmed_ = nullptr;
  Gauge* outstanding_ = nullptr;
  Gauge* free_bytes_gauge_ = nullptr;
};

}  // namespace hynet
