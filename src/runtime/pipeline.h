// Netty-style channel pipeline.
//
// A chain of handlers is attached to each connection; inbound events (raw
// bytes, decoded messages) traverse head→tail, outbound writes traverse
// tail→head, ending in the transport sink (the outbound buffer). This
// mirrors Netty's design — including the per-message boxing (std::any) and
// per-hop virtual dispatch, which is exactly the bookkeeping overhead the
// paper observes on small responses (Figure 9b).
#pragma once

#include <any>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/payload.h"

namespace hynet {

class ChannelPipeline;

// Handler view of its position in the pipeline: lets a handler forward
// inbound events to the next handler or push outbound messages toward the
// transport.
class ChannelContext {
 public:
  ChannelContext(ChannelPipeline& pipeline, size_t index)
      : pipeline_(pipeline), index_(index) {}

  // Forwards raw bytes to the next inbound handler.
  void FireData(ByteBuffer& in);
  // Forwards a decoded message to the next inbound handler.
  void FireMessage(std::any msg);
  // Sends `msg` outbound, through the handlers before this one.
  void Write(std::any msg);
  // Requests the connection be closed once pending writes drain.
  void Close();

  ChannelPipeline& pipeline() { return pipeline_; }

 private:
  ChannelPipeline& pipeline_;
  size_t index_;
};

class ChannelHandler {
 public:
  virtual ~ChannelHandler() = default;

  virtual void OnActive(ChannelContext& ctx) { (void)ctx; }
  virtual void OnInactive(ChannelContext& ctx) { (void)ctx; }
  // Raw bytes from the transport (usually only the head decoder cares).
  virtual void OnData(ChannelContext& ctx, ByteBuffer& in) {
    ctx.FireData(in);
  }
  // Decoded inbound message.
  virtual void OnMessage(ChannelContext& ctx, std::any msg) {
    ctx.FireMessage(std::move(msg));
  }
  // Outbound message on its way to the transport.
  virtual void OnWrite(ChannelContext& ctx, std::any msg) {
    ctx.Write(std::move(msg));
  }
};

class ChannelPipeline {
 public:
  // Receives fully-encoded wire payloads at the head of the outbound path.
  // A Payload instead of flat bytes so shared bodies survive the pipeline
  // without being copied into a contiguous buffer.
  using OutboundSink = std::function<void(Payload payload)>;
  using CloseRequest = std::function<void()>;

  void AddLast(std::shared_ptr<ChannelHandler> handler);
  void SetOutboundSink(OutboundSink sink) { sink_ = std::move(sink); }
  void SetCloseRequest(CloseRequest close) { close_ = std::move(close); }

  // Entry points from the transport.
  void FireActive();
  void FireInactive();
  void FireData(ByteBuffer& in);

  // Entry point for writes originating outside any handler (e.g. the
  // server completing an asynchronous computation).
  void Write(std::any msg);

  size_t HandlerCount() const { return handlers_.size(); }

 private:
  friend class ChannelContext;

  void DataFrom(size_t index, ByteBuffer& in);
  void MessageFrom(size_t index, std::any msg);
  void WriteFrom(size_t index, std::any msg);  // index counts down to 0
  void RequestClose() {
    if (close_) close_();
  }

  std::vector<std::shared_ptr<ChannelHandler>> handlers_;
  OutboundSink sink_;
  CloseRequest close_;
};

}  // namespace hynet
