#include "runtime/buffer_pool.h"

#include "metrics/registry.h"

namespace hynet {

void BufferPool::BindMetrics(MetricsRegistry& registry) {
  std::lock_guard<std::mutex> lock(mu_);
  hits_ = &registry.GetCounter("buffer_pool_hits");
  misses_ = &registry.GetCounter("buffer_pool_misses");
  outstanding_ = &registry.GetGauge("buffer_pool_outstanding");
}

ByteBuffer BufferPool::Acquire() {
  std::lock_guard<std::mutex> lock(mu_);
  if (outstanding_) outstanding_->Add(1);
  if (!free_.empty()) {
    ByteBuffer buf = std::move(free_.back());
    free_.pop_back();
    if (hits_) hits_->Add(1);
    return buf;
  }
  if (misses_) misses_->Add(1);
  return ByteBuffer();
}

void BufferPool::Release(ByteBuffer buffer) {
  buffer.ConsumeAll();
  buffer.ShrinkToFit();
  std::lock_guard<std::mutex> lock(mu_);
  if (outstanding_) outstanding_->Add(-1);
  if (free_.size() < max_pooled_) free_.push_back(std::move(buffer));
}

size_t BufferPool::FreeCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return free_.size();
}

}  // namespace hynet
