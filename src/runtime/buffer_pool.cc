#include "runtime/buffer_pool.h"

#include "metrics/registry.h"

namespace hynet {

void BufferPool::BindMetrics(MetricsRegistry& registry) {
  std::lock_guard<std::mutex> lock(mu_);
  hits_ = &registry.GetCounter("buffer_pool_hits");
  misses_ = &registry.GetCounter("buffer_pool_misses");
  trimmed_ = &registry.GetCounter("buffer_pool_trimmed");
  outstanding_ = &registry.GetGauge("buffer_pool_outstanding");
  free_bytes_gauge_ = &registry.GetGauge("buffer_pool_free_bytes");
}

ByteBuffer BufferPool::Acquire() {
  std::lock_guard<std::mutex> lock(mu_);
  if (outstanding_) outstanding_->Add(1);
  if (!free_.empty()) {
    ByteBuffer buf = std::move(free_.back().buffer);
    free_.pop_back();
    free_bytes_ -= buf.Capacity();
    if (free_bytes_gauge_) {
      free_bytes_gauge_->Set(static_cast<int64_t>(free_bytes_));
    }
    if (hits_) hits_->Add(1);
    return buf;
  }
  if (misses_) misses_->Add(1);
  return ByteBuffer();
}

void BufferPool::Release(ByteBuffer buffer) {
  buffer.ConsumeAll();
  buffer.ShrinkToFit();
  const size_t cap = buffer.Capacity();
  std::lock_guard<std::mutex> lock(mu_);
  if (outstanding_) outstanding_->Add(-1);
  if (free_.size() >= max_pooled_ ||
      (max_pooled_bytes_ > 0 && free_bytes_ + cap > max_pooled_bytes_)) {
    return;  // over a cap: drop to the allocator
  }
  free_.push_back(PooledBuffer{std::move(buffer), Now()});
  free_bytes_ += cap;
  if (free_bytes_gauge_) {
    free_bytes_gauge_->Set(static_cast<int64_t>(free_bytes_));
  }
}

size_t BufferPool::TrimIdle(Duration max_age) {
  const TimePoint cutoff = Now() - max_age;
  size_t dropped = 0;
  std::lock_guard<std::mutex> lock(mu_);
  while (!free_.empty() && free_.front().released <= cutoff) {
    free_bytes_ -= free_.front().buffer.Capacity();
    free_.pop_front();
    ++dropped;
  }
  if (dropped > 0) {
    if (trimmed_) trimmed_->Add(dropped);
    if (free_bytes_gauge_) {
      free_bytes_gauge_->Set(static_cast<int64_t>(free_bytes_));
    }
  }
  return dropped;
}

size_t BufferPool::FreeCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return free_.size();
}

size_t BufferPool::FreeBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return free_bytes_;
}

}  // namespace hynet
