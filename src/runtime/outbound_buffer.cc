#include "runtime/outbound_buffer.h"

#include <limits.h>

#include <algorithm>

#include "net/socket.h"

namespace hynet {
namespace {

// Stack-allocated iovec batch per syscall. IOV_MAX (1024 on Linux) is the
// hard kernel cap; 128 entries ≈ 42 pipelined responses per syscall, past
// which another syscall costs nothing measurable.
constexpr size_t kIovBatch = std::min<size_t>(IOV_MAX, 128);

}  // namespace

void OutboundBuffer::Add(Payload payload, size_t offset) {
  pending_bytes_ += payload.size() - offset;
  pending_.push_back(Node{std::move(payload), offset});
}

FlushResult OutboundBuffer::Flush(int fd, WriteStats& stats,
                                  HistogramMetric* writes_hist) {
  int spins = 0;
  while (!pending_.empty()) {
    // Complete zero-byte messages without a syscall (a zero-length send
    // would read as a kernel-buffer-full signal).
    if (pending_.front().offset >= pending_.front().payload.size()) {
      if (writes_hist) writes_hist->Record(pending_.front().writes);
      pending_.pop_front();
      stats.responses.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (spin_cap_ > 0 && spins >= spin_cap_) {
      stats.spin_capped.fetch_add(1, std::memory_order_relaxed);
      return FlushResult::kSpinCapped;
    }

    // Assemble one iovec batch across queued messages, front first.
    struct iovec iov[kIovBatch];
    size_t niov = 0;
    for (const Node& node : pending_) {
      if (niov >= kIovBatch) break;
      niov += node.payload.FillIov(node.offset, iov + niov, kIovBatch - niov);
    }

    const IoResult r = WritevFd(fd, iov, static_cast<int>(niov));
    stats.write_calls.fetch_add(1, std::memory_order_relaxed);
    stats.writev_calls.fetch_add(1, std::memory_order_relaxed);
    stats.iov_segments.fetch_add(niov, std::memory_order_relaxed);
    spins++;

    if (r.WouldBlock() || r.n == 0) {
      stats.zero_writes.fetch_add(1, std::memory_order_relaxed);
      return FlushResult::kWouldBlock;
    }
    if (r.Fatal()) return FlushResult::kError;

    size_t written = static_cast<size_t>(r.n);
    pending_bytes_ -= written;
    // Attribute the syscall to the messages it moved bytes of, completing
    // fully-drained ones.
    while (written > 0 && !pending_.empty()) {
      Node& node = pending_.front();
      const size_t remaining = node.payload.size() - node.offset;
      const size_t take = std::min(remaining, written);
      node.offset += take;
      written -= take;
      node.writes++;
      if (node.offset < node.payload.size()) break;  // partial; resume later
      if (writes_hist) writes_hist->Record(node.writes);
      pending_.pop_front();
      stats.responses.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return FlushResult::kDone;
}

}  // namespace hynet
