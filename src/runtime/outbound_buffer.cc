#include "runtime/outbound_buffer.h"

#include "net/socket.h"

namespace hynet {

void OutboundBuffer::Add(std::string message) {
  pending_bytes_ += message.size();
  pending_.push_back(Node{std::move(message), 0});
}

FlushResult OutboundBuffer::Flush(int fd, WriteStats& stats,
                                  HistogramMetric* writes_hist) {
  int spins = 0;
  while (!pending_.empty()) {
    if (spin_cap_ > 0 && spins >= spin_cap_) {
      stats.spin_capped.fetch_add(1, std::memory_order_relaxed);
      return FlushResult::kSpinCapped;
    }
    Node& node = pending_.front();
    const size_t remaining = node.data.size() - node.offset;
    const IoResult r = WriteFd(fd, node.data.data() + node.offset, remaining);
    stats.write_calls.fetch_add(1, std::memory_order_relaxed);
    spins++;
    node.writes++;

    if (r.WouldBlock() || r.n == 0) {
      stats.zero_writes.fetch_add(1, std::memory_order_relaxed);
      return FlushResult::kWouldBlock;
    }
    if (r.Fatal()) return FlushResult::kError;

    node.offset += static_cast<size_t>(r.n);
    pending_bytes_ -= static_cast<size_t>(r.n);
    if (node.offset == node.data.size()) {
      if (writes_hist) writes_hist->Record(node.writes);
      pending_.pop_front();
      stats.responses.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return FlushResult::kDone;
}

}  // namespace hynet
