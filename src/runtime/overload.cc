#include "runtime/overload.h"

#include <algorithm>

namespace hynet {

QueueDelayShedder::QueueDelayShedder(int target_ms, int interval_ms)
    : target_ns_(static_cast<int64_t>(target_ms) * 1'000'000),
      interval_ns_(static_cast<int64_t>(interval_ms > 0 ? interval_ms : 1) *
                   1'000'000),
      retry_after_sec_(std::max(1, ((interval_ms > 0 ? interval_ms : 1) + 999) /
                                       1000)) {}

bool QueueDelayShedder::ShouldShed(Duration sojourn) {
  const int64_t sojourn_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(sojourn).count();

  if (sojourn_ns < target_ns_) {
    // One prompt dispatch ends the excursion and the shedding state — the
    // queue has drained back under target (CoDel's exit condition).
    first_above_ns_.store(0, std::memory_order_relaxed);
    shedding_.store(false, std::memory_order_relaxed);
    return false;
  }

  const int64_t now_ns = NowNanos();
  int64_t first = first_above_ns_.load(std::memory_order_relaxed);
  if (first == 0) {
    // First above-target observation: open the excursion window. A racing
    // store just moves the window start by nanoseconds; harmless.
    first_above_ns_.compare_exchange_strong(first, now_ns,
                                            std::memory_order_relaxed);
    first = now_ns;
  }

  if (!shedding_.load(std::memory_order_relaxed)) {
    if (now_ns - first < interval_ns_) return false;  // tolerated burst
    shedding_.store(true, std::memory_order_relaxed);
  }
  sheds_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

}  // namespace hynet
