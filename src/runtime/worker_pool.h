// Fixed-size worker thread pool fed by a blocking queue.
//
// Used as the "event handling phase" thread pool of the reactor+pool
// architectures (sTomcat-Async / -Fix). The blocking handoff is the source
// of the context switches the paper measures, so the pool deliberately uses
// a condvar-based queue rather than spinning consumers.
//
// Options tune the dispatch path without changing its semantics at the
// defaults: max_pop_batch > 1 lets each worker drain a batch of tasks per
// condvar wake (amortizing the handoff), SubmitBatch publishes many tasks
// under one wake, and pin_cpu_base >= 0 pins worker i to cpu base+i.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/queue.h"
#include "common/thread_util.h"

namespace hynet {

class WorkerPool {
 public:
  using Task = std::function<void()>;

  struct Options {
    // Max tasks a worker pops per condvar wake. 1 = the paper-faithful
    // one-handoff-per-task flow (byte-identical to the unbatched pool).
    size_t max_pop_batch = 1;
    // Pin worker i to cpu (pin_cpu_base + i); negative = no pinning.
    int pin_cpu_base = -1;
  };

  WorkerPool(int num_threads, std::string name);
  WorkerPool(int num_threads, std::string name, Options options);
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  void Submit(Task task);

  // Publishes all tasks with a single lock hold + single consumer wake.
  void SubmitBatch(std::vector<Task> tasks);

  // Mirrors the feed-queue depth into `gauge` (see BlockingQueue).
  void BindQueueDepthGauge(Gauge* gauge) { queue_.BindDepthGauge(gauge); }

  // Stops accepting work and joins all workers (drains remaining tasks).
  void Shutdown();

  // Linux tids of the worker threads (valid after construction returns).
  std::vector<int> ThreadIds() const;

  int Size() const { return num_threads_; }

 private:
  void WorkerMain(int index);

  int num_threads_;
  std::string name_;
  Options options_;
  BlockingQueue<Task> queue_;
  ThreadGroup threads_;
  std::vector<int> tids_;
  mutable std::mutex tid_mu_;
  std::condition_variable tid_cv_;
};

}  // namespace hynet
