// Fixed-size worker thread pool fed by a blocking queue.
//
// Used as the "event handling phase" thread pool of the reactor+pool
// architectures (sTomcat-Async / -Fix). The blocking handoff is the source
// of the context switches the paper measures, so the pool deliberately uses
// a condvar-based queue rather than spinning consumers.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/queue.h"
#include "common/thread_util.h"

namespace hynet {

class WorkerPool {
 public:
  using Task = std::function<void()>;

  WorkerPool(int num_threads, std::string name);
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  void Submit(Task task);

  // Stops accepting work and joins all workers (drains remaining tasks).
  void Shutdown();

  // Linux tids of the worker threads (valid after construction returns).
  std::vector<int> ThreadIds() const;

  int Size() const { return num_threads_; }

 private:
  void WorkerMain(int index);

  int num_threads_;
  std::string name_;
  BlockingQueue<Task> queue_;
  ThreadGroup threads_;
  std::vector<int> tids_;
  mutable std::mutex tid_mu_;
  std::condition_variable tid_cv_;
};

}  // namespace hynet
