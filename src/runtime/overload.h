// Adaptive load shedding on queue delay (CoDel-style admission control).
//
// The count-based max_connections cap says how many peers are admitted;
// it says nothing about whether admitted work is still timely. The real
// saturation signal is *sojourn time*: how long a request waited between
// becoming ready and its handler running. Following CoDel's controller
// shape, transient bursts are tolerated — shedding starts only when the
// sojourn has stayed above `target` for a whole `interval` — and stops the
// moment one request gets through under target again. While shedding, only
// requests whose own sojourn exceeds the target are rejected (503 +
// Retry-After); fresh requests that happen to be dispatched promptly are
// still served, so the shedder degrades throughput smoothly instead of
// slamming the door.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/clock.h"

namespace hynet {

class QueueDelayShedder {
 public:
  // `target_ms`: acceptable standing queue delay. `interval_ms`: how long
  // the delay must stay above target before shedding engages (CoDel's
  // estimator interval).
  QueueDelayShedder(int target_ms, int interval_ms);

  // Records one sojourn observation and decides whether the request it
  // belongs to should be shed. Called on handler threads; lock-free.
  bool ShouldShed(Duration sojourn);

  // True while the controller is in the shedding state (exported through
  // /healthz as `overloaded`).
  bool Overloaded() const {
    return shedding_.load(std::memory_order_relaxed);
  }

  uint64_t ShedCount() const {
    return sheds_.load(std::memory_order_relaxed);
  }

  // The Retry-After hint (seconds, >= 1) sent with shed responses: the
  // estimator interval rounded up — retrying sooner than one interval
  // cannot observe a state change.
  int RetryAfterSec() const { return retry_after_sec_; }

 private:
  const int64_t target_ns_;
  const int64_t interval_ns_;
  const int retry_after_sec_;

  // Nanos timestamp of the first above-target observation in the current
  // excursion; 0 = the delay is (or was last seen) below target.
  std::atomic<int64_t> first_above_ns_{0};
  std::atomic<bool> shedding_{false};
  std::atomic<uint64_t> sheds_{0};
};

}  // namespace hynet
