#include "runtime/circuit_breaker.h"

#include <algorithm>

namespace hynet {

CircuitBreaker::CircuitBreaker(CircuitBreakerConfig config)
    : config_(config),
      bucket_ns_(std::max<int64_t>(
          1, static_cast<int64_t>(config.window_ms) * 1'000'000 / kBuckets)) {}

CircuitBreaker::Bucket& CircuitBreaker::CurrentBucket(int64_t now_ns) {
  const int64_t epoch = now_ns / bucket_ns_;
  Bucket& b = buckets_[static_cast<size_t>(epoch % kBuckets)];
  if (b.epoch != epoch) {
    b.epoch = epoch;
    b.ok = 0;
    b.fail = 0;
  }
  return b;
}

void CircuitBreaker::WindowTotals(int64_t now_ns, uint64_t& ok,
                                  uint64_t& fail) {
  ok = fail = 0;
  const int64_t newest = now_ns / bucket_ns_;
  for (const Bucket& b : buckets_) {
    if (b.epoch < 0 || newest - b.epoch >= kBuckets) continue;  // stale
    ok += b.ok;
    fail += b.fail;
  }
}

void CircuitBreaker::TripLocked(int64_t now_ns) {
  state_ = State::kOpen;
  opened_at_ns_ = now_ns;
  probes_in_flight_ = 0;
  trips_++;
}

bool CircuitBreaker::Allow() {
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t now_ns = NowNanos();
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (now_ns - opened_at_ns_ <
          static_cast<int64_t>(config_.open_ms) * 1'000'000) {
        return false;
      }
      state_ = State::kHalfOpen;
      probes_in_flight_ = 0;
      [[fallthrough]];
    case State::kHalfOpen:
      if (probes_in_flight_ >= std::max(1, config_.half_open_probes)) {
        return false;
      }
      probes_in_flight_++;
      return true;
  }
  return true;
}

void CircuitBreaker::OnSuccess() {
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t now_ns = NowNanos();
  if (state_ == State::kHalfOpen) {
    // The probe got through: close and forget the window that tripped us.
    state_ = State::kClosed;
    probes_in_flight_ = 0;
    buckets_.fill(Bucket{});
    return;
  }
  CurrentBucket(now_ns).ok++;
}

void CircuitBreaker::OnFailure() {
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t now_ns = NowNanos();
  if (state_ == State::kHalfOpen) {
    TripLocked(now_ns);  // probe failed: another full open period
    return;
  }
  if (state_ == State::kOpen) return;  // late failure from before the trip
  Bucket& b = CurrentBucket(now_ns);
  b.fail++;
  uint64_t ok = 0, fail = 0;
  WindowTotals(now_ns, ok, fail);
  const uint64_t total = ok + fail;
  if (total >= static_cast<uint64_t>(std::max(1, config_.min_requests)) &&
      static_cast<double>(fail) >=
          config_.failure_ratio * static_cast<double>(total)) {
    TripLocked(now_ns);
  }
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

uint64_t CircuitBreaker::Trips() const {
  std::lock_guard<std::mutex> lock(mu_);
  return trips_;
}

}  // namespace hynet
