// Per-tier circuit-breaker hooks for the 3-tier system.
//
// A tier's handler is built before its Server exists (CreateServer takes
// the finished handler), but the breaker's state and degraded-response
// counts belong in that Server's lifecycle stats. This wrapper closes the
// loop: the handler captures a TierResilience*, and the tier wiring binds
// the Server's LifecycleStats right after CreateServer returns — before
// Start(), so no request can observe the unbound window.
#pragma once

#include <atomic>

#include "runtime/circuit_breaker.h"
#include "runtime/dispatch_stats.h"

namespace hynet::rubbos {

class TierResilience {
 public:
  explicit TierResilience(const CircuitBreakerConfig& config)
      : breaker_(config) {}

  // `lifecycle` must outlive this object (the tier owns both).
  void BindLifecycle(LifecycleStats* lifecycle) {
    lifecycle_.store(lifecycle, std::memory_order_release);
    PublishState();
  }

  // Gate before calling the guarded downstream. False = breaker open:
  // serve the degraded fallback instead.
  bool Allow() {
    const bool allowed = breaker_.Allow();
    PublishState();
    return allowed;
  }

  // Outcome of one guarded downstream call.
  void Record(bool success) {
    if (success) {
      breaker_.OnSuccess();
    } else {
      breaker_.OnFailure();
    }
    PublishState();
  }

  void CountDegraded() {
    if (auto* l = lifecycle_.load(std::memory_order_acquire)) {
      l->degraded_responses.fetch_add(1, std::memory_order_relaxed);
    }
  }

  CircuitBreaker::State state() const { return breaker_.state(); }
  uint64_t Trips() const { return breaker_.Trips(); }

 private:
  void PublishState() {
    if (auto* l = lifecycle_.load(std::memory_order_acquire)) {
      l->breaker_state.store(static_cast<uint64_t>(breaker_.state()),
                             std::memory_order_relaxed);
    }
  }

  CircuitBreaker breaker_;
  std::atomic<LifecycleStats*> lifecycle_{nullptr};
};

}  // namespace hynet::rubbos
