#include "rubbos/db_client.h"

#include <stdexcept>
#include <thread>

#include "common/bytes.h"
#include "net/socket.h"
#include "proto/http_codec.h"
#include "proto/http_parser.h"

namespace hynet::rubbos {

struct DbConnectionPool::PooledConn {
  ScopedFd fd;
  ByteBuffer in;
  HttpResponseParser parser;
};

DbConnectionPool::DbConnectionPool(const InetAddr& server, int pool_size)
    : server_(server), max_size_(pool_size) {}

DbConnectionPool::~DbConnectionPool() = default;

std::unique_ptr<DbConnectionPool::PooledConn> DbConnectionPool::Connect() {
  Socket sock = Socket::CreateTcp(/*nonblocking=*/false);
  sock.Connect(server_);
  sock.SetNoDelay(true);
  auto conn = std::make_unique<PooledConn>();
  conn->fd = sock.TakeFd();
  return conn;
}

std::unique_ptr<DbConnectionPool::PooledConn> DbConnectionPool::Borrow() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    if (!idle_.empty()) {
      auto conn = std::move(idle_.back());
      idle_.pop_back();
      return conn;
    }
    if (total_ < max_size_) {
      total_++;
      lock.unlock();
      try {
        return Connect();
      } catch (...) {
        lock.lock();
        total_--;
        throw;
      }
    }
    cv_.wait(lock);
  }
}

void DbConnectionPool::Return(std::unique_ptr<PooledConn> conn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    idle_.push_back(std::move(conn));
  }
  cv_.notify_one();
}

void DbConnectionPool::EnableRetries(const RetryPolicyConfig& config,
                                     uint64_t seed) {
  retry_ = std::make_unique<RetryPolicy>(config, seed);
  if (lifecycle_) retry_->BindLifecycle(lifecycle_);
}

void DbConnectionPool::BindLifecycle(LifecycleStats* lifecycle) {
  lifecycle_ = lifecycle;
  if (retry_) retry_->BindLifecycle(lifecycle);
}

namespace {

HttpResponse DeadlineExpired504() {
  HttpResponse resp;
  resp.status = 504;
  resp.reason = "Gateway Timeout";
  resp.body = "deadline expired\n";
  return resp;
}

int RetryAfterSeconds(const HttpResponse& resp) {
  const std::string_view v = resp.Header("Retry-After");
  if (v.empty()) return 0;
  int sec = 0;
  for (const char c : v) {
    if (c < '0' || c > '9') return 0;
    sec = sec * 10 + (c - '0');
  }
  return sec;
}

}  // namespace

HttpResponse DbConnectionPool::Query(const std::string& target) {
  const Deadline deadline =
      deadline_propagation_ ? CurrentRequestDeadline() : Deadline();
  if (deadline.valid() && deadline.Expired()) {
    // The caller's budget is gone: a wire round trip is dead work for
    // both tiers. Fail fast without borrowing a connection.
    if (lifecycle_) {
      lifecycle_->deadline_expired.fetch_add(1, std::memory_order_relaxed);
    }
    return DeadlineExpired504();
  }

  HttpResponse resp = QueryOnce(target, deadline);
  if (retry_) {
    // Anything under /q/insert mutates the dataset; a retry could apply
    // the write twice, so only read queries are eligible.
    const bool idempotent = target.rfind("/q/insert", 0) != 0;
    for (int attempt = 1; RetryableStatus(resp.status); ++attempt) {
      const auto delay = retry_->NextRetryDelay(attempt, idempotent,
                                                RetryAfterSeconds(resp));
      if (!delay) break;
      if (deadline.valid() && Now() + *delay >= deadline.at()) break;
      std::this_thread::sleep_for(*delay);
      resp = QueryOnce(target, deadline);
    }
    if (resp.status < 400) retry_->OnSuccess();
  }
  return resp;
}

HttpResponse DbConnectionPool::QueryOnce(const std::string& target,
                                         const Deadline& deadline) {
  auto conn = Borrow();
  try {
    std::string request;
    if (deadline.valid()) {
      if (deadline.Expired()) {
        // Budget ran out while waiting for a pooled connection.
        Return(std::move(conn));
        if (lifecycle_) {
          lifecycle_->deadline_expired.fetch_add(1, std::memory_order_relaxed);
        }
        return DeadlineExpired504();
      }
      request = BuildGetRequest(
          target, {{std::string(kDeadlineHeader),
                    std::to_string(deadline.RemainingMillis())}});
    } else {
      request = BuildGetRequest(target);
    }

    // Blocking write of the query (one reconnect attempt on a dead conn).
    size_t off = 0;
    while (off < request.size()) {
      const IoResult r = WriteFd(conn->fd.get(), request.data() + off,
                                 request.size() - off);
      if (r.Fatal()) {
        conn = Connect();
        off = 0;
        continue;
      }
      off += static_cast<size_t>(r.n);
    }

    // Blocking read until a full response parses.
    char buf[16 * 1024];
    while (true) {
      const ParseStatus st = conn->parser.Parse(conn->in);
      if (st == ParseStatus::kComplete) break;
      if (st == ParseStatus::kError) {
        throw std::runtime_error("db response parse error");
      }
      const IoResult r = ReadFd(conn->fd.get(), buf, sizeof(buf));
      if (r.Eof() || r.Fatal()) {
        throw std::runtime_error("db connection lost mid-response");
      }
      conn->in.Append(buf, static_cast<size_t>(r.n));
    }

    HttpResponse resp = conn->parser.response();
    {
      std::lock_guard<std::mutex> lock(mu_);
      queries_++;
    }
    Return(std::move(conn));
    return resp;
  } catch (...) {
    // The connection died and will not be returned: shrink the accounted
    // pool size so Borrow() can open a replacement instead of waiting for
    // a Return() that never comes.
    {
      std::lock_guard<std::mutex> lock(mu_);
      total_--;
    }
    cv_.notify_one();
    throw;
  }
}

uint64_t DbConnectionPool::QueriesIssued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queries_;
}

}  // namespace hynet::rubbos
