// Blocking connection-pool client for the DB tier (JDBC stand-in).
//
// Both Tomcat versions in the paper keep the database access path
// synchronous (JDBC), so the app tier uses this blocking pool regardless of
// its own connector architecture. Each Query() borrows a pooled persistent
// connection, performs a blocking request/response round trip, and returns
// the connection.
#pragma once

#include <condition_variable>
#include <mutex>
#include <string>
#include <vector>

#include "common/fd.h"
#include "net/inet_addr.h"
#include "proto/http_message.h"

namespace hynet::rubbos {

class DbConnectionPool {
 public:
  DbConnectionPool(const InetAddr& server, int pool_size);
  ~DbConnectionPool();
  DbConnectionPool(const DbConnectionPool&) = delete;
  DbConnectionPool& operator=(const DbConnectionPool&) = delete;

  // Blocking query. Throws std::system_error on connection failure.
  HttpResponse Query(const std::string& target);

  uint64_t QueriesIssued() const;

 private:
  struct PooledConn;

  std::unique_ptr<PooledConn> Borrow();
  // (Borrow/Return pair is exception-guarded inside Query.)
  void Return(std::unique_ptr<PooledConn> conn);
  std::unique_ptr<PooledConn> Connect();

  InetAddr server_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::unique_ptr<PooledConn>> idle_;
  int total_ = 0;
  int max_size_ = 0;
  uint64_t queries_ = 0;
};

}  // namespace hynet::rubbos
