// Blocking connection-pool client for the DB tier (JDBC stand-in).
//
// Both Tomcat versions in the paper keep the database access path
// synchronous (JDBC), so the app tier uses this blocking pool regardless of
// its own connector architecture. Each Query() borrows a pooled persistent
// connection, performs a blocking request/response round trip, and returns
// the connection.
#pragma once

#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "client/retry.h"
#include "common/deadline.h"
#include "common/fd.h"
#include "net/inet_addr.h"
#include "proto/http_message.h"
#include "runtime/dispatch_stats.h"

namespace hynet::rubbos {

class DbConnectionPool {
 public:
  DbConnectionPool(const InetAddr& server, int pool_size);
  ~DbConnectionPool();
  DbConnectionPool(const DbConnectionPool&) = delete;
  DbConnectionPool& operator=(const DbConnectionPool&) = delete;

  // Blocking query. Throws std::system_error on connection failure.
  //
  // With deadline propagation enabled, a query issued by a handler whose
  // CurrentRequestDeadline() has already expired returns a synthesized 504
  // without touching the wire, and live queries forward the remaining
  // budget downstream as X-Hynet-Deadline-Ms. With retries enabled,
  // retryable failures (503) are retried under the policy's backoff and
  // budget — idempotent targets only (anything under /q/insert is not).
  HttpResponse Query(const std::string& target);

  // Honor and forward the calling request's deadline on every Query.
  void EnableDeadlinePropagation() { deadline_propagation_ = true; }

  // Retry shed queries under `config`. Call before the pool is shared
  // across threads (startup wiring).
  void EnableRetries(const RetryPolicyConfig& config, uint64_t seed);

  // Mirrors this pool's deadline/retry counters into the owning tier's
  // lifecycle stats (may be null to unbind; must outlive the pool).
  void BindLifecycle(LifecycleStats* lifecycle);

  uint64_t QueriesIssued() const;

 private:
  struct PooledConn;

  std::unique_ptr<PooledConn> Borrow();
  // (Borrow/Return pair is exception-guarded inside Query.)
  void Return(std::unique_ptr<PooledConn> conn);
  std::unique_ptr<PooledConn> Connect();
  HttpResponse QueryOnce(const std::string& target, const Deadline& deadline);

  InetAddr server_;
  bool deadline_propagation_ = false;
  std::unique_ptr<RetryPolicy> retry_;
  LifecycleStats* lifecycle_ = nullptr;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::unique_ptr<PooledConn>> idle_;
  int total_ = 0;
  int max_size_ = 0;
  uint64_t queries_ = 0;
};

}  // namespace hynet::rubbos
