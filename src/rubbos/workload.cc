#include "rubbos/workload.h"

#include <memory>
#include <unordered_map>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/logging.h"
#include "common/rng.h"
#include "net/event_loop.h"
#include "net/socket.h"
#include "proto/http_codec.h"
#include "proto/http_parser.h"
#include "rubbos/app_logic.h"

namespace hynet::rubbos {
namespace {

struct EmulatedUser {
  int id = 0;
  ScopedFd fd;
  ByteBuffer in;
  HttpResponseParser parser;
  std::string out;
  size_t out_off = 0;
  TimePoint send_time{};
  size_t current_interaction = 0;  // Markov state
  bool thinking = true;
  bool dead = false;
};

class UserDriver {
 public:
  explicit UserDriver(const RubbosWorkloadConfig& config)
      : config_(config), rng_(config.seed) {
    double total = 0;
    for (const auto& ix : kInteractions) total += ix.weight;
    for (const auto& ix : kInteractions) {
      cumulative_.push_back((cumulative_.empty() ? 0.0 : cumulative_.back()) +
                            ix.weight / total);
    }
  }

  RubbosWorkloadResult Run() {
    for (int i = 0; i < config_.users; ++i) SpawnUser(i);

    loop_.RunAfter(std::chrono::duration_cast<Duration>(
                       std::chrono::duration<double>(config_.warmup_sec)),
                   [this] {
                     measuring_ = true;
                     measure_start_ = Now();
                     if (config_.on_measure_start) config_.on_measure_start();
                     loop_.RunAfter(
                         std::chrono::duration_cast<Duration>(
                             std::chrono::duration<double>(
                                 config_.measure_sec)),
                         [this] {
                           measuring_ = false;
                           measure_end_ = Now();
                           if (config_.on_measure_end) {
                             config_.on_measure_end();
                           }
                           loop_.Stop();
                         });
                   });
    loop_.Run();
    result_.elapsed_sec = ToSeconds(measure_end_ - measure_start_);
    return std::move(result_);
  }

 private:
  void SpawnUser(int id) {
    auto user = std::make_shared<EmulatedUser>();
    user->id = id;
    Socket sock = Socket::CreateTcp(/*nonblocking=*/false);
    sock.Connect(config_.front);
    sock.SetNonBlocking(true);
    sock.SetNoDelay(true);
    user->fd = sock.TakeFd();
    users_[user->fd.get()] = user;
    loop_.RegisterFd(user->fd.get(), EPOLLIN,
                     [this, user](uint32_t events) { OnEvent(user, events); });
    // Desynchronized start: a uniformly random initial think avoids a
    // thundering herd at t=0.
    ScheduleNextRequest(user,
                        rng_.NextDouble() * config_.think_time_sec);
  }

  void ScheduleNextRequest(const std::shared_ptr<EmulatedUser>& user,
                           double delay_sec) {
    user->thinking = true;
    loop_.RunAfter(std::chrono::duration_cast<Duration>(
                       std::chrono::duration<double>(delay_sec)),
                   [this, user] { SendRequest(user); });
  }

  void SendRequest(const std::shared_ptr<EmulatedUser>& user) {
    if (user->dead) return;
    user->thinking = false;
    // Markov step: the stationary mix approximates RUBBoS's transition
    // matrix; state only influences the story/page ids requested.
    user->current_interaction = PickInteraction();
    const int story = static_cast<int>(rng_.NextBounded(200));
    const int page = static_cast<int>(rng_.NextBounded(10));
    user->out = BuildGetRequest(
        InteractionTarget(user->current_interaction, story, user->id, page));
    user->out_off = 0;
    user->send_time = Now();
    WritePending(user);
  }

  size_t PickInteraction() {
    const double u = rng_.NextDouble();
    for (size_t i = 0; i < cumulative_.size(); ++i) {
      if (u < cumulative_[i]) return i;
    }
    return cumulative_.size() - 1;
  }

  void WritePending(const std::shared_ptr<EmulatedUser>& user) {
    while (user->out_off < user->out.size()) {
      const IoResult r =
          WriteFd(user->fd.get(), user->out.data() + user->out_off,
                  user->out.size() - user->out_off);
      if (r.WouldBlock()) {
        loop_.ModifyFd(user->fd.get(), EPOLLIN | EPOLLOUT);
        return;
      }
      if (r.Fatal()) {
        HandleError(user);
        return;
      }
      user->out_off += static_cast<size_t>(r.n);
    }
  }

  void OnEvent(const std::shared_ptr<EmulatedUser>& user, uint32_t events) {
    if (user->dead) return;
    if (events & (EPOLLHUP | EPOLLERR)) {
      HandleError(user);
      return;
    }
    if (events & EPOLLOUT) {
      WritePending(user);
      if (user->dead) return;
      if (user->out_off >= user->out.size()) {
        loop_.ModifyFd(user->fd.get(), EPOLLIN);
      }
    }
    if (!(events & EPOLLIN)) return;

    char buf[16 * 1024];
    while (true) {
      const IoResult r = ReadFd(user->fd.get(), buf, sizeof(buf));
      if (r.WouldBlock()) break;
      if (r.Eof() || r.Fatal()) {
        HandleError(user);
        return;
      }
      user->in.Append(buf, static_cast<size_t>(r.n));
      if (static_cast<size_t>(r.n) < sizeof(buf)) break;
    }

    const ParseStatus st = user->parser.Parse(user->in);
    if (st == ParseStatus::kNeedMore) return;
    if (st == ParseStatus::kError) {
      HandleError(user);
      return;
    }
    if (measuring_) {
      result_.completed++;
      result_.response_time.Record(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              Now() - user->send_time)
              .count());
    }
    ScheduleNextRequest(user,
                        rng_.NextExponential(config_.think_time_sec));
  }

  void HandleError(const std::shared_ptr<EmulatedUser>& user) {
    if (user->dead) return;
    user->dead = true;
    result_.errors++;
    loop_.UnregisterFd(user->fd.get());
    users_.erase(user->fd.get());
    const int id = user->id;
    if (result_.errors < 200) {
      try {
        SpawnUser(id);  // keep the emulated population constant
      } catch (const std::exception& e) {
        HYNET_LOG(ERROR) << "user respawn failed: " << e.what();
        loop_.Stop();
      }
    } else {
      HYNET_LOG(ERROR) << "too many user errors; stopping workload";
      loop_.Stop();
    }
  }

  const RubbosWorkloadConfig& config_;
  Rng rng_;
  EventLoop loop_;
  std::vector<double> cumulative_;
  std::unordered_map<int, std::shared_ptr<EmulatedUser>> users_;
  RubbosWorkloadResult result_;
  bool measuring_ = false;
  TimePoint measure_start_{};
  TimePoint measure_end_{};
};

}  // namespace

RubbosWorkloadResult RunRubbosWorkload(const RubbosWorkloadConfig& config) {
  UserDriver driver(config);
  return driver.Run();
}

}  // namespace hynet::rubbos
