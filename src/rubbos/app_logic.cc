#include "rubbos/app_logic.h"

#include <cstdio>
#include <memory>

#include "common/thread_util.h"

namespace hynet::rubbos {

// RUBBoS interaction mix (modeled after the benchmark's 24 web
// interactions; weights follow its browse-heavy default workload where
// read-only page views dominate and author/moderator actions are rare).
const std::array<Interaction, kInteractionCount> kInteractions = {{
    //  name                     weight  sl sd cm us se in  cpu_us  html
    {"StoriesOfTheDay",           0.130, 1, 0, 0, 0, 0, 0,  220, 16 * 1024},
    {"BrowseCategories",          0.060, 1, 0, 0, 0, 0, 0,  120,  8 * 1024},
    {"BrowseStoriesByCategory",   0.100, 1, 0, 0, 0, 0, 0,  180, 14 * 1024},
    {"OlderStories",              0.070, 1, 0, 0, 0, 0, 0,  160, 14 * 1024},
    {"ViewStory",                 0.200, 0, 1, 1, 0, 0, 0,  260, 18 * 1024},
    {"ViewComment",               0.080, 0, 0, 1, 0, 0, 0,  140, 10 * 1024},
    {"CommentsOfTheDay",          0.040, 0, 0, 1, 0, 0, 0,  150, 12 * 1024},
    {"ViewUserInfo",              0.030, 0, 0, 0, 1, 0, 0,   90,  6 * 1024},
    {"ViewPageOfComments",        0.050, 0, 0, 2, 0, 0, 0,  200, 22 * 1024},
    {"Search",                    0.040, 0, 0, 0, 0, 1, 0,  240, 12 * 1024},
    {"SearchInStories",           0.025, 0, 0, 0, 0, 1, 0,  240, 12 * 1024},
    {"SearchInComments",          0.015, 0, 0, 0, 0, 1, 0,  260, 12 * 1024},
    {"SearchInUsers",             0.010, 0, 0, 0, 0, 1, 0,  180,  6 * 1024},
    {"PostComment",               0.030, 0, 1, 0, 1, 0, 0,  160, 10 * 1024},
    {"StoreComment",              0.030, 0, 0, 0, 0, 0, 1,  140,  2 * 1024},
    {"RegisterUser",              0.005, 0, 0, 0, 1, 0, 0,  120,  4 * 1024},
    {"BrowseStoriesByDate",       0.040, 1, 0, 0, 0, 0, 0,  170, 14 * 1024},
    {"SubmitStory",               0.010, 0, 0, 0, 1, 0, 0,  140,  6 * 1024},
    {"StoreStory",                0.010, 0, 0, 0, 0, 0, 1,  180,  2 * 1024},
    {"ReviewStories",             0.008, 1, 0, 0, 0, 0, 0,  200, 16 * 1024},
    {"AcceptStory",               0.005, 0, 1, 0, 0, 0, 1,  160,  2 * 1024},
    {"RejectStory",               0.004, 0, 1, 0, 0, 0, 1,  140,  2 * 1024},
    {"ModerateComment",           0.005, 0, 0, 1, 1, 0, 0,  150,  6 * 1024},
    {"StoreModerateLog",          0.003, 0, 0, 0, 0, 0, 1,  120,  2 * 1024},
}};

size_t InteractionIndex(std::string_view name) {
  for (size_t i = 0; i < kInteractions.size(); ++i) {
    if (name == kInteractions[i].name) return i;
  }
  return kInteractionCount;
}

std::string InteractionTarget(size_t index, int story, int user, int page) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "/rubbos?type=%s&s=%d&u=%d&page=%d",
                kInteractions[index % kInteractionCount].name, story, user,
                page);
  return buf;
}

hynet::Handler BuildRubbosHandler(DbConnectionPool& pool,
                                  double cpu_multiplier,
                                  TierResilience* resilience) {
  // The template scaffolding of each interaction is identical across
  // requests — render it once and let every response share the allocation
  // (resp.shared_body is referenced by the outbound Payload, not copied).
  auto scaffolds = std::make_shared<
      std::array<std::shared_ptr<const std::string>, kInteractionCount>>();
  for (size_t i = 0; i < kInteractionCount; ++i) {
    (*scaffolds)[i] = std::make_shared<const std::string>(
        std::string(kInteractions[i].html_bytes, 'h'));
  }
  return [&pool, cpu_multiplier, scaffolds, resilience](
             const HttpRequest& req, HttpResponse& resp) {
    const size_t index = InteractionIndex(req.QueryParam("type"));
    if (index >= kInteractionCount) {
      resp.status = 404;
      resp.reason = "Not Found";
      resp.body = "unknown interaction";
      return;
    }
    const Interaction& ix = kInteractions[index];
    const int story = static_cast<int>(req.QueryParamInt("s", 0));
    const int user = static_cast<int>(req.QueryParamInt("u", 0));
    const int page = static_cast<int>(req.QueryParamInt("page", 0));

    if (resilience && !resilience->Allow()) {
      // DB breaker open: serve the scaffold without its dynamic content
      // instead of piling more queries onto a failing tier.
      resilience->CountDegraded();
      resp.shared_body = (*scaffolds)[index];
      resp.SetHeader("Content-Type", "text/html");
      resp.SetHeader("X-Hynet-Degraded", "db");
      return;
    }

    // Execute the query plan against the DB tier (blocking, like JDBC).
    // One failed query abandons the rest of the plan: the page is already
    // broken, so the remaining queries would be dead work.
    std::string db_payload;
    int fail_status = 0;
    auto query = [&](const char* target) {
      if (fail_status) return;
      try {
        HttpResponse qr = pool.Query(target);
        if (qr.status >= 500) {
          if (resilience) resilience->Record(false);
          fail_status = qr.status;
          return;
        }
        if (resilience) resilience->Record(true);
        db_payload += qr.body;
      } catch (...) {
        if (!resilience) throw;  // seed behavior: surface to the caller
        resilience->Record(false);
        fail_status = 502;
      }
    };
    char target[96];
    for (int i = 0; i < ix.q_story_list; ++i) {
      std::snprintf(target, sizeof(target), "/q/story_list?page=%d",
                    page + i);
      query(target);
    }
    for (int i = 0; i < ix.q_story_detail; ++i) {
      std::snprintf(target, sizeof(target), "/q/story_detail?id=%d", story);
      query(target);
    }
    for (int i = 0; i < ix.q_comments; ++i) {
      std::snprintf(target, sizeof(target), "/q/comments?story=%d",
                    story + i);
      query(target);
    }
    for (int i = 0; i < ix.q_user; ++i) {
      std::snprintf(target, sizeof(target), "/q/user?id=%d", user);
      query(target);
    }
    for (int i = 0; i < ix.q_search; ++i) {
      query("/q/search?needle=fox");
    }
    for (int i = 0; i < ix.q_insert; ++i) {
      std::snprintf(target, sizeof(target), "/q/insert_comment?story=%d",
                    story);
      query(target);
    }
    if (fail_status) {
      resp.status = fail_status;
      resp.reason = fail_status == 504 ? "Gateway Timeout" : "Bad Gateway";
      resp.body = "db tier failure\n";
      return;
    }

    // Servlet-side rendering work.
    BurnCpuMicros(ix.app_cpu_us * cpu_multiplier);

    // Rendered page: shared template scaffolding + dynamic content. The
    // scaffold goes out as the response's shared (zero-copy) segment; only
    // the per-request DB payload is owned by this response.
    resp.shared_body = (*scaffolds)[index];
    resp.body = std::move(db_payload);
    resp.SetHeader("Content-Type", "text/html");
  };
}

}  // namespace hynet::rubbos
