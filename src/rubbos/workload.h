// RUBBoS user emulation: N users, each navigating the site as a Markov
// process with think time between page loads (the paper's appendix: ~7 s
// think time, Markov-chain page navigation). Users are event-driven state
// machines on one loop, so thousands of emulated users add no client
// thread noise on the shared host.
#pragma once

#include <cstdint>
#include <functional>

#include "common/histogram.h"
#include "net/inet_addr.h"

namespace hynet::rubbos {

struct RubbosWorkloadConfig {
  InetAddr front;              // web tier address
  int users = 100;
  // Mean think time between a page and the next request. The canonical
  // RUBBoS value is 7 s; benches scale it down (same offered load with
  // 10x fewer users at 0.7 s).
  double think_time_sec = 0.7;
  double warmup_sec = 1.0;
  double measure_sec = 5.0;
  uint64_t seed = 42;
  // Phase-boundary hooks (used by the harness to scope /proc sampling to
  // the measurement window, after all tiers have spawned their threads).
  std::function<void()> on_measure_start;
  std::function<void()> on_measure_end;
};

struct RubbosWorkloadResult {
  uint64_t completed = 0;
  uint64_t errors = 0;
  double elapsed_sec = 0;
  Histogram response_time;

  double Throughput() const {
    return elapsed_sec > 0 ? static_cast<double>(completed) / elapsed_sec : 0;
  }
};

RubbosWorkloadResult RunRubbosWorkload(const RubbosWorkloadConfig& config);

}  // namespace hynet::rubbos
