#include "rubbos/db_server.h"

#include <algorithm>
#include <mutex>

#include "common/rng.h"
#include "common/thread_util.h"

namespace hynet::rubbos {
namespace {

std::string MakeText(Rng& rng, size_t min_len, size_t max_len) {
  static constexpr char kWords[] =
      "the quick brown fox jumps over a lazy dog while kernel buffers "
      "drain slowly under ack clocked windows and reactors dispatch ";
  const size_t len = min_len + rng.NextBounded(max_len - min_len + 1);
  std::string out;
  out.reserve(len);
  while (out.size() < len) {
    const size_t off = rng.NextBounded(sizeof(kWords) - 2);
    out.append(kWords + off,
               std::min(len - out.size(), sizeof(kWords) - 1 - off));
  }
  return out;
}

}  // namespace

DbDataset DbDataset::Generate(int num_stories, int comments_per_story,
                              int num_users, uint64_t seed) {
  Rng rng(seed);
  DbDataset db;
  db.stories.reserve(static_cast<size_t>(num_stories));
  for (int i = 0; i < num_stories; ++i) {
    db.stories.push_back(Story{i, MakeText(rng, 40, 90),
                               MakeText(rng, 1024, 4096)});
  }
  db.comments.reserve(
      static_cast<size_t>(num_stories) *
      static_cast<size_t>(comments_per_story));
  for (int s = 0; s < num_stories; ++s) {
    for (int c = 0; c < comments_per_story; ++c) {
      db.comments.push_back(Comment{s, MakeText(rng, 128, 512)});
    }
  }
  db.users.reserve(static_cast<size_t>(num_users));
  for (int u = 0; u < num_users; ++u) {
    db.users.push_back(User{u, MakeText(rng, 8, 16)});
  }
  return db;
}

DbServer::DbServer(DbDataset dataset, double cpu_us_per_query,
                   bool deadline_propagation, bool rpc, int rpc_event_loops)
    : dataset_(std::move(dataset)),
      cpu_us_per_query_(cpu_us_per_query),
      rpc_(rpc) {
  ServerConfig config;
  config.snd_buf_bytes = 0;  // DB link is intra-rack; keep kernel defaults
  config.deadline_propagation = deadline_propagation;
  if (rpc_) {
    // Mesh mode: the multiplexed frame plane needs the loop-group chassis.
    config.architecture = ServerArchitecture::kMultiLoop;
    config.event_loops = std::max(1, rpc_event_loops);
    config.protocol = "rpc";
    server_ = CreateServer(config, MakeRegistry());
  } else {
    // MySQL's execution model: a dedicated thread per connection.
    config.architecture = ServerArchitecture::kThreadPerConn;
    server_ = CreateServer(config, MakeHandler());
  }
}

DbServer::~DbServer() { Stop(); }

void DbServer::Start() { server_->Start(); }
void DbServer::Stop() { server_->Stop(); }
uint16_t DbServer::Port() const { return server_->Port(); }
ServerCounters DbServer::Snapshot() const { return server_->Snapshot(); }
std::vector<int> DbServer::ThreadIds() const { return server_->ThreadIds(); }

int DbServer::Execute(const HttpRequest& req, std::string* body) {
  BurnCpuMicros(cpu_us_per_query_);

  if (req.path == "/q/story_list") {
    const auto page = static_cast<size_t>(req.QueryParamInt("page", 0));
    std::shared_lock lock(data_mu_);
    const size_t start =
        (page * 20) % std::max<size_t>(dataset_.stories.size(), 1);
    const size_t end = std::min(start + 20, dataset_.stories.size());
    for (size_t i = start; i < end; ++i) {
      *body += std::to_string(dataset_.stories[i].id);
      *body += '\t';
      *body += dataset_.stories[i].title;
      *body += '\n';
    }
    return 200;
  }

  if (req.path == "/q/story_detail") {
    const auto id = static_cast<size_t>(req.QueryParamInt("id", 0));
    std::shared_lock lock(data_mu_);
    if (id >= dataset_.stories.size()) return 404;
    *body = dataset_.stories[id].body;
    return 200;
  }

  if (req.path == "/q/comments") {
    const int story = static_cast<int>(req.QueryParamInt("story", 0));
    std::shared_lock lock(data_mu_);
    // Comments are stored grouped by story; binary-search the block.
    const auto cmp = [](const DbDataset::Comment& c, int s) {
      return c.story_id < s;
    };
    auto it = std::lower_bound(dataset_.comments.begin(),
                               dataset_.comments.end(), story, cmp);
    for (; it != dataset_.comments.end() && it->story_id == story; ++it) {
      *body += it->text;
      *body += '\n';
    }
    return 200;
  }

  if (req.path == "/q/user") {
    const auto id = static_cast<size_t>(req.QueryParamInt("id", 0));
    std::shared_lock lock(data_mu_);
    if (id >= dataset_.users.size()) return 404;
    *body = dataset_.users[id].name;
    return 200;
  }

  if (req.path == "/q/search") {
    const std::string needle(req.QueryParam("needle", "fox"));
    std::shared_lock lock(data_mu_);
    int hits = 0;
    for (const auto& story : dataset_.stories) {
      if (story.title.find(needle) != std::string::npos) {
        *body += story.title;
        *body += '\n';
        if (++hits >= 20) break;
      }
    }
    return 200;
  }

  if (req.path == "/q/insert_comment") {
    const int story = static_cast<int>(req.QueryParamInt("story", 0));
    std::unique_lock lock(data_mu_);
    // Insert keeps the by-story grouping invariant.
    const auto cmp = [](const DbDataset::Comment& c, int s) {
      return c.story_id < s;
    };
    auto it = std::lower_bound(dataset_.comments.begin(),
                               dataset_.comments.end(), story, cmp);
    dataset_.comments.insert(
        it,
        DbDataset::Comment{story, req.body.empty() ? "(empty)" : req.body});
    *body = "ok";
    return 200;
  }

  *body = "unknown query";
  return 404;
}

hynet::Handler DbServer::MakeHandler() {
  return [this](const HttpRequest& req, HttpResponse& resp) {
    resp.SetHeader("Content-Type", "text/plain");
    const int status = Execute(req, &resp.body);
    if (status != 200) {
      resp.status = status;
      resp.reason = "Not Found";
    }
  };
}

ServiceRegistry DbServer::MakeRegistry() {
  // Both methods share the query engine; the split exists so the mesh can
  // retry Query frames (idempotent) and never Insert frames.
  auto serve = [this](const ServiceRequest& sreq, ServiceResponse& sresp) {
    HttpRequest req;
    ParseRequestTarget(sreq.payload, &req);
    // The method split is the idempotency contract: a mutation smuggled
    // through the retryable Query method would get duplicated by mesh
    // retries, so it is rejected here rather than trusted.
    if (sreq.method_id == kDbMethodQuery && req.path == "/q/insert_comment") {
      sresp.status = RpcStatus::kBadRequest;
      sresp.body = "mutation on query method";
      return;
    }
    const int status = Execute(req, &sresp.body);
    sresp.status = status == 200  ? RpcStatus::kOk
                   : status == 404 ? RpcStatus::kNotFound
                                   : RpcStatus::kError;
  };
  ServiceRegistry registry;
  registry.Register(kDbMethodQuery, "db_query", SyncService(serve));
  registry.Register(kDbMethodInsert, "db_insert", SyncService(serve));
  return registry;
}

}  // namespace hynet::rubbos
