#include "rubbos/db_server.h"

#include <algorithm>
#include <mutex>

#include "common/rng.h"
#include "common/thread_util.h"

namespace hynet::rubbos {
namespace {

std::string MakeText(Rng& rng, size_t min_len, size_t max_len) {
  static constexpr char kWords[] =
      "the quick brown fox jumps over a lazy dog while kernel buffers "
      "drain slowly under ack clocked windows and reactors dispatch ";
  const size_t len = min_len + rng.NextBounded(max_len - min_len + 1);
  std::string out;
  out.reserve(len);
  while (out.size() < len) {
    const size_t off = rng.NextBounded(sizeof(kWords) - 2);
    out.append(kWords + off,
               std::min(len - out.size(), sizeof(kWords) - 1 - off));
  }
  return out;
}

}  // namespace

DbDataset DbDataset::Generate(int num_stories, int comments_per_story,
                              int num_users, uint64_t seed) {
  Rng rng(seed);
  DbDataset db;
  db.stories.reserve(static_cast<size_t>(num_stories));
  for (int i = 0; i < num_stories; ++i) {
    db.stories.push_back(Story{i, MakeText(rng, 40, 90),
                               MakeText(rng, 1024, 4096)});
  }
  db.comments.reserve(
      static_cast<size_t>(num_stories) *
      static_cast<size_t>(comments_per_story));
  for (int s = 0; s < num_stories; ++s) {
    for (int c = 0; c < comments_per_story; ++c) {
      db.comments.push_back(Comment{s, MakeText(rng, 128, 512)});
    }
  }
  db.users.reserve(static_cast<size_t>(num_users));
  for (int u = 0; u < num_users; ++u) {
    db.users.push_back(User{u, MakeText(rng, 8, 16)});
  }
  return db;
}

DbServer::DbServer(DbDataset dataset, double cpu_us_per_query,
                   bool deadline_propagation)
    : dataset_(std::move(dataset)), cpu_us_per_query_(cpu_us_per_query) {
  ServerConfig config;
  // MySQL's execution model: a dedicated thread per connection.
  config.architecture = ServerArchitecture::kThreadPerConn;
  config.snd_buf_bytes = 0;  // DB link is intra-rack; keep kernel defaults
  config.deadline_propagation = deadline_propagation;
  server_ = CreateServer(config, MakeHandler());
}

DbServer::~DbServer() { Stop(); }

void DbServer::Start() { server_->Start(); }
void DbServer::Stop() { server_->Stop(); }
uint16_t DbServer::Port() const { return server_->Port(); }
ServerCounters DbServer::Snapshot() const { return server_->Snapshot(); }
std::vector<int> DbServer::ThreadIds() const { return server_->ThreadIds(); }

hynet::Handler DbServer::MakeHandler() {
  return [this](const HttpRequest& req, HttpResponse& resp) {
    BurnCpuMicros(cpu_us_per_query_);
    resp.SetHeader("Content-Type", "text/plain");

    if (req.path == "/q/story_list") {
      const auto page = static_cast<size_t>(req.QueryParamInt("page", 0));
      std::shared_lock lock(data_mu_);
      const size_t start = (page * 20) % std::max<size_t>(dataset_.stories.size(), 1);
      const size_t end = std::min(start + 20, dataset_.stories.size());
      for (size_t i = start; i < end; ++i) {
        resp.body += std::to_string(dataset_.stories[i].id);
        resp.body += '\t';
        resp.body += dataset_.stories[i].title;
        resp.body += '\n';
      }
      return;
    }

    if (req.path == "/q/story_detail") {
      const auto id = static_cast<size_t>(req.QueryParamInt("id", 0));
      std::shared_lock lock(data_mu_);
      if (id < dataset_.stories.size()) {
        resp.body = dataset_.stories[id].body;
      } else {
        resp.status = 404;
        resp.reason = "Not Found";
      }
      return;
    }

    if (req.path == "/q/comments") {
      const int story = static_cast<int>(req.QueryParamInt("story", 0));
      std::shared_lock lock(data_mu_);
      // Comments are stored grouped by story; binary-search the block.
      const auto cmp = [](const DbDataset::Comment& c, int s) {
        return c.story_id < s;
      };
      auto it = std::lower_bound(dataset_.comments.begin(),
                                 dataset_.comments.end(), story, cmp);
      for (; it != dataset_.comments.end() && it->story_id == story; ++it) {
        resp.body += it->text;
        resp.body += '\n';
      }
      return;
    }

    if (req.path == "/q/user") {
      const auto id = static_cast<size_t>(req.QueryParamInt("id", 0));
      std::shared_lock lock(data_mu_);
      if (id < dataset_.users.size()) {
        resp.body = dataset_.users[id].name;
      } else {
        resp.status = 404;
        resp.reason = "Not Found";
      }
      return;
    }

    if (req.path == "/q/search") {
      const std::string needle(req.QueryParam("needle", "fox"));
      std::shared_lock lock(data_mu_);
      int hits = 0;
      for (const auto& story : dataset_.stories) {
        if (story.title.find(needle) != std::string::npos) {
          resp.body += story.title;
          resp.body += '\n';
          if (++hits >= 20) break;
        }
      }
      return;
    }

    if (req.path == "/q/insert_comment") {
      const int story = static_cast<int>(req.QueryParamInt("story", 0));
      std::unique_lock lock(data_mu_);
      // Insert keeps the by-story grouping invariant.
      const auto cmp = [](const DbDataset::Comment& c, int s) {
        return c.story_id < s;
      };
      auto it = std::lower_bound(dataset_.comments.begin(),
                                 dataset_.comments.end(), story, cmp);
      dataset_.comments.insert(
          it, DbDataset::Comment{story, req.body.empty() ? "(empty)"
                                                         : req.body});
      resp.body = "ok";
      return;
    }

    resp.status = 404;
    resp.reason = "Not Found";
    resp.body = "unknown query";
  };
}

}  // namespace hynet::rubbos
