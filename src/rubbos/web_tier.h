// Web tier (Apache httpd stand-in): a thread-based reverse proxy in front
// of the app tier, forwarding every request over a pooled persistent
// upstream connection (mod_jk style).
#pragma once

#include <memory>

#include "rubbos/db_client.h"
#include "rubbos/tier_resilience.h"
#include "servers/server.h"

namespace hynet::rubbos {

// The pool is protocol-generic HTTP; the web tier reuses it for app-tier
// upstream connections exactly as the app tier uses it for the DB.
using UpstreamPool = DbConnectionPool;

struct WebTierOptions {
  // Honor X-Hynet-Deadline-Ms budgets and forward the remaining budget on
  // every upstream call.
  bool deadline_propagation = false;
  // Guard the app-tier upstream with a circuit breaker; while it is open,
  // serve a degraded static front page instead of queueing on a failing
  // upstream.
  bool circuit_breaker = false;
  CircuitBreakerConfig breaker;
};

class WebTier {
 public:
  WebTier(const InetAddr& app_addr, int upstream_pool_size,
          const WebTierOptions& options = {});
  ~WebTier();

  void Start();
  void Stop();
  uint16_t Port() const;
  ServerCounters Snapshot() const;
  std::vector<int> ThreadIds() const;

  // Null unless options.circuit_breaker.
  const TierResilience* resilience() const { return resilience_.get(); }

 private:
  UpstreamPool pool_;
  std::unique_ptr<TierResilience> resilience_;
  std::unique_ptr<Server> server_;
};

}  // namespace hynet::rubbos
