// Web tier (Apache httpd stand-in): a thread-based reverse proxy in front
// of the app tier, forwarding every request over a pooled persistent
// upstream connection (mod_jk style).
#pragma once

#include <memory>

#include "rubbos/db_client.h"
#include "servers/server.h"

namespace hynet::rubbos {

// The pool is protocol-generic HTTP; the web tier reuses it for app-tier
// upstream connections exactly as the app tier uses it for the DB.
using UpstreamPool = DbConnectionPool;

class WebTier {
 public:
  WebTier(const InetAddr& app_addr, int upstream_pool_size);
  ~WebTier();

  void Start();
  void Stop();
  uint16_t Port() const;
  ServerCounters Snapshot() const;
  std::vector<int> ThreadIds() const;

 private:
  UpstreamPool pool_;
  std::unique_ptr<Server> server_;
};

}  // namespace hynet::rubbos
