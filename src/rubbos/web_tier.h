// Web tier (Apache httpd stand-in): a thread-based reverse proxy in front
// of the app tier.
//
// Two upstream transports:
//   - sync (default): every request forwarded over a pooled persistent
//     HTTP connection (mod_jk style) — one borrowed connection blocked for
//     the whole app-tier round trip.
//   - rpc (mesh mode): each /rubbos interaction is split into `fanout`
//     fragment Render calls issued in parallel on a multiplexed RpcChannel
//     and fanned back in under an explicit partial-failure policy. The
//     front connection's thread blocks on the *group*, not on a pool slot
//     per call — upstream concurrency is bounded by channel in-flight
//     caps, not by pool size.
#pragma once

#include <memory>

#include "mesh/fanout.h"
#include "mesh/rpc_channel.h"
#include "rubbos/db_client.h"
#include "rubbos/tier_resilience.h"
#include "servers/server.h"

namespace hynet::rubbos {

// The pool is protocol-generic HTTP; the web tier reuses it for app-tier
// upstream connections exactly as the app tier uses it for the DB.
using UpstreamPool = DbConnectionPool;

struct WebTierOptions {
  // Honor X-Hynet-Deadline-Ms budgets and forward the remaining budget on
  // every upstream call.
  bool deadline_propagation = false;
  // Guard the app-tier upstream with a circuit breaker; while it is open,
  // serve a degraded static front page instead of queueing on a failing
  // upstream.
  bool circuit_breaker = false;
  CircuitBreakerConfig breaker;

  // ---- Mesh mode (ISSUE 10) ----
  // Forward /rubbos interactions as async RPC fan-out instead of sync
  // HTTP proxying.
  bool rpc = false;
  // Fragments per interaction (parallel Render calls per front request).
  int fanout = 1;
  FanoutPolicy fanout_policy = FanoutPolicy::kAll;
  // Mesh client shape (loops × channels) and per-channel wire cap.
  int mesh_loops = 2;
  int mesh_channels_per_loop = 1;
  size_t mesh_max_inflight = 512;
  // Safety margin reserved per hop out of propagated deadlines.
  int deadline_margin_ms = 0;
  // Retry shed/lost *idempotent* fragments under a token-bucket budget
  // shared across the mesh client's channels.
  bool mesh_retries = false;
  RetryPolicyConfig mesh_retry;
};

class WebTier {
 public:
  WebTier(const InetAddr& app_addr, int upstream_pool_size,
          const WebTierOptions& options = {});
  ~WebTier();

  void Start();
  void Stop();
  uint16_t Port() const;
  ServerCounters Snapshot() const;
  std::vector<int> ThreadIds() const;

  // Null unless options.circuit_breaker.
  const TierResilience* resilience() const { return resilience_.get(); }
  // Null unless options.rpc.
  MeshClient* mesh() { return mesh_.get(); }

 private:
  hynet::Handler MakeSyncHandler();
  hynet::Handler MakeRpcHandler();

  WebTierOptions options_;
  UpstreamPool pool_;
  std::unique_ptr<MeshClient> mesh_;
  std::unique_ptr<TierResilience> resilience_;
  std::unique_ptr<Server> server_;
};

}  // namespace hynet::rubbos
