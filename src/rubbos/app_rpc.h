// App tier on the async mesh: the RUBBoS servlets as an RPC service with
// app→DB fan-out and the sharded response cache.
//
// One front request becomes N parallel Render calls (the web tier's
// fan-out); each Render handles one *fragment* of the interaction — its
// 1/N slice of the DB query plan, servlet CPU, and page scaffold — so the
// page's DB work runs concurrently across fragments instead of serially
// down one blocking pool connection. Within a fragment the remaining DB
// queries fan out again (policy kAll) over the app→DB mesh channel.
//
// The handler is fully asynchronous: it issues its DB calls and returns;
// the fan-in continuation renders on the mesh completion thread and
// finishes the ResponseWriter from there (the completion-based service
// contract). Cacheable fragments (no mutation in the plan) go through the
// ResponseCache first — a hit finishes inline with the shared cached body
// (zero-copy), concurrent misses coalesce behind one lead render.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "app/service.h"
#include "mesh/fanout.h"
#include "mesh/response_cache.h"
#include "mesh/rpc_channel.h"
#include "rubbos/tier_resilience.h"
#include "runtime/dispatch_stats.h"

namespace hynet::rubbos {

// The app tier's single RPC method: render one fragment of an interaction.
inline constexpr uint16_t kAppMethodRender = 1;

struct RenderParams {
  size_t index = 0;  // kInteractions index
  int story = 0;
  int user = 0;
  int page = 0;
  int frag = 0;   // this fragment's slot, [0, frags)
  int frags = 1;  // total fragments the interaction was split into
};

// Payload is target-shaped ("/render?type=...&s=...&u=...&page=...&frag=
// i&frags=n") so both ends reuse ParseRequestTarget. Encode/Decode are the
// web tier's and the app tier's shared contract.
std::string EncodeRenderPayload(const RenderParams& params);
bool DecodeRenderPayload(std::string_view payload, RenderParams* params);

// The response-cache key for a fragment: interaction name + only the
// request dimensions its query plan actually reads (unused ids are
// normalized away so they don't shatter the key space).
std::string CanonicalCacheKey(const RenderParams& params);

struct AppRpcOptions {
  // The app→DB mesh client (required; must outlive the service).
  MeshClient* db = nullptr;
  // Optional response cache (mesh-owned, see system wiring).
  ResponseCache* cache = nullptr;
  // Optional DB-guarding breaker: open → scaffold-only degraded fragment.
  TierResilience* resilience = nullptr;
  double cpu_multiplier = 1.0;
};

// The Render service. Built before the RPC server exists (CreateServer
// takes the registry), so lifecycle binding follows the TierResilience
// pattern: BindLifecycle after CreateServer, before Start.
class AppRpcService {
 public:
  explicit AppRpcService(AppRpcOptions options);

  ServiceRegistry Registry();

  // Counts mesh_fanout_calls / mesh_partial_failures / degraded_responses
  // into the app server's lifecycle. Must be bound before traffic.
  void BindLifecycle(LifecycleStats* lifecycle);

 private:
  struct State;
  std::shared_ptr<State> state_;
};

}  // namespace hynet::rubbos
