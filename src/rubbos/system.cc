#include "rubbos/system.h"

#include "common/thread_util.h"
#include <optional>
#include "rubbos/app_logic.h"

namespace hynet::rubbos {

ThreeTierSystem::ThreeTierSystem(ThreeTierConfig config)
    : config_(config) {}

ThreeTierSystem::~ThreeTierSystem() { Stop(); }

void ThreeTierSystem::Start() {
  const bool rpc = config_.transport == "rpc";
  db_ = std::make_unique<DbServer>(
      DbDataset::Generate(config_.db_stories, config_.db_comments_per_story,
                          config_.db_users, /*seed=*/7),
      config_.db_cpu_us_per_query, config_.deadline_propagation, rpc,
      config_.db_event_loops);
  db_->Start();

  if (config_.circuit_breakers) {
    app_resilience_ = std::make_unique<TierResilience>(config_.breaker);
  }

  ServerConfig app_config;
  app_config.architecture = config_.app_architecture;
  app_config.worker_threads = config_.app_worker_threads;
  app_config.snd_buf_bytes = 0;  // inter-tier links keep kernel defaults
  app_config.deadline_propagation = config_.deadline_propagation;
  app_config.shed_target_delay_ms = config_.app_shed_target_delay_ms;
  app_config.shed_interval_ms = config_.app_shed_interval_ms;

  if (rpc) {
    // ---- Mesh transport: app→db over multiplexed RPC channels ----
    MeshClientConfig db_mesh_config;
    db_mesh_config.server = InetAddr::Loopback(db_->Port());
    db_mesh_config.loops = config_.mesh_loops;
    db_mesh_config.channels_per_loop = config_.mesh_channels_per_loop;
    db_mesh_config.channel.max_inflight = config_.mesh_max_inflight;
    db_mesh_config.channel.deadline_propagation = config_.deadline_propagation;
    db_mesh_config.enable_retries = config_.mesh_retries || config_.db_retries;
    db_mesh_config.retry =
        config_.mesh_retries ? config_.mesh_retry : config_.db_retry;
    db_mesh_config.seed = 11;
    db_mesh_ = std::make_unique<MeshClient>(db_mesh_config);
    db_mesh_->Start();

    if (config_.app_cache_ttl_ms > 0) {
      ResponseCacheConfig cache_config;
      cache_config.shards = config_.app_cache_shards;
      cache_config.max_bytes_per_shard =
          config_.app_cache_mb_per_shard * 1024 * 1024;
      cache_config.ttl_ms = config_.app_cache_ttl_ms;
      app_cache_ = std::make_unique<ResponseCache>(cache_config);
    }

    AppRpcOptions app_options;
    app_options.db = db_mesh_.get();
    app_options.cache = app_cache_.get();
    app_options.resilience = app_resilience_.get();
    app_options.cpu_multiplier = config_.app_cpu_multiplier;
    app_service_ = std::make_unique<AppRpcService>(app_options);

    // The Render service needs the loop-group chassis; architectures
    // without one (the sync baselines) are lifted to kMultiLoop.
    if (app_config.architecture != ServerArchitecture::kMultiLoop &&
        app_config.architecture != ServerArchitecture::kHybrid) {
      app_config.architecture = ServerArchitecture::kMultiLoop;
    }
    app_config.event_loops = config_.app_event_loops;
    app_config.protocol = "rpc";
    app_ = CreateServer(app_config, app_service_->Registry());
    db_mesh_->BindLifecycle(&app_->lifecycle_stats());
    db_mesh_->BindInflightGauge(&app_->metrics().GetGauge("mesh_inflight"));
    app_service_->BindLifecycle(&app_->lifecycle_stats());
  } else {
    // ---- Sync transport (the A/B control): blocking JDBC-style pool ----
    db_pool_ = std::make_unique<DbConnectionPool>(
        InetAddr::Loopback(db_->Port()), config_.db_connection_pool);
    if (config_.deadline_propagation) db_pool_->EnableDeadlinePropagation();
    if (config_.db_retries) {
      db_pool_->EnableRetries(config_.db_retry, /*seed=*/11);
    }
    app_ = CreateServer(app_config,
                        BuildRubbosHandler(*db_pool_,
                                           config_.app_cpu_multiplier,
                                           app_resilience_.get()));
    // The handler is built before the server exists; close the loop so the
    // pool's retry/deadline counters and the DB breaker's state surface in
    // the app tier's /metrics (bound before Start: no request races this).
    db_pool_->BindLifecycle(&app_->lifecycle_stats());
  }
  if (app_resilience_) {
    app_resilience_->BindLifecycle(&app_->lifecycle_stats());
  }
  app_->Start();

  WebTierOptions web_options;
  web_options.deadline_propagation = config_.deadline_propagation;
  web_options.circuit_breaker = config_.circuit_breakers;
  web_options.breaker = config_.breaker;
  if (rpc) {
    web_options.rpc = true;
    web_options.fanout = config_.fanout;
    web_options.fanout_policy = config_.fanout_policy;
    web_options.mesh_loops = config_.mesh_loops;
    web_options.mesh_channels_per_loop = config_.mesh_channels_per_loop;
    web_options.mesh_max_inflight = config_.mesh_max_inflight;
    web_options.mesh_retries = config_.mesh_retries;
    web_options.mesh_retry = config_.mesh_retry;
  }
  web_ = std::make_unique<WebTier>(InetAddr::Loopback(app_->Port()),
                                   config_.web_upstream_pool, web_options);
  web_->Start();
}

void ThreeTierSystem::Stop() {
  // Front to back, so upstream pools fail fast instead of hanging; the
  // app→db mesh client stops after the app tier that issues on it.
  if (web_) web_->Stop();
  if (app_) app_->Stop();
  if (db_mesh_) db_mesh_->Stop();
  if (db_) db_->Stop();
}

ServerCounters ThreeTierSystem::DbSnapshot() const { return db_->Snapshot(); }

ThreeTierPointResult RunThreeTierPoint(const ThreeTierConfig& system_config,
                                       const RubbosWorkloadConfig& load) {
  CalibrateCpuBurn();
  ThreeTierSystem system(system_config);
  system.Start();

  RubbosWorkloadConfig load_config = load;
  load_config.front = InetAddr::Loopback(system.FrontPort());

  // Scope app-tier /proc sampling to the measurement window: by then the
  // thread-per-connection app tier has spawned its connection threads
  // (the web tier's upstream pool connects lazily during warmup).
  ThreeTierPointResult result;
  std::optional<ServerActivitySampler> sampler;
  load_config.on_measure_start = [&] {
    sampler.emplace(system.AppThreadIds());
    sampler->Start();
  };
  load_config.on_measure_end = [&] { result.app_activity = sampler->Stop(); };
  result.workload = RunRubbosWorkload(load_config);

  system.Stop();
  return result;
}

}  // namespace hynet::rubbos
