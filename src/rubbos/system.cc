#include "rubbos/system.h"

#include "common/thread_util.h"
#include <optional>
#include "rubbos/app_logic.h"

namespace hynet::rubbos {

ThreeTierSystem::ThreeTierSystem(ThreeTierConfig config)
    : config_(config) {}

ThreeTierSystem::~ThreeTierSystem() { Stop(); }

void ThreeTierSystem::Start() {
  db_ = std::make_unique<DbServer>(
      DbDataset::Generate(config_.db_stories, config_.db_comments_per_story,
                          config_.db_users, /*seed=*/7),
      config_.db_cpu_us_per_query, config_.deadline_propagation);
  db_->Start();

  db_pool_ = std::make_unique<DbConnectionPool>(
      InetAddr::Loopback(db_->Port()), config_.db_connection_pool);
  if (config_.deadline_propagation) db_pool_->EnableDeadlinePropagation();
  if (config_.db_retries) {
    db_pool_->EnableRetries(config_.db_retry, /*seed=*/11);
  }
  if (config_.circuit_breakers) {
    app_resilience_ = std::make_unique<TierResilience>(config_.breaker);
  }

  ServerConfig app_config;
  app_config.architecture = config_.app_architecture;
  app_config.worker_threads = config_.app_worker_threads;
  app_config.snd_buf_bytes = 0;  // inter-tier links keep kernel defaults
  app_config.deadline_propagation = config_.deadline_propagation;
  app_config.shed_target_delay_ms = config_.app_shed_target_delay_ms;
  app_config.shed_interval_ms = config_.app_shed_interval_ms;
  app_ = CreateServer(app_config,
                      BuildRubbosHandler(*db_pool_,
                                         config_.app_cpu_multiplier,
                                         app_resilience_.get()));
  // The handler is built before the server exists; close the loop so the
  // pool's retry/deadline counters and the DB breaker's state surface in
  // the app tier's /metrics (bound before Start: no request races this).
  db_pool_->BindLifecycle(&app_->lifecycle_stats());
  if (app_resilience_) {
    app_resilience_->BindLifecycle(&app_->lifecycle_stats());
  }
  app_->Start();

  WebTierOptions web_options;
  web_options.deadline_propagation = config_.deadline_propagation;
  web_options.circuit_breaker = config_.circuit_breakers;
  web_options.breaker = config_.breaker;
  web_ = std::make_unique<WebTier>(InetAddr::Loopback(app_->Port()),
                                   config_.web_upstream_pool, web_options);
  web_->Start();
}

void ThreeTierSystem::Stop() {
  // Front to back, so upstream pools fail fast instead of hanging.
  if (web_) web_->Stop();
  if (app_) app_->Stop();
  if (db_) db_->Stop();
}

ThreeTierPointResult RunThreeTierPoint(const ThreeTierConfig& system_config,
                                       const RubbosWorkloadConfig& load) {
  CalibrateCpuBurn();
  ThreeTierSystem system(system_config);
  system.Start();

  RubbosWorkloadConfig load_config = load;
  load_config.front = InetAddr::Loopback(system.FrontPort());

  // Scope app-tier /proc sampling to the measurement window: by then the
  // thread-per-connection app tier has spawned its connection threads
  // (the web tier's upstream pool connects lazily during warmup).
  ThreeTierPointResult result;
  std::optional<ServerActivitySampler> sampler;
  load_config.on_measure_start = [&] {
    sampler.emplace(system.AppThreadIds());
    sampler->Start();
  };
  load_config.on_measure_end = [&] { result.app_activity = sampler->Stop(); };
  result.workload = RunRubbosWorkload(load_config);

  system.Stop();
  return result;
}

}  // namespace hynet::rubbos
