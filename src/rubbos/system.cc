#include "rubbos/system.h"

#include "common/thread_util.h"
#include <optional>
#include "rubbos/app_logic.h"

namespace hynet::rubbos {

ThreeTierSystem::ThreeTierSystem(ThreeTierConfig config)
    : config_(config) {}

ThreeTierSystem::~ThreeTierSystem() { Stop(); }

void ThreeTierSystem::Start() {
  db_ = std::make_unique<DbServer>(
      DbDataset::Generate(config_.db_stories, config_.db_comments_per_story,
                          config_.db_users, /*seed=*/7),
      config_.db_cpu_us_per_query);
  db_->Start();

  db_pool_ = std::make_unique<DbConnectionPool>(
      InetAddr::Loopback(db_->Port()), config_.db_connection_pool);

  ServerConfig app_config;
  app_config.architecture = config_.app_architecture;
  app_config.worker_threads = config_.app_worker_threads;
  app_config.snd_buf_bytes = 0;  // inter-tier links keep kernel defaults
  app_ = CreateServer(app_config,
                      BuildRubbosHandler(*db_pool_,
                                         config_.app_cpu_multiplier));
  app_->Start();

  web_ = std::make_unique<WebTier>(InetAddr::Loopback(app_->Port()),
                                   config_.web_upstream_pool);
  web_->Start();
}

void ThreeTierSystem::Stop() {
  // Front to back, so upstream pools fail fast instead of hanging.
  if (web_) web_->Stop();
  if (app_) app_->Stop();
  if (db_) db_->Stop();
}

ThreeTierPointResult RunThreeTierPoint(const ThreeTierConfig& system_config,
                                       const RubbosWorkloadConfig& load) {
  CalibrateCpuBurn();
  ThreeTierSystem system(system_config);
  system.Start();

  RubbosWorkloadConfig load_config = load;
  load_config.front = InetAddr::Loopback(system.FrontPort());

  // Scope app-tier /proc sampling to the measurement window: by then the
  // thread-per-connection app tier has spawned its connection threads
  // (the web tier's upstream pool connects lazily during warmup).
  ThreeTierPointResult result;
  std::optional<ServerActivitySampler> sampler;
  load_config.on_measure_start = [&] {
    sampler.emplace(system.AppThreadIds());
    sampler->Start();
  };
  load_config.on_measure_end = [&] { result.app_activity = sampler->Stop(); };
  result.workload = RunRubbosWorkload(load_config);

  system.Stop();
  return result;
}

}  // namespace hynet::rubbos
