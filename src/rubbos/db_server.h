// DB tier of the mini 3-tier system (MySQL stand-in).
//
// An in-memory bulletin-board dataset (stories, comments, users — the
// RUBBoS schema boiled down) served over the thread-per-connection
// architecture, which matches MySQL's one-thread-per-connection execution
// model. Query endpoints:
//   /q/story_list?page=P           — top stories page (list of titles)
//   /q/story_detail?id=I           — one story body + its comments
//   /q/comments?story=I            — comment subtree
//   /q/user?id=U                   — user record
//   /q/search?needle=S             — full scan (CPU-heavy)
//   /q/insert_comment?story=I      — mutation (exclusive lock)
#pragma once

#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "app/service.h"
#include "servers/server.h"

namespace hynet::rubbos {

// RPC method ids for the DB tier's mesh mode. Query covers every read
// endpoint (idempotent — the mesh may retry it); Insert is the one
// mutation (never retried).
inline constexpr uint16_t kDbMethodQuery = 1;
inline constexpr uint16_t kDbMethodInsert = 2;

struct DbDataset {
  struct Story {
    int id;
    std::string title;
    std::string body;
  };
  struct Comment {
    int story_id;
    std::string text;
  };
  struct User {
    int id;
    std::string name;
  };

  std::vector<Story> stories;
  std::vector<Comment> comments;
  std::vector<User> users;

  // Deterministically generates a dataset sized like the RUBBoS seed data
  // (scaled down to laptop memory).
  static DbDataset Generate(int num_stories, int comments_per_story,
                            int num_users, uint64_t seed);
};

class DbServer {
 public:
  // `cpu_us_per_query` models storage-engine CPU work per query on top of
  // the actual scan/format cost. `deadline_propagation` makes the tier
  // honor X-Hynet-Deadline-Ms budgets forwarded by the app tier (queries
  // whose budget is gone answer 504 instead of scanning).
  //
  // `rpc` switches the tier from thread-per-connection HTTP to the
  // multiplexed RPC plane (mesh mode): methods kDbMethodQuery /
  // kDbMethodInsert whose payload is the same "/q/...?..." target string,
  // served on the kMultiLoop chassis with `rpc_event_loops` loops. The
  // query logic is identical — only the transport changes (deadline
  // budgets then ride the frame header instead of an HTTP header).
  DbServer(DbDataset dataset, double cpu_us_per_query = 30.0,
           bool deadline_propagation = false, bool rpc = false,
           int rpc_event_loops = 2);
  ~DbServer();

  void Start();
  void Stop();
  uint16_t Port() const;
  ServerCounters Snapshot() const;
  std::vector<int> ThreadIds() const;
  bool rpc() const { return rpc_; }

 private:
  hynet::Handler MakeHandler();
  ServiceRegistry MakeRegistry();
  // The shared query engine: executes `req` against the dataset and
  // returns an HTTP-shaped status (200/404). Both transports call this.
  int Execute(const HttpRequest& req, std::string* body);

  DbDataset dataset_;
  double cpu_us_per_query_;
  bool rpc_;
  mutable std::shared_mutex data_mu_;  // readers-writer: queries vs inserts
  std::unique_ptr<Server> server_;
};

}  // namespace hynet::rubbos
