// App tier business logic: the 24 RUBBoS web interactions.
//
// Each interaction is a servlet: it issues a sequence of blocking DB-tier
// queries through the connection pool, burns servlet CPU, and renders an
// HTML-sized response. Weights approximate the browse-heavy stationary
// distribution of the RUBBoS Markov user model; response sizes average
// ~20 KB, matching the paper's measured "average response size of Tomcat
// per request is about 20KB".
#pragma once

#include <array>
#include <cstddef>
#include <string>

#include "rubbos/db_client.h"
#include "rubbos/tier_resilience.h"
#include "servers/server.h"

namespace hynet::rubbos {

struct Interaction {
  const char* name;
  double weight;        // stationary probability in the user Markov chain
  // DB query plan: how many of each query type this servlet issues.
  int q_story_list;
  int q_story_detail;
  int q_comments;
  int q_user;
  int q_search;
  int q_insert;
  double app_cpu_us;    // servlet-side CPU on top of DB work
  size_t html_bytes;    // rendered page scaffolding
};

inline constexpr size_t kInteractionCount = 24;
extern const std::array<Interaction, kInteractionCount> kInteractions;

// Index lookup by name; returns kInteractionCount if absent.
size_t InteractionIndex(std::string_view name);

// Builds the app-tier handler. Targets look like
//   /rubbos?type=ViewStory&s=123&u=7&page=2
// The handler owns no state beyond the pool reference; it is safe to call
// from any architecture's handler threads.
// `cpu_multiplier` scales each interaction's servlet CPU demand (used by
// the macro bench to position the saturation point).
//
// `resilience` (optional; must outlive the handler) guards the DB tier
// with a circuit breaker: while it is open the servlet skips its query
// plan and serves the scaffold-only page (graceful degradation), and every
// DB query outcome feeds the breaker. A failed query (5xx or a lost
// connection) also short-circuits the rest of the plan — the page is
// already broken, so the remaining queries would be dead work.
hynet::Handler BuildRubbosHandler(DbConnectionPool& pool,
                                  double cpu_multiplier = 1.0,
                                  TierResilience* resilience = nullptr);

// The request target a client sends for interaction `index`.
std::string InteractionTarget(size_t index, int story, int user, int page);

}  // namespace hynet::rubbos
