#include "rubbos/web_tier.h"

namespace hynet::rubbos {

WebTier::WebTier(const InetAddr& app_addr, int upstream_pool_size)
    : pool_(app_addr, upstream_pool_size) {
  ServerConfig config;
  // Apache httpd with the worker/prefork MPM: thread-based.
  config.architecture = ServerArchitecture::kThreadPerConn;
  config.snd_buf_bytes = 0;  // front link keeps kernel defaults
  server_ = CreateServer(config, [this](const HttpRequest& req,
                                             HttpResponse& resp) {
    try {
      HttpResponse upstream = pool_.Query(req.target);
      resp.status = upstream.status;
      resp.reason = upstream.reason;
      resp.body = std::move(upstream.body);
      resp.SetHeader("Via", "hynet-webtier");
    } catch (const std::exception&) {
      resp.status = 502;
      resp.reason = "Bad Gateway";
      resp.body = "app tier unreachable";
    }
  });
}

WebTier::~WebTier() { Stop(); }

void WebTier::Start() { server_->Start(); }
void WebTier::Stop() { server_->Stop(); }
uint16_t WebTier::Port() const { return server_->Port(); }
ServerCounters WebTier::Snapshot() const { return server_->Snapshot(); }
std::vector<int> WebTier::ThreadIds() const { return server_->ThreadIds(); }

}  // namespace hynet::rubbos
