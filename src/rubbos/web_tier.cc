#include "rubbos/web_tier.h"

namespace hynet::rubbos {

WebTier::WebTier(const InetAddr& app_addr, int upstream_pool_size,
                 const WebTierOptions& options)
    : pool_(app_addr, upstream_pool_size) {
  ServerConfig config;
  // Apache httpd with the worker/prefork MPM: thread-based.
  config.architecture = ServerArchitecture::kThreadPerConn;
  config.snd_buf_bytes = 0;  // front link keeps kernel defaults
  config.deadline_propagation = options.deadline_propagation;
  if (options.deadline_propagation) pool_.EnableDeadlinePropagation();
  if (options.circuit_breaker) {
    resilience_ = std::make_unique<TierResilience>(options.breaker);
  }
  TierResilience* res = resilience_.get();
  server_ = CreateServer(config, [this, res](const HttpRequest& req,
                                             HttpResponse& resp) {
    if (res && !res->Allow()) {
      // Breaker open: the app tier is failing — serve the static front
      // page instead of queueing another request onto a failing upstream.
      res->CountDegraded();
      resp.status = 200;
      resp.reason = "OK";
      resp.body = "degraded: app tier unavailable, serving cached page\n";
      resp.SetHeader("X-Hynet-Degraded", "app");
      resp.SetHeader("Via", "hynet-webtier");
      return;
    }
    try {
      HttpResponse upstream = pool_.Query(req.target);
      // 5xx (including shed 503s and expired 504s) counts against the
      // breaker; application-level 4xx does not — the upstream is healthy,
      // the request was just wrong.
      if (res) res->Record(upstream.status < 500);
      resp.status = upstream.status;
      resp.reason = upstream.reason;
      resp.body = std::move(upstream.body);
      for (auto& [k, v] : upstream.headers) {
        if (EqualsIgnoreCase(k, "Retry-After") ||
            EqualsIgnoreCase(k, "X-Hynet-Degraded")) {
          resp.SetHeader(std::move(k), std::move(v));
        }
      }
      resp.SetHeader("Via", "hynet-webtier");
    } catch (const std::exception&) {
      if (res) res->Record(false);
      resp.status = 502;
      resp.reason = "Bad Gateway";
      resp.body = "app tier unreachable";
    }
  });
  pool_.BindLifecycle(&server_->lifecycle_stats());
  if (resilience_) resilience_->BindLifecycle(&server_->lifecycle_stats());
}

WebTier::~WebTier() { Stop(); }

void WebTier::Start() { server_->Start(); }
void WebTier::Stop() { server_->Stop(); }
uint16_t WebTier::Port() const { return server_->Port(); }
ServerCounters WebTier::Snapshot() const { return server_->Snapshot(); }
std::vector<int> WebTier::ThreadIds() const { return server_->ThreadIds(); }

}  // namespace hynet::rubbos
