#include "rubbos/web_tier.h"

#include <algorithm>

#include "common/deadline.h"
#include "rubbos/app_logic.h"
#include "rubbos/app_rpc.h"

namespace hynet::rubbos {

WebTier::WebTier(const InetAddr& app_addr, int upstream_pool_size,
                 const WebTierOptions& options)
    : options_(options), pool_(app_addr, upstream_pool_size) {
  ServerConfig config;
  // Apache httpd with the worker/prefork MPM: thread-based.
  config.architecture = ServerArchitecture::kThreadPerConn;
  config.snd_buf_bytes = 0;  // front link keeps kernel defaults
  config.deadline_propagation = options.deadline_propagation;
  if (options.deadline_propagation) pool_.EnableDeadlinePropagation();
  if (options.circuit_breaker) {
    resilience_ = std::make_unique<TierResilience>(options.breaker);
  }
  if (options_.rpc) {
    MeshClientConfig mesh_config;
    mesh_config.server = app_addr;
    mesh_config.loops = options_.mesh_loops;
    mesh_config.channels_per_loop = options_.mesh_channels_per_loop;
    mesh_config.channel.max_inflight = options_.mesh_max_inflight;
    mesh_config.channel.deadline_propagation = options_.deadline_propagation;
    mesh_config.channel.deadline_margin_ms = options_.deadline_margin_ms;
    mesh_config.enable_retries = options_.mesh_retries;
    mesh_config.retry = options_.mesh_retry;
    mesh_ = std::make_unique<MeshClient>(mesh_config);
  }
  server_ = CreateServer(config,
                         options_.rpc ? MakeRpcHandler() : MakeSyncHandler());
  pool_.BindLifecycle(&server_->lifecycle_stats());
  if (resilience_) resilience_->BindLifecycle(&server_->lifecycle_stats());
  if (mesh_) {
    mesh_->BindLifecycle(&server_->lifecycle_stats());
    mesh_->BindInflightGauge(&server_->metrics().GetGauge("mesh_inflight"));
  }
}

WebTier::~WebTier() { Stop(); }

void WebTier::Start() {
  if (mesh_) mesh_->Start();
  server_->Start();
}

void WebTier::Stop() {
  server_->Stop();
  if (mesh_) mesh_->Stop();
}

uint16_t WebTier::Port() const { return server_->Port(); }
ServerCounters WebTier::Snapshot() const { return server_->Snapshot(); }
std::vector<int> WebTier::ThreadIds() const { return server_->ThreadIds(); }

hynet::Handler WebTier::MakeSyncHandler() {
  TierResilience* res = resilience_.get();
  return [this, res](const HttpRequest& req, HttpResponse& resp) {
    if (res && !res->Allow()) {
      // Breaker open: the app tier is failing — serve the static front
      // page instead of queueing another request onto a failing upstream.
      res->CountDegraded();
      resp.status = 200;
      resp.reason = "OK";
      resp.body = "degraded: app tier unavailable, serving cached page\n";
      resp.SetHeader("X-Hynet-Degraded", "app");
      resp.SetHeader("Via", "hynet-webtier");
      return;
    }
    try {
      HttpResponse upstream = pool_.Query(req.target);
      // 5xx (including shed 503s and expired 504s) counts against the
      // breaker; application-level 4xx does not — the upstream is healthy,
      // the request was just wrong.
      if (res) res->Record(upstream.status < 500);
      resp.status = upstream.status;
      resp.reason = upstream.reason;
      resp.body = std::move(upstream.body);
      for (auto& [k, v] : upstream.headers) {
        if (EqualsIgnoreCase(k, "Retry-After") ||
            EqualsIgnoreCase(k, "X-Hynet-Degraded")) {
          resp.SetHeader(std::move(k), std::move(v));
        }
      }
      resp.SetHeader("Via", "hynet-webtier");
    } catch (const std::exception&) {
      if (res) res->Record(false);
      resp.status = 502;
      resp.reason = "Bad Gateway";
      resp.body = "app tier unreachable";
    }
  };
}

hynet::Handler WebTier::MakeRpcHandler() {
  TierResilience* res = resilience_.get();
  return [this, res](const HttpRequest& req, HttpResponse& resp) {
    resp.SetHeader("Via", "hynet-webtier");
    if (req.path != "/rubbos") {
      resp.status = 404;
      resp.reason = "Not Found";
      resp.body = "mesh front serves /rubbos only";
      return;
    }
    RenderParams base;
    base.index = InteractionIndex(req.QueryParam("type"));
    if (base.index >= kInteractionCount) {
      resp.status = 404;
      resp.reason = "Not Found";
      resp.body = "unknown interaction";
      return;
    }
    base.story = static_cast<int>(req.QueryParamInt("s", 0));
    base.user = static_cast<int>(req.QueryParamInt("u", 0));
    base.page = static_cast<int>(req.QueryParamInt("page", 0));
    base.frags = std::max(1, options_.fanout);

    if (res && !res->Allow()) {
      res->CountDegraded();
      resp.status = 200;
      resp.reason = "OK";
      resp.body = "degraded: app tier unavailable, serving cached page\n";
      resp.SetHeader("X-Hynet-Degraded", "app");
      return;
    }

    // Captured on this (handler) thread; the fragments are issued from it
    // too, but passing explicitly keeps the hop decrement independent of
    // thread-local scope.
    const Deadline deadline = CurrentRequestDeadline();
    const bool idempotent =
        kInteractions[base.index].q_insert == 0;

    FanoutOptions fanout_options;
    fanout_options.policy = options_.fanout_policy;
    fanout_options.lifecycle = &server_->lifecycle_stats();
    const FanoutResult fr = FanoutCallSync(
        static_cast<size_t>(base.frags),
        [this, &base, deadline, idempotent](size_t i, RpcCallback done) {
          RenderParams p = base;
          p.frag = static_cast<int>(i);
          RpcCallOptions call_options;
          call_options.deadline = deadline;
          call_options.idempotent = idempotent;
          mesh_->Call(kAppMethodRender, EncodeRenderPayload(p), call_options,
                      std::move(done));
        },
        fanout_options);

    if (res) res->Record(fr.satisfied);
    if (!fr.satisfied) {
      // Worst failed leg picks the front status: expired budget → 504,
      // shed → 503 (clients back off), app-side 4xx → 404, else 502.
      int status = 502;
      const char* reason = "Bad Gateway";
      for (size_t i = 0; i < fr.results.size(); ++i) {
        if (!fr.completed[i] || fr.results[i].ok()) continue;
        const RpcCallResult& leg = fr.results[i];
        if (leg.status == RpcStatus::kExpired && !leg.transport_error) {
          status = 504;
          reason = "Gateway Timeout";
          break;
        }
        if (leg.status == RpcStatus::kShed && !leg.transport_error) {
          status = 503;
          reason = "Service Unavailable";
        } else if (status == 502 && !leg.transport_error &&
                   (leg.status == RpcStatus::kBadRequest ||
                    leg.status == RpcStatus::kBadMethod)) {
          status = 404;
          reason = "Not Found";
        }
      }
      resp.status = status;
      resp.reason = reason;
      if (status == 503) resp.SetHeader("Retry-After", "1");
      resp.body = "app fan-out failed\n";
      return;
    }

    // Assemble the page from the fragments in index order. Under
    // best-effort a failed leg's slot is simply absent — a page with gaps,
    // flagged degraded.
    size_t total = 0;
    for (size_t i = 0; i < fr.results.size(); ++i) {
      if (fr.completed[i] && fr.results[i].ok()) {
        total += fr.results[i].payload.size();
      }
    }
    resp.body.reserve(total);
    for (size_t i = 0; i < fr.results.size(); ++i) {
      if (fr.completed[i] && fr.results[i].ok()) {
        resp.body += fr.results[i].payload;
      }
    }
    if (fr.degraded) resp.SetHeader("X-Hynet-Degraded", "app-partial");
    resp.SetHeader("Content-Type", "text/html");
  };
}

}  // namespace hynet::rubbos
