#include "rubbos/app_rpc.h"

#include <atomic>
#include <cstdio>
#include <vector>

#include "common/deadline.h"
#include "common/thread_util.h"
#include "proto/http_message.h"
#include "rubbos/app_logic.h"
#include "rubbos/db_server.h"

namespace hynet::rubbos {

std::string EncodeRenderPayload(const RenderParams& params) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "/render?type=%s&s=%d&u=%d&page=%d&frag=%d&frags=%d",
                kInteractions[params.index % kInteractionCount].name,
                params.story, params.user, params.page, params.frag,
                params.frags);
  return buf;
}

bool DecodeRenderPayload(std::string_view payload, RenderParams* params) {
  HttpRequest req;
  ParseRequestTarget(payload, &req);
  if (req.path != "/render") return false;
  params->index = InteractionIndex(req.QueryParam("type"));
  if (params->index >= kInteractionCount) return false;
  params->story = static_cast<int>(req.QueryParamInt("s", 0));
  params->user = static_cast<int>(req.QueryParamInt("u", 0));
  params->page = static_cast<int>(req.QueryParamInt("page", 0));
  params->frag = static_cast<int>(req.QueryParamInt("frag", 0));
  params->frags = static_cast<int>(req.QueryParamInt("frags", 1));
  if (params->frags < 1) params->frags = 1;
  if (params->frag < 0 || params->frag >= params->frags) return false;
  return true;
}

std::string CanonicalCacheKey(const RenderParams& params) {
  // Only the request dimensions this interaction's query plan actually
  // reads. The front URL always carries s/u/page; StoriesOfTheDay uses
  // just the page, a Search uses none of them. Keying on unused ids would
  // shatter an effectively tiny key space across every emulated user.
  const Interaction& ix = kInteractions[params.index % kInteractionCount];
  const int story =
      (ix.q_story_detail || ix.q_comments || ix.q_insert) ? params.story : 0;
  const int page = ix.q_story_list ? params.page : 0;
  const int user = ix.q_user ? params.user : 0;
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%s|s=%d|u=%d|p=%d|f=%d/%d", ix.name, story,
                user, page, params.frag, params.frags);
  return buf;
}

namespace {

struct DbCall {
  uint16_t method_id = kDbMethodQuery;
  std::string target;
};

// The interaction's full DB query plan, in the same order the sync servlet
// issues it; fragment f of n then takes plan indices i where i % n == f.
std::vector<DbCall> BuildPlan(const Interaction& ix, const RenderParams& p) {
  std::vector<DbCall> plan;
  char target[96];
  for (int i = 0; i < ix.q_story_list; ++i) {
    std::snprintf(target, sizeof(target), "/q/story_list?page=%d", p.page + i);
    plan.push_back({kDbMethodQuery, target});
  }
  for (int i = 0; i < ix.q_story_detail; ++i) {
    std::snprintf(target, sizeof(target), "/q/story_detail?id=%d", p.story);
    plan.push_back({kDbMethodQuery, target});
  }
  for (int i = 0; i < ix.q_comments; ++i) {
    std::snprintf(target, sizeof(target), "/q/comments?story=%d", p.story + i);
    plan.push_back({kDbMethodQuery, target});
  }
  for (int i = 0; i < ix.q_user; ++i) {
    std::snprintf(target, sizeof(target), "/q/user?id=%d", p.user);
    plan.push_back({kDbMethodQuery, target});
  }
  for (int i = 0; i < ix.q_search; ++i) {
    plan.push_back({kDbMethodQuery, "/q/search?needle=fox"});
  }
  for (int i = 0; i < ix.q_insert; ++i) {
    std::snprintf(target, sizeof(target), "/q/insert_comment?story=%d",
                  p.story);
    plan.push_back({kDbMethodInsert, target});
  }
  return plan;
}

// Worst failed-leg status wins the fragment's verdict: an expired leg
// means the whole budget is gone (kExpired), a shed leg means the DB is
// saying back off (kShed), anything else is a plain failure.
RpcStatus WorstLegStatus(const FanoutResult& fr) {
  RpcStatus worst = RpcStatus::kError;
  for (size_t i = 0; i < fr.results.size(); ++i) {
    if (!fr.completed[i] || fr.results[i].ok()) continue;
    const RpcStatus s = fr.results[i].status;
    if (s == RpcStatus::kExpired) return RpcStatus::kExpired;
    if (s == RpcStatus::kShed && !fr.results[i].transport_error) {
      worst = RpcStatus::kShed;
    }
  }
  return worst;
}

}  // namespace

struct AppRpcService::State {
  AppRpcOptions options;
  std::atomic<LifecycleStats*> lifecycle{nullptr};
  // Per-(interaction, frags) scaffold slices, rendered once and shared by
  // every response and cache entry that needs one.
  std::shared_ptr<const std::string> Scaffold(size_t index, int frags) const {
    const size_t bytes = kInteractions[index].html_bytes /
                         static_cast<size_t>(frags > 0 ? frags : 1);
    return std::make_shared<const std::string>(std::string(bytes, 'h'));
  }
};

AppRpcService::AppRpcService(AppRpcOptions options)
    : state_(std::make_shared<State>()) {
  state_->options = options;
}

void AppRpcService::BindLifecycle(LifecycleStats* lifecycle) {
  state_->lifecycle.store(lifecycle, std::memory_order_release);
  if (state_->options.cache) state_->options.cache->BindLifecycle(lifecycle);
}

ServiceRegistry AppRpcService::Registry() {
  auto state = state_;
  ServiceRegistry registry;
  registry.Register(
      kAppMethodRender, "app_render",
      [state](ServiceRequest sreq, ResponseWriter writer) {
        RenderParams p;
        if (!DecodeRenderPayload(sreq.payload, &p)) {
          writer.Finish(RpcStatus::kBadRequest, "bad render payload");
          return;
        }
        const Interaction& ix = kInteractions[p.index];
        const AppRpcOptions& opt = state->options;
        LifecycleStats* lifecycle =
            state->lifecycle.load(std::memory_order_acquire);
        // Installed by the RPC server's admission path for this handler
        // thread; must be captured now — the fan-in continuation runs on a
        // mesh completion thread with no scoped deadline.
        const Deadline deadline = CurrentRequestDeadline();

        // The writer moves through cache closures and the fan-in callback;
        // shared_ptr keeps the exactly-once Finish contract simple.
        auto w = std::make_shared<ResponseWriter>(std::move(writer));

        // Cacheable = no mutation in the plan.
        const bool cacheable = opt.cache != nullptr && ix.q_insert == 0;
        const std::string key = CanonicalCacheKey(p);
        if (cacheable) {
          CachedResponse hit;
          const auto outcome = opt.cache->Lookup(
              kAppMethodRender, key, &hit, [w](CachedResponse filled) {
                w->Finish(filled.status, filled.body);
              });
          if (outcome == ResponseCache::Outcome::kHit) {
            // Shared body straight onto the zero-copy response path: the
            // cached allocation is referenced, never copied.
            w->Finish(hit.status, hit.body);
            return;
          }
          if (outcome == ResponseCache::Outcome::kMissJoined) return;
          // kMissLead falls through and must Fill below on every path.
        }
        auto publish = [state, cacheable, key](RpcStatus status,
                                               std::shared_ptr<const std::string>
                                                   body,
                                               bool store) {
          if (!cacheable) return;
          state->options.cache->Fill(kAppMethodRender, key,
                                     CachedResponse{status, std::move(body)},
                                     store);
        };

        if (opt.resilience && !opt.resilience->Allow()) {
          // DB breaker open: serve the fragment's scaffold without dynamic
          // content instead of piling onto a failing tier. Failures are
          // published to coalesced waiters but never stored.
          opt.resilience->CountDegraded();
          auto scaffold = state->Scaffold(p.index, p.frags);
          publish(RpcStatus::kOk, scaffold, /*store=*/false);
          w->Finish(RpcStatus::kOk, scaffold);
          return;
        }

        // This fragment's slice of the query plan.
        const std::vector<DbCall> plan = BuildPlan(ix, p);
        std::vector<DbCall> slice;
        for (size_t i = 0; i < plan.size(); ++i) {
          if (static_cast<int>(i % static_cast<size_t>(p.frags)) == p.frag) {
            slice.push_back(plan[i]);
          }
        }
        const double cpu_us =
            ix.app_cpu_us * opt.cpu_multiplier / p.frags;

        if (slice.empty()) {
          // A fragment with no DB work: pure servlet CPU + scaffold.
          BurnCpuMicros(cpu_us);
          auto scaffold = state->Scaffold(p.index, p.frags);
          publish(RpcStatus::kOk, scaffold, /*store=*/true);
          w->Finish(RpcStatus::kOk, scaffold);
          return;
        }

        // Fan the slice out over the app→DB mesh and render on fan-in.
        auto issuer = [state, slice, deadline](size_t i, RpcCallback done) {
          const AppRpcOptions& o = state->options;
          RpcCallOptions call_options;
          call_options.deadline = deadline;
          call_options.idempotent = slice[i].method_id == kDbMethodQuery;
          o.db->Call(slice[i].method_id, slice[i].target, call_options,
                     [state, done = std::move(done)](RpcCallResult r) {
                       TierResilience* res = state->options.resilience;
                       if (res) res->Record(r.ok());
                       done(std::move(r));
                     });
        };
        FanoutOptions fanout_options;
        fanout_options.policy = FanoutPolicy::kAll;
        fanout_options.lifecycle = lifecycle;
        FanoutCall(
            slice.size(), issuer, fanout_options,
            [state, w, publish, p, cpu_us](FanoutResult fr) {
              if (!fr.satisfied) {
                const RpcStatus status = WorstLegStatus(fr);
                publish(status, nullptr, /*store=*/false);
                w->Finish(status, "db fan-out failed");
                return;
              }
              // Fan-in render: servlet CPU, then scaffold + DB payloads in
              // leg order as one shared body — the allocation the cache,
              // coalesced waiters, and this response all reference.
              BurnCpuMicros(cpu_us);
              const size_t scaffold_bytes =
                  kInteractions[p.index].html_bytes /
                  static_cast<size_t>(p.frags);
              size_t total = scaffold_bytes;
              for (const auto& leg : fr.results) total += leg.payload.size();
              std::string body;
              body.reserve(total);
              body.append(scaffold_bytes, 'h');
              for (const auto& leg : fr.results) body += leg.payload;
              auto shared =
                  std::make_shared<const std::string>(std::move(body));
              publish(RpcStatus::kOk, shared, /*store=*/true);
              w->Finish(RpcStatus::kOk, shared);
            });
      });
  return registry;
}

}  // namespace hynet::rubbos
