// Assembly of the 3-tier system (Figure 12 of the paper): web tier (thread
// proxy) → app tier (the architecture under study) → DB tier
// (thread-per-connection, MySQL-like), all over loopback TCP.
//
// The app tier runs the 24 RUBBoS interactions and issues blocking DB
// queries through a JDBC-like connection pool — just like both Tomcat
// versions in the paper (the upgrade changes the *connector*, not the DB
// access path). The app-tier CPU is the intended bottleneck.
#pragma once

#include <memory>
#include <string>

#include "mesh/response_cache.h"
#include "mesh/rpc_channel.h"
#include "metrics/cpu_sample.h"
#include "rubbos/app_rpc.h"
#include "rubbos/db_server.h"
#include "rubbos/web_tier.h"
#include "rubbos/workload.h"
#include "servers/server.h"

namespace hynet::rubbos {

struct ThreeTierConfig {
  // The variable under study: the app-tier connector architecture.
  // kThreadPerConn reproduces SYS_tomcatV7; kReactorPool SYS_tomcatV8;
  // kReactorPoolFix/kMultiLoop/kHybrid are upgrade alternatives.
  ServerArchitecture app_architecture = ServerArchitecture::kThreadPerConn;
  int app_worker_threads = 8;
  int db_connection_pool = 16;
  int web_upstream_pool = 128;
  // Dataset scale.
  int db_stories = 400;
  int db_comments_per_story = 8;
  int db_users = 400;
  double db_cpu_us_per_query = 30.0;
  // Scales every interaction's servlet CPU (kInteractions.app_cpu_us).
  // Raising it moves the app-tier saturation point into a user range that
  // is practical on one host (the paper's testbed saturated at 9000-11000
  // real users; see fig01).
  double app_cpu_multiplier = 1.0;

  // ---- Resilience plane ----
  // All off by default so the paper-faithful measurement paths are
  // untouched. Enabled together by the overload experiments.
  //
  // Honor X-Hynet-Deadline-Ms at every tier and forward the decremented
  // budget on each inter-tier call (web → app → db).
  bool deadline_propagation = false;
  // CoDel queue-delay shedding at the app tier (the intended bottleneck).
  int app_shed_target_delay_ms = 0;
  int app_shed_interval_ms = 100;
  // Retry shed app→db queries under a token-bucket budget.
  bool db_retries = false;
  RetryPolicyConfig db_retry;
  // Circuit breakers with graceful degradation at the web tier (guarding
  // the app upstream) and the app tier (guarding the DB).
  bool circuit_breakers = false;
  CircuitBreakerConfig breaker;

  // ---- Mesh plane (ISSUE 10) ----
  // Inter-tier transport: "sync" (the paper-faithful blocking HTTP chain,
  // the A/B control) or "rpc" (async mesh: web→app and app→db over
  // multiplexed RPC channels with fan-out/fan-in). With "rpc" the DB tier
  // serves the RPC plane, the app tier becomes the Render service on the
  // loop-group chassis, and the web tier fans each interaction out into
  // `fanout` parallel fragments.
  std::string transport = "sync";
  int fanout = 1;
  FanoutPolicy fanout_policy = FanoutPolicy::kAll;
  // Mesh client shape per hop (web→app and app→db use the same shape).
  int mesh_loops = 2;
  int mesh_channels_per_loop = 1;
  size_t mesh_max_inflight = 512;
  // Retry shed/lost idempotent mesh calls under a token-bucket budget.
  bool mesh_retries = false;
  RetryPolicyConfig mesh_retry;
  // App-tier event loops (rpc transport) and DB-tier loops in rpc mode.
  int app_event_loops = 2;
  int db_event_loops = 2;
  // App-tier response cache: > 0 enables with that TTL.
  int app_cache_ttl_ms = 0;
  size_t app_cache_shards = 8;
  size_t app_cache_mb_per_shard = 4;
};

class ThreeTierSystem {
 public:
  explicit ThreeTierSystem(ThreeTierConfig config);
  ~ThreeTierSystem();

  void Start();
  void Stop();

  uint16_t FrontPort() const { return web_->Port(); }
  uint16_t AppPort() const { return app_->Port(); }

  // App-tier observability for the Figure 1 analysis.
  std::vector<int> AppThreadIds() const { return app_->ThreadIds(); }
  ServerCounters AppSnapshot() const { return app_->Snapshot(); }
  ServerCounters WebSnapshot() const { return web_->Snapshot(); }
  ServerCounters DbSnapshot() const;

  // Mesh-mode internals (null on the sync transport): the app-tier cache
  // and the app→DB mesh client, for tests and the bench report.
  ResponseCache* app_cache() { return app_cache_.get(); }
  MeshClient* db_mesh() { return db_mesh_.get(); }
  WebTier* web() { return web_.get(); }

 private:
  ThreeTierConfig config_;
  std::unique_ptr<DbServer> db_;
  std::unique_ptr<DbConnectionPool> db_pool_;
  std::unique_ptr<MeshClient> db_mesh_;
  std::unique_ptr<ResponseCache> app_cache_;
  std::unique_ptr<TierResilience> app_resilience_;
  std::unique_ptr<AppRpcService> app_service_;
  std::unique_ptr<Server> app_;
  std::unique_ptr<WebTier> web_;
};

struct ThreeTierPointResult {
  RubbosWorkloadResult workload;
  ActivityDelta app_activity;  // app-tier threads, measure window

  double Throughput() const { return workload.Throughput(); }
};

// Boots the system, runs the Markov workload at `users`, tears down.
ThreeTierPointResult RunThreeTierPoint(const ThreeTierConfig& system_config,
                                       const RubbosWorkloadConfig& load);

}  // namespace hynet::rubbos
