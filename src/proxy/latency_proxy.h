// Userspace network-latency emulation (substitute for `tc netem` on the
// paper's client machines).
//
// For each proxied connection:
//   * request direction (client→server): bytes are held in a timed queue
//     and delivered to the server after `one_way_delay` — propagation
//     delay on the forward path.
//   * response direction (server→client): the proxy reads from the server
//     in at most `window_bytes` chunks, once per `one_way_delay` tick, and
//     keeps its receive buffer small. Because TCP can only keep
//     (server SO_SNDBUF + proxy SO_RCVBUF) bytes in flight, the server's
//     non-blocking write() returns 0 between ticks exactly as it would
//     behind a real high-latency link waiting for ACKs — reproducing the
//     ACK-clocked write-spin of Figure 5 without root privileges.
//
// The emulation parameters mirror the testbed: default window is 16 KB
// (the default TCP send buffer the paper studies).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <thread>
#include <unordered_map>

#include "common/bytes.h"
#include "net/acceptor.h"
#include "net/event_loop.h"

namespace hynet {

struct LatencyProxyConfig {
  uint16_t listen_port = 0;         // 0 = ephemeral
  InetAddr upstream;                // the real server
  std::chrono::microseconds one_way_delay{0};
  int window_bytes = 16 * 1024;     // response bytes released per tick
  int rcv_buf_bytes = 16 * 1024;    // SO_RCVBUF on the upstream socket

  // ---- Fault injection (chaos experiments; all off by default) ----
  // Probability that a client→server chunk is silently dropped, leaving
  // the server with a forever-partial request (header-timeout food).
  double fault_drop_prob = 0.0;
  // Probability that a connection is blackholed at admission: client
  // bytes are consumed but never forwarded upstream.
  double fault_stall_prob = 0.0;
  // Probability that a connection is aborted (RST via SO_LINGER {1,0})
  // after fault_reset_after_bytes of response data reached the client.
  double fault_reset_prob = 0.0;
  size_t fault_reset_after_bytes = 1024;
  uint64_t fault_seed = 42;
};

class LatencyProxy {
 public:
  explicit LatencyProxy(LatencyProxyConfig config);
  ~LatencyProxy();

  void Start();
  void Stop();
  uint16_t Port() const { return port_; }

  uint64_t ConnectionsProxied() const {
    return conns_proxied_.load(std::memory_order_relaxed);
  }
  uint64_t BytesForwarded() const {
    return bytes_forwarded_.load(std::memory_order_relaxed);
  }
  uint64_t ChunksDropped() const {
    return chunks_dropped_.load(std::memory_order_relaxed);
  }
  uint64_t ConnsStalled() const {
    return conns_stalled_.load(std::memory_order_relaxed);
  }
  uint64_t ConnsReset() const {
    return conns_reset_.load(std::memory_order_relaxed);
  }

 private:
  struct Relay;

  void OnNewClient(Socket client, const InetAddr& peer);
  void OnClientReadable(const std::shared_ptr<Relay>& relay);
  void DeliverPendingRequests(const std::shared_ptr<Relay>& relay);
  void OnUpstreamTick(const std::shared_ptr<Relay>& relay);
  void FlushToClient(const std::shared_ptr<Relay>& relay);
  void CloseRelay(const std::shared_ptr<Relay>& relay);

  LatencyProxyConfig config_;
  std::unique_ptr<EventLoop> loop_;
  std::unique_ptr<Acceptor> acceptor_;
  std::thread loop_thread_;
  uint16_t port_ = 0;
  std::atomic<bool> started_{false};

  std::unordered_map<int, std::shared_ptr<Relay>> relays_;  // by client fd
  uint64_t fault_rng_state_ = 0;  // loop thread only

  std::atomic<uint64_t> conns_proxied_{0};
  std::atomic<uint64_t> bytes_forwarded_{0};
  std::atomic<uint64_t> chunks_dropped_{0};
  std::atomic<uint64_t> conns_stalled_{0};
  std::atomic<uint64_t> conns_reset_{0};
};

}  // namespace hynet
