#include "proxy/latency_proxy.h"

#include <algorithm>

#include "common/clock.h"
#include "common/logging.h"
#include "common/thread_util.h"
#include "net/socket.h"

namespace hynet {
namespace {

// Tiny xorshift64* for the fault draws: deterministic per fault_seed and
// cheap enough to sit on the relay hot path.
double NextFaultU01(uint64_t& state) {
  state ^= state >> 12;
  state ^= state << 25;
  state ^= state >> 27;
  return static_cast<double>((state * 0x2545F4914F6CDD1DULL) >> 11) *
         (1.0 / 9007199254740992.0);
}

}  // namespace

struct LatencyProxy::Relay {
  ScopedFd client_fd;
  ScopedFd upstream_fd;

  // Request direction: bytes waiting out their propagation delay.
  std::deque<std::pair<TimePoint, std::string>> to_server;
  bool deliver_scheduled = false;

  // Response direction: bytes read from the server, pending client write.
  ByteBuffer to_client;
  bool client_writable_armed = false;

  // Fault-injection state.
  bool stalled = false;      // blackholed: client bytes never go upstream
  bool reset_armed = false;  // RST after reset_after_bytes of response
  uint64_t relayed_to_client = 0;

  bool closed = false;
};

LatencyProxy::LatencyProxy(LatencyProxyConfig config)
    : config_(std::move(config)) {
  // A zero delay would turn the per-connection tick into a busy loop; the
  // proxy is only meant for the latency experiments.
  if (config_.one_way_delay < std::chrono::microseconds(100)) {
    config_.one_way_delay = std::chrono::microseconds(100);
  }
  fault_rng_state_ = config_.fault_seed ? config_.fault_seed : 1;
}

LatencyProxy::~LatencyProxy() { Stop(); }

void LatencyProxy::Start() {
  loop_ = std::make_unique<EventLoop>();
  acceptor_ = std::make_unique<Acceptor>(
      *loop_, InetAddr::Loopback(config_.listen_port),
      [this](Socket s, const InetAddr& peer) {
        OnNewClient(std::move(s), peer);
      });
  port_ = acceptor_->Port();
  acceptor_->Listen();

  started_.store(true, std::memory_order_release);
  loop_thread_ = std::thread([this] {
    SetCurrentThreadName("lat-proxy");
    loop_->Run();
    relays_.clear();
  });
}

void LatencyProxy::Stop() {
  if (!started_.exchange(false)) return;
  loop_->Stop();
  if (loop_thread_.joinable()) loop_thread_.join();
  acceptor_.reset();
  loop_.reset();
}

void LatencyProxy::OnNewClient(Socket client, const InetAddr&) {
  auto relay = std::make_shared<Relay>();

  Socket upstream = Socket::CreateTcp(/*nonblocking=*/false);
  // Small receive buffer BEFORE connect: it bounds the bytes the kernel
  // will accept (and ACK) on the server's behalf, which is what throttles
  // the server's sender window down to testbed scale.
  if (config_.rcv_buf_bytes > 0) {
    upstream.SetRecvBufferSize(config_.rcv_buf_bytes);
  }
  try {
    upstream.Connect(config_.upstream);
  } catch (const std::exception& e) {
    HYNET_LOG(WARN) << "proxy upstream connect failed: " << e.what();
    return;
  }
  upstream.SetNonBlocking(true);
  upstream.SetNoDelay(true);
  client.SetNonBlocking(true);
  SetFdNoDelay(client.fd(), true);

  if (config_.fault_stall_prob > 0 &&
      NextFaultU01(fault_rng_state_) < config_.fault_stall_prob) {
    relay->stalled = true;
    conns_stalled_.fetch_add(1, std::memory_order_relaxed);
  }
  if (config_.fault_reset_prob > 0 &&
      NextFaultU01(fault_rng_state_) < config_.fault_reset_prob) {
    relay->reset_armed = true;
  }

  relay->client_fd = client.TakeFd();
  relay->upstream_fd = upstream.TakeFd();
  const int cfd = relay->client_fd.get();
  relays_[cfd] = relay;
  conns_proxied_.fetch_add(1, std::memory_order_relaxed);

  loop_->RegisterFd(cfd, EPOLLIN, [this, relay](uint32_t events) {
    if (events & (EPOLLHUP | EPOLLERR)) {
      CloseRelay(relay);
      return;
    }
    if (events & EPOLLOUT) FlushToClient(relay);
    if (relay->closed) return;
    if (events & EPOLLIN) OnClientReadable(relay);
  });

  // Response pacing tick: one window of server bytes per delay period.
  loop_->RunAfter(config_.one_way_delay,
                  [this, relay] { OnUpstreamTick(relay); });
}

void LatencyProxy::OnClientReadable(const std::shared_ptr<Relay>& relay) {
  char buf[16 * 1024];
  while (true) {
    const IoResult r = ReadFd(relay->client_fd.get(), buf, sizeof(buf));
    if (r.WouldBlock()) break;
    if (r.Eof() || r.Fatal()) {
      CloseRelay(relay);
      return;
    }
    if (relay->stalled) {
      // Blackholed connection: consume and discard. The server sees a
      // connection that never sends anything — idle-timeout food.
      if (static_cast<size_t>(r.n) < sizeof(buf)) break;
      continue;
    }
    if (config_.fault_drop_prob > 0 &&
        NextFaultU01(fault_rng_state_) < config_.fault_drop_prob) {
      // Dropped chunk: the server is left with a partial request that
      // never completes — header-timeout food.
      chunks_dropped_.fetch_add(1, std::memory_order_relaxed);
      if (static_cast<size_t>(r.n) < sizeof(buf)) break;
      continue;
    }
    relay->to_server.emplace_back(Now() + config_.one_way_delay,
                                  std::string(buf, static_cast<size_t>(r.n)));
    if (static_cast<size_t>(r.n) < sizeof(buf)) break;
  }
  if (!relay->deliver_scheduled && !relay->to_server.empty()) {
    relay->deliver_scheduled = true;
    loop_->RunAt(relay->to_server.front().first,
                 [this, relay] { DeliverPendingRequests(relay); });
  }
}

void LatencyProxy::DeliverPendingRequests(const std::shared_ptr<Relay>& relay) {
  relay->deliver_scheduled = false;
  if (relay->closed) return;
  const TimePoint now = Now();
  while (!relay->to_server.empty() && relay->to_server.front().first <= now) {
    auto& [when, data] = relay->to_server.front();
    const IoResult r =
        WriteFd(relay->upstream_fd.get(), data.data(), data.size());
    if (r.WouldBlock()) {
      break;  // retry on the next schedule
    }
    if (r.Fatal()) {
      CloseRelay(relay);
      return;
    }
    bytes_forwarded_.fetch_add(static_cast<uint64_t>(r.n),
                               std::memory_order_relaxed);
    if (static_cast<size_t>(r.n) < data.size()) {
      data.erase(0, static_cast<size_t>(r.n));
      break;
    }
    relay->to_server.pop_front();
  }
  if (!relay->to_server.empty() && !relay->deliver_scheduled) {
    relay->deliver_scheduled = true;
    const TimePoint next =
        std::max(relay->to_server.front().first,
                 now + std::chrono::microseconds(100));
    loop_->RunAt(next, [this, relay] { DeliverPendingRequests(relay); });
  }
}

void LatencyProxy::OnUpstreamTick(const std::shared_ptr<Relay>& relay) {
  if (relay->closed) return;

  // Release at most one window of response bytes per tick — the userspace
  // equivalent of the ACK clock advancing once per RTT.
  int budget = config_.window_bytes;
  char buf[16 * 1024];
  while (budget > 0) {
    const size_t want =
        std::min(sizeof(buf), static_cast<size_t>(budget));
    const IoResult r = ReadFd(relay->upstream_fd.get(), buf, want);
    if (r.WouldBlock()) break;
    if (r.Eof() || r.Fatal()) {
      FlushToClient(relay);
      CloseRelay(relay);
      return;
    }
    relay->to_client.Append(buf, static_cast<size_t>(r.n));
    relay->relayed_to_client += static_cast<uint64_t>(r.n);
    budget -= static_cast<int>(r.n);
  }
  if (relay->reset_armed &&
      relay->relayed_to_client >= config_.fault_reset_after_bytes) {
    // Abort the upstream socket with an RST while the server may still be
    // mid-response — exactly the failure the server write paths must
    // survive. The linger{1,0} close fires when the relay is destroyed.
    SetFdLingerAbort(relay->upstream_fd.get());
    conns_reset_.fetch_add(1, std::memory_order_relaxed);
    FlushToClient(relay);
    CloseRelay(relay);
    return;
  }
  FlushToClient(relay);
  if (relay->closed) return;

  loop_->RunAfter(config_.one_way_delay,
                  [this, relay] { OnUpstreamTick(relay); });
}

void LatencyProxy::FlushToClient(const std::shared_ptr<Relay>& relay) {
  if (relay->closed) return;
  while (relay->to_client.ReadableBytes() > 0) {
    const IoResult r = WriteFd(relay->client_fd.get(), relay->to_client.ReadPtr(),
                               relay->to_client.ReadableBytes());
    if (r.WouldBlock()) {
      if (!relay->client_writable_armed) {
        relay->client_writable_armed = true;
        loop_->ModifyFd(relay->client_fd.get(), EPOLLIN | EPOLLOUT);
      }
      return;
    }
    if (r.Fatal()) {
      CloseRelay(relay);
      return;
    }
    bytes_forwarded_.fetch_add(static_cast<uint64_t>(r.n),
                               std::memory_order_relaxed);
    relay->to_client.Consume(static_cast<size_t>(r.n));
  }
  if (relay->client_writable_armed) {
    relay->client_writable_armed = false;
    loop_->ModifyFd(relay->client_fd.get(), EPOLLIN);
  }
}

void LatencyProxy::CloseRelay(const std::shared_ptr<Relay>& relay) {
  if (relay->closed) return;
  relay->closed = true;
  loop_->UnregisterFd(relay->client_fd.get());
  relays_.erase(relay->client_fd.get());
}

}  // namespace hynet
