// Write-spin detection (the runtime profiling signal of HybridNetty).
//
// One response's write behaviour is summarized as a WriteObservation; the
// monitor turns observations into a light/heavy verdict and keeps running
// totals so the policy can be inspected and ablated.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace hynet {

struct WriteObservation {
  int write_calls = 0;     // write() invocations needed for this response
  bool would_block = false;  // hit a zero-byte/EAGAIN write
  size_t response_bytes = 0;
};

class WriteSpinMonitor {
 public:
  // A response is heavy if it needed more than `heavy_write_threshold`
  // write() calls or blocked on a full TCP send buffer.
  explicit WriteSpinMonitor(int heavy_write_threshold)
      : heavy_write_threshold_(heavy_write_threshold) {}

  bool IsHeavy(const WriteObservation& obs) const {
    return obs.would_block || obs.write_calls > heavy_write_threshold_;
  }

  void Record(const WriteObservation& obs) {
    observations_.fetch_add(1, std::memory_order_relaxed);
    if (IsHeavy(obs)) heavy_observed_.fetch_add(1, std::memory_order_relaxed);
    total_writes_.fetch_add(static_cast<uint64_t>(obs.write_calls),
                            std::memory_order_relaxed);
  }

  uint64_t observations() const {
    return observations_.load(std::memory_order_relaxed);
  }
  uint64_t heavy_observed() const {
    return heavy_observed_.load(std::memory_order_relaxed);
  }
  double MeanWritesPerResponse() const {
    const uint64_t n = observations();
    return n ? static_cast<double>(
                   total_writes_.load(std::memory_order_relaxed)) /
                   static_cast<double>(n)
             : 0.0;
  }

  int heavy_write_threshold() const { return heavy_write_threshold_; }

 private:
  int heavy_write_threshold_;
  std::atomic<uint64_t> observations_{0};
  std::atomic<uint64_t> heavy_observed_{0};
  std::atomic<uint64_t> total_writes_{0};
};

}  // namespace hynet
