#include "core/write_spin.h"

// Header-only today; anchors the translation unit.
namespace hynet {}  // namespace hynet
