// HybridNetty: the paper's solution (Section V-B).
//
// Built on the Netty-style loop group, but every request is routed through
// one of two execution paths chosen at runtime:
//
//   light → the response is written inline, directly from the request
//     handler, with no outbound-buffer bookkeeping — the SingleT-Async
//     fast path that wins when responses fit the TCP send buffer.
//
//   heavy → the response goes through the buffered, writeSpin-capped flush
//     path — Netty's write optimization that wins when responses
//     write-spin (large responses, high-latency links).
//
// The RequestClassifier map records which request types are heavy; a light
// request that turns out to write-spin is reclassified on the spot and its
// remainder is handed to the heavy path (one misprediction per type), and a
// heavy-classified type that drains in one write is demoted back to light,
// so the map tracks runtime drift in both directions.
#pragma once

#include <memory>

#include "core/classifier.h"
#include "core/write_spin.h"
#include "servers/multi_loop.h"

namespace hynet {

class HybridServer final : public LoopGroupServer {
 public:
  HybridServer(ServerConfig config, Handler handler);
  ~HybridServer() override;

  const RequestClassifier& classifier() const { return classifier_; }
  RequestClassifier& classifier() { return classifier_; }
  const WriteSpinMonitor& monitor() const { return monitor_; }

 protected:
  void OnBytes(LoopConn& lc) override;

 private:
  enum class DirectWriteOutcome {
    kLight,  // fully written inline without write-spinning
    kHeavy,  // write-spun; remainder enqueued on the buffered path
    kFatal,  // socket error; caller must close the connection
  };

  // Takes the payload by value: the light path writes it in place
  // (header+body+tail as one iovec batch per syscall); a write-spinning
  // payload is handed to the outbound buffer at its partial offset, so
  // the unsent remainder is never copied either.
  DirectWriteOutcome TryDirectWrite(LoopConn& lc, Payload payload,
                                    int* writes_used);

  RequestClassifier classifier_;
  WriteSpinMonitor monitor_;
};

}  // namespace hynet
