#include "core/hybrid_server.h"

#include "common/logging.h"
#include "net/socket.h"
#include "proto/http_codec.h"

namespace hynet {

HybridServer::HybridServer(ServerConfig config, Handler handler)
    : LoopGroupServer(std::move(config), std::move(handler)),
      monitor_(config_.hybrid_heavy_write_threshold) {}

HybridServer::~HybridServer() { Stop(); }

void HybridServer::OnBytes(LoopConn& lc) {
  while (true) {
    ParseStatus st;
    {
      ScopedPhase phase(phase_profiler_, Phase::kParse);
      st = lc.conn.parser.Parse(lc.conn.in);
    }
    if (st == ParseStatus::kNeedMore) return;
    if (st == ParseStatus::kError) {
      const ParseError err = lc.conn.parser.error();
      if (err == ParseError::kHeadTooLarge ||
          err == ParseError::kBodyTooLarge) {
        lifecycle_.oversize_requests.fetch_add(1, std::memory_order_relaxed);
        lc.conn.close_after_write = true;
        EnqueueAndFlush(lc, Payload::FromString(SimpleErrorResponse(
                                err == ParseError::kHeadTooLarge ? 431 : 413)));
        if (!lc.conn.closed && OutboundIdle(lc)) CloseConn(lc);
        return;
      }
      CloseConn(lc);
      return;
    }
    const HttpRequest& req = lc.conn.parser.request();
    lc.current_target = req.target;
    const int64_t req_start_ns = NowNanos();

    HttpResponse resp;
    {
      ScopedPhase phase(phase_profiler_, Phase::kHandler);
      handler_(req, resp);
    }
    resp.keep_alive =
        req.keep_alive && !draining_.load(std::memory_order_relaxed);
    requests_.fetch_add(1, std::memory_order_relaxed);
    if (!resp.keep_alive) lc.conn.close_after_write = true;

    Payload payload;
    {
      ScopedPhase phase(phase_profiler_, Phase::kSerialize);
      payload = SerializeResponsePayload(resp);
    }

    // Runtime type checking: pick the execution path recorded for this
    // request type. Ordering constraint: if earlier heavy responses are
    // still queued (or in flight on the completion plane), everything must
    // follow them through the buffer.
    const bool must_queue = !OutboundIdle(lc);
    const PathCategory category = classifier_.Lookup(lc.current_target);

    if (must_queue || category == PathCategory::kHeavy) {
      heavy_responses_.fetch_add(1, std::memory_order_relaxed);
      const uint64_t writes_before =
          write_stats_.write_calls.load(std::memory_order_relaxed);
      EnqueueAndFlush(lc, std::move(payload));
      // Heavy→light demotion (runtime drift, Section V-B): if this
      // response — alone in the buffer — drained within the light-path
      // write budget, the type no longer write-spins. (Completion-mode
      // submissions drain at a later CQE, so this inline probe never
      // demotes there; the light path's own success still does.)
      if (!must_queue && !lc.conn.closed && OutboundIdle(lc)) {
        const uint64_t writes_used =
            write_stats_.write_calls.load(std::memory_order_relaxed) -
            writes_before;
        if (writes_used <= static_cast<uint64_t>(std::max(
                               1, config_.hybrid_heavy_write_threshold)) &&
            classifier_.Update(lc.current_target, PathCategory::kLight)) {
          reclassifications_.fetch_add(1, std::memory_order_relaxed);
        }
      }
    } else {
      int writes_used = 0;
      const size_t total = payload.size();
      const DirectWriteOutcome outcome =
          TryDirectWrite(lc, std::move(payload), &writes_used);
      if (outcome == DirectWriteOutcome::kFatal) {
        CloseConn(lc);
        return;
      }
      const bool light_ok = outcome == DirectWriteOutcome::kLight;
      monitor_.Record(WriteObservation{writes_used, !light_ok, total});
      if (light_ok) {
        writes_per_response_->Record(writes_used);
        light_responses_.fetch_add(1, std::memory_order_relaxed);
        // A type previously marked heavy that now drains inline is demoted
        // back to light (runtime drift, Section V-B).
        if (classifier_.Update(lc.current_target, PathCategory::kLight)) {
          reclassifications_.fetch_add(1, std::memory_order_relaxed);
        }
      } else {
        heavy_responses_.fetch_add(1, std::memory_order_relaxed);
        if (classifier_.Update(lc.current_target, PathCategory::kHeavy)) {
          reclassifications_.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }

    // Service latency: request fully parsed → response written (light) or
    // handed to the buffered flush path (heavy).
    request_latency_ns_->Record(NowNanos() - req_start_ns);

    // The connection may have been closed by a write error.
    if (lc.conn.closed) return;
    if (lc.conn.close_after_write && OutboundIdle(lc)) {
      CloseConn(lc);
      return;
    }
  }
}

HybridServer::DirectWriteOutcome HybridServer::TryDirectWrite(
    LoopConn& lc, Payload payload, int* writes_used) {
  ScopedPhase phase(phase_profiler_, Phase::kWrite);
  const int fd = lc.conn.fd.get();
  const size_t total = payload.size();
  size_t off = 0;
  int writes = 0;
  const int max_writes = std::max(1, config_.hybrid_heavy_write_threshold);

  while (off < total && writes < max_writes) {
    struct iovec iov[Payload::kMaxSegments];
    const size_t niov = payload.FillIov(off, iov, Payload::kMaxSegments);
    const IoResult r = WritevFd(fd, iov, static_cast<int>(niov));
    write_stats_.write_calls.fetch_add(1, std::memory_order_relaxed);
    write_stats_.writev_calls.fetch_add(1, std::memory_order_relaxed);
    write_stats_.iov_segments.fetch_add(niov, std::memory_order_relaxed);
    writes++;
    if (r.WouldBlock() || r.n == 0) {
      write_stats_.zero_writes.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    if (r.Fatal()) {
      *writes_used = writes;
      return DirectWriteOutcome::kFatal;
    }
    off += static_cast<size_t>(r.n);
  }
  *writes_used = writes;

  if (off == total) {
    write_stats_.responses.fetch_add(1, std::memory_order_relaxed);
    return DirectWriteOutcome::kLight;
  }

  // Write-spin detected: hand the payload (at its current offset) to the
  // buffered path, which arms EPOLLOUT / reschedules the flush as needed.
  // No bytes are copied — the buffer resumes from `off`.
  EnqueueAndFlush(lc, std::move(payload), off);
  return DirectWriteOutcome::kHeavy;
}

}  // namespace hynet
