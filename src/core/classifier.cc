#include "core/classifier.h"

#include <mutex>

namespace hynet {

const char* PathCategoryName(PathCategory c) {
  switch (c) {
    case PathCategory::kLight: return "light";
    case PathCategory::kHeavy: return "heavy";
  }
  return "unknown";
}

PathCategory RequestClassifier::Lookup(std::string_view key) const {
  lookups_.fetch_add(1, std::memory_order_relaxed);
  std::shared_lock lock(mu_);
  const auto it = map_.find(key);
  return it == map_.end() ? default_category_ : it->second;
}

bool RequestClassifier::Update(std::string_view key, PathCategory observed) {
  {
    std::shared_lock lock(mu_);
    const auto it = map_.find(key);
    if (it != map_.end() && it->second == observed) return false;
  }
  std::unique_lock lock(mu_);
  auto [it, inserted] = map_.emplace(std::string(key), observed);
  if (!inserted) {
    if (it->second == observed) return false;
    it->second = observed;
  } else if (observed == default_category_) {
    // A fresh entry recording the default is not a misprediction.
    return false;
  }
  reclassifications_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

size_t RequestClassifier::Size() const {
  std::shared_lock lock(mu_);
  return map_.size();
}

void RequestClassifier::Clear() {
  std::unique_lock lock(mu_);
  map_.clear();
}

}  // namespace hynet
