// Runtime request classification (the "map object" of Section V-B).
//
// HybridNetty profiles request types during runtime: requests whose
// responses write-spin are *heavy*, the rest are *light*. The map is
// consulted per request to choose the execution path and is updated
// whenever a request is observed to behave differently from its recorded
// category (responses sizes drift with the dataset, so categories are not
// static).
#pragma once

#include <atomic>
#include <cstdint>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace hynet {

enum class PathCategory : uint8_t {
  kLight,  // direct in-line write path (no write-optimization overhead)
  kHeavy,  // buffered, spin-capped write path (Netty's optimization)
};

const char* PathCategoryName(PathCategory c);

class RequestClassifier {
 public:
  // Unknown request types start on the optimistic light path; the first
  // heavy response reclassifies them (one misprediction max per type).
  explicit RequestClassifier(PathCategory default_category =
                                 PathCategory::kLight)
      : default_category_(default_category) {}

  PathCategory Lookup(std::string_view key) const;

  // Records the observed category. Returns true if this changed (or
  // created) the entry — i.e. the request type was misclassified.
  bool Update(std::string_view key, PathCategory observed);

  size_t Size() const;
  uint64_t Reclassifications() const {
    return reclassifications_.load(std::memory_order_relaxed);
  }
  uint64_t Lookups() const { return lookups_.load(std::memory_order_relaxed); }

  void Clear();

 private:
  // Transparent hashing lets the hot-path Lookup take a string_view
  // without materializing a std::string.
  struct StringHash {
    using is_transparent = void;
    size_t operator()(std::string_view sv) const {
      return std::hash<std::string_view>{}(sv);
    }
  };

  PathCategory default_category_;
  mutable std::shared_mutex mu_;
  std::unordered_map<std::string, PathCategory, StringHash, std::equal_to<>>
      map_;
  std::atomic<uint64_t> reclassifications_{0};
  mutable std::atomic<uint64_t> lookups_{0};
};

}  // namespace hynet
