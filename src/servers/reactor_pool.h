// sTomcat-Async / sTomcat-Async-Fix: reactor thread + worker thread pool.
//
// The reactor thread runs the event-monitoring phase (epoll); a pool of
// worker threads runs the event-handling phase. Two write-dispatch modes
// reproduce Figure 3 / Table II:
//
//  kSplit (sTomcat-Async): the worker that parses the request and prepares
//    the response does NOT write it; it notifies the reactor, which
//    dispatches a separate write event to (generally) a different worker.
//    4 logical context switches per request.
//
//  kMerged (sTomcat-Async-Fix): the same worker continues and writes the
//    response. 2 logical context switches per request.
//
// While a worker owns a connection, the connection's fd is removed from the
// epoll set entirely (not just interest-masked) so no reactor callback can
// race with the worker.
#pragma once

#include <atomic>
#include <memory>
#include <thread>
#include <unordered_map>

#include "io/completion_pump.h"
#include "net/acceptor.h"
#include "net/event_loop.h"
#include "runtime/buffer_pool.h"
#include "runtime/worker_pool.h"
#include "servers/connection.h"
#include "servers/server.h"

namespace hynet {

enum class WriteDispatchMode {
  kSplit,   // read and write events handled by different workers
  kMerged,  // one worker handles read + handler + write
};

class ReactorPoolServer final : public Server {
 public:
  ReactorPoolServer(ServerConfig config, Handler handler,
                    WriteDispatchMode mode);
  ~ReactorPoolServer() override;

  void Start() override;
  void Stop() override;
  DrainResult Shutdown(Duration drain_deadline) override;
  uint16_t Port() const override { return port_; }
  std::vector<int> ThreadIds() const override;
  ServerCounters Snapshot() const override;

  const DispatchStats& dispatch_stats() const { return dispatch_stats_; }
  WriteDispatchMode mode() const { return mode_; }

 private:
  void OnNewConnection(Socket socket, const InetAddr& peer);
  // Reactor side: a read event fired for fd.
  void DispatchReadEvent(int fd, uint32_t events);
  // Reactor side: hand `task` to the pool — immediately (dispatch_batch=1,
  // the paper-faithful per-event handoff) or accumulated and flushed once
  // per loop iteration so one condvar wake carries the whole epoll batch.
  void EnqueueWorkerTask(WorkerPool::Task task);
  void FlushDispatchBatch();
  // Worker side: read + parse + handler (+ write in kMerged mode).
  void HandleReadEvent(Connection* conn);
  // Worker side: write the prepared response (kSplit mode only).
  void HandleWriteEvent(Connection* conn);
  // Reactor side: re-enable read interest after a worker finished.
  void RearmRead(Connection* conn);
  // Completion-mode pump hooks (reactor thread). OnPumpReadable dispatches
  // the already-read bytes to a worker — the read itself happened in the
  // kernel, so the worker's handling phase starts at parse.
  bool OnPumpReadable(int fd);
  void OnPumpDrained(int fd);
  // Worker side, completion mode: marshal the prepared response batch to
  // the reactor thread, which queues it on the pump (the completion-plane
  // analogue of SpinWritePayloads + hand-back).
  void CompleteBatchOnLoop(Connection* conn, std::vector<Payload> batch,
                           std::vector<int64_t> starts, bool want_close);
  // True when the reactor (not a worker) currently owns the connection.
  // Readiness mode encodes ownership as epoll registration; completion
  // mode has no registration, so Connection::worker_owned carries it.
  bool ReactorOwned(const Connection& conn) const {
    return completion_mode_ ? !conn.worker_owned
                            : loop_->IsRegistered(conn.fd.get());
  }
  // Reactor side: destroy the connection.
  void CloseConnection(Connection* conn);
  void EvictConnection(Connection* conn, EvictReason reason);
  // Reactor side: periodic deadline sweep. Only touches connections whose
  // fd is currently registered — a missing registration means a worker
  // owns the connection right now.
  void ScheduleSweep();
  void SweepDeadlines();
  uint64_t Live() const {
    return accepted_.load(std::memory_order_relaxed) -
           closed_.load(std::memory_order_relaxed);
  }

  WriteDispatchMode mode_;
  std::unique_ptr<EventLoop> loop_;
  // Completion mode only (see LoopGroupServer for the teardown ordering).
  std::unique_ptr<PoolBufferSource> buffer_source_;
  std::unique_ptr<CompletionPump> pump_;
  bool completion_mode_ = false;
  std::unique_ptr<Acceptor> acceptor_;
  std::unique_ptr<WorkerPool> pool_;
  std::thread loop_thread_;
  std::atomic<int> loop_tid_{0};
  uint16_t port_ = 0;
  std::atomic<bool> started_{false};

  std::unordered_map<int, std::unique_ptr<Connection>> conns_;
  // Read-buffer recycling; Acquire/Release happen on the reactor thread.
  BufferPool buffer_pool_;
  LifecycleDeadlines deadlines_;
  bool accept_paused_ = false;  // loop thread only

  // Tasks accumulated during the current loop iteration (loop thread
  // only); flushed to the pool by the post-iteration hook.
  std::vector<WorkerPool::Task> pending_dispatch_;

  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> closed_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> dispatch_batches_{0};
  WriteStats write_stats_;
  DispatchStats dispatch_stats_;
};

}  // namespace hynet
