#include "servers/ncopy.h"

namespace hynet {

NCopyServer::NCopyServer(ServerConfig config, Handler handler)
    : Server(std::move(config), std::move(handler)) {}

NCopyServer::~NCopyServer() { Stop(); }

void NCopyServer::Start() {
  const int n = std::max(1, config_.ncopy);
  ServerConfig copy_config = config_;
  copy_config.architecture = ServerArchitecture::kSingleThread;
  copy_config.reuse_port = true;

  // First copy may bind an ephemeral port; the rest join it.
  copies_.push_back(
      std::make_unique<SingleThreadServer>(copy_config, handler_));
  copies_.front()->Start();
  port_ = copies_.front()->Port();

  copy_config.port = port_;
  for (int i = 1; i < n; ++i) {
    copies_.push_back(
        std::make_unique<SingleThreadServer>(copy_config, handler_));
    copies_.back()->Start();
  }
}

void NCopyServer::Stop() {
  for (auto& copy : copies_) copy->Stop();
  copies_.clear();
}

std::vector<int> NCopyServer::ThreadIds() const {
  std::vector<int> tids;
  for (const auto& copy : copies_) {
    const auto copy_tids = copy->ThreadIds();
    tids.insert(tids.end(), copy_tids.begin(), copy_tids.end());
  }
  return tids;
}

ServerCounters NCopyServer::Snapshot() const {
  ServerCounters total;
  for (const auto& copy : copies_) {
    const ServerCounters c = copy->Snapshot();
    total.connections_accepted += c.connections_accepted;
    total.connections_closed += c.connections_closed;
    total.requests_handled += c.requests_handled;
    total.responses_sent += c.responses_sent;
    total.write_calls += c.write_calls;
    total.zero_writes += c.zero_writes;
  }
  return total;
}

}  // namespace hynet
