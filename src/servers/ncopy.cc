#include "servers/ncopy.h"

namespace hynet {

NCopyServer::NCopyServer(ServerConfig config, Handler handler)
    : Server(std::move(config), std::move(handler)) {}

NCopyServer::~NCopyServer() { Stop(); }

void NCopyServer::Start() {
  const int n = std::max(1, config_.ncopy);
  ServerConfig copy_config = config_;
  copy_config.architecture = ServerArchitecture::kSingleThread;
  copy_config.reuse_port = true;
  // The admission cap is a deployment-wide budget: split it across copies
  // (the kernel's SO_REUSEPORT hash spreads connections about evenly).
  if (config_.max_connections > 0) {
    copy_config.max_connections = (config_.max_connections + n - 1) / n;
  }

  // First copy may bind an ephemeral port; the rest join it.
  copies_.push_back(
      std::make_unique<SingleThreadServer>(copy_config, handler_));
  copies_.front()->Start();
  port_ = copies_.front()->Port();

  copy_config.port = port_;
  for (int i = 1; i < n; ++i) {
    copies_.push_back(
        std::make_unique<SingleThreadServer>(copy_config, handler_));
    copies_.back()->Start();
  }
}

void NCopyServer::Stop() {
  for (auto& copy : copies_) copy->Stop();
  copies_.clear();
}

DrainResult NCopyServer::Shutdown(Duration drain_deadline) {
  // One shared absolute deadline: copy k's budget is whatever remains
  // after the copies before it drained.
  const TimePoint deadline = Now() + drain_deadline;
  DrainResult total;
  for (auto& copy : copies_) {
    const Duration remaining = std::max(deadline - Now(), Duration::zero());
    const DrainResult r = copy->Shutdown(remaining);
    total.drained += r.drained;
    total.forced += r.forced;
  }
  copies_.clear();
  return total;
}

std::vector<int> NCopyServer::ThreadIds() const {
  std::vector<int> tids;
  for (const auto& copy : copies_) {
    const auto copy_tids = copy->ThreadIds();
    tids.insert(tids.end(), copy_tids.begin(), copy_tids.end());
  }
  return tids;
}

ServerCounters NCopyServer::Snapshot() const {
  ServerCounters total;
  for (const auto& copy : copies_) {
    AccumulateCounters(total, copy->Snapshot());
  }
  return total;
}

}  // namespace hynet
