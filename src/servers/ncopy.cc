#include "servers/ncopy.h"

namespace hynet {

NCopyServer::NCopyServer(ServerConfig config, Handler handler)
    : Server(std::move(config), std::move(handler)) {}

NCopyServer::~NCopyServer() { Stop(); }

void NCopyServer::Start() {
  const int n = std::max(1, config_.ncopy);
  ServerConfig copy_config = config_;
  copy_config.architecture = ServerArchitecture::kSingleThread;
  copy_config.reuse_port = true;
  // The wrapper owns the observability plane: copies share the parent's
  // registry (below) and must not bind their own admin port.
  copy_config.admin_port = -1;
  // The admission cap is a deployment-wide budget: split it across copies
  // (the kernel's SO_REUSEPORT hash spreads connections about evenly).
  if (config_.max_connections > 0) {
    copy_config.max_connections = (config_.max_connections + n - 1) / n;
  }

  {
    std::lock_guard<std::mutex> lock(copies_mu_);
    // First copy may bind an ephemeral port; the rest join it.
    copies_.push_back(
        std::make_unique<SingleThreadServer>(copy_config, handler_));
    // Every copy records its hot-path histograms into the parent's
    // registry; the parent's own collector aggregates the copies'
    // Snapshot() counters (Snapshot() below), so the copies' collectors
    // are dropped by AdoptMetricsRegistry to avoid double counting.
    copies_.front()->AdoptMetricsRegistry(SharedMetrics());
    copies_.front()->Start();
    port_ = copies_.front()->Port();

    copy_config.port = port_;
    for (int i = 1; i < n; ++i) {
      // Stagger each copy's loop onto its own core (copy 0 uses the
      // parent's offset as-is).
      copy_config.pin_cpu_offset = config_.pin_cpu_offset + i;
      copies_.push_back(
          std::make_unique<SingleThreadServer>(copy_config, handler_));
      copies_.back()->AdoptMetricsRegistry(SharedMetrics());
      copies_.back()->Start();
    }
  }
  StartAdminPlane();
}

void NCopyServer::Stop() {
  StopAdminPlane();
  std::vector<std::unique_ptr<SingleThreadServer>> copies;
  {
    std::lock_guard<std::mutex> lock(copies_mu_);
    copies.swap(copies_);
  }
  for (auto& copy : copies) copy->Stop();
}

DrainResult NCopyServer::Shutdown(Duration drain_deadline) {
  // One shared absolute deadline: copy k's budget is whatever remains
  // after the copies before it drained. Copies stay in copies_ while they
  // drain so an admin scrape still sees their counters; /healthz reports
  // draining via the parent's flag.
  const TimePoint deadline = Now() + drain_deadline;
  draining_.store(true, std::memory_order_release);
  std::vector<SingleThreadServer*> live;
  {
    std::lock_guard<std::mutex> lock(copies_mu_);
    for (const auto& copy : copies_) live.push_back(copy.get());
  }
  DrainResult total;
  for (SingleThreadServer* copy : live) {
    const Duration remaining = std::max(deadline - Now(), Duration::zero());
    const DrainResult r = copy->Shutdown(remaining);
    total.drained += r.drained;
    total.forced += r.forced;
  }
  Stop();
  return total;
}

std::vector<int> NCopyServer::ThreadIds() const {
  std::lock_guard<std::mutex> lock(copies_mu_);
  std::vector<int> tids;
  for (const auto& copy : copies_) {
    const auto copy_tids = copy->ThreadIds();
    tids.insert(tids.end(), copy_tids.begin(), copy_tids.end());
  }
  return tids;
}

ServerCounters NCopyServer::Snapshot() const {
  std::lock_guard<std::mutex> lock(copies_mu_);
  ServerCounters total;
  for (const auto& copy : copies_) {
    AccumulateCounters(total, copy->Snapshot());
  }
  return total;
}

}  // namespace hynet
