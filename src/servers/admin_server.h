// Embedded admin plane: a tiny single-threaded HTTP server on a loopback
// side port, serving the observability endpoints for whichever Server owns
// it:
//
//   /metrics     Prometheus text exposition of the metrics registry
//   /stats.json  the same scrape as JSON, for tools/hynet_top.py
//   /healthz     200 "ok", 503 "draining" while Shutdown() drains, or
//                503 "overloaded" while the queue-delay shedder is active
//                (draining takes precedence: a draining server is leaving
//                the pool regardless of load)
//
// Runs its own EventLoop so a scrape never competes with the architecture
// under measurement for a loop thread. Responses queue as Payload nodes in
// an OutboundBuffer and drain via the vectored flush on EPOLLOUT; the
// admin plane's write stats stay private and never pollute the scrape of
// the architecture under measurement.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>

#include "common/bytes.h"
#include "common/fd.h"
#include "common/payload.h"
#include "metrics/registry.h"
#include "net/acceptor.h"
#include "net/event_loop.h"
#include "proto/http_parser.h"
#include "runtime/outbound_buffer.h"

namespace hynet {

class AdminServer {
 public:
  // `draining` and `overloaded` are polled per /healthz request; they must
  // stay callable until Stop() returns (the owning Server stops the plane
  // before teardown). `overloaded` may be null (always healthy).
  AdminServer(uint16_t port, std::shared_ptr<MetricsRegistry> registry,
              std::function<bool()> draining,
              std::function<bool()> overloaded = nullptr);
  ~AdminServer();
  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  void Start();
  void Stop();

  // The bound port (valid after Start(); useful with port 0).
  uint16_t Port() const { return port_; }

 private:
  struct AdminConn {
    explicit AdminConn(ScopedFd fd_in) : fd(std::move(fd_in)) {}
    ScopedFd fd;
    ByteBuffer in;
    HttpRequestParser parser;
    OutboundBuffer out;
    bool close_after_write = false;
  };

  void OnNewConnection(Socket socket);
  void OnEvent(int fd, uint32_t events);
  void HandleRequests(AdminConn& conn);
  void FlushOut(int fd, AdminConn& conn);
  void CloseConn(int fd);
  Payload Respond(const std::string& path);

  const uint16_t requested_port_;
  std::shared_ptr<MetricsRegistry> registry_;
  std::function<bool()> draining_;
  std::function<bool()> overloaded_;

  std::unique_ptr<EventLoop> loop_;
  std::unique_ptr<Acceptor> acceptor_;
  std::thread loop_thread_;
  uint16_t port_ = 0;
  std::atomic<bool> started_{false};
  std::unordered_map<int, std::unique_ptr<AdminConn>> conns_;
  // Admin-plane writes only; deliberately not exported through /metrics.
  WriteStats write_stats_;
};

}  // namespace hynet
