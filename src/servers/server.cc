#include "servers/server.h"

#include "net/socket.h"

namespace hynet {

const char* ArchitectureName(ServerArchitecture arch) {
  switch (arch) {
    case ServerArchitecture::kThreadPerConn:  return "sTomcat-Sync";
    case ServerArchitecture::kReactorPool:    return "sTomcat-Async";
    case ServerArchitecture::kReactorPoolFix: return "sTomcat-Async-Fix";
    case ServerArchitecture::kSingleThread:   return "SingleT-Async";
    case ServerArchitecture::kMultiLoop:      return "NettyServer";
    case ServerArchitecture::kHybrid:         return "HybridNetty";
    case ServerArchitecture::kStaged:         return "StagedSEDA";
    case ServerArchitecture::kSingleThreadNCopy: return "SingleT-NCopy";
  }
  return "unknown";
}

void Server::ConfigureAcceptedFd(int fd) const {
  if (config_.tcp_no_delay) SetFdNoDelay(fd, true);
  if (config_.snd_buf_bytes > 0) {
    SetFdSendBufferSize(fd, config_.snd_buf_bytes);
  }
}

}  // namespace hynet
