#include "servers/server.h"

#include "common/deadline.h"
#include "io/io_backend.h"
#include "net/event_loop.h"
#include "net/socket.h"
#include "proto/http_codec.h"
#include "servers/admin_server.h"

namespace hynet {

const char* ArchitectureName(ServerArchitecture arch) {
  switch (arch) {
    case ServerArchitecture::kThreadPerConn:  return "sTomcat-Sync";
    case ServerArchitecture::kReactorPool:    return "sTomcat-Async";
    case ServerArchitecture::kReactorPoolFix: return "sTomcat-Async-Fix";
    case ServerArchitecture::kSingleThread:   return "SingleT-Async";
    case ServerArchitecture::kMultiLoop:      return "NettyServer";
    case ServerArchitecture::kHybrid:         return "HybridNetty";
    case ServerArchitecture::kStaged:         return "StagedSEDA";
    case ServerArchitecture::kSingleThreadNCopy: return "SingleT-NCopy";
  }
  return "unknown";
}

const char* RpcRouteName(RpcRoute route) {
  switch (route) {
    case RpcRoute::kAuto:    return "auto";
    case RpcRoute::kInline:  return "inline";
    case RpcRoute::kReactor: return "reactor";
    case RpcRoute::kWorker:  return "worker";
  }
  return "unknown";
}

bool ParseRpcRouteName(std::string_view name, RpcRoute* out) {
  if (name == "auto")    { *out = RpcRoute::kAuto;    return true; }
  if (name == "inline")  { *out = RpcRoute::kInline;  return true; }
  if (name == "reactor") { *out = RpcRoute::kReactor; return true; }
  if (name == "worker")  { *out = RpcRoute::kWorker;  return true; }
  return false;
}

std::vector<std::string> ServerConfig::Validate() const {
  std::vector<std::string> errors;
  if (worker_threads < 1) errors.push_back("worker_threads must be >= 1");
  if (event_loops < 1) errors.push_back("event_loops must be >= 1");
  if (stage_threads < 1) errors.push_back("stage_threads must be >= 1");
  if (ncopy < 1) errors.push_back("ncopy must be >= 1");
  if (hybrid_heavy_write_threshold < 1) {
    errors.push_back("hybrid_heavy_write_threshold must be >= 1");
  }
  if (snd_buf_bytes < 0) {
    errors.push_back("snd_buf_bytes must be >= 0 (0 = kernel default)");
  }
  if (idle_timeout_ms < 0) errors.push_back("idle_timeout_ms must be >= 0");
  if (header_timeout_ms < 0) {
    errors.push_back("header_timeout_ms must be >= 0");
  }
  if (write_stall_timeout_ms < 0) {
    errors.push_back("write_stall_timeout_ms must be >= 0");
  }
  if (max_connections < 0) errors.push_back("max_connections must be >= 0");
  if (dispatch_batch < 1) errors.push_back("dispatch_batch must be >= 1");
  if (pin_cpu_offset < 0) errors.push_back("pin_cpu_offset must be >= 0");
  if (outbound_high_water_bytes > 0 &&
      outbound_low_water_bytes > outbound_high_water_bytes) {
    errors.push_back(
        "outbound_low_water_bytes must not exceed outbound_high_water_bytes");
  }
  if (admin_port < -1 || admin_port > 65535) {
    errors.push_back("admin_port must be in [-1, 65535] (-1 disables)");
  }
  if (admin_port > 0 && port != 0 && admin_port == port) {
    errors.push_back("admin_port must differ from port");
  }
  if (!io_backend.empty() && !ParseIoBackendName(io_backend)) {
    errors.push_back("io_backend must be \"\", \"epoll\", or \"uring\"");
  }
  if (!uring_mode.empty() && uring_mode != "completion" &&
      uring_mode != "readiness") {
    errors.push_back(
        "uring_mode must be \"\", \"completion\", or \"readiness\"");
  }
  if (shed_target_delay_ms < 0) {
    errors.push_back("shed_target_delay_ms must be >= 0 (0 disables)");
  }
  if (deadline_margin_ms < 0) {
    errors.push_back("deadline_margin_ms must be >= 0");
  }
  if (shed_target_delay_ms > 0 && shed_interval_ms < 1) {
    errors.push_back("shed_interval_ms must be >= 1 when shedding is on");
  }
  if (!protocol.empty() && protocol != "http" && protocol != "rpc") {
    errors.push_back("protocol must be \"\", \"http\", or \"rpc\"");
  }
  if (protocol == "rpc" &&
      architecture != ServerArchitecture::kMultiLoop &&
      architecture != ServerArchitecture::kHybrid) {
    errors.push_back(
        "protocol \"rpc\" requires architecture kMultiLoop or kHybrid");
  }
  if (!rpc_routes.empty() && protocol != "rpc") {
    errors.push_back("rpc_routes requires protocol \"rpc\"");
  }
  for (size_t i = 0; i < rpc_routes.size(); ++i) {
    for (size_t j = i + 1; j < rpc_routes.size(); ++j) {
      if (rpc_routes[i].method_id == rpc_routes[j].method_id) {
        errors.push_back("rpc_routes has duplicate entry for method_id " +
                         std::to_string(rpc_routes[i].method_id));
      }
    }
  }
  if (cold_idle_ms < 0) errors.push_back("cold_idle_ms must be >= 0");
  if (timer_wheel_tick_ms < 0) {
    errors.push_back("timer_wheel_tick_ms must be >= 0 (0 = 10ms default)");
  }
  if (timer_wheel_slots < 0) {
    errors.push_back("timer_wheel_slots must be >= 0 (0 = derived)");
  }
  if (shards < 0) errors.push_back("shards must be >= 0");
  if (shards > 1) {
    if (architecture == ServerArchitecture::kSingleThreadNCopy) {
      errors.push_back(
          "shards > 1 is incompatible with the N-copy architecture "
          "(itself a sharding scheme; use one or the other)");
    }
    if (protocol == "rpc") {
      errors.push_back("shards > 1 requires protocol \"\" or \"http\"");
    }
  }
  return errors;
}

void AccumulateLoopIoStats(ServerCounters& c, const EventLoop& loop) {
  c.loop_iterations += loop.WakeupCount();
  const IoBackendStats s = loop.BackendStats();
  c.uring_submit_batches += s.submit_batches;
  c.uring_sqes_submitted += s.sqes_submitted;
  c.uring_cqes_reaped += s.cqes_reaped;
  c.uring_fallbacks += s.fallbacks;
  c.uring_eintr_retries += s.eintr_retries;
  c.uring_ebusy_retries += s.ebusy_retries;
  c.uring_feature_fallbacks += s.feature_fallbacks;
  c.uring_zc_downgrades += s.zc_downgrades;
  c.uring_zc_sends += s.zc_sends;
  c.uring_zc_bytes += s.zc_bytes;
  c.uring_zc_copied += s.zc_copied;
  c.uring_bufring_exhausted += s.bufring_exhausted;
}

TimerWheelSpec WheelSpecFor(const ServerConfig& config) {
  TimerWheelSpec spec;
  if (config.timer_wheel_tick_ms > 0) {
    spec.tick = std::chrono::milliseconds(config.timer_wheel_tick_ms);
  }
  if (config.timer_wheel_slots > 0) {
    spec.slots = static_cast<size_t>(config.timer_wheel_slots);
  } else if (config.max_connections > 0) {
    // One slot per ~64 expected connections keeps the per-tick cascade
    // short without letting the slot array itself become a memory cost.
    size_t want = static_cast<size_t>(config.max_connections) / 64;
    size_t slots = 512;
    while (slots < want && slots < 16384) slots *= 2;
    spec.slots = slots;
  }
  return spec;
}

Server::Server(ServerConfig config, Handler handler)
    : config_(std::move(config)),
      handler_(std::move(handler)),
      metrics_(std::make_shared<MetricsRegistry>()) {
  phase_profiler_.Enable(config_.profile_phases);
  ResolveMetricHandles();
  // Scrape-time bridge: the registry view of the legacy counters is
  // generated from the same virtual Snapshot() every caller sees, so the
  // two can never drift. Snapshot() is only invoked on fully constructed,
  // live servers (the admin plane stops before teardown).
  collector_id_ =
      metrics_->AddCollector([this](MetricsBatch& b) { ContributeSnapshot(b); });
  InstallResiliencePlane();
}

namespace {

// Replaces whatever the handler (or defaults) put in `resp` with a
// standalone error body; keep_alive stays untouched because every
// architecture decides it after the handler (draining forces close).
void FillErrorResponse(HttpResponse& resp, int status, const char* reason,
                       const char* body) {
  resp.headers.clear();
  resp.shared_body.reset();
  resp.pushed.clear();
  resp.status = status;
  resp.reason = reason;
  resp.body = body;
}

}  // namespace

void Server::InstallResiliencePlane() {
  if (!config_.ResilienceEnabled() || !handler_) return;
  if (config_.shed_target_delay_ms > 0) {
    shedder_ = std::make_unique<QueueDelayShedder>(
        config_.shed_target_delay_ms, config_.shed_interval_ms);
  }
  handler_ = [this, inner = std::move(handler_)](const HttpRequest& req,
                                                 HttpResponse& resp) {
    const TimePoint now = Now();
    // Where this request started waiting: the dispatch enqueue stamp
    // (reactor/staged pools), else the event-loop tick start (loop
    // architectures), else now (thread-per-connection: no queue).
    const TimePoint arrival = EffectiveRequestStart(now);

    Deadline deadline;
    if (config_.deadline_propagation) {
      // The margin reserves return-leg budget: anchoring the deadline
      // earlier makes "expired" fire while the caller still has time to
      // receive the response.
      deadline = DeadlineFromRequest(
          req, arrival - std::chrono::milliseconds(config_.deadline_margin_ms));
      if (deadline.Expired()) {
        // Already dead on arrival: fail fast instead of doing dead work.
        lifecycle_.deadline_expired.fetch_add(1, std::memory_order_relaxed);
        FillErrorResponse(resp, 504, "Gateway Timeout", "deadline expired\n");
        return;
      }
    }

    if (shedder_ && shedder_->ShouldShed(now - arrival)) {
      lifecycle_.sheds_queue_delay.fetch_add(1, std::memory_order_relaxed);
      FillErrorResponse(resp, 503, "Service Unavailable",
                        "shed: queue delay over target\n");
      resp.SetHeader("Retry-After",
                     std::to_string(shedder_->RetryAfterSec()));
      return;
    }

    if (deadline.valid()) {
      ScopedRequestDeadline scope(deadline);
      inner(req, resp);
      if (deadline.Expired() && resp.status < 500) {
        // Completed past the budget: the caller has moved on, so serving
        // the payload would be a response past its deadline. Replace it.
        lifecycle_.deadline_expired.fetch_add(1, std::memory_order_relaxed);
        FillErrorResponse(resp, 504, "Gateway Timeout", "deadline expired\n");
      }
    } else {
      inner(req, resp);
    }
  };
}

bool Server::Overloaded() const {
  return shedder_ && shedder_->Overloaded();
}

Server::~Server() {
  StopAdminPlane();
  if (collector_id_ != kNoCollector) {
    metrics_->RemoveCollector(collector_id_);
  }
}

void Server::ResolveMetricHandles() {
  request_latency_ns_ = &metrics_->GetHistogram("server_request_latency_ns");
  writes_per_response_ = &metrics_->GetHistogram("server_writes_per_response");
}

void Server::ContributeSnapshot(MetricsBatch& batch) const {
  const ServerCounters c = Snapshot();
#define HYNET_EXPORT_COUNTER_FIELD(field) \
  batch.AddCounter("server_" #field, c.field);
  HYNET_SERVER_COUNTER_FIELDS(HYNET_EXPORT_COUNTER_FIELD)
#undef HYNET_EXPORT_COUNTER_FIELD
  batch.SetGauge("server_draining", Draining() ? 1 : 0);
  batch.SetGauge("server_overloaded", Overloaded() ? 1 : 0);
  batch.SetGauge("timer_wheel_entries",
                 static_cast<int64_t>(TimerWheelEntries()));
  // Derived view: bytes attributed to connections per live connection.
  // Collectors run outside the registry mutex, so reading our own gauges
  // here is safe; both are maintained incrementally by the ConnTables.
  const int64_t conns = metrics_->GetGauge("conn_count").Value();
  const int64_t total = metrics_->GetGauge("conn_bytes_total").Value();
  batch.SetGauge("conn_bytes_per_conn",
                 conns > 0 ? total / conns : 0);
}

void Server::DropSnapshotCollector() {
  if (collector_id_ == kNoCollector) return;
  metrics_->RemoveCollector(collector_id_);
  collector_id_ = kNoCollector;
}

void Server::AdoptMetricsRegistry(std::shared_ptr<MetricsRegistry> registry) {
  if (collector_id_ != kNoCollector) {
    metrics_->RemoveCollector(collector_id_);
    // Deliberately not re-registered: the registry's owner aggregates this
    // server's Snapshot() itself (the N-copy parent), so re-adding the
    // collector would double-count every field.
    collector_id_ = kNoCollector;
  }
  metrics_ = std::move(registry);
  ResolveMetricHandles();
}

void Server::StartAdminPlane() {
  if (config_.admin_port < 0 || admin_) return;
  admin_ = std::make_unique<AdminServer>(
      static_cast<uint16_t>(config_.admin_port), metrics_,
      [this] { return Draining(); }, [this] { return Overloaded(); });
  admin_->Start();
}

void Server::StopAdminPlane() {
  if (!admin_) return;
  admin_->Stop();
  admin_.reset();
}

uint16_t Server::AdminPort() const { return admin_ ? admin_->Port() : 0; }

void Server::ConfigureAcceptedFd(int fd) const {
  if (config_.tcp_no_delay) SetFdNoDelay(fd, true);
  if (config_.snd_buf_bytes > 0) {
    SetFdSendBufferSize(fd, config_.snd_buf_bytes);
  }
}

void Server::ExportLifecycle(ServerCounters& c) const {
#define HYNET_EXPORT_LIFECYCLE_FIELD(field) \
  c.field = lifecycle_.field.load(std::memory_order_relaxed);
  HYNET_SERVER_LIFECYCLE_FIELDS(HYNET_EXPORT_LIFECYCLE_FIELD)
#undef HYNET_EXPORT_LIFECYCLE_FIELD
}

void Server::ShedWith503(int fd) {
  lifecycle_.shed_connections.fetch_add(1, std::memory_order_relaxed);
  const std::string wire = SimpleErrorResponse(503, /*retry_after_sec=*/1);
  (void)WriteFd(fd, wire.data(), wire.size());
}

void AccumulateCounters(ServerCounters& into, const ServerCounters& c) {
#define HYNET_SUM_COUNTER_FIELD(field) into.field += c.field;
  HYNET_SERVER_COUNTER_FIELDS(HYNET_SUM_COUNTER_FIELD)
#undef HYNET_SUM_COUNTER_FIELD
}

ServerCounters operator-(const ServerCounters& a, const ServerCounters& b) {
  ServerCounters d;
#define HYNET_DIFF_COUNTER_FIELD(field) d.field = a.field - b.field;
  HYNET_SERVER_COUNTER_FIELDS(HYNET_DIFF_COUNTER_FIELD)
#undef HYNET_DIFF_COUNTER_FIELD
  return d;
}

std::vector<std::pair<std::string, uint64_t>> CounterRows(
    const ServerCounters& c) {
  return {
#define HYNET_ROW_COUNTER_FIELD(field) {#field, c.field},
      HYNET_SERVER_COUNTER_FIELDS(HYNET_ROW_COUNTER_FIELD)
#undef HYNET_ROW_COUNTER_FIELD
  };
}

std::vector<std::pair<std::string, uint64_t>> LifecycleCounterRows(
    const ServerCounters& c) {
  return {
#define HYNET_ROW_COUNTER_FIELD(field) {#field, c.field},
      HYNET_SERVER_LIFECYCLE_FIELDS(HYNET_ROW_COUNTER_FIELD)
#undef HYNET_ROW_COUNTER_FIELD
  };
}

ServerCounters CountersFromRegistry(const MetricsSnapshot& snap) {
  ServerCounters c;
#define HYNET_LOAD_COUNTER_FIELD(field) \
  c.field = snap.CounterValue("server_" #field);
  HYNET_SERVER_COUNTER_FIELDS(HYNET_LOAD_COUNTER_FIELD)
#undef HYNET_LOAD_COUNTER_FIELD
  return c;
}

}  // namespace hynet
