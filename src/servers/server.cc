#include "servers/server.h"

#include "net/socket.h"
#include "proto/http_codec.h"

namespace hynet {

const char* ArchitectureName(ServerArchitecture arch) {
  switch (arch) {
    case ServerArchitecture::kThreadPerConn:  return "sTomcat-Sync";
    case ServerArchitecture::kReactorPool:    return "sTomcat-Async";
    case ServerArchitecture::kReactorPoolFix: return "sTomcat-Async-Fix";
    case ServerArchitecture::kSingleThread:   return "SingleT-Async";
    case ServerArchitecture::kMultiLoop:      return "NettyServer";
    case ServerArchitecture::kHybrid:         return "HybridNetty";
    case ServerArchitecture::kStaged:         return "StagedSEDA";
    case ServerArchitecture::kSingleThreadNCopy: return "SingleT-NCopy";
  }
  return "unknown";
}

void Server::ConfigureAcceptedFd(int fd) const {
  if (config_.tcp_no_delay) SetFdNoDelay(fd, true);
  if (config_.snd_buf_bytes > 0) {
    SetFdSendBufferSize(fd, config_.snd_buf_bytes);
  }
}

void Server::ExportLifecycle(ServerCounters& c) const {
  const auto get = [](const std::atomic<uint64_t>& v) {
    return v.load(std::memory_order_relaxed);
  };
  c.idle_evictions = get(lifecycle_.idle_evictions);
  c.header_evictions = get(lifecycle_.header_evictions);
  c.write_stall_evictions = get(lifecycle_.write_stall_evictions);
  c.shed_connections = get(lifecycle_.shed_connections);
  c.accept_pauses = get(lifecycle_.accept_pauses);
  c.backpressure_pauses = get(lifecycle_.backpressure_pauses);
  c.backpressure_resumes = get(lifecycle_.backpressure_resumes);
  c.oversize_requests = get(lifecycle_.oversize_requests);
  c.half_close_reclaims = get(lifecycle_.half_close_reclaims);
  c.drained_connections = get(lifecycle_.drained_connections);
  c.forced_closes = get(lifecycle_.forced_closes);
}

void Server::ShedWith503(int fd) {
  lifecycle_.shed_connections.fetch_add(1, std::memory_order_relaxed);
  const std::string wire = SimpleErrorResponse(503);
  (void)WriteFd(fd, wire.data(), wire.size());
}

void AccumulateCounters(ServerCounters& into, const ServerCounters& c) {
  into.connections_accepted += c.connections_accepted;
  into.connections_closed += c.connections_closed;
  into.requests_handled += c.requests_handled;
  into.responses_sent += c.responses_sent;
  into.write_calls += c.write_calls;
  into.zero_writes += c.zero_writes;
  into.spin_capped_flushes += c.spin_capped_flushes;
  into.logical_switches += c.logical_switches;
  into.light_path_responses += c.light_path_responses;
  into.heavy_path_responses += c.heavy_path_responses;
  into.reclassifications += c.reclassifications;
  into.idle_evictions += c.idle_evictions;
  into.header_evictions += c.header_evictions;
  into.write_stall_evictions += c.write_stall_evictions;
  into.shed_connections += c.shed_connections;
  into.accept_pauses += c.accept_pauses;
  into.backpressure_pauses += c.backpressure_pauses;
  into.backpressure_resumes += c.backpressure_resumes;
  into.oversize_requests += c.oversize_requests;
  into.half_close_reclaims += c.half_close_reclaims;
  into.drained_connections += c.drained_connections;
  into.forced_closes += c.forced_closes;
}

std::vector<std::pair<std::string, uint64_t>> LifecycleCounterRows(
    const ServerCounters& c) {
  return {
      {"idle_evictions", c.idle_evictions},
      {"header_evictions", c.header_evictions},
      {"write_stall_evictions", c.write_stall_evictions},
      {"shed_connections", c.shed_connections},
      {"accept_pauses", c.accept_pauses},
      {"backpressure_pauses", c.backpressure_pauses},
      {"backpressure_resumes", c.backpressure_resumes},
      {"oversize_requests", c.oversize_requests},
      {"half_close_reclaims", c.half_close_reclaims},
      {"drained_connections", c.drained_connections},
      {"forced_closes", c.forced_closes},
  };
}

}  // namespace hynet
