// Per-connection state and the shared non-blocking write paths.
#pragma once

#include <string>
#include <string_view>

#include "common/bytes.h"
#include "common/fd.h"
#include "proto/http_parser.h"
#include "runtime/dispatch_stats.h"
#include "runtime/outbound_buffer.h"

namespace hynet {

// Connection state used by the event-driven architectures. The blocking
// thread-per-connection server keeps its state on the worker thread's stack
// instead.
struct Connection {
  explicit Connection(ScopedFd fd_in, int spin_cap)
      : fd(std::move(fd_in)), out(spin_cap) {}

  ScopedFd fd;
  ByteBuffer in;
  HttpRequestParser parser;

  // Netty-style buffered write path (multi-loop / hybrid heavy path).
  OutboundBuffer out;
  bool want_writable = false;  // EPOLLOUT currently armed
  bool flush_rescheduled = false;  // spin-capped flush task queued

  // Prepared response waiting for the split write dispatch
  // (sTomcat-Async only: worker A parks it here for worker B).
  std::string pending_response;

  bool close_after_write = false;
  bool closed = false;
  uint64_t requests = 0;
};

enum class SpinWriteResult { kOk, kPeerClosed };

// The naive non-blocking write loop studied in Section IV: keeps calling
// write() until the whole buffer is in the kernel. Counts every write()
// and every zero-byte result in `stats`. If `yield_on_full` is set the
// thread sched_yield()s after a zero-byte write (otherwise it spins hot).
SpinWriteResult SpinWriteAll(int fd, std::string_view data,
                             WriteStats& stats, bool yield_on_full);

// Blocking write used by the thread-per-connection server: the fd is in
// blocking mode, so the kernel parks the thread until the TCP window opens
// (one write() per response for any size the kernel can eventually absorb).
SpinWriteResult BlockingWriteAll(int fd, std::string_view data,
                                 WriteStats& stats);

}  // namespace hynet
