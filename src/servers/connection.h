// Per-connection state and the shared non-blocking write paths.
#pragma once

#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/fd.h"
#include "common/payload.h"
#include "proto/http_parser.h"
#include "runtime/dispatch_stats.h"
#include "runtime/outbound_buffer.h"

namespace hynet {

// The three per-connection deadlines, as durations (zero = disabled).
// Derived once from ServerConfig's *_timeout_ms fields.
struct LifecycleDeadlines {
  Duration idle = Duration::zero();
  Duration header = Duration::zero();
  Duration write_stall = Duration::zero();

  static LifecycleDeadlines FromMillis(int idle_ms, int header_ms,
                                       int write_stall_ms);
  bool Any() const {
    return idle > Duration::zero() || header > Duration::zero() ||
           write_stall > Duration::zero();
  }
};

// Lifecycle bookkeeping carried by every event-driven connection and
// inspected by the periodic deadline sweep.
struct ConnLifecycle {
  TimePoint last_activity{};    // last byte read or written
  TimePoint head_start{};       // when the pending partial request began
  TimePoint stall_start{};      // when the outbound buffer last made progress
  bool head_pending = false;    // a request head/body is partially received
  bool write_stalled = false;   // outbound bytes are waiting on the peer
  bool reading_paused = false;  // EPOLLIN dropped at the high-water mark
  bool peer_half_closed = false;  // EPOLLRDHUP / read EOF observed
};

enum class EvictReason { kNone, kIdle, kHeaderTimeout, kWriteStall };

// Evaluates the configured deadlines against one connection's state.
// Write stalls are checked first (an evicted stalled writer also looks
// idle), then partial-head timeouts, then keep-alive idleness.
EvictReason CheckDeadlines(const ConnLifecycle& lc,
                           const LifecycleDeadlines& deadlines, TimePoint now);

// How often the eviction sweep should run: a quarter of the shortest
// enabled deadline (including the idle-cold reclamation threshold, when
// enabled), clamped to [10ms, 1s].
Duration SweepPeriod(const LifecycleDeadlines& deadlines,
                     Duration cold_idle = Duration::zero());

// Connection state used by the event-driven architectures. The blocking
// thread-per-connection server keeps its state on the worker thread's stack
// instead.
struct Connection {
  explicit Connection(ScopedFd fd_in, int spin_cap)
      : fd(std::move(fd_in)), out(spin_cap) {}

  ScopedFd fd;
  ByteBuffer in;
  HttpRequestParser parser;

  // Netty-style buffered write path (multi-loop / hybrid heavy path).
  OutboundBuffer out;
  bool want_writable = false;  // EPOLLOUT currently armed
  bool flush_rescheduled = false;  // spin-capped flush task queued

  // Prepared responses waiting for the split write dispatch
  // (sTomcat-Async and staged: worker A parks them here for worker B).
  // One Payload per response so the batch write stays vectored and the
  // per-response boundaries survive for accounting.
  std::vector<Payload> pending_batch;
  // Request-arrival stamps (ns) for responses awaiting their batch write;
  // drained into the request-latency histogram when the write completes
  // (reactor-pool and staged servers, where the write is a later step).
  std::vector<int64_t> batch_request_starts;

  // Completion-mode (io_uring) write queue: responses wait here while one
  // SENDMSG op covers the queue head; the payload copies handed to the
  // engine share these bodies, so the bytes live until the CQE lands.
  struct UringWriteNode {
    Payload payload;
    int writes = 0;        // SENDMSG submissions that included this response
    int64_t start_ns = 0;  // request arrival, for the latency histogram
  };
  std::deque<UringWriteNode> uring_q;
  size_t uring_q_offset = 0;  // bytes of the front payload already sent
  size_t uring_q_bytes = 0;   // unsent bytes across the queue (backpressure)
  bool uring_write_inflight = false;
  // Completion mode: a read SQE is armed on this fd (CompletionPump keeps
  // exactly one outstanding; re-arming is idempotent through this flag).
  bool uring_read_armed = false;
  // Completion mode, dispatching architectures (reactor-pool / staged): the
  // connection is checked out to a worker chain, so the loop has no read
  // armed and the sweep must leave it alone. Replaces the epoll-era
  // "!loop_->IsRegistered(fd)" ownership test, which has no completion
  // equivalent.
  bool worker_owned = false;

  bool close_after_write = false;
  bool closed = false;
  uint64_t requests = 0;

  // Idle-cold reclamation (ServerConfig::cold_idle_ms): the sweep released
  // this connection's pooled read buffer and shrank codec scratch; the
  // next readable byte revives it (re-acquiring from the pool on the epoll
  // paths, growing `in` organically on the completion path).
  bool cold = false;
  // Bytes last reported to the ConnTable gauges for this connection, so
  // re-accounting applies a delta instead of a rescan (see conn_table.h);
  // accounted_cold mirrors `cold` as last reported to the conn_cold gauge.
  size_t accounted_bytes = 0;
  bool accounted_cold = false;

  ConnLifecycle lifecycle;
};

enum class SpinWriteResult { kOk, kPeerClosed, kStalled };

// The naive non-blocking write loop studied in Section IV: keeps calling
// write() until the whole buffer is in the kernel. Counts every write()
// and every zero-byte result in `stats`. If `yield_on_full` is set the
// thread sched_yield()s after a zero-byte write (otherwise it spins hot).
// A positive `stall_timeout` bounds the spin: if no byte makes progress
// for that long the loop gives up with kStalled so the caller can evict
// the dead peer instead of pinning the thread forever.
// `writes_out` (when non-null) receives the number of write() calls this
// response needed — the per-response figure behind Table IV, fed to the
// writes-per-response histogram without diffing shared WriteStats.
SpinWriteResult SpinWriteAll(int fd, std::string_view data,
                             WriteStats& stats, bool yield_on_full,
                             Duration stall_timeout = Duration::zero(),
                             int* writes_out = nullptr);

// Vectored spin write over a batch of payloads: one writev syscall covers
// as many payload segments as fit under the iovec cap, so a batch of
// pipelined responses drains without per-message syscalls and without
// concatenating header+body into a scratch buffer. Spin semantics match
// SpinWriteAll (zero-write accounting, optional yield and stall timeout).
// `stats.responses` advances by `count` on success; `writes_out` receives
// the total syscalls the batch needed.
SpinWriteResult SpinWritePayloads(int fd, const Payload* payloads,
                                  size_t count, WriteStats& stats,
                                  bool yield_on_full,
                                  Duration stall_timeout = Duration::zero(),
                                  int* writes_out = nullptr);

// Single-payload convenience over SpinWritePayloads.
SpinWriteResult SpinWriteAll(int fd, const Payload& payload,
                             WriteStats& stats, bool yield_on_full,
                             Duration stall_timeout = Duration::zero(),
                             int* writes_out = nullptr);

// Blocking write used by the thread-per-connection server: the fd is in
// blocking mode, so the kernel parks the thread until the TCP window opens
// (one write() per response for any size the kernel can eventually absorb).
// With SO_SNDTIMEO armed a stalled peer surfaces as EAGAIN, reported here
// as kStalled.
SpinWriteResult BlockingWriteAll(int fd, std::string_view data,
                                 WriteStats& stats,
                                 int* writes_out = nullptr);

// Payload overload: writes header+body+tail as one iovec batch per
// syscall (writev), never concatenating them first.
SpinWriteResult BlockingWriteAll(int fd, const Payload& payload,
                                 WriteStats& stats,
                                 int* writes_out = nullptr);

}  // namespace hynet
