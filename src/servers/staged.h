// StagedSEDA: the staged event-driven design of SEDA / WatPipe
// (Section II-A, second design's "staged" variant).
//
// Request processing is decomposed into a pipeline of stages separated by
// event queues, each stage with its own small thread pool:
//
//   reactor --(read event)--> [parse stage] --> [app stage] --> [write
//   stage] --(re-arm)--> reactor
//
// The modularity costs one queue handoff per stage: 4 logical context
// switches per request, like sTomcat-Async, but with the read/handle/write
// work split across *specialized* pools instead of one general pool —
// the trade-off the paper's related-work section attributes to SEDA.
#pragma once

#include <atomic>
#include <memory>
#include <thread>
#include <unordered_map>

#include "io/completion_pump.h"
#include "net/acceptor.h"
#include "net/event_loop.h"
#include "runtime/buffer_pool.h"
#include "runtime/worker_pool.h"
#include "servers/connection.h"
#include "servers/server.h"

namespace hynet {

class StagedServer final : public Server {
 public:
  StagedServer(ServerConfig config, Handler handler);
  ~StagedServer() override;

  void Start() override;
  void Stop() override;
  DrainResult Shutdown(Duration drain_deadline) override;
  uint16_t Port() const override { return port_; }
  std::vector<int> ThreadIds() const override;
  ServerCounters Snapshot() const override;

 private:
  void OnNewConnection(Socket socket, const InetAddr& peer);
  void DispatchReadEvent(int fd, uint32_t events);
  // Reactor side: hand a read event to the parse stage — immediately
  // (dispatch_batch=1) or accumulated and flushed once per loop iteration.
  // Inter-stage hops happen on worker threads and are instead amortized on
  // the consumer side (each stage worker drains up to dispatch_batch tasks
  // per condvar wake).
  void EnqueueParseTask(WorkerPool::Task task);
  void FlushDispatchBatch();
  // Stage 1: read raw bytes + parse complete requests.
  void ParseStage(Connection* conn);
  // Stage 2: run the application handler, serialize responses.
  void AppStage(Connection* conn);
  // Stage 3: write the response bytes out (spin write, as in the
  // non-buffered asynchronous designs the paper studies).
  void WriteStage(Connection* conn);
  void RearmRead(Connection* conn);
  // Completion-mode pump hooks (reactor thread). The read CQE's bytes are
  // already in conn->in; the parse stage starts at parse, and the write
  // stage's spin write becomes a pump submission marshalled back here.
  bool OnPumpReadable(int fd);
  void OnPumpDrained(int fd);
  void CompleteBatchOnLoop(Connection* conn, std::vector<Payload> batch,
                           std::vector<int64_t> starts, bool want_close);
  // True when the reactor (not a stage worker) owns the connection.
  // Readiness mode encodes ownership as epoll registration; completion
  // mode has no registration, so Connection::worker_owned carries it.
  bool ReactorOwned(const Connection& conn) const {
    return completion_mode_ ? !conn.worker_owned
                            : loop_->IsRegistered(conn.fd.get());
  }
  void CloseConnection(Connection* conn);
  void EvictConnection(Connection* conn, EvictReason reason);
  // Reactor side: periodic deadline sweep over reactor-owned (registered)
  // connections; fds inside a stage pool are skipped until handed back.
  void ScheduleSweep();
  void SweepDeadlines();
  uint64_t Live() const {
    return accepted_.load(std::memory_order_relaxed) -
           closed_.load(std::memory_order_relaxed);
  }

  std::unique_ptr<EventLoop> loop_;
  // Completion mode only (see LoopGroupServer for the teardown ordering).
  std::unique_ptr<PoolBufferSource> buffer_source_;
  std::unique_ptr<CompletionPump> pump_;
  bool completion_mode_ = false;
  std::unique_ptr<Acceptor> acceptor_;
  std::unique_ptr<WorkerPool> parse_pool_;
  std::unique_ptr<WorkerPool> app_pool_;
  std::unique_ptr<WorkerPool> write_pool_;
  std::thread loop_thread_;
  std::atomic<int> loop_tid_{0};
  uint16_t port_ = 0;
  std::atomic<bool> started_{false};

  std::unordered_map<int, std::unique_ptr<Connection>> conns_;
  // Read-buffer recycling; Acquire/Release happen on the reactor thread.
  BufferPool buffer_pool_;
  LifecycleDeadlines deadlines_;
  bool accept_paused_ = false;  // loop thread only

  // Tasks accumulated during the current loop iteration (loop thread
  // only); flushed to the parse pool by the post-iteration hook.
  std::vector<WorkerPool::Task> pending_dispatch_;

  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> closed_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> dispatch_batches_{0};
  WriteStats write_stats_;
  DispatchStats dispatch_stats_;
};

}  // namespace hynet
