#include "servers/reactor_pool.h"

#include <sys/socket.h>

#include "common/deadline.h"
#include "common/logging.h"
#include "common/thread_util.h"
#include "proto/http_codec.h"

namespace hynet {

ReactorPoolServer::ReactorPoolServer(ServerConfig config, Handler handler,
                                     WriteDispatchMode mode)
    : Server(std::move(config), std::move(handler)), mode_(mode) {}

ReactorPoolServer::~ReactorPoolServer() { Stop(); }

void ReactorPoolServer::Start() {
  deadlines_ = LifecycleDeadlines::FromMillis(config_.idle_timeout_ms,
                                              config_.header_timeout_ms,
                                              config_.write_stall_timeout_ms);
  buffer_pool_.BindMetrics(metrics());
  loop_ = std::make_unique<EventLoop>(ResolveIoBackendKind(config_.io_backend));
  completion_mode_ = loop_->CompletionModeAvailable() &&
                     config_.uring_mode != "readiness";
  if (completion_mode_) {
    buffer_source_ = std::make_unique<PoolBufferSource>(buffer_pool_);
    loop_->SetReadBufferSource(buffer_source_.get());
    // auto_rearm=false: the read SQE re-arms only when a worker hands the
    // connection back (RearmRead / OnPumpDrained), preserving the
    // reactor-or-worker ownership discipline the readiness path gets from
    // unregistering the fd.
    pump_ = std::make_unique<CompletionPump>(
        *loop_, write_stats_, writes_per_response_, request_latency_ns_,
        CompletionPump::Hooks{
            [this](int fd) { return OnPumpReadable(fd); },
            [this](int fd) {
              auto it = conns_.find(fd);
              if (it != conns_.end()) CloseConnection(it->second.get());
            },
            [this](int fd) { OnPumpDrained(fd); },
        },
        CompletionPump::Options{.auto_rearm = false});
  }
  if (config_.dispatch_batch > 1) {
    loop_->SetPostIterationHook([this] { FlushDispatchBatch(); });
  }
  WorkerPool::Options pool_opts;
  pool_opts.max_pop_batch = static_cast<size_t>(config_.dispatch_batch);
  // Cpu layout: reactor on offset+0, workers on offset+1..offset+N.
  pool_opts.pin_cpu_base = config_.pin_cpus ? config_.pin_cpu_offset + 1 : -1;
  pool_ = std::make_unique<WorkerPool>(config_.worker_threads, "rp-worker",
                                       pool_opts);
  pool_->BindQueueDepthGauge(&metrics().GetGauge("worker_queue_depth"));
  acceptor_ = std::make_unique<Acceptor>(
      *loop_, InetAddr::Loopback(config_.port),
      [this](Socket s, const InetAddr& peer) {
        OnNewConnection(std::move(s), peer);
      });
  port_ = acceptor_->Port();
  acceptor_->Listen();

  started_.store(true, std::memory_order_release);
  loop_thread_ = std::thread([this] {
    SetCurrentThreadName("rp-reactor");
    if (config_.pin_cpus) PinThread(config_.pin_cpu_offset);
    loop_tid_.store(CurrentTid(), std::memory_order_release);
    loop_->Run();
    conns_.clear();
  });
  while (loop_tid_.load(std::memory_order_acquire) == 0) {
    std::this_thread::yield();
  }
  if (deadlines_.Any()) ScheduleSweep();
  StartAdminPlane();
}

void ReactorPoolServer::Stop() {
  StopAdminPlane();
  if (!started_.exchange(false)) return;
  // Workers first: their completions queue tasks onto the loop, which is
  // safe while the loop is stopping but not after it is destroyed.
  pool_->Shutdown();
  loop_->Stop();
  if (loop_thread_.joinable()) loop_thread_.join();
  acceptor_.reset();
  pool_.reset();
  pump_.reset();  // references *loop_
  loop_.reset();  // engine returns read buffers through buffer_source_
  buffer_source_.reset();
}

DrainResult ReactorPoolServer::Shutdown(Duration drain_deadline) {
  if (!started_.load(std::memory_order_acquire)) return {};
  const TimePoint deadline = Now() + drain_deadline;
  const uint64_t closed_before = closed_.load(std::memory_order_relaxed);
  draining_.store(true, std::memory_order_release);

  loop_->RunInLoop([this] {
    if (acceptor_) acceptor_->Pause();
    std::vector<Connection*> idle;
    for (const auto& [fd, conn] : conns_) {
      // Only reactor-owned connections can be closed here; a worker-held
      // connection will observe draining_ on its way out.
      if (ReactorOwned(*conn) && conn->in.ReadableBytes() == 0 &&
          !conn->parser.InProgress() && CompletionPump::Idle(*conn)) {
        idle.push_back(conn.get());
      }
    }
    for (Connection* conn : idle) CloseConnection(conn);
  });

  while (Now() < deadline && Live() > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  std::atomic<uint64_t> forced{0};
  std::atomic<bool> force_done{false};
  loop_->RunInLoop([this, &forced, &force_done] {
    std::vector<Connection*> owned;
    std::vector<int> worker_owned;
    for (const auto& [fd, conn] : conns_) {
      if (ReactorOwned(*conn)) {
        owned.push_back(conn.get());
      } else {
        worker_owned.push_back(fd);
      }
    }
    for (Connection* conn : owned) CloseConnection(conn);
    // A worker still holds a raw pointer to each of these; destroying them
    // here would be a use-after-free. shutdown() makes the worker's next
    // read/write fail so it finishes through the normal close path.
    for (const int fd : worker_owned) ::shutdown(fd, SHUT_RDWR);
    forced.store(owned.size() + worker_owned.size(),
                 std::memory_order_relaxed);
    force_done.store(true, std::memory_order_release);
  });
  while (!force_done.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Give shutdown()-poked workers a moment to unwind into CloseConnection.
  const TimePoint grace = Now() + std::chrono::milliseconds(500);
  while (Now() < grace && Live() > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  DrainResult result;
  result.forced = forced.load(std::memory_order_relaxed);
  const uint64_t closed_total =
      closed_.load(std::memory_order_relaxed) - closed_before;
  result.drained =
      closed_total >= result.forced ? closed_total - result.forced : 0;
  lifecycle_.forced_closes.fetch_add(result.forced, std::memory_order_relaxed);
  lifecycle_.drained_connections.fetch_add(result.drained,
                                           std::memory_order_relaxed);
  Stop();
  return result;
}

std::vector<int> ReactorPoolServer::ThreadIds() const {
  std::vector<int> tids = pool_ ? pool_->ThreadIds() : std::vector<int>{};
  const int tid = loop_tid_.load(std::memory_order_acquire);
  if (tid) tids.push_back(tid);
  return tids;
}

ServerCounters ReactorPoolServer::Snapshot() const {
  ServerCounters c;
  c.connections_accepted = accepted_.load(std::memory_order_relaxed);
  c.connections_closed = closed_.load(std::memory_order_relaxed);
  c.requests_handled = requests_.load(std::memory_order_relaxed);
  c.responses_sent = write_stats_.responses.load(std::memory_order_relaxed);
  c.write_calls = write_stats_.write_calls.load(std::memory_order_relaxed);
  c.zero_writes = write_stats_.zero_writes.load(std::memory_order_relaxed);
  c.writev_calls = write_stats_.writev_calls.load(std::memory_order_relaxed);
  c.iov_segments = write_stats_.iov_segments.load(std::memory_order_relaxed);
  c.logical_switches = dispatch_stats_.LogicalSwitches();
  c.dispatch_batches = dispatch_batches_.load(std::memory_order_relaxed);
  c.read_calls = write_stats_.read_calls.load(std::memory_order_relaxed);
  if (loop_) {
    c.wakeup_writes_issued = loop_->WakeupWritesIssued();
    c.wakeup_writes_elided = loop_->WakeupWritesElided();
    AccumulateLoopIoStats(c, *loop_);
  }
  ExportLifecycle(c);
  return c;
}

void ReactorPoolServer::OnNewConnection(Socket socket, const InetAddr&) {
  if (config_.max_connections > 0 &&
      Live() >= static_cast<uint64_t>(config_.max_connections)) {
    ShedWith503(socket.fd());
    return;
  }
  socket.SetNonBlocking(true);
  ConfigureAcceptedFd(socket.fd());
  const int fd = socket.fd();
  auto conn = std::make_unique<Connection>(socket.TakeFd(),
                                           config_.write_spin_cap);
  conn->in = buffer_pool_.Acquire();
  conn->lifecycle.last_activity = Now();
  conn->parser.SetLimits(config_.max_request_head_bytes,
                         config_.max_request_body_bytes);
  Connection* raw = conn.get();
  conns_[fd] = std::move(conn);
  accepted_.fetch_add(1, std::memory_order_relaxed);
  if (completion_mode_) {
    pump_->Watch(fd, raw);
  } else {
    loop_->RegisterFd(fd, EPOLLIN | EPOLLRDHUP, [this, raw](uint32_t events) {
      DispatchReadEvent(raw->fd.get(), events);
    });
  }
  if (config_.max_connections > 0 && !config_.shed_with_503 &&
      !accept_paused_ &&
      Live() >= static_cast<uint64_t>(config_.max_connections)) {
    acceptor_->Pause();
    accept_paused_ = true;
    lifecycle_.accept_pauses.fetch_add(1, std::memory_order_relaxed);
  }
}

void ReactorPoolServer::DispatchReadEvent(int fd, uint32_t events) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Connection* conn = it->second.get();

  if (events & (EPOLLHUP | EPOLLERR)) {
    CloseConnection(conn);
    return;
  }
  if (events & EPOLLRDHUP) conn->lifecycle.peer_half_closed = true;

  // Step 1 (Figure 3): reactor dispatches the read event to a worker.
  // Remove the fd from epoll so nothing races with the worker.
  loop_->UnregisterFd(fd);
  dispatch_stats_.dispatches_to_worker.fetch_add(1, std::memory_order_relaxed);
  if (config_.ResilienceEnabled()) {
    // Stamp the enqueue time so the worker can measure queue sojourn —
    // the signal the queue-delay shedder keys on. Seeded from the reactor
    // loop's (busy-aware) tick start rather than Now(): the event's wait
    // in the kernel while the reactor drained earlier fds is part of the
    // same queue.
    const TimePoint enq = EffectiveRequestStart(Now());
    EnqueueWorkerTask([this, conn, enq] {
      ScopedDispatchStart dispatch_start(enq);
      HandleReadEvent(conn);
    });
  } else {
    EnqueueWorkerTask([this, conn] { HandleReadEvent(conn); });
  }
}

bool ReactorPoolServer::OnPumpReadable(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return false;
  Connection* conn = it->second.get();
  if (conn->closed) return false;
  // Step 1 (Figure 3), completion plane: the kernel already deposited the
  // bytes in conn->in, so the dispatch hands a worker the handling phase
  // only. No re-arm until the worker hands back (Options.auto_rearm=false)
  // — the ownership discipline the readiness path gets by unregistering.
  conn->worker_owned = true;
  dispatch_stats_.dispatches_to_worker.fetch_add(1, std::memory_order_relaxed);
  if (config_.ResilienceEnabled()) {
    const TimePoint enq = EffectiveRequestStart(Now());
    EnqueueWorkerTask([this, conn, enq] {
      ScopedDispatchStart dispatch_start(enq);
      HandleReadEvent(conn);
    });
  } else {
    EnqueueWorkerTask([this, conn] { HandleReadEvent(conn); });
  }
  return true;
}

void ReactorPoolServer::EnqueueWorkerTask(WorkerPool::Task task) {
  if (config_.dispatch_batch <= 1) {
    dispatch_batches_.fetch_add(1, std::memory_order_relaxed);
    pool_->Submit(std::move(task));
    return;
  }
  pending_dispatch_.push_back(std::move(task));
  if (pending_dispatch_.size() >=
      static_cast<size_t>(config_.dispatch_batch)) {
    FlushDispatchBatch();
  }
}

void ReactorPoolServer::FlushDispatchBatch() {
  if (pending_dispatch_.empty()) return;
  dispatch_batches_.fetch_add(1, std::memory_order_relaxed);
  std::vector<WorkerPool::Task> batch;
  batch.swap(pending_dispatch_);
  pool_->SubmitBatch(std::move(batch));
}

void ReactorPoolServer::HandleReadEvent(Connection* conn) {
  const int fd = conn->fd.get();

  // EOF no longer closes immediately: requests already buffered (the peer
  // wrote and then shutdown(WR)) are still parsed and answered below.
  bool peer_eof = conn->lifecycle.peer_half_closed;
  if (!completion_mode_) {
    // Readiness plane only: completion mode arrives here with the read CQE's
    // bytes already appended to conn->in by the pump.
    char buf[16 * 1024];
    while (true) {
      write_stats_.read_calls.fetch_add(1, std::memory_order_relaxed);
      const IoResult r = ReadFd(fd, buf, sizeof(buf));
      if (r.WouldBlock()) break;
      if (r.Fatal()) {
        loop_->RunInLoop([this, conn] { CloseConnection(conn); });
        return;
      }
      if (r.Eof()) {
        peer_eof = true;
        break;
      }
      conn->in.Append(buf, static_cast<size_t>(r.n));
      conn->lifecycle.last_activity = Now();
      if (static_cast<size_t>(r.n) < sizeof(buf)) break;
    }
  }

  // Step 2: parse and run the application handler; prepare the responses.
  // One Payload per response, so the batch write below stays vectored.
  std::vector<Payload> batch;
  bool want_close = false;
  while (true) {
    ParseStatus st;
    {
      ScopedPhase phase(phase_profiler_, Phase::kParse);
      st = conn->parser.Parse(conn->in);
    }
    if (st == ParseStatus::kNeedMore) {
      if (conn->in.ReadableBytes() > 0 || conn->parser.InProgress()) {
        if (!conn->lifecycle.head_pending) {
          conn->lifecycle.head_pending = true;
          conn->lifecycle.head_start = Now();
        }
      } else {
        conn->lifecycle.head_pending = false;
      }
      break;
    }
    conn->lifecycle.head_pending = false;
    if (st == ParseStatus::kError) {
      const ParseError err = conn->parser.error();
      if (err == ParseError::kHeadTooLarge ||
          err == ParseError::kBodyTooLarge) {
        lifecycle_.oversize_requests.fetch_add(1, std::memory_order_relaxed);
        batch.push_back(Payload::FromString(
            SimpleErrorResponse(err == ParseError::kHeadTooLarge ? 431 : 413)));
      }
      want_close = true;
      break;
    }
    conn->batch_request_starts.push_back(NowNanos());
    HttpResponse resp;
    {
      ScopedPhase phase(phase_profiler_, Phase::kHandler);
      handler_(conn->parser.request(), resp);
    }
    resp.keep_alive = conn->parser.request().keep_alive &&
                      !draining_.load(std::memory_order_relaxed);
    requests_.fetch_add(1, std::memory_order_relaxed);
    {
      ScopedPhase phase(phase_profiler_, Phase::kSerialize);
      batch.push_back(SerializeResponsePayload(resp));
    }
    if (!resp.keep_alive) {
      want_close = true;
      break;
    }
  }
  conn->lifecycle.peer_half_closed = peer_eof;
  if (peer_eof) want_close = true;

  if (batch.empty()) {
    conn->batch_request_starts.clear();
    // Nothing to write (partial request or immediate close).
    if (want_close) {
      if (peer_eof) {
        lifecycle_.half_close_reclaims.fetch_add(1, std::memory_order_relaxed);
      }
      loop_->RunInLoop([this, conn] { CloseConnection(conn); });
    } else {
      dispatch_stats_.returns_to_reactor.fetch_add(1,
                                                   std::memory_order_relaxed);
      loop_->RunInLoop([this, conn] { RearmRead(conn); });
    }
    return;
  }

  if (completion_mode_) {
    if (mode_ == WriteDispatchMode::kMerged) {
      // sTomcat-Async-Fix on the completion plane: the same worker finishes
      // the response by marshalling the batch to the reactor's pump (which
      // owns all SQE traffic for the fd), then control returns.
      dispatch_stats_.returns_to_reactor.fetch_add(1,
                                                   std::memory_order_relaxed);
      CompleteBatchOnLoop(conn, std::move(batch),
                          std::move(conn->batch_request_starts), want_close);
      return;
    }
    // sTomcat-Async: park the batch and notify the reactor, which hands
    // the write event to another worker — the extra hop is this variant's
    // defining cost and survives the I/O-plane swap.
    conn->pending_batch = std::move(batch);
    conn->close_after_write = want_close;
    dispatch_stats_.reactor_notifications.fetch_add(1,
                                                    std::memory_order_relaxed);
    loop_->RunInLoop([this, conn] {
      dispatch_stats_.dispatches_to_worker.fetch_add(1,
                                                     std::memory_order_relaxed);
      EnqueueWorkerTask([this, conn] { HandleWriteEvent(conn); });
    });
    return;
  }

  if (mode_ == WriteDispatchMode::kMerged) {
    // sTomcat-Async-Fix: same worker sends the response out (step 2+3
    // merged), then control returns to the reactor.
    SpinWriteResult wr;
    int writes_used = 0;
    {
      ScopedPhase phase(phase_profiler_, Phase::kWrite);
      wr = SpinWritePayloads(fd, batch.data(), batch.size(), write_stats_,
                             config_.yield_on_full_write,
                             deadlines_.write_stall, &writes_used);
    }
    if (wr == SpinWriteResult::kOk) {
      writes_per_response_->Record(writes_used);
      const int64_t end_ns = NowNanos();
      for (const int64_t s : conn->batch_request_starts) {
        request_latency_ns_->Record(end_ns - s);
      }
    }
    conn->batch_request_starts.clear();
    if (wr == SpinWriteResult::kStalled) {
      lifecycle_.write_stall_evictions.fetch_add(1, std::memory_order_relaxed);
    }
    dispatch_stats_.returns_to_reactor.fetch_add(1, std::memory_order_relaxed);
    if (wr != SpinWriteResult::kOk || want_close) {
      if (wr == SpinWriteResult::kOk && peer_eof) {
        lifecycle_.half_close_reclaims.fetch_add(1, std::memory_order_relaxed);
      }
      loop_->RunInLoop([this, conn] { CloseConnection(conn); });
    } else {
      conn->lifecycle.last_activity = Now();
      loop_->RunInLoop([this, conn] { RearmRead(conn); });
    }
    return;
  }

  // sTomcat-Async: park the responses and notify the reactor (step 2),
  // which dispatches a write event to another worker (step 3). Moving the
  // batch hands over shared bodies by reference — no bytes are copied.
  conn->pending_batch = std::move(batch);
  conn->close_after_write = want_close;
  dispatch_stats_.reactor_notifications.fetch_add(1,
                                                  std::memory_order_relaxed);
  loop_->RunInLoop([this, conn] {
    dispatch_stats_.dispatches_to_worker.fetch_add(1,
                                                   std::memory_order_relaxed);
    EnqueueWorkerTask([this, conn] { HandleWriteEvent(conn); });
  });
}

void ReactorPoolServer::HandleWriteEvent(Connection* conn) {
  if (completion_mode_) {
    // Step 4 on the completion plane: the "write" is a pump submission on
    // the reactor; this worker's contribution is the dispatch hop itself.
    dispatch_stats_.returns_to_reactor.fetch_add(1, std::memory_order_relaxed);
    CompleteBatchOnLoop(conn, std::move(conn->pending_batch),
                        std::move(conn->batch_request_starts),
                        conn->close_after_write);
    return;
  }
  // Step 4: a (different) worker sends the response out and returns
  // control to the reactor.
  SpinWriteResult wr;
  int writes_used = 0;
  {
    ScopedPhase phase(phase_profiler_, Phase::kWrite);
    wr = SpinWritePayloads(conn->fd.get(), conn->pending_batch.data(),
                           conn->pending_batch.size(), write_stats_,
                           config_.yield_on_full_write, deadlines_.write_stall,
                           &writes_used);
  }
  if (wr == SpinWriteResult::kOk) {
    writes_per_response_->Record(writes_used);
    const int64_t end_ns = NowNanos();
    for (const int64_t s : conn->batch_request_starts) {
      request_latency_ns_->Record(end_ns - s);
    }
  }
  conn->batch_request_starts.clear();
  conn->pending_batch.clear();
  if (wr == SpinWriteResult::kStalled) {
    lifecycle_.write_stall_evictions.fetch_add(1, std::memory_order_relaxed);
  }
  dispatch_stats_.returns_to_reactor.fetch_add(1, std::memory_order_relaxed);
  if (wr != SpinWriteResult::kOk || conn->close_after_write) {
    if (wr == SpinWriteResult::kOk && conn->lifecycle.peer_half_closed) {
      lifecycle_.half_close_reclaims.fetch_add(1, std::memory_order_relaxed);
    }
    loop_->RunInLoop([this, conn] { CloseConnection(conn); });
  } else {
    conn->lifecycle.last_activity = Now();
    loop_->RunInLoop([this, conn] { RearmRead(conn); });
  }
}

void ReactorPoolServer::RearmRead(Connection* conn) {
  if (conn->closed) return;
  conn->worker_owned = false;
  // During a drain an idle hand-back closes instead of rearming: the peer
  // owes us nothing and new requests are no longer welcome.
  if (draining_.load(std::memory_order_relaxed) &&
      conn->in.ReadableBytes() == 0 && !conn->parser.InProgress()) {
    CloseConnection(conn);
    return;
  }
  const int fd = conn->fd.get();
  if (completion_mode_) {
    pump_->ArmRead(fd, *conn);
    return;
  }
  loop_->RegisterFd(fd, EPOLLIN | EPOLLRDHUP, [this, fd](uint32_t events) {
    DispatchReadEvent(fd, events);
  });
}

void ReactorPoolServer::CompleteBatchOnLoop(Connection* conn,
                                            std::vector<Payload> batch,
                                            std::vector<int64_t> starts,
                                            bool want_close) {
  // Safe to capture the raw pointer: while worker_owned no reactor path
  // closes the connection (the sweep skips it, Shutdown only shutdown(2)s
  // the fd), the same invariant the readiness hand-backs rely on.
  loop_->RunInLoop([this, conn, batch = std::move(batch),
                    starts = std::move(starts), want_close]() mutable {
    if (conn->closed) return;
    conn->worker_owned = false;
    if (want_close) conn->close_after_write = true;
    for (size_t i = 0; i < batch.size(); ++i) {
      pump_->Enqueue(*conn, std::move(batch[i]),
                     i < starts.size() ? starts[i] : 0);
    }
    pump_->Flush(conn->fd.get(), *conn);
  });
}

void ReactorPoolServer::OnPumpDrained(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Connection* conn = it->second.get();
  if (conn->closed) return;
  if (conn->close_after_write) {
    if (conn->lifecycle.peer_half_closed) {
      lifecycle_.half_close_reclaims.fetch_add(1, std::memory_order_relaxed);
    }
    CloseConnection(conn);
    return;
  }
  conn->lifecycle.last_activity = Now();
  RearmRead(conn);
}

void ReactorPoolServer::CloseConnection(Connection* conn) {
  if (conn->closed) return;
  conn->closed = true;
  const int fd = conn->fd.get();
  if (completion_mode_) {
    pump_->Unwatch(fd);
  } else if (loop_->IsRegistered(fd)) {
    loop_->UnregisterFd(fd);
  }
  buffer_pool_.Release(std::move(conn->in));
  conns_.erase(fd);
  closed_.fetch_add(1, std::memory_order_relaxed);
  if (accept_paused_ && acceptor_ &&
      !draining_.load(std::memory_order_relaxed) &&
      Live() < static_cast<uint64_t>(config_.max_connections)) {
    acceptor_->Resume();
    accept_paused_ = false;
  }
}

void ReactorPoolServer::EvictConnection(Connection* conn, EvictReason reason) {
  switch (reason) {
    case EvictReason::kIdle:
      lifecycle_.idle_evictions.fetch_add(1, std::memory_order_relaxed);
      break;
    case EvictReason::kHeaderTimeout:
      lifecycle_.header_evictions.fetch_add(1, std::memory_order_relaxed);
      break;
    case EvictReason::kWriteStall:
      lifecycle_.write_stall_evictions.fetch_add(1, std::memory_order_relaxed);
      break;
    case EvictReason::kNone:
      break;
  }
  CloseConnection(conn);
}

void ReactorPoolServer::ScheduleSweep() {
  loop_->RunAfter(SweepPeriod(deadlines_), [this] {
    SweepDeadlines();
    if (started_.load(std::memory_order_acquire)) ScheduleSweep();
  });
}

void ReactorPoolServer::SweepDeadlines() {
  const TimePoint now = Now();
  std::vector<std::pair<Connection*, EvictReason>> victims;
  for (const auto& [fd, conn] : conns_) {
    // A worker-owned connection's deadlines are the worker's business
    // until it hands back (readiness mode encodes that ownership as the
    // fd's absence from the epoll set).
    if (!ReactorOwned(*conn)) continue;
    const EvictReason reason = CheckDeadlines(conn->lifecycle, deadlines_, now);
    if (reason != EvictReason::kNone) {
      victims.emplace_back(conn.get(), reason);
      continue;
    }
    if (conn->in.ReadableBytes() == 0 && !conn->parser.InProgress() &&
        conn->in.Capacity() > ByteBuffer::kInitialCapacity) {
      conn->in.ShrinkToFit();
    }
  }
  for (const auto& [conn, reason] : victims) EvictConnection(conn, reason);
}

}  // namespace hynet
