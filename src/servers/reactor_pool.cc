#include "servers/reactor_pool.h"

#include "common/logging.h"
#include "common/thread_util.h"
#include "proto/http_codec.h"

namespace hynet {

ReactorPoolServer::ReactorPoolServer(ServerConfig config, Handler handler,
                                     WriteDispatchMode mode)
    : Server(std::move(config), std::move(handler)), mode_(mode) {}

ReactorPoolServer::~ReactorPoolServer() { Stop(); }

void ReactorPoolServer::Start() {
  loop_ = std::make_unique<EventLoop>();
  pool_ = std::make_unique<WorkerPool>(config_.worker_threads, "rp-worker");
  acceptor_ = std::make_unique<Acceptor>(
      *loop_, InetAddr::Loopback(config_.port),
      [this](Socket s, const InetAddr& peer) {
        OnNewConnection(std::move(s), peer);
      });
  port_ = acceptor_->Port();
  acceptor_->Listen();

  started_.store(true, std::memory_order_release);
  loop_thread_ = std::thread([this] {
    SetCurrentThreadName("rp-reactor");
    loop_tid_.store(CurrentTid(), std::memory_order_release);
    loop_->Run();
    conns_.clear();
  });
  while (loop_tid_.load(std::memory_order_acquire) == 0) {
    std::this_thread::yield();
  }
}

void ReactorPoolServer::Stop() {
  if (!started_.exchange(false)) return;
  // Workers first: their completions queue tasks onto the loop, which is
  // safe while the loop is stopping but not after it is destroyed.
  pool_->Shutdown();
  loop_->Stop();
  if (loop_thread_.joinable()) loop_thread_.join();
  acceptor_.reset();
  pool_.reset();
  loop_.reset();
}

std::vector<int> ReactorPoolServer::ThreadIds() const {
  std::vector<int> tids = pool_ ? pool_->ThreadIds() : std::vector<int>{};
  const int tid = loop_tid_.load(std::memory_order_acquire);
  if (tid) tids.push_back(tid);
  return tids;
}

ServerCounters ReactorPoolServer::Snapshot() const {
  ServerCounters c;
  c.connections_accepted = accepted_.load(std::memory_order_relaxed);
  c.connections_closed = closed_.load(std::memory_order_relaxed);
  c.requests_handled = requests_.load(std::memory_order_relaxed);
  c.responses_sent = write_stats_.responses.load(std::memory_order_relaxed);
  c.write_calls = write_stats_.write_calls.load(std::memory_order_relaxed);
  c.zero_writes = write_stats_.zero_writes.load(std::memory_order_relaxed);
  c.logical_switches = dispatch_stats_.LogicalSwitches();
  return c;
}

void ReactorPoolServer::OnNewConnection(Socket socket, const InetAddr&) {
  socket.SetNonBlocking(true);
  ConfigureAcceptedFd(socket.fd());
  const int fd = socket.fd();
  auto conn = std::make_unique<Connection>(socket.TakeFd(),
                                           config_.write_spin_cap);
  Connection* raw = conn.get();
  conns_[fd] = std::move(conn);
  accepted_.fetch_add(1, std::memory_order_relaxed);
  loop_->RegisterFd(fd, EPOLLIN, [this, raw](uint32_t) {
    DispatchReadEvent(raw->fd.get());
  });
}

void ReactorPoolServer::DispatchReadEvent(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Connection* conn = it->second.get();

  // Step 1 (Figure 3): reactor dispatches the read event to a worker.
  // Remove the fd from epoll so nothing races with the worker.
  loop_->UnregisterFd(fd);
  dispatch_stats_.dispatches_to_worker.fetch_add(1, std::memory_order_relaxed);
  pool_->Submit([this, conn] { HandleReadEvent(conn); });
}

void ReactorPoolServer::HandleReadEvent(Connection* conn) {
  const int fd = conn->fd.get();

  char buf[16 * 1024];
  while (true) {
    const IoResult r = ReadFd(fd, buf, sizeof(buf));
    if (r.WouldBlock()) break;
    if (r.Eof() || r.Fatal()) {
      loop_->RunInLoop([this, conn] { CloseConnection(conn); });
      return;
    }
    conn->in.Append(buf, static_cast<size_t>(r.n));
    if (static_cast<size_t>(r.n) < sizeof(buf)) break;
  }

  // Step 2: parse and run the application handler; prepare the response.
  ByteBuffer out;
  bool want_close = false;
  while (true) {
    ParseStatus st;
    {
      ScopedPhase phase(phase_profiler_, Phase::kParse);
      st = conn->parser.Parse(conn->in);
    }
    if (st == ParseStatus::kNeedMore) break;
    if (st == ParseStatus::kError) {
      want_close = true;
      break;
    }
    HttpResponse resp;
    {
      ScopedPhase phase(phase_profiler_, Phase::kHandler);
      handler_(conn->parser.request(), resp);
    }
    resp.keep_alive = conn->parser.request().keep_alive;
    requests_.fetch_add(1, std::memory_order_relaxed);
    {
      ScopedPhase phase(phase_profiler_, Phase::kSerialize);
      SerializeResponse(resp, out);
    }
    if (!resp.keep_alive) {
      want_close = true;
      break;
    }
  }

  if (out.Empty()) {
    // Nothing to write (partial request or immediate close).
    if (want_close) {
      loop_->RunInLoop([this, conn] { CloseConnection(conn); });
    } else {
      dispatch_stats_.returns_to_reactor.fetch_add(1,
                                                   std::memory_order_relaxed);
      loop_->RunInLoop([this, conn] { RearmRead(conn); });
    }
    return;
  }

  if (mode_ == WriteDispatchMode::kMerged) {
    // sTomcat-Async-Fix: same worker sends the response out (step 2+3
    // merged), then control returns to the reactor.
    SpinWriteResult wr;
    {
      ScopedPhase phase(phase_profiler_, Phase::kWrite);
      wr = SpinWriteAll(fd, out.View(), write_stats_,
                        config_.yield_on_full_write);
    }
    dispatch_stats_.returns_to_reactor.fetch_add(1, std::memory_order_relaxed);
    if (wr != SpinWriteResult::kOk || want_close) {
      loop_->RunInLoop([this, conn] { CloseConnection(conn); });
    } else {
      loop_->RunInLoop([this, conn] { RearmRead(conn); });
    }
    return;
  }

  // sTomcat-Async: park the response and notify the reactor (step 2),
  // which dispatches a write event to another worker (step 3).
  conn->pending_response.assign(out.View());
  conn->close_after_write = want_close;
  dispatch_stats_.reactor_notifications.fetch_add(1,
                                                  std::memory_order_relaxed);
  loop_->RunInLoop([this, conn] {
    dispatch_stats_.dispatches_to_worker.fetch_add(1,
                                                   std::memory_order_relaxed);
    pool_->Submit([this, conn] { HandleWriteEvent(conn); });
  });
}

void ReactorPoolServer::HandleWriteEvent(Connection* conn) {
  // Step 4: a (different) worker sends the response out and returns
  // control to the reactor.
  SpinWriteResult wr;
  {
    ScopedPhase phase(phase_profiler_, Phase::kWrite);
    wr = SpinWriteAll(conn->fd.get(), conn->pending_response, write_stats_,
                      config_.yield_on_full_write);
  }
  conn->pending_response.clear();
  dispatch_stats_.returns_to_reactor.fetch_add(1, std::memory_order_relaxed);
  if (wr != SpinWriteResult::kOk || conn->close_after_write) {
    loop_->RunInLoop([this, conn] { CloseConnection(conn); });
  } else {
    loop_->RunInLoop([this, conn] { RearmRead(conn); });
  }
}

void ReactorPoolServer::RearmRead(Connection* conn) {
  if (conn->closed) return;
  const int fd = conn->fd.get();
  loop_->RegisterFd(fd, EPOLLIN,
                    [this, fd](uint32_t) { DispatchReadEvent(fd); });
}

void ReactorPoolServer::CloseConnection(Connection* conn) {
  if (conn->closed) return;
  conn->closed = true;
  const int fd = conn->fd.get();
  if (loop_->IsRegistered(fd)) loop_->UnregisterFd(fd);
  conns_.erase(fd);
  closed_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace hynet
