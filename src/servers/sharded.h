// Sharded REUSEPORT deployment (ServerConfig::shards > 1): N independent
// copies of any event-driven architecture share one port via SO_REUSEPORT,
// the kernel load-balancing incoming connections across them.
//
// Unlike the N-copy wrapper (which points every copy at the parent's
// registry, serializing all copies' hot paths through one set of metric
// shards), each shard here keeps its OWN MetricsRegistry; the parent
// registers a scrape-time collector that walks the shard registries and
// merges counters (summed), gauges (summed, with bytes/conn recomputed
// from the merged totals), and histograms (field-wise merge). A /metrics
// or /stats.json scrape therefore costs O(shards), not O(connections),
// and shard hot paths never touch shared scrape state.
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "servers/server.h"

namespace hynet {

class ShardedServer final : public Server {
 public:
  ShardedServer(ServerConfig config, Handler handler);
  ~ShardedServer() override;

  void Start() override;
  void Stop() override;
  DrainResult Shutdown(Duration drain_deadline) override;
  uint16_t Port() const override { return port_; }
  std::vector<int> ThreadIds() const override;
  ServerCounters Snapshot() const override;
  uint64_t TimerWheelEntries() const override;

  int Shards() const;

 private:
  void MergeShardScrapes(MetricsBatch& batch) const;

  // Guards shards_ against the admin scrape thread: the merge collector
  // walks shards_ while Start/Stop/Shutdown mutate the vector.
  mutable std::mutex shards_mu_;
  std::vector<std::unique_ptr<Server>> shards_;
  size_t merge_collector_id_ = static_cast<size_t>(-1);
  uint16_t port_ = 0;
};

}  // namespace hynet
