#include "servers/thread_per_conn.h"

#include <poll.h>
#include <sys/socket.h>

#include "common/logging.h"
#include "common/thread_util.h"
#include "proto/http_codec.h"
#include "servers/connection.h"

namespace hynet {

ThreadPerConnServer::ThreadPerConnServer(ServerConfig config, Handler handler)
    : Server(std::move(config), std::move(handler)) {}

ThreadPerConnServer::~ThreadPerConnServer() { Stop(); }

void ThreadPerConnServer::Start() {
  buffer_pool_.BindMetrics(metrics());
  listen_socket_ = Socket::CreateTcp(/*nonblocking=*/true);
  listen_socket_.SetReuseAddr(true);
  listen_socket_.Bind(InetAddr::Loopback(config_.port));
  listen_socket_.Listen();
  port_ = listen_socket_.LocalAddr().Port();

  running_.store(true, std::memory_order_release);
  acceptor_thread_ = std::thread([this] { AcceptorMain(); });

  // Publish the acceptor tid before returning so ThreadIds() is complete.
  std::unique_lock<std::mutex> lock(mu_);
  while (acceptor_tid_ == 0) {
    lock.unlock();
    std::this_thread::yield();
    lock.lock();
  }
  lock.unlock();
  StartAdminPlane();
}

void ThreadPerConnServer::Stop() {
  StopAdminPlane();
  if (!running_.exchange(false)) return;
  {
    // Unblock every connection thread parked in read()/write().
    std::lock_guard<std::mutex> lock(mu_);
    for (int fd : live_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  if (acceptor_thread_.joinable()) acceptor_thread_.join();
  std::vector<std::thread> to_join;
  {
    std::lock_guard<std::mutex> lock(mu_);
    to_join.swap(conn_threads_);
  }
  for (auto& t : to_join) {
    if (t.joinable()) t.join();
  }
  listen_socket_ = Socket();
}

DrainResult ThreadPerConnServer::Shutdown(Duration drain_deadline) {
  if (!running_.load(std::memory_order_acquire)) return {};
  const TimePoint deadline = Now() + drain_deadline;
  const uint64_t closed_before = closed_.load(std::memory_order_relaxed);
  // The acceptor thread sees draining_ and stops accepting; responses
  // from here on carry `Connection: close`.
  draining_.store(true, std::memory_order_release);
  {
    // Half-close every connection: a thread parked in read() wakes with
    // EOF and exits; a thread mid-response can still write it out.
    std::lock_guard<std::mutex> lock(mu_);
    for (int fd : live_fds_) ::shutdown(fd, SHUT_RD);
  }

  while (Now() < deadline && Live() > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  uint64_t forced = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    forced = live_fds_.size();
    for (int fd : live_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  const TimePoint grace = Now() + std::chrono::milliseconds(500);
  while (Now() < grace && Live() > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  DrainResult result;
  result.forced = forced;
  const uint64_t closed_total =
      closed_.load(std::memory_order_relaxed) - closed_before;
  result.drained =
      closed_total >= result.forced ? closed_total - result.forced : 0;
  lifecycle_.forced_closes.fetch_add(result.forced, std::memory_order_relaxed);
  lifecycle_.drained_connections.fetch_add(result.drained,
                                           std::memory_order_relaxed);
  Stop();
  return result;
}

std::vector<int> ThreadPerConnServer::ThreadIds() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<int> tids(live_tids_.begin(), live_tids_.end());
  return tids;
}

ServerCounters ThreadPerConnServer::Snapshot() const {
  ServerCounters c;
  c.connections_accepted = accepted_.load(std::memory_order_relaxed);
  c.connections_closed = closed_.load(std::memory_order_relaxed);
  c.requests_handled = requests_.load(std::memory_order_relaxed);
  c.responses_sent = write_stats_.responses.load(std::memory_order_relaxed);
  c.write_calls = write_stats_.write_calls.load(std::memory_order_relaxed);
  c.zero_writes = write_stats_.zero_writes.load(std::memory_order_relaxed);
  c.writev_calls = write_stats_.writev_calls.load(std::memory_order_relaxed);
  c.iov_segments = write_stats_.iov_segments.load(std::memory_order_relaxed);
  ExportLifecycle(c);
  return c;
}

void ThreadPerConnServer::AcceptorMain() {
  SetCurrentThreadName("sync-accept");
  {
    std::lock_guard<std::mutex> lock(mu_);
    acceptor_tid_ = CurrentTid();
    live_tids_.insert(acceptor_tid_);
  }

  pollfd pfd{listen_socket_.fd(), POLLIN, 0};
  bool paused = false;
  while (running_.load(std::memory_order_acquire)) {
    if (draining_.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      continue;
    }
    // Non-shed admission control: leave new connections in the listen
    // backlog until a slot frees up.
    if (config_.max_connections > 0 && !config_.shed_with_503 &&
        Live() >= static_cast<uint64_t>(config_.max_connections)) {
      if (!paused) {
        paused = true;
        lifecycle_.accept_pauses.fetch_add(1, std::memory_order_relaxed);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      continue;
    }
    paused = false;
    const int n = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (n <= 0) continue;
    while (true) {
      // A burst must not overshoot the cap in non-shed mode; the rest of
      // the burst stays in the backlog.
      if (config_.max_connections > 0 && !config_.shed_with_503 &&
          Live() >= static_cast<uint64_t>(config_.max_connections)) {
        break;
      }
      auto sock = listen_socket_.Accept(nullptr);
      if (!sock) break;
      if (config_.max_connections > 0 && config_.shed_with_503 &&
          Live() >= static_cast<uint64_t>(config_.max_connections)) {
        ShedWith503(sock->fd());
        continue;
      }
      // The connection fd runs in blocking mode: that is the whole point
      // of this architecture (the kernel blocks the thread on I/O).
      sock->SetNonBlocking(false);
      ConfigureAcceptedFd(sock->fd());
      accepted_.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(mu_);
      conn_threads_.emplace_back(
          [this, s = std::move(*sock)]() mutable {
            ConnectionMain(std::move(s));
          });
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  live_tids_.erase(acceptor_tid_);
}

void ThreadPerConnServer::ConnectionMain(Socket socket) {
  SetCurrentThreadName("sync-conn");
  const int tid = CurrentTid();
  const int fd = socket.fd();
  {
    std::lock_guard<std::mutex> lock(mu_);
    live_tids_.insert(tid);
    live_fds_.insert(fd);
  }

  // Blocking-mode deadline enforcement: SO_RCVTIMEO wakes a parked read
  // every sweep period so this thread can evaluate the idle/header
  // deadlines itself; SO_SNDTIMEO turns a never-opening peer window into
  // EAGAIN, which BlockingWriteAll reports as kStalled.
  const LifecycleDeadlines deadlines = LifecycleDeadlines::FromMillis(
      config_.idle_timeout_ms, config_.header_timeout_ms,
      config_.write_stall_timeout_ms);
  if (deadlines.idle > Duration::zero() ||
      deadlines.header > Duration::zero()) {
    SetFdRecvTimeout(
        fd, static_cast<int>(std::chrono::duration_cast<
                                 std::chrono::milliseconds>(
                                 SweepPeriod(deadlines))
                                 .count()));
  }
  if (deadlines.write_stall > Duration::zero()) {
    SetFdSendTimeout(
        fd,
        static_cast<int>(std::chrono::duration_cast<std::chrono::milliseconds>(
                             deadlines.write_stall)
                             .count()));
  }

  ByteBuffer in = buffer_pool_.Acquire();
  HttpRequestParser parser;
  parser.SetLimits(config_.max_request_head_bytes,
                   config_.max_request_body_bytes);
  char buf[16 * 1024];
  bool alive = true;
  TimePoint last_activity = Now();
  TimePoint head_start{};
  bool head_pending = false;

  while (alive && running_.load(std::memory_order_acquire)) {
    const IoResult r = ReadFd(fd, buf, sizeof(buf));
    if (r.Eof() || r.Fatal()) break;
    if (r.WouldBlock()) {
      // SO_RCVTIMEO expired: apply the same policy as the event-driven
      // sweep, attributing the eviction by whether a request is mid-head.
      const TimePoint now = Now();
      if (head_pending && deadlines.header > Duration::zero() &&
          now - head_start >= deadlines.header) {
        lifecycle_.header_evictions.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      if (!head_pending && deadlines.idle > Duration::zero() &&
          now - last_activity >= deadlines.idle) {
        lifecycle_.idle_evictions.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      continue;
    }
    in.Append(buf, static_cast<size_t>(r.n));
    last_activity = Now();

    // Drain every complete request in the buffer (pipelining-safe).
    while (alive) {
      ParseStatus st;
      {
        ScopedPhase phase(phase_profiler_, Phase::kParse);
        st = parser.Parse(in);
      }
      if (st == ParseStatus::kNeedMore) {
        if (in.ReadableBytes() > 0 || parser.InProgress()) {
          if (!head_pending) {
            head_pending = true;
            head_start = Now();
          }
        } else {
          head_pending = false;
        }
        break;
      }
      head_pending = false;
      if (st == ParseStatus::kError) {
        const ParseError err = parser.error();
        if (err == ParseError::kHeadTooLarge ||
            err == ParseError::kBodyTooLarge) {
          lifecycle_.oversize_requests.fetch_add(1, std::memory_order_relaxed);
          const std::string wire = SimpleErrorResponse(
              err == ParseError::kHeadTooLarge ? 431 : 413);
          (void)BlockingWriteAll(fd, wire, write_stats_);
        }
        alive = false;
        break;
      }
      const int64_t req_start_ns = NowNanos();
      HttpResponse resp;
      {
        ScopedPhase phase(phase_profiler_, Phase::kHandler);
        handler_(parser.request(), resp);
      }
      resp.keep_alive = parser.request().keep_alive &&
                        !draining_.load(std::memory_order_relaxed);
      requests_.fetch_add(1, std::memory_order_relaxed);

      Payload payload;
      {
        ScopedPhase phase(phase_profiler_, Phase::kSerialize);
        payload = SerializeResponsePayload(resp);
      }
      ScopedPhase write_phase(phase_profiler_, Phase::kWrite);
      int writes_used = 0;
      const SpinWriteResult wr =
          BlockingWriteAll(fd, payload, write_stats_, &writes_used);
      if (wr == SpinWriteResult::kOk) {
        writes_per_response_->Record(writes_used);
        request_latency_ns_->Record(NowNanos() - req_start_ns);
      }
      if (wr != SpinWriteResult::kOk) {
        if (wr == SpinWriteResult::kStalled) {
          lifecycle_.write_stall_evictions.fetch_add(
              1, std::memory_order_relaxed);
        }
        alive = false;
        break;
      }
      last_activity = Now();
      if (!resp.keep_alive) {
        alive = false;
        break;
      }
    }
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    live_tids_.erase(tid);
    live_fds_.erase(fd);
  }
  buffer_pool_.Release(std::move(in));
  closed_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace hynet
