#include "servers/thread_per_conn.h"

#include <poll.h>
#include <sys/socket.h>

#include "common/logging.h"
#include "common/thread_util.h"
#include "proto/http_codec.h"
#include "servers/connection.h"

namespace hynet {

ThreadPerConnServer::ThreadPerConnServer(ServerConfig config, Handler handler)
    : Server(std::move(config), std::move(handler)) {}

ThreadPerConnServer::~ThreadPerConnServer() { Stop(); }

void ThreadPerConnServer::Start() {
  listen_socket_ = Socket::CreateTcp(/*nonblocking=*/true);
  listen_socket_.SetReuseAddr(true);
  listen_socket_.Bind(InetAddr::Loopback(config_.port));
  listen_socket_.Listen();
  port_ = listen_socket_.LocalAddr().Port();

  running_.store(true, std::memory_order_release);
  acceptor_thread_ = std::thread([this] { AcceptorMain(); });

  // Publish the acceptor tid before returning so ThreadIds() is complete.
  std::unique_lock<std::mutex> lock(mu_);
  while (acceptor_tid_ == 0) {
    lock.unlock();
    std::this_thread::yield();
    lock.lock();
  }
}

void ThreadPerConnServer::Stop() {
  if (!running_.exchange(false)) return;
  {
    // Unblock every connection thread parked in read()/write().
    std::lock_guard<std::mutex> lock(mu_);
    for (int fd : live_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  if (acceptor_thread_.joinable()) acceptor_thread_.join();
  std::vector<std::thread> to_join;
  {
    std::lock_guard<std::mutex> lock(mu_);
    to_join.swap(conn_threads_);
  }
  for (auto& t : to_join) {
    if (t.joinable()) t.join();
  }
  listen_socket_ = Socket();
}

std::vector<int> ThreadPerConnServer::ThreadIds() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<int> tids(live_tids_.begin(), live_tids_.end());
  return tids;
}

ServerCounters ThreadPerConnServer::Snapshot() const {
  ServerCounters c;
  c.connections_accepted = accepted_.load(std::memory_order_relaxed);
  c.connections_closed = closed_.load(std::memory_order_relaxed);
  c.requests_handled = requests_.load(std::memory_order_relaxed);
  c.responses_sent = write_stats_.responses.load(std::memory_order_relaxed);
  c.write_calls = write_stats_.write_calls.load(std::memory_order_relaxed);
  c.zero_writes = write_stats_.zero_writes.load(std::memory_order_relaxed);
  return c;
}

void ThreadPerConnServer::AcceptorMain() {
  SetCurrentThreadName("sync-accept");
  {
    std::lock_guard<std::mutex> lock(mu_);
    acceptor_tid_ = CurrentTid();
    live_tids_.insert(acceptor_tid_);
  }

  pollfd pfd{listen_socket_.fd(), POLLIN, 0};
  while (running_.load(std::memory_order_acquire)) {
    const int n = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (n <= 0) continue;
    while (true) {
      auto sock = listen_socket_.Accept(nullptr);
      if (!sock) break;
      // The connection fd runs in blocking mode: that is the whole point
      // of this architecture (the kernel blocks the thread on I/O).
      sock->SetNonBlocking(false);
      ConfigureAcceptedFd(sock->fd());
      accepted_.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(mu_);
      conn_threads_.emplace_back(
          [this, s = std::move(*sock)]() mutable {
            ConnectionMain(std::move(s));
          });
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  live_tids_.erase(acceptor_tid_);
}

void ThreadPerConnServer::ConnectionMain(Socket socket) {
  SetCurrentThreadName("sync-conn");
  const int tid = CurrentTid();
  const int fd = socket.fd();
  {
    std::lock_guard<std::mutex> lock(mu_);
    live_tids_.insert(tid);
    live_fds_.insert(fd);
  }

  ByteBuffer in;
  HttpRequestParser parser;
  ByteBuffer out;
  char buf[16 * 1024];
  bool alive = true;

  while (alive && running_.load(std::memory_order_acquire)) {
    const IoResult r = ReadFd(fd, buf, sizeof(buf));
    if (r.Eof() || r.Fatal()) break;
    in.Append(buf, static_cast<size_t>(r.n));

    // Drain every complete request in the buffer (pipelining-safe).
    while (alive) {
      ParseStatus st;
      {
        ScopedPhase phase(phase_profiler_, Phase::kParse);
        st = parser.Parse(in);
      }
      if (st == ParseStatus::kNeedMore) break;
      if (st == ParseStatus::kError) {
        alive = false;
        break;
      }
      HttpResponse resp;
      {
        ScopedPhase phase(phase_profiler_, Phase::kHandler);
        handler_(parser.request(), resp);
      }
      resp.keep_alive = parser.request().keep_alive;
      requests_.fetch_add(1, std::memory_order_relaxed);

      out.ConsumeAll();
      {
        ScopedPhase phase(phase_profiler_, Phase::kSerialize);
        SerializeResponse(resp, out);
      }
      ScopedPhase write_phase(phase_profiler_, Phase::kWrite);
      if (BlockingWriteAll(fd, out.View(), write_stats_) !=
          SpinWriteResult::kOk) {
        alive = false;
        break;
      }
      if (!resp.keep_alive) {
        alive = false;
        break;
      }
    }
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    live_tids_.erase(tid);
    live_fds_.erase(fd);
  }
  closed_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace hynet
