#include "servers/sharded.h"

#include <string>
#include <unordered_map>
#include <utility>

namespace hynet {

ShardedServer::ShardedServer(ServerConfig config, Handler handler)
    : Server(std::move(config), std::move(handler)) {}

ShardedServer::~ShardedServer() { Stop(); }

void ShardedServer::Start() {
  const int n = std::max(2, config_.shards);
  ServerConfig shard_config = config_;
  shard_config.shards = 0;  // the shards themselves must not re-shard
  shard_config.reuse_port = true;
  // The wrapper owns the observability plane: shards keep their own
  // registries (merged at scrape time) and must not bind an admin port.
  shard_config.admin_port = -1;
  // The admission cap is a deployment-wide budget: split it across shards
  // (the kernel's SO_REUSEPORT hash spreads connections about evenly).
  if (config_.max_connections > 0) {
    shard_config.max_connections = (config_.max_connections + n - 1) / n;
  }
  // Threads one shard occupies when pinning: its event loops plus a boss /
  // the single loop thread.
  const int stride =
      config_.architecture == ServerArchitecture::kSingleThread
          ? 1
          : std::max(1, config_.event_loops) + 1;

  {
    std::lock_guard<std::mutex> lock(shards_mu_);
    // First shard may bind an ephemeral port; the rest join it.
    shards_.push_back(CreateServer(shard_config, handler_));
    shards_.front()->Start();
    port_ = shards_.front()->Port();

    shard_config.port = port_;
    for (int i = 1; i < n; ++i) {
      shard_config.pin_cpu_offset = config_.pin_cpu_offset + i * stride;
      shards_.push_back(CreateServer(shard_config, handler_));
      shards_.back()->Start();
    }
  }

  // The shard scrapes already carry every shard's server_* counters; the
  // parent's own child-summing Snapshot() collector would double them.
  DropSnapshotCollector();
  merge_collector_id_ = metrics().AddCollector(
      [this](MetricsBatch& batch) { MergeShardScrapes(batch); });
  StartAdminPlane();
}

void ShardedServer::MergeShardScrapes(MetricsBatch& batch) const {
  std::unordered_map<std::string, int64_t> gauges;
  {
    std::lock_guard<std::mutex> lock(shards_mu_);
    for (const auto& shard : shards_) {
      const MetricsSnapshot snap = shard->metrics().Scrape();
      for (const auto& [name, value] : snap.counters) {
        batch.AddCounter(name, value);  // duplicates across shards sum
      }
      for (const auto& [name, value] : snap.gauges) gauges[name] += value;
      for (const auto& [name, data] : snap.histograms) {
        batch.MergeHistogram(name, data);
      }
    }
  }
  // Per-shard bytes/conn averages don't sum; recompute from merged totals.
  const int64_t conns = gauges["conn_count"];
  gauges["conn_bytes_per_conn"] =
      conns > 0 ? gauges["conn_bytes_total"] / conns : 0;
  batch.SetGauge("shards", Shards());
  for (auto& [name, value] : gauges) batch.SetGauge(name, value);
}

void ShardedServer::Stop() {
  StopAdminPlane();
  if (merge_collector_id_ != static_cast<size_t>(-1)) {
    metrics().RemoveCollector(merge_collector_id_);
    merge_collector_id_ = static_cast<size_t>(-1);
  }
  std::vector<std::unique_ptr<Server>> shards;
  {
    std::lock_guard<std::mutex> lock(shards_mu_);
    shards.swap(shards_);
  }
  for (auto& shard : shards) shard->Stop();
}

DrainResult ShardedServer::Shutdown(Duration drain_deadline) {
  // One shared absolute deadline: shard k's budget is whatever remains
  // after the shards before it drained. Shards stay in shards_ while they
  // drain so an admin scrape still sees their counters.
  const TimePoint deadline = Now() + drain_deadline;
  draining_.store(true, std::memory_order_release);
  std::vector<Server*> live;
  {
    std::lock_guard<std::mutex> lock(shards_mu_);
    for (const auto& shard : shards_) live.push_back(shard.get());
  }
  DrainResult total;
  for (Server* shard : live) {
    const Duration remaining = std::max(deadline - Now(), Duration::zero());
    const DrainResult r = shard->Shutdown(remaining);
    total.drained += r.drained;
    total.forced += r.forced;
  }
  Stop();
  return total;
}

std::vector<int> ShardedServer::ThreadIds() const {
  std::lock_guard<std::mutex> lock(shards_mu_);
  std::vector<int> tids;
  for (const auto& shard : shards_) {
    const auto shard_tids = shard->ThreadIds();
    tids.insert(tids.end(), shard_tids.begin(), shard_tids.end());
  }
  return tids;
}

ServerCounters ShardedServer::Snapshot() const {
  std::lock_guard<std::mutex> lock(shards_mu_);
  ServerCounters total;
  for (const auto& shard : shards_) {
    AccumulateCounters(total, shard->Snapshot());
  }
  return total;
}

uint64_t ShardedServer::TimerWheelEntries() const {
  std::lock_guard<std::mutex> lock(shards_mu_);
  uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->TimerWheelEntries();
  return total;
}

int ShardedServer::Shards() const {
  std::lock_guard<std::mutex> lock(shards_mu_);
  return static_cast<int>(shards_.size());
}

}  // namespace hynet
