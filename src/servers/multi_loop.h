// NettyServer: boss acceptor + N worker event loops.
//
// Mirrors Netty's threading model as described in Section V-A: the boss
// thread only accepts connections and assigns each one to a worker loop;
// that worker loop then does BOTH event monitoring and event handling for
// the connection (no reactor→worker dispatch, hence no per-request context
// switches). Writes go through a channel pipeline into an OutboundBuffer
// whose Flush is capped by writeSpin (default 16), after which the loop
// yields to other connections — the write-spin mitigation, at the price of
// per-message bookkeeping.
//
// LoopGroupServer is the reusable chassis (boss + loops + read pump + the
// buffered write plumbing); MultiLoopServer adds the Netty pipeline;
// core/HybridServer subclasses the chassis with runtime path selection.
#pragma once

#include <atomic>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "io/completion_pump.h"
#include "net/acceptor.h"
#include "net/event_loop.h"
#include "runtime/buffer_pool.h"
#include "runtime/pipeline.h"
#include "servers/conn_table.h"
#include "servers/connection.h"
#include "servers/server.h"

namespace hynet {

class LoopGroupServer : public Server {
 public:
  ~LoopGroupServer() override;

  void Start() override;
  void Stop() override;
  DrainResult Shutdown(Duration drain_deadline) override;
  uint16_t Port() const override { return port_; }
  std::vector<int> ThreadIds() const override;
  ServerCounters Snapshot() const override;
  uint64_t TimerWheelEntries() const override;

 protected:
  LoopGroupServer(ServerConfig config, Handler handler);

  struct LoopConn {
    LoopConn(ScopedFd fd, int spin_cap, size_t loop)
        : conn(std::move(fd), spin_cap), loop_index(loop) {}
    Connection conn;
    size_t loop_index;
    std::unique_ptr<ChannelPipeline> pipeline;  // used by MultiLoopServer
    std::string current_target;                 // used by HybridServer
    // Protocol-plane state (RpcServer hangs its per-connection frame
    // parser and in-flight bookkeeping here without the chassis knowing
    // the type).
    std::shared_ptr<void> proto_state;
  };

  // Subclass hooks; both run on the connection's loop thread.
  virtual void OnConnectionEstablished(LoopConn& lc) { (void)lc; }
  // New bytes are available in lc.conn.in.
  virtual void OnBytes(LoopConn& lc) = 0;
  // True when the subclass still owes this connection work that is not
  // yet visible in conn.out (e.g. RPC requests executing on the worker
  // pool). A half-closed connection with pending work stays open until
  // the work lands.
  virtual bool HasPendingWork(const LoopConn& lc) const {
    (void)lc;
    return false;
  }

  // Buffered write path (Netty's write optimization): enqueue and flush
  // with the writeSpin cap; arms EPOLLOUT on a full kernel buffer and
  // re-schedules the flush task when the cap is hit. `offset` marks bytes
  // the caller already wrote directly (the hybrid light path hands over
  // its partial payload without copying the remainder).
  void EnqueueAndFlush(LoopConn& lc, Payload payload, size_t offset = 0);
  void TryFlush(LoopConn& lc);
  // Split form of EnqueueAndFlush for response coalescing: Enqueue appends
  // without flushing; FlushEnqueued flushes once and re-checks
  // backpressure. RpcServer batches the inline completions of one parse
  // pass this way, so n pipelined responses cost one writev — the write
  // side's analogue of the dispatch path's wakeup coalescing (and of
  // Netty's flush-per-read-batch idiom).
  void Enqueue(LoopConn& lc, Payload payload, size_t offset = 0);
  void FlushEnqueued(LoopConn& lc);

  void CloseConn(LoopConn& lc);
  EventLoop& LoopOf(const LoopConn& lc) { return *loops_[lc.loop_index]; }

  // True when no response bytes are queued or in flight on either write
  // plane (the readiness OutboundBuffer or the completion-mode uring
  // queue). The close-when-drained checks all gate on this.
  bool OutboundIdle(const LoopConn& lc) const {
    return lc.conn.out.Empty() && CompletionPump::Idle(lc.conn);
  }

  // True when the loops drive io_uring in completion mode (engine-owned
  // reads, queued SENDMSG writes through the per-loop CompletionPump).
  bool completion_mode() const { return completion_mode_; }

  // The owning shared_ptr for a live connection (loop thread only), so a
  // subclass can hand a weak_ptr to work that completes on another thread.
  // Null if the connection is already gone from the loop's table.
  std::shared_ptr<LoopConn> ConnHandle(const LoopConn& lc);

  // Shared counters for subclasses.
  std::atomic<uint64_t> requests_{0};
  WriteStats write_stats_;
  std::atomic<uint64_t> light_responses_{0};
  std::atomic<uint64_t> heavy_responses_{0};
  std::atomic<uint64_t> reclassifications_{0};

  LifecycleDeadlines deadlines_;

 private:
  void OnNewConnection(Socket socket, const InetAddr& peer);
  void OnLoopEvent(size_t loop_index, int fd, uint32_t events);
  // Completion-mode pump hooks (loop thread). OnPumpReadable runs after
  // the pump appended a read CQE's bytes to conn.in; the shared post-read
  // flow (OnBytes, head-pending bookkeeping, half-close policy) lives in
  // ProcessInbound, used by both event planes.
  bool OnPumpReadable(size_t loop_index, int fd);
  void OnPumpError(size_t loop_index, int fd);
  void OnPumpDrained(size_t loop_index, int fd);
  // Returns false when the connection closed.
  bool ProcessInbound(LoopConn& lc, bool dispatch_bytes);
  // Recomputes the epoll interest mask from the connection's state
  // (EPOLLOUT while outbound bytes wait, EPOLLIN unless backpressured).
  void UpdateWriteInterest(LoopConn& lc);
  // Outbound high/low-water backpressure (loop thread only).
  void MaybePauseReading(LoopConn& lc);
  void MaybeResumeReading(LoopConn& lc);
  void ScheduleSweep(size_t loop_index);
  void SweepLoop(size_t loop_index);
  uint64_t Live() const {
    return accepted_.load(std::memory_order_relaxed) -
           closed_.load(std::memory_order_relaxed);
  }

  std::unique_ptr<EventLoop> boss_loop_;
  std::unique_ptr<Acceptor> acceptor_;
  std::thread boss_thread_;
  std::atomic<int> boss_tid_{0};

  std::vector<std::unique_ptr<EventLoop>> loops_;
  std::vector<std::thread> loop_threads_;
  std::vector<std::atomic<int>> loop_tids_;
  // One read-buffer pool per loop: Acquire on accept (loop thread),
  // Release on close, so keep-alive churn recycles buffers loop-locally.
  std::vector<std::unique_ptr<BufferPool>> buffer_pools_;
  // Bytes/conn accounting, one table per loop (each updated only on its
  // loop thread; all share the registry gauges via atomic deltas).
  std::vector<std::unique_ptr<ConnTable>> conn_tables_;
  // Idle-cold reclamation threshold (zero = off).
  Duration cold_idle_{};
  // Completion mode only: per-loop pump + read-buffer adapter (the
  // adapters must outlive loops_ — engines return buffers on teardown).
  std::vector<std::unique_ptr<PoolBufferSource>> buffer_sources_;
  std::vector<std::unique_ptr<CompletionPump>> pumps_;
  bool completion_mode_ = false;
  // Connections owned by their loop thread: conns_[loop][fd]. shared_ptr
  // because the ownership handoff from the boss thread travels through a
  // copyable std::function task.
  std::vector<std::unordered_map<int, std::shared_ptr<LoopConn>>> conns_;

  uint16_t port_ = 0;
  std::atomic<bool> started_{false};
  size_t next_loop_ = 0;
  // Written on the boss thread; checked from worker-loop close paths.
  std::atomic<bool> accept_paused_{false};

  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> closed_{0};
};

class MultiLoopServer final : public LoopGroupServer {
 public:
  MultiLoopServer(ServerConfig config, Handler handler);

 protected:
  void OnConnectionEstablished(LoopConn& lc) override;
  void OnBytes(LoopConn& lc) override;
};

}  // namespace hynet
