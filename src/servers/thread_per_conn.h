// sTomcat-Sync: the thread-based synchronous architecture.
//
// One acceptor thread; every accepted connection gets a dedicated worker
// thread that blocking-reads the request, runs the handler, and
// blocking-writes the response. Zero user-space handoffs per request — the
// kernel parks the thread on I/O instead (Table II row 3).
#pragma once

#include <atomic>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "net/socket.h"
#include "runtime/buffer_pool.h"
#include "servers/server.h"

namespace hynet {

class ThreadPerConnServer final : public Server {
 public:
  ThreadPerConnServer(ServerConfig config, Handler handler);
  ~ThreadPerConnServer() override;

  void Start() override;
  void Stop() override;
  DrainResult Shutdown(Duration drain_deadline) override;
  uint16_t Port() const override { return port_; }
  std::vector<int> ThreadIds() const override;
  ServerCounters Snapshot() const override;

 private:
  void AcceptorMain();
  void ConnectionMain(Socket socket);
  uint64_t Live() const {
    return accepted_.load(std::memory_order_relaxed) -
           closed_.load(std::memory_order_relaxed);
  }

  Socket listen_socket_;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};

  std::thread acceptor_thread_;
  mutable std::mutex mu_;
  std::vector<std::thread> conn_threads_;
  std::set<int> live_fds_;   // for shutdown() on Stop
  std::set<int> live_tids_;  // for /proc metrics
  int acceptor_tid_ = 0;
  // Shared across connection threads (BufferPool is internally locked).
  BufferPool buffer_pool_;

  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> closed_{0};
  std::atomic<uint64_t> requests_{0};
  WriteStats write_stats_;
};

}  // namespace hynet
