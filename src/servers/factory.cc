// The one public factory for all eight architectures. Lives in servers/
// but compiles into the hynet_core target: kHybrid's class layers above
// the basic servers (see src/CMakeLists.txt).
#include "common/fd_limit.h"
#include "core/hybrid_server.h"
#include "servers/multi_loop.h"
#include "servers/ncopy.h"
#include "servers/reactor_pool.h"
#include "servers/server.h"
#include "servers/sharded.h"
#include "servers/single_thread.h"
#include "servers/staged.h"
#include "servers/thread_per_conn.h"

#include <stdexcept>

namespace hynet {

std::unique_ptr<Server> CreateServer(const ServerConfig& config,
                                     Handler handler) {
  const std::vector<std::string> errors = config.Validate();
  if (!errors.empty()) {
    std::string joined = "invalid ServerConfig:";
    for (const std::string& e : errors) joined += "\n  - " + e;
    throw std::invalid_argument(joined);
  }
  if (config.protocol == "rpc") {
    throw std::invalid_argument(
        "protocol \"rpc\" needs a ServiceRegistry: use "
        "CreateServer(config, ServiceRegistry) from app/rpc_server.h");
  }
  // Fail fast when the configured connection budget cannot fit under
  // RLIMIT_NOFILE (after trying to raise it): every admitted connection is
  // an fd, and discovering the wall via EMFILE accept storms at load is
  // strictly worse than refusing to start.
  if (config.max_connections > 0) {
    const uint64_t want =
        static_cast<uint64_t>(config.max_connections) + kFdSlack;
    const FdLimit limit = RaiseFdLimit(want);
    if (limit.soft < want) {
      throw std::invalid_argument(
          "max_connections=" + std::to_string(config.max_connections) +
          " needs " + std::to_string(want) + " fds but RLIMIT_NOFILE is " +
          FormatFdLimit(limit) + "; raise `ulimit -n` or lower the cap");
    }
  }
  if (config.shards > 1) {
    return std::make_unique<ShardedServer>(config, std::move(handler));
  }
  switch (config.architecture) {
    case ServerArchitecture::kThreadPerConn:
      return std::make_unique<ThreadPerConnServer>(config, std::move(handler));
    case ServerArchitecture::kReactorPool:
      return std::make_unique<ReactorPoolServer>(config, std::move(handler),
                                                 WriteDispatchMode::kSplit);
    case ServerArchitecture::kReactorPoolFix:
      return std::make_unique<ReactorPoolServer>(config, std::move(handler),
                                                 WriteDispatchMode::kMerged);
    case ServerArchitecture::kSingleThread:
      return std::make_unique<SingleThreadServer>(config, std::move(handler));
    case ServerArchitecture::kMultiLoop:
      return std::make_unique<MultiLoopServer>(config, std::move(handler));
    case ServerArchitecture::kHybrid:
      return std::make_unique<HybridServer>(config, std::move(handler));
    case ServerArchitecture::kStaged:
      return std::make_unique<StagedServer>(config, std::move(handler));
    case ServerArchitecture::kSingleThreadNCopy:
      return std::make_unique<NCopyServer>(config, std::move(handler));
  }
  throw std::invalid_argument("unknown server architecture");
}

}  // namespace hynet
