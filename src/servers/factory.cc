#include "servers/multi_loop.h"
#include "servers/ncopy.h"
#include "servers/reactor_pool.h"
#include "servers/server.h"
#include "servers/single_thread.h"
#include "servers/staged.h"
#include "servers/thread_per_conn.h"

#include <stdexcept>

namespace hynet {

std::unique_ptr<Server> CreateBasicServer(const ServerConfig& config,
                                          Handler handler) {
  switch (config.architecture) {
    case ServerArchitecture::kThreadPerConn:
      return std::make_unique<ThreadPerConnServer>(config, std::move(handler));
    case ServerArchitecture::kReactorPool:
      return std::make_unique<ReactorPoolServer>(config, std::move(handler),
                                                 WriteDispatchMode::kSplit);
    case ServerArchitecture::kReactorPoolFix:
      return std::make_unique<ReactorPoolServer>(config, std::move(handler),
                                                 WriteDispatchMode::kMerged);
    case ServerArchitecture::kSingleThread:
      return std::make_unique<SingleThreadServer>(config, std::move(handler));
    case ServerArchitecture::kMultiLoop:
      return std::make_unique<MultiLoopServer>(config, std::move(handler));
    case ServerArchitecture::kStaged:
      return std::make_unique<StagedServer>(config, std::move(handler));
    case ServerArchitecture::kSingleThreadNCopy:
      return std::make_unique<NCopyServer>(config, std::move(handler));
    case ServerArchitecture::kHybrid:
      throw std::invalid_argument(
          "kHybrid is created via CreateServer() in core/hybrid_server.h");
  }
  throw std::invalid_argument("unknown server architecture");
}

}  // namespace hynet
