// SingleT-NCopy: the "N-copy approach" of Section II-A — N independent
// single-threaded asynchronous servers launched together on one port
// (SO_REUSEPORT; the kernel load-balances incoming connections).
//
// Each copy is a full SingleThreadServer, including its naive spin-write
// path: the deployment scales the single-threaded design across cores
// without changing its per-connection behaviour, which is why the paper
// treats it as a deployment pattern rather than a distinct architecture.
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "servers/single_thread.h"

namespace hynet {

class NCopyServer final : public Server {
 public:
  NCopyServer(ServerConfig config, Handler handler);
  ~NCopyServer() override;

  void Start() override;
  void Stop() override;
  DrainResult Shutdown(Duration drain_deadline) override;
  uint16_t Port() const override { return port_; }
  std::vector<int> ThreadIds() const override;
  ServerCounters Snapshot() const override;

  int Copies() const { return static_cast<int>(copies_.size()); }

 private:
  // Guards copies_ against the admin scrape thread: the parent's registry
  // collector calls Snapshot() (which walks copies_) while Start/Stop/
  // Shutdown mutate the vector.
  mutable std::mutex copies_mu_;
  std::vector<std::unique_ptr<SingleThreadServer>> copies_;
  uint16_t port_ = 0;
};

}  // namespace hynet
