#include "servers/staged.h"

#include "common/thread_util.h"
#include "proto/http_codec.h"

namespace hynet {

StagedServer::StagedServer(ServerConfig config, Handler handler)
    : Server(std::move(config), std::move(handler)) {}

StagedServer::~StagedServer() { Stop(); }

void StagedServer::Start() {
  loop_ = std::make_unique<EventLoop>();
  const int n = std::max(1, config_.stage_threads);
  parse_pool_ = std::make_unique<WorkerPool>(n, "stage-parse");
  app_pool_ = std::make_unique<WorkerPool>(n, "stage-app");
  write_pool_ = std::make_unique<WorkerPool>(n, "stage-write");
  acceptor_ = std::make_unique<Acceptor>(
      *loop_, InetAddr::Loopback(config_.port),
      [this](Socket s, const InetAddr& peer) {
        OnNewConnection(std::move(s), peer);
      });
  port_ = acceptor_->Port();
  acceptor_->Listen();

  started_.store(true, std::memory_order_release);
  loop_thread_ = std::thread([this] {
    SetCurrentThreadName("staged-reactor");
    loop_tid_.store(CurrentTid(), std::memory_order_release);
    loop_->Run();
    conns_.clear();
  });
  while (loop_tid_.load(std::memory_order_acquire) == 0) {
    std::this_thread::yield();
  }
}

void StagedServer::Stop() {
  if (!started_.exchange(false)) return;
  // Drain stages front to back so no stage enqueues into a closed pool.
  parse_pool_->Shutdown();
  app_pool_->Shutdown();
  write_pool_->Shutdown();
  loop_->Stop();
  if (loop_thread_.joinable()) loop_thread_.join();
  acceptor_.reset();
  parse_pool_.reset();
  app_pool_.reset();
  write_pool_.reset();
  loop_.reset();
}

std::vector<int> StagedServer::ThreadIds() const {
  std::vector<int> tids;
  for (const auto* pool :
       {parse_pool_.get(), app_pool_.get(), write_pool_.get()}) {
    if (!pool) continue;
    const auto pool_tids = pool->ThreadIds();
    tids.insert(tids.end(), pool_tids.begin(), pool_tids.end());
  }
  const int tid = loop_tid_.load(std::memory_order_acquire);
  if (tid) tids.push_back(tid);
  return tids;
}

ServerCounters StagedServer::Snapshot() const {
  ServerCounters c;
  c.connections_accepted = accepted_.load(std::memory_order_relaxed);
  c.connections_closed = closed_.load(std::memory_order_relaxed);
  c.requests_handled = requests_.load(std::memory_order_relaxed);
  c.responses_sent = write_stats_.responses.load(std::memory_order_relaxed);
  c.write_calls = write_stats_.write_calls.load(std::memory_order_relaxed);
  c.zero_writes = write_stats_.zero_writes.load(std::memory_order_relaxed);
  c.logical_switches = dispatch_stats_.LogicalSwitches();
  return c;
}

void StagedServer::OnNewConnection(Socket socket, const InetAddr&) {
  socket.SetNonBlocking(true);
  ConfigureAcceptedFd(socket.fd());
  const int fd = socket.fd();
  conns_[fd] = std::make_unique<Connection>(socket.TakeFd(),
                                            config_.write_spin_cap);
  accepted_.fetch_add(1, std::memory_order_relaxed);
  loop_->RegisterFd(fd, EPOLLIN,
                    [this, fd](uint32_t) { DispatchReadEvent(fd); });
}

void StagedServer::DispatchReadEvent(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Connection* conn = it->second.get();
  loop_->UnregisterFd(fd);
  dispatch_stats_.dispatches_to_worker.fetch_add(1, std::memory_order_relaxed);
  parse_pool_->Submit([this, conn] { ParseStage(conn); });
}

void StagedServer::ParseStage(Connection* conn) {
  const int fd = conn->fd.get();
  char buf[16 * 1024];
  while (true) {
    const IoResult r = ReadFd(fd, buf, sizeof(buf));
    if (r.WouldBlock()) break;
    if (r.Eof() || r.Fatal()) {
      loop_->RunInLoop([this, conn] { CloseConnection(conn); });
      return;
    }
    conn->in.Append(buf, static_cast<size_t>(r.n));
    if (static_cast<size_t>(r.n) < sizeof(buf)) break;
  }
  // Hand the connection to the application stage (queue hop #2).
  dispatch_stats_.dispatches_to_worker.fetch_add(1, std::memory_order_relaxed);
  app_pool_->Submit([this, conn] { AppStage(conn); });
}

void StagedServer::AppStage(Connection* conn) {
  ByteBuffer out;
  bool want_close = false;
  while (true) {
    ParseStatus st;
    {
      ScopedPhase phase(phase_profiler_, Phase::kParse);
      st = conn->parser.Parse(conn->in);
    }
    if (st == ParseStatus::kNeedMore) break;
    if (st == ParseStatus::kError) {
      want_close = true;
      break;
    }
    HttpResponse resp;
    {
      ScopedPhase phase(phase_profiler_, Phase::kHandler);
      handler_(conn->parser.request(), resp);
    }
    resp.keep_alive = conn->parser.request().keep_alive;
    requests_.fetch_add(1, std::memory_order_relaxed);
    {
      ScopedPhase phase(phase_profiler_, Phase::kSerialize);
      SerializeResponse(resp, out);
    }
    if (!resp.keep_alive) {
      want_close = true;
      break;
    }
  }

  if (out.Empty()) {
    if (want_close) {
      loop_->RunInLoop([this, conn] { CloseConnection(conn); });
    } else {
      dispatch_stats_.returns_to_reactor.fetch_add(1,
                                                   std::memory_order_relaxed);
      loop_->RunInLoop([this, conn] { RearmRead(conn); });
    }
    return;
  }

  conn->pending_response.assign(out.View());
  conn->close_after_write = want_close;
  // Queue hop #3 into the write stage.
  dispatch_stats_.dispatches_to_worker.fetch_add(1, std::memory_order_relaxed);
  write_pool_->Submit([this, conn] { WriteStage(conn); });
}

void StagedServer::WriteStage(Connection* conn) {
  SpinWriteResult wr;
  {
    ScopedPhase phase(phase_profiler_, Phase::kWrite);
    wr = SpinWriteAll(conn->fd.get(), conn->pending_response, write_stats_,
                      config_.yield_on_full_write);
  }
  conn->pending_response.clear();
  dispatch_stats_.returns_to_reactor.fetch_add(1, std::memory_order_relaxed);
  if (wr != SpinWriteResult::kOk || conn->close_after_write) {
    loop_->RunInLoop([this, conn] { CloseConnection(conn); });
  } else {
    loop_->RunInLoop([this, conn] { RearmRead(conn); });
  }
}

void StagedServer::RearmRead(Connection* conn) {
  if (conn->closed) return;
  const int fd = conn->fd.get();
  loop_->RegisterFd(fd, EPOLLIN,
                    [this, fd](uint32_t) { DispatchReadEvent(fd); });
}

void StagedServer::CloseConnection(Connection* conn) {
  if (conn->closed) return;
  conn->closed = true;
  const int fd = conn->fd.get();
  if (loop_->IsRegistered(fd)) loop_->UnregisterFd(fd);
  conns_.erase(fd);
  closed_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace hynet
