#include "servers/staged.h"

#include <sys/socket.h>

#include "common/deadline.h"
#include "common/thread_util.h"
#include "proto/http_codec.h"

namespace hynet {

StagedServer::StagedServer(ServerConfig config, Handler handler)
    : Server(std::move(config), std::move(handler)) {}

StagedServer::~StagedServer() { Stop(); }

void StagedServer::Start() {
  deadlines_ = LifecycleDeadlines::FromMillis(config_.idle_timeout_ms,
                                              config_.header_timeout_ms,
                                              config_.write_stall_timeout_ms);
  buffer_pool_.BindMetrics(metrics());
  loop_ = std::make_unique<EventLoop>(ResolveIoBackendKind(config_.io_backend));
  completion_mode_ = loop_->CompletionModeAvailable() &&
                     config_.uring_mode != "readiness";
  if (completion_mode_) {
    buffer_source_ = std::make_unique<PoolBufferSource>(buffer_pool_);
    loop_->SetReadBufferSource(buffer_source_.get());
    // auto_rearm=false: the read SQE re-arms only when the stage pipeline
    // hands the connection back (RearmRead / OnPumpDrained), preserving
    // the reactor-or-stage ownership discipline the readiness path gets
    // from unregistering the fd.
    pump_ = std::make_unique<CompletionPump>(
        *loop_, write_stats_, writes_per_response_, request_latency_ns_,
        CompletionPump::Hooks{
            [this](int fd) { return OnPumpReadable(fd); },
            [this](int fd) {
              auto it = conns_.find(fd);
              if (it != conns_.end()) CloseConnection(it->second.get());
            },
            [this](int fd) { OnPumpDrained(fd); },
        },
        CompletionPump::Options{.auto_rearm = false});
  }
  if (config_.dispatch_batch > 1) {
    loop_->SetPostIterationHook([this] { FlushDispatchBatch(); });
  }
  const int n = std::max(1, config_.stage_threads);
  // Cpu layout: reactor on offset+0, then the three stage pools back to
  // back (parse: +1.., app: +1+n.., write: +1+2n..).
  auto stage_opts = [&](int stage_index) {
    WorkerPool::Options opts;
    opts.max_pop_batch = static_cast<size_t>(config_.dispatch_batch);
    opts.pin_cpu_base = config_.pin_cpus
                            ? config_.pin_cpu_offset + 1 + stage_index * n
                            : -1;
    return opts;
  };
  parse_pool_ = std::make_unique<WorkerPool>(n, "stage-parse", stage_opts(0));
  app_pool_ = std::make_unique<WorkerPool>(n, "stage-app", stage_opts(1));
  write_pool_ = std::make_unique<WorkerPool>(n, "stage-write", stage_opts(2));
  parse_pool_->BindQueueDepthGauge(
      &metrics().GetGauge("stage_parse_queue_depth"));
  app_pool_->BindQueueDepthGauge(&metrics().GetGauge("stage_app_queue_depth"));
  write_pool_->BindQueueDepthGauge(
      &metrics().GetGauge("stage_write_queue_depth"));
  acceptor_ = std::make_unique<Acceptor>(
      *loop_, InetAddr::Loopback(config_.port),
      [this](Socket s, const InetAddr& peer) {
        OnNewConnection(std::move(s), peer);
      });
  port_ = acceptor_->Port();
  acceptor_->Listen();

  started_.store(true, std::memory_order_release);
  loop_thread_ = std::thread([this] {
    SetCurrentThreadName("staged-reactor");
    if (config_.pin_cpus) PinThread(config_.pin_cpu_offset);
    loop_tid_.store(CurrentTid(), std::memory_order_release);
    loop_->Run();
    conns_.clear();
  });
  while (loop_tid_.load(std::memory_order_acquire) == 0) {
    std::this_thread::yield();
  }
  if (deadlines_.Any()) ScheduleSweep();
  StartAdminPlane();
}

void StagedServer::Stop() {
  StopAdminPlane();
  if (!started_.exchange(false)) return;
  // Drain stages front to back so no stage enqueues into a closed pool.
  parse_pool_->Shutdown();
  app_pool_->Shutdown();
  write_pool_->Shutdown();
  loop_->Stop();
  if (loop_thread_.joinable()) loop_thread_.join();
  acceptor_.reset();
  parse_pool_.reset();
  app_pool_.reset();
  write_pool_.reset();
  pump_.reset();  // references *loop_
  loop_.reset();  // engine returns read buffers through buffer_source_
  buffer_source_.reset();
}

DrainResult StagedServer::Shutdown(Duration drain_deadline) {
  if (!started_.load(std::memory_order_acquire)) return {};
  const TimePoint deadline = Now() + drain_deadline;
  const uint64_t closed_before = closed_.load(std::memory_order_relaxed);
  draining_.store(true, std::memory_order_release);

  loop_->RunInLoop([this] {
    if (acceptor_) acceptor_->Pause();
    std::vector<Connection*> idle;
    for (const auto& [fd, conn] : conns_) {
      // Only reactor-owned connections can be closed here; a stage-held
      // connection will observe draining_ on its way out.
      if (ReactorOwned(*conn) && conn->in.ReadableBytes() == 0 &&
          !conn->parser.InProgress() && CompletionPump::Idle(*conn)) {
        idle.push_back(conn.get());
      }
    }
    for (Connection* conn : idle) CloseConnection(conn);
  });

  while (Now() < deadline && Live() > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  std::atomic<uint64_t> forced{0};
  std::atomic<bool> force_done{false};
  loop_->RunInLoop([this, &forced, &force_done] {
    std::vector<Connection*> owned;
    std::vector<int> stage_owned;
    for (const auto& [fd, conn] : conns_) {
      if (ReactorOwned(*conn)) {
        owned.push_back(conn.get());
      } else {
        stage_owned.push_back(fd);
      }
    }
    for (Connection* conn : owned) CloseConnection(conn);
    // A stage worker still holds a raw pointer to each of these;
    // destroying them here would be a use-after-free. shutdown() makes
    // the worker's next read/write fail so it finishes through the
    // normal close path.
    for (const int fd : stage_owned) ::shutdown(fd, SHUT_RDWR);
    forced.store(owned.size() + stage_owned.size(),
                 std::memory_order_relaxed);
    force_done.store(true, std::memory_order_release);
  });
  while (!force_done.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const TimePoint grace = Now() + std::chrono::milliseconds(500);
  while (Now() < grace && Live() > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  DrainResult result;
  result.forced = forced.load(std::memory_order_relaxed);
  const uint64_t closed_total =
      closed_.load(std::memory_order_relaxed) - closed_before;
  result.drained =
      closed_total >= result.forced ? closed_total - result.forced : 0;
  lifecycle_.forced_closes.fetch_add(result.forced, std::memory_order_relaxed);
  lifecycle_.drained_connections.fetch_add(result.drained,
                                           std::memory_order_relaxed);
  Stop();
  return result;
}

std::vector<int> StagedServer::ThreadIds() const {
  std::vector<int> tids;
  for (const auto* pool :
       {parse_pool_.get(), app_pool_.get(), write_pool_.get()}) {
    if (!pool) continue;
    const auto pool_tids = pool->ThreadIds();
    tids.insert(tids.end(), pool_tids.begin(), pool_tids.end());
  }
  const int tid = loop_tid_.load(std::memory_order_acquire);
  if (tid) tids.push_back(tid);
  return tids;
}

ServerCounters StagedServer::Snapshot() const {
  ServerCounters c;
  c.connections_accepted = accepted_.load(std::memory_order_relaxed);
  c.connections_closed = closed_.load(std::memory_order_relaxed);
  c.requests_handled = requests_.load(std::memory_order_relaxed);
  c.responses_sent = write_stats_.responses.load(std::memory_order_relaxed);
  c.write_calls = write_stats_.write_calls.load(std::memory_order_relaxed);
  c.zero_writes = write_stats_.zero_writes.load(std::memory_order_relaxed);
  c.writev_calls = write_stats_.writev_calls.load(std::memory_order_relaxed);
  c.iov_segments = write_stats_.iov_segments.load(std::memory_order_relaxed);
  c.logical_switches = dispatch_stats_.LogicalSwitches();
  c.dispatch_batches = dispatch_batches_.load(std::memory_order_relaxed);
  c.read_calls = write_stats_.read_calls.load(std::memory_order_relaxed);
  if (loop_) {
    c.wakeup_writes_issued = loop_->WakeupWritesIssued();
    c.wakeup_writes_elided = loop_->WakeupWritesElided();
    AccumulateLoopIoStats(c, *loop_);
  }
  ExportLifecycle(c);
  return c;
}

void StagedServer::OnNewConnection(Socket socket, const InetAddr&) {
  if (config_.max_connections > 0 &&
      Live() >= static_cast<uint64_t>(config_.max_connections)) {
    ShedWith503(socket.fd());
    return;
  }
  socket.SetNonBlocking(true);
  ConfigureAcceptedFd(socket.fd());
  const int fd = socket.fd();
  auto conn = std::make_unique<Connection>(socket.TakeFd(),
                                           config_.write_spin_cap);
  conn->in = buffer_pool_.Acquire();
  conn->lifecycle.last_activity = Now();
  conn->parser.SetLimits(config_.max_request_head_bytes,
                         config_.max_request_body_bytes);
  Connection* raw = conn.get();
  conns_[fd] = std::move(conn);
  accepted_.fetch_add(1, std::memory_order_relaxed);
  if (completion_mode_) {
    pump_->Watch(fd, raw);
  } else {
    loop_->RegisterFd(fd, EPOLLIN | EPOLLRDHUP, [this, fd](uint32_t events) {
      DispatchReadEvent(fd, events);
    });
  }
  if (config_.max_connections > 0 && !config_.shed_with_503 &&
      !accept_paused_ &&
      Live() >= static_cast<uint64_t>(config_.max_connections)) {
    acceptor_->Pause();
    accept_paused_ = true;
    lifecycle_.accept_pauses.fetch_add(1, std::memory_order_relaxed);
  }
}

void StagedServer::DispatchReadEvent(int fd, uint32_t events) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Connection* conn = it->second.get();
  if (events & (EPOLLHUP | EPOLLERR)) {
    CloseConnection(conn);
    return;
  }
  if (events & EPOLLRDHUP) conn->lifecycle.peer_half_closed = true;
  loop_->UnregisterFd(fd);
  dispatch_stats_.dispatches_to_worker.fetch_add(1, std::memory_order_relaxed);
  EnqueueParseTask([this, conn] { ParseStage(conn); });
}

bool StagedServer::OnPumpReadable(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return false;
  Connection* conn = it->second.get();
  if (conn->closed) return false;
  // Completion plane: the kernel already deposited the bytes in conn->in,
  // so the parse stage starts at parse. No re-arm until the stage pipeline
  // hands back (Options.auto_rearm=false) — the ownership discipline the
  // readiness path gets by unregistering.
  conn->worker_owned = true;
  dispatch_stats_.dispatches_to_worker.fetch_add(1, std::memory_order_relaxed);
  EnqueueParseTask([this, conn] { ParseStage(conn); });
  return true;
}

void StagedServer::EnqueueParseTask(WorkerPool::Task task) {
  if (config_.dispatch_batch <= 1) {
    dispatch_batches_.fetch_add(1, std::memory_order_relaxed);
    parse_pool_->Submit(std::move(task));
    return;
  }
  pending_dispatch_.push_back(std::move(task));
  if (pending_dispatch_.size() >=
      static_cast<size_t>(config_.dispatch_batch)) {
    FlushDispatchBatch();
  }
}

void StagedServer::FlushDispatchBatch() {
  if (pending_dispatch_.empty()) return;
  dispatch_batches_.fetch_add(1, std::memory_order_relaxed);
  std::vector<WorkerPool::Task> batch;
  batch.swap(pending_dispatch_);
  parse_pool_->SubmitBatch(std::move(batch));
}

void StagedServer::ParseStage(Connection* conn) {
  if (!completion_mode_) {
    // Readiness plane only: completion mode arrives here with the read
    // CQE's bytes already appended to conn->in by the pump.
    const int fd = conn->fd.get();
    char buf[16 * 1024];
    while (true) {
      write_stats_.read_calls.fetch_add(1, std::memory_order_relaxed);
      const IoResult r = ReadFd(fd, buf, sizeof(buf));
      if (r.WouldBlock()) break;
      if (r.Fatal()) {
        loop_->RunInLoop([this, conn] { CloseConnection(conn); });
        return;
      }
      if (r.Eof()) {
        // Requests already buffered still flow through the remaining
        // stages; the app stage closes once they are answered.
        conn->lifecycle.peer_half_closed = true;
        break;
      }
      conn->in.Append(buf, static_cast<size_t>(r.n));
      conn->lifecycle.last_activity = Now();
      if (static_cast<size_t>(r.n) < sizeof(buf)) break;
    }
  }
  // Hand the connection to the application stage (queue hop #2).
  dispatch_stats_.dispatches_to_worker.fetch_add(1, std::memory_order_relaxed);
  if (config_.ResilienceEnabled()) {
    // Stamp the enqueue time so the app stage can measure queue sojourn —
    // the signal the queue-delay shedder keys on. Seeded from the read
    // stage's (busy-aware) tick start: kernel wait behind earlier fds in
    // the same batch is part of the same queue.
    const TimePoint enq = EffectiveRequestStart(Now());
    app_pool_->Submit([this, conn, enq] {
      ScopedDispatchStart dispatch_start(enq);
      AppStage(conn);
    });
  } else {
    app_pool_->Submit([this, conn] { AppStage(conn); });
  }
}

void StagedServer::AppStage(Connection* conn) {
  const bool peer_eof = conn->lifecycle.peer_half_closed;
  std::vector<Payload> batch;
  bool want_close = false;
  while (true) {
    ParseStatus st;
    {
      ScopedPhase phase(phase_profiler_, Phase::kParse);
      st = conn->parser.Parse(conn->in);
    }
    if (st == ParseStatus::kNeedMore) {
      if (conn->in.ReadableBytes() > 0 || conn->parser.InProgress()) {
        if (!conn->lifecycle.head_pending) {
          conn->lifecycle.head_pending = true;
          conn->lifecycle.head_start = Now();
        }
      } else {
        conn->lifecycle.head_pending = false;
      }
      break;
    }
    conn->lifecycle.head_pending = false;
    if (st == ParseStatus::kError) {
      const ParseError err = conn->parser.error();
      if (err == ParseError::kHeadTooLarge ||
          err == ParseError::kBodyTooLarge) {
        lifecycle_.oversize_requests.fetch_add(1, std::memory_order_relaxed);
        batch.push_back(Payload::FromString(
            SimpleErrorResponse(err == ParseError::kHeadTooLarge ? 431 : 413)));
      }
      want_close = true;
      break;
    }
    conn->batch_request_starts.push_back(NowNanos());
    HttpResponse resp;
    {
      ScopedPhase phase(phase_profiler_, Phase::kHandler);
      handler_(conn->parser.request(), resp);
    }
    resp.keep_alive = conn->parser.request().keep_alive &&
                      !draining_.load(std::memory_order_relaxed);
    requests_.fetch_add(1, std::memory_order_relaxed);
    {
      ScopedPhase phase(phase_profiler_, Phase::kSerialize);
      batch.push_back(SerializeResponsePayload(resp));
    }
    if (!resp.keep_alive) {
      want_close = true;
      break;
    }
  }
  if (peer_eof) want_close = true;

  if (batch.empty()) {
    conn->batch_request_starts.clear();
    if (want_close) {
      if (peer_eof) {
        lifecycle_.half_close_reclaims.fetch_add(1, std::memory_order_relaxed);
      }
      loop_->RunInLoop([this, conn] { CloseConnection(conn); });
    } else {
      dispatch_stats_.returns_to_reactor.fetch_add(1,
                                                   std::memory_order_relaxed);
      loop_->RunInLoop([this, conn] { RearmRead(conn); });
    }
    return;
  }

  conn->pending_batch = std::move(batch);
  conn->close_after_write = want_close;
  // Queue hop #3 into the write stage.
  dispatch_stats_.dispatches_to_worker.fetch_add(1, std::memory_order_relaxed);
  write_pool_->Submit([this, conn] { WriteStage(conn); });
}

void StagedServer::WriteStage(Connection* conn) {
  if (completion_mode_) {
    // The write stage's spin write becomes a pump submission on the
    // reactor; this stage's contribution is the queue hop itself (the
    // SEDA modularity cost survives the I/O-plane swap).
    dispatch_stats_.returns_to_reactor.fetch_add(1, std::memory_order_relaxed);
    CompleteBatchOnLoop(conn, std::move(conn->pending_batch),
                        std::move(conn->batch_request_starts),
                        conn->close_after_write);
    return;
  }
  SpinWriteResult wr;
  int writes_used = 0;
  {
    ScopedPhase phase(phase_profiler_, Phase::kWrite);
    wr = SpinWritePayloads(conn->fd.get(), conn->pending_batch.data(),
                           conn->pending_batch.size(), write_stats_,
                           config_.yield_on_full_write, deadlines_.write_stall,
                           &writes_used);
  }
  conn->pending_batch.clear();
  if (wr == SpinWriteResult::kOk) {
    writes_per_response_->Record(writes_used);
    // Latency covers the full stage pipeline: parse hand-off, app stage,
    // and the write-stage flush for every request in this batch.
    const int64_t done_ns = NowNanos();
    for (const int64_t start_ns : conn->batch_request_starts) {
      request_latency_ns_->Record(done_ns - start_ns);
    }
  }
  conn->batch_request_starts.clear();
  if (wr == SpinWriteResult::kStalled) {
    lifecycle_.write_stall_evictions.fetch_add(1, std::memory_order_relaxed);
  }
  dispatch_stats_.returns_to_reactor.fetch_add(1, std::memory_order_relaxed);
  if (wr != SpinWriteResult::kOk || conn->close_after_write) {
    if (wr == SpinWriteResult::kOk && conn->lifecycle.peer_half_closed) {
      lifecycle_.half_close_reclaims.fetch_add(1, std::memory_order_relaxed);
    }
    loop_->RunInLoop([this, conn] { CloseConnection(conn); });
  } else {
    conn->lifecycle.last_activity = Now();
    loop_->RunInLoop([this, conn] { RearmRead(conn); });
  }
}

void StagedServer::RearmRead(Connection* conn) {
  if (conn->closed) return;
  conn->worker_owned = false;
  // During a drain an idle hand-back closes instead of rearming.
  if (draining_.load(std::memory_order_relaxed) &&
      conn->in.ReadableBytes() == 0 && !conn->parser.InProgress()) {
    CloseConnection(conn);
    return;
  }
  const int fd = conn->fd.get();
  if (completion_mode_) {
    pump_->ArmRead(fd, *conn);
    return;
  }
  loop_->RegisterFd(fd, EPOLLIN | EPOLLRDHUP, [this, fd](uint32_t events) {
    DispatchReadEvent(fd, events);
  });
}

void StagedServer::CompleteBatchOnLoop(Connection* conn,
                                       std::vector<Payload> batch,
                                       std::vector<int64_t> starts,
                                       bool want_close) {
  // Safe to capture the raw pointer: while worker_owned no reactor path
  // closes the connection (the sweep skips it, Shutdown only shutdown(2)s
  // the fd), the same invariant the readiness hand-backs rely on.
  loop_->RunInLoop([this, conn, batch = std::move(batch),
                    starts = std::move(starts), want_close]() mutable {
    if (conn->closed) return;
    conn->worker_owned = false;
    if (want_close) conn->close_after_write = true;
    for (size_t i = 0; i < batch.size(); ++i) {
      pump_->Enqueue(*conn, std::move(batch[i]),
                     i < starts.size() ? starts[i] : 0);
    }
    pump_->Flush(conn->fd.get(), *conn);
  });
}

void StagedServer::OnPumpDrained(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Connection* conn = it->second.get();
  if (conn->closed) return;
  if (conn->close_after_write) {
    if (conn->lifecycle.peer_half_closed) {
      lifecycle_.half_close_reclaims.fetch_add(1, std::memory_order_relaxed);
    }
    CloseConnection(conn);
    return;
  }
  conn->lifecycle.last_activity = Now();
  RearmRead(conn);
}

void StagedServer::CloseConnection(Connection* conn) {
  if (conn->closed) return;
  conn->closed = true;
  const int fd = conn->fd.get();
  if (completion_mode_) {
    pump_->Unwatch(fd);
  } else if (loop_->IsRegistered(fd)) {
    loop_->UnregisterFd(fd);
  }
  buffer_pool_.Release(std::move(conn->in));
  conns_.erase(fd);
  closed_.fetch_add(1, std::memory_order_relaxed);
  if (accept_paused_ && acceptor_ &&
      !draining_.load(std::memory_order_relaxed) &&
      Live() < static_cast<uint64_t>(config_.max_connections)) {
    acceptor_->Resume();
    accept_paused_ = false;
  }
}

void StagedServer::EvictConnection(Connection* conn, EvictReason reason) {
  switch (reason) {
    case EvictReason::kIdle:
      lifecycle_.idle_evictions.fetch_add(1, std::memory_order_relaxed);
      break;
    case EvictReason::kHeaderTimeout:
      lifecycle_.header_evictions.fetch_add(1, std::memory_order_relaxed);
      break;
    case EvictReason::kWriteStall:
      lifecycle_.write_stall_evictions.fetch_add(1, std::memory_order_relaxed);
      break;
    case EvictReason::kNone:
      break;
  }
  CloseConnection(conn);
}

void StagedServer::ScheduleSweep() {
  loop_->RunAfter(SweepPeriod(deadlines_), [this] {
    SweepDeadlines();
    if (started_.load(std::memory_order_acquire)) ScheduleSweep();
  });
}

void StagedServer::SweepDeadlines() {
  const TimePoint now = Now();
  std::vector<std::pair<Connection*, EvictReason>> victims;
  for (const auto& [fd, conn] : conns_) {
    if (!ReactorOwned(*conn)) continue;
    const EvictReason reason = CheckDeadlines(conn->lifecycle, deadlines_, now);
    if (reason != EvictReason::kNone) {
      victims.emplace_back(conn.get(), reason);
      continue;
    }
    if (conn->in.ReadableBytes() == 0 && !conn->parser.InProgress() &&
        conn->in.Capacity() > ByteBuffer::kInitialCapacity) {
      conn->in.ShrinkToFit();
    }
  }
  for (const auto& [conn, reason] : victims) EvictConnection(conn, reason);
}

}  // namespace hynet
