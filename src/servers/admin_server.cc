#include "servers/admin_server.h"

#include <sys/epoll.h>

#include "common/thread_util.h"
#include "net/socket.h"
#include "proto/http_codec.h"
#include "proto/http_message.h"

namespace hynet {

namespace {

Payload BuildResponse(int status, const char* reason,
                      const char* content_type, std::string body,
                      bool keep_alive) {
  HttpResponse resp;
  resp.status = status;
  resp.reason = reason;
  resp.SetHeader("Content-Type", content_type);
  resp.body = std::move(body);
  resp.keep_alive = keep_alive;
  return SerializeResponsePayload(resp);
}

}  // namespace

AdminServer::AdminServer(uint16_t port,
                         std::shared_ptr<MetricsRegistry> registry,
                         std::function<bool()> draining,
                         std::function<bool()> overloaded)
    : requested_port_(port),
      registry_(std::move(registry)),
      draining_(std::move(draining)),
      overloaded_(std::move(overloaded)) {}

AdminServer::~AdminServer() { Stop(); }

void AdminServer::Start() {
  if (started_.exchange(true)) return;
  loop_ = std::make_unique<EventLoop>();
  acceptor_ = std::make_unique<Acceptor>(
      *loop_, InetAddr::Loopback(requested_port_),
      [this](Socket s, const InetAddr&) { OnNewConnection(std::move(s)); });
  port_ = acceptor_->Port();
  acceptor_->Listen();
  loop_thread_ = std::thread([this] {
    SetCurrentThreadName("hynet-admin");
    loop_->Run();
    conns_.clear();
  });
}

void AdminServer::Stop() {
  if (!started_.exchange(false)) return;
  loop_->Stop();
  if (loop_thread_.joinable()) loop_thread_.join();
  acceptor_.reset();
  loop_.reset();
}

void AdminServer::OnNewConnection(Socket socket) {
  socket.SetNonBlocking(true);
  const int fd = socket.fd();
  conns_[fd] = std::make_unique<AdminConn>(socket.TakeFd());
  loop_->RegisterFd(fd, EPOLLIN | EPOLLRDHUP,
                    [this, fd](uint32_t events) { OnEvent(fd, events); });
}

void AdminServer::OnEvent(int fd, uint32_t events) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  AdminConn& conn = *it->second;

  if (events & (EPOLLHUP | EPOLLERR)) {
    CloseConn(fd);
    return;
  }
  if (events & EPOLLOUT) {
    FlushOut(fd, conn);
    if (conns_.find(fd) == conns_.end()) return;
  }
  if (events & (EPOLLIN | EPOLLRDHUP)) {
    bool peer_eof = false;
    char buf[8 * 1024];
    while (true) {
      const IoResult r = ReadFd(fd, buf, sizeof(buf));
      if (r.WouldBlock()) break;
      if (r.Fatal()) {
        CloseConn(fd);
        return;
      }
      if (r.Eof()) {
        peer_eof = true;
        break;
      }
      conn.in.Append(buf, static_cast<size_t>(r.n));
      if (static_cast<size_t>(r.n) < sizeof(buf)) break;
    }
    HandleRequests(conn);
    if (conns_.find(fd) == conns_.end()) return;
    if (peer_eof && conn.out.Empty()) {
      CloseConn(fd);
      return;
    }
    FlushOut(fd, conn);
  }
}

void AdminServer::HandleRequests(AdminConn& conn) {
  while (true) {
    const ParseStatus st = conn.parser.Parse(conn.in);
    if (st == ParseStatus::kNeedMore) return;
    if (st == ParseStatus::kError) {
      conn.out.Add(SimpleErrorResponse(400));
      conn.close_after_write = true;
      return;
    }
    const HttpRequest& req = conn.parser.request();
    conn.out.Add(Respond(req.path.empty() ? req.target : req.path));
    if (!req.keep_alive) {
      conn.close_after_write = true;
      return;
    }
  }
}

Payload AdminServer::Respond(const std::string& path) {
  if (path == "/metrics") {
    return BuildResponse(200, "OK", "text/plain; version=0.0.4",
                         registry_->PrometheusText(), true);
  }
  if (path == "/stats.json") {
    return BuildResponse(200, "OK", "application/json",
                         registry_->StatsJson(), true);
  }
  if (path == "/healthz") {
    // Draining wins over overloaded: a draining server is leaving the
    // pool regardless of current load.
    if (draining_ && draining_()) {
      return BuildResponse(503, "Service Unavailable", "text/plain",
                           "draining\n", true);
    }
    if (overloaded_ && overloaded_()) {
      return BuildResponse(503, "Service Unavailable", "text/plain",
                           "overloaded\n", true);
    }
    return BuildResponse(200, "OK", "text/plain", "ok\n", true);
  }
  return BuildResponse(404, "Not Found", "text/plain", "not found\n", true);
}

void AdminServer::FlushOut(int fd, AdminConn& conn) {
  const FlushResult fr = conn.out.Flush(fd, write_stats_);
  if (fr == FlushResult::kError) {
    CloseConn(fd);
    return;
  }
  if (fr == FlushResult::kWouldBlock || fr == FlushResult::kSpinCapped) {
    // Level-triggered EPOLLOUT re-fires as soon as the kernel buffer has
    // room again, which also resumes a spin-capped drain.
    loop_->ModifyFd(fd, EPOLLIN | EPOLLRDHUP | EPOLLOUT);
    return;
  }
  if (conn.close_after_write) {
    CloseConn(fd);
    return;
  }
  loop_->ModifyFd(fd, EPOLLIN | EPOLLRDHUP);
}

void AdminServer::CloseConn(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  loop_->UnregisterFd(fd);
  conns_.erase(it);
}

}  // namespace hynet
