// Per-loop connection-table accounting: bytes/conn as a first-class metric.
//
// Every event-driven architecture owns one ConnTable per loop; all tables
// of one server resolve the same four gauges from the server's registry
// and maintain them with atomic deltas, so the scrape-side cost is O(1)
// regardless of connection count:
//
//   conn_count           live accounted connections
//   conn_bytes_resident  reclaimable heap held by connections: read-buffer
//                        capacity, codec scratch, outbound queue bytes,
//                        unsent completion-queue bytes
//   conn_bytes_total     resident + the fixed per-connection struct cost
//   conn_cold            connections whose read buffer the idle-cold
//                        sweep has reclaimed (ServerConfig::cold_idle_ms)
//
// The derived `conn_bytes_per_conn` gauge (total / count) is computed at
// scrape time by the Server base collector. Accounting is incremental:
// each connection caches its last-reported figure (Connection::
// accounted_bytes) and Update() applies the delta, so re-accounting a
// connection after a read or flush is two relaxed fetch_adds.
#pragma once

#include <cstddef>

#include "metrics/registry.h"
#include "servers/connection.h"

namespace hynet {

class ConnTable {
 public:
  // fixed_overhead: bytes charged per connection beyond the measured heap
  // (the connection struct itself plus any per-architecture wrapper).
  explicit ConnTable(size_t fixed_overhead = sizeof(Connection))
      : fixed_overhead_(fixed_overhead) {}

  // Resolves the gauges. Call after the server's registry is final (post
  // AdoptMetricsRegistry) and before the first OnOpen.
  void BindMetrics(MetricsRegistry& metrics) {
    count_ = &metrics.GetGauge("conn_count");
    resident_ = &metrics.GetGauge("conn_bytes_resident");
    total_ = &metrics.GetGauge("conn_bytes_total");
    cold_ = &metrics.GetGauge("conn_cold");
  }

  void OnOpen(Connection& conn) {
    if (!count_) return;
    count_->Add(1);
    total_->Add(static_cast<int64_t>(fixed_overhead_));
    conn.accounted_bytes = 0;
    Update(conn);
  }

  // Re-measures `conn` and applies the delta since its last accounting.
  void Update(Connection& conn) {
    if (!count_) return;
    const size_t now = ResidentBytes(conn);
    const int64_t delta = static_cast<int64_t>(now) -
                          static_cast<int64_t>(conn.accounted_bytes);
    if (delta != 0) {
      resident_->Add(delta);
      total_->Add(delta);
      conn.accounted_bytes = now;
    }
    if (conn.cold != accounted_cold(conn)) {
      cold_->Add(conn.cold ? 1 : -1);
      set_accounted_cold(conn, conn.cold);
    }
  }

  void OnClose(Connection& conn) {
    if (!count_) return;
    count_->Add(-1);
    resident_->Add(-static_cast<int64_t>(conn.accounted_bytes));
    total_->Add(-static_cast<int64_t>(conn.accounted_bytes + fixed_overhead_));
    if (accounted_cold(conn)) cold_->Add(-1);
    conn.accounted_bytes = 0;
    set_accounted_cold(conn, false);
  }

  // The measured (reclaimable) heap bytes one connection holds right now.
  static size_t ResidentBytes(const Connection& conn) {
    return conn.in.Capacity() + conn.parser.ScratchBytes() +
           conn.out.PendingBytes() + conn.uring_q_bytes;
  }

 private:
  static bool accounted_cold(const Connection& conn) {
    return conn.accounted_cold;
  }
  static void set_accounted_cold(Connection& conn, bool v) {
    conn.accounted_cold = v;
  }

  const size_t fixed_overhead_;
  Gauge* count_ = nullptr;
  Gauge* resident_ = nullptr;
  Gauge* total_ = nullptr;
  Gauge* cold_ = nullptr;
};

}  // namespace hynet
