#include "servers/connection.h"

#include <limits.h>
#include <sched.h>

#include <algorithm>

#include "net/socket.h"

namespace hynet {
namespace {

// Iovec batch cap per writev syscall (see OutboundBuffer for rationale).
constexpr size_t kIovBatch = std::min<size_t>(IOV_MAX, 128);

}  // namespace

LifecycleDeadlines LifecycleDeadlines::FromMillis(int idle_ms, int header_ms,
                                                  int write_stall_ms) {
  LifecycleDeadlines d;
  if (idle_ms > 0) d.idle = std::chrono::milliseconds(idle_ms);
  if (header_ms > 0) d.header = std::chrono::milliseconds(header_ms);
  if (write_stall_ms > 0) {
    d.write_stall = std::chrono::milliseconds(write_stall_ms);
  }
  return d;
}

EvictReason CheckDeadlines(const ConnLifecycle& lc,
                           const LifecycleDeadlines& deadlines, TimePoint now) {
  if (lc.write_stalled && deadlines.write_stall > Duration::zero() &&
      now - lc.stall_start >= deadlines.write_stall) {
    return EvictReason::kWriteStall;
  }
  if (lc.head_pending && deadlines.header > Duration::zero() &&
      now - lc.head_start >= deadlines.header) {
    return EvictReason::kHeaderTimeout;
  }
  if (!lc.write_stalled && deadlines.idle > Duration::zero() &&
      now - lc.last_activity >= deadlines.idle) {
    return EvictReason::kIdle;
  }
  return EvictReason::kNone;
}

Duration SweepPeriod(const LifecycleDeadlines& deadlines, Duration cold_idle) {
  Duration shortest = std::chrono::seconds(4);
  for (const Duration d :
       {deadlines.idle, deadlines.header, deadlines.write_stall, cold_idle}) {
    if (d > Duration::zero()) shortest = std::min(shortest, d);
  }
  return std::clamp<Duration>(shortest / 4, std::chrono::milliseconds(10),
                              std::chrono::seconds(1));
}

SpinWriteResult SpinWriteAll(int fd, std::string_view data,
                             WriteStats& stats, bool yield_on_full,
                             Duration stall_timeout, int* writes_out) {
  size_t off = 0;
  int writes = 0;
  TimePoint last_progress{};
  while (off < data.size()) {
    const IoResult r = WriteFd(fd, data.data() + off, data.size() - off);
    stats.write_calls.fetch_add(1, std::memory_order_relaxed);
    writes++;
    if (writes_out) *writes_out = writes;
    if (r.WouldBlock() || r.n == 0) {
      // TCP send buffer full: the write-spin. The caller's thread stays
      // glued to this response until ACKs free buffer space.
      stats.zero_writes.fetch_add(1, std::memory_order_relaxed);
      if (stall_timeout > Duration::zero()) {
        const TimePoint now = Now();
        if (last_progress == TimePoint{}) {
          last_progress = now;
        } else if (now - last_progress >= stall_timeout) {
          return SpinWriteResult::kStalled;
        }
      }
      if (yield_on_full) ::sched_yield();
      continue;
    }
    if (r.Fatal()) return SpinWriteResult::kPeerClosed;
    off += static_cast<size_t>(r.n);
    last_progress = TimePoint{};
  }
  stats.responses.fetch_add(1, std::memory_order_relaxed);
  return SpinWriteResult::kOk;
}

SpinWriteResult SpinWritePayloads(int fd, const Payload* payloads,
                                  size_t count, WriteStats& stats,
                                  bool yield_on_full, Duration stall_timeout,
                                  int* writes_out) {
  size_t idx = 0;  // first payload not fully written
  size_t off = 0;  // bytes of payloads[idx] already in the kernel
  int writes = 0;
  TimePoint last_progress{};
  while (idx < count) {
    if (payloads[idx].size() <= off) {  // zero-byte payload
      idx++;
      off = 0;
      continue;
    }
    struct iovec iov[kIovBatch];
    size_t niov = 0;
    for (size_t i = idx; i < count && niov < kIovBatch; ++i) {
      niov += payloads[i].FillIov(i == idx ? off : 0, iov + niov,
                                  kIovBatch - niov);
    }
    const IoResult r = WritevFd(fd, iov, static_cast<int>(niov));
    stats.write_calls.fetch_add(1, std::memory_order_relaxed);
    stats.writev_calls.fetch_add(1, std::memory_order_relaxed);
    stats.iov_segments.fetch_add(niov, std::memory_order_relaxed);
    writes++;
    if (writes_out) *writes_out = writes;
    if (r.WouldBlock() || r.n == 0) {
      stats.zero_writes.fetch_add(1, std::memory_order_relaxed);
      if (stall_timeout > Duration::zero()) {
        const TimePoint now = Now();
        if (last_progress == TimePoint{}) {
          last_progress = now;
        } else if (now - last_progress >= stall_timeout) {
          return SpinWriteResult::kStalled;
        }
      }
      if (yield_on_full) ::sched_yield();
      continue;
    }
    if (r.Fatal()) return SpinWriteResult::kPeerClosed;
    size_t written = static_cast<size_t>(r.n);
    while (written > 0) {
      const size_t remaining = payloads[idx].size() - off;
      if (remaining <= written) {
        written -= remaining;
        idx++;
        off = 0;
      } else {
        off += written;
        written = 0;
      }
    }
    last_progress = TimePoint{};
  }
  stats.responses.fetch_add(count, std::memory_order_relaxed);
  return SpinWriteResult::kOk;
}

SpinWriteResult SpinWriteAll(int fd, const Payload& payload, WriteStats& stats,
                             bool yield_on_full, Duration stall_timeout,
                             int* writes_out) {
  return SpinWritePayloads(fd, &payload, 1, stats, yield_on_full,
                           stall_timeout, writes_out);
}

SpinWriteResult BlockingWriteAll(int fd, std::string_view data,
                                 WriteStats& stats, int* writes_out) {
  size_t off = 0;
  int writes = 0;
  while (off < data.size()) {
    const IoResult r = WriteFd(fd, data.data() + off, data.size() - off);
    stats.write_calls.fetch_add(1, std::memory_order_relaxed);
    writes++;
    if (writes_out) *writes_out = writes;
    // EAGAIN on a blocking fd means SO_SNDTIMEO expired with the peer's
    // window still shut: a write stall, not a retryable condition.
    if (r.WouldBlock()) return SpinWriteResult::kStalled;
    if (r.Fatal()) return SpinWriteResult::kPeerClosed;
    off += static_cast<size_t>(r.n);
  }
  stats.responses.fetch_add(1, std::memory_order_relaxed);
  return SpinWriteResult::kOk;
}

SpinWriteResult BlockingWriteAll(int fd, const Payload& payload,
                                 WriteStats& stats, int* writes_out) {
  size_t off = 0;
  int writes = 0;
  while (off < payload.size()) {
    struct iovec iov[Payload::kMaxSegments];
    const size_t niov = payload.FillIov(off, iov, Payload::kMaxSegments);
    const IoResult r = WritevFd(fd, iov, static_cast<int>(niov));
    stats.write_calls.fetch_add(1, std::memory_order_relaxed);
    stats.writev_calls.fetch_add(1, std::memory_order_relaxed);
    stats.iov_segments.fetch_add(niov, std::memory_order_relaxed);
    writes++;
    if (writes_out) *writes_out = writes;
    if (r.WouldBlock()) return SpinWriteResult::kStalled;
    if (r.Fatal()) return SpinWriteResult::kPeerClosed;
    off += static_cast<size_t>(r.n);
  }
  stats.responses.fetch_add(1, std::memory_order_relaxed);
  return SpinWriteResult::kOk;
}

}  // namespace hynet
