#include "servers/connection.h"

#include <sched.h>

#include <algorithm>

#include "net/socket.h"

namespace hynet {

LifecycleDeadlines LifecycleDeadlines::FromMillis(int idle_ms, int header_ms,
                                                  int write_stall_ms) {
  LifecycleDeadlines d;
  if (idle_ms > 0) d.idle = std::chrono::milliseconds(idle_ms);
  if (header_ms > 0) d.header = std::chrono::milliseconds(header_ms);
  if (write_stall_ms > 0) {
    d.write_stall = std::chrono::milliseconds(write_stall_ms);
  }
  return d;
}

EvictReason CheckDeadlines(const ConnLifecycle& lc,
                           const LifecycleDeadlines& deadlines, TimePoint now) {
  if (lc.write_stalled && deadlines.write_stall > Duration::zero() &&
      now - lc.stall_start >= deadlines.write_stall) {
    return EvictReason::kWriteStall;
  }
  if (lc.head_pending && deadlines.header > Duration::zero() &&
      now - lc.head_start >= deadlines.header) {
    return EvictReason::kHeaderTimeout;
  }
  if (!lc.write_stalled && deadlines.idle > Duration::zero() &&
      now - lc.last_activity >= deadlines.idle) {
    return EvictReason::kIdle;
  }
  return EvictReason::kNone;
}

Duration SweepPeriod(const LifecycleDeadlines& deadlines) {
  Duration shortest = std::chrono::seconds(4);
  for (const Duration d :
       {deadlines.idle, deadlines.header, deadlines.write_stall}) {
    if (d > Duration::zero()) shortest = std::min(shortest, d);
  }
  return std::clamp<Duration>(shortest / 4, std::chrono::milliseconds(10),
                              std::chrono::seconds(1));
}

SpinWriteResult SpinWriteAll(int fd, std::string_view data,
                             WriteStats& stats, bool yield_on_full,
                             Duration stall_timeout, int* writes_out) {
  size_t off = 0;
  int writes = 0;
  TimePoint last_progress{};
  while (off < data.size()) {
    const IoResult r = WriteFd(fd, data.data() + off, data.size() - off);
    stats.write_calls.fetch_add(1, std::memory_order_relaxed);
    writes++;
    if (writes_out) *writes_out = writes;
    if (r.WouldBlock() || r.n == 0) {
      // TCP send buffer full: the write-spin. The caller's thread stays
      // glued to this response until ACKs free buffer space.
      stats.zero_writes.fetch_add(1, std::memory_order_relaxed);
      if (stall_timeout > Duration::zero()) {
        const TimePoint now = Now();
        if (last_progress == TimePoint{}) {
          last_progress = now;
        } else if (now - last_progress >= stall_timeout) {
          return SpinWriteResult::kStalled;
        }
      }
      if (yield_on_full) ::sched_yield();
      continue;
    }
    if (r.Fatal()) return SpinWriteResult::kPeerClosed;
    off += static_cast<size_t>(r.n);
    last_progress = TimePoint{};
  }
  stats.responses.fetch_add(1, std::memory_order_relaxed);
  return SpinWriteResult::kOk;
}

SpinWriteResult BlockingWriteAll(int fd, std::string_view data,
                                 WriteStats& stats, int* writes_out) {
  size_t off = 0;
  int writes = 0;
  while (off < data.size()) {
    const IoResult r = WriteFd(fd, data.data() + off, data.size() - off);
    stats.write_calls.fetch_add(1, std::memory_order_relaxed);
    writes++;
    if (writes_out) *writes_out = writes;
    // EAGAIN on a blocking fd means SO_SNDTIMEO expired with the peer's
    // window still shut: a write stall, not a retryable condition.
    if (r.WouldBlock()) return SpinWriteResult::kStalled;
    if (r.Fatal()) return SpinWriteResult::kPeerClosed;
    off += static_cast<size_t>(r.n);
  }
  stats.responses.fetch_add(1, std::memory_order_relaxed);
  return SpinWriteResult::kOk;
}

}  // namespace hynet
