#include "servers/connection.h"

#include <sched.h>

#include "net/socket.h"

namespace hynet {

SpinWriteResult SpinWriteAll(int fd, std::string_view data,
                             WriteStats& stats, bool yield_on_full) {
  size_t off = 0;
  while (off < data.size()) {
    const IoResult r = WriteFd(fd, data.data() + off, data.size() - off);
    stats.write_calls.fetch_add(1, std::memory_order_relaxed);
    if (r.WouldBlock() || r.n == 0) {
      // TCP send buffer full: the write-spin. The caller's thread stays
      // glued to this response until ACKs free buffer space.
      stats.zero_writes.fetch_add(1, std::memory_order_relaxed);
      if (yield_on_full) ::sched_yield();
      continue;
    }
    if (r.Fatal()) return SpinWriteResult::kPeerClosed;
    off += static_cast<size_t>(r.n);
  }
  stats.responses.fetch_add(1, std::memory_order_relaxed);
  return SpinWriteResult::kOk;
}

SpinWriteResult BlockingWriteAll(int fd, std::string_view data,
                                 WriteStats& stats) {
  size_t off = 0;
  while (off < data.size()) {
    const IoResult r = WriteFd(fd, data.data() + off, data.size() - off);
    stats.write_calls.fetch_add(1, std::memory_order_relaxed);
    if (r.Fatal()) return SpinWriteResult::kPeerClosed;
    off += static_cast<size_t>(r.n);
  }
  stats.responses.fetch_add(1, std::memory_order_relaxed);
  return SpinWriteResult::kOk;
}

}  // namespace hynet
