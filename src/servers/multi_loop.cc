#include "servers/multi_loop.h"

#include "common/logging.h"
#include "common/thread_util.h"
#include "proto/http_codec.h"

namespace hynet {

LoopGroupServer::LoopGroupServer(ServerConfig config, Handler handler)
    : Server(std::move(config), std::move(handler)) {}

LoopGroupServer::~LoopGroupServer() {
  // Subclasses call Stop() in their destructors too; idempotent.
  Stop();
}

void LoopGroupServer::Start() {
  const int n = std::max(1, config_.event_loops);
  loops_.reserve(static_cast<size_t>(n));
  conns_.resize(static_cast<size_t>(n));
  loop_tids_ = std::vector<std::atomic<int>>(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    loops_.push_back(std::make_unique<EventLoop>());
  }

  boss_loop_ = std::make_unique<EventLoop>();
  acceptor_ = std::make_unique<Acceptor>(
      *boss_loop_, InetAddr::Loopback(config_.port),
      [this](Socket s, const InetAddr& peer) {
        OnNewConnection(std::move(s), peer);
      });
  port_ = acceptor_->Port();
  acceptor_->Listen();

  started_.store(true, std::memory_order_release);
  for (int i = 0; i < n; ++i) {
    loop_threads_.emplace_back([this, i] {
      SetCurrentThreadName("loop-" + std::to_string(i));
      loop_tids_[static_cast<size_t>(i)].store(CurrentTid(),
                                               std::memory_order_release);
      loops_[static_cast<size_t>(i)]->Run();
      conns_[static_cast<size_t>(i)].clear();
    });
  }
  boss_thread_ = std::thread([this] {
    SetCurrentThreadName("boss");
    boss_tid_.store(CurrentTid(), std::memory_order_release);
    boss_loop_->Run();
  });

  while (boss_tid_.load(std::memory_order_acquire) == 0) {
    std::this_thread::yield();
  }
  for (auto& tid : loop_tids_) {
    while (tid.load(std::memory_order_acquire) == 0) {
      std::this_thread::yield();
    }
  }
}

void LoopGroupServer::Stop() {
  if (!started_.exchange(false)) return;
  boss_loop_->Stop();
  if (boss_thread_.joinable()) boss_thread_.join();
  for (auto& loop : loops_) loop->Stop();
  for (auto& t : loop_threads_) {
    if (t.joinable()) t.join();
  }
  loop_threads_.clear();
  acceptor_.reset();
  boss_loop_.reset();
  loops_.clear();
  conns_.clear();
}

std::vector<int> LoopGroupServer::ThreadIds() const {
  std::vector<int> tids;
  const int boss = boss_tid_.load(std::memory_order_acquire);
  if (boss) tids.push_back(boss);
  for (const auto& tid : loop_tids_) {
    const int t = tid.load(std::memory_order_acquire);
    if (t) tids.push_back(t);
  }
  return tids;
}

ServerCounters LoopGroupServer::Snapshot() const {
  ServerCounters c;
  c.connections_accepted = accepted_.load(std::memory_order_relaxed);
  c.connections_closed = closed_.load(std::memory_order_relaxed);
  c.requests_handled = requests_.load(std::memory_order_relaxed);
  c.responses_sent = write_stats_.responses.load(std::memory_order_relaxed);
  c.write_calls = write_stats_.write_calls.load(std::memory_order_relaxed);
  c.zero_writes = write_stats_.zero_writes.load(std::memory_order_relaxed);
  c.spin_capped_flushes =
      write_stats_.spin_capped.load(std::memory_order_relaxed);
  c.light_path_responses = light_responses_.load(std::memory_order_relaxed);
  c.heavy_path_responses = heavy_responses_.load(std::memory_order_relaxed);
  c.reclassifications = reclassifications_.load(std::memory_order_relaxed);
  return c;
}

void LoopGroupServer::OnNewConnection(Socket socket, const InetAddr&) {
  socket.SetNonBlocking(true);
  ConfigureAcceptedFd(socket.fd());
  accepted_.fetch_add(1, std::memory_order_relaxed);

  // Round-robin assignment to a worker loop (Netty's childGroup.next()).
  const size_t loop_index = next_loop_;
  next_loop_ = (next_loop_ + 1) % loops_.size();

  auto lc = std::make_shared<LoopConn>(socket.TakeFd(),
                                       config_.write_spin_cap, loop_index);
  EventLoop& loop = *loops_[loop_index];
  loop.RunInLoop([this, loop_index, lc] {
    const int fd = lc->conn.fd.get();
    conns_[loop_index][fd] = lc;
    OnConnectionEstablished(*lc);
    loops_[loop_index]->RegisterFd(fd, EPOLLIN,
                                   [this, loop_index, fd](uint32_t events) {
                                     OnLoopEvent(loop_index, fd, events);
                                   });
  });
}

void LoopGroupServer::OnLoopEvent(size_t loop_index, int fd, uint32_t events) {
  auto& map = conns_[loop_index];
  auto it = map.find(fd);
  if (it == map.end()) return;
  LoopConn& lc = *it->second;
  if (lc.conn.closed) return;

  if (events & (EPOLLHUP | EPOLLERR)) {
    CloseConn(lc);
    return;
  }

  if (events & EPOLLOUT) {
    TryFlush(lc);
    if (lc.conn.closed) return;
  }

  if (events & EPOLLIN) {
    char buf[16 * 1024];
    while (true) {
      const IoResult r = ReadFd(fd, buf, sizeof(buf));
      if (r.WouldBlock()) break;
      if (r.Eof() || r.Fatal()) {
        CloseConn(lc);
        return;
      }
      lc.conn.in.Append(buf, static_cast<size_t>(r.n));
      if (static_cast<size_t>(r.n) < sizeof(buf)) break;
    }
    OnBytes(lc);
  }
}

void LoopGroupServer::EnqueueAndFlush(LoopConn& lc, std::string bytes) {
  if (lc.conn.closed) return;
  lc.conn.out.Add(std::move(bytes));
  TryFlush(lc);
}

void LoopGroupServer::TryFlush(LoopConn& lc) {
  if (lc.conn.closed) return;
  const int fd = lc.conn.fd.get();
  FlushResult result;
  {
    ScopedPhase phase(phase_profiler_, Phase::kWrite);
    result = lc.conn.out.Flush(fd, write_stats_);
  }
  switch (result) {
    case FlushResult::kDone:
      UpdateWriteInterest(lc);
      if (lc.conn.close_after_write) CloseConn(lc);
      return;
    case FlushResult::kWouldBlock:
      // Kernel buffer full: wait for writability instead of spinning.
      lc.conn.want_writable = true;
      UpdateWriteInterest(lc);
      return;
    case FlushResult::kSpinCapped: {
      // Netty's writeSpin escape: yield to other connections, then resume
      // this flush from a queued task.
      if (!lc.conn.flush_rescheduled) {
        lc.conn.flush_rescheduled = true;
        const size_t loop_index = lc.loop_index;
        LoopOf(lc).QueueTask([this, loop_index, fd] {
          auto& map = conns_[loop_index];
          auto it = map.find(fd);
          if (it == map.end()) return;
          it->second->conn.flush_rescheduled = false;
          TryFlush(*it->second);
        });
      }
      return;
    }
    case FlushResult::kError:
      CloseConn(lc);
      return;
  }
}

void LoopGroupServer::UpdateWriteInterest(LoopConn& lc) {
  const bool want = !lc.conn.out.Empty() && lc.conn.want_writable;
  const uint32_t events = EPOLLIN | (want ? static_cast<uint32_t>(EPOLLOUT) : 0u);
  LoopOf(lc).ModifyFd(lc.conn.fd.get(), events);
  if (lc.conn.out.Empty()) lc.conn.want_writable = false;
}

void LoopGroupServer::CloseConn(LoopConn& lc) {
  if (lc.conn.closed) return;
  lc.conn.closed = true;
  const int fd = lc.conn.fd.get();
  const size_t loop_index = lc.loop_index;
  EventLoop& loop = LoopOf(lc);
  loop.UnregisterFd(fd);
  closed_.fetch_add(1, std::memory_order_relaxed);
  // Defer destruction to a queued task so every reference to this LoopConn
  // on the current call stack stays valid (CloseConn can be reached from
  // deep inside flush paths).
  loop.QueueTask([this, loop_index, fd] { conns_[loop_index].erase(fd); });
}

namespace {

// Decodes HTTP requests and encodes HTTP responses (Netty's HttpServerCodec
// analogue). Inbound: bytes → HttpRequest messages. Outbound: HttpResponse
// messages → wire bytes.
class HttpServerCodec final : public ChannelHandler {
 public:
  explicit HttpServerCodec(PhaseProfiler& profiler) : profiler_(profiler) {}

  void OnData(ChannelContext& ctx, ByteBuffer& in) override {
    while (true) {
      ParseStatus st;
      {
        ScopedPhase phase(profiler_, Phase::kParse);
        st = parser_.Parse(in);
      }
      if (st == ParseStatus::kNeedMore) return;
      if (st == ParseStatus::kError) {
        ctx.Close();
        return;
      }
      // Box the decoded request like Netty boxes HttpObjects.
      auto req = std::make_shared<HttpRequest>(parser_.request());
      ctx.FireMessage(std::any(std::move(req)));
    }
  }

  void OnWrite(ChannelContext& ctx, std::any msg) override {
    if (auto* resp = std::any_cast<HttpResponse>(&msg)) {
      ByteBuffer out;
      {
        ScopedPhase phase(profiler_, Phase::kSerialize);
        SerializeResponse(*resp, out);
      }
      ctx.Write(std::any(std::string(out.View())));
      return;
    }
    ctx.Write(std::move(msg));  // already encoded
  }

 private:
  PhaseProfiler& profiler_;
  HttpRequestParser parser_;
};

// Terminal inbound handler: runs the application Handler and writes the
// response back down the pipeline.
class ServerAppHandler final : public ChannelHandler {
 public:
  ServerAppHandler(const Handler& handler, std::atomic<uint64_t>& requests,
                   PhaseProfiler& profiler)
      : handler_(handler), requests_(requests), profiler_(profiler) {}

  void OnMessage(ChannelContext& ctx, std::any msg) override {
    auto req = std::any_cast<std::shared_ptr<HttpRequest>>(std::move(msg));
    HttpResponse resp;
    {
      ScopedPhase phase(profiler_, Phase::kHandler);
      handler_(*req, resp);
    }
    resp.keep_alive = req->keep_alive;
    requests_.fetch_add(1, std::memory_order_relaxed);
    const bool close = !resp.keep_alive;
    ctx.Write(std::any(std::move(resp)));
    if (close) ctx.Close();
  }

 private:
  const Handler& handler_;
  std::atomic<uint64_t>& requests_;
  PhaseProfiler& profiler_;
};

}  // namespace

MultiLoopServer::MultiLoopServer(ServerConfig config, Handler handler)
    : LoopGroupServer(std::move(config), std::move(handler)) {}

void MultiLoopServer::OnConnectionEstablished(LoopConn& lc) {
  lc.pipeline = std::make_unique<ChannelPipeline>();
  lc.pipeline->AddLast(std::make_shared<HttpServerCodec>(phase_profiler_));
  lc.pipeline->AddLast(std::make_shared<ServerAppHandler>(
      handler_, requests_, phase_profiler_));
  LoopConn* raw = &lc;
  lc.pipeline->SetOutboundSink([this, raw](std::string bytes) {
    EnqueueAndFlush(*raw, std::move(bytes));
  });
  lc.pipeline->SetCloseRequest([raw] {
    // Deferred close: mark and let the flush path close once drained.
    raw->conn.close_after_write = true;
  });
  lc.pipeline->FireActive();
}

void MultiLoopServer::OnBytes(LoopConn& lc) {
  lc.pipeline->FireData(lc.conn.in);
  // If the app requested close and everything is already flushed, close
  // now (otherwise TryFlush's kDone path will).
  if (lc.conn.close_after_write && lc.conn.out.Empty()) CloseConn(lc);
}

}  // namespace hynet
