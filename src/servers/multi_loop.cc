#include "servers/multi_loop.h"

#include "common/logging.h"
#include "common/thread_util.h"
#include "proto/http_codec.h"

namespace hynet {

LoopGroupServer::LoopGroupServer(ServerConfig config, Handler handler)
    : Server(std::move(config), std::move(handler)) {}

LoopGroupServer::~LoopGroupServer() {
  // Subclasses call Stop() in their destructors too; idempotent.
  Stop();
}

void LoopGroupServer::Start() {
  deadlines_ = LifecycleDeadlines::FromMillis(config_.idle_timeout_ms,
                                              config_.header_timeout_ms,
                                              config_.write_stall_timeout_ms);
  cold_idle_ = std::chrono::milliseconds(config_.cold_idle_ms);
  const int n = std::max(1, config_.event_loops);
  loops_.reserve(static_cast<size_t>(n));
  conns_.resize(static_cast<size_t>(n));
  loop_tids_ = std::vector<std::atomic<int>>(static_cast<size_t>(n));
  buffer_pools_.clear();
  conn_tables_.clear();
  const TimerWheelSpec wheel = WheelSpecFor(config_);
  for (int i = 0; i < n; ++i) {
    loops_.push_back(std::make_unique<EventLoop>(
        ResolveIoBackendKind(config_.io_backend), wheel));
    buffer_pools_.push_back(std::make_unique<BufferPool>());
    // Bound here, after any AdoptMetricsRegistry, so N-copy children
    // account pool traffic into the shared parent registry.
    buffer_pools_.back()->BindMetrics(metrics());
    conn_tables_.push_back(std::make_unique<ConnTable>(sizeof(LoopConn)));
    conn_tables_.back()->BindMetrics(metrics());
  }
  completion_mode_ = loops_.front()->CompletionModeAvailable() &&
                     config_.uring_mode != "readiness";
  if (completion_mode_) {
    for (int i = 0; i < n; ++i) {
      const size_t li = static_cast<size_t>(i);
      buffer_sources_.push_back(
          std::make_unique<PoolBufferSource>(*buffer_pools_[li]));
      loops_[li]->SetReadBufferSource(buffer_sources_.back().get());
      pumps_.push_back(std::make_unique<CompletionPump>(
          *loops_[li], write_stats_, writes_per_response_, nullptr,
          CompletionPump::Hooks{
              [this, li](int fd) { return OnPumpReadable(li, fd); },
              [this, li](int fd) { OnPumpError(li, fd); },
              [this, li](int fd) { OnPumpDrained(li, fd); },
          },
          CompletionPump::Options{}));
    }
  }

  boss_loop_ =
      std::make_unique<EventLoop>(ResolveIoBackendKind(config_.io_backend));
  acceptor_ = std::make_unique<Acceptor>(
      *boss_loop_, InetAddr::Loopback(config_.port),
      [this](Socket s, const InetAddr& peer) {
        OnNewConnection(std::move(s), peer);
      },
      config_.reuse_port);
  port_ = acceptor_->Port();
  acceptor_->Listen();

  started_.store(true, std::memory_order_release);
  for (int i = 0; i < n; ++i) {
    loop_threads_.emplace_back([this, i] {
      SetCurrentThreadName("loop-" + std::to_string(i));
      // Cpu layout: worker loops on offset+0..offset+N-1, boss on offset+N.
      if (config_.pin_cpus) PinThread(config_.pin_cpu_offset + i);
      loop_tids_[static_cast<size_t>(i)].store(CurrentTid(),
                                               std::memory_order_release);
      loops_[static_cast<size_t>(i)]->Run();
      conns_[static_cast<size_t>(i)].clear();
    });
  }
  boss_thread_ = std::thread([this] {
    SetCurrentThreadName("boss");
    if (config_.pin_cpus) PinThread(config_.pin_cpu_offset + config_.event_loops);
    boss_tid_.store(CurrentTid(), std::memory_order_release);
    boss_loop_->Run();
  });

  while (boss_tid_.load(std::memory_order_acquire) == 0) {
    std::this_thread::yield();
  }
  for (auto& tid : loop_tids_) {
    while (tid.load(std::memory_order_acquire) == 0) {
      std::this_thread::yield();
    }
  }
  if (deadlines_.Any() || cold_idle_ > Duration::zero()) {
    for (size_t i = 0; i < loops_.size(); ++i) ScheduleSweep(i);
  }
  StartAdminPlane();
}

DrainResult LoopGroupServer::Shutdown(Duration drain_deadline) {
  if (!started_.load(std::memory_order_acquire)) return {};
  const TimePoint deadline = Now() + drain_deadline;
  const uint64_t closed_before = closed_.load(std::memory_order_relaxed);
  draining_.store(true, std::memory_order_release);

  boss_loop_->RunInLoop([this] {
    if (acceptor_) acceptor_->Pause();
  });
  for (size_t i = 0; i < loops_.size(); ++i) {
    loops_[i]->RunInLoop([this, i] {
      std::vector<std::shared_ptr<LoopConn>> snapshot;
      snapshot.reserve(conns_[i].size());
      for (const auto& [fd, lc] : conns_[i]) snapshot.push_back(lc);
      for (const auto& lc : snapshot) {
        if (lc->conn.closed) continue;
        const bool idle = lc->conn.in.ReadableBytes() == 0 &&
                          !lc->conn.parser.InProgress() &&
                          OutboundIdle(*lc) && !HasPendingWork(*lc);
        if (idle) {
          CloseConn(*lc);
        } else {
          // In-flight: the response (sent with Connection: close while
          // draining) or the pending flush will close it.
          lc->conn.close_after_write = true;
        }
      }
    });
  }

  while (Now() < deadline && Live() > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  std::atomic<uint64_t> forced{0};
  std::atomic<size_t> loops_done{0};
  for (size_t i = 0; i < loops_.size(); ++i) {
    loops_[i]->RunInLoop([this, i, &forced, &loops_done] {
      std::vector<std::shared_ptr<LoopConn>> snapshot;
      for (const auto& [fd, lc] : conns_[i]) snapshot.push_back(lc);
      uint64_t n = 0;
      for (const auto& lc : snapshot) {
        if (lc->conn.closed) continue;
        CloseConn(*lc);
        ++n;
      }
      forced.fetch_add(n, std::memory_order_relaxed);
      loops_done.fetch_add(1, std::memory_order_acq_rel);
    });
  }
  while (loops_done.load(std::memory_order_acquire) < loops_.size()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  DrainResult result;
  result.forced = forced.load(std::memory_order_relaxed);
  result.drained =
      closed_.load(std::memory_order_relaxed) - closed_before - result.forced;
  lifecycle_.forced_closes.fetch_add(result.forced, std::memory_order_relaxed);
  lifecycle_.drained_connections.fetch_add(result.drained,
                                           std::memory_order_relaxed);
  Stop();
  return result;
}

void LoopGroupServer::Stop() {
  StopAdminPlane();
  if (!started_.exchange(false)) return;
  boss_loop_->Stop();
  if (boss_thread_.joinable()) boss_thread_.join();
  for (auto& loop : loops_) loop->Stop();
  for (auto& t : loop_threads_) {
    if (t.joinable()) t.join();
  }
  loop_threads_.clear();
  acceptor_.reset();
  boss_loop_.reset();
  pumps_.clear();  // reference loops_
  loops_.clear();  // engines return read buffers through buffer_sources_
  buffer_sources_.clear();
  conns_.clear();
}

std::vector<int> LoopGroupServer::ThreadIds() const {
  std::vector<int> tids;
  const int boss = boss_tid_.load(std::memory_order_acquire);
  if (boss) tids.push_back(boss);
  for (const auto& tid : loop_tids_) {
    const int t = tid.load(std::memory_order_acquire);
    if (t) tids.push_back(t);
  }
  return tids;
}

ServerCounters LoopGroupServer::Snapshot() const {
  ServerCounters c;
  c.connections_accepted = accepted_.load(std::memory_order_relaxed);
  c.connections_closed = closed_.load(std::memory_order_relaxed);
  c.requests_handled = requests_.load(std::memory_order_relaxed);
  c.responses_sent = write_stats_.responses.load(std::memory_order_relaxed);
  c.write_calls = write_stats_.write_calls.load(std::memory_order_relaxed);
  c.zero_writes = write_stats_.zero_writes.load(std::memory_order_relaxed);
  c.writev_calls = write_stats_.writev_calls.load(std::memory_order_relaxed);
  c.iov_segments = write_stats_.iov_segments.load(std::memory_order_relaxed);
  c.spin_capped_flushes =
      write_stats_.spin_capped.load(std::memory_order_relaxed);
  c.light_path_responses = light_responses_.load(std::memory_order_relaxed);
  c.heavy_path_responses = heavy_responses_.load(std::memory_order_relaxed);
  c.reclassifications = reclassifications_.load(std::memory_order_relaxed);
  c.read_calls = write_stats_.read_calls.load(std::memory_order_relaxed);
  if (boss_loop_) {
    c.wakeup_writes_issued += boss_loop_->WakeupWritesIssued();
    c.wakeup_writes_elided += boss_loop_->WakeupWritesElided();
    AccumulateLoopIoStats(c, *boss_loop_);
  }
  for (const auto& loop : loops_) {
    if (!loop) continue;
    c.wakeup_writes_issued += loop->WakeupWritesIssued();
    c.wakeup_writes_elided += loop->WakeupWritesElided();
    AccumulateLoopIoStats(c, *loop);
  }
  ExportLifecycle(c);
  return c;
}

uint64_t LoopGroupServer::TimerWheelEntries() const {
  uint64_t total = boss_loop_ ? boss_loop_->CoarseTimerCount() : 0;
  for (const auto& loop : loops_) {
    if (loop) total += loop->CoarseTimerCount();
  }
  return total;
}

void LoopGroupServer::OnNewConnection(Socket socket, const InetAddr&) {
  if (config_.max_connections > 0 &&
      Live() >= static_cast<uint64_t>(config_.max_connections)) {
    ShedWith503(socket.fd());
    return;
  }
  socket.SetNonBlocking(true);
  ConfigureAcceptedFd(socket.fd());
  accepted_.fetch_add(1, std::memory_order_relaxed);

  // Round-robin assignment to a worker loop (Netty's childGroup.next()).
  const size_t loop_index = next_loop_;
  next_loop_ = (next_loop_ + 1) % loops_.size();

  auto lc = std::make_shared<LoopConn>(socket.TakeFd(),
                                       config_.write_spin_cap, loop_index);
  lc->conn.lifecycle.last_activity = Now();
  lc->conn.parser.SetLimits(config_.max_request_head_bytes,
                            config_.max_request_body_bytes);
  EventLoop& loop = *loops_[loop_index];
  loop.RunInLoop([this, loop_index, lc] {
    const int fd = lc->conn.fd.get();
    // Recycle a read buffer from this loop's pool (loop thread only).
    lc->conn.in = buffer_pools_[loop_index]->Acquire();
    conn_tables_[loop_index]->OnOpen(lc->conn);
    conns_[loop_index][fd] = lc;
    OnConnectionEstablished(*lc);
    if (completion_mode_) {
      pumps_[loop_index]->Watch(fd, &lc->conn);
    } else {
      loops_[loop_index]->RegisterFd(fd, EPOLLIN | EPOLLRDHUP,
                                     [this, loop_index, fd](uint32_t events) {
                                       OnLoopEvent(loop_index, fd, events);
                                     });
    }
  });
  if (config_.max_connections > 0 && !config_.shed_with_503 &&
      !accept_paused_.load(std::memory_order_relaxed) &&
      Live() >= static_cast<uint64_t>(config_.max_connections)) {
    acceptor_->Pause();
    accept_paused_.store(true, std::memory_order_relaxed);
    lifecycle_.accept_pauses.fetch_add(1, std::memory_order_relaxed);
  }
}

void LoopGroupServer::OnLoopEvent(size_t loop_index, int fd, uint32_t events) {
  auto& map = conns_[loop_index];
  auto it = map.find(fd);
  if (it == map.end()) return;
  // Keep the connection alive across this frame: CloseConn defers the
  // map erase, but a shared_ptr copy also guards against future changes.
  std::shared_ptr<LoopConn> guard = it->second;
  LoopConn& lc = *guard;
  if (lc.conn.closed) return;

  if (events & (EPOLLHUP | EPOLLERR)) {
    CloseConn(lc);
    return;
  }
  if (events & EPOLLRDHUP) lc.conn.lifecycle.peer_half_closed = true;

  if (events & EPOLLOUT) {
    TryFlush(lc);
    if (lc.conn.closed) return;
  }

  if (events & EPOLLIN) {
    if (lc.conn.cold) {
      // Idle-cold revival: re-acquire a pooled read buffer before draining.
      lc.conn.in = buffer_pools_[loop_index]->Acquire();
      lc.conn.cold = false;
      lifecycle_.cold_revivals.fetch_add(1, std::memory_order_relaxed);
    }
    // Drain reads fully even on EOF: requests the peer pipelined before
    // half-closing are still parsed and answered below.
    char buf[16 * 1024];
    while (true) {
      write_stats_.read_calls.fetch_add(1, std::memory_order_relaxed);
      const IoResult r = ReadFd(fd, buf, sizeof(buf));
      if (r.WouldBlock()) break;
      if (r.Fatal()) {
        CloseConn(lc);
        return;
      }
      if (r.Eof()) {
        lc.conn.lifecycle.peer_half_closed = true;
        break;
      }
      lc.conn.in.Append(buf, static_cast<size_t>(r.n));
      lc.conn.lifecycle.last_activity = Now();
      if (static_cast<size_t>(r.n) < sizeof(buf)) break;
    }
    if (!ProcessInbound(lc, true)) return;
  } else {
    ProcessInbound(lc, false);
  }
}

// The post-read flow shared by both event planes: hand the buffered bytes
// to the subclass (when any were read), track the header-read deadline,
// apply the half-close policy. Returns false when the connection closed.
bool LoopGroupServer::ProcessInbound(LoopConn& lc, bool dispatch_bytes) {
  if (dispatch_bytes) {
    OnBytes(lc);
    if (lc.conn.closed) return false;
  }

  // Header-read deadline bookkeeping: undecoded bytes (or a mid-body
  // parse) after OnBytes mean a request is pending completion.
  if (lc.conn.in.ReadableBytes() > 0 || lc.conn.parser.InProgress()) {
    if (!lc.conn.lifecycle.head_pending) {
      lc.conn.lifecycle.head_pending = true;
      lc.conn.lifecycle.head_start = Now();
    }
  } else {
    lc.conn.lifecycle.head_pending = false;
  }

  if (lc.conn.lifecycle.peer_half_closed) {
    // Half-closed peer: nothing more will arrive. Close now if nothing is
    // owed — neither buffered/queued bytes nor in-flight subclass work
    // (RPC requests still executing on the worker pool) — otherwise let
    // the flush / completion paths finish the pending responses.
    if (OutboundIdle(lc) && !HasPendingWork(lc)) {
      lifecycle_.half_close_reclaims.fetch_add(1, std::memory_order_relaxed);
      CloseConn(lc);
      return false;
    }
    lc.conn.close_after_write = true;
  }
  if (!lc.conn.closed) conn_tables_[lc.loop_index]->Update(lc.conn);
  return !lc.conn.closed;
}

bool LoopGroupServer::OnPumpReadable(size_t loop_index, int fd) {
  auto& map = conns_[loop_index];
  auto it = map.find(fd);
  if (it == map.end()) return false;
  std::shared_ptr<LoopConn> guard = it->second;
  if (guard->conn.closed) return false;
  if (guard->conn.cold) {
    // Completion-mode revival: the pump already appended the CQE's bytes
    // into `in`, growing it organically — just clear the flag.
    guard->conn.cold = false;
    lifecycle_.cold_revivals.fetch_add(1, std::memory_order_relaxed);
  }
  return ProcessInbound(*guard, true);
}

void LoopGroupServer::OnPumpError(size_t loop_index, int fd) {
  auto& map = conns_[loop_index];
  auto it = map.find(fd);
  if (it == map.end()) return;
  std::shared_ptr<LoopConn> guard = it->second;
  if (!guard->conn.closed) CloseConn(*guard);
}

void LoopGroupServer::OnPumpDrained(size_t loop_index, int fd) {
  auto& map = conns_[loop_index];
  auto it = map.find(fd);
  if (it == map.end()) return;
  std::shared_ptr<LoopConn> guard = it->second;
  LoopConn& lc = *guard;
  if (lc.conn.closed) return;
  if (lc.conn.close_after_write && !HasPendingWork(lc)) {
    CloseConn(lc);
    return;
  }
  if (lc.conn.lifecycle.peer_half_closed && !HasPendingWork(lc) &&
      lc.conn.in.ReadableBytes() == 0 && !lc.conn.parser.InProgress()) {
    lifecycle_.half_close_reclaims.fetch_add(1, std::memory_order_relaxed);
    CloseConn(lc);
    return;
  }
  // A backpressured reader resumes once the queue drains; the pump skipped
  // its re-arms while paused, so arm one now.
  if (lc.conn.lifecycle.reading_paused) {
    MaybeResumeReading(lc);
    if (!lc.conn.lifecycle.reading_paused) {
      pumps_[loop_index]->ArmRead(fd, lc.conn);
    }
  }
}

void LoopGroupServer::EnqueueAndFlush(LoopConn& lc, Payload payload,
                                      size_t offset) {
  Enqueue(lc, std::move(payload), offset);
  FlushEnqueued(lc);
}

void LoopGroupServer::Enqueue(LoopConn& lc, Payload payload, size_t offset) {
  if (lc.conn.closed) return;
  if (completion_mode_) {
    // `offset` carries bytes a subclass already wrote directly (the hybrid
    // light path's partial spin-write handoff); it can only be non-zero
    // when the queue is empty — nothing may be written ahead of queued
    // responses — so it maps onto the front-of-queue offset.
    if (offset > 0 && CompletionPump::Idle(lc.conn)) {
      lc.conn.uring_q_offset = offset;
    }
    // start_ns 0: the subclasses attribute request latency themselves
    // (pipeline handler / RPC completion), matching the readiness path.
    pumps_[lc.loop_index]->Enqueue(lc.conn, std::move(payload), 0);
    return;
  }
  lc.conn.out.Add(std::move(payload), offset);
  if (!lc.conn.lifecycle.write_stalled) {
    lc.conn.lifecycle.write_stalled = true;
    lc.conn.lifecycle.stall_start = Now();
  }
}

void LoopGroupServer::FlushEnqueued(LoopConn& lc) {
  if (lc.conn.closed) return;
  TryFlush(lc);
  if (!lc.conn.closed) MaybePauseReading(lc);
}

void LoopGroupServer::TryFlush(LoopConn& lc) {
  if (lc.conn.closed) return;
  const int fd = lc.conn.fd.get();
  if (completion_mode_) {
    // Queued SENDMSG ops: submission rides the loop's next enter and the
    // pump resumes/attributes at each write CQE; nothing to spin here.
    if (!pumps_[lc.loop_index]->Flush(fd, lc.conn)) return;
    // Mirror the readiness path's kDone close: an already-empty queue
    // produces no write CQE, so on_drained would never fire.
    if (CompletionPump::Idle(lc.conn) && lc.conn.close_after_write &&
        !HasPendingWork(lc)) {
      CloseConn(lc);
    }
    return;
  }
  const size_t before = lc.conn.out.PendingBytes();
  FlushResult result;
  {
    ScopedPhase phase(phase_profiler_, Phase::kWrite);
    result = lc.conn.out.Flush(fd, write_stats_, writes_per_response_);
  }
  // Any forward progress restarts the write-stall clock.
  const size_t after = lc.conn.out.PendingBytes();
  if (after < before) {
    lc.conn.lifecycle.last_activity = Now();
    lc.conn.lifecycle.stall_start = Now();
  }
  if (after == 0) {
    lc.conn.lifecycle.write_stalled = false;
  } else if (!lc.conn.lifecycle.write_stalled) {
    lc.conn.lifecycle.write_stalled = true;
    lc.conn.lifecycle.stall_start = Now();
  }
  MaybeResumeReading(lc);
  switch (result) {
    case FlushResult::kDone:
      UpdateWriteInterest(lc);
      // close_after_write waits for in-flight subclass work as well as the
      // buffer: an RPC response still executing on the worker pool will
      // re-enter the flush path (and re-check) when it lands.
      if (lc.conn.close_after_write && !HasPendingWork(lc)) CloseConn(lc);
      return;
    case FlushResult::kWouldBlock:
      // Kernel buffer full: wait for writability instead of spinning.
      lc.conn.want_writable = true;
      UpdateWriteInterest(lc);
      return;
    case FlushResult::kSpinCapped: {
      // Netty's writeSpin escape: yield to other connections, then resume
      // this flush from a queued task.
      if (!lc.conn.flush_rescheduled) {
        lc.conn.flush_rescheduled = true;
        const size_t loop_index = lc.loop_index;
        LoopOf(lc).QueueTask([this, loop_index, fd] {
          auto& map = conns_[loop_index];
          auto it = map.find(fd);
          if (it == map.end()) return;
          it->second->conn.flush_rescheduled = false;
          TryFlush(*it->second);
        });
      }
      return;
    }
    case FlushResult::kError:
      CloseConn(lc);
      return;
  }
}

void LoopGroupServer::UpdateWriteInterest(LoopConn& lc) {
  if (completion_mode_) return;  // no epoll interest mask to maintain
  const bool want = !lc.conn.out.Empty() && lc.conn.want_writable;
  uint32_t events = EPOLLRDHUP | (want ? static_cast<uint32_t>(EPOLLOUT) : 0u);
  if (!lc.conn.lifecycle.reading_paused) events |= EPOLLIN;
  LoopOf(lc).ModifyFd(lc.conn.fd.get(), events);
  if (lc.conn.out.Empty()) lc.conn.want_writable = false;
}

void LoopGroupServer::MaybePauseReading(LoopConn& lc) {
  const size_t high = config_.outbound_high_water_bytes;
  if (high == 0 || lc.conn.closed || lc.conn.lifecycle.reading_paused) return;
  const size_t pending =
      completion_mode_ ? lc.conn.uring_q_bytes : lc.conn.out.PendingBytes();
  if (pending > high) {
    // Completion mode pauses by NOT re-arming the read SQE (the pump
    // checks reading_paused after each read CQE); OnPumpDrained re-arms.
    lc.conn.lifecycle.reading_paused = true;
    lifecycle_.backpressure_pauses.fetch_add(1, std::memory_order_relaxed);
    UpdateWriteInterest(lc);
  }
}

void LoopGroupServer::MaybeResumeReading(LoopConn& lc) {
  if (!lc.conn.lifecycle.reading_paused || lc.conn.closed) return;
  const size_t high = config_.outbound_high_water_bytes;
  const size_t low = config_.outbound_low_water_bytes > 0
                         ? config_.outbound_low_water_bytes
                         : high / 2;
  const size_t pending =
      completion_mode_ ? lc.conn.uring_q_bytes : lc.conn.out.PendingBytes();
  if (pending <= low) {
    lc.conn.lifecycle.reading_paused = false;
    lifecycle_.backpressure_resumes.fetch_add(1, std::memory_order_relaxed);
    UpdateWriteInterest(lc);
  }
}

std::shared_ptr<LoopGroupServer::LoopConn> LoopGroupServer::ConnHandle(
    const LoopConn& lc) {
  auto& map = conns_[lc.loop_index];
  auto it = map.find(lc.conn.fd.get());
  return it == map.end() ? nullptr : it->second;
}

void LoopGroupServer::CloseConn(LoopConn& lc) {
  if (lc.conn.closed) return;
  lc.conn.closed = true;
  const int fd = lc.conn.fd.get();
  const size_t loop_index = lc.loop_index;
  EventLoop& loop = LoopOf(lc);
  if (completion_mode_) {
    pumps_[loop_index]->Unwatch(fd);  // cancels in-flight SQEs for the fd
  } else {
    loop.UnregisterFd(fd);
  }
  conn_tables_[loop_index]->OnClose(lc.conn);
  // Return the read buffer to this loop's pool for the next accept. A cold
  // connection's buffer already went back at reclamation time.
  if (!lc.conn.cold) {
    buffer_pools_[loop_index]->Release(std::move(lc.conn.in));
  }
  closed_.fetch_add(1, std::memory_order_relaxed);
  // Defer destruction to a queued task so every reference to this LoopConn
  // on the current call stack stays valid (CloseConn can be reached from
  // deep inside flush paths).
  loop.QueueTask([this, loop_index, fd] { conns_[loop_index].erase(fd); });
  if (accept_paused_.load(std::memory_order_relaxed) &&
      !draining_.load(std::memory_order_relaxed) &&
      Live() < static_cast<uint64_t>(config_.max_connections)) {
    // Resume accepting on the boss thread; re-check there since more
    // closes may race this one.
    boss_loop_->RunInLoop([this] {
      if (accept_paused_.load(std::memory_order_relaxed) && acceptor_ &&
          !draining_.load(std::memory_order_relaxed) &&
          Live() < static_cast<uint64_t>(config_.max_connections)) {
        acceptor_->Resume();
        accept_paused_.store(false, std::memory_order_relaxed);
      }
    });
  }
}

void LoopGroupServer::ScheduleSweep(size_t loop_index) {
  loops_[loop_index]->RunAfter(
      SweepPeriod(deadlines_, cold_idle_), [this, loop_index] {
        SweepLoop(loop_index);
        if (started_.load(std::memory_order_acquire)) {
          ScheduleSweep(loop_index);
        }
      });
}

void LoopGroupServer::SweepLoop(size_t loop_index) {
  const TimePoint now = Now();
  std::vector<std::pair<std::shared_ptr<LoopConn>, EvictReason>> victims;
  for (const auto& [fd, lc] : conns_[loop_index]) {
    if (lc->conn.closed) continue;
    const EvictReason reason =
        CheckDeadlines(lc->conn.lifecycle, deadlines_, now);
    if (reason != EvictReason::kNone) {
      victims.emplace_back(lc, reason);
      continue;
    }
    Connection& conn = lc->conn;
    const bool idle =
        conn.in.ReadableBytes() == 0 && !conn.parser.InProgress();
    if (!idle) continue;
    if (cold_idle_ > Duration::zero() && !conn.cold &&
        now - conn.lifecycle.last_activity >= cold_idle_) {
      // Idle-cold reclamation: the read buffer goes back to the pool and
      // codec scratch is dropped; the next readable byte revives the
      // connection, which meanwhile holds ~O(100B) instead of ~O(4-16KB).
      buffer_pools_[loop_index]->Release(std::move(conn.in));
      conn.in = ByteBuffer(0);
      conn.parser.ShrinkScratch();
      conn.cold = true;
      lifecycle_.cold_reclaims.fetch_add(1, std::memory_order_relaxed);
    } else if (conn.in.Capacity() > ByteBuffer::kInitialCapacity) {
      conn.in.ShrinkToFit();
    }
    conn_tables_[loop_index]->Update(conn);
  }
  // Mass reclamation (or a burst of closes) can leave the free list far
  // larger than the warm working set; age out the stale tail.
  buffer_pools_[loop_index]->TrimIdle(std::chrono::seconds(5));
  for (const auto& [lc, reason] : victims) {
    switch (reason) {
      case EvictReason::kIdle:
        lifecycle_.idle_evictions.fetch_add(1, std::memory_order_relaxed);
        break;
      case EvictReason::kHeaderTimeout:
        lifecycle_.header_evictions.fetch_add(1, std::memory_order_relaxed);
        break;
      case EvictReason::kWriteStall:
        lifecycle_.write_stall_evictions.fetch_add(1,
                                                   std::memory_order_relaxed);
        break;
      case EvictReason::kNone:
        break;
    }
    CloseConn(*lc);
  }
}

namespace {

// Decodes HTTP requests and encodes HTTP responses (Netty's HttpServerCodec
// analogue). Inbound: bytes → HttpRequest messages. Outbound: HttpResponse
// messages → wire bytes.
class HttpServerCodec final : public ChannelHandler {
 public:
  HttpServerCodec(PhaseProfiler& profiler, LifecycleStats& lifecycle,
                  size_t max_head_bytes, size_t max_body_bytes)
      : profiler_(profiler), lifecycle_(lifecycle) {
    parser_.SetLimits(max_head_bytes, max_body_bytes);
  }

  void OnData(ChannelContext& ctx, ByteBuffer& in) override {
    while (true) {
      ParseStatus st;
      {
        ScopedPhase phase(profiler_, Phase::kParse);
        st = parser_.Parse(in);
      }
      if (st == ParseStatus::kNeedMore) return;
      if (st == ParseStatus::kError) {
        const ParseError err = parser_.error();
        if (err == ParseError::kHeadTooLarge ||
            err == ParseError::kBodyTooLarge) {
          lifecycle_.oversize_requests.fetch_add(1,
                                                 std::memory_order_relaxed);
          ctx.Write(std::any(SimpleErrorResponse(
              err == ParseError::kHeadTooLarge ? 431 : 413)));
        }
        ctx.Close();
        return;
      }
      // Box the decoded request like Netty boxes HttpObjects.
      auto req = std::make_shared<HttpRequest>(parser_.request());
      ctx.FireMessage(std::any(std::move(req)));
    }
  }

  void OnWrite(ChannelContext& ctx, std::any msg) override {
    if (auto* resp = std::any_cast<HttpResponse>(&msg)) {
      Payload payload;
      {
        ScopedPhase phase(profiler_, Phase::kSerialize);
        payload = SerializeResponsePayload(*resp);
      }
      ctx.Write(std::any(std::move(payload)));
      return;
    }
    ctx.Write(std::move(msg));  // already encoded
  }

 private:
  PhaseProfiler& profiler_;
  LifecycleStats& lifecycle_;
  HttpRequestParser parser_;
};

// Terminal inbound handler: runs the application Handler and writes the
// response back down the pipeline.
class ServerAppHandler final : public ChannelHandler {
 public:
  ServerAppHandler(const Handler& handler, std::atomic<uint64_t>& requests,
                   PhaseProfiler& profiler,
                   const std::atomic<bool>& draining,
                   HistogramMetric& latency)
      : handler_(handler),
        requests_(requests),
        profiler_(profiler),
        draining_(draining),
        latency_(latency) {}

  void OnMessage(ChannelContext& ctx, std::any msg) override {
    const int64_t start_ns = NowNanos();
    auto req = std::any_cast<std::shared_ptr<HttpRequest>>(std::move(msg));
    HttpResponse resp;
    {
      ScopedPhase phase(profiler_, Phase::kHandler);
      handler_(*req, resp);
    }
    resp.keep_alive =
        req->keep_alive && !draining_.load(std::memory_order_relaxed);
    requests_.fetch_add(1, std::memory_order_relaxed);
    const bool close = !resp.keep_alive;
    // Write travels synchronously down the pipeline into EnqueueAndFlush,
    // so the latency below covers serialize + the inline flush attempt.
    ctx.Write(std::any(std::move(resp)));
    latency_.Record(NowNanos() - start_ns);
    if (close) ctx.Close();
  }

 private:
  const Handler& handler_;
  std::atomic<uint64_t>& requests_;
  PhaseProfiler& profiler_;
  const std::atomic<bool>& draining_;
  HistogramMetric& latency_;
};

}  // namespace

MultiLoopServer::MultiLoopServer(ServerConfig config, Handler handler)
    : LoopGroupServer(std::move(config), std::move(handler)) {}

void MultiLoopServer::OnConnectionEstablished(LoopConn& lc) {
  lc.pipeline = std::make_unique<ChannelPipeline>();
  lc.pipeline->AddLast(std::make_shared<HttpServerCodec>(
      phase_profiler_, lifecycle_, config_.max_request_head_bytes,
      config_.max_request_body_bytes));
  lc.pipeline->AddLast(std::make_shared<ServerAppHandler>(
      handler_, requests_, phase_profiler_, draining_, *request_latency_ns_));
  LoopConn* raw = &lc;
  lc.pipeline->SetOutboundSink([this, raw](Payload payload) {
    EnqueueAndFlush(*raw, std::move(payload));
  });
  lc.pipeline->SetCloseRequest([raw] {
    // Deferred close: mark and let the flush path close once drained.
    raw->conn.close_after_write = true;
  });
  lc.pipeline->FireActive();
}

void MultiLoopServer::OnBytes(LoopConn& lc) {
  lc.pipeline->FireData(lc.conn.in);
  // If the app requested close and everything is already flushed, close
  // now (otherwise the flush/drain paths will).
  if (lc.conn.close_after_write && OutboundIdle(lc)) CloseConn(lc);
}

}  // namespace hynet
