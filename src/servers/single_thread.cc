#include "servers/single_thread.h"

#include <algorithm>

#include "common/logging.h"
#include "common/thread_util.h"
#include "proto/http_codec.h"

namespace hynet {

SingleThreadServer::SingleThreadServer(ServerConfig config, Handler handler)
    : Server(std::move(config), std::move(handler)) {}

SingleThreadServer::~SingleThreadServer() { Stop(); }

void SingleThreadServer::Start() {
  deadlines_ = LifecycleDeadlines::FromMillis(config_.idle_timeout_ms,
                                              config_.header_timeout_ms,
                                              config_.write_stall_timeout_ms);
  cold_idle_ = std::chrono::milliseconds(config_.cold_idle_ms);
  // After any AdoptMetricsRegistry, so N-copy children account pool
  // traffic into the shared parent registry.
  buffer_pool_.BindMetrics(metrics());
  conn_table_.BindMetrics(metrics());
  loop_ = std::make_unique<EventLoop>(ResolveIoBackendKind(config_.io_backend),
                                      WheelSpecFor(config_));
  completion_mode_ = loop_->CompletionModeAvailable() &&
                     config_.uring_mode != "readiness";
  if (completion_mode_) {
    buffer_source_ = std::make_unique<PoolBufferSource>(buffer_pool_);
    loop_->SetReadBufferSource(buffer_source_.get());
    pump_ = std::make_unique<CompletionPump>(
        *loop_, write_stats_, writes_per_response_, request_latency_ns_,
        CompletionPump::Hooks{
            [this](int fd) { return OnPumpReadable(fd); },
            [this](int fd) { CloseConnection(fd); },
            [this](int fd) { OnPumpDrained(fd); },
        },
        CompletionPump::Options{});
  }
  acceptor_ = std::make_unique<Acceptor>(
      *loop_, InetAddr::Loopback(config_.port),
      [this](Socket s, const InetAddr& peer) {
        OnNewConnection(std::move(s), peer);
      },
      config_.reuse_port);
  port_ = acceptor_->Port();
  acceptor_->Listen();

  started_.store(true, std::memory_order_release);
  loop_thread_ = std::thread([this] {
    SetCurrentThreadName("singlet-loop");
    if (config_.pin_cpus) PinThread(config_.pin_cpu_offset);
    loop_tid_.store(CurrentTid(), std::memory_order_release);
    loop_->Run();
    // Drain connections on the loop thread before it exits.
    conns_.clear();
  });
  while (loop_tid_.load(std::memory_order_acquire) == 0) {
    std::this_thread::yield();
  }
  if (deadlines_.Any() || cold_idle_ > Duration::zero()) ScheduleSweep();
  StartAdminPlane();
}

void SingleThreadServer::Stop() {
  StopAdminPlane();
  if (!started_.exchange(false)) return;
  loop_->Stop();
  if (loop_thread_.joinable()) loop_thread_.join();
  acceptor_.reset();
  pump_.reset();  // references *loop_
  loop_.reset();
}

DrainResult SingleThreadServer::Shutdown(Duration drain_deadline) {
  if (!started_.load(std::memory_order_acquire)) return {};
  const TimePoint deadline = Now() + drain_deadline;
  const uint64_t closed_before = closed_.load(std::memory_order_relaxed);
  draining_.store(true, std::memory_order_release);

  loop_->RunInLoop([this] {
    if (acceptor_) acceptor_->Pause();
    std::vector<int> idle;
    for (const auto& [fd, conn] : conns_) {
      if (ConnIdle(*conn)) idle.push_back(fd);
    }
    for (const int fd : idle) CloseConnection(fd);
  });

  while (Now() < deadline && Live() > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  std::atomic<uint64_t> forced{0};
  std::atomic<bool> force_done{false};
  loop_->RunInLoop([this, &forced, &force_done] {
    std::vector<int> rest;
    for (const auto& [fd, conn] : conns_) rest.push_back(fd);
    for (const int fd : rest) CloseConnection(fd);
    forced.store(rest.size(), std::memory_order_relaxed);
    force_done.store(true, std::memory_order_release);
  });
  while (!force_done.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  DrainResult result;
  result.forced = forced.load(std::memory_order_relaxed);
  result.drained =
      closed_.load(std::memory_order_relaxed) - closed_before - result.forced;
  lifecycle_.forced_closes.fetch_add(result.forced, std::memory_order_relaxed);
  lifecycle_.drained_connections.fetch_add(result.drained,
                                           std::memory_order_relaxed);
  Stop();
  return result;
}

std::vector<int> SingleThreadServer::ThreadIds() const {
  const int tid = loop_tid_.load(std::memory_order_acquire);
  return tid ? std::vector<int>{tid} : std::vector<int>{};
}

ServerCounters SingleThreadServer::Snapshot() const {
  ServerCounters c;
  c.connections_accepted = accepted_.load(std::memory_order_relaxed);
  c.connections_closed = closed_.load(std::memory_order_relaxed);
  c.requests_handled = requests_.load(std::memory_order_relaxed);
  c.responses_sent = write_stats_.responses.load(std::memory_order_relaxed);
  c.write_calls = write_stats_.write_calls.load(std::memory_order_relaxed);
  c.zero_writes = write_stats_.zero_writes.load(std::memory_order_relaxed);
  c.writev_calls = write_stats_.writev_calls.load(std::memory_order_relaxed);
  c.iov_segments = write_stats_.iov_segments.load(std::memory_order_relaxed);
  c.read_calls = write_stats_.read_calls.load(std::memory_order_relaxed);
  if (loop_) {
    c.wakeup_writes_issued = loop_->WakeupWritesIssued();
    c.wakeup_writes_elided = loop_->WakeupWritesElided();
    AccumulateLoopIoStats(c, *loop_);
  }
  ExportLifecycle(c);
  return c;
}

void SingleThreadServer::OnNewConnection(Socket socket, const InetAddr&) {
  if (config_.max_connections > 0 &&
      Live() >= static_cast<uint64_t>(config_.max_connections)) {
    // The pause below normally keeps us under the cap; shedding handles
    // the shed_with_503 policy and the race where closes haven't landed.
    ShedWith503(socket.fd());
    return;
  }
  socket.SetNonBlocking(true);
  ConfigureAcceptedFd(socket.fd());
  const int fd = socket.fd();
  auto conn = std::make_unique<Connection>(socket.TakeFd(),
                                           config_.write_spin_cap);
  conn->in = buffer_pool_.Acquire();
  conn->lifecycle.last_activity = Now();
  conn->parser.SetLimits(config_.max_request_head_bytes,
                         config_.max_request_body_bytes);
  conn_table_.OnOpen(*conn);
  conns_[fd] = std::move(conn);
  accepted_.fetch_add(1, std::memory_order_relaxed);
  if (completion_mode_) {
    pump_->Watch(fd, conns_[fd].get());
  } else {
    loop_->RegisterFd(fd, EPOLLIN | EPOLLRDHUP,
                      [this, fd](uint32_t events) { OnReadable(fd, events); });
  }
  if (config_.max_connections > 0 && !config_.shed_with_503 &&
      !accept_paused_ &&
      Live() >= static_cast<uint64_t>(config_.max_connections)) {
    acceptor_->Pause();
    accept_paused_ = true;
    lifecycle_.accept_pauses.fetch_add(1, std::memory_order_relaxed);
  }
}

void SingleThreadServer::OnReadable(int fd, uint32_t events) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Connection& conn = *it->second;

  if (events & (EPOLLHUP | EPOLLERR)) {
    CloseConnection(fd);
    return;
  }
  if (events & EPOLLRDHUP) conn.lifecycle.peer_half_closed = true;

  // A cold connection re-acquires its pooled read buffer on first bytes.
  if (conn.cold) {
    conn.in = buffer_pool_.Acquire();
    conn.cold = false;
    lifecycle_.cold_revivals.fetch_add(1, std::memory_order_relaxed);
  }

  // Read everything available. EOF no longer closes immediately: requests
  // already buffered (peer wrote + shutdown(WR)) are still answered below.
  bool peer_eof = conn.lifecycle.peer_half_closed;
  char buf[16 * 1024];
  while (true) {
    write_stats_.read_calls.fetch_add(1, std::memory_order_relaxed);
    const IoResult r = ReadFd(fd, buf, sizeof(buf));
    if (r.WouldBlock()) break;
    if (r.Fatal()) {
      CloseConnection(fd);
      return;
    }
    if (r.Eof()) {
      peer_eof = true;
      break;
    }
    conn.in.Append(buf, static_cast<size_t>(r.n));
    conn.lifecycle.last_activity = Now();
    if (static_cast<size_t>(r.n) < sizeof(buf)) break;
  }

  // One-event-one-handler: parse, handle, and spin-write inline.
  while (true) {
    ParseStatus st;
    {
      ScopedPhase phase(phase_profiler_, Phase::kParse);
      st = conn.parser.Parse(conn.in);
    }
    if (st == ParseStatus::kNeedMore) {
      if (conn.in.ReadableBytes() > 0 || conn.parser.InProgress()) {
        if (!conn.lifecycle.head_pending) {
          conn.lifecycle.head_pending = true;
          conn.lifecycle.head_start = Now();
        }
      } else {
        conn.lifecycle.head_pending = false;
      }
      break;
    }
    conn.lifecycle.head_pending = false;
    if (st == ParseStatus::kError) {
      const ParseError err = conn.parser.error();
      if (err == ParseError::kHeadTooLarge || err == ParseError::kBodyTooLarge) {
        lifecycle_.oversize_requests.fetch_add(1, std::memory_order_relaxed);
        const std::string wire =
            SimpleErrorResponse(err == ParseError::kHeadTooLarge ? 431 : 413);
        (void)SpinWriteAll(fd, wire, write_stats_,
                           config_.yield_on_full_write,
                           deadlines_.write_stall);
      }
      CloseConnection(fd);
      return;
    }
    const int64_t req_start_ns = NowNanos();
    HttpResponse resp;
    {
      ScopedPhase phase(phase_profiler_, Phase::kHandler);
      handler_(conn.parser.request(), resp);
    }
    resp.keep_alive = conn.parser.request().keep_alive &&
                      !draining_.load(std::memory_order_relaxed);
    requests_.fetch_add(1, std::memory_order_relaxed);
    conn.requests++;

    Payload payload;
    {
      ScopedPhase phase(phase_profiler_, Phase::kSerialize);
      payload = SerializeResponsePayload(resp);
    }
    // The naive write: the single thread is stuck here until the whole
    // response is in the kernel — bounded only by the write-stall timeout.
    ScopedPhase write_phase(phase_profiler_, Phase::kWrite);
    int writes_used = 0;
    const SpinWriteResult wr =
        SpinWriteAll(fd, payload, write_stats_,
                     config_.yield_on_full_write, deadlines_.write_stall,
                     &writes_used);
    if (wr == SpinWriteResult::kOk) {
      writes_per_response_->Record(writes_used);
      request_latency_ns_->Record(NowNanos() - req_start_ns);
    }
    if (wr != SpinWriteResult::kOk) {
      if (wr == SpinWriteResult::kStalled) {
        lifecycle_.write_stall_evictions.fetch_add(1,
                                                   std::memory_order_relaxed);
      }
      CloseConnection(fd);
      return;
    }
    conn.lifecycle.last_activity = Now();
    if (!resp.keep_alive) {
      CloseConnection(fd);
      return;
    }
  }
  conn_table_.Update(conn);

  if (peer_eof) {
    lifecycle_.half_close_reclaims.fetch_add(1, std::memory_order_relaxed);
    CloseConnection(fd);
  }
}

// Completion-mode read hook: the pump already appended the CQE's bytes to
// conn.in (and flagged peer_half_closed on EOF); parse, queue responses,
// and reclaim an idle half-closed peer. The pump re-arms the next read.
bool SingleThreadServer::OnPumpReadable(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return false;
  Connection& conn = *it->second;
  // Cold revival on the completion path is organic — the pump already
  // appended the CQE's bytes into the (empty) buffer; just account it.
  if (conn.cold) {
    conn.cold = false;
    lifecycle_.cold_revivals.fetch_add(1, std::memory_order_relaxed);
  }
  // Requests already buffered are still answered; close once the write
  // queue drains (OnPumpDrained) or right away when idle.
  if (!ParseAndQueue(fd, conn)) return false;
  if (conn.lifecycle.peer_half_closed && ConnIdle(conn)) {
    lifecycle_.half_close_reclaims.fetch_add(1, std::memory_order_relaxed);
    CloseConnection(fd);
    return false;
  }
  conn_table_.Update(conn);
  return true;
}

void SingleThreadServer::OnPumpDrained(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Connection& conn = *it->second;
  if (conn.close_after_write) {
    CloseConnection(fd);
    return;
  }
  if (conn.lifecycle.peer_half_closed && ConnIdle(conn)) {
    lifecycle_.half_close_reclaims.fetch_add(1, std::memory_order_relaxed);
    CloseConnection(fd);
  }
}

bool SingleThreadServer::ParseAndQueue(int fd, Connection& conn) {
  while (true) {
    ParseStatus st;
    {
      ScopedPhase phase(phase_profiler_, Phase::kParse);
      st = conn.parser.Parse(conn.in);
    }
    if (st == ParseStatus::kNeedMore) {
      if (conn.in.ReadableBytes() > 0 || conn.parser.InProgress()) {
        if (!conn.lifecycle.head_pending) {
          conn.lifecycle.head_pending = true;
          conn.lifecycle.head_start = Now();
        }
      } else {
        conn.lifecycle.head_pending = false;
      }
      break;
    }
    conn.lifecycle.head_pending = false;
    if (st == ParseStatus::kError) {
      const ParseError err = conn.parser.error();
      if (err == ParseError::kHeadTooLarge ||
          err == ParseError::kBodyTooLarge) {
        lifecycle_.oversize_requests.fetch_add(1, std::memory_order_relaxed);
        const std::string wire =
            SimpleErrorResponse(err == ParseError::kHeadTooLarge ? 431 : 413);
        pump_->Enqueue(conn, Payload::FromString(wire), NowNanos());
        conn.close_after_write = true;
        break;
      }
      CloseConnection(fd);
      return false;
    }
    const int64_t req_start_ns = NowNanos();
    HttpResponse resp;
    {
      ScopedPhase phase(phase_profiler_, Phase::kHandler);
      handler_(conn.parser.request(), resp);
    }
    resp.keep_alive = conn.parser.request().keep_alive &&
                      !draining_.load(std::memory_order_relaxed);
    requests_.fetch_add(1, std::memory_order_relaxed);
    conn.requests++;

    Payload payload;
    {
      ScopedPhase phase(phase_profiler_, Phase::kSerialize);
      payload = SerializeResponsePayload(resp);
    }
    pump_->Enqueue(conn, std::move(payload), req_start_ns);
    if (!resp.keep_alive) {
      conn.close_after_write = true;
      break;
    }
  }
  if (!pump_->Flush(fd, conn)) return false;
  return conns_.contains(fd);
}

void SingleThreadServer::CloseConnection(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  if (completion_mode_) {
    pump_->Unwatch(fd);
  } else {
    loop_->UnregisterFd(fd);
  }
  conn_table_.OnClose(*it->second);
  // A cold connection's buffer is already back in the pool; releasing the
  // placeholder would just allocate a fresh 4KB buffer to pool.
  if (!it->second->cold) buffer_pool_.Release(std::move(it->second->in));
  conns_.erase(it);
  closed_.fetch_add(1, std::memory_order_relaxed);
  if (accept_paused_ && acceptor_ &&
      !draining_.load(std::memory_order_relaxed) &&
      Live() < static_cast<uint64_t>(config_.max_connections)) {
    acceptor_->Resume();
    accept_paused_ = false;
  }
}

bool SingleThreadServer::ConnIdle(const Connection& conn) const {
  return conn.in.ReadableBytes() == 0 && !conn.parser.InProgress() &&
         CompletionPump::Idle(conn);
}

void SingleThreadServer::ScheduleSweep() {
  loop_->RunAfter(SweepPeriod(deadlines_, cold_idle_), [this] {
    SweepDeadlines();
    if (started_.load(std::memory_order_acquire)) ScheduleSweep();
  });
}

void SingleThreadServer::SweepDeadlines() {
  const TimePoint now = Now();
  std::vector<std::pair<int, EvictReason>> victims;
  for (const auto& [fd, conn] : conns_) {
    const EvictReason reason =
        CheckDeadlines(conn->lifecycle, deadlines_, now);
    if (reason != EvictReason::kNone) {
      victims.emplace_back(fd, reason);
      continue;
    }
    if (!ConnIdle(*conn)) continue;
    if (cold_idle_ > Duration::zero() && !conn->cold &&
        now - conn->lifecycle.last_activity >= cold_idle_) {
      // Idle-cold reclamation: the read buffer goes back to the pool and
      // codec scratch is dropped; the next readable byte revives the
      // connection, which meanwhile holds ~O(100B) instead of ~O(4-16KB).
      buffer_pool_.Release(std::move(conn->in));
      conn->in = ByteBuffer(0);
      conn->parser.ShrinkScratch();
      conn->cold = true;
      lifecycle_.cold_reclaims.fetch_add(1, std::memory_order_relaxed);
    } else if (conn->in.Capacity() > ByteBuffer::kInitialCapacity) {
      // A connection that went quiet after a large request would otherwise
      // keep its grown read buffer until close; give the excess back now.
      conn->in.ShrinkToFit();
    }
    conn_table_.Update(*conn);
  }
  // Mass reclamation (or a burst of closes) can leave the free list far
  // larger than the warm working set; age out the stale tail.
  buffer_pool_.TrimIdle(std::chrono::seconds(5));
  for (const auto& [fd, reason] : victims) {
    switch (reason) {
      case EvictReason::kIdle:
        lifecycle_.idle_evictions.fetch_add(1, std::memory_order_relaxed);
        break;
      case EvictReason::kHeaderTimeout:
        lifecycle_.header_evictions.fetch_add(1, std::memory_order_relaxed);
        break;
      case EvictReason::kWriteStall:
        lifecycle_.write_stall_evictions.fetch_add(1,
                                                   std::memory_order_relaxed);
        break;
      case EvictReason::kNone:
        break;
    }
    CloseConnection(fd);
  }
}

}  // namespace hynet
