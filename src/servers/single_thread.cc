#include "servers/single_thread.h"

#include <algorithm>

#include "common/logging.h"
#include "common/thread_util.h"
#include "proto/http_codec.h"

namespace hynet {

SingleThreadServer::SingleThreadServer(ServerConfig config, Handler handler)
    : Server(std::move(config), std::move(handler)) {}

SingleThreadServer::~SingleThreadServer() { Stop(); }

void SingleThreadServer::Start() {
  deadlines_ = LifecycleDeadlines::FromMillis(config_.idle_timeout_ms,
                                              config_.header_timeout_ms,
                                              config_.write_stall_timeout_ms);
  // After any AdoptMetricsRegistry, so N-copy children account pool
  // traffic into the shared parent registry.
  buffer_pool_.BindMetrics(metrics());
  loop_ = std::make_unique<EventLoop>(ResolveIoBackendKind(config_.io_backend));
  completion_mode_ = loop_->CompletionModeAvailable();
  if (completion_mode_) {
    buffer_source_ = std::make_unique<PoolBufferSource>(buffer_pool_);
    loop_->SetReadBufferSource(buffer_source_.get());
  }
  acceptor_ = std::make_unique<Acceptor>(
      *loop_, InetAddr::Loopback(config_.port),
      [this](Socket s, const InetAddr& peer) {
        OnNewConnection(std::move(s), peer);
      },
      config_.reuse_port);
  port_ = acceptor_->Port();
  acceptor_->Listen();

  started_.store(true, std::memory_order_release);
  loop_thread_ = std::thread([this] {
    SetCurrentThreadName("singlet-loop");
    if (config_.pin_cpus) PinThread(config_.pin_cpu_offset);
    loop_tid_.store(CurrentTid(), std::memory_order_release);
    loop_->Run();
    // Drain connections on the loop thread before it exits.
    conns_.clear();
  });
  while (loop_tid_.load(std::memory_order_acquire) == 0) {
    std::this_thread::yield();
  }
  if (deadlines_.Any()) ScheduleSweep();
  StartAdminPlane();
}

void SingleThreadServer::Stop() {
  StopAdminPlane();
  if (!started_.exchange(false)) return;
  loop_->Stop();
  if (loop_thread_.joinable()) loop_thread_.join();
  acceptor_.reset();
  loop_.reset();
}

DrainResult SingleThreadServer::Shutdown(Duration drain_deadline) {
  if (!started_.load(std::memory_order_acquire)) return {};
  const TimePoint deadline = Now() + drain_deadline;
  const uint64_t closed_before = closed_.load(std::memory_order_relaxed);
  draining_.store(true, std::memory_order_release);

  loop_->RunInLoop([this] {
    if (acceptor_) acceptor_->Pause();
    std::vector<int> idle;
    for (const auto& [fd, conn] : conns_) {
      if (ConnIdle(*conn)) idle.push_back(fd);
    }
    for (const int fd : idle) CloseConnection(fd);
  });

  while (Now() < deadline && Live() > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  std::atomic<uint64_t> forced{0};
  std::atomic<bool> force_done{false};
  loop_->RunInLoop([this, &forced, &force_done] {
    std::vector<int> rest;
    for (const auto& [fd, conn] : conns_) rest.push_back(fd);
    for (const int fd : rest) CloseConnection(fd);
    forced.store(rest.size(), std::memory_order_relaxed);
    force_done.store(true, std::memory_order_release);
  });
  while (!force_done.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  DrainResult result;
  result.forced = forced.load(std::memory_order_relaxed);
  result.drained =
      closed_.load(std::memory_order_relaxed) - closed_before - result.forced;
  lifecycle_.forced_closes.fetch_add(result.forced, std::memory_order_relaxed);
  lifecycle_.drained_connections.fetch_add(result.drained,
                                           std::memory_order_relaxed);
  Stop();
  return result;
}

std::vector<int> SingleThreadServer::ThreadIds() const {
  const int tid = loop_tid_.load(std::memory_order_acquire);
  return tid ? std::vector<int>{tid} : std::vector<int>{};
}

ServerCounters SingleThreadServer::Snapshot() const {
  ServerCounters c;
  c.connections_accepted = accepted_.load(std::memory_order_relaxed);
  c.connections_closed = closed_.load(std::memory_order_relaxed);
  c.requests_handled = requests_.load(std::memory_order_relaxed);
  c.responses_sent = write_stats_.responses.load(std::memory_order_relaxed);
  c.write_calls = write_stats_.write_calls.load(std::memory_order_relaxed);
  c.zero_writes = write_stats_.zero_writes.load(std::memory_order_relaxed);
  c.writev_calls = write_stats_.writev_calls.load(std::memory_order_relaxed);
  c.iov_segments = write_stats_.iov_segments.load(std::memory_order_relaxed);
  c.read_calls = write_stats_.read_calls.load(std::memory_order_relaxed);
  if (loop_) {
    c.wakeup_writes_issued = loop_->WakeupWritesIssued();
    c.wakeup_writes_elided = loop_->WakeupWritesElided();
    AccumulateLoopIoStats(c, *loop_);
  }
  ExportLifecycle(c);
  return c;
}

void SingleThreadServer::OnNewConnection(Socket socket, const InetAddr&) {
  if (config_.max_connections > 0 &&
      Live() >= static_cast<uint64_t>(config_.max_connections)) {
    // The pause below normally keeps us under the cap; shedding handles
    // the shed_with_503 policy and the race where closes haven't landed.
    ShedWith503(socket.fd());
    return;
  }
  socket.SetNonBlocking(true);
  ConfigureAcceptedFd(socket.fd());
  const int fd = socket.fd();
  auto conn = std::make_unique<Connection>(socket.TakeFd(),
                                           config_.write_spin_cap);
  conn->in = buffer_pool_.Acquire();
  conn->lifecycle.last_activity = Now();
  conn->parser.SetLimits(config_.max_request_head_bytes,
                         config_.max_request_body_bytes);
  conns_[fd] = std::move(conn);
  accepted_.fetch_add(1, std::memory_order_relaxed);
  if (completion_mode_) {
    loop_->SetCompletionHandler(
        fd, [this, fd](const IoEvent& ev) { OnCompletion(fd, ev); });
    loop_->QueueRead(fd);
  } else {
    loop_->RegisterFd(fd, EPOLLIN | EPOLLRDHUP,
                      [this, fd](uint32_t events) { OnReadable(fd, events); });
  }
  if (config_.max_connections > 0 && !config_.shed_with_503 &&
      !accept_paused_ &&
      Live() >= static_cast<uint64_t>(config_.max_connections)) {
    acceptor_->Pause();
    accept_paused_ = true;
    lifecycle_.accept_pauses.fetch_add(1, std::memory_order_relaxed);
  }
}

void SingleThreadServer::OnReadable(int fd, uint32_t events) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Connection& conn = *it->second;

  if (events & (EPOLLHUP | EPOLLERR)) {
    CloseConnection(fd);
    return;
  }
  if (events & EPOLLRDHUP) conn.lifecycle.peer_half_closed = true;

  // Read everything available. EOF no longer closes immediately: requests
  // already buffered (peer wrote + shutdown(WR)) are still answered below.
  bool peer_eof = conn.lifecycle.peer_half_closed;
  char buf[16 * 1024];
  while (true) {
    write_stats_.read_calls.fetch_add(1, std::memory_order_relaxed);
    const IoResult r = ReadFd(fd, buf, sizeof(buf));
    if (r.WouldBlock()) break;
    if (r.Fatal()) {
      CloseConnection(fd);
      return;
    }
    if (r.Eof()) {
      peer_eof = true;
      break;
    }
    conn.in.Append(buf, static_cast<size_t>(r.n));
    conn.lifecycle.last_activity = Now();
    if (static_cast<size_t>(r.n) < sizeof(buf)) break;
  }

  // One-event-one-handler: parse, handle, and spin-write inline.
  while (true) {
    ParseStatus st;
    {
      ScopedPhase phase(phase_profiler_, Phase::kParse);
      st = conn.parser.Parse(conn.in);
    }
    if (st == ParseStatus::kNeedMore) {
      if (conn.in.ReadableBytes() > 0 || conn.parser.InProgress()) {
        if (!conn.lifecycle.head_pending) {
          conn.lifecycle.head_pending = true;
          conn.lifecycle.head_start = Now();
        }
      } else {
        conn.lifecycle.head_pending = false;
      }
      break;
    }
    conn.lifecycle.head_pending = false;
    if (st == ParseStatus::kError) {
      const ParseError err = conn.parser.error();
      if (err == ParseError::kHeadTooLarge || err == ParseError::kBodyTooLarge) {
        lifecycle_.oversize_requests.fetch_add(1, std::memory_order_relaxed);
        const std::string wire =
            SimpleErrorResponse(err == ParseError::kHeadTooLarge ? 431 : 413);
        (void)SpinWriteAll(fd, wire, write_stats_,
                           config_.yield_on_full_write,
                           deadlines_.write_stall);
      }
      CloseConnection(fd);
      return;
    }
    const int64_t req_start_ns = NowNanos();
    HttpResponse resp;
    {
      ScopedPhase phase(phase_profiler_, Phase::kHandler);
      handler_(conn.parser.request(), resp);
    }
    resp.keep_alive = conn.parser.request().keep_alive &&
                      !draining_.load(std::memory_order_relaxed);
    requests_.fetch_add(1, std::memory_order_relaxed);
    conn.requests++;

    Payload payload;
    {
      ScopedPhase phase(phase_profiler_, Phase::kSerialize);
      payload = SerializeResponsePayload(resp);
    }
    // The naive write: the single thread is stuck here until the whole
    // response is in the kernel — bounded only by the write-stall timeout.
    ScopedPhase write_phase(phase_profiler_, Phase::kWrite);
    int writes_used = 0;
    const SpinWriteResult wr =
        SpinWriteAll(fd, payload, write_stats_,
                     config_.yield_on_full_write, deadlines_.write_stall,
                     &writes_used);
    if (wr == SpinWriteResult::kOk) {
      writes_per_response_->Record(writes_used);
      request_latency_ns_->Record(NowNanos() - req_start_ns);
    }
    if (wr != SpinWriteResult::kOk) {
      if (wr == SpinWriteResult::kStalled) {
        lifecycle_.write_stall_evictions.fetch_add(1,
                                                   std::memory_order_relaxed);
      }
      CloseConnection(fd);
      return;
    }
    conn.lifecycle.last_activity = Now();
    if (!resp.keep_alive) {
      CloseConnection(fd);
      return;
    }
  }

  if (peer_eof) {
    lifecycle_.half_close_reclaims.fetch_add(1, std::memory_order_relaxed);
    CloseConnection(fd);
  }
}

// The completion-mode event pump: one callback receives every CQE-backed
// event for the connection. Reads parse and queue responses; writes advance
// the queue. Mirrors OnReadable's flow with the spin-write replaced by
// queued SENDMSG ops.
void SingleThreadServer::OnCompletion(int fd, const IoEvent& ev) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Connection& conn = *it->second;

  if (ev.op == IoOpType::kWrite) {
    HandleWriteComplete(fd, conn, ev);
    return;
  }
  if (ev.op != IoOpType::kRead) return;

  if (ev.result < 0) {
    CloseConnection(fd);
    return;
  }
  if (ev.result == 0) {
    conn.lifecycle.peer_half_closed = true;
    // Requests already buffered are still answered; close once the write
    // queue drains (HandleWriteComplete) or right away when idle.
    if (!ParseAndQueue(fd, conn)) return;
    if (ConnIdle(conn)) {
      lifecycle_.half_close_reclaims.fetch_add(1, std::memory_order_relaxed);
      CloseConnection(fd);
    }
    return;
  }

  conn.in.Append(ev.buffer->ReadPtr(), ev.buffer->ReadableBytes());
  conn.lifecycle.last_activity = Now();
  if (!ParseAndQueue(fd, conn)) return;
  // Keep a read armed for the next (possibly pipelined) request.
  if (!conn.close_after_write && !conn.lifecycle.peer_half_closed) {
    loop_->QueueRead(fd);
  }
}

bool SingleThreadServer::ParseAndQueue(int fd, Connection& conn) {
  while (true) {
    ParseStatus st;
    {
      ScopedPhase phase(phase_profiler_, Phase::kParse);
      st = conn.parser.Parse(conn.in);
    }
    if (st == ParseStatus::kNeedMore) {
      if (conn.in.ReadableBytes() > 0 || conn.parser.InProgress()) {
        if (!conn.lifecycle.head_pending) {
          conn.lifecycle.head_pending = true;
          conn.lifecycle.head_start = Now();
        }
      } else {
        conn.lifecycle.head_pending = false;
      }
      break;
    }
    conn.lifecycle.head_pending = false;
    if (st == ParseStatus::kError) {
      const ParseError err = conn.parser.error();
      if (err == ParseError::kHeadTooLarge ||
          err == ParseError::kBodyTooLarge) {
        lifecycle_.oversize_requests.fetch_add(1, std::memory_order_relaxed);
        const std::string wire =
            SimpleErrorResponse(err == ParseError::kHeadTooLarge ? 431 : 413);
        conn.uring_q.push_back(
            {Payload::FromString(wire), 0, NowNanos()});
        conn.close_after_write = true;
        break;
      }
      CloseConnection(fd);
      return false;
    }
    const int64_t req_start_ns = NowNanos();
    HttpResponse resp;
    {
      ScopedPhase phase(phase_profiler_, Phase::kHandler);
      handler_(conn.parser.request(), resp);
    }
    resp.keep_alive = conn.parser.request().keep_alive &&
                      !draining_.load(std::memory_order_relaxed);
    requests_.fetch_add(1, std::memory_order_relaxed);
    conn.requests++;

    Payload payload;
    {
      ScopedPhase phase(phase_profiler_, Phase::kSerialize);
      payload = SerializeResponsePayload(resp);
    }
    conn.uring_q.push_back({std::move(payload), 0, req_start_ns});
    if (!resp.keep_alive) {
      conn.close_after_write = true;
      break;
    }
  }
  MaybeSubmitWrite(fd, conn);
  return conns_.contains(fd);
}

void SingleThreadServer::MaybeSubmitWrite(int fd, Connection& conn) {
  if (conn.uring_write_inflight || conn.uring_q.empty()) return;
  std::vector<Payload> batch;
  const size_t n = std::min<size_t>(conn.uring_q.size(), 8);
  batch.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    batch.push_back(conn.uring_q[i].payload);  // shares the body bytes
    conn.uring_q[i].writes++;
  }
  const int segs = loop_->QueueWritePayloads(fd, std::move(batch),
                                             conn.uring_q_offset);
  if (segs < 0) {
    CloseConnection(fd);
    return;
  }
  conn.uring_write_inflight = true;
  // A SENDMSG SQE is the vectored-write unit of this path; it rides the
  // iteration's submit batch instead of costing its own syscall.
  write_stats_.writev_calls.fetch_add(1, std::memory_order_relaxed);
  write_stats_.iov_segments.fetch_add(static_cast<uint64_t>(segs),
                                      std::memory_order_relaxed);
  if (!conn.lifecycle.write_stalled) {
    conn.lifecycle.write_stalled = true;
    conn.lifecycle.stall_start = Now();
  }
}

void SingleThreadServer::HandleWriteComplete(int fd, Connection& conn,
                                             const IoEvent& ev) {
  conn.uring_write_inflight = false;
  if (ev.result < 0) {
    CloseConnection(fd);  // EPIPE / ECONNRESET / cancelled
    return;
  }
  if (ev.result == 0) {
    write_stats_.zero_writes.fetch_add(1, std::memory_order_relaxed);
  }
  conn.lifecycle.last_activity = Now();
  size_t advance = static_cast<size_t>(ev.result);
  while (advance > 0 && !conn.uring_q.empty()) {
    auto& node = conn.uring_q.front();
    const size_t left = node.payload.size() - conn.uring_q_offset;
    if (advance < left) {
      conn.uring_q_offset += advance;
      break;
    }
    advance -= left;
    conn.uring_q_offset = 0;
    write_stats_.responses.fetch_add(1, std::memory_order_relaxed);
    writes_per_response_->Record(node.writes);
    request_latency_ns_->Record(NowNanos() - node.start_ns);
    conn.uring_q.pop_front();
  }
  if (!conn.uring_q.empty()) {
    // Short write: resume from the new offset. Progress resets the stall
    // clock; a peer whose window never opens still trips the sweep.
    conn.lifecycle.stall_start = Now();
    MaybeSubmitWrite(fd, conn);
    return;
  }
  conn.lifecycle.write_stalled = false;
  if (conn.close_after_write) {
    CloseConnection(fd);
    return;
  }
  if (conn.lifecycle.peer_half_closed && ConnIdle(conn)) {
    lifecycle_.half_close_reclaims.fetch_add(1, std::memory_order_relaxed);
    CloseConnection(fd);
  }
}

void SingleThreadServer::CloseConnection(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  if (completion_mode_) {
    loop_->ClearCompletionHandler(fd);
  } else {
    loop_->UnregisterFd(fd);
  }
  buffer_pool_.Release(std::move(it->second->in));
  conns_.erase(it);
  closed_.fetch_add(1, std::memory_order_relaxed);
  if (accept_paused_ && acceptor_ &&
      !draining_.load(std::memory_order_relaxed) &&
      Live() < static_cast<uint64_t>(config_.max_connections)) {
    acceptor_->Resume();
    accept_paused_ = false;
  }
}

bool SingleThreadServer::ConnIdle(const Connection& conn) const {
  return conn.in.ReadableBytes() == 0 && !conn.parser.InProgress() &&
         conn.uring_q.empty() && !conn.uring_write_inflight;
}

void SingleThreadServer::ScheduleSweep() {
  loop_->RunAfter(SweepPeriod(deadlines_), [this] {
    SweepDeadlines();
    if (started_.load(std::memory_order_acquire)) ScheduleSweep();
  });
}

void SingleThreadServer::SweepDeadlines() {
  const TimePoint now = Now();
  std::vector<std::pair<int, EvictReason>> victims;
  for (const auto& [fd, conn] : conns_) {
    const EvictReason reason =
        CheckDeadlines(conn->lifecycle, deadlines_, now);
    if (reason != EvictReason::kNone) victims.emplace_back(fd, reason);
  }
  for (const auto& [fd, reason] : victims) {
    switch (reason) {
      case EvictReason::kIdle:
        lifecycle_.idle_evictions.fetch_add(1, std::memory_order_relaxed);
        break;
      case EvictReason::kHeaderTimeout:
        lifecycle_.header_evictions.fetch_add(1, std::memory_order_relaxed);
        break;
      case EvictReason::kWriteStall:
        lifecycle_.write_stall_evictions.fetch_add(1,
                                                   std::memory_order_relaxed);
        break;
      case EvictReason::kNone:
        break;
    }
    CloseConnection(fd);
  }
}

}  // namespace hynet
