#include "servers/single_thread.h"

#include "common/logging.h"
#include "common/thread_util.h"
#include "proto/http_codec.h"

namespace hynet {

SingleThreadServer::SingleThreadServer(ServerConfig config, Handler handler)
    : Server(std::move(config), std::move(handler)) {}

SingleThreadServer::~SingleThreadServer() { Stop(); }

void SingleThreadServer::Start() {
  loop_ = std::make_unique<EventLoop>();
  acceptor_ = std::make_unique<Acceptor>(
      *loop_, InetAddr::Loopback(config_.port),
      [this](Socket s, const InetAddr& peer) {
        OnNewConnection(std::move(s), peer);
      },
      config_.reuse_port);
  port_ = acceptor_->Port();
  acceptor_->Listen();

  started_.store(true, std::memory_order_release);
  loop_thread_ = std::thread([this] {
    SetCurrentThreadName("singlet-loop");
    loop_tid_.store(CurrentTid(), std::memory_order_release);
    loop_->Run();
    // Drain connections on the loop thread before it exits.
    conns_.clear();
  });
  while (loop_tid_.load(std::memory_order_acquire) == 0) {
    std::this_thread::yield();
  }
}

void SingleThreadServer::Stop() {
  if (!started_.exchange(false)) return;
  loop_->Stop();
  if (loop_thread_.joinable()) loop_thread_.join();
  acceptor_.reset();
  loop_.reset();
}

std::vector<int> SingleThreadServer::ThreadIds() const {
  const int tid = loop_tid_.load(std::memory_order_acquire);
  return tid ? std::vector<int>{tid} : std::vector<int>{};
}

ServerCounters SingleThreadServer::Snapshot() const {
  ServerCounters c;
  c.connections_accepted = accepted_.load(std::memory_order_relaxed);
  c.connections_closed = closed_.load(std::memory_order_relaxed);
  c.requests_handled = requests_.load(std::memory_order_relaxed);
  c.responses_sent = write_stats_.responses.load(std::memory_order_relaxed);
  c.write_calls = write_stats_.write_calls.load(std::memory_order_relaxed);
  c.zero_writes = write_stats_.zero_writes.load(std::memory_order_relaxed);
  return c;
}

void SingleThreadServer::OnNewConnection(Socket socket, const InetAddr&) {
  socket.SetNonBlocking(true);
  ConfigureAcceptedFd(socket.fd());
  const int fd = socket.fd();
  auto conn = std::make_unique<Connection>(socket.TakeFd(),
                                           config_.write_spin_cap);
  conns_[fd] = std::move(conn);
  accepted_.fetch_add(1, std::memory_order_relaxed);
  loop_->RegisterFd(fd, EPOLLIN,
                    [this, fd](uint32_t events) { OnReadable(fd, events); });
}

void SingleThreadServer::OnReadable(int fd, uint32_t events) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Connection& conn = *it->second;

  if (events & (EPOLLHUP | EPOLLERR)) {
    CloseConnection(fd);
    return;
  }

  // Read everything available.
  char buf[16 * 1024];
  while (true) {
    const IoResult r = ReadFd(fd, buf, sizeof(buf));
    if (r.WouldBlock()) break;
    if (r.Eof() || r.Fatal()) {
      CloseConnection(fd);
      return;
    }
    conn.in.Append(buf, static_cast<size_t>(r.n));
    if (static_cast<size_t>(r.n) < sizeof(buf)) break;
  }

  // One-event-one-handler: parse, handle, and spin-write inline.
  while (true) {
    ParseStatus st;
    {
      ScopedPhase phase(phase_profiler_, Phase::kParse);
      st = conn.parser.Parse(conn.in);
    }
    if (st == ParseStatus::kNeedMore) return;
    if (st == ParseStatus::kError) {
      CloseConnection(fd);
      return;
    }
    HttpResponse resp;
    {
      ScopedPhase phase(phase_profiler_, Phase::kHandler);
      handler_(conn.parser.request(), resp);
    }
    resp.keep_alive = conn.parser.request().keep_alive;
    requests_.fetch_add(1, std::memory_order_relaxed);
    conn.requests++;

    ByteBuffer out;
    {
      ScopedPhase phase(phase_profiler_, Phase::kSerialize);
      SerializeResponse(resp, out);
    }
    // The naive write: the single thread is stuck here until the whole
    // response is in the kernel, no matter how long ACKs take.
    ScopedPhase write_phase(phase_profiler_, Phase::kWrite);
    if (SpinWriteAll(fd, out.View(), write_stats_,
                     config_.yield_on_full_write) != SpinWriteResult::kOk) {
      CloseConnection(fd);
      return;
    }
    if (!resp.keep_alive) {
      CloseConnection(fd);
      return;
    }
  }
}

void SingleThreadServer::CloseConnection(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  loop_->UnregisterFd(fd);
  conns_.erase(it);
  closed_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace hynet
