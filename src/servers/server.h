// Public server API shared by every architecture in the study.
//
// An application registers one Handler; the architecture decides which
// thread parses, which thread runs the handler, and how the response bytes
// reach the socket — those choices are precisely what the paper measures.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "proto/http_message.h"
#include "metrics/phase_profiler.h"
#include "runtime/dispatch_stats.h"

namespace hynet {

// Application request handler. Runs on an architecture-defined thread; must
// not block on the network (it may burn CPU, which models business logic).
using Handler = std::function<void(const HttpRequest&, HttpResponse&)>;

enum class ServerArchitecture {
  kThreadPerConn,    // sTomcat-Sync: dedicated worker thread per connection
  kReactorPool,      // sTomcat-Async: reactor + pool, read/write split
  kReactorPoolFix,   // sTomcat-Async-Fix: reactor + pool, merged read/write
  kSingleThread,     // SingleT-Async: one event loop, naive spin writes
  kMultiLoop,        // NettyServer: N loops, pipeline, capped writes
  kHybrid,           // HybridNetty: runtime light/heavy path selection
  // Two further designs from the paper's Section II-A taxonomy, built as
  // comparison baselines:
  kStaged,           // SEDA/WatPipe: pipeline of stages with own pools
  kSingleThreadNCopy,  // N-copy SingleT-Async sharing a port (SO_REUSEPORT)
};

const char* ArchitectureName(ServerArchitecture arch);

struct ServerConfig {
  ServerArchitecture architecture = ServerArchitecture::kSingleThread;
  uint16_t port = 0;        // 0 = pick an ephemeral port (see Server::Port)
  // Worker pool size for the reactor architectures; also the cap used by
  // thread-per-connection is separate (max_connections).
  int worker_threads = 8;
  // Number of event loops for kMultiLoop / kHybrid (Netty's workerGroup).
  int event_loops = 1;
  // SO_SNDBUF per accepted connection; 0 keeps the kernel default with
  // autotuning enabled (the Figure 6 comparison).
  int snd_buf_bytes = 16 * 1024;
  bool tcp_no_delay = true;
  // Netty write-spin cap (kMultiLoop / kHybrid / heavy path). <= 0 means
  // unbounded (flush until EAGAIN).
  int write_spin_cap = 16;
  // Naive spin-write paths (kSingleThread, kReactorPool*): call
  // sched_yield() after a zero-byte write so a single-core host can let the
  // receiver drain. Mirrors the JVM's behaviour in the paper's testbed.
  bool yield_on_full_write = true;
  // Hybrid: writes-per-response above this mark a request type heavy.
  int hybrid_heavy_write_threshold = 2;
  // kStaged: threads per stage (parse / app / write stages).
  int stage_threads = 2;
  // kSingleThreadNCopy: number of single-threaded copies sharing the port.
  int ncopy = 2;
  // Internal: set by the N-copy wrapper so each copy's acceptor binds with
  // SO_REUSEPORT.
  bool reuse_port = false;
  // Account per-phase request time (parse/handler/serialize/write); see
  // metrics/phase_profiler.h. Off by default (two clock reads per phase).
  bool profile_phases = false;

  // ---- Connection lifecycle & overload protection ----
  // All timeouts are 0 (disabled) by default so the paper's benchmark
  // behavior is unchanged; production deployments should set all three.
  // Event-driven architectures enforce them with an EventLoop sweep timer;
  // thread-per-connection approximates them with SO_RCVTIMEO/SO_SNDTIMEO.
  //
  // Close a keep-alive connection with no request activity for this long.
  int idle_timeout_ms = 0;
  // Evict a peer that started a request head but never finished it
  // (slowloris defense). Also bounds a stalled body upload.
  int header_timeout_ms = 0;
  // Evict a peer whose response write makes no progress for this long (the
  // degenerate write-spin case: a receiver whose window never opens).
  int write_stall_timeout_ms = 0;
  // Admission control: maximum concurrently admitted connections
  // (0 = unlimited). At the cap, either answer 503 and close
  // (shed_with_503) or stop accepting until a slot frees up.
  int max_connections = 0;
  bool shed_with_503 = true;
  // Backpressure for the buffered write path (kMultiLoop / kHybrid): stop
  // reading from a connection while its OutboundBuffer holds more than
  // high_water bytes; resume at low_water (0 = high_water / 2).
  // 0 high water = unbounded, the seed behavior.
  size_t outbound_high_water_bytes = 0;
  size_t outbound_low_water_bytes = 0;
  // Request size bounds enforced by HttpRequestParser. Oversize heads are
  // answered with 431, oversize bodies with 413, then the connection
  // closes. 0 = unlimited.
  size_t max_request_head_bytes = 64 * 1024;  // matches the seed's cap
  size_t max_request_body_bytes = 8 * 1024 * 1024;
};

// Monotonic counters exported by every server. Snapshot-copyable.
struct ServerCounters {
  uint64_t connections_accepted = 0;
  uint64_t connections_closed = 0;
  uint64_t requests_handled = 0;
  uint64_t responses_sent = 0;
  uint64_t write_calls = 0;
  uint64_t zero_writes = 0;
  uint64_t spin_capped_flushes = 0;
  uint64_t logical_switches = 0;   // Table II accounting
  // Hybrid-only:
  uint64_t light_path_responses = 0;
  uint64_t heavy_path_responses = 0;
  uint64_t reclassifications = 0;
  // Lifecycle / overload protection (see LifecycleStats):
  uint64_t idle_evictions = 0;
  uint64_t header_evictions = 0;
  uint64_t write_stall_evictions = 0;
  uint64_t shed_connections = 0;
  uint64_t accept_pauses = 0;
  uint64_t backpressure_pauses = 0;
  uint64_t backpressure_resumes = 0;
  uint64_t oversize_requests = 0;
  uint64_t half_close_reclaims = 0;
  uint64_t drained_connections = 0;
  uint64_t forced_closes = 0;
};

// Field-wise sum, for aggregating per-copy/per-tier snapshots.
void AccumulateCounters(ServerCounters& into, const ServerCounters& c);

// Named lifecycle counter rows, for table printing via
// metrics/report.cc PrintCounterTable.
std::vector<std::pair<std::string, uint64_t>> LifecycleCounterRows(
    const ServerCounters& c);

// Outcome of a graceful drain (Server::Shutdown).
struct DrainResult {
  uint64_t drained = 0;  // connections that finished and closed cleanly
  uint64_t forced = 0;   // stragglers force-closed at the deadline
};

class Server {
 public:
  Server(ServerConfig config, Handler handler)
      : config_(std::move(config)), handler_(std::move(handler)) {
    phase_profiler_.Enable(config_.profile_phases);
  }
  virtual ~Server() = default;
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Begins listening; returns once the port is bound and all architecture
  // threads are running. Throws std::system_error on setup failure.
  virtual void Start() = 0;
  // Stops accepting, closes connections, joins all threads. Idempotent.
  virtual void Stop() = 0;

  // Graceful drain: closes the acceptor, lets in-flight requests finish
  // (responses during a drain carry `Connection: close`), force-closes
  // stragglers at the deadline, then fully stops the server. The default
  // implementation is an immediate Stop() with nothing drained.
  virtual DrainResult Shutdown(Duration drain_deadline) {
    (void)drain_deadline;
    Stop();
    return {};
  }

  // The bound port (valid after Start()).
  virtual uint16_t Port() const = 0;

  // Linux tids of all server-owned threads, for /proc metrics scoped to
  // the server while client threads share the process.
  virtual std::vector<int> ThreadIds() const = 0;

  virtual ServerCounters Snapshot() const = 0;

  const ServerConfig& config() const { return config_; }

  // Request-anatomy profiler (populated when config.profile_phases).
  const PhaseProfiler& phase_profiler() const { return phase_profiler_; }

 protected:
  // Applies per-connection socket options from the config.
  void ConfigureAcceptedFd(int fd) const;

  // Copies the lifecycle counters into a Snapshot.
  void ExportLifecycle(ServerCounters& c) const;

  // Best-effort 503 on a just-accepted socket that exceeded
  // max_connections; the socket closes when it goes out of scope.
  void ShedWith503(int fd);

  ServerConfig config_;
  Handler handler_;
  mutable PhaseProfiler phase_profiler_;
  mutable LifecycleStats lifecycle_;
  // Set while Shutdown drains; response paths force `Connection: close`.
  std::atomic<bool> draining_{false};
};

// Creates one of the five non-hybrid architectures (the hybrid lives in
// core/ and is created via CreateServer in core/hybrid_server.h).
std::unique_ptr<Server> CreateBasicServer(const ServerConfig& config,
                                          Handler handler);

}  // namespace hynet
