// Public server API shared by every architecture in the study.
//
// An application registers one Handler; the architecture decides which
// thread parses, which thread runs the handler, and how the response bytes
// reach the socket — those choices are precisely what the paper measures.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "proto/http_message.h"
#include "metrics/phase_profiler.h"
#include "metrics/registry.h"
#include "runtime/dispatch_stats.h"
#include "runtime/overload.h"

namespace hynet {

class AdminServer;

// Application request handler. Runs on an architecture-defined thread; must
// not block on the network (it may burn CPU, which models business logic).
using Handler = std::function<void(const HttpRequest&, HttpResponse&)>;

enum class ServerArchitecture {
  kThreadPerConn,    // sTomcat-Sync: dedicated worker thread per connection
  kReactorPool,      // sTomcat-Async: reactor + pool, read/write split
  kReactorPoolFix,   // sTomcat-Async-Fix: reactor + pool, merged read/write
  kSingleThread,     // SingleT-Async: one event loop, naive spin writes
  kMultiLoop,        // NettyServer: N loops, pipeline, capped writes
  kHybrid,           // HybridNetty: runtime light/heavy path selection
  // Two further designs from the paper's Section II-A taxonomy, built as
  // comparison baselines:
  kStaged,           // SEDA/WatPipe: pipeline of stages with own pools
  kSingleThreadNCopy,  // N-copy SingleT-Async sharing a port (SO_REUSEPORT)
};

const char* ArchitectureName(ServerArchitecture arch);

// Execution path for one RPC method (the per-method generalization of the
// paper's light/heavy request classes; see app/rpc_server.h).
enum class RpcRoute : uint8_t {
  kAuto,     // runtime classification: light → inline, heavy → worker
  kInline,   // handler on the loop thread, naive spin write (SingleT-Async)
  kReactor,  // handler on the loop thread, buffered spin-capped flush
  kWorker,   // handler on the worker pool, response marshaled to the loop
};

const char* RpcRouteName(RpcRoute route);
// Parses "auto" / "inline" / "reactor" / "worker"; false on anything else.
bool ParseRpcRouteName(std::string_view name, RpcRoute* out);

// One per-method routing override (ServerConfig::rpc_routes). Methods
// without an entry use the architecture default (kAuto for kHybrid,
// kReactor for kMultiLoop).
struct MethodRouteEntry {
  uint16_t method_id = 0;
  RpcRoute route = RpcRoute::kAuto;
};

struct ServerConfig {
  ServerArchitecture architecture = ServerArchitecture::kSingleThread;
  uint16_t port = 0;        // 0 = pick an ephemeral port (see Server::Port)
  // Worker pool size for the reactor architectures; also the cap used by
  // thread-per-connection is separate (max_connections).
  int worker_threads = 8;
  // Number of event loops for kMultiLoop / kHybrid (Netty's workerGroup).
  int event_loops = 1;
  // SO_SNDBUF per accepted connection; 0 keeps the kernel default with
  // autotuning enabled (the Figure 6 comparison).
  int snd_buf_bytes = 16 * 1024;
  bool tcp_no_delay = true;
  // Netty write-spin cap (kMultiLoop / kHybrid / heavy path). <= 0 means
  // unbounded (flush until EAGAIN).
  int write_spin_cap = 16;
  // Naive spin-write paths (kSingleThread, kReactorPool*): call
  // sched_yield() after a zero-byte write so a single-core host can let the
  // receiver drain. Mirrors the JVM's behaviour in the paper's testbed.
  bool yield_on_full_write = true;
  // Hybrid: writes-per-response above this mark a request type heavy.
  int hybrid_heavy_write_threshold = 2;
  // kStaged: threads per stage (parse / app / write stages).
  int stage_threads = 2;
  // kSingleThreadNCopy: number of single-threaded copies sharing the port.
  int ncopy = 2;
  // Internal: set by the N-copy wrapper so each copy's acceptor binds with
  // SO_REUSEPORT.
  bool reuse_port = false;
  // Account per-phase request time (parse/handler/serialize/write); see
  // metrics/phase_profiler.h. Off by default (two clock reads per phase).
  bool profile_phases = false;

  // ---- Dispatch path ----
  // Max ready events the reactor hands to the worker pool per condvar wake
  // (kReactorPool*/kStaged), and max tasks a worker drains per wake. 1 (the
  // default) is the paper-faithful flow — one blocking handoff per event,
  // exactly the context-switch anatomy the baseline measures. Larger values
  // amortize the two switches of a handoff over a whole epoll batch.
  int dispatch_batch = 1;
  // Pin server threads (event loops, workers, stage pools, N-copy shards)
  // to distinct cores, like the paper's testbed. Off by default.
  bool pin_cpus = false;
  // Internal: first cpu index for this server's threads; the N-copy
  // wrapper staggers it so copies don't stack on the same cores.
  int pin_cpu_offset = 0;

  // ---- Observability plane ----
  // Port for the embedded admin endpoint serving /metrics (Prometheus
  // text), /stats.json, and /healthz on loopback. -1 disables the plane
  // (the default, so benchmarks are unaffected), 0 binds an ephemeral
  // port (see Server::AdminPort), > 0 binds that port.
  int admin_port = -1;

  // ---- Connection lifecycle & overload protection ----
  // All timeouts are 0 (disabled) by default so the paper's benchmark
  // behavior is unchanged; production deployments should set all three.
  // Event-driven architectures enforce them with an EventLoop sweep timer;
  // thread-per-connection approximates them with SO_RCVTIMEO/SO_SNDTIMEO.
  //
  // Close a keep-alive connection with no request activity for this long.
  int idle_timeout_ms = 0;
  // Evict a peer that started a request head but never finished it
  // (slowloris defense). Also bounds a stalled body upload.
  int header_timeout_ms = 0;
  // Evict a peer whose response write makes no progress for this long (the
  // degenerate write-spin case: a receiver whose window never opens).
  int write_stall_timeout_ms = 0;
  // Admission control: maximum concurrently admitted connections
  // (0 = unlimited). At the cap, either answer 503 and close
  // (shed_with_503) or stop accepting until a slot frees up.
  int max_connections = 0;
  bool shed_with_503 = true;
  // Backpressure for the buffered write path (kMultiLoop / kHybrid): stop
  // reading from a connection while its OutboundBuffer holds more than
  // high_water bytes; resume at low_water (0 = high_water / 2).
  // 0 high water = unbounded, the seed behavior.
  size_t outbound_high_water_bytes = 0;
  size_t outbound_low_water_bytes = 0;
  // Request size bounds enforced by HttpRequestParser. Oversize heads are
  // answered with 431, oversize bodies with 413, then the connection
  // closes. 0 = unlimited.
  size_t max_request_head_bytes = 64 * 1024;  // matches the seed's cap
  size_t max_request_body_bytes = 8 * 1024 * 1024;

  // ---- Connection-scale plane ----
  // Idle-cold reclamation: a connection idle for this long releases its
  // pooled read buffer back to the per-loop BufferPool and shrinks codec
  // scratch, re-acquiring lazily on the next readable byte — so a
  // 99%-cold workload holds ~O(100B) per connection instead of the warm
  // ~O(4-16KB). 0 (the default) disables reclamation; sweeps still
  // ShrinkToFit grown buffers. Enforced by the sweep timer, so one of the
  // lifecycle timeouts or this knob schedules the sweep.
  int cold_idle_ms = 0;
  // Timer-wheel geometry for this server's event loops. 0 ticks = the
  // 10ms default; 0 slots = derived from max_connections (one slot per
  // ~64 expected connections, clamped to [512, 16384]) so per-tick sweep
  // cost stays bounded as the connection table grows.
  int timer_wheel_tick_ms = 0;
  int timer_wheel_slots = 0;
  // Sharded REUSEPORT deployment: > 1 runs that many independent copies
  // of this architecture sharing the port via SO_REUSEPORT, each with its
  // own event loops and its own MetricsRegistry; the parent aggregates
  // shard registries at scrape time, so /metrics stays O(shards) not
  // O(connections). 0 or 1 = no sharding. Incompatible with the N-copy
  // architecture (which is itself a sharding scheme) and protocol "rpc".
  int shards = 0;

  // ---- Resilience plane ----
  // Honor X-Hynet-Deadline-Ms request budgets: requests that arrive (or
  // finish) past their deadline are answered 504 instead of doing (or
  // serving) dead work, and the running request's deadline is visible to
  // downstream clients via CurrentRequestDeadline() so inter-tier calls
  // can fast-fail and forward the decremented budget. Off by default: the
  // admission wrapper is not even installed, so the paper's benchmark
  // paths are untouched.
  bool deadline_propagation = false;
  // Safety margin (ms) reserved out of every propagated deadline for the
  // response's return leg: the request is treated as expired once fewer
  // than this many ms remain, so a response finished "just in time" by the
  // server's clock is not already dead on arrival at the caller after wire
  // transit (and after the uncharged request legs a retried attempt has
  // accumulated). 0 = enforce the raw deadline.
  int deadline_margin_ms = 0;
  // CoDel-style queue-delay shedding: when > 0, a request whose dispatch
  // sojourn (worker-queue wait, or event-loop dispatch lag) has stayed
  // above this target for shed_interval_ms is answered 503 + Retry-After.
  // Replaces count-only max_connections as the *saturation* signal; the
  // connection cap remains the admission backstop. 0 disables.
  int shed_target_delay_ms = 0;
  int shed_interval_ms = 100;

  // True when any resilience feature needs the admission wrapper (and the
  // per-dispatch timestamps that feed it).
  bool ResilienceEnabled() const {
    return deadline_propagation || shed_target_delay_ms > 0;
  }

  // ---- I/O engine ----
  // Which IoBackend every EventLoop of this server uses: "" (resolve via
  // HYNET_IO_BACKEND, else epoll), "epoll", or "uring". A uring request on
  // a kernel/sandbox that cannot run it logs a warning and falls back to
  // epoll (visible as uring_fallbacks in the counters) rather than failing
  // startup. Thread-per-connection has no event loop and ignores this.
  std::string io_backend;
  // How the EventLoop architectures drive a uring engine: "" or
  // "completion" (the default — engine-owned reads and queued SENDMSG
  // writes through the per-loop CompletionPump) or "readiness" (the
  // POLL_ADD shim + plain read()/write(), for A/B comparison with the
  // completion plane). Ignored when the resolved engine is epoll.
  std::string uring_mode;

  // ---- Protocol plane ----
  // Wire protocol the server speaks: "" / "http" (the default, the paper's
  // HTTP/1.1 plane) or "rpc" (the multiplexed binary framing of
  // proto/rpc_codec.h, served by app/rpc_server.cc). "rpc" requires the
  // ServiceRegistry factory overload and a kMultiLoop or kHybrid
  // architecture (the only chassis with the loop/worker split the routes
  // need).
  std::string protocol;
  // Per-method routing overrides for protocol == "rpc". Unlisted methods
  // default to kAuto under kHybrid (runtime classification) and kReactor
  // under kMultiLoop. Duplicate method_ids are a Validate() error.
  std::vector<MethodRouteEntry> rpc_routes;
  // kAuto classification, CPU axis: a method whose observed handler CPU
  // time exceeds this many microseconds is reclassified heavy (routed to
  // the worker pool) even if its responses never write-spin; symmetric
  // drift back below the threshold demotes it again. Complements
  // hybrid_heavy_write_threshold, which catches the write axis. <= 0
  // disables the CPU axis.
  double rpc_heavy_cpu_us = 100.0;

  // Returns every problem with this config (empty = valid). CreateServer
  // calls it and throws std::invalid_argument with the joined message —
  // the single gate replacing per-architecture scattered checks.
  std::vector<std::string> Validate() const;
};

// The one list of ServerCounters fields. Everything derived from the
// struct — AccumulateCounters, deltas, rows, the registry view — is
// generated from these X-macros, so adding a counter here updates all of
// them together (the silent-mismatch hazard this replaces).
//
// Core counters filled directly by each architecture's Snapshot():
//   connections_accepted / connections_closed
//   requests_handled / responses_sent
//   write_calls / zero_writes      — socket write() anatomy (Table IV)
//   writev_calls / iov_segments    — vectored-write anatomy: syscalls that
//                                  coalesced a batch, and how many iovec
//                                  segments they carried
//   spin_capped_flushes            — flushes stopped by write_spin_cap
//   logical_switches               — user-space handoffs (Table II)
//   light_path_responses / heavy_path_responses / reclassifications
//                                  — hybrid-only path accounting
//   dispatch_batches               — reactor→worker handoffs (each carries
//                                  1..dispatch_batch events in one wake)
//   wakeup_writes_issued / wakeup_writes_elided
//                                  — eventfd writes performed vs skipped by
//                                  wakeup coalescing, summed over loops
//   read_calls                     — socket read()/recv() syscalls issued by
//                                  the epoll read paths (zero on the uring
//                                  completion path, where reads ride SQEs)
//   loop_iterations                — EventLoop wait returns, summed over
//                                  loops (the epoll engine's epoll_wait
//                                  syscall count)
//   uring_submit_batches           — io_uring_enter calls (each submits the
//                                  iteration's SQE batch and/or reaps CQEs;
//                                  the uring engine's whole kernel-crossing
//                                  budget)
//   uring_sqes_submitted / uring_cqes_reaped
//                                  — SQEs handed to the kernel and CQEs
//                                  consumed, for batch-depth ratios
//   uring_fallbacks                — loops that requested uring but fell
//                                  back to epoll at startup probing
//   uring_eintr_retries / uring_ebusy_retries
//                                  — io_uring_enter calls retried after a
//                                  signal / after the NODROP completion
//                                  backlog demanded reaping
//   uring_feature_fallbacks        — optional engine features (SQPOLL,
//                                  buffer ring, SEND_ZC, registered files)
//                                  wanted but downgraded at setup probing
//   uring_zc_downgrades            — zero-copy sends the kernel rejected
//                                  at runtime (engine reverts to copying
//                                  SENDMSG for the rest of its life)
//   uring_zc_sends / uring_zc_bytes
//                                  — SENDMSG_ZC ops submitted and the
//                                  payload bytes they covered (the copies
//                                  avoided at 100KB+ responses)
//   uring_zc_copied                — zero-copy sends the kernel completed
//                                  by copying after all (unpinnable pages;
//                                  reported via IORING_SEND_ZC_REPORT_USAGE)
//   uring_bufring_exhausted        — reads that found the provided buffer
//                                  ring empty (ENOBUFS) and fell back to an
//                                  engine-owned buffer for that arm
//   rpc_requests                   — RPC frames decoded and dispatched to a
//                                  service handler (protocol == "rpc")
//   rpc_inflight_peak              — highest number of simultaneously
//                                  in-flight requests observed on any one
//                                  connection (multiplexing depth actually
//                                  reached, not just offered)
//   rpc_out_of_order_responses     — responses completed off arrival order
//                                  on their connection (the reordering that
//                                  multiplexed ids exist to permit)
#define HYNET_SERVER_CORE_COUNTER_FIELDS(X) \
  X(connections_accepted)                   \
  X(connections_closed)                     \
  X(requests_handled)                       \
  X(responses_sent)                         \
  X(write_calls)                            \
  X(zero_writes)                            \
  X(writev_calls)                           \
  X(iov_segments)                           \
  X(spin_capped_flushes)                    \
  X(logical_switches)                       \
  X(light_path_responses)                   \
  X(heavy_path_responses)                   \
  X(reclassifications)                      \
  X(dispatch_batches)                       \
  X(wakeup_writes_issued)                   \
  X(wakeup_writes_elided)                   \
  X(read_calls)                             \
  X(loop_iterations)                        \
  X(uring_submit_batches)                   \
  X(uring_sqes_submitted)                   \
  X(uring_cqes_reaped)                      \
  X(uring_fallbacks)                        \
  X(uring_eintr_retries)                    \
  X(uring_ebusy_retries)                    \
  X(uring_feature_fallbacks)                \
  X(uring_zc_downgrades)                    \
  X(uring_zc_sends)                         \
  X(uring_zc_bytes)                         \
  X(uring_zc_copied)                        \
  X(uring_bufring_exhausted)                \
  X(rpc_requests)                           \
  X(rpc_inflight_peak)                      \
  X(rpc_out_of_order_responses)

// Lifecycle / overload-protection counters. Names match the LifecycleStats
// atomics field-for-field; ExportLifecycle is generated from this list.
// The resilience-plane fields at the tail are incremented by the Server
// admission wrapper (sheds_queue_delay, deadline_expired) and by the
// rubbos tiers' retry/breaker hooks via Server::lifecycle_stats().
// breaker_state is a *state* (0 closed / 1 open / 2 half-open), stored
// rather than accumulated; only the rubbos tiers (which never aggregate
// across copies) set it, so the field-wise sums stay meaningful.
// The mesh-plane fields (cache_* / mesh_*) are incremented by the tier's
// ResponseCache, FanoutCall, and RpcChannel instances via BindLifecycle.
#define HYNET_SERVER_LIFECYCLE_FIELDS(X) \
  X(idle_evictions)                      \
  X(header_evictions)                    \
  X(write_stall_evictions)               \
  X(shed_connections)                    \
  X(accept_pauses)                       \
  X(backpressure_pauses)                 \
  X(backpressure_resumes)                \
  X(oversize_requests)                   \
  X(half_close_reclaims)                 \
  X(cold_reclaims)                       \
  X(cold_revivals)                       \
  X(drained_connections)                 \
  X(forced_closes)                       \
  X(sheds_queue_delay)                   \
  X(deadline_expired)                    \
  X(retries_issued)                      \
  X(retry_budget_exhausted)              \
  X(breaker_state)                       \
  X(degraded_responses)                  \
  X(cache_hits)                          \
  X(cache_misses)                        \
  X(cache_evictions)                     \
  X(cache_singleflight_waits)            \
  X(mesh_fanout_calls)                   \
  X(mesh_partial_failures)               \
  X(mesh_channel_reconnects)

#define HYNET_SERVER_COUNTER_FIELDS(X)  \
  HYNET_SERVER_CORE_COUNTER_FIELDS(X)   \
  HYNET_SERVER_LIFECYCLE_FIELDS(X)

// Monotonic counters exported by every server. Snapshot-copyable.
struct ServerCounters {
#define HYNET_DECLARE_COUNTER_FIELD(field) uint64_t field = 0;
  HYNET_SERVER_COUNTER_FIELDS(HYNET_DECLARE_COUNTER_FIELD)
#undef HYNET_DECLARE_COUNTER_FIELD
};

#define HYNET_COUNT_COUNTER_FIELD(field) +1
inline constexpr size_t kServerCounterFieldCount =
    0 HYNET_SERVER_COUNTER_FIELDS(HYNET_COUNT_COUNTER_FIELD);
#undef HYNET_COUNT_COUNTER_FIELD

// A field added to the struct by hand instead of the X-macro list would
// desynchronize every generated view; catch it at compile time.
static_assert(sizeof(ServerCounters) ==
                  kServerCounterFieldCount * sizeof(uint64_t),
              "ServerCounters fields must come from "
              "HYNET_SERVER_COUNTER_FIELDS");

// Field-wise sum, for aggregating per-copy/per-tier snapshots.
void AccumulateCounters(ServerCounters& into, const ServerCounters& c);

class EventLoop;

// Adds one EventLoop's I/O-engine counters into a Snapshot:
// loop_iterations (its wait-return count) plus the uring_* engine stats.
// The wakeup_writes_* counters stay with each architecture's existing
// per-loop sums. Call once per loop the server owns.
void AccumulateLoopIoStats(ServerCounters& c, const EventLoop& loop);

struct TimerWheelSpec;

// Timer-wheel geometry for a server's event loops: explicit config values
// when set, otherwise slots derived from max_connections (one slot per
// ~64 expected connections, clamped to [512, 16384]) at the 10ms tick.
TimerWheelSpec WheelSpecFor(const ServerConfig& config);

// Field-wise delta (a - b), for before/after measurement windows.
ServerCounters operator-(const ServerCounters& a, const ServerCounters& b);

// Every counter as a named row, for table printing via
// metrics/report.cc PrintCounterTable.
std::vector<std::pair<std::string, uint64_t>> CounterRows(
    const ServerCounters& c);

// The lifecycle subset of CounterRows (the PR-1 report format).
std::vector<std::pair<std::string, uint64_t>> LifecycleCounterRows(
    const ServerCounters& c);

// Rebuilds a ServerCounters view from a registry scrape: each field is
// read from the `server_<field>` counter that the Server base collector
// exports. Scraped values therefore match Snapshot() by construction.
ServerCounters CountersFromRegistry(const MetricsSnapshot& snap);

// Outcome of a graceful drain (Server::Shutdown).
struct DrainResult {
  uint64_t drained = 0;  // connections that finished and closed cleanly
  uint64_t forced = 0;   // stragglers force-closed at the deadline
};

class Server {
 public:
  Server(ServerConfig config, Handler handler);
  virtual ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Begins listening; returns once the port is bound and all architecture
  // threads are running. Throws std::system_error on setup failure.
  virtual void Start() = 0;
  // Stops accepting, closes connections, joins all threads. Idempotent.
  virtual void Stop() = 0;

  // Graceful drain: closes the acceptor, lets in-flight requests finish
  // (responses during a drain carry `Connection: close`), force-closes
  // stragglers at the deadline, then fully stops the server. The default
  // implementation is an immediate Stop() with nothing drained.
  virtual DrainResult Shutdown(Duration drain_deadline) {
    (void)drain_deadline;
    Stop();
    return {};
  }

  // The bound port (valid after Start()).
  virtual uint16_t Port() const = 0;

  // Linux tids of all server-owned threads, for /proc metrics scoped to
  // the server while client threads share the process.
  virtual std::vector<int> ThreadIds() const = 0;

  virtual ServerCounters Snapshot() const = 0;

  // Entries currently parked across this server's event-loop timer wheels
  // (the timer_wheel_entries gauge). Loop-owning architectures override.
  virtual uint64_t TimerWheelEntries() const { return 0; }

  const ServerConfig& config() const { return config_; }

  // Request-anatomy profiler (populated when config.profile_phases).
  const PhaseProfiler& phase_profiler() const { return phase_profiler_; }

  // The server's metrics registry. Always present; native hot-path
  // histograms record into it and a collector contributes the Snapshot()
  // counters as `server_<field>` at scrape time.
  MetricsRegistry& metrics() const { return *metrics_; }

  // The registry as a shared handle, for wrappers (N-copy) that point
  // child servers at it via AdoptMetricsRegistry.
  std::shared_ptr<MetricsRegistry> SharedMetrics() const { return metrics_; }

  // Replaces the registry (and re-resolves cached metric handles) so
  // multiple servers can share one — the N-copy wrapper points every copy
  // at the parent's registry. Call before Start(); the collectors already
  // registered on the old registry are discarded with it.
  void AdoptMetricsRegistry(std::shared_ptr<MetricsRegistry> registry);

  // Bound admin-plane port; 0 when the plane is disabled or not started.
  uint16_t AdminPort() const;

  // True while Shutdown() is draining; /healthz reports it.
  bool Draining() const { return draining_.load(std::memory_order_relaxed); }

  // True while the queue-delay shedder is in its shedding state; /healthz
  // reports it as `overloaded`, distinct from `draining`.
  bool Overloaded() const;

  // The lifecycle/overload counters, exposed so out-of-tree handler hooks
  // (the rubbos tiers' retry and breaker accounting) can ride the same
  // X-macro export as the built-in admission paths.
  LifecycleStats& lifecycle_stats() const { return lifecycle_; }

 protected:
  // Applies per-connection socket options from the config.
  void ConfigureAcceptedFd(int fd) const;

  // Copies the lifecycle counters into a Snapshot.
  void ExportLifecycle(ServerCounters& c) const;

  // Best-effort 503 on a just-accepted socket that exceeded
  // max_connections; the socket closes when it goes out of scope.
  void ShedWith503(int fd);

  // Starts / stops the admin endpoint when config.admin_port >= 0. Each
  // architecture calls these at the end of Start() and the top of Stop()
  // so no scrape can observe a half-torn-down server.
  void StartAdminPlane();
  void StopAdminPlane();

  // Unregisters this server's own Snapshot() collector from its registry.
  // The sharded wrapper calls it because its scrape-time shard merge
  // already carries every shard's server_* counters — contributing the
  // parent's child-summing Snapshot() too would double every value.
  void DropSnapshotCollector();

  ServerConfig config_;
  Handler handler_;
  mutable PhaseProfiler phase_profiler_;
  mutable LifecycleStats lifecycle_;
  // Set while Shutdown drains; response paths force `Connection: close`.
  std::atomic<bool> draining_{false};

  // Hot-path histograms, resolved once from metrics_ (re-resolved on
  // AdoptMetricsRegistry). Recording is a few relaxed fetch_adds on a
  // per-thread shard — cheap enough to stay on unconditionally.
  HistogramMetric* request_latency_ns_ = nullptr;
  HistogramMetric* writes_per_response_ = nullptr;

 private:
  static constexpr size_t kNoCollector = static_cast<size_t>(-1);

  void ResolveMetricHandles();
  void ContributeSnapshot(MetricsBatch& batch) const;
  // Wraps handler_ with the deadline/shedding admission checks when
  // config_.ResilienceEnabled(). Installed once in the constructor, so
  // every architecture (including the multi-loop pipeline, which holds a
  // reference to handler_) runs behind the same wrapper.
  void InstallResiliencePlane();

  std::unique_ptr<QueueDelayShedder> shedder_;

  std::shared_ptr<MetricsRegistry> metrics_;
  std::unique_ptr<AdminServer> admin_;
  size_t collector_id_ = kNoCollector;
};

// The one public factory: creates any of the eight architectures
// (including kHybrid), gated by ServerConfig::Validate() — throws
// std::invalid_argument listing every config error.
std::unique_ptr<Server> CreateServer(const ServerConfig& config,
                                     Handler handler);

class ServiceRegistry;

// Protocol-plane factory: serves `services` over the multiplexed RPC
// framing (config.protocol must be "" or "rpc"; the architecture must be
// kMultiLoop or kHybrid). Same Validate() gate as the Handler overload.
// Defined in the hynet_app library (app/rpc_server.cc).
std::unique_ptr<Server> CreateServer(const ServerConfig& config,
                                     ServiceRegistry services);

}  // namespace hynet
