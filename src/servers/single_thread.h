// SingleT-Async: one thread runs both the event-monitoring and the
// event-handling phase (the Node.js / Lighttpd design from Section II-A).
//
// The write path is deliberately the naive one the paper studies: after
// preparing a response the thread spin-writes it to completion
// (SpinWriteAll), so a response larger than the TCP send buffer glues the
// only thread to one connection — the write-spin problem of Section IV.
#pragma once

#include <atomic>
#include <memory>
#include <thread>
#include <unordered_map>

#include "io/completion_pump.h"
#include "net/acceptor.h"
#include "net/event_loop.h"
#include "runtime/buffer_pool.h"
#include "servers/conn_table.h"
#include "servers/connection.h"
#include "servers/server.h"

namespace hynet {

class SingleThreadServer final : public Server {
 public:
  SingleThreadServer(ServerConfig config, Handler handler);
  ~SingleThreadServer() override;

  void Start() override;
  void Stop() override;
  DrainResult Shutdown(Duration drain_deadline) override;
  uint16_t Port() const override { return port_; }
  std::vector<int> ThreadIds() const override;
  ServerCounters Snapshot() const override;
  uint64_t TimerWheelEntries() const override {
    return loop_ ? loop_->CoarseTimerCount() : 0;
  }

  // Exposed for tests: the server's event loop.
  EventLoop& loop() { return *loop_; }

 private:
  void OnNewConnection(Socket socket, const InetAddr& peer);
  void OnReadable(int fd, uint32_t events);
  // Completion-mode (io_uring) read hook: the pump appended the CQE's
  // bytes to conn.in; parse and queue responses. Returns false when the
  // connection closed.
  bool OnPumpReadable(int fd);
  // Completion-mode write-queue-drained hook: close-after-write and
  // half-close reclaim decisions.
  void OnPumpDrained(int fd);
  bool ParseAndQueue(int fd, Connection& conn);  // false = conn closed
  void CloseConnection(int fd);
  void ScheduleSweep();
  void SweepDeadlines();
  bool ConnIdle(const Connection& conn) const;
  uint64_t Live() const {
    return accepted_.load(std::memory_order_relaxed) -
           closed_.load(std::memory_order_relaxed);
  }

  std::unique_ptr<EventLoop> loop_;
  std::unique_ptr<Acceptor> acceptor_;
  std::thread loop_thread_;
  std::atomic<int> loop_tid_{0};
  uint16_t port_ = 0;
  std::atomic<bool> started_{false};

  std::unordered_map<int, std::unique_ptr<Connection>> conns_;
  // Bytes/conn accounting (loop thread only; gauges are shared-safe).
  ConnTable conn_table_;
  // Idle-cold reclamation threshold (zero = off).
  Duration cold_idle_{};
  // Read-buffer recycling across the accept→close churn (loop thread only).
  BufferPool buffer_pool_;
  // Must outlive loop_ (the engine returns its buffers on teardown).
  std::unique_ptr<PoolBufferSource> buffer_source_;
  // The per-loop CQE pump (completion mode only).
  std::unique_ptr<CompletionPump> pump_;
  bool completion_mode_ = false;
  LifecycleDeadlines deadlines_;
  bool accept_paused_ = false;  // loop thread only

  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> closed_{0};
  std::atomic<uint64_t> requests_{0};
  WriteStats write_stats_;
};

}  // namespace hynet
