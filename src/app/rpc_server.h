// RpcServer: the multiplexed binary-RPC plane on the LoopGroup chassis,
// with per-method execution routing.
//
// This generalizes HybridNetty's light/heavy request classes from "URL
// observed to write-spin" to *per-method routes* over three execution
// paths:
//
//   kInline  — handler on the connection's loop thread, response written
//              with the naive spin loop (SingleT-Async semantics). Fastest
//              for tiny responses; a large response glues the loop.
//   kReactor — handler on the loop thread, response through the buffered
//              spin-capped flush (NettyServer semantics). Per-message
//              bookkeeping, never glues the loop on writes.
//   kWorker  — handler on a worker pool, response marshaled back to the
//              loop thread and flushed buffered. Two logical switches per
//              request; the only path where handler CPU does not stall
//              the loop's other connections.
//   kAuto    — runtime classification per method, both axes of "heavy":
//              responses that write-spin past hybrid_heavy_write_threshold
//              (the paper's signal) OR handlers whose completion takes
//              longer than rpc_heavy_cpu_us. Light methods run kInline-
//              style with a capped direct write; heavy methods run
//              kWorker-style. Drift reclassifies in both directions.
//
// Requests are multiplexed: any number may be in flight per connection
// and responses go out in *completion* order. A connection's in-flight
// requests (executing on the worker pool) keep it alive through
// half-close and drain (see LoopGroupServer::HasPendingWork).
#pragma once

#include <deque>
#include <memory>
#include <unordered_map>

#include "app/service.h"
#include "core/classifier.h"
#include "runtime/worker_pool.h"
#include "servers/multi_loop.h"

namespace hynet {

class RpcServer final : public LoopGroupServer {
 public:
  // config.protocol must be "rpc" (CreateServer fills it in); the
  // architecture decides the default route for unlisted methods: kHybrid →
  // kAuto, kMultiLoop → kReactor.
  RpcServer(ServerConfig config, ServiceRegistry services);
  ~RpcServer() override;

  void Start() override;
  void Stop() override;
  std::vector<int> ThreadIds() const override;
  ServerCounters Snapshot() const override;

  // The per-method classification map (kAuto routes), for tests and the
  // bench report.
  const RequestClassifier& classifier() const { return classifier_; }

 protected:
  void OnConnectionEstablished(LoopConn& lc) override;
  void OnBytes(LoopConn& lc) override;
  bool HasPendingWork(const LoopConn& lc) const override;

 private:
  struct ConnState;

  static ConnState& StateOf(LoopConn& lc);
  RpcRoute RouteFor(uint16_t method_id) const;
  void DispatchFrame(LoopConn& lc, RpcFrame frame);
  // Completion path; always runs on the connection's loop thread.
  // exec_ns is the handler's own running time when known (worker path),
  // -1 otherwise.
  void CompleteRequest(LoopConn& lc, uint64_t request_id, uint16_t method_id,
                       uint8_t request_flags, const std::string& method_name,
                       RpcRoute route, bool auto_routed, int64_t start_ns,
                       int64_t exec_ns, ServiceResponse response);
  // Capped direct write (the hybrid light path): true on kLight-style
  // completion, false when the remainder was handed to the buffer or the
  // connection died. writes_used reports the write() calls spent.
  bool TryDirectWrite(LoopConn& lc, Payload payload, int* writes_used);

  ServiceRegistry services_;
  RequestClassifier classifier_;
  std::unordered_map<uint16_t, RpcRoute> routes_;
  RpcRoute default_route_;
  double heavy_cpu_us_;
  std::unique_ptr<WorkerPool> pool_;

  std::atomic<uint64_t> rpc_requests_{0};
  std::atomic<uint64_t> inflight_peak_{0};
  std::atomic<uint64_t> out_of_order_{0};
};

}  // namespace hynet
