// KV service over the RPC protocol plane: Lookup / Read / Write.
//
// The three methods are deliberately a light/heavy spectrum, the
// per-method analogue of the paper's request types:
//
//   Lookup — existence + size check; tiny response, ~zero CPU: the light
//            method that wants inline reactor dispatch.
//   Read   — returns the stored value; with 10–100 KB values the response
//            write-spins past the TCP send buffer: heavy on the write axis.
//   Write  — stores a value and pays a configurable CPU cost modeling
//            index maintenance: heavy on the CPU axis (an event loop that
//            runs it inline stalls every pipelined request behind it).
//
// Request payload encodings (little-endian):
//   Lookup / Read:  the key bytes, verbatim.
//   Write:          u16 key_len | key | value bytes.
// Response payloads:
//   Lookup: "1:<size>" or miss → status kNotFound, empty payload.
//   Read:   the value via the shared zero-copy body (miss → kNotFound).
//   Write:  empty payload, status kOk.
#pragma once

#include <memory>

#include "app/kv_store.h"
#include "app/service.h"

namespace hynet {

// Method ids (the classifier keys are the registered names).
inline constexpr uint16_t kKvMethodLookup = 1;
inline constexpr uint16_t kKvMethodRead = 2;
inline constexpr uint16_t kKvMethodWrite = 3;

struct KvServiceOptions {
  // CPU burned by each Write before acknowledging (microseconds), modeling
  // index/replication work — the "simple computation" of the paper's
  // handler, here concentrated on one method so per-method routing has a
  // CPU-heavy type to discover. 0 disables.
  double write_cpu_us = 0;
};

// Registers the three methods against `store`. Handlers complete
// synchronously (SyncService-style) — the *routing* decides which thread
// runs them; a Read served from the worker pool finishes its writer there
// and the response marshals back to the connection's loop.
ServiceRegistry MakeKvService(std::shared_ptr<KvStore> store,
                              KvServiceOptions options = {});

// Client-side request payload builders (shared by the load generator,
// tools, and tests).
std::string EncodeKvWritePayload(std::string_view key, std::string_view value);

// Decodes a Write payload; returns false when malformed (short header,
// key_len past the end).
bool DecodeKvWritePayload(std::string_view payload, std::string_view* key,
                          std::string_view* value);

}  // namespace hynet
