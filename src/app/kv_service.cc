#include "app/kv_service.h"

#include "common/thread_util.h"

namespace hynet {

std::string EncodeKvWritePayload(std::string_view key, std::string_view value) {
  std::string out;
  out.reserve(2 + key.size() + value.size());
  out.push_back(static_cast<char>(key.size() & 0xff));
  out.push_back(static_cast<char>((key.size() >> 8) & 0xff));
  out.append(key);
  out.append(value);
  return out;
}

bool DecodeKvWritePayload(std::string_view payload, std::string_view* key,
                          std::string_view* value) {
  if (payload.size() < 2) return false;
  const size_t key_len = static_cast<uint8_t>(payload[0]) |
                         (static_cast<size_t>(static_cast<uint8_t>(payload[1]))
                          << 8);
  if (2 + key_len > payload.size()) return false;
  *key = payload.substr(2, key_len);
  *value = payload.substr(2 + key_len);
  return true;
}

ServiceRegistry MakeKvService(std::shared_ptr<KvStore> store,
                              KvServiceOptions options) {
  ServiceRegistry registry;

  registry.Register(
      kKvMethodLookup, "Lookup",
      [store](ServiceRequest req, ResponseWriter writer) {
        const auto value = store->Get(req.payload);
        if (!value) {
          writer.Finish(RpcStatus::kNotFound);
          return;
        }
        writer.Finish(RpcStatus::kOk,
                      "1:" + std::to_string(value->size()));
      });

  registry.Register(
      kKvMethodRead, "Read",
      [store](ServiceRequest req, ResponseWriter writer) {
        auto value = store->Get(req.payload);
        if (!value) {
          writer.Finish(RpcStatus::kNotFound);
          return;
        }
        // The stored allocation becomes the response body segment; the
        // serializer references it in place (zero copies per response).
        writer.Finish(RpcStatus::kOk, std::move(value));
      });

  registry.Register(
      kKvMethodWrite, "Write",
      [store, cpu_us = options.write_cpu_us](ServiceRequest req,
                                             ResponseWriter writer) {
        std::string_view key, value;
        if (!DecodeKvWritePayload(req.payload, &key, &value)) {
          writer.Finish(RpcStatus::kBadRequest);
          return;
        }
        if (cpu_us > 0) BurnCpuMicros(cpu_us);
        store->Put(key, std::string(value));
        writer.Finish(RpcStatus::kOk);
      });

  return registry;
}

}  // namespace hynet
