// Sharded in-memory key-value store serving refcounted shared values.
//
// Values are immutable std::shared_ptr<const std::string>: Get() hands the
// caller a reference to the stored allocation, which the RPC response path
// mounts directly as a Payload body segment — a hot key served to
// thousands of connections is one allocation, zero per-response copies.
// Shards are independent mutex domains so a Zipf-skewed read mix scales
// across loops and worker threads without a global lock.
#pragma once

#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace hynet {

class KvStore {
 public:
  explicit KvStore(size_t shards = 16);
  KvStore(const KvStore&) = delete;
  KvStore& operator=(const KvStore&) = delete;

  // Stores (or replaces) a value. The string is moved into a shared
  // allocation; readers holding the old value keep it alive until their
  // responses drain (immutability makes the swap safe mid-serve).
  void Put(std::string_view key, std::string value);

  // nullptr when absent.
  std::shared_ptr<const std::string> Get(std::string_view key) const;

  bool Contains(std::string_view key) const { return Get(key) != nullptr; }
  bool Erase(std::string_view key);

  size_t Size() const;
  size_t ShardCount() const { return shards_.size(); }

  // Fills the store with `count` keys "<prefix><i>" of `value_bytes` each
  // (deterministic printable content), the Zipf-friendly benchmark corpus.
  void Preload(size_t count, size_t value_bytes,
               std::string_view prefix = "key-");

  // Key naming used by Preload and the load generator.
  static std::string PreloadKey(size_t index, std::string_view prefix = "key-");

 private:
  struct StringHash {
    using is_transparent = void;
    size_t operator()(std::string_view sv) const {
      return std::hash<std::string_view>{}(sv);
    }
  };

  struct Shard {
    mutable std::shared_mutex mu;
    std::unordered_map<std::string, std::shared_ptr<const std::string>,
                       StringHash, std::equal_to<>>
        map;
  };

  const Shard& ShardFor(std::string_view key) const {
    return shards_[std::hash<std::string_view>{}(key) % shards_.size()];
  }
  Shard& ShardFor(std::string_view key) {
    return shards_[std::hash<std::string_view>{}(key) % shards_.size()];
  }

  std::vector<Shard> shards_;
};

}  // namespace hynet
