#include "app/kv_store.h"

#include <algorithm>
#include <mutex>

namespace hynet {

KvStore::KvStore(size_t shards) : shards_(std::max<size_t>(1, shards)) {}

void KvStore::Put(std::string_view key, std::string value) {
  auto shared = std::make_shared<const std::string>(std::move(value));
  Shard& shard = ShardFor(key);
  std::unique_lock lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    shard.map.emplace(std::string(key), std::move(shared));
  } else {
    it->second = std::move(shared);
  }
}

std::shared_ptr<const std::string> KvStore::Get(std::string_view key) const {
  const Shard& shard = ShardFor(key);
  std::shared_lock lock(shard.mu);
  auto it = shard.map.find(key);
  return it == shard.map.end() ? nullptr : it->second;
}

bool KvStore::Erase(std::string_view key) {
  Shard& shard = ShardFor(key);
  std::unique_lock lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) return false;
  shard.map.erase(it);
  return true;
}

size_t KvStore::Size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::shared_lock lock(shard.mu);
    total += shard.map.size();
  }
  return total;
}

std::string KvStore::PreloadKey(size_t index, std::string_view prefix) {
  return std::string(prefix) + std::to_string(index);
}

void KvStore::Preload(size_t count, size_t value_bytes,
                      std::string_view prefix) {
  for (size_t i = 0; i < count; ++i) {
    std::string value(value_bytes, 'a' + static_cast<char>(i % 26));
    Put(PreloadKey(i, prefix), std::move(value));
  }
}

}  // namespace hynet
