// Protocol-agnostic service layer: the completion-based handler API.
//
// The HTTP plane's `Handler = void(const HttpRequest&, HttpResponse&)` is
// synchronous by construction: the response must be complete when the
// handler returns, so a handler can never hand work to another thread and
// finish later — exactly the async dispatch the paper studies. This layer
// redesigns the contract around completion:
//
//   ServiceHandler = void(ServiceRequest, ResponseWriter)
//
// The handler may call ResponseWriter::Finish() before returning (the
// synchronous case, zero overhead on the inline path) or retain the writer
// and Finish() later *from any thread* — the server marshals the response
// back to the connection's event loop and writes it in completion order,
// out of order with respect to arrival. A writer destroyed without
// Finish() auto-completes with RpcStatus::kError so a buggy handler can
// never leak an in-flight request.
//
// Synchronous request→response functions (the old Handler style) keep
// working through the SyncService adapter.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "proto/rpc_codec.h"

namespace hynet {

// One decoded invocation, protocol-independent: the RPC plane fills it
// from a frame; an adapter could fill it from any other framing.
struct ServiceRequest {
  uint64_t request_id = 0;
  uint16_t method_id = 0;
  uint8_t flags = 0;
  std::string payload;  // moved in from the wire; owned by the handler
};

// The completed response. `shared_body` rides the Payload zero-copy path:
// a KV value served to a thousand connections is one allocation referenced
// a thousand times, never copied per response. `body` carries per-response
// dynamic bytes (moved, not copied).
struct ServiceResponse {
  RpcStatus status = RpcStatus::kOk;
  std::shared_ptr<const std::string> shared_body;
  std::string body;
};

// Move-only completion handle. Finish() may be called at most once, from
// any thread, at any time after the handler was invoked; the sink installed
// by the server is thread-safe (it posts to the connection's event loop
// when called off-loop). Destroying an unfinished writer completes the
// request with RpcStatus::kError.
class ResponseWriter {
 public:
  using Sink = std::function<void(ServiceResponse)>;

  ResponseWriter() = default;
  explicit ResponseWriter(Sink sink);
  ResponseWriter(ResponseWriter&&) noexcept = default;
  ResponseWriter& operator=(ResponseWriter&&) noexcept = default;
  ResponseWriter(const ResponseWriter&) = delete;
  ResponseWriter& operator=(const ResponseWriter&) = delete;
  ~ResponseWriter();

  // Completes the request. Exactly-once: a second call is ignored (and
  // logged in debug builds would be overkill; it is simply dropped).
  void Finish(ServiceResponse response);

  // Convenience overloads for the common shapes.
  void Finish(RpcStatus status, std::string body = {});
  void Finish(RpcStatus status, std::shared_ptr<const std::string> shared);

  bool valid() const { return state_ != nullptr; }

 private:
  struct State {
    Sink sink;
    bool finished = false;
  };
  std::unique_ptr<State> state_;
};

// The redesigned application API.
using ServiceHandler = std::function<void(ServiceRequest, ResponseWriter)>;

// Adapter keeping the old synchronous style working: wraps a plain
// request→response function as a ServiceHandler that finishes inline.
ServiceHandler SyncService(
    std::function<void(const ServiceRequest&, ServiceResponse&)> fn);

// Method table an application registers with the RPC server. Copyable
// (entries are shared) so configs and factories can pass it by value.
class ServiceRegistry {
 public:
  struct Method {
    uint16_t method_id = 0;
    std::string name;  // classifier key and display name
    ServiceHandler handler;
  };

  // Registers (or replaces) a method.
  void Register(uint16_t method_id, std::string name, ServiceHandler handler);

  // nullptr when the method is unknown (the server answers kBadMethod and
  // the connection survives).
  const Method* Find(uint16_t method_id) const;

  // Method name for classifier keys; "m:<id>" for unregistered ids.
  const std::string& Name(uint16_t method_id) const;

  size_t Size() const { return methods_ ? methods_->size() : 0; }
  bool Empty() const { return Size() == 0; }

 private:
  using Map = std::unordered_map<uint16_t, std::shared_ptr<const Method>>;
  std::shared_ptr<Map> methods_;
};

}  // namespace hynet
