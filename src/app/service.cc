#include "app/service.h"

namespace hynet {

ResponseWriter::ResponseWriter(Sink sink)
    : state_(std::make_unique<State>()) {
  state_->sink = std::move(sink);
}

ResponseWriter::~ResponseWriter() {
  // A handler that dropped its writer still owes the peer a response:
  // auto-complete with kError so the request id is never left in flight.
  if (state_ && !state_->finished && state_->sink) {
    ServiceResponse resp;
    resp.status = RpcStatus::kError;
    state_->sink(std::move(resp));
  }
}

void ResponseWriter::Finish(ServiceResponse response) {
  if (!state_ || state_->finished) return;
  state_->finished = true;
  if (state_->sink) state_->sink(std::move(response));
}

void ResponseWriter::Finish(RpcStatus status, std::string body) {
  ServiceResponse resp;
  resp.status = status;
  resp.body = std::move(body);
  Finish(std::move(resp));
}

void ResponseWriter::Finish(RpcStatus status,
                            std::shared_ptr<const std::string> shared) {
  ServiceResponse resp;
  resp.status = status;
  resp.shared_body = std::move(shared);
  Finish(std::move(resp));
}

ServiceHandler SyncService(
    std::function<void(const ServiceRequest&, ServiceResponse&)> fn) {
  return [fn = std::move(fn)](ServiceRequest req, ResponseWriter writer) {
    ServiceResponse resp;
    fn(req, resp);
    writer.Finish(std::move(resp));
  };
}

void ServiceRegistry::Register(uint16_t method_id, std::string name,
                               ServiceHandler handler) {
  // Copy-on-write: registries are copied into servers by value; mutating
  // a registry after handing it off must not change the server's table.
  if (!methods_) {
    methods_ = std::make_shared<Map>();
  } else if (methods_.use_count() > 1) {
    methods_ = std::make_shared<Map>(*methods_);
  }
  auto m = std::make_shared<Method>();
  m->method_id = method_id;
  m->name = std::move(name);
  m->handler = std::move(handler);
  (*methods_)[method_id] = std::move(m);
}

const ServiceRegistry::Method* ServiceRegistry::Find(uint16_t method_id) const {
  if (!methods_) return nullptr;
  auto it = methods_->find(method_id);
  return it == methods_->end() ? nullptr : it->second.get();
}

const std::string& ServiceRegistry::Name(uint16_t method_id) const {
  static const std::string kUnknown = "m:?";
  const Method* m = Find(method_id);
  return m ? m->name : kUnknown;
}

}  // namespace hynet
