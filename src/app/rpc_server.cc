#include "app/rpc_server.h"

#include <algorithm>
#include <stdexcept>

#include "common/deadline.h"
#include "common/logging.h"
#include "net/socket.h"

namespace hynet {

// Per-connection protocol state, hung on LoopConn::proto_state. Every
// field is owned by the connection's loop thread; worker-pool completions
// reach it only via RunInLoop.
struct RpcServer::ConnState {
  RpcFrameParser parser;
  // Request ids in arrival order, awaiting completion. A completion that
  // is not the front is an out-of-order response — the reordering the
  // multiplexed framing exists to permit.
  std::deque<uint64_t> arrival_order;
  // In-flight requests, including those executing on the worker pool (the
  // chassis keeps the connection open while > 0).
  size_t inflight = 0;
  // Highest inflight seen on this connection.
  size_t peak = 0;
  // True while OnBytes is dispatching a frame with at least a frame header
  // of input still unparsed behind it: synchronous completions coalesce
  // into the output buffer and the pass epilogue flushes once, so a burst
  // of pipelined responses costs one writev instead of one per response.
  bool batching = false;
  // A coalesced response is waiting for the pass epilogue's flush.
  bool flush_pending = false;
};

RpcServer::RpcServer(ServerConfig config, ServiceRegistry services)
    : LoopGroupServer(std::move(config), Handler{}),
      services_(std::move(services)),
      heavy_cpu_us_(config_.rpc_heavy_cpu_us) {
  for (const MethodRouteEntry& e : config_.rpc_routes) {
    routes_[e.method_id] = e.route;
  }
  default_route_ = config_.architecture == ServerArchitecture::kHybrid
                       ? RpcRoute::kAuto
                       : RpcRoute::kReactor;
}

RpcServer::~RpcServer() { Stop(); }

void RpcServer::Start() {
  // The pool exists even under all-inline route tables: explicit kWorker
  // entries and kAuto promotions can target it at any time.
  pool_ = std::make_unique<WorkerPool>(config_.worker_threads, "rpc-worker");
  LoopGroupServer::Start();
}

void RpcServer::Stop() {
  // Loop threads are the only dispatchers, so joining them first
  // guarantees no new Submit; draining the pool afterwards lets queued
  // handlers finish (their completions no-op once the conn tables are
  // cleared — the weak_ptr in each sink no longer resolves).
  LoopGroupServer::Stop();
  if (pool_) {
    pool_->Shutdown();
    pool_.reset();
  }
}

std::vector<int> RpcServer::ThreadIds() const {
  std::vector<int> tids = LoopGroupServer::ThreadIds();
  if (pool_) {
    const std::vector<int> workers = pool_->ThreadIds();
    tids.insert(tids.end(), workers.begin(), workers.end());
  }
  return tids;
}

ServerCounters RpcServer::Snapshot() const {
  ServerCounters c = LoopGroupServer::Snapshot();
  c.rpc_requests = rpc_requests_.load(std::memory_order_relaxed);
  c.rpc_inflight_peak = inflight_peak_.load(std::memory_order_relaxed);
  c.rpc_out_of_order_responses = out_of_order_.load(std::memory_order_relaxed);
  return c;
}

RpcServer::ConnState& RpcServer::StateOf(LoopConn& lc) {
  return *static_cast<ConnState*>(lc.proto_state.get());
}

bool RpcServer::HasPendingWork(const LoopConn& lc) const {
  const auto* st = static_cast<const ConnState*>(lc.proto_state.get());
  return st != nullptr && st->inflight > 0;
}

RpcRoute RpcServer::RouteFor(uint16_t method_id) const {
  const auto it = routes_.find(method_id);
  return it == routes_.end() ? default_route_ : it->second;
}

void RpcServer::OnConnectionEstablished(LoopConn& lc) {
  auto state = std::make_shared<ConnState>();
  // Reuse the HTTP body cap as the frame payload cap: one knob bounds
  // what a peer can make the server buffer, whatever the protocol.
  state->parser.SetLimits(config_.max_request_body_bytes);
  lc.proto_state = std::move(state);
}

void RpcServer::OnBytes(LoopConn& lc) {
  ConnState& st = StateOf(lc);
  while (true) {
    ParseStatus ps;
    {
      ScopedPhase phase(phase_profiler_, Phase::kParse);
      ps = st.parser.Parse(lc.conn.in);
    }
    if (ps == ParseStatus::kNeedMore) break;
    if (ps == ParseStatus::kError) {
      if (st.parser.error() == RpcParseError::kPayloadTooLarge) {
        // The full header parsed, so the id is known: tell the caller why
        // before closing. Framing cannot resync past an unread payload,
        // so the connection must die.
        lifecycle_.oversize_requests.fetch_add(1, std::memory_order_relaxed);
        const RpcFrameHeader& h = st.parser.frame().header;
        lc.conn.close_after_write = true;
        EnqueueAndFlush(lc, SerializeRpcResponsePayload(
                                h.request_id, h.method_id,
                                RpcStatus::kBadRequest, nullptr, {},
                                kRpcFlagClose));
        if (!lc.conn.closed && OutboundIdle(lc) && !HasPendingWork(lc)) {
          CloseConn(lc);
        }
      } else {
        // Bad magic: not our protocol (stray HTTP, garbage). Nothing to
        // answer — just drop the connection.
        CloseConn(lc);
      }
      break;
    }
    RpcFrame frame = std::move(st.parser.frame());
    // More frames (probably) behind this one: let synchronous completions
    // coalesce and flush once at the end of the pass.
    st.batching = lc.conn.in.ReadableBytes() >= kRpcHeaderSize;
    DispatchFrame(lc, std::move(frame));
    if (lc.conn.closed) break;
  }
  st.batching = false;
  if (!lc.conn.closed && st.flush_pending) {
    st.flush_pending = false;
    FlushEnqueued(lc);
    if (!lc.conn.closed && lc.conn.close_after_write && OutboundIdle(lc) &&
        !HasPendingWork(lc)) {
      CloseConn(lc);
    }
  }
}

void RpcServer::DispatchFrame(LoopConn& lc, RpcFrame frame) {
  ConnState& st = StateOf(lc);
  const uint64_t id = frame.header.request_id;
  const uint16_t method_id = frame.header.method_id;
  const uint8_t flags = frame.header.flags;

  rpc_requests_.fetch_add(1, std::memory_order_relaxed);
  requests_.fetch_add(1, std::memory_order_relaxed);
  st.arrival_order.push_back(id);
  if (++st.inflight > st.peak) {
    st.peak = st.inflight;
    uint64_t cur = inflight_peak_.load(std::memory_order_relaxed);
    while (st.peak > cur &&
           !inflight_peak_.compare_exchange_weak(cur, st.peak,
                                                 std::memory_order_relaxed)) {
    }
  }
  if (flags & kRpcFlagClose) lc.conn.close_after_write = true;

  const ServiceRegistry::Method* method = services_.Find(method_id);
  const int64_t start_ns = NowNanos();

  // Native deadline plane: the frame's deadline field is the RPC-side
  // X-Hynet-Deadline-Ms. Re-anchor the relative budget at this request's
  // effective start (dispatch stamp or loop tick, so epoll-batch lag
  // counts against the budget) and refuse work whose budget is already
  // gone — serving it would burn CPU for a caller that stopped waiting.
  Deadline deadline;
  if (config_.deadline_propagation && (flags & kRpcFlagDeadline)) {
    deadline = Deadline::FromMillis(frame.header.deadline_ms,
                                    EffectiveRequestStart(Now()));
    if (frame.header.deadline_ms == 0 ||
        deadline.RemainingMillis() <= config_.deadline_margin_ms) {
      lifecycle_.deadline_expired.fetch_add(1, std::memory_order_relaxed);
      CompleteRequest(lc, id, method_id, flags, services_.Name(method_id),
                      RpcRoute::kReactor, /*auto_routed=*/false, start_ns,
                      /*exec_ns=*/-1,
                      ServiceResponse{RpcStatus::kExpired, nullptr, {}});
      return;
    }
  }

  if (method == nullptr) {
    // Unknown method: answer kBadMethod; the connection (and every other
    // in-flight request on it) survives.
    CompleteRequest(lc, id, method_id, flags, services_.Name(method_id),
                    RpcRoute::kReactor, /*auto_routed=*/false, start_ns,
                    /*exec_ns=*/-1,
                    ServiceResponse{RpcStatus::kBadMethod, nullptr, {}});
    return;
  }

  RpcRoute route = RouteFor(method_id);
  bool auto_routed = false;
  if (route == RpcRoute::kAuto) {
    auto_routed = true;
    route = classifier_.Lookup(method->name) == PathCategory::kLight
                ? RpcRoute::kInline
                : RpcRoute::kWorker;
  }

  ServiceRequest req;
  req.request_id = id;
  req.method_id = method_id;
  req.flags = flags;
  req.payload = std::move(frame.payload);

  // The completion sink: safe from any thread. RunInLoop runs it inline
  // when the handler finishes synchronously on the loop thread (the
  // zero-overhead inline path) and marshals it otherwise. The weak_ptr
  // lets a connection die (peer reset mid-request) without the late
  // Finish touching freed state.
  std::weak_ptr<LoopConn> weak = ConnHandle(lc);
  const std::string& name = method->name;
  // exec_start is stamped just before the handler runs (worker path only):
  // the sink turns it into a queue-wait-free CPU measurement, so the kAuto
  // CPU axis judges the handler, not the pool's backlog.
  auto exec_start = std::make_shared<std::atomic<int64_t>>(0);
  auto sink = [this, weak, id, method_id, flags, name, route, auto_routed,
               start_ns, exec_start, deadline](ServiceResponse resp) {
    const int64_t t0 = exec_start->load(std::memory_order_relaxed);
    const int64_t exec_ns = t0 > 0 ? NowNanos() - t0 : -1;
    // Zero late service: a response completed past its deadline is dead
    // work — nobody upstream is still waiting. Answer kExpired (cheap, no
    // body) instead of shipping the full payload late.
    if (deadline.valid() && deadline.Expired() &&
        resp.status == RpcStatus::kOk) {
      lifecycle_.deadline_expired.fetch_add(1, std::memory_order_relaxed);
      resp = ServiceResponse{RpcStatus::kExpired, nullptr, {}};
    }
    auto conn = weak.lock();
    if (!conn) return;
    LoopOf(*conn).RunInLoop(
        [this, conn, id, method_id, flags, name, route, auto_routed, start_ns,
         exec_ns, resp = std::move(resp)]() mutable {
          CompleteRequest(*conn, id, method_id, flags, name, route,
                          auto_routed, start_ns, exec_ns, std::move(resp));
        });
  };

  if (route == RpcRoute::kWorker) {
    heavy_responses_.fetch_add(1, std::memory_order_relaxed);
    // shared_ptr because WorkerPool::Task is a std::function (copyable),
    // while the writer is deliberately move-only.
    auto writer = std::make_shared<ResponseWriter>(
        ResponseWriter::Sink(std::move(sink)));
    pool_->Submit([handler = method->handler, req = std::move(req),
                   writer = std::move(writer),
                   exec_start = std::move(exec_start), deadline]() mutable {
      exec_start->store(NowNanos(), std::memory_order_relaxed);
      // Carry the budget onto the worker thread so nested mesh calls
      // (channel hops issued from the handler) decrement it natively.
      ScopedRequestDeadline scoped(deadline);
      handler(std::move(req), std::move(*writer));
    });
    return;
  }

  // kInline / kReactor: handler runs here, on the loop thread. A handler
  // that retains the writer may still finish later from anywhere.
  ScopedPhase phase(phase_profiler_, Phase::kHandler);
  ScopedRequestDeadline scoped(deadline);
  method->handler(std::move(req), ResponseWriter(std::move(sink)));
}

void RpcServer::CompleteRequest(LoopConn& lc, uint64_t request_id,
                                uint16_t method_id, uint8_t request_flags,
                                const std::string& method_name, RpcRoute route,
                                bool auto_routed, int64_t start_ns,
                                int64_t exec_ns, ServiceResponse response) {
  if (lc.conn.closed) return;
  ConnState& st = StateOf(lc);

  // Out-of-order accounting: completing anything but the oldest in-flight
  // request means this response overtakes an earlier one.
  if (!st.arrival_order.empty() && st.arrival_order.front() == request_id) {
    st.arrival_order.pop_front();
  } else {
    const auto it = std::find(st.arrival_order.begin(),
                              st.arrival_order.end(), request_id);
    if (it != st.arrival_order.end()) {
      st.arrival_order.erase(it);
      out_of_order_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (st.inflight > 0) --st.inflight;

  const uint8_t resp_flags =
      (request_flags & kRpcFlagClose) ? kRpcFlagClose : uint8_t{0};
  Payload payload;
  {
    ScopedPhase phase(phase_profiler_, Phase::kSerialize);
    payload = SerializeRpcResponsePayload(
        request_id, method_id, response.status, std::move(response.shared_body),
        std::move(response.body), resp_flags);
  }

  // The kAuto CPU signal. The worker path measures the handler's own
  // running time (exec_ns, stamped around the handler on the pool) so the
  // pool's queue wait cannot masquerade as handler CPU; inline paths fall
  // back to dispatch-to-completion wall time, which for a synchronous
  // handler is the handler's running time (the sink fires inside the
  // handler call).
  const double cpu_us = exec_ns >= 0
                            ? static_cast<double>(exec_ns) / 1000.0
                            : static_cast<double>(NowNanos() - start_ns) /
                                  1000.0;
  const bool cpu_heavy = heavy_cpu_us_ > 0 && cpu_us > heavy_cpu_us_;
  // Small responses (within the direct-write budget) are write-axis light
  // by construction; only they may demote a heavy method under load,
  // since a congested buffer says nothing about the method itself.
  const size_t write_budget =
      static_cast<size_t>(std::max(1, config_.hybrid_heavy_write_threshold)) *
      static_cast<size_t>(std::max(config_.snd_buf_bytes, 16 * 1024));
  const size_t response_size = payload.size();

  // Ordering constraint: bytes already queued (or in flight on the
  // completion plane) must stay ahead of this response, so every path
  // degrades to the buffer when the outbound side is busy.
  const bool must_queue = !OutboundIdle(lc);

  const bool explicit_inline = route == RpcRoute::kInline && !auto_routed;
  bool wrote_inline = false;
  bool deferred = false;
  int writes_used = 0;
  if (route == RpcRoute::kInline && auto_routed && !must_queue &&
      !st.batching) {
    // Auto-light, alone in its parse pass: capped direct write with the
    // buffered escape hatch — the hybrid light path, which is how
    // write-spinning is *observed*.
    wrote_inline = TryDirectWrite(lc, std::move(payload), &writes_used);
    if (lc.conn.closed) return;
  } else if (!must_queue && explicit_inline) {
    // Explicit inline: the naive spin loop of SingleT-Async, faithful to
    // the baseline it models — a slow receiver glues the loop here.
    const SpinWriteResult r = SpinWriteAll(
        lc.conn.fd.get(), payload, write_stats_, config_.yield_on_full_write,
        std::chrono::milliseconds(config_.write_stall_timeout_ms),
        &writes_used);
    if (r != SpinWriteResult::kOk) {
      CloseConn(lc);
      return;
    }
    writes_per_response_->Record(writes_used);
    wrote_inline = true;
  } else if ((st.batching || st.flush_pending) && !explicit_inline) {
    // Mid-pass completion with more frames behind it: coalesce into the
    // output buffer; the pass epilogue flushes the whole burst with one
    // writev. (Explicit kInline never coalesces — immediate writes are
    // that baseline's identity.)
    deferred = true;
    st.flush_pending = true;
    Enqueue(lc, std::move(payload));
  } else if (must_queue && !explicit_inline) {
    // Bytes already queued means a drain is armed — EPOLLOUT, a
    // rescheduled flush task, or this pass's epilogue. Appending without
    // a flush attempt skips a writev that would only hit EAGAIN.
    deferred = true;
    Enqueue(lc, std::move(payload));
  } else {
    EnqueueAndFlush(lc, std::move(payload));
    if (lc.conn.closed) return;
  }

  if (auto_routed) {
    // Both-axes classification: light only when the response drained
    // within the write budget AND the handler stayed under the CPU
    // threshold. kInline attempts tell us the write axis directly; a
    // worker-path response that left nothing buffered behaved light.
    if (route == RpcRoute::kInline) {
      light_responses_.fetch_add(1, std::memory_order_relaxed);
      // A direct write that spun past the cap observed the method as
      // write-heavy; one that bailed on EAGAIN before the cap only
      // observed a congested socket — no verdict on the method itself.
      // Coalesced responses observe nothing on the write axis either.
      const bool capped =
          !wrote_inline &&
          writes_used >= std::max(1, config_.hybrid_heavy_write_threshold);
      if (deferred || (!wrote_inline && !capped)) {
        if (cpu_heavy &&
            classifier_.Update(method_name, PathCategory::kHeavy)) {
          reclassifications_.fetch_add(1, std::memory_order_relaxed);
        }
      } else {
        const bool heavy = capped || cpu_heavy;
        if (classifier_.Update(method_name, heavy ? PathCategory::kHeavy
                                                  : PathCategory::kLight)) {
          reclassifications_.fetch_add(1, std::memory_order_relaxed);
        }
      }
    } else if (!cpu_heavy &&
               (response_size <= write_budget ||
                (!must_queue && OutboundIdle(lc)))) {
      // Heavy → light demotion (runtime drift): the handler ran fast and
      // the response is either small enough to fit the direct-write
      // budget, or observably drained alone within the flush's spin cap.
      // The size clause lets a spuriously promoted light method (a
      // preemption blip read as handler CPU) self-heal even while the
      // connection's buffer is busy — without it, one bad sample sticks
      // for as long as the load does.
      if (classifier_.Update(method_name, PathCategory::kLight)) {
        reclassifications_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  } else if (route == RpcRoute::kInline) {
    light_responses_.fetch_add(1, std::memory_order_relaxed);
  }

  request_latency_ns_->Record(NowNanos() - start_ns);

  if (lc.conn.close_after_write && OutboundIdle(lc) && !HasPendingWork(lc)) {
    CloseConn(lc);
  }
}

bool RpcServer::TryDirectWrite(LoopConn& lc, Payload payload,
                               int* writes_used) {
  ScopedPhase phase(phase_profiler_, Phase::kWrite);
  const int fd = lc.conn.fd.get();
  const size_t total = payload.size();
  size_t off = 0;
  int writes = 0;
  const int max_writes = std::max(1, config_.hybrid_heavy_write_threshold);

  while (off < total && writes < max_writes) {
    struct iovec iov[Payload::kMaxSegments];
    const size_t niov = payload.FillIov(off, iov, Payload::kMaxSegments);
    const IoResult r = WritevFd(fd, iov, static_cast<int>(niov));
    write_stats_.write_calls.fetch_add(1, std::memory_order_relaxed);
    write_stats_.writev_calls.fetch_add(1, std::memory_order_relaxed);
    write_stats_.iov_segments.fetch_add(niov, std::memory_order_relaxed);
    writes++;
    if (r.WouldBlock() || r.n == 0) {
      write_stats_.zero_writes.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    if (r.Fatal()) {
      *writes_used = writes;
      CloseConn(lc);
      return false;
    }
    off += static_cast<size_t>(r.n);
  }
  *writes_used = writes;

  if (off == total) {
    write_stats_.responses.fetch_add(1, std::memory_order_relaxed);
    writes_per_response_->Record(writes);
    return true;
  }

  // Budget exhausted mid-response: the remainder rides the buffered path
  // from its current offset (no bytes copied).
  EnqueueAndFlush(lc, std::move(payload), off);
  return false;
}

std::unique_ptr<Server> CreateServer(const ServerConfig& config,
                                     ServiceRegistry services) {
  ServerConfig cfg = config;
  if (cfg.protocol.empty()) cfg.protocol = "rpc";
  const std::vector<std::string> errors = cfg.Validate();
  if (!errors.empty()) {
    std::string joined = "invalid ServerConfig:";
    for (const std::string& e : errors) joined += "\n  - " + e;
    throw std::invalid_argument(joined);
  }
  if (cfg.protocol != "rpc") {
    throw std::invalid_argument(
        "CreateServer(config, ServiceRegistry) serves protocol \"rpc\"; got "
        "protocol \"" + cfg.protocol + "\"");
  }
  if (services.Empty()) {
    throw std::invalid_argument("ServiceRegistry has no methods");
  }
  return std::make_unique<RpcServer>(std::move(cfg), std::move(services));
}

}  // namespace hynet
