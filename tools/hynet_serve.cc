// hynet_serve: stand up any of the eight architectures on a real port and
// leave it running — for curl, wrk, or hynet_load experiments.
//
//   hynet_serve [--proto http|rpc] [--arch NAME] [--port P]
//               [--sndbuf BYTES] [--loops N] [--workers N] [--spin-cap N]
//               [--profile] [--idle-ms N] [--header-ms N] [--stall-ms N]
//               [--max-conns N] [--no-shed] [--high-water BYTES]
//               [--cold-idle-ms N] [--shards N]
//               [--drain-ms N] [--admin-port P]
//               [--dispatch-batch N] [--pin-cpus]
//               [--io-backend epoll|uring]
//               [--uring-mode completion|readiness]
//               [--deadline-propagation] [--deadline-margin-ms N]
//               [--shed-target-ms N] [--shed-interval-ms N]
//               [--route METHOD_ID=ROUTE]... [--heavy-cpu-us N]
//               [--kv-keys N] [--kv-value-bytes N] [--kv-write-cpu-us N]
//
// --proto http (default) serves the standard bench handler:
//   GET /bench?size=<bytes>&us=<cpu-us>[&push=N&push_kb=M]
// --proto rpc serves the KV service (Lookup=1 / Read=2 / Write=3) over the
// multiplexed binary framing, preloading --kv-keys keys of
// --kv-value-bytes each; per-method execution is steered with
// --route 2=worker (auto | inline | reactor | worker) and the kAuto CPU
// axis with --heavy-cpu-us. Drive it with hynet_load --proto rpc.
// Counters (and phase means with --profile) print every 5 seconds.
// With --admin-port the observability plane serves /metrics (Prometheus),
// /stats.json, and /healthz on loopback (0 = ephemeral port); pair with
// tools/hynet_top.py for a live dashboard.
// With --drain-ms, Ctrl-C performs a graceful drain (finish in-flight
// requests, answer with `Connection: close`, force-close stragglers at
// the deadline) instead of an immediate stop.
#include <csignal>
#include <cstdio>
#include <cstring>
#include <cstdlib>
#include <atomic>
#include <thread>

#include "app/kv_service.h"
#include "app/rpc_server.h"
#include "client/bench_runner.h"
#include "common/fd_limit.h"
#include "core/hybrid_server.h"
#include "metrics/report.h"

using namespace hynet;

namespace {

std::atomic<bool> g_stop{false};

void OnSignal(int) { g_stop.store(true); }

ServerArchitecture ParseArch(const char* name) {
  const ServerArchitecture all[] = {
      ServerArchitecture::kThreadPerConn, ServerArchitecture::kReactorPool,
      ServerArchitecture::kReactorPoolFix, ServerArchitecture::kSingleThread,
      ServerArchitecture::kMultiLoop,      ServerArchitecture::kHybrid,
      ServerArchitecture::kStaged,
      ServerArchitecture::kSingleThreadNCopy,
  };
  for (ServerArchitecture arch : all) {
    if (std::strcmp(name, ArchitectureName(arch)) == 0) return arch;
  }
  std::fprintf(stderr, "unknown --arch '%s'; valid:\n", name);
  for (ServerArchitecture arch : all) {
    std::fprintf(stderr, "  %s\n", ArchitectureName(arch));
  }
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  ServerConfig config;
  config.architecture = ServerArchitecture::kHybrid;
  config.port = 8080;
  int drain_ms = 0;
  size_t kv_keys = 1024;
  size_t kv_value_bytes = 1024;
  double kv_write_cpu_us = 0;

  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--arch")) {
      config.architecture = ParseArch(next("--arch"));
    } else if (!std::strcmp(argv[i], "--port")) {
      config.port = static_cast<uint16_t>(std::atoi(next("--port")));
    } else if (!std::strcmp(argv[i], "--sndbuf")) {
      config.snd_buf_bytes = std::atoi(next("--sndbuf"));
    } else if (!std::strcmp(argv[i], "--loops")) {
      config.event_loops = std::atoi(next("--loops"));
      config.ncopy = config.event_loops;
    } else if (!std::strcmp(argv[i], "--workers")) {
      config.worker_threads = std::atoi(next("--workers"));
    } else if (!std::strcmp(argv[i], "--spin-cap")) {
      config.write_spin_cap = std::atoi(next("--spin-cap"));
    } else if (!std::strcmp(argv[i], "--profile")) {
      config.profile_phases = true;
    } else if (!std::strcmp(argv[i], "--idle-ms")) {
      config.idle_timeout_ms = std::atoi(next("--idle-ms"));
    } else if (!std::strcmp(argv[i], "--header-ms")) {
      config.header_timeout_ms = std::atoi(next("--header-ms"));
    } else if (!std::strcmp(argv[i], "--stall-ms")) {
      config.write_stall_timeout_ms = std::atoi(next("--stall-ms"));
    } else if (!std::strcmp(argv[i], "--max-conns")) {
      config.max_connections = std::atoi(next("--max-conns"));
    } else if (!std::strcmp(argv[i], "--no-shed")) {
      config.shed_with_503 = false;
    } else if (!std::strcmp(argv[i], "--high-water")) {
      config.outbound_high_water_bytes =
          static_cast<size_t>(std::atoll(next("--high-water")));
    } else if (!std::strcmp(argv[i], "--cold-idle-ms")) {
      config.cold_idle_ms = std::atoi(next("--cold-idle-ms"));
    } else if (!std::strcmp(argv[i], "--shards")) {
      config.shards = std::atoi(next("--shards"));
    } else if (!std::strcmp(argv[i], "--drain-ms")) {
      drain_ms = std::atoi(next("--drain-ms"));
    } else if (!std::strcmp(argv[i], "--admin-port")) {
      config.admin_port = std::atoi(next("--admin-port"));
    } else if (!std::strcmp(argv[i], "--dispatch-batch")) {
      config.dispatch_batch = std::atoi(next("--dispatch-batch"));
    } else if (!std::strcmp(argv[i], "--pin-cpus")) {
      config.pin_cpus = true;
    } else if (!std::strcmp(argv[i], "--io-backend")) {
      config.io_backend = next("--io-backend");
    } else if (!std::strcmp(argv[i], "--uring-mode")) {
      config.uring_mode = next("--uring-mode");
    } else if (!std::strcmp(argv[i], "--deadline-propagation")) {
      config.deadline_propagation = true;
    } else if (!std::strcmp(argv[i], "--deadline-margin-ms")) {
      config.deadline_margin_ms = std::atoi(next("--deadline-margin-ms"));
    } else if (!std::strcmp(argv[i], "--shed-target-ms")) {
      config.shed_target_delay_ms = std::atoi(next("--shed-target-ms"));
    } else if (!std::strcmp(argv[i], "--shed-interval-ms")) {
      config.shed_interval_ms = std::atoi(next("--shed-interval-ms"));
    } else if (!std::strcmp(argv[i], "--proto")) {
      config.protocol = next("--proto");
    } else if (!std::strcmp(argv[i], "--route")) {
      // METHOD_ID=ROUTE, e.g. --route 2=worker --route 1=inline
      const char* spec = next("--route");
      const char* eq = std::strchr(spec, '=');
      MethodRouteEntry entry;
      if (eq == nullptr ||
          !ParseRpcRouteName(eq + 1, &entry.route)) {
        std::fprintf(stderr,
                     "--route wants METHOD_ID=auto|inline|reactor|worker, "
                     "got '%s'\n", spec);
        return 2;
      }
      entry.method_id = static_cast<uint16_t>(std::atoi(spec));
      config.rpc_routes.push_back(entry);
    } else if (!std::strcmp(argv[i], "--heavy-cpu-us")) {
      config.rpc_heavy_cpu_us = std::atof(next("--heavy-cpu-us"));
    } else if (!std::strcmp(argv[i], "--kv-keys")) {
      kv_keys = static_cast<size_t>(std::atoll(next("--kv-keys")));
    } else if (!std::strcmp(argv[i], "--kv-value-bytes")) {
      kv_value_bytes = static_cast<size_t>(std::atoll(next("--kv-value-bytes")));
    } else if (!std::strcmp(argv[i], "--kv-write-cpu-us")) {
      kv_write_cpu_us = std::atof(next("--kv-write-cpu-us"));
    } else {
      std::fprintf(stderr, "usage: %s [--proto http|rpc] [--arch NAME] "
                   "[--port P] [--sndbuf BYTES] [--loops N] [--workers N] "
                   "[--spin-cap N] [--profile] [--idle-ms N] "
                   "[--header-ms N] [--stall-ms N] [--max-conns N] "
                   "[--no-shed] [--high-water BYTES] [--cold-idle-ms N] "
                   "[--shards N] [--drain-ms N] "
                   "[--admin-port P] [--dispatch-batch N] [--pin-cpus] "
                   "[--io-backend epoll|uring] "
                   "[--uring-mode completion|readiness] "
                   "[--deadline-propagation] "
                   "[--deadline-margin-ms N] [--shed-target-ms N] "
                   "[--shed-interval-ms N] [--route ID=ROUTE]... "
                   "[--heavy-cpu-us N] [--kv-keys N] [--kv-value-bytes N] "
                   "[--kv-write-cpu-us N]\n",
                   argv[0]);
      return 2;
    }
  }

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);

  // Lift the soft fd limit to the hard cap before any socket opens: at
  // connection scale every admitted socket is an fd, and the default soft
  // limit (often 1024) walls off the deployment silently.
  const FdLimit fd_limit = RaiseFdLimit();
  std::printf("fd limit: %s\n", FormatFdLimit(fd_limit).c_str());

  std::unique_ptr<Server> server;
  if (config.protocol == "rpc") {
    auto store = std::make_shared<KvStore>();
    store->Preload(kv_keys, kv_value_bytes);
    KvServiceOptions kv;
    kv.write_cpu_us = kv_write_cpu_us;
    server = CreateServer(config, MakeKvService(std::move(store), kv));
  } else {
    server = CreateServer(config, MakeBenchHandler());
  }
  server->Start();
  std::printf("%s listening on 127.0.0.1:%u  (Ctrl-C to stop)\n",
              ArchitectureName(config.architecture), server->Port());
  if (config.protocol == "rpc") {
    std::printf("serving KV over rpc framing (%zu keys x %zu bytes); try: "
                "hynet_load --proto rpc --port %u\n",
                kv_keys, kv_value_bytes, server->Port());
  } else {
    std::printf("try: curl 'http://127.0.0.1:%u/bench?size=1000&us=50'\n",
                server->Port());
  }
  if (config.admin_port >= 0) {
    std::printf("admin: http://127.0.0.1:%u/metrics  /stats.json  /healthz\n",
                server->AdminPort());
  }

  ServerCounters last{};
  while (!g_stop.load()) {
    // Sleep in short ticks so Ctrl-C starts the drain promptly instead of
    // waiting out the remainder of a 5-second stats interval.
    for (int tick = 0; tick < 50 && !g_stop.load(); ++tick) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    if (g_stop.load()) break;
    const ServerCounters now = server->Snapshot();
    std::printf("[stats] conns=%llu reqs=%llu (+%llu) writes=%llu "
                "zero=%llu spin_capped=%llu light=%llu heavy=%llu\n",
                static_cast<unsigned long long>(now.connections_accepted),
                static_cast<unsigned long long>(now.requests_handled),
                static_cast<unsigned long long>(now.requests_handled -
                                                last.requests_handled),
                static_cast<unsigned long long>(now.write_calls),
                static_cast<unsigned long long>(now.zero_writes),
                static_cast<unsigned long long>(now.spin_capped_flushes),
                static_cast<unsigned long long>(now.light_path_responses),
                static_cast<unsigned long long>(now.heavy_path_responses));
    const MetricsSnapshot msnap = server->metrics().Scrape();
    const HistogramData* lat = msnap.FindHistogram("server_request_latency_ns");
    if (lat && lat->count > 0) {
      std::printf("[lat]   n=%llu mean=%.2fms p50=%.2fms p95=%.2fms "
                  "p99=%.2fms max=%.2fms\n",
                  static_cast<unsigned long long>(lat->count),
                  lat->Mean() / 1e6,
                  static_cast<double>(lat->Percentile(0.50)) / 1e6,
                  static_cast<double>(lat->Percentile(0.95)) / 1e6,
                  static_cast<double>(lat->Percentile(0.99)) / 1e6,
                  static_cast<double>(lat->max) / 1e6);
    }
    if (config.profile_phases) {
      const auto snap = server->phase_profiler().Snap();
      std::printf("[phase] parse=%.1fus handler=%.1fus serialize=%.1fus "
                  "write=%.1fus\n",
                  snap.MeanNs(Phase::kParse) / 1000,
                  snap.MeanNs(Phase::kHandler) / 1000,
                  snap.MeanNs(Phase::kSerialize) / 1000,
                  snap.MeanNs(Phase::kWrite) / 1000);
    }
    std::fflush(stdout);
    last = now;
  }

  const ServerCounters final_counters = server->Snapshot();
  if (drain_ms > 0) {
    std::printf("\ndraining (deadline %d ms)...\n", drain_ms);
    const DrainResult r =
        server->Shutdown(std::chrono::milliseconds(drain_ms));
    std::printf("drained=%llu forced=%llu\n",
                static_cast<unsigned long long>(r.drained),
                static_cast<unsigned long long>(r.forced));
  } else {
    std::printf("\nstopping...\n");
    server->Stop();
  }
  PrintCounterTable("lifecycle", LifecycleCounterRows(final_counters));
  return 0;
}
