// hynet_load: drive any HTTP server with the library's closed- or
// open-loop generator (a minimal wrk with coordinated-omission-safe
// open-loop mode).
//
//   hynet_load [--proto http|rpc] [--port P] [--host IP] [--conns N]
//              [--seconds S] [--target T]... [--rate R] [--rcvbuf BYTES]
//              [--chaos MODE] [--chaos-conns N]
//              [--depth N] [--mix ID:W]... [--key-space N] [--write-bytes N]
//
//   --target may repeat; an optional ":weight" suffix sets its mix weight:
//     hynet_load --target '/bench?size=102:9' --target '/bench?size=102400:1'
//   --rate switches to open-loop Poisson arrivals at R req/s.
//   --chaos runs misbehaving connections NEXT TO the well-behaved load:
//     slowloris | stalled | rst | idle  (see ChaosMode in load_gen.h).
//   The report then shows whether the server evicted the abusers while
//   the legitimate load kept completing.
//
//   --proto rpc drives the multiplexed KV plane instead (pair it with
//   hynet_serve --proto rpc): each connection keeps --depth requests in
//   flight and --mix ID:WEIGHT shapes the method mix over the KV ids
//   (Lookup=1 / Read=2 / Write=3), e.g. --mix 1:7 --mix 2:2 --mix 3:1.
#include <cstdio>
#include <cstring>
#include <cstdlib>
#include <memory>
#include <string>

#include "client/load_gen.h"
#include "client/rpc_load_gen.h"
#include "metrics/report.h"

using namespace hynet;

namespace {

const char* KvMethodName(uint16_t id) {
  switch (id) {
    case kKvMethodLookup: return "Lookup";
    case kKvMethodRead: return "Read";
    case kKvMethodWrite: return "Write";
    default: return "?";
  }
}

}  // namespace

int main(int argc, char** argv) {
  LoadConfig config;
  std::string host = "127.0.0.1";
  uint16_t port = 8080;
  double seconds = 5.0;
  std::string chaos_mode;
  int chaos_conns = 16;
  std::string proto = "http";
  RpcLoadConfig rpc;
  rpc.mix.clear();
  config.targets.clear();

  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--port")) {
      port = static_cast<uint16_t>(std::atoi(next("--port")));
    } else if (!std::strcmp(argv[i], "--host")) {
      host = next("--host");
    } else if (!std::strcmp(argv[i], "--conns")) {
      config.connections = std::atoi(next("--conns"));
    } else if (!std::strcmp(argv[i], "--seconds")) {
      seconds = std::atof(next("--seconds"));
    } else if (!std::strcmp(argv[i], "--rate")) {
      config.open_loop_rate = std::atof(next("--rate"));
    } else if (!std::strcmp(argv[i], "--rcvbuf")) {
      config.rcv_buf_bytes = std::atoi(next("--rcvbuf"));
    } else if (!std::strcmp(argv[i], "--target")) {
      std::string t = next("--target");
      double weight = 1.0;
      // Optional ":weight" suffix (the target itself may contain ':'
      // only in this suffix position).
      const size_t colon = t.rfind(':');
      if (colon != std::string::npos && colon + 1 < t.size()) {
        char* end = nullptr;
        const double w = std::strtod(t.c_str() + colon + 1, &end);
        if (end && *end == '\0' && w > 0) {
          weight = w;
          t.resize(colon);
        }
      }
      config.targets.push_back({t, weight});
    } else if (!std::strcmp(argv[i], "--chaos")) {
      chaos_mode = next("--chaos");
    } else if (!std::strcmp(argv[i], "--chaos-conns")) {
      chaos_conns = std::atoi(next("--chaos-conns"));
    } else if (!std::strcmp(argv[i], "--proto")) {
      proto = next("--proto");
      if (proto != "http" && proto != "rpc") {
        std::fprintf(stderr, "--proto wants http or rpc\n");
        return 2;
      }
    } else if (!std::strcmp(argv[i], "--depth")) {
      rpc.pipeline_depth = std::atoi(next("--depth"));
    } else if (!std::strcmp(argv[i], "--mix")) {
      const char* spec = next("--mix");
      const char* colon = std::strchr(spec, ':');
      if (!colon) {
        std::fprintf(stderr, "--mix wants METHOD_ID:WEIGHT\n");
        return 2;
      }
      RpcMethodMix entry;
      entry.method_id = static_cast<uint16_t>(std::atoi(spec));
      entry.weight = std::atof(colon + 1);
      rpc.mix.push_back(entry);
    } else if (!std::strcmp(argv[i], "--key-space")) {
      rpc.key_space = static_cast<uint64_t>(std::atoll(next("--key-space")));
    } else if (!std::strcmp(argv[i], "--write-bytes")) {
      rpc.write_value_bytes =
          static_cast<size_t>(std::atoll(next("--write-bytes")));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--proto http|rpc] [--host IP] [--port P] "
                   "[--conns N] [--seconds S] [--target T[:w]]... [--rate R] "
                   "[--rcvbuf BYTES] [--chaos slowloris|stalled|rst|idle] "
                   "[--chaos-conns N] [--depth N] [--mix ID:W]... "
                   "[--key-space N] [--write-bytes N]\n", argv[0]);
      return 2;
    }
  }

  if (proto == "rpc") {
    if (rpc.mix.empty()) {
      rpc.mix = {{kKvMethodLookup, 0.7},
                 {kKvMethodRead, 0.2},
                 {kKvMethodWrite, 0.1}};
    }
    rpc.server = InetAddr::FromIp(host, port);
    rpc.connections = config.connections;
    rpc.warmup_sec = std::min(1.0, seconds * 0.2);
    rpc.measure_sec = seconds;
    if (config.rcv_buf_bytes > 0) rpc.rcv_buf_bytes = config.rcv_buf_bytes;

    std::printf("rpc closed-loop %s:%u  conns=%d  depth=%d  window=%.1fs\n",
                host.c_str(), port, rpc.connections, rpc.pipeline_depth,
                seconds);
    const RpcLoadResult result = RunRpcLoad(rpc);
    std::printf("\nrequests   : %llu  (%llu errors)\n",
                static_cast<unsigned long long>(result.completed),
                static_cast<unsigned long long>(result.errors));
    std::printf("throughput : %.1f req/s\n", result.Throughput());
    std::printf("latency    : %s\n", result.latency.Summary().c_str());
    std::printf("out-of-ord : %llu responses overtook an earlier request\n",
                static_cast<unsigned long long>(result.out_of_order));
    for (const auto& [id, m] : result.per_method) {
      std::printf("  %-7s  : %llu done, %llu not-found, %s\n",
                  KvMethodName(id),
                  static_cast<unsigned long long>(m.completed),
                  static_cast<unsigned long long>(m.not_found),
                  m.latency.Summary().c_str());
    }
    return result.errors > 0 ? 1 : 0;
  }
  if (config.targets.empty()) {
    config.targets.push_back({"/bench?size=128&us=0", 1.0});
  }

  config.server = InetAddr::FromIp(host, port);
  config.warmup_sec = std::min(1.0, seconds * 0.2);
  config.measure_sec = seconds;

  std::printf("%s %s:%u  conns=%d  %s  window=%.1fs\n",
              config.open_loop_rate > 0 ? "open-loop" : "closed-loop",
              host.c_str(), port, config.connections,
              config.open_loop_rate > 0
                  ? ("rate=" + std::to_string(config.open_loop_rate)).c_str()
                  : "zero think time",
              seconds);

  std::unique_ptr<ChaosClient> chaos;
  if (!chaos_mode.empty()) {
    ChaosConfig cc;
    cc.server = config.server;
    cc.connections = chaos_conns;
    if (chaos_mode == "slowloris") {
      cc.mode = ChaosMode::kSlowloris;
    } else if (chaos_mode == "stalled") {
      cc.mode = ChaosMode::kStalledReader;
    } else if (chaos_mode == "rst") {
      cc.mode = ChaosMode::kMidResponseRst;
    } else if (chaos_mode == "idle") {
      cc.mode = ChaosMode::kIdle;
    } else {
      std::fprintf(stderr, "unknown --chaos '%s'\n", chaos_mode.c_str());
      return 2;
    }
    chaos = std::make_unique<ChaosClient>(cc);
    chaos->Start();
    std::printf("chaos      : %s x%d alongside the load\n",
                chaos_mode.c_str(), chaos_conns);
  }

  const LoadResult result = RunLoad(config);

  if (chaos) {
    const ChaosSnapshot s = chaos->Snapshot();
    chaos->Stop();
    std::printf("chaos      : connected=%llu evicted=%llu rst=%llu "
                "sent=%llu read=%llu\n",
                static_cast<unsigned long long>(s.connected),
                static_cast<unsigned long long>(s.evicted),
                static_cast<unsigned long long>(s.rst_sent),
                static_cast<unsigned long long>(s.bytes_sent),
                static_cast<unsigned long long>(s.bytes_read));
  }

  std::printf("\nrequests   : %llu  (%llu errors)\n",
              static_cast<unsigned long long>(result.completed),
              static_cast<unsigned long long>(result.errors));
  std::printf("throughput : %.1f req/s\n", result.Throughput());
  std::printf("latency    : %s\n", result.latency.Summary().c_str());
  if (config.open_loop_rate > 0) {
    std::printf("queued     : %llu arrivals found all connections busy\n",
                static_cast<unsigned long long>(result.queued_arrivals));
  }
  return result.errors > 0 ? 1 : 0;
}
