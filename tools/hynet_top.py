#!/usr/bin/env python3
"""hynet_top: a one-line-per-second terminal dashboard over /stats.json.

Polls a hynet server's admin endpoint (see ServerConfig.admin_port /
hynet_serve --admin-port) and prints request rate, write anatomy, and
latency percentiles — the live view of the numbers the paper reports as
Table IV and Figure 5.

The `io` column shows the active I/O backend (epoll, uring, or `epoll*`
for a requested-uring-but-fell-back server) and `sqe/bat` the io_uring
submission batching factor (SQEs per io_uring_enter call), both derived
from the server_uring_* counters. `zc/s` is the rate of SEND_ZC
zero-copy submissions (large responses only); a trailing `*` means the
kernel reported that it copied after all (the usual loopback outcome),
so the send took the zero-copy path without the copy actually being
elided.

Resilience-plane columns: `shed` is the rejection rate from the overload
plane (queue-delay 503s plus deadline 504s per second), `rty` the rate
of downstream retries issued by this tier, and `brk` the circuit-breaker
state (`-` closed, `OPEN`, `half`).

RPC-plane columns (all zero on an http server): `rpc/s` is the rate of
frames dispatched on the multiplexed plane, `ooo%` the share of
responses completed out of arrival order (the visible effect of
per-method routing), and `infl` the high-water mark of in-flight
requests on any one connection.

Mesh-plane columns (all zero off the mesh): `hit%` is the response-cache
hit rate over the window (cache_hits vs cache_misses — misses include
singleflight joiners, so a thundering herd shows as misses even though
only the lead rendered), `fo/s` the rate of fan-out groups issued,
`minf` the mesh_inflight gauge (requests currently on the wire across
this tier's outbound mesh channels, summed), and `rcon` cumulative mesh
channel reconnects (a rising value means a downstream keeps dropping
established connections).

Connection-scale columns: `conns` is the live connection count (the
conn_count gauge where the server exports it, else derived from the
accept/close counters), `B/conn` the memory-budget view
(conn_bytes_per_conn: fixed struct cost plus buffers, scratch and queued
bytes, averaged over live conns — watch it collapse when idle-cold
reclamation kicks in), `cold` how many of those conns the idle sweep has
reclaimed, and `shard` the number of SO_REUSEPORT shards behind the
scrape (1 when unsharded; the merged registry sums shard gauges).

Usage:
    python3 tools/hynet_top.py [--host 127.0.0.1] [--port 9090]
                               [--interval 1.0]

Only the standard library is used (urllib), so it runs anywhere Python 3
does.
"""
import argparse
import json
import sys
import time
import urllib.error
import urllib.request


def fetch_stats(url: str, timeout: float = 2.0) -> dict:
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return json.loads(resp.read().decode("utf-8"))


def counter(stats: dict, name: str) -> int:
    return int(stats.get("counters", {}).get(name, 0))


def histogram(stats: dict, name: str) -> dict:
    return stats.get("histograms", {}).get(name, {})


def backend_name(stats: dict) -> str:
    """Active I/O backend, derived from the uring counters.

    A server that asked for io_uring but fell back to epoll reports
    uring_fallbacks > 0; one actually running the completion engine
    submits SQEs; anything else is the plain epoll readiness engine.
    """
    if counter(stats, "server_uring_fallbacks") > 0:
        return "epoll*"  # requested uring, fell back
    if counter(stats, "server_uring_sqes_submitted") > 0:
        return "uring"
    return "epoll"


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--host", default="127.0.0.1")
    ap.add_argument("--port", type=int, default=9090)
    ap.add_argument("--interval", type=float, default=1.0)
    args = ap.parse_args()

    url = f"http://{args.host}:{args.port}/stats.json"
    print(f"polling {url} every {args.interval:g}s  (Ctrl-C to stop)")
    header = (f"{'time':>8}  {'io':>6}  {'req/s':>9}  {'resp/s':>9}  "
              f"{'wr/resp':>7}  {'zero/s':>7}  {'iov/wv':>6}  "
              f"{'sqe/bat':>7}  {'zc/s':>7}  {'wq':>5}  {'conns':>7}  "
              f"{'B/conn':>7}  {'cold':>7}  {'shard':>5}  "
              f"{'p50ms':>7}  {'p99ms':>7}  {'shed':>6}  {'rty':>6}  "
              f"{'brk':>4}  {'rpc/s':>8}  {'ooo%':>5}  {'infl':>5}  "
              f"{'hit%':>5}  {'fo/s':>7}  {'minf':>5}  {'rcon':>5}  "
              f"{'drain':>5}")

    prev = None
    prev_t = None
    lines = 0
    while True:
        try:
            stats = fetch_stats(url)
        except (urllib.error.URLError, OSError, json.JSONDecodeError) as e:
            print(f"[hynet_top] fetch failed: {e}", file=sys.stderr)
            time.sleep(args.interval)
            continue
        now = time.time()
        if prev is not None:
            dt = max(now - prev_t, 1e-9)
            d = lambda n: (counter(stats, n) - counter(prev, n)) / dt
            resp_rate = d("server_responses_sent")
            writes_rate = d("server_write_calls")
            wr_per_resp = (writes_rate / resp_rate) if resp_rate > 0 else 0.0
            # Coalescing factor: payload segments per vectored syscall.
            writev_rate = d("server_writev_calls")
            iov_rate = d("server_iov_segments")
            iov_per_wv = (iov_rate / writev_rate) if writev_rate > 0 else 0.0
            # io_uring submission batching: SQEs per io_uring_enter call.
            batch_rate = d("server_uring_submit_batches")
            sqe_rate = d("server_uring_sqes_submitted")
            sqe_per_batch = (sqe_rate / batch_rate) if batch_rate > 0 else 0.0
            # SEND_ZC rate; '*' when the kernel reported it copied anyway
            # (ZC_COPIED notifications), which is the norm on loopback.
            zc_rate = d("server_uring_zc_sends")
            zc_copied = d("server_uring_zc_copied") > 0
            zc_cell = f"{zc_rate:>6.1f}{'*' if zc_copied else ' '}"
            # Worker-feed queue depth: worker_queue_depth for the reactor
            # pools, summed stage_*_queue_depth for the staged server.
            gauges = stats.get("gauges", {})
            # Connection-scale plane: the conn table's first-class gauges
            # where exported; thread-per-conn has no table, so fall back
            # to the accept/close counter difference.
            live = int(gauges.get(
                "conn_count",
                counter(stats, "server_connections_accepted")
                - counter(stats, "server_connections_closed")))
            b_per_conn = int(gauges.get("conn_bytes_per_conn", 0))
            cold = int(gauges.get("conn_cold", 0))
            shards = int(gauges.get("shards", 1))
            wq = int(gauges.get("worker_queue_depth",
                                sum(int(v) for k, v in gauges.items()
                                    if k.endswith("_queue_depth"))))
            lat = histogram(stats, "server_request_latency_ns")
            p50 = float(lat.get("p50", 0)) / 1e6
            p99 = float(lat.get("p99", 0)) / 1e6
            draining = int(stats.get("gauges", {}).get("server_draining", 0))
            # Overload-plane rejections per second: queue-delay sheds (503)
            # plus deadline fast-fails (504).
            shed_rate = (d("server_sheds_queue_delay")
                         + d("server_deadline_expired"))
            retry_rate = d("server_retries_issued")
            # breaker_state is a stored state, not an accumulator:
            # 0 closed / 1 open / 2 half-open.
            brk = {0: "-", 1: "OPEN", 2: "half"}.get(
                counter(stats, "server_breaker_state"), "?")
            # RPC plane: frame dispatch rate, out-of-order completion
            # share over the window, and per-connection in-flight peak
            # (a stored high-water mark, not an accumulator).
            rpc_rate = d("server_rpc_requests")
            ooo_rate = d("server_rpc_out_of_order_responses")
            ooo_pct = (100.0 * ooo_rate / rpc_rate) if rpc_rate > 0 else 0.0
            infl = counter(stats, "server_rpc_inflight_peak")
            # Mesh plane: window hit rate, fan-out group rate, outbound
            # in-flight (gauge), cumulative channel reconnects.
            hit_rate = d("server_cache_hits")
            miss_rate = d("server_cache_misses")
            lookup_rate = hit_rate + miss_rate
            hit_pct = (100.0 * hit_rate / lookup_rate) if lookup_rate > 0 \
                else 0.0
            fanout_rate = d("server_mesh_fanout_calls")
            mesh_infl = int(gauges.get("mesh_inflight", 0))
            reconnects = counter(stats, "server_mesh_channel_reconnects")
            if lines % 20 == 0:
                print(header)
            print(f"{time.strftime('%H:%M:%S'):>8}  "
                  f"{backend_name(stats):>6}  "
                  f"{d('server_requests_handled'):>9.1f}  "
                  f"{resp_rate:>9.1f}  {wr_per_resp:>7.2f}  "
                  f"{d('server_zero_writes'):>7.1f}  {iov_per_wv:>6.1f}  "
                  f"{sqe_per_batch:>7.1f}  {zc_cell:>7}  "
                  f"{wq:>5d}  {live:>7d}  "
                  f"{b_per_conn:>7d}  {cold:>7d}  {shards:>5d}  "
                  f"{p50:>7.2f}  {p99:>7.2f}  "
                  f"{shed_rate:>6.1f}  {retry_rate:>6.1f}  "
                  f"{brk:>4}  {rpc_rate:>8.1f}  {ooo_pct:>5.1f}  "
                  f"{infl:>5d}  {hit_pct:>5.1f}  {fanout_rate:>7.1f}  "
                  f"{mesh_infl:>5d}  {reconnects:>5d}  "
                  f"{'yes' if draining else 'no':>5}")
            lines += 1
        prev = stats
        prev_t = now
        time.sleep(args.interval)


if __name__ == "__main__":
    try:
        sys.exit(main())
    except KeyboardInterrupt:
        sys.exit(0)
