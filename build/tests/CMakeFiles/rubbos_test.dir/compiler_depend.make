# Empty compiler generated dependencies file for rubbos_test.
# This may be replaced when dependencies are built.
