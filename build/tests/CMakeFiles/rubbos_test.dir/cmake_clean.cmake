file(REMOVE_RECURSE
  "CMakeFiles/rubbos_test.dir/rubbos_test.cc.o"
  "CMakeFiles/rubbos_test.dir/rubbos_test.cc.o.d"
  "rubbos_test"
  "rubbos_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rubbos_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
