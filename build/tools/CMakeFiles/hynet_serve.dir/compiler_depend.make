# Empty compiler generated dependencies file for hynet_serve.
# This may be replaced when dependencies are built.
