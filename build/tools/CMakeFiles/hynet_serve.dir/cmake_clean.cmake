file(REMOVE_RECURSE
  "CMakeFiles/hynet_serve.dir/hynet_serve.cc.o"
  "CMakeFiles/hynet_serve.dir/hynet_serve.cc.o.d"
  "hynet_serve"
  "hynet_serve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hynet_serve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
