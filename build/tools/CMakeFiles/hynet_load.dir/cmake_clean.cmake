file(REMOVE_RECURSE
  "CMakeFiles/hynet_load.dir/hynet_load.cc.o"
  "CMakeFiles/hynet_load.dir/hynet_load.cc.o.d"
  "hynet_load"
  "hynet_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hynet_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
