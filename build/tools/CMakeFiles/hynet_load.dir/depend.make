# Empty dependencies file for hynet_load.
# This may be replaced when dependencies are built.
