file(REMOVE_RECURSE
  "CMakeFiles/latency_lab.dir/latency_lab.cpp.o"
  "CMakeFiles/latency_lab.dir/latency_lab.cpp.o.d"
  "latency_lab"
  "latency_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latency_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
