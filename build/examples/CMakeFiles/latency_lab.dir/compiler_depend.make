# Empty compiler generated dependencies file for latency_lab.
# This may be replaced when dependencies are built.
