# Empty dependencies file for content_service.
# This may be replaced when dependencies are built.
