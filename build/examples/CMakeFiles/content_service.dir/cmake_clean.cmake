file(REMOVE_RECURSE
  "CMakeFiles/content_service.dir/content_service.cpp.o"
  "CMakeFiles/content_service.dir/content_service.cpp.o.d"
  "content_service"
  "content_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/content_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
