# Empty dependencies file for fig05_writespin_model.
# This may be replaced when dependencies are built.
