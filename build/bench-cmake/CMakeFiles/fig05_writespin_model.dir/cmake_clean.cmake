file(REMOVE_RECURSE
  "../bench/fig05_writespin_model"
  "../bench/fig05_writespin_model.pdb"
  "CMakeFiles/fig05_writespin_model.dir/fig05_writespin_model.cc.o"
  "CMakeFiles/fig05_writespin_model.dir/fig05_writespin_model.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_writespin_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
