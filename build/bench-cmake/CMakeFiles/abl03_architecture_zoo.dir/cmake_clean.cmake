file(REMOVE_RECURSE
  "../bench/abl03_architecture_zoo"
  "../bench/abl03_architecture_zoo.pdb"
  "CMakeFiles/abl03_architecture_zoo.dir/abl03_architecture_zoo.cc.o"
  "CMakeFiles/abl03_architecture_zoo.dir/abl03_architecture_zoo.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl03_architecture_zoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
