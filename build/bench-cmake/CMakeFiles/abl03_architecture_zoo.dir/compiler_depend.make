# Empty compiler generated dependencies file for abl03_architecture_zoo.
# This may be replaced when dependencies are built.
