file(REMOVE_RECURSE
  "../bench/fig02_sync_vs_async"
  "../bench/fig02_sync_vs_async.pdb"
  "CMakeFiles/fig02_sync_vs_async.dir/fig02_sync_vs_async.cc.o"
  "CMakeFiles/fig02_sync_vs_async.dir/fig02_sync_vs_async.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_sync_vs_async.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
