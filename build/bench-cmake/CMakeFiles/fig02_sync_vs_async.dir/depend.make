# Empty dependencies file for fig02_sync_vs_async.
# This may be replaced when dependencies are built.
