# Empty dependencies file for tab01_ctx_switches.
# This may be replaced when dependencies are built.
