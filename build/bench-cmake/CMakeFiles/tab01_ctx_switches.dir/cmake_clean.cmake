file(REMOVE_RECURSE
  "../bench/tab01_ctx_switches"
  "../bench/tab01_ctx_switches.pdb"
  "CMakeFiles/tab01_ctx_switches.dir/tab01_ctx_switches.cc.o"
  "CMakeFiles/tab01_ctx_switches.dir/tab01_ctx_switches.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab01_ctx_switches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
