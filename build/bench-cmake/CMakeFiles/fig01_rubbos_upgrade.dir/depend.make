# Empty dependencies file for fig01_rubbos_upgrade.
# This may be replaced when dependencies are built.
