
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig01_rubbos_upgrade.cc" "bench-cmake/CMakeFiles/fig01_rubbos_upgrade.dir/fig01_rubbos_upgrade.cc.o" "gcc" "bench-cmake/CMakeFiles/fig01_rubbos_upgrade.dir/fig01_rubbos_upgrade.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hynet_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hynet_rubbos.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hynet_client.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hynet_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hynet_servers.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hynet_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hynet_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hynet_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hynet_proxy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hynet_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hynet_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
