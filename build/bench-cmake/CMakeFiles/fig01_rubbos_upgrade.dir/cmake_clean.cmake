file(REMOVE_RECURSE
  "../bench/fig01_rubbos_upgrade"
  "../bench/fig01_rubbos_upgrade.pdb"
  "CMakeFiles/fig01_rubbos_upgrade.dir/fig01_rubbos_upgrade.cc.o"
  "CMakeFiles/fig01_rubbos_upgrade.dir/fig01_rubbos_upgrade.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_rubbos_upgrade.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
