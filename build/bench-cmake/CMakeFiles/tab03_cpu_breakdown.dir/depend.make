# Empty dependencies file for tab03_cpu_breakdown.
# This may be replaced when dependencies are built.
