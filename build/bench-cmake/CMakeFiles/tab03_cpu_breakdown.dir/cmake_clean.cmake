file(REMOVE_RECURSE
  "../bench/tab03_cpu_breakdown"
  "../bench/tab03_cpu_breakdown.pdb"
  "CMakeFiles/tab03_cpu_breakdown.dir/tab03_cpu_breakdown.cc.o"
  "CMakeFiles/tab03_cpu_breakdown.dir/tab03_cpu_breakdown.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab03_cpu_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
