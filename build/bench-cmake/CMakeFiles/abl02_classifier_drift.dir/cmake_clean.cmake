file(REMOVE_RECURSE
  "../bench/abl02_classifier_drift"
  "../bench/abl02_classifier_drift.pdb"
  "CMakeFiles/abl02_classifier_drift.dir/abl02_classifier_drift.cc.o"
  "CMakeFiles/abl02_classifier_drift.dir/abl02_classifier_drift.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl02_classifier_drift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
