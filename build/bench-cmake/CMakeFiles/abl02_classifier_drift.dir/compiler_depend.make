# Empty compiler generated dependencies file for abl02_classifier_drift.
# This may be replaced when dependencies are built.
