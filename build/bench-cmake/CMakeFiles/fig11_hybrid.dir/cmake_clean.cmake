file(REMOVE_RECURSE
  "../bench/fig11_hybrid"
  "../bench/fig11_hybrid.pdb"
  "CMakeFiles/fig11_hybrid.dir/fig11_hybrid.cc.o"
  "CMakeFiles/fig11_hybrid.dir/fig11_hybrid.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_hybrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
