# Empty compiler generated dependencies file for fig11_hybrid.
# This may be replaced when dependencies are built.
