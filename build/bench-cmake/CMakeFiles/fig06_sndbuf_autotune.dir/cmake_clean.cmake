file(REMOVE_RECURSE
  "../bench/fig06_sndbuf_autotune"
  "../bench/fig06_sndbuf_autotune.pdb"
  "CMakeFiles/fig06_sndbuf_autotune.dir/fig06_sndbuf_autotune.cc.o"
  "CMakeFiles/fig06_sndbuf_autotune.dir/fig06_sndbuf_autotune.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_sndbuf_autotune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
