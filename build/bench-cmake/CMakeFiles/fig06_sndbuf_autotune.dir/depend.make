# Empty dependencies file for fig06_sndbuf_autotune.
# This may be replaced when dependencies are built.
