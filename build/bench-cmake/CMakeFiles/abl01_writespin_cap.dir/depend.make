# Empty dependencies file for abl01_writespin_cap.
# This may be replaced when dependencies are built.
