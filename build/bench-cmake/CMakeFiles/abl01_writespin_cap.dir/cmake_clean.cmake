file(REMOVE_RECURSE
  "../bench/abl01_writespin_cap"
  "../bench/abl01_writespin_cap.pdb"
  "CMakeFiles/abl01_writespin_cap.dir/abl01_writespin_cap.cc.o"
  "CMakeFiles/abl01_writespin_cap.dir/abl01_writespin_cap.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl01_writespin_cap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
