file(REMOVE_RECURSE
  "../bench/tab02_dispatch_counts"
  "../bench/tab02_dispatch_counts.pdb"
  "CMakeFiles/tab02_dispatch_counts.dir/tab02_dispatch_counts.cc.o"
  "CMakeFiles/tab02_dispatch_counts.dir/tab02_dispatch_counts.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab02_dispatch_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
