# Empty compiler generated dependencies file for tab02_dispatch_counts.
# This may be replaced when dependencies are built.
