# Empty compiler generated dependencies file for ext01_http2_push.
# This may be replaced when dependencies are built.
