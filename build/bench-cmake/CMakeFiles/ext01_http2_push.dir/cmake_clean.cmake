file(REMOVE_RECURSE
  "../bench/ext01_http2_push"
  "../bench/ext01_http2_push.pdb"
  "CMakeFiles/ext01_http2_push.dir/ext01_http2_push.cc.o"
  "CMakeFiles/ext01_http2_push.dir/ext01_http2_push.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext01_http2_push.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
