# Empty dependencies file for abl04_open_loop.
# This may be replaced when dependencies are built.
