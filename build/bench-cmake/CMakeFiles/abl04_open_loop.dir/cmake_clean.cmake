file(REMOVE_RECURSE
  "../bench/abl04_open_loop"
  "../bench/abl04_open_loop.pdb"
  "CMakeFiles/abl04_open_loop.dir/abl04_open_loop.cc.o"
  "CMakeFiles/abl04_open_loop.dir/abl04_open_loop.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl04_open_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
