file(REMOVE_RECURSE
  "../bench/ext02_request_anatomy"
  "../bench/ext02_request_anatomy.pdb"
  "CMakeFiles/ext02_request_anatomy.dir/ext02_request_anatomy.cc.o"
  "CMakeFiles/ext02_request_anatomy.dir/ext02_request_anatomy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext02_request_anatomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
