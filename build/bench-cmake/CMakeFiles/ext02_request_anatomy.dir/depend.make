# Empty dependencies file for ext02_request_anatomy.
# This may be replaced when dependencies are built.
