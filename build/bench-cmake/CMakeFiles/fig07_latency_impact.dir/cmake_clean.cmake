file(REMOVE_RECURSE
  "../bench/fig07_latency_impact"
  "../bench/fig07_latency_impact.pdb"
  "CMakeFiles/fig07_latency_impact.dir/fig07_latency_impact.cc.o"
  "CMakeFiles/fig07_latency_impact.dir/fig07_latency_impact.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_latency_impact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
