# Empty dependencies file for fig07_latency_impact.
# This may be replaced when dependencies are built.
