file(REMOVE_RECURSE
  "../bench/fig04_four_servers"
  "../bench/fig04_four_servers.pdb"
  "CMakeFiles/fig04_four_servers.dir/fig04_four_servers.cc.o"
  "CMakeFiles/fig04_four_servers.dir/fig04_four_servers.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_four_servers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
