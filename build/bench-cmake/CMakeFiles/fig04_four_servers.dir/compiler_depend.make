# Empty compiler generated dependencies file for fig04_four_servers.
# This may be replaced when dependencies are built.
