file(REMOVE_RECURSE
  "../bench/tab04_write_spin"
  "../bench/tab04_write_spin.pdb"
  "CMakeFiles/tab04_write_spin.dir/tab04_write_spin.cc.o"
  "CMakeFiles/tab04_write_spin.dir/tab04_write_spin.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab04_write_spin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
