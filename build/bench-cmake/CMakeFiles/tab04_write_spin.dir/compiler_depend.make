# Empty compiler generated dependencies file for tab04_write_spin.
# This may be replaced when dependencies are built.
