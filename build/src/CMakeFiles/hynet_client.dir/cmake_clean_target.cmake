file(REMOVE_RECURSE
  "libhynet_client.a"
)
