file(REMOVE_RECURSE
  "CMakeFiles/hynet_client.dir/client/bench_runner.cc.o"
  "CMakeFiles/hynet_client.dir/client/bench_runner.cc.o.d"
  "CMakeFiles/hynet_client.dir/client/load_gen.cc.o"
  "CMakeFiles/hynet_client.dir/client/load_gen.cc.o.d"
  "libhynet_client.a"
  "libhynet_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hynet_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
