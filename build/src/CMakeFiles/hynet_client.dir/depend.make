# Empty dependencies file for hynet_client.
# This may be replaced when dependencies are built.
