# Empty dependencies file for hynet_rubbos.
# This may be replaced when dependencies are built.
