file(REMOVE_RECURSE
  "CMakeFiles/hynet_rubbos.dir/rubbos/app_logic.cc.o"
  "CMakeFiles/hynet_rubbos.dir/rubbos/app_logic.cc.o.d"
  "CMakeFiles/hynet_rubbos.dir/rubbos/db_client.cc.o"
  "CMakeFiles/hynet_rubbos.dir/rubbos/db_client.cc.o.d"
  "CMakeFiles/hynet_rubbos.dir/rubbos/db_server.cc.o"
  "CMakeFiles/hynet_rubbos.dir/rubbos/db_server.cc.o.d"
  "CMakeFiles/hynet_rubbos.dir/rubbos/system.cc.o"
  "CMakeFiles/hynet_rubbos.dir/rubbos/system.cc.o.d"
  "CMakeFiles/hynet_rubbos.dir/rubbos/web_tier.cc.o"
  "CMakeFiles/hynet_rubbos.dir/rubbos/web_tier.cc.o.d"
  "CMakeFiles/hynet_rubbos.dir/rubbos/workload.cc.o"
  "CMakeFiles/hynet_rubbos.dir/rubbos/workload.cc.o.d"
  "libhynet_rubbos.a"
  "libhynet_rubbos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hynet_rubbos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
