file(REMOVE_RECURSE
  "libhynet_rubbos.a"
)
