file(REMOVE_RECURSE
  "libhynet_runtime.a"
)
