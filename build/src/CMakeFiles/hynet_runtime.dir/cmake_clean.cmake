file(REMOVE_RECURSE
  "CMakeFiles/hynet_runtime.dir/runtime/outbound_buffer.cc.o"
  "CMakeFiles/hynet_runtime.dir/runtime/outbound_buffer.cc.o.d"
  "CMakeFiles/hynet_runtime.dir/runtime/pipeline.cc.o"
  "CMakeFiles/hynet_runtime.dir/runtime/pipeline.cc.o.d"
  "CMakeFiles/hynet_runtime.dir/runtime/worker_pool.cc.o"
  "CMakeFiles/hynet_runtime.dir/runtime/worker_pool.cc.o.d"
  "libhynet_runtime.a"
  "libhynet_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hynet_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
