# Empty compiler generated dependencies file for hynet_runtime.
# This may be replaced when dependencies are built.
