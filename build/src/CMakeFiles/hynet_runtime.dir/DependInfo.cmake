
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/outbound_buffer.cc" "src/CMakeFiles/hynet_runtime.dir/runtime/outbound_buffer.cc.o" "gcc" "src/CMakeFiles/hynet_runtime.dir/runtime/outbound_buffer.cc.o.d"
  "/root/repo/src/runtime/pipeline.cc" "src/CMakeFiles/hynet_runtime.dir/runtime/pipeline.cc.o" "gcc" "src/CMakeFiles/hynet_runtime.dir/runtime/pipeline.cc.o.d"
  "/root/repo/src/runtime/worker_pool.cc" "src/CMakeFiles/hynet_runtime.dir/runtime/worker_pool.cc.o" "gcc" "src/CMakeFiles/hynet_runtime.dir/runtime/worker_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hynet_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hynet_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hynet_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hynet_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
