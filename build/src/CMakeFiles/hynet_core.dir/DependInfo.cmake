
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/classifier.cc" "src/CMakeFiles/hynet_core.dir/core/classifier.cc.o" "gcc" "src/CMakeFiles/hynet_core.dir/core/classifier.cc.o.d"
  "/root/repo/src/core/hybrid_server.cc" "src/CMakeFiles/hynet_core.dir/core/hybrid_server.cc.o" "gcc" "src/CMakeFiles/hynet_core.dir/core/hybrid_server.cc.o.d"
  "/root/repo/src/core/write_spin.cc" "src/CMakeFiles/hynet_core.dir/core/write_spin.cc.o" "gcc" "src/CMakeFiles/hynet_core.dir/core/write_spin.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hynet_servers.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hynet_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hynet_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hynet_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hynet_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hynet_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
