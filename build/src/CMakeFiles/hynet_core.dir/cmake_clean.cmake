file(REMOVE_RECURSE
  "CMakeFiles/hynet_core.dir/core/classifier.cc.o"
  "CMakeFiles/hynet_core.dir/core/classifier.cc.o.d"
  "CMakeFiles/hynet_core.dir/core/hybrid_server.cc.o"
  "CMakeFiles/hynet_core.dir/core/hybrid_server.cc.o.d"
  "CMakeFiles/hynet_core.dir/core/write_spin.cc.o"
  "CMakeFiles/hynet_core.dir/core/write_spin.cc.o.d"
  "libhynet_core.a"
  "libhynet_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hynet_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
