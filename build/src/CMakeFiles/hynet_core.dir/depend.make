# Empty dependencies file for hynet_core.
# This may be replaced when dependencies are built.
