file(REMOVE_RECURSE
  "libhynet_core.a"
)
