file(REMOVE_RECURSE
  "CMakeFiles/hynet_metrics.dir/metrics/cpu_sample.cc.o"
  "CMakeFiles/hynet_metrics.dir/metrics/cpu_sample.cc.o.d"
  "CMakeFiles/hynet_metrics.dir/metrics/phase_profiler.cc.o"
  "CMakeFiles/hynet_metrics.dir/metrics/phase_profiler.cc.o.d"
  "CMakeFiles/hynet_metrics.dir/metrics/proc_stat.cc.o"
  "CMakeFiles/hynet_metrics.dir/metrics/proc_stat.cc.o.d"
  "CMakeFiles/hynet_metrics.dir/metrics/report.cc.o"
  "CMakeFiles/hynet_metrics.dir/metrics/report.cc.o.d"
  "libhynet_metrics.a"
  "libhynet_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hynet_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
