# Empty compiler generated dependencies file for hynet_metrics.
# This may be replaced when dependencies are built.
