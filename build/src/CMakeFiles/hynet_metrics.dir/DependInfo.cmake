
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/cpu_sample.cc" "src/CMakeFiles/hynet_metrics.dir/metrics/cpu_sample.cc.o" "gcc" "src/CMakeFiles/hynet_metrics.dir/metrics/cpu_sample.cc.o.d"
  "/root/repo/src/metrics/phase_profiler.cc" "src/CMakeFiles/hynet_metrics.dir/metrics/phase_profiler.cc.o" "gcc" "src/CMakeFiles/hynet_metrics.dir/metrics/phase_profiler.cc.o.d"
  "/root/repo/src/metrics/proc_stat.cc" "src/CMakeFiles/hynet_metrics.dir/metrics/proc_stat.cc.o" "gcc" "src/CMakeFiles/hynet_metrics.dir/metrics/proc_stat.cc.o.d"
  "/root/repo/src/metrics/report.cc" "src/CMakeFiles/hynet_metrics.dir/metrics/report.cc.o" "gcc" "src/CMakeFiles/hynet_metrics.dir/metrics/report.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hynet_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
