file(REMOVE_RECURSE
  "libhynet_metrics.a"
)
