# Empty dependencies file for hynet_proto.
# This may be replaced when dependencies are built.
