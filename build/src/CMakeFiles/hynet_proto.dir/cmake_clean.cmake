file(REMOVE_RECURSE
  "CMakeFiles/hynet_proto.dir/proto/http_codec.cc.o"
  "CMakeFiles/hynet_proto.dir/proto/http_codec.cc.o.d"
  "CMakeFiles/hynet_proto.dir/proto/http_parser.cc.o"
  "CMakeFiles/hynet_proto.dir/proto/http_parser.cc.o.d"
  "libhynet_proto.a"
  "libhynet_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hynet_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
