file(REMOVE_RECURSE
  "libhynet_proto.a"
)
