# Empty compiler generated dependencies file for hynet_common.
# This may be replaced when dependencies are built.
