file(REMOVE_RECURSE
  "CMakeFiles/hynet_common.dir/common/bytes.cc.o"
  "CMakeFiles/hynet_common.dir/common/bytes.cc.o.d"
  "CMakeFiles/hynet_common.dir/common/env.cc.o"
  "CMakeFiles/hynet_common.dir/common/env.cc.o.d"
  "CMakeFiles/hynet_common.dir/common/histogram.cc.o"
  "CMakeFiles/hynet_common.dir/common/histogram.cc.o.d"
  "CMakeFiles/hynet_common.dir/common/logging.cc.o"
  "CMakeFiles/hynet_common.dir/common/logging.cc.o.d"
  "CMakeFiles/hynet_common.dir/common/rng.cc.o"
  "CMakeFiles/hynet_common.dir/common/rng.cc.o.d"
  "CMakeFiles/hynet_common.dir/common/thread_util.cc.o"
  "CMakeFiles/hynet_common.dir/common/thread_util.cc.o.d"
  "libhynet_common.a"
  "libhynet_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hynet_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
