file(REMOVE_RECURSE
  "libhynet_common.a"
)
