
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/acceptor.cc" "src/CMakeFiles/hynet_net.dir/net/acceptor.cc.o" "gcc" "src/CMakeFiles/hynet_net.dir/net/acceptor.cc.o.d"
  "/root/repo/src/net/epoll.cc" "src/CMakeFiles/hynet_net.dir/net/epoll.cc.o" "gcc" "src/CMakeFiles/hynet_net.dir/net/epoll.cc.o.d"
  "/root/repo/src/net/event_loop.cc" "src/CMakeFiles/hynet_net.dir/net/event_loop.cc.o" "gcc" "src/CMakeFiles/hynet_net.dir/net/event_loop.cc.o.d"
  "/root/repo/src/net/inet_addr.cc" "src/CMakeFiles/hynet_net.dir/net/inet_addr.cc.o" "gcc" "src/CMakeFiles/hynet_net.dir/net/inet_addr.cc.o.d"
  "/root/repo/src/net/socket.cc" "src/CMakeFiles/hynet_net.dir/net/socket.cc.o" "gcc" "src/CMakeFiles/hynet_net.dir/net/socket.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hynet_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
