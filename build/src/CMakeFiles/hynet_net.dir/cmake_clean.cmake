file(REMOVE_RECURSE
  "CMakeFiles/hynet_net.dir/net/acceptor.cc.o"
  "CMakeFiles/hynet_net.dir/net/acceptor.cc.o.d"
  "CMakeFiles/hynet_net.dir/net/epoll.cc.o"
  "CMakeFiles/hynet_net.dir/net/epoll.cc.o.d"
  "CMakeFiles/hynet_net.dir/net/event_loop.cc.o"
  "CMakeFiles/hynet_net.dir/net/event_loop.cc.o.d"
  "CMakeFiles/hynet_net.dir/net/inet_addr.cc.o"
  "CMakeFiles/hynet_net.dir/net/inet_addr.cc.o.d"
  "CMakeFiles/hynet_net.dir/net/socket.cc.o"
  "CMakeFiles/hynet_net.dir/net/socket.cc.o.d"
  "libhynet_net.a"
  "libhynet_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hynet_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
