# Empty dependencies file for hynet_net.
# This may be replaced when dependencies are built.
