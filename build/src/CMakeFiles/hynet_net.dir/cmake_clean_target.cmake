file(REMOVE_RECURSE
  "libhynet_net.a"
)
