file(REMOVE_RECURSE
  "libhynet_servers.a"
)
