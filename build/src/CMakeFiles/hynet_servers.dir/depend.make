# Empty dependencies file for hynet_servers.
# This may be replaced when dependencies are built.
