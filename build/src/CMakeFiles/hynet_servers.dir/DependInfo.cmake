
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/servers/connection.cc" "src/CMakeFiles/hynet_servers.dir/servers/connection.cc.o" "gcc" "src/CMakeFiles/hynet_servers.dir/servers/connection.cc.o.d"
  "/root/repo/src/servers/factory.cc" "src/CMakeFiles/hynet_servers.dir/servers/factory.cc.o" "gcc" "src/CMakeFiles/hynet_servers.dir/servers/factory.cc.o.d"
  "/root/repo/src/servers/multi_loop.cc" "src/CMakeFiles/hynet_servers.dir/servers/multi_loop.cc.o" "gcc" "src/CMakeFiles/hynet_servers.dir/servers/multi_loop.cc.o.d"
  "/root/repo/src/servers/ncopy.cc" "src/CMakeFiles/hynet_servers.dir/servers/ncopy.cc.o" "gcc" "src/CMakeFiles/hynet_servers.dir/servers/ncopy.cc.o.d"
  "/root/repo/src/servers/reactor_pool.cc" "src/CMakeFiles/hynet_servers.dir/servers/reactor_pool.cc.o" "gcc" "src/CMakeFiles/hynet_servers.dir/servers/reactor_pool.cc.o.d"
  "/root/repo/src/servers/server.cc" "src/CMakeFiles/hynet_servers.dir/servers/server.cc.o" "gcc" "src/CMakeFiles/hynet_servers.dir/servers/server.cc.o.d"
  "/root/repo/src/servers/single_thread.cc" "src/CMakeFiles/hynet_servers.dir/servers/single_thread.cc.o" "gcc" "src/CMakeFiles/hynet_servers.dir/servers/single_thread.cc.o.d"
  "/root/repo/src/servers/staged.cc" "src/CMakeFiles/hynet_servers.dir/servers/staged.cc.o" "gcc" "src/CMakeFiles/hynet_servers.dir/servers/staged.cc.o.d"
  "/root/repo/src/servers/thread_per_conn.cc" "src/CMakeFiles/hynet_servers.dir/servers/thread_per_conn.cc.o" "gcc" "src/CMakeFiles/hynet_servers.dir/servers/thread_per_conn.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hynet_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hynet_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hynet_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hynet_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hynet_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
