file(REMOVE_RECURSE
  "CMakeFiles/hynet_servers.dir/servers/connection.cc.o"
  "CMakeFiles/hynet_servers.dir/servers/connection.cc.o.d"
  "CMakeFiles/hynet_servers.dir/servers/factory.cc.o"
  "CMakeFiles/hynet_servers.dir/servers/factory.cc.o.d"
  "CMakeFiles/hynet_servers.dir/servers/multi_loop.cc.o"
  "CMakeFiles/hynet_servers.dir/servers/multi_loop.cc.o.d"
  "CMakeFiles/hynet_servers.dir/servers/ncopy.cc.o"
  "CMakeFiles/hynet_servers.dir/servers/ncopy.cc.o.d"
  "CMakeFiles/hynet_servers.dir/servers/reactor_pool.cc.o"
  "CMakeFiles/hynet_servers.dir/servers/reactor_pool.cc.o.d"
  "CMakeFiles/hynet_servers.dir/servers/server.cc.o"
  "CMakeFiles/hynet_servers.dir/servers/server.cc.o.d"
  "CMakeFiles/hynet_servers.dir/servers/single_thread.cc.o"
  "CMakeFiles/hynet_servers.dir/servers/single_thread.cc.o.d"
  "CMakeFiles/hynet_servers.dir/servers/staged.cc.o"
  "CMakeFiles/hynet_servers.dir/servers/staged.cc.o.d"
  "CMakeFiles/hynet_servers.dir/servers/thread_per_conn.cc.o"
  "CMakeFiles/hynet_servers.dir/servers/thread_per_conn.cc.o.d"
  "libhynet_servers.a"
  "libhynet_servers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hynet_servers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
