file(REMOVE_RECURSE
  "libhynet_proxy.a"
)
