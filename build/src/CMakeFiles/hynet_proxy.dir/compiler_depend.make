# Empty compiler generated dependencies file for hynet_proxy.
# This may be replaced when dependencies are built.
