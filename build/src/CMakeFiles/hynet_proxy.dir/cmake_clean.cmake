file(REMOVE_RECURSE
  "CMakeFiles/hynet_proxy.dir/proxy/latency_proxy.cc.o"
  "CMakeFiles/hynet_proxy.dir/proxy/latency_proxy.cc.o.d"
  "libhynet_proxy.a"
  "libhynet_proxy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hynet_proxy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
