file(REMOVE_RECURSE
  "CMakeFiles/hynet_simnet.dir/simnet/sim_clock.cc.o"
  "CMakeFiles/hynet_simnet.dir/simnet/sim_clock.cc.o.d"
  "CMakeFiles/hynet_simnet.dir/simnet/sim_network.cc.o"
  "CMakeFiles/hynet_simnet.dir/simnet/sim_network.cc.o.d"
  "CMakeFiles/hynet_simnet.dir/simnet/sim_tcp.cc.o"
  "CMakeFiles/hynet_simnet.dir/simnet/sim_tcp.cc.o.d"
  "libhynet_simnet.a"
  "libhynet_simnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hynet_simnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
