file(REMOVE_RECURSE
  "libhynet_simnet.a"
)
