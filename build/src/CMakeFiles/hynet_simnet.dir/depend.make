# Empty dependencies file for hynet_simnet.
# This may be replaced when dependencies are built.
